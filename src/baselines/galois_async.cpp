// Galois-style asynchronous CC [19]: every edge is visited exactly once (in
// one direction only) and merged into a concurrent union-find; finds use a
// restricted form of pointer jumping (single compression of the start
// vertex), per the paper's §2 description.
//
// Execution-model fidelity: Galois does not run a bare loop — its runtime
// drains *work items* from chunked worklists and calls the user operator
// indirectly, and the parallel executor performs conflict detection by
// acquiring abstract locks on the nodes an activity touches ("Optimistic
// Parallelism Requires Abstractions"). Those mechanisms are the bulk of the
// gap the paper measures against ECL-CC (4.7x parallel, 2.6x serial), so we
// reproduce them: per-edge work items flow through a chunked worklist,
// the operator is invoked through a function pointer, and the asynchronous
// version acquires/releases a lock byte per touched representative.
#include <atomic>
#include <omp.h>

#include <thread>

#include "baselines/baselines.h"
#include "dsu/find.h"
#include "dsu/hook.h"
#include "dsu/parent_ops.h"

namespace ecl::baselines {

namespace {

constexpr std::size_t kChunkSize = 64;  // Galois's default chunked FIFO

/// One activity: a single edge added to the union-find ("visits each edge
/// of the graph exactly once and adds it to a concurrent union-find", §2).
struct WorkItem {
  vertex_t v;
  vertex_t u;
};

/// The serial operator: find both endpoints with the restricted (single)
/// pointer jumping and unite.
void serial_operator(SerialParentOps ops, WorkItem item) {
  const vertex_t v_rep = find_single(item.v, ops);
  const vertex_t u_rep = find_single(item.u, ops);
  hook_representatives(v_rep, u_rep, ops);
}

/// The parallel operator with abstract-lock conflict detection: the
/// runtime "acquires" each endpoint before mutating shared state.
void async_operator(AtomicParentOps ops, std::uint8_t* locks, WorkItem item) {
  auto acquire = [&](vertex_t x) {
    std::atomic_ref<std::uint8_t> lock(locks[x]);
    std::uint8_t expected = 0;
    while (!lock.compare_exchange_weak(expected, 1, std::memory_order_acquire)) {
      expected = 0;  // Galois would abort and retry the activity
      std::this_thread::yield();  // keep oversubscribed runs live
    }
  };
  auto release = [&](vertex_t x) {
    std::atomic_ref<std::uint8_t>(locks[x]).store(0, std::memory_order_release);
  };

  // Conflict detection on the edge's endpoints (lower ID first so
  // concurrent activities cannot deadlock).
  acquire(item.u);
  acquire(item.v);
  const vertex_t v_rep = find_single(item.v, ops);
  const vertex_t u_rep = find_single(item.u, ops);
  hook_representatives(v_rep, u_rep, ops);
  release(item.v);
  release(item.u);
}

template <ParentOps Ops>
void flatten(vertex_t n, Ops ops) {
  for (vertex_t v = 0; v < n; ++v) {
    vertex_t root = ops.load(v);
    vertex_t next;
    while (root > (next = ops.load(root))) root = next;
    ops.store(v, root);
  }
}

}  // namespace

std::vector<vertex_t> galois_async(const Graph& g, int threads) {
  const vertex_t n = g.num_vertices();
  const int nt = threads > 0 ? threads : omp_get_max_threads();
  std::vector<vertex_t> parent(n);
#pragma omp parallel for schedule(static) num_threads(nt)
  for (vertex_t v = 0; v < n; ++v) parent[v] = v;

  std::vector<std::uint8_t> locks(n, 0);
  AtomicParentOps ops(parent.data());
  // for_each over the edges: each thread fills chunked worklists with edge
  // activities and drains them through the operator function pointer.
  using AsyncOp = void (*)(AtomicParentOps, std::uint8_t*, WorkItem);
  const volatile AsyncOp op = &async_operator;

#pragma omp parallel num_threads(nt)
  {
    std::vector<WorkItem> chunk;
    chunk.reserve(kChunkSize);
#pragma omp for schedule(dynamic, 64)
    for (vertex_t v = 0; v < n; ++v) {
      for (const vertex_t u : g.neighbors(v)) {
        if (v > u) {
          chunk.push_back(WorkItem{v, u});
          if (chunk.size() == kChunkSize) {
            for (const WorkItem& item : chunk) op(ops, locks.data(), item);
            chunk.clear();
          }
        }
      }
    }
    for (const WorkItem& item : chunk) op(ops, locks.data(), item);
  }

#pragma omp parallel for schedule(static) num_threads(nt)
  for (vertex_t v = 0; v < n; ++v) {
    vertex_t root = ops.load(v);
    vertex_t next;
    while (root > (next = ops.load(root))) root = next;
    ops.store(v, root);
  }
  return parent;
}

std::vector<vertex_t> galois_serial(const Graph& g) {
  const vertex_t n = g.num_vertices();
  std::vector<vertex_t> parent(n);
  for (vertex_t v = 0; v < n; ++v) parent[v] = v;
  SerialParentOps ops(parent.data());

  using SerialOp = void (*)(SerialParentOps, WorkItem);
  const volatile SerialOp op = &serial_operator;

  std::vector<WorkItem> chunk;
  chunk.reserve(kChunkSize);
  for (vertex_t v = 0; v < n; ++v) {
    for (const vertex_t u : g.neighbors(v)) {
      if (v > u) {
        chunk.push_back(WorkItem{v, u});
        if (chunk.size() == kChunkSize) {
          for (const WorkItem& item : chunk) op(ops, item);
          chunk.clear();
        }
      }
    }
  }
  for (const WorkItem& item : chunk) op(ops, item);

  flatten(n, ops);
  return parent;
}

}  // namespace ecl::baselines
