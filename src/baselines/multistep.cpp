// Multistep CC [33]: (1) one level-synchronous parallel BFS rooted at the
// maximum-degree vertex — expected to swallow the giant component; (2)
// parallel label propagation restricted to the untouched subgraph; (3) a
// serial union-find tail once only a few vertices remain.
#include <atomic>
#include <omp.h>

#include <algorithm>

#include "baselines/baselines.h"
#include "dsu/disjoint_set.h"
#include "graph/bfs.h"

namespace ecl::baselines {

namespace {

constexpr vertex_t kSerialCutoff = 4096;  // few enough vertices: finish serially

}  // namespace

std::vector<vertex_t> multistep(const Graph& g, int threads) {
  const vertex_t n = g.num_vertices();
  const int nt = threads > 0 ? threads : omp_get_max_threads();
  std::vector<vertex_t> label(n, kInvalidVertex);
  if (n == 0) return label;

  // Step 1: parallel level-synchronous BFS from the max-degree vertex
  // (expected to swallow the giant component), using the shared BFS engine.
  vertex_t root = 0;
  for (vertex_t v = 1; v < n; ++v) {
    if (g.degree(v) > g.degree(root)) root = v;
  }
  BfsOptions bfs_opts;
  bfs_opts.num_threads = nt;
  (void)bfs_label(g, root, root, label, bfs_opts);

  // Collect the vertices the BFS did not reach.
  std::vector<vertex_t> rest;
  for (vertex_t v = 0; v < n; ++v) {
    if (label[v] == kInvalidVertex) rest.push_back(v);
  }

  if (rest.size() > kSerialCutoff) {
    // Step 2: label propagation on the remaining subgraph (all neighbors of
    // a remaining vertex are themselves remaining: BFS exhausted its
    // component).
    for (const vertex_t v : rest) label[v] = v;
    bool changed = true;
    while (changed) {
      changed = false;
#pragma omp parallel for schedule(guided) num_threads(nt) reduction(|| : changed)
      for (std::size_t i = 0; i < rest.size(); ++i) {
        const vertex_t v = rest[i];
        vertex_t best = label[v];
        for (const vertex_t u : g.neighbors(v)) {
          best = std::min(best, label[u]);
        }
        if (best < label[v]) {
          label[v] = best;
          changed = true;
        }
      }
    }
    // Compress propagation chains: label[v] may point at a vertex whose own
    // label moved on; iterate to the fixed point serially (cheap: the
    // propagation above already did the heavy lifting).
    for (const vertex_t v : rest) {
      vertex_t l = label[v];
      while (label[l] != l) l = label[l];
      label[v] = l;
    }
  } else if (!rest.empty()) {
    // Step 3: serial tail with union-find.
    DisjointSet ds(n);
    for (const vertex_t v : rest) {
      for (const vertex_t u : g.neighbors(v)) {
        if (u < v) ds.unite(v, u);
      }
    }
    // Canonicalize to the minimum vertex of each set: roots are not
    // guaranteed minimal under union by rank, so stage the minimum at the
    // root first. `rest` is ascending, so the first writer is the minimum.
    for (const vertex_t v : rest) {
      const vertex_t r = ds.find(v);
      if (label[r] == kInvalidVertex) label[r] = v;
    }
    for (const vertex_t v : rest) label[v] = label[ds.find(v)];
  }
  return label;
}

}  // namespace ecl::baselines
