// ndHybrid-style connectivity [30]: Shun, Dhulipala & Blelloch's simple and
// practical linear-work algorithm.
//
//   1. Low-diameter decomposition: grow BFS balls concurrently. Ball centers
//      are admitted in exponentially growing batches (the beta-decay
//      schedule), so early centers capture big low-diameter chunks and late
//      stragglers get their own partitions.
//   2. Contract every partition to a single super-vertex and keep only the
//      deduplicated edges that cross partitions.
//   3. Recurse on the contracted graph until no cross edges remain, then
//      propagate the labels back down.
#include <atomic>
#include <omp.h>

#include <algorithm>

#include "baselines/baselines.h"
#include "common/rng.h"
#include "graph/builder.h"

namespace ecl::baselines {

namespace {

constexpr double kBeta = 0.2;  // decomposition rate (paper uses beta ~ 0.2)

/// One round of low-diameter decomposition. Returns partition[v] in [0, n)
/// (the center vertex of v's ball).
std::vector<vertex_t> low_diameter_decomposition(const Graph& g, int nt,
                                                 std::uint64_t seed) {
  const vertex_t n = g.num_vertices();
  std::vector<vertex_t> partition(n, kInvalidVertex);

  // Random center order, deterministic in the seed.
  std::vector<vertex_t> order(n);
  for (vertex_t v = 0; v < n; ++v) order[v] = v;
  Xoshiro256 rng(seed);
  for (vertex_t v = n; v > 1; --v) {
    std::swap(order[v - 1], order[rng.bounded(v)]);
  }

  std::vector<vertex_t> frontier;
  std::vector<vertex_t> next;
  std::size_t admitted = 0;
  double batch = 1.0;

  while (admitted < n || !frontier.empty()) {
    // Admit the next exponentially larger batch of centers (skipping
    // vertices already swallowed by an earlier ball).
    const auto want = static_cast<std::size_t>(batch);
    std::size_t added = 0;
    while (admitted < n && added < want) {
      const vertex_t c = order[admitted++];
      if (partition[c] == kInvalidVertex) {
        partition[c] = c;
        frontier.push_back(c);
        ++added;
      }
    }
    batch *= 1.0 + kBeta;

    // Expand every active ball by one level, concurrently. First-touch
    // claims a vertex for the toucher's partition (CAS-arbitrated).
    next.clear();
#pragma omp parallel num_threads(nt)
    {
      std::vector<vertex_t> local;
#pragma omp for schedule(guided) nowait
      for (std::size_t i = 0; i < frontier.size(); ++i) {
        const vertex_t v = frontier[i];
        const vertex_t center = partition[v];
        for (const vertex_t u : g.neighbors(v)) {
          std::atomic_ref<vertex_t> slot(partition[u]);
          vertex_t expected = kInvalidVertex;
          if (slot.load(std::memory_order_relaxed) == kInvalidVertex &&
              slot.compare_exchange_strong(expected, center, std::memory_order_relaxed)) {
            local.push_back(u);
          }
        }
      }
#pragma omp critical(ldd_merge)
      next.insert(next.end(), local.begin(), local.end());
    }
    std::swap(frontier, next);
  }
  return partition;
}

std::vector<vertex_t> solve(const Graph& g, int nt, int depth) {
  const vertex_t n = g.num_vertices();
  const auto partition = low_diameter_decomposition(g, nt, 0x9d5ULL + depth);

  // Gather cross-partition edges; if none, the partitions are the final
  // components.
  std::vector<Edge> cross;
  for (vertex_t v = 0; v < n; ++v) {
    for (const vertex_t u : g.neighbors(v)) {
      if (v < u && partition[v] != partition[u]) {
        cross.emplace_back(partition[v], partition[u]);
      }
    }
  }
  if (cross.empty()) return partition;

  // Contract: relabel partition centers densely, recurse, and map back.
  std::vector<vertex_t> dense(n, kInvalidVertex);
  vertex_t num_parts = 0;
  for (vertex_t v = 0; v < n; ++v) {
    if (partition[v] == v) dense[v] = num_parts++;
  }
  for (auto& [a, b] : cross) {
    a = dense[a];
    b = dense[b];
  }
  const Graph contracted = build_graph(num_parts, cross);
  const auto sub_labels = solve(contracted, nt, depth + 1);

  // sub_labels index the dense space; translate back to original vertex IDs
  // via the minimum original center in each super-component.
  std::vector<vertex_t> center_of(num_parts, kInvalidVertex);
  for (vertex_t v = 0; v < n; ++v) {
    if (partition[v] == v) center_of[dense[v]] = v;
  }
  std::vector<vertex_t> super_min(num_parts, kInvalidVertex);
  for (vertex_t d = 0; d < num_parts; ++d) {
    const vertex_t root = sub_labels[d];
    super_min[root] = std::min(super_min[root], center_of[d]);
  }
  std::vector<vertex_t> labels(n);
#pragma omp parallel for schedule(static) num_threads(nt)
  for (vertex_t v = 0; v < n; ++v) {
    labels[v] = super_min[sub_labels[dense[partition[v]]]];
  }
  return labels;
}

}  // namespace

std::vector<vertex_t> ndhybrid(const Graph& g, int threads) {
  if (g.num_vertices() == 0) return {};
  const int nt = threads > 0 ? threads : omp_get_max_threads();
  auto labels = solve(g, nt, 0);
  // The decomposition labels by ball center; canonicalize to component
  // minima so results compare directly with the other implementations.
  const vertex_t n = g.num_vertices();
  std::vector<vertex_t> min_of(n, kInvalidVertex);
  for (vertex_t v = 0; v < n; ++v) min_of[labels[v]] = std::min(min_of[labels[v]], v);
  for (vertex_t v = 0; v < n; ++v) labels[v] = min_of[labels[v]];
  return labels;
}

}  // namespace ecl::baselines
