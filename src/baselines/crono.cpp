// CRONO-style connected components [1]: Shiloach-Vishkin executed over a
// dense n x dmax adjacency matrix, as in the CRONO benchmark suite. The 2-D
// matrix is what makes CRONO memory-hungry: for graphs with high-degree
// vertices it fails to allocate, which the paper reports as "n/a". We
// reproduce that behaviour with an explicit memory limit.
#include <atomic>
#include <omp.h>

#include <memory>

#include "baselines/baselines.h"

namespace ecl::baselines {

namespace {

/// CRONO's native representation: the padded n x dmax neighbor matrix plus
/// per-row degrees, built once at graph-load time.
struct CronoMatrix {
  vertex_t n = 0;
  vertex_t dmax = 0;
  std::vector<vertex_t> degree;
  std::vector<vertex_t> cells;
};

std::size_t matrix_bytes(const Graph& g) {
  vertex_t dmax = 0;
  for (vertex_t v = 0; v < g.num_vertices(); ++v) dmax = std::max(dmax, g.degree(v));
  return static_cast<std::size_t>(g.num_vertices()) * dmax * sizeof(vertex_t);
}

}  // namespace

bool crono_supports(const Graph& g, std::size_t memory_limit) {
  return matrix_bytes(g) <= memory_limit;
}

namespace {

std::vector<vertex_t> run_crono(const CronoMatrix& m, int threads) {
  const vertex_t n = m.n;
  const vertex_t dmax = m.dmax;
  const std::vector<vertex_t>& degree = m.degree;
  const std::vector<vertex_t>& matrix = m.cells;
  const int nt = threads > 0 ? threads : omp_get_max_threads();

  std::vector<vertex_t> label(n);
  for (vertex_t v = 0; v < n; ++v) label[v] = v;

  bool changed = dmax > 0;
  if (n == 0) return label;
  while (changed) {
    changed = false;
#pragma omp parallel for schedule(guided) num_threads(nt) reduction(|| : changed)
    for (vertex_t u = 0; u < n; ++u) {
      for (vertex_t j = 0; j < degree[u]; ++j) {
        const vertex_t w = matrix[static_cast<std::size_t>(u) * dmax + j];
        const vertex_t pu = label[u];
        const vertex_t pw = label[w];
        if (pw < pu && pu == label[pu]) {
          std::atomic_ref<vertex_t> root(label[pu]);
          vertex_t expected = pu;
          if (root.compare_exchange_strong(expected, pw, std::memory_order_relaxed)) {
            changed = true;
          }
        }
      }
    }
    bool jumped = true;
    while (jumped) {
      jumped = false;
#pragma omp parallel for schedule(static) num_threads(nt) reduction(|| : jumped)
      for (vertex_t v = 0; v < n; ++v) {
        const vertex_t p = label[v];
        const vertex_t pp = label[p];
        if (p != pp) {
          label[v] = pp;
          jumped = true;
        }
      }
    }
  }
  return label;
}

}  // namespace

CcRunner make_crono_runner(const Graph& g, int threads, std::size_t memory_limit) {
  auto m = std::make_shared<CronoMatrix>();
  m->n = g.num_vertices();
  if (m->n == 0 || !crono_supports(g, memory_limit)) {
    // "n/a" in the paper's tables: the runner reports failure by returning
    // an empty labeling (also the correct answer for an empty graph).
    return []() -> std::vector<vertex_t> { return {}; };
  }
  for (vertex_t v = 0; v < m->n; ++v) m->dmax = std::max(m->dmax, g.degree(v));
  // CRONO's defining data layout: a dense n x dmax neighbor matrix. Rows
  // are iterated up to the vertex's actual degree; the padding is what
  // wrecks the memory footprint (the "n/a" inputs) and the row stride is
  // what wrecks locality relative to CSR.
  m->degree.resize(m->n);
  m->cells.resize(static_cast<std::size_t>(m->n) * m->dmax);
  for (vertex_t v = 0; v < m->n; ++v) {
    const auto nbrs = g.neighbors(v);
    m->degree[v] = static_cast<vertex_t>(nbrs.size());
    for (std::size_t j = 0; j < nbrs.size(); ++j) {
      m->cells[static_cast<std::size_t>(v) * m->dmax + j] = nbrs[j];
    }
  }
  return [m, threads] { return run_crono(*m, threads); };
}

std::vector<vertex_t> crono(const Graph& g, int threads, std::size_t memory_limit) {
  return make_crono_runner(g, threads, memory_limit)();
}

}  // namespace ecl::baselines
