#include "baselines/registry.h"

#include "core/ecl_cc.h"

namespace ecl::baselines {

namespace {

/// Adapts a plain (Graph, threads) function: no native conversion needed,
/// the runner just closes over the CSR.
template <typename Fn>
std::function<CcRunner(const Graph&, int)> direct(Fn fn) {
  return [fn](const Graph& g, int threads) -> CcRunner {
    return [fn, &g, threads] { return fn(g, threads); };
  };
}

std::vector<CcCode> build_parallel() {
  std::vector<CcCode> codes;
  codes.push_back({"ECL-CComp",
                   direct([](const Graph& g, int t) {
                     EclOptions opts;
                     opts.num_threads = t;
                     return ecl_cc_omp(g, opts);
                   }),
                   [](const Graph&) { return true; }});
  codes.push_back({"Ligra+ BFSCC", direct([](const Graph& g, int t) { return bfs_cc(g, t); }),
                   [](const Graph&) { return true; }});
  codes.push_back(
      {"Ligra+ Comp", direct([](const Graph& g, int t) { return label_prop(g, t); }),
       [](const Graph&) { return true; }});
  codes.push_back({"CRONO",
                   [](const Graph& g, int t) { return make_crono_runner(g, t); },
                   [](const Graph& g) { return crono_supports(g); }});
  codes.push_back({"ndHybrid", direct([](const Graph& g, int t) { return ndhybrid(g, t); }),
                   [](const Graph&) { return true; }});
  codes.push_back({"Multistep", direct([](const Graph& g, int t) { return multistep(g, t); }),
                   [](const Graph&) { return true; }});
  codes.push_back({"Galois", direct([](const Graph& g, int t) { return galois_async(g, t); }),
                   [](const Graph&) { return true; }});
  return codes;
}

std::vector<CcCode> build_serial() {
  std::vector<CcCode> codes;
  codes.push_back({"ECL-CCser", direct([](const Graph& g, int) { return ecl_cc_serial(g); }),
                   [](const Graph&) { return true; }});
  codes.push_back({"Galois", direct([](const Graph& g, int) { return galois_serial(g); }),
                   [](const Graph&) { return true; }});
  codes.push_back({"Boost", [](const Graph& g, int) { return make_boost_runner(g); },
                   [](const Graph&) { return true; }});
  codes.push_back({"Lemon", [](const Graph& g, int) { return make_lemon_runner(g); },
                   [](const Graph&) { return true; }});
  codes.push_back({"igraph", [](const Graph& g, int) { return make_igraph_runner(g); },
                   [](const Graph&) { return true; }});
  return codes;
}

}  // namespace

const std::vector<CcCode>& parallel_cpu_codes() {
  static const auto codes = build_parallel();
  return codes;
}

const std::vector<CcCode>& serial_cpu_codes() {
  static const auto codes = build_serial();
  return codes;
}

}  // namespace ecl::baselines
