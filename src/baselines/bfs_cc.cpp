// Ligra+ "BFSCC"-style connected components [21]: sweep the vertices and
// run a direction-optimizing parallel BFS (graph/bfs.h — Ligra's engine)
// from every still-unvisited one, labeling everything reached with the
// source's ID.
#include "baselines/baselines.h"
#include "graph/bfs.h"

namespace ecl::baselines {

std::vector<vertex_t> bfs_cc(const Graph& g, int threads) {
  const vertex_t n = g.num_vertices();
  std::vector<vertex_t> label(n, kInvalidVertex);
  BfsOptions opts;
  opts.num_threads = threads;
  for (vertex_t source = 0; source < n; ++source) {
    if (label[source] == kInvalidVertex) {
      (void)bfs_label(g, source, source, label, opts);
    }
  }
  return label;
}

}  // namespace ecl::baselines
