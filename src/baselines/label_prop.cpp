// Ligra+ "Comp"-style label propagation [22]: edgeMap over a sparse
// frontier with writeMin, keeping the previous label of every vertex so
// that "only vertices whose label has changed in the prior iteration" are
// processed again. Work per iteration is proportional to the frontier's
// degree sum, not to n.
#include <atomic>
#include <omp.h>

#include "baselines/baselines.h"

namespace ecl::baselines {

namespace {

/// Atomically lowers `slot` to `value`; returns true if it strictly
/// decreased (Ligra's writeMin).
bool write_min(vertex_t& slot, vertex_t value) {
  std::atomic_ref<vertex_t> ref(slot);
  vertex_t observed = ref.load(std::memory_order_relaxed);
  while (value < observed) {
    if (ref.compare_exchange_weak(observed, value, std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

/// Claims membership in the next frontier exactly once (Ligra's CAS-based
/// duplicate removal in edgeMapSparse).
bool claim(std::uint8_t& flag) {
  std::atomic_ref<std::uint8_t> ref(flag);
  std::uint8_t expected = 0;
  return ref.compare_exchange_strong(expected, 1, std::memory_order_relaxed);
}

}  // namespace

std::vector<vertex_t> label_prop(const Graph& g, int threads) {
  const vertex_t n = g.num_vertices();
  const int nt = threads > 0 ? threads : omp_get_max_threads();
  std::vector<vertex_t> label(n);
  std::vector<vertex_t> prev(n);
  std::vector<std::uint8_t> in_next(n, 0);
  for (vertex_t v = 0; v < n; ++v) {
    label[v] = v;
    prev[v] = v;
  }

  // Initial frontier: every vertex.
  std::vector<vertex_t> frontier(n);
  for (vertex_t v = 0; v < n; ++v) frontier[v] = v;
  std::vector<vertex_t> next;

  while (!frontier.empty()) {
    next.clear();
#pragma omp parallel num_threads(nt)
    {
      std::vector<vertex_t> local;
#pragma omp for schedule(guided) nowait
      for (std::size_t i = 0; i < frontier.size(); ++i) {
        const vertex_t v = frontier[i];
        // Snapshot the label this vertex propagates this round. prev[] is
        // shared, so all accesses are relaxed-atomic; a stale (higher) read
        // only costs a failed writeMin, never a missed update, because
        // prev[u] >= label[u] holds at all times.
        const vertex_t mine = std::atomic_ref<vertex_t>(label[v]).load(std::memory_order_relaxed);
        std::atomic_ref<vertex_t>(prev[v]).store(mine, std::memory_order_relaxed);
        for (const vertex_t u : g.neighbors(v)) {
          const vertex_t prev_u =
              std::atomic_ref<vertex_t>(prev[u]).load(std::memory_order_relaxed);
          if (mine < prev_u && write_min(label[u], mine)) {
            if (claim(in_next[u])) local.push_back(u);
          }
        }
      }
#pragma omp critical(labelprop_merge)
      next.insert(next.end(), local.begin(), local.end());
    }
    std::swap(frontier, next);
#pragma omp parallel for schedule(static) num_threads(nt)
    for (std::size_t i = 0; i < frontier.size(); ++i) {
      in_next[frontier[i]] = 0;
    }
  }
  return label;
}

}  // namespace ecl::baselines
