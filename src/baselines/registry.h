// A uniform registry of every CC implementation, named as in the paper's
// tables, so the benchmark harness can sweep them mechanically.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "baselines/baselines.h"
#include "graph/graph.h"

namespace ecl::baselines {

struct CcCode {
  /// Name as printed in the paper's tables (e.g. "Ligra+ BFSCC").
  std::string name;
  /// Builds the code's native representation of the graph (untimed — the
  /// paper's "graph conversion", §4) and returns the timed CC computation.
  std::function<CcRunner(const Graph&, int threads)> prepare;
  /// False when the code cannot handle the input (CRONO's n x dmax matrix);
  /// benches print "n/a" as the paper does.
  std::function<bool(const Graph&)> supports = [](const Graph&) { return true; };

  /// Convenience: prepare + execute in one call.
  [[nodiscard]] std::vector<vertex_t> run(const Graph& g, int threads) const {
    return prepare(g, threads)();
  }
};

/// Parallel CPU codes of the paper's Fig. 13/14 + Tables 7/8:
/// ECL-CC_OMP, Ligra+ BFSCC, Ligra+ Comp, CRONO, ndHybrid, Multistep, Galois.
[[nodiscard]] const std::vector<CcCode>& parallel_cpu_codes();

/// Serial CPU codes of the paper's Fig. 15/16 + Tables 9/10:
/// ECL-CC_SER, Galois, Boost, Lemon, igraph.
[[nodiscard]] const std::vector<CcCode>& serial_cpu_codes();

}  // namespace ecl::baselines
