// Serial library-style comparators: the algorithms AND the native graph
// data structures behind the Boost, igraph and LEMON connected-components
// routines (paper Table 1). The data-structure fidelity matters: these
// libraries do not traverse a packed CSR — BGL iterates a vector-of-vectors
// adjacency_list through property-map indirection, LEMON chases linked arc
// lists, igraph double-indirects through sorted incidence arrays — and that
// is a large part of why the paper measures them 5-11x behind ECL-CCser.
//
// Each code has a prepare step (building its native structure from our CSR,
// the untimed "graph conversion" of the paper's §4) and a timed run step.
#include <deque>
#include <stack>
#include <utility>

#include "baselines/baselines.h"

namespace ecl::baselines {

// ---------------------------------------------------------------------------
// Boost: adjacency_list<vecS, vecS> + disjoint_sets + incremental_components.

namespace {

/// BGL-style graph: one heap-allocated out-edge vector per vertex.
struct BoostishGraph {
  std::vector<std::vector<vertex_t>> out_edges;
};

std::vector<vertex_t> run_boost(const BoostishGraph& g) {
  const auto n = static_cast<vertex_t>(g.out_edges.size());
  // boost::disjoint_sets accesses rank/parent through property maps keyed
  // by a vertex_index map — an extra indirection on every operation.
  std::vector<vertex_t> index_map(n);
  for (vertex_t v = 0; v < n; ++v) index_map[v] = v;
  std::vector<vertex_t> parent(n);
  std::vector<std::uint8_t> rank(n, 0);
  // initialize_incremental_components
  for (vertex_t v = 0; v < n; ++v) parent[index_map[v]] = v;

  // find_with_full_path_compression, through the index map.
  auto find = [&](vertex_t v) {
    vertex_t root = v;
    while (parent[index_map[root]] != root) root = parent[index_map[root]];
    while (parent[index_map[v]] != root) {
      const vertex_t next = parent[index_map[v]];
      parent[index_map[v]] = root;
      v = next;
    }
    return root;
  };

  // incremental_components: union over every edge of the adjacency list.
  for (vertex_t v = 0; v < n; ++v) {
    for (const vertex_t u : g.out_edges[v]) {
      if (u >= v) continue;  // each undirected edge once
      vertex_t ra = find(v);
      vertex_t rb = find(u);
      if (ra == rb) continue;
      if (rank[index_map[ra]] < rank[index_map[rb]]) std::swap(ra, rb);
      parent[index_map[rb]] = ra;
      if (rank[index_map[ra]] == rank[index_map[rb]]) ++rank[index_map[ra]];
    }
  }

  // component_index pass, canonicalized to minima (ascending sweep).
  std::vector<vertex_t> label(n, kInvalidVertex);
  for (vertex_t v = 0; v < n; ++v) {
    const vertex_t r = find(v);
    if (label[r] == kInvalidVertex) label[r] = v;
  }
  for (vertex_t v = 0; v < n; ++v) label[v] = label[find(v)];
  return label;
}

}  // namespace

CcRunner make_boost_runner(const Graph& g) {
  auto native = std::make_shared<BoostishGraph>();
  native->out_edges.resize(g.num_vertices());
  for (vertex_t v = 0; v < g.num_vertices(); ++v) {
    const auto nbrs = g.neighbors(v);
    native->out_edges[v].assign(nbrs.begin(), nbrs.end());
  }
  return [native] { return run_boost(*native); };
}

std::vector<vertex_t> boost_style(const Graph& g) { return make_boost_runner(g)(); }

// ---------------------------------------------------------------------------
// LEMON: ListGraph (linked arc lists) + connectedComponents (DFS + NodeMap).

namespace {

/// LEMON ListGraph flavour: per-node head of a linked list of arcs; each
/// arc stores its target and the next arc. Traversal chases links.
struct LemonishGraph {
  static constexpr std::uint64_t kNone = ~std::uint64_t{0};
  std::vector<std::uint64_t> first_out;  // per node
  std::vector<std::uint64_t> next_out;   // per arc
  std::vector<vertex_t> target;          // per arc
};

std::vector<vertex_t> run_lemon(const LemonishGraph& g) {
  const auto n = static_cast<vertex_t>(g.first_out.size());
  std::vector<vertex_t> comp_map(n, kInvalidVertex);  // NodeMap<int>
  // connectedComponents: DFS with an explicit stack of (node, current arc).
  std::stack<std::pair<vertex_t, std::uint64_t>> stack;
  for (vertex_t source = 0; source < n; ++source) {
    if (comp_map[source] != kInvalidVertex) continue;
    comp_map[source] = source;
    stack.emplace(source, g.first_out[source]);
    while (!stack.empty()) {
      auto& [v, arc] = stack.top();
      if (arc == LemonishGraph::kNone) {
        stack.pop();
        continue;
      }
      const vertex_t u = g.target[arc];
      arc = g.next_out[arc];
      if (comp_map[u] == kInvalidVertex) {
        comp_map[u] = source;
        stack.emplace(u, g.first_out[u]);
      }
    }
  }
  return comp_map;
}

}  // namespace

CcRunner make_lemon_runner(const Graph& g) {
  auto native = std::make_shared<LemonishGraph>();
  const vertex_t n = g.num_vertices();
  native->first_out.assign(n, LemonishGraph::kNone);
  native->next_out.reserve(g.num_edges());
  native->target.reserve(g.num_edges());
  // ListGraph prepends arcs, so lists come out in reverse insertion order —
  // matching LEMON's addArc behaviour.
  for (vertex_t v = 0; v < n; ++v) {
    for (const vertex_t u : g.neighbors(v)) {
      const std::uint64_t arc = native->target.size();
      native->target.push_back(u);
      native->next_out.push_back(native->first_out[v]);
      native->first_out[v] = arc;
    }
  }
  return [native] { return run_lemon(*native); };
}

std::vector<vertex_t> lemon_style(const Graph& g) { return make_lemon_runner(g)(); }

// ---------------------------------------------------------------------------
// igraph: edge arrays (from/to) + sorted incidence index, BFS with dqueue.

namespace {

/// igraph_t flavour: each undirected edge stored once in from[]/to[];
/// per-vertex incidence is an index range (os/is) into edge-id arrays
/// (oi/ii), so every neighbor access double-indirects.
struct IgraphishGraph {
  vertex_t n = 0;
  std::vector<vertex_t> from, to;  // per edge
  std::vector<edge_t> oi, ii;      // edge ids sorted by from / by to
  std::vector<edge_t> os, is;      // per-vertex offsets into oi / ii
};

std::vector<vertex_t> run_igraph(const IgraphishGraph& g) {
  std::vector<vertex_t> membership(g.n, kInvalidVertex);
  std::deque<vertex_t> queue;  // igraph_dqueue
  for (vertex_t source = 0; source < g.n; ++source) {
    if (membership[source] != kInvalidVertex) continue;
    membership[source] = source;
    queue.push_back(source);
    while (!queue.empty()) {
      const vertex_t v = queue.front();
      queue.pop_front();
      // igraph_incident: outgoing then incoming incidence ranges.
      for (edge_t j = g.os[v]; j < g.os[v + 1]; ++j) {
        const vertex_t u = g.to[g.oi[j]];
        if (membership[u] == kInvalidVertex) {
          membership[u] = source;
          queue.push_back(u);
        }
      }
      for (edge_t j = g.is[v]; j < g.is[v + 1]; ++j) {
        const vertex_t u = g.from[g.ii[j]];
        if (membership[u] == kInvalidVertex) {
          membership[u] = source;
          queue.push_back(u);
        }
      }
    }
  }
  return membership;
}

}  // namespace

CcRunner make_igraph_runner(const Graph& g) {
  auto native = std::make_shared<IgraphishGraph>();
  native->n = g.num_vertices();
  for (vertex_t v = 0; v < g.num_vertices(); ++v) {
    for (const vertex_t u : g.neighbors(v)) {
      if (u < v) {  // store each undirected edge once, as igraph does
        native->from.push_back(u);
        native->to.push_back(v);
      }
    }
  }
  const auto m = static_cast<edge_t>(native->from.size());
  // Build incidence indices with counting sort by from (oi/os) and to (ii/is).
  native->os.assign(native->n + 1, 0);
  native->is.assign(native->n + 1, 0);
  for (edge_t e = 0; e < m; ++e) {
    ++native->os[native->from[e] + 1];
    ++native->is[native->to[e] + 1];
  }
  for (vertex_t v = 0; v < native->n; ++v) {
    native->os[v + 1] += native->os[v];
    native->is[v + 1] += native->is[v];
  }
  native->oi.resize(m);
  native->ii.resize(m);
  std::vector<edge_t> ocur(native->os.begin(), native->os.end() - 1);
  std::vector<edge_t> icur(native->is.begin(), native->is.end() - 1);
  for (edge_t e = 0; e < m; ++e) {
    native->oi[ocur[native->from[e]]++] = e;
    native->ii[icur[native->to[e]]++] = e;
  }
  return [native] { return run_igraph(*native); };
}

std::vector<vertex_t> igraph_style(const Graph& g) { return make_igraph_runner(g)(); }

}  // namespace ecl::baselines
