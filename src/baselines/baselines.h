// Reimplementations of every comparator evaluated in the paper (Table 1),
// following the algorithm descriptions in the paper's Section 2. Each
// returns a label array over the graph's vertices; labels are canonical
// (component-minimum) unless noted.
//
// The parallel codes take a thread count (0 = OpenMP default). On machines
// with few cores they still run their parallel structure — the comparison
// in the benchmarks is between algorithms, as in the paper.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "graph/graph.h"

namespace ecl::baselines {

/// A prepared, ready-to-time CC computation. The prepare step (building a
/// code's native graph representation — the paper's untimed "graph
/// conversion", §4) happens in the make_*_runner factory; invoking the
/// runner performs and times only the CC computation.
using CcRunner = std::function<std::vector<vertex_t>()>;

// --- parallel CPU comparators ---------------------------------------------

/// Shiloach & Vishkin's classic hook + pointer-jump iteration [28]. Also the
/// algorithm CRONO implements.
[[nodiscard]] std::vector<vertex_t> shiloach_vishkin(const Graph& g, int threads = 0);

/// Ligra+ "Comp" [22]: frontier-based label propagation that keeps the
/// previous label of every vertex and only processes vertices whose label
/// changed in the prior iteration.
[[nodiscard]] std::vector<vertex_t> label_prop(const Graph& g, int threads = 0);

/// Ligra+ "BFSCC" [21]: iterate over the vertices and run a parallel
/// breadth-first search from every still-unvisited one.
[[nodiscard]] std::vector<vertex_t> bfs_cc(const Graph& g, int threads = 0);

/// Multistep [33]: one parallel BFS rooted at the maximum-degree vertex,
/// label propagation on the remaining subgraph, then a serial tail once few
/// vertices are left.
[[nodiscard]] std::vector<vertex_t> multistep(const Graph& g, int threads = 0);

/// ndHybrid [30] (Shun, Dhulipala & Blelloch): low-diameter decomposition by
/// concurrent BFS ball growing, contraction of each partition to a single
/// vertex, and recursion on the contracted graph.
[[nodiscard]] std::vector<vertex_t> ndhybrid(const Graph& g, int threads = 0);

/// CRONO [1]: Shiloach-Vishkin on an n x dmax adjacency matrix. Mirrors the
/// original's memory behaviour: throws std::bad_alloc-like failure by
/// returning an empty vector when the matrix would exceed `memory_limit`
/// bytes (the paper reports "n/a" for those inputs).
[[nodiscard]] std::vector<vertex_t> crono(const Graph& g, int threads = 0,
                                          std::size_t memory_limit = std::size_t{2} << 30);

/// CRONO with its matrix prebuilt in the (untimed) prepare step.
[[nodiscard]] CcRunner make_crono_runner(const Graph& g, int threads = 0,
                                         std::size_t memory_limit = std::size_t{2} << 30);

/// True if CRONO's n x dmax matrix fits within `memory_limit`.
[[nodiscard]] bool crono_supports(const Graph& g,
                                  std::size_t memory_limit = std::size_t{2} << 30);

/// Galois asynchronous CC [19]: visit each edge exactly once (one direction
/// only), merge endpoints in a concurrent union-find that uses a restricted
/// (single) form of pointer jumping.
[[nodiscard]] std::vector<vertex_t> galois_async(const Graph& g, int threads = 0);

// --- serial library comparators --------------------------------------------

/// Boost incremental_components flavour [3]: rank + full-path-compression
/// union-find accessed through property-map indirection, over a
/// vector-of-vectors adjacency_list.
[[nodiscard]] std::vector<vertex_t> boost_style(const Graph& g);
[[nodiscard]] CcRunner make_boost_runner(const Graph& g);

/// igraph flavour [17]: dqueue-based BFS over igraph's edge arrays with
/// sorted incidence indices (double indirection per neighbor).
[[nodiscard]] std::vector<vertex_t> igraph_style(const Graph& g);
[[nodiscard]] CcRunner make_igraph_runner(const Graph& g);

/// LEMON flavour [20]: DFS over ListGraph-style linked arc lists.
[[nodiscard]] std::vector<vertex_t> lemon_style(const Graph& g);
[[nodiscard]] CcRunner make_lemon_runner(const Graph& g);

/// Galois serial CC: the asynchronous algorithm run through the Galois
/// execution model (edge work items drained from a chunked worklist via an
/// indirect operator call), without atomics.
[[nodiscard]] std::vector<vertex_t> galois_serial(const Graph& g);

}  // namespace ecl::baselines
