// Shiloach & Vishkin's O(log n) parallel connectivity algorithm [28]:
// repeated parallel hooking over all edges followed by parallel pointer
// jumping, iterated until a fixed point.
#include <atomic>
#include <omp.h>

#include "baselines/baselines.h"

namespace ecl::baselines {

std::vector<vertex_t> shiloach_vishkin(const Graph& g, int threads) {
  const vertex_t n = g.num_vertices();
  const int nt = threads > 0 ? threads : omp_get_max_threads();
  std::vector<vertex_t> label(n);
  for (vertex_t v = 0; v < n; ++v) label[v] = v;

  bool changed = n > 0;
  while (changed) {
    changed = false;

    // Hooking: for every edge (u, w), if u's parent is a root and w carries
    // a smaller label, hook u's root under it. Races are resolved by the
    // monotone min rule: labels only ever decrease, so a lost update is
    // redone in a later iteration.
#pragma omp parallel for schedule(guided) num_threads(nt) reduction(|| : changed)
    for (vertex_t u = 0; u < n; ++u) {
      for (const vertex_t w : g.neighbors(u)) {
        const vertex_t pu = label[u];
        const vertex_t pw = label[w];
        if (pw < pu && pu == label[pu]) {
          std::atomic_ref<vertex_t> root(label[pu]);
          vertex_t expected = pu;
          if (root.compare_exchange_strong(expected, pw, std::memory_order_relaxed)) {
            changed = true;
          }
        }
      }
    }

    // Pointer jumping: label[v] <- label[label[v]] until every path has
    // length one.
    bool jumped = true;
    while (jumped) {
      jumped = false;
#pragma omp parallel for schedule(static) num_threads(nt) reduction(|| : jumped)
      for (vertex_t v = 0; v < n; ++v) {
        const vertex_t p = label[v];
        const vertex_t pp = label[p];
        if (p != pp) {
          label[v] = pp;
          jumped = true;
        }
      }
    }
  }
  return label;
}

}  // namespace ecl::baselines
