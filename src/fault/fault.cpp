#include "fault/fault.h"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "common/rng.h"
#include "obs/metrics.h"

namespace ecl::fault {

// Per-clause runtime state lives next to its spec; pass/fire counters are
// guarded by the registry mutex (fault evaluation is off the hot path the
// moment anything is armed, so a single lock is fine and keeps the
// every/after/times arithmetic exact under concurrency).
struct Registry::Clause {
  PointSpec spec;
  std::uint64_t passes = 0;  // evaluations seen
  std::uint64_t fires = 0;   // outcomes actually returned
  Xoshiro256 rng{1};

  explicit Clause(PointSpec s) : spec(std::move(s)), rng(spec.seed) {}
};

struct Registry::Impl {
  mutable std::mutex mu;
  std::vector<Clause> clauses;
  std::unordered_map<std::string, std::uint64_t> fired_by_point;
  std::uint64_t total_fired = 0;
};

Registry::Impl& Registry::impl() const {
  static Impl instance;
  return instance;
}

namespace {

/// Uniform double in [0, 1) from the top 53 bits, matching the portable
/// distributions in common/rng.h.
double next_unit(Xoshiro256& rng) {
  return static_cast<double>(rng.next() >> 11) * 0x1.0p-53;
}

bool parse_u64(const std::string& s, std::uint64_t& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  out = v;
  return true;
}

bool parse_double(const std::string& s, double& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) return false;
  out = v;
  return true;
}

bool parse_action(const std::string& s, Action& out) {
  if (s == "fail") out = Action::kFail;
  else if (s == "short") out = Action::kShort;
  else if (s == "delay") out = Action::kDelay;
  else if (s == "oom") out = Action::kOom;
  else if (s == "kill") out = Action::kKill;
  else return false;
  return true;
}

/// Parses one `point=action[,key=value...]` clause.
bool parse_clause(const std::string& clause, PointSpec& out, std::string* err) {
  const auto fail = [&](const std::string& what) {
    if (err != nullptr) *err = what + " in fault clause '" + clause + "'";
    return false;
  };
  const std::size_t eq = clause.find('=');
  if (eq == std::string::npos || eq == 0) return fail("missing point name");
  out = PointSpec{};
  out.point = clause.substr(0, eq);

  std::size_t pos = eq + 1;
  bool first = true;
  while (pos <= clause.size()) {
    std::size_t comma = clause.find(',', pos);
    if (comma == std::string::npos) comma = clause.size();
    const std::string token = clause.substr(pos, comma - pos);
    if (first) {
      if (!parse_action(token, out.action)) return fail("unknown action '" + token + "'");
      first = false;
    } else {
      const std::size_t keq = token.find('=');
      if (keq == std::string::npos) return fail("expected key=value, got '" + token + "'");
      const std::string key = token.substr(0, keq);
      const std::string val = token.substr(keq + 1);
      bool ok = true;
      if (key == "arg") ok = parse_u64(val, out.arg);
      else if (key == "after") ok = parse_u64(val, out.after);
      else if (key == "times") ok = parse_u64(val, out.times);
      else if (key == "every") ok = parse_u64(val, out.every) && out.every > 0;
      else if (key == "seed") ok = parse_u64(val, out.seed);
      else if (key == "prob")
        ok = parse_double(val, out.prob) && out.prob >= 0.0 && out.prob <= 1.0;
      else return fail("unknown key '" + key + "'");
      if (!ok) return fail("bad value for '" + key + "'");
    }
    pos = comma + 1;
    if (comma == clause.size()) break;
  }
  if (first) return fail("missing action");
  return true;
}

}  // namespace

bool Registry::arm(const std::string& spec, std::string* err) {
  // Parse everything first: a bad clause arms nothing.
  std::vector<PointSpec> parsed;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t semi = spec.find(';', pos);
    if (semi == std::string::npos) semi = spec.size();
    const std::string clause = spec.substr(pos, semi - pos);
    if (!clause.empty()) {
      PointSpec ps;
      if (!parse_clause(clause, ps, err)) return false;
      parsed.push_back(std::move(ps));
    }
    pos = semi + 1;
    if (semi == spec.size()) break;
  }
  for (auto& ps : parsed) arm_point(std::move(ps));
  return true;
}

void Registry::arm_point(PointSpec spec) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  i.clauses.emplace_back(std::move(spec));
  armed_.store(true, std::memory_order_release);
}

void Registry::disarm_all() {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  i.clauses.clear();
  i.fired_by_point.clear();
  i.total_fired = 0;
  armed_.store(false, std::memory_order_release);
}

Outcome Registry::evaluate(std::string_view point) noexcept {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  for (Clause& c : i.clauses) {
    if (c.spec.point != point) continue;
    const std::uint64_t pass = c.passes++;
    if (pass < c.spec.after) continue;
    if (c.fires >= c.spec.times) continue;
    if ((pass - c.spec.after) % c.spec.every != 0) continue;
    if (c.spec.prob < 1.0 && next_unit(c.rng) >= c.spec.prob) continue;
    ++c.fires;
    ++i.fired_by_point[std::string(point)];
    ++i.total_fired;
    ECL_OBS_COUNTER_ADD("ecl.fault.injected", 1);
    return Outcome{c.spec.action, c.spec.arg};
  }
  return Outcome{};
}

std::uint64_t Registry::fired(std::string_view point) const {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  const auto it = i.fired_by_point.find(std::string(point));
  return it == i.fired_by_point.end() ? 0 : it->second;
}

std::uint64_t Registry::total_fired() const {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  return i.total_fired;
}

Registry& Registry::instance() {
  static Registry* reg = [] {
    auto* r = new Registry();
    if (const char* env = std::getenv("ECL_FAULT"); env != nullptr && env[0] != '\0') {
      std::string err;
      if (!r->arm(env, &err)) {
        std::fprintf(stderr, "warning: ignoring malformed ECL_FAULT: %s\n",
                     err.c_str());
      }
    }
    return r;
  }();
  return *reg;
}

void apply_delay(const Outcome& outcome) {
  if (outcome.action == Action::kDelay && outcome.arg > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(outcome.arg));
  }
}

}  // namespace ecl::fault
