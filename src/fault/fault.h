// ecl::fault — deterministic fault injection for robustness testing.
//
// A fault *point* is a named site in production code (e.g. "svc.net.read",
// "svc.wal.fsync") that asks the registry, on every pass, whether a fault
// should fire there. Nothing fires unless a matching spec has been armed,
// either programmatically (Registry::arm) or through the ECL_FAULT
// environment variable, so production binaries carry the points at the cost
// of one relaxed atomic load per pass — and builds with -DECL_FAULT_DISABLED
// compile every point down to a constant, the same compile-out contract as
// ECL_OBS_DISABLED (the class definitions themselves stay flag-independent,
// so instrumented and uninstrumented objects can meet in one binary).
//
// Spec grammar (ECL_FAULT or Registry::arm):
//
//   spec    := clause (';' clause)*
//   clause  := point '=' action (',' key '=' value)*
//   action  := fail | short | delay | oom | kill
//   key     := arg | after | times | every | prob | seed
//
//   ECL_FAULT='svc.net.read=fail,after=100,times=3'
//   ECL_FAULT='svc.net.write=delay,arg=5000,prob=0.01,seed=7;svc.wal.fsync=fail'
//
// Matching is exact on the point name. Firing is deterministic: the first
// `after` passes are skipped, then every `every`-th eligible pass fires, at
// most `times` times; `prob` thins eligible passes through a seeded xoshiro
// stream (same seed => same firing pattern, independent of wall clock).
//
// The registry never applies a fault itself — it returns an Outcome and the
// site decides what "fail" or "short" means locally (return EIO, truncate a
// read, throw, ...). This keeps the layer free of policy and usable from
// any subsystem.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ecl::fault {

enum class Action : std::uint8_t {
  kNone = 0,   // nothing armed / did not fire
  kFail = 1,   // site should fail as if the operation returned an error
  kShort = 2,  // site should deliver only `arg` bytes, then fail
  kDelay = 3,  // site should sleep `arg` microseconds, then proceed
  kOom = 4,    // site should behave as if allocation failed
  kKill = 5,   // site should terminate its worker (thread death, not process)
};

/// What a fault point should do on this pass. kNone means proceed normally.
struct Outcome {
  Action action = Action::kNone;
  std::uint64_t arg = 0;  // kShort: byte budget; kDelay: microseconds

  [[nodiscard]] bool fired() const { return action != Action::kNone; }
};

/// One armed clause. Fields mirror the spec grammar.
struct PointSpec {
  std::string point;
  Action action = Action::kFail;
  std::uint64_t arg = 0;
  std::uint64_t after = 0;                    // skip the first N passes
  std::uint64_t times = ~std::uint64_t{0};    // fire at most N times
  std::uint64_t every = 1;                    // then fire every Nth pass
  double prob = 1.0;                          // thin eligible passes
  std::uint64_t seed = 1;                     // for the prob stream
};

class Registry {
 public:
  /// Parses and arms a spec string (see grammar above). On a parse error
  /// nothing is armed and *err (when given) names the offending clause.
  [[nodiscard]] bool arm(const std::string& spec, std::string* err = nullptr);

  /// Arms one clause programmatically.
  void arm_point(PointSpec spec);

  /// Removes every armed clause and zeroes the per-point counters.
  void disarm_all();

  /// True when at least one clause is armed. One relaxed load — this is the
  /// production fast path that ECL_FAULT_POINT checks before anything else.
  [[nodiscard]] bool armed() const {
    return armed_.load(std::memory_order_relaxed);
  }

  /// Evaluates one pass of `point`. Returns the first matching clause's
  /// outcome, or kNone. Thread-safe; deterministic per clause.
  [[nodiscard]] Outcome evaluate(std::string_view point) noexcept;

  /// Times a fault actually fired at `point` (all clauses combined).
  [[nodiscard]] std::uint64_t fired(std::string_view point) const;

  /// Total faults fired across every point since the last disarm_all().
  [[nodiscard]] std::uint64_t total_fired() const;

  /// The process-wide registry. On first use it arms itself from the
  /// ECL_FAULT environment variable (a malformed value is reported to
  /// stderr and ignored — a typo must not silently disable a chaos run
  /// *and* must not take the process down).
  static Registry& instance();

 private:
  struct Clause;
  struct Impl;
  Impl& impl() const;

  std::atomic<bool> armed_{false};
};

/// Convenience for sites: sleeps when the outcome is kDelay (microseconds).
void apply_delay(const Outcome& outcome);

}  // namespace ecl::fault

// ---------------------------------------------------------------------------
// Record-site macro: the compile-out boundary. With ECL_FAULT_DISABLED every
// point evaluates to a constant kNone outcome; otherwise a disarmed registry
// costs one relaxed atomic load.
#if defined(ECL_FAULT_DISABLED)

#define ECL_FAULT_POINT(point_literal) (::ecl::fault::Outcome{})

#else

#define ECL_FAULT_POINT(point_literal)                        \
  (::ecl::fault::Registry::instance().armed()                 \
       ? ::ecl::fault::Registry::instance().evaluate(point_literal) \
       : ::ecl::fault::Outcome{})

#endif  // ECL_FAULT_DISABLED
