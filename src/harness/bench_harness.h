// Shared infrastructure for the reproduction benchmarks (bench/): suite
// loading, the paper's measurement protocol (median of 3), normalized
// "higher is worse" ratio tables with geometric-mean footers, CSV output,
// and machine-readable JSON run reports (--report, see obs/report.h).
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/cli.h"
#include "common/table.h"
#include "graph/graph.h"
#include "obs/report.h"

namespace ecl::harness {

/// Configuration shared by all bench binaries, parsed from the common flags
///   --scale=<f>       vertex-count multiplier on the suite defaults
///   --reps=<n>        repetitions per measurement (median reported)
///   --graphs=a,b      run only the named suite graphs
///   --small           run the reduced 5-graph suite
///   --csv-dir=<d>     also write each table as CSV into <d> (created if missing)
///   --report=<f.json> write a machine-readable run report (raw per-rep
///                     times, metrics snapshot, host metadata) to <f.json>
struct BenchConfig {
  double scale = 1.0;
  int reps = 3;
  std::vector<std::string> graph_filter;  // empty = full suite
  std::string csv_dir;
  std::string report_path;
};

/// Parses the common flags; `default_scale` lets expensive benches default
/// to smaller inputs. Warns on unknown flags.
[[nodiscard]] BenchConfig parse_config(int argc, const char* const* argv,
                                       double default_scale = 1.0);

/// Builds the configured subset of the 18-graph suite (in Table 2 order).
[[nodiscard]] std::vector<std::pair<std::string, Graph>> load_suite(const BenchConfig& cfg);

/// Prints `table` as markdown to stdout and, if csv_dir is set, writes
/// <csv_dir>/<csv_name>.csv (creating csv_dir if missing). If report_path is
/// set, (re)writes the accumulated run report there as well, so the report
/// on disk is complete after every emitted table.
void emit(const Table& table, const BenchConfig& cfg, const std::string& csv_name);

/// One timed cell: every repetition's wall-clock time plus the summary
/// statistics the tables and reports need.
struct Measurement {
  std::vector<double> rep_ms;  // raw per-repetition times, in run order
  double min_ms = 0.0;
  double median_ms = 0.0;
  double max_ms = 0.0;
};

/// Runs `fn` cfg.reps times (>= 1) and returns all repetition times with
/// min/median/max, so callers can report run-to-run spread instead of
/// discarding everything but the median.
[[nodiscard]] Measurement measure(const BenchConfig& cfg, const std::function<void()>& fn);

/// Median-of-reps wall-clock milliseconds of `fn` (the paper's protocol).
[[nodiscard]] double measure_ms(const BenchConfig& cfg, const std::function<void()>& fn);

/// measure() + record the raw repetition times into the run report under
/// (graph, code) when --report is active. Returns the median, which is what
/// the paper's tables use.
double measure_cell(const BenchConfig& cfg, const std::string& graph,
                    const std::string& code, const std::function<void()>& fn);

/// Records externally obtained per-rep times (e.g. the simulator's modeled
/// kernel times, which are not wall-clock measured) into the run report.
void record_cell(const BenchConfig& cfg, const std::string& graph, const std::string& code,
                 std::vector<double> rep_ms);

/// The process-wide run report the helpers above record into.
[[nodiscard]] obs::RunReport& report();

/// Builder for the paper's normalized figures: rows are graphs, columns are
/// codes, cells are runtime relative to the reference code (> 1 = slower,
/// the paper's "higher is worse"), and the footer row is the geometric mean
/// over the graphs each code completed.
class RatioTable {
 public:
  /// `reference` is the code every column is normalized to (ECL-CC).
  RatioTable(std::string caption, std::string reference_name,
             std::vector<std::string> code_names);

  /// Records the absolute runtime of `code` on `graph`; use nullopt for
  /// "n/a" (unsupported input).
  void record(const std::string& graph, const std::string& code,
              std::optional<double> runtime_ms);

  /// The normalized figure table.
  [[nodiscard]] Table normalized() const;

  /// The companion absolute-runtime table (paper Tables 5-10), in ms.
  [[nodiscard]] Table absolute(const std::string& caption) const;

  /// Geometric-mean slowdown of `code` vs the reference (over the graphs
  /// where both ran).
  [[nodiscard]] std::optional<double> geomean(const std::string& code) const;

 private:
  struct Cell {
    std::optional<double> ms;
  };
  [[nodiscard]] std::size_t code_index(const std::string& code) const;

  std::string caption_;
  std::string reference_;
  std::vector<std::string> codes_;
  std::vector<std::string> graphs_;                // row order
  std::vector<std::vector<Cell>> cells_;           // [graph][code]
};

}  // namespace ecl::harness
