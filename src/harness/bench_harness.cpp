#include "harness/bench_harness.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <sstream>

#include "common/stats.h"
#include "graph/suite.h"

namespace ecl::harness {

BenchConfig parse_config(int argc, const char* const* argv, double default_scale) {
  CliArgs args(argc, argv);
  BenchConfig cfg;
  cfg.scale = args.get_double("scale", default_scale);
  cfg.reps = static_cast<int>(args.get_int("reps", 3));
  cfg.csv_dir = args.get("csv-dir", "");
  cfg.report_path = args.get("report", "");
  if (args.has("small")) {
    cfg.graph_filter = small_suite_names();
  }
  const std::string list = args.get("graphs", "");
  if (!list.empty()) {
    cfg.graph_filter.clear();
    std::istringstream ss(list);
    std::string item;
    while (std::getline(ss, item, ',')) {
      if (!item.empty()) cfg.graph_filter.push_back(item);
    }
  }
  for (const auto& flag : args.unused()) {
    std::cerr << "warning: unknown flag --" << flag << " (ignored)\n";
  }
  return cfg;
}

std::vector<std::pair<std::string, Graph>> load_suite(const BenchConfig& cfg) {
  std::vector<std::pair<std::string, Graph>> graphs;
  for (const auto& name : suite_names()) {
    if (!cfg.graph_filter.empty() &&
        std::find(cfg.graph_filter.begin(), cfg.graph_filter.end(), name) ==
            cfg.graph_filter.end()) {
      continue;
    }
    graphs.emplace_back(name, make_suite_graph(name, cfg.scale));
  }
  return graphs;
}

void emit(const Table& table, const BenchConfig& cfg, const std::string& csv_name) {
  table.write_markdown(std::cout);
  if (!cfg.csv_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(cfg.csv_dir, ec);
    if (ec) {
      std::cerr << "warning: could not create " << cfg.csv_dir << ": " << ec.message()
                << "\n";
    }
    const std::string path = cfg.csv_dir + "/" + csv_name + ".csv";
    if (!table.save_csv(path)) {
      std::cerr << "warning: could not write " << path << "\n";
    }
  }
  if (!cfg.report_path.empty()) {
    // Rewrite the accumulated report on every emit: the first emit names the
    // bench, later emits refresh the cells and metrics snapshot, and the
    // file on disk is valid even if the bench stops between tables.
    report().set_bench_name(csv_name);
    report().set_config(cfg.scale, cfg.reps);
    if (!report().write_file(cfg.report_path)) {
      std::cerr << "warning: could not write " << cfg.report_path << "\n";
    }
  }
}

Measurement measure(const BenchConfig& cfg, const std::function<void()>& fn) {
  const int reps = std::max(1, cfg.reps);
  Measurement m;
  m.rep_ms.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    Timer t;
    fn();
    m.rep_ms.push_back(t.millis());
  }
  m.min_ms = minimum(m.rep_ms);
  m.median_ms = median(m.rep_ms);
  m.max_ms = maximum(m.rep_ms);
  return m;
}

double measure_ms(const BenchConfig& cfg, const std::function<void()>& fn) {
  return measure(cfg, fn).median_ms;
}

double measure_cell(const BenchConfig& cfg, const std::string& graph,
                    const std::string& code, const std::function<void()>& fn) {
  Measurement m = measure(cfg, fn);
  record_cell(cfg, graph, code, std::move(m.rep_ms));
  return m.median_ms;
}

void record_cell(const BenchConfig& cfg, const std::string& graph, const std::string& code,
                 std::vector<double> rep_ms) {
  if (cfg.report_path.empty()) return;
  report().add_cell(graph, code, std::move(rep_ms));
}

obs::RunReport& report() { return obs::run_report(); }

RatioTable::RatioTable(std::string caption, std::string reference_name,
                       std::vector<std::string> code_names)
    : caption_(std::move(caption)),
      reference_(std::move(reference_name)),
      codes_(std::move(code_names)) {}

std::size_t RatioTable::code_index(const std::string& code) const {
  const auto it = std::find(codes_.begin(), codes_.end(), code);
  if (it == codes_.end()) {
    std::fprintf(stderr, "RatioTable: unknown code '%s'\n", code.c_str());
    std::abort();
  }
  return static_cast<std::size_t>(it - codes_.begin());
}

void RatioTable::record(const std::string& graph, const std::string& code,
                        std::optional<double> runtime_ms) {
  auto row = std::find(graphs_.begin(), graphs_.end(), graph);
  if (row == graphs_.end()) {
    graphs_.push_back(graph);
    cells_.emplace_back(codes_.size());
    row = graphs_.end() - 1;
  }
  cells_[static_cast<std::size_t>(row - graphs_.begin())][code_index(code)].ms = runtime_ms;
}

Table RatioTable::normalized() const {
  Table t(caption_);
  std::vector<std::string> header{"Graph"};
  for (const auto& code : codes_) header.push_back(code);
  t.set_header(std::move(header));

  const std::size_t ref = code_index(reference_);
  for (std::size_t r = 0; r < graphs_.size(); ++r) {
    std::vector<std::string> row{graphs_[r]};
    const auto& base = cells_[r][ref].ms;
    for (std::size_t c = 0; c < codes_.size(); ++c) {
      const auto& ms = cells_[r][c].ms;
      if (!ms || !base || *base <= 0.0) {
        row.push_back("n/a");
      } else {
        row.push_back(Table::fmt(*ms / *base, 2));
      }
    }
    t.add_row(std::move(row));
  }

  std::vector<std::string> footer{"geometric mean"};
  for (const auto& code : codes_) {
    const auto gm = geomean(code);
    footer.push_back(gm ? Table::fmt(*gm, 2) : "n/a");
  }
  t.add_row(std::move(footer));
  return t;
}

Table RatioTable::absolute(const std::string& caption) const {
  Table t(caption);
  std::vector<std::string> header{"Graph"};
  for (const auto& code : codes_) header.push_back(code);
  t.set_header(std::move(header));
  for (std::size_t r = 0; r < graphs_.size(); ++r) {
    std::vector<std::string> row{graphs_[r]};
    for (std::size_t c = 0; c < codes_.size(); ++c) {
      const auto& ms = cells_[r][c].ms;
      row.push_back(ms ? Table::fmt(*ms, *ms < 10 ? 2 : 1) : "n/a");
    }
    t.add_row(std::move(row));
  }
  return t;
}

std::optional<double> RatioTable::geomean(const std::string& code) const {
  const std::size_t ref = code_index(reference_);
  const std::size_t c = code_index(code);
  std::vector<double> ratios;
  for (std::size_t r = 0; r < graphs_.size(); ++r) {
    const auto& base = cells_[r][ref].ms;
    const auto& ms = cells_[r][c].ms;
    if (base && ms && *base > 0.0 && *ms > 0.0) {
      ratios.push_back(*ms / *base);
    }
  }
  if (ratios.empty()) return std::nullopt;
  return geometric_mean(ratios);
}

}  // namespace ecl::harness
