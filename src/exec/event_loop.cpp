#include "exec/event_loop.h"

#include <fcntl.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <utility>

#include "obs/metrics.h"

namespace ecl::exec {

namespace {

constexpr std::size_t kReadChunk = 64 * 1024;
/// Per-wake read cap: level-triggered epoll re-fires for the rest, so one
/// firehose connection cannot starve its loop-mates.
constexpr std::size_t kMaxReadPerWake = 256 * 1024;
/// Safety cap on epoll_wait sleeps; the wake eventfd makes longer sleeps
/// unnecessary and this bounds the damage of any stale timer hint.
constexpr int kMaxPollMs = 500;

}  // namespace

const char* close_reason_name(CloseReason r) {
  switch (r) {
    case CloseReason::kAppClose: return "app_close";
    case CloseReason::kPeerClosed: return "peer_closed";
    case CloseReason::kProtocolError: return "protocol_error";
    case CloseReason::kSocketError: return "socket_error";
    case CloseReason::kIdleTimeout: return "idle_timeout";
    case CloseReason::kFrameTimeout: return "frame_timeout";
    case CloseReason::kWriteStall: return "write_stall";
    case CloseReason::kWriteOverflow: return "write_overflow";
    case CloseReason::kShutdown: return "shutdown";
  }
  return "unknown";
}

// --- Conn ------------------------------------------------------------------

void Conn::send(const void* data, std::size_t n) {
  if (closing_ || n == 0) return;
  if (write_buffer_bytes() + n > opts_.write_buffer_limit) {
    loop_->queue_close(this, CloseReason::kWriteOverflow);
    return;
  }
  if (woff_ == wbuf_.size()) {
    wbuf_.clear();
    woff_ = 0;
  } else if (woff_ >= kReadChunk && woff_ > wbuf_.size() / 2) {
    wbuf_.erase(wbuf_.begin(), wbuf_.begin() + static_cast<std::ptrdiff_t>(woff_));
    woff_ = 0;
  }
  const auto* p = static_cast<const std::uint8_t*>(data);
  wbuf_.insert(wbuf_.end(), p, p + n);
  // High-watermark: how deep any connection's unsent backlog ever got.
  auto& hwm = loop_->counters_->write_buf_hwm;
  const std::uint64_t depth = write_buffer_bytes();
  std::uint64_t prev = hwm.load(std::memory_order_relaxed);
  while (depth > prev &&
         !hwm.compare_exchange_weak(prev, depth, std::memory_order_relaxed)) {
  }
  // Inside an on_frame stack, pipelined responses batch into one flush at
  // the end of the event; a send() from a posted task flushes now.
  if (!in_event_) loop_->flush_writes(this);
}

void Conn::send_frame(const void* payload, std::size_t n) {
  std::uint8_t prefix[4];
  for (int i = 0; i < 4; ++i) {
    prefix[i] = static_cast<std::uint8_t>((n >> (8 * i)) & 0xff);
  }
  const bool was_in_event = in_event_;
  in_event_ = true;  // suppress the flush between prefix and payload
  send(prefix, sizeof(prefix));
  in_event_ = was_in_event;
  send(payload, n);
}

void Conn::close(CloseReason reason) { loop_->queue_close(this, reason); }

// --- EventLoop -------------------------------------------------------------

EventLoop::EventLoop(LoopCounters* counters)
    : counters_(counters != nullptr ? counters : &local_counters_),
      start_tp_(std::chrono::steady_clock::now()) {
  epfd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wakefd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epfd_ >= 0 && wakefd_ >= 0) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = wakefd_;
    (void)::epoll_ctl(epfd_, EPOLL_CTL_ADD, wakefd_, &ev);
  }
}

EventLoop::~EventLoop() {
  request_stop();
  join();
  if (epfd_ >= 0) ::close(epfd_);
  if (wakefd_ >= 0) ::close(wakefd_);
}

std::uint64_t EventLoop::now_ms() const {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::milliseconds>(
                                        std::chrono::steady_clock::now() - start_tp_)
                                        .count());
}

bool EventLoop::start(std::string* err) {
  if (started_) return true;
  if (epfd_ < 0 || wakefd_ < 0) {
    if (err != nullptr) *err = "event loop: epoll/eventfd setup failed";
    return false;
  }
  started_ = true;
  thread_ = std::thread([this] { run(); });
  return true;
}

void EventLoop::request_stop() {
  stop_.store(true, std::memory_order_release);
  if (wakefd_ >= 0) {
    const std::uint64_t one = 1;
    (void)!::write(wakefd_, &one, sizeof(one));
  }
}

void EventLoop::join() {
  if (thread_.joinable()) thread_.join();
}

void EventLoop::post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(posts_mu_);
    posts_.push_back(std::move(fn));
  }
  if (wakefd_ >= 0) {
    const std::uint64_t one = 1;
    (void)!::write(wakefd_, &one, sizeof(one));
  }
}

void EventLoop::post_after(int delay_ms, std::function<void()> fn) {
  timed_posts_.push_back(
      TimedPost{now_ms() + static_cast<std::uint64_t>(delay_ms > 0 ? delay_ms : 0),
                std::move(fn)});
}

Conn* EventLoop::adopt(int fd, ConnCallbacks cbs, ConnOptions opts) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  auto conn = std::unique_ptr<Conn>(new Conn());
  Conn* c = conn.get();
  c->fd_ = fd;
  c->loop_ = this;
  c->cbs_ = std::move(cbs);
  c->opts_ = opts;
  c->timer_.owner = c;
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = fd;
  if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    ::close(fd);
    return nullptr;
  }
  c->events_ = EPOLLIN;
  conns_.emplace(fd, std::move(conn));
  counters_->open_conns.fetch_add(1, std::memory_order_relaxed);
  ECL_OBS_GAUGE_SET("ecl.exec.conns.open",
                    static_cast<double>(counters_->open_conns.load(std::memory_order_relaxed)));
  update_deadlines(c);
  return c;
}

bool EventLoop::watch(int fd, std::function<void(std::uint32_t)> cb) {
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = fd;
  if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) != 0) return false;
  watches_[fd] = std::move(cb);
  return true;
}

void EventLoop::unwatch(int fd) {
  (void)::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);
  watches_.erase(fd);
}

void EventLoop::update_interest(Conn* c) {
  std::uint32_t want = 0;
  if (!c->closing_) {
    if (!c->read_paused_) want |= EPOLLIN;
    if (c->write_buffer_bytes() > 0) want |= EPOLLOUT;
  }
  if (want == c->events_) return;
  epoll_event ev{};
  ev.events = want;
  ev.data.fd = c->fd_;
  (void)::epoll_ctl(epfd_, EPOLL_CTL_MOD, c->fd_, &ev);
  c->events_ = want;
}

void EventLoop::update_deadlines(Conn* c) {
  if (c->closing_) return;
  const std::uint64_t now = now_ms();
  if (!c->mid_frame_) {
    c->read_deadline_ms_ =
        c->opts_.idle_timeout_ms > 0
            ? now + static_cast<std::uint64_t>(c->opts_.idle_timeout_ms)
            : 0;
  }
  // mid-frame deadlines are armed once at the frame's start (parse_frames)
  // and deliberately not refreshed by trickling bytes.
  std::uint64_t deadline = 0;
  if (c->read_deadline_ms_ != 0) deadline = c->read_deadline_ms_;
  if (c->write_deadline_ms_ != 0 &&
      (deadline == 0 || c->write_deadline_ms_ < deadline)) {
    deadline = c->write_deadline_ms_;
  }
  if (deadline == 0) {
    wheel_.disarm(&c->timer_);
  } else {
    wheel_.arm(&c->timer_, deadline);
  }
}

void EventLoop::queue_close(Conn* c, CloseReason reason) {
  if (c->closing_) return;
  c->closing_ = true;
  c->close_reason_ = reason;
  if (!c->pending_close_listed_) {
    c->pending_close_listed_ = true;
    pending_close_.push_back(c);
  }
}

void EventLoop::do_read(Conn* c) {
  std::size_t got = 0;
  bool eof = false;
  while (got < kMaxReadPerWake) {
    const std::size_t old = c->rbuf_.size();
    c->rbuf_.resize(old + kReadChunk);
    const ssize_t r = ::recv(c->fd_, c->rbuf_.data() + old, kReadChunk, 0);
    if (r > 0) {
      c->rbuf_.resize(old + static_cast<std::size_t>(r));
      got += static_cast<std::size_t>(r);
      counters_->bytes_in.fetch_add(static_cast<std::uint64_t>(r),
                                    std::memory_order_relaxed);
      if (static_cast<std::size_t>(r) < kReadChunk) break;  // drained
      continue;
    }
    c->rbuf_.resize(old);
    if (r == 0) {
      eof = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    queue_close(c, CloseReason::kSocketError);
    return;
  }
  if (eof) {
    // Parse what arrived before the FIN (responses flush best-effort from
    // destroy_pending), then close.
    parse_frames(c);
    if (!c->closing_) queue_close(c, CloseReason::kPeerClosed);
  }
}

void EventLoop::parse_frames(Conn* c) {
  auto& buf = c->rbuf_;
  while (!c->closing_) {
    if (c->write_buffer_bytes() > c->opts_.write_buffer_pause) {
      // Backpressure: stop consuming requests until responses drain.
      c->read_paused_ = true;
      break;
    }
    const std::size_t avail = buf.size() - c->roff_;
    if (avail < 4) break;
    std::uint32_t len = 0;
    for (int i = 0; i < 4; ++i) {
      len |= static_cast<std::uint32_t>(buf[c->roff_ + static_cast<std::size_t>(i)])
             << (8 * i);
    }
    if (len > c->opts_.max_frame_bytes) {
      queue_close(c, CloseReason::kProtocolError);
      return;
    }
    if (avail < 4 + static_cast<std::size_t>(len)) break;  // partial frame
    const std::span<const std::uint8_t> payload(buf.data() + c->roff_ + 4, len);
    c->roff_ += 4 + static_cast<std::size_t>(len);
    counters_->frames.fetch_add(1, std::memory_order_relaxed);
    if (c->cbs_.on_frame) c->cbs_.on_frame(*c, payload);
  }
  if (c->closing_) return;
  // Compact the parsed prefix once it dominates the buffer.
  if (c->roff_ == buf.size()) {
    buf.clear();
    c->roff_ = 0;
  } else if (c->roff_ >= kReadChunk && c->roff_ > buf.size() / 2) {
    buf.erase(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(c->roff_));
    c->roff_ = 0;
  }
  // Mid-frame tracking: unparsed bytes that are *missing* data (not merely
  // held back by backpressure) start the frame-completion clock once.
  const std::size_t avail = buf.size() - c->roff_;
  bool incomplete = false;
  if (avail > 0 && !c->read_paused_) {
    if (avail < 4) {
      incomplete = true;
    } else {
      std::uint32_t len = 0;
      for (int i = 0; i < 4; ++i) {
        len |= static_cast<std::uint32_t>(buf[c->roff_ + static_cast<std::size_t>(i)])
               << (8 * i);
      }
      incomplete = avail < 4 + static_cast<std::size_t>(len);
    }
  }
  if (incomplete && !c->mid_frame_) {
    c->mid_frame_ = true;
    c->read_deadline_ms_ =
        c->opts_.frame_timeout_ms > 0
            ? now_ms() + static_cast<std::uint64_t>(c->opts_.frame_timeout_ms)
            : 0;
  } else if (!incomplete && c->mid_frame_) {
    c->mid_frame_ = false;
    c->read_deadline_ms_ = 0;  // update_deadlines re-arms the idle clock
  }
}

void EventLoop::flush_writes(Conn* c) {
  if (c->closing_) return;
  bool progressed = false;
  while (c->woff_ < c->wbuf_.size()) {
    const ssize_t put = ::send(c->fd_, c->wbuf_.data() + c->woff_,
                               c->wbuf_.size() - c->woff_, MSG_NOSIGNAL);
    if (put > 0) {
      c->woff_ += static_cast<std::size_t>(put);
      counters_->bytes_out.fetch_add(static_cast<std::uint64_t>(put),
                                     std::memory_order_relaxed);
      progressed = true;
      continue;
    }
    if (put < 0 && errno == EINTR) continue;
    if (put < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    queue_close(c, CloseReason::kSocketError);
    return;
  }
  if (c->woff_ == c->wbuf_.size()) {
    c->wbuf_.clear();
    c->woff_ = 0;
    c->write_deadline_ms_ = 0;
  } else if (progressed || c->write_deadline_ms_ == 0) {
    // The stall clock measures time since the socket last accepted bytes.
    c->write_deadline_ms_ =
        c->opts_.write_stall_timeout_ms > 0
            ? now_ms() + static_cast<std::uint64_t>(c->opts_.write_stall_timeout_ms)
            : 0;
  }
  if (c->read_paused_ &&
      c->write_buffer_bytes() <= c->opts_.write_buffer_pause / 2) {
    c->read_paused_ = false;  // caller re-parses buffered requests
  }
  update_interest(c);
  update_deadlines(c);
}

void EventLoop::handle_conn_event(Conn* c, std::uint32_t events) {
  if ((events & EPOLLERR) != 0) {
    queue_close(c, CloseReason::kSocketError);
    return;
  }
  c->in_event_ = true;
  if ((events & (EPOLLIN | EPOLLHUP)) != 0 && !c->read_paused_) {
    do_read(c);
  } else if ((events & EPOLLHUP) != 0) {
    queue_close(c, CloseReason::kPeerClosed);
  }
  if (!c->closing_) parse_frames(c);
  c->in_event_ = false;
  if (!c->closing_) flush_writes(c);
  // flush_writes may have lifted the backpressure pause with requests still
  // buffered; serve them now (one more round — if the pause re-trips, the
  // armed EPOLLOUT keeps the cycle going on the next wake).
  if (!c->closing_ && !c->read_paused_ && c->rbuf_.size() - c->roff_ > 0) {
    c->in_event_ = true;
    parse_frames(c);
    c->in_event_ = false;
    if (!c->closing_) flush_writes(c);
  }
  if (!c->closing_) {
    update_interest(c);
    update_deadlines(c);
  }
}

void EventLoop::destroy_pending() {
  while (!pending_close_.empty()) {
    // on_close may itself queue closes (rare); swap keeps iteration sane.
    std::vector<Conn*> batch;
    batch.swap(pending_close_);
    for (Conn* c : batch) {
      // Courtesy flush on non-eviction closes so a final response (the
      // shutdown ack, or the kInvalid reply that precedes a protocol-error
      // close) reaches peers that are still reading. Evictions skip it:
      // their write buffers are exactly what the peer refused to drain.
      if ((c->close_reason_ == CloseReason::kAppClose ||
           c->close_reason_ == CloseReason::kShutdown ||
           c->close_reason_ == CloseReason::kPeerClosed ||
           c->close_reason_ == CloseReason::kProtocolError) &&
          c->woff_ < c->wbuf_.size()) {
        while (c->woff_ < c->wbuf_.size()) {
          const ssize_t put = ::send(c->fd_, c->wbuf_.data() + c->woff_,
                                     c->wbuf_.size() - c->woff_, MSG_NOSIGNAL);
          if (put <= 0) {
            if (put < 0 && errno == EINTR) continue;
            break;
          }
          c->woff_ += static_cast<std::size_t>(put);
          counters_->bytes_out.fetch_add(static_cast<std::uint64_t>(put),
                                         std::memory_order_relaxed);
        }
      }
      switch (c->close_reason_) {
        case CloseReason::kIdleTimeout:
          counters_->evicted_idle.fetch_add(1, std::memory_order_relaxed);
          break;
        case CloseReason::kFrameTimeout:
          counters_->evicted_frame.fetch_add(1, std::memory_order_relaxed);
          break;
        case CloseReason::kWriteStall:
          counters_->evicted_stall.fetch_add(1, std::memory_order_relaxed);
          break;
        case CloseReason::kWriteOverflow:
          counters_->evicted_overflow.fetch_add(1, std::memory_order_relaxed);
          break;
        default:
          break;
      }
      wheel_.remove(&c->timer_);
      const int fd = c->fd_;
      (void)::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);
      if (c->cbs_.on_close) c->cbs_.on_close(*c, c->close_reason_);
      ::close(fd);
      counters_->open_conns.fetch_sub(1, std::memory_order_relaxed);
      conns_.erase(fd);  // frees c
    }
  }
  ECL_OBS_GAUGE_SET("ecl.exec.conns.open",
                    static_cast<double>(counters_->open_conns.load(std::memory_order_relaxed)));
}

void EventLoop::drain_posts() {
  std::vector<std::function<void()>> batch;
  {
    std::lock_guard<std::mutex> lock(posts_mu_);
    batch.swap(posts_);
  }
  for (auto& fn : batch) fn();
}

int EventLoop::compute_timeout_ms() {
  {
    std::lock_guard<std::mutex> lock(posts_mu_);
    if (!posts_.empty()) return 0;
  }
  const std::uint64_t now = now_ms();
  int timeout = wheel_.next_timeout_ms(now);
  for (const auto& tp : timed_posts_) {
    const int left = tp.due_ms > now ? static_cast<int>(tp.due_ms - now) : 0;
    if (timeout < 0 || left < timeout) timeout = left;
  }
  if (timeout < 0 || timeout > kMaxPollMs) timeout = kMaxPollMs;
  return timeout;
}

void EventLoop::run() {
  std::array<epoll_event, 128> evs;
  while (!stop_.load(std::memory_order_acquire)) {
    const int timeout = compute_timeout_ms();
    const int n = ::epoll_wait(epfd_, evs.data(), static_cast<int>(evs.size()), timeout);
    counters_->wakeups.fetch_add(1, std::memory_order_relaxed);
    ECL_OBS_COUNTER_ADD("ecl.exec.wakeups", 1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = evs[static_cast<std::size_t>(i)].data.fd;
      const std::uint32_t events = evs[static_cast<std::size_t>(i)].events;
      if (fd == wakefd_) {
        std::uint64_t junk = 0;
        while (::read(wakefd_, &junk, sizeof(junk)) > 0) {
        }
        continue;
      }
      if (auto w = watches_.find(fd); w != watches_.end()) {
        // Copy: the callback may unwatch(fd) (e.g. accept backoff).
        auto cb = w->second;
        cb(events);
        continue;
      }
      if (auto it = conns_.find(fd); it != conns_.end()) {
        Conn* c = it->second.get();
        if (!c->closing_) handle_conn_event(c, events);
      }
    }
    drain_posts();
    // Due deferred tasks (accept re-arm, load-generator stop, ...).
    if (!timed_posts_.empty()) {
      const std::uint64_t now = now_ms();
      std::vector<std::function<void()>> due;
      for (std::size_t i = 0; i < timed_posts_.size();) {
        if (timed_posts_[i].due_ms <= now) {
          due.push_back(std::move(timed_posts_[i].fn));
          timed_posts_[i] = std::move(timed_posts_.back());
          timed_posts_.pop_back();
        } else {
          ++i;
        }
      }
      for (auto& fn : due) fn();
    }
    wheel_.advance(now_ms(), [this](void* owner) {
      auto* c = static_cast<Conn*>(owner);
      if (c->closing_) return;
      const std::uint64_t now = now_ms();
      if (c->write_deadline_ms_ != 0 && now >= c->write_deadline_ms_) {
        queue_close(c, CloseReason::kWriteStall);
      } else if (c->read_deadline_ms_ != 0 && now >= c->read_deadline_ms_) {
        queue_close(c, c->mid_frame_ ? CloseReason::kFrameTimeout
                                     : CloseReason::kIdleTimeout);
      } else {
        // Deadline moved while the entry aged out of its slot: re-arm.
        update_deadlines(c);
      }
    });
    destroy_pending();
  }

  // Shutdown: every connection closes (on_close fires with kShutdown).
  for (auto& kv : conns_) queue_close(kv.second.get(), CloseReason::kShutdown);
  destroy_pending();
  for (auto& kv : watches_) {
    (void)::epoll_ctl(epfd_, EPOLL_CTL_DEL, kv.first, nullptr);
  }
  watches_.clear();
  {
    std::lock_guard<std::mutex> lock(posts_mu_);
    posts_.clear();
  }
  timed_posts_.clear();
  exited_.store(true, std::memory_order_release);
  if (on_exit) on_exit();
}

// --- EventLoopPool ---------------------------------------------------------

EventLoopPool::EventLoopPool(int num_loops) {
  const int n = num_loops > 0 ? num_loops : 1;
  loops_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    loops_.push_back(std::make_unique<EventLoop>(&counters_));
  }
}

EventLoopPool::~EventLoopPool() { stop(); }

bool EventLoopPool::start(std::string* err) {
  if (started_) return true;
  for (auto& loop : loops_) {
    loop->on_exit = [this] {
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++exited_;
      }
      cv_.notify_all();
    };
  }
  for (auto& loop : loops_) {
    if (!loop->start(err)) {
      request_stop();
      for (auto& l : loops_) l->join();
      return false;
    }
  }
  started_ = true;
  return true;
}

void EventLoopPool::request_stop() {
  for (auto& loop : loops_) loop->request_stop();
}

void EventLoopPool::wait() {
  if (!started_) return;
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return exited_ >= loops_.size(); });
}

void EventLoopPool::stop() {
  if (!started_) return;
  request_stop();
  wait();
  if (joined_) return;
  for (auto& loop : loops_) loop->join();
  joined_ = true;
}

EventLoop& EventLoopPool::next() {
  return *loops_[rr_.fetch_add(1, std::memory_order_relaxed) % loops_.size()];
}

}  // namespace ecl::exec
