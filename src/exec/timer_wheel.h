// Hashed timing wheel for connection deadlines (idle, mid-frame, write
// stall). The event loop owns thousands of sockets whose deadlines move on
// every byte of traffic; a sorted structure would pay O(log n) per update.
// The wheel instead makes re-arming O(1): arm() just stores the new absolute
// deadline, and the entry is only re-filed lazily when the slot it was
// parked in comes due. An entry whose deadline moved later is re-filed, not
// expired, so the common case (active connection, deadline pushed out on
// every wake) never touches the slot vectors at all.
//
// Deadlines are absolute milliseconds on the caller's clock (the event loop
// uses milliseconds since loop start). Deadlines beyond the wheel horizon
// (slots * tick_ms) alias onto a nearer slot and simply take one extra lazy
// re-file per horizon — correctness only depends on the stored deadline.
//
// Not thread-safe: one wheel per event loop, touched only on its thread.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ecl::exec {

class TimerWheel {
 public:
  /// Intrusive handle: embed one in each object with a deadline. The owner
  /// pointer is handed back by advance() on expiry.
  struct Timer {
    void* owner = nullptr;
    std::uint64_t deadline_ms = 0;  // absolute; 0 = disarmed
   private:
    friend class TimerWheel;
    std::uint32_t slot = kNoSlot;  // where the entry is currently filed
  };

  explicit TimerWheel(std::uint32_t slots = 512, std::uint32_t tick_ms = 16)
      : tick_ms_(tick_ms == 0 ? 1 : tick_ms), slots_(slots == 0 ? 1 : slots) {}

  /// Sets the deadline and files the entry if it is not filed yet. A filed
  /// entry just gets the new deadline (lazy re-file on slot expiry).
  void arm(Timer* t, std::uint64_t deadline_ms) {
    t->deadline_ms = deadline_ms == 0 ? 1 : deadline_ms;
    if (t->slot == kNoSlot) file(t, t->deadline_ms);
  }

  /// Clears the deadline. The slot entry, if any, is dropped lazily unless
  /// remove() is called (mandatory before the owner is destroyed).
  void disarm(Timer* t) { t->deadline_ms = 0; }

  /// Eagerly unlinks the entry; required before freeing the owning object.
  void remove(Timer* t) {
    t->deadline_ms = 0;
    if (t->slot == kNoSlot) return;
    auto& vec = slots_[t->slot];
    for (std::size_t i = 0; i < vec.size(); ++i) {
      if (vec[i] == t) {
        vec[i] = vec.back();
        vec.pop_back();
        break;
      }
    }
    t->slot = kNoSlot;
    --armed_;
  }

  /// Walks every slot between the previous advance and `now_ms`, expiring
  /// entries whose stored deadline has passed (callback receives the owner)
  /// and re-filing the rest. Disarmed entries are dropped here.
  template <class F>
  void advance(std::uint64_t now_ms, F&& on_expire) {
    const std::uint64_t now_tick = now_ms / tick_ms_;
    if (now_tick <= last_tick_) return;
    // Cap the walk at one full revolution: beyond that every slot has
    // already been visited once and deadlines are checked absolutely anyway.
    std::uint64_t from = last_tick_ + 1;
    if (now_tick - from >= slots_.size()) from = now_tick - slots_.size() + 1;
    for (std::uint64_t tick = from; tick <= now_tick; ++tick) {
      auto& vec = slots_[tick % slots_.size()];
      std::size_t i = 0;
      while (i < vec.size()) {
        Timer* t = vec[i];
        if (t->deadline_ms == 0) {  // disarmed: drop
          vec[i] = vec.back();
          vec.pop_back();
          t->slot = kNoSlot;
          --armed_;
        } else if (t->deadline_ms <= now_ms) {  // due: unlink, then expire
          vec[i] = vec.back();
          vec.pop_back();
          t->slot = kNoSlot;
          --armed_;
          on_expire(t->owner);
        } else {  // deadline moved later: re-file at its current slot
          const std::uint32_t want =
              static_cast<std::uint32_t>((t->deadline_ms / tick_ms_) % slots_.size());
          if (want != t->slot) {
            vec[i] = vec.back();
            vec.pop_back();
            t->slot = want;
            slots_[want].push_back(t);
            // vec[i] is now an unvisited entry (or out of range): revisit i.
          } else {
            ++i;
          }
        }
      }
    }
    last_tick_ = now_tick;
  }

  /// Milliseconds until the next non-empty slot comes due; -1 when nothing
  /// is armed. A hint for epoll_wait timeouts: may fire early (lazily filed
  /// entries re-file and the loop sleeps again), never pathologically late.
  [[nodiscard]] int next_timeout_ms(std::uint64_t now_ms) const {
    if (armed_ == 0) return -1;
    const std::uint64_t now_tick = now_ms / tick_ms_;
    for (std::uint64_t off = 0; off < slots_.size(); ++off) {
      if (!slots_[(now_tick + off) % slots_.size()].empty()) {
        // The whole slot is due at the *end* of its tick.
        const std::uint64_t due = (now_tick + off + 1) * tick_ms_;
        return due <= now_ms ? 0 : static_cast<int>(due - now_ms);
      }
    }
    return static_cast<int>(slots_.size() * tick_ms_);
  }

  [[nodiscard]] std::size_t armed() const { return armed_; }

 private:
  static constexpr std::uint32_t kNoSlot = UINT32_MAX;

  void file(Timer* t, std::uint64_t deadline_ms) {
    const std::uint32_t slot =
        static_cast<std::uint32_t>((deadline_ms / tick_ms_) % slots_.size());
    t->slot = slot;
    slots_[slot].push_back(t);
    ++armed_;
  }

  std::uint64_t tick_ms_;
  std::vector<std::vector<Timer*>> slots_{};
  std::uint64_t last_tick_ = 0;
  std::size_t armed_ = 0;
};

}  // namespace ecl::exec
