#include "exec/executor.h"

#include <stdexcept>
#include <utility>

#include "fault/fault.h"
#include "obs/metrics.h"

namespace ecl::exec {

namespace {

std::vector<std::uint64_t> latency_bounds() {
  return obs::Histogram::pow2_bounds(22);
}

}  // namespace

Executor::Executor(ExecutorOptions opts) : opts_(opts) {
  const int n = opts_.num_workers > 0 ? opts_.num_workers : 1;
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Executor::~Executor() { drain(); }

bool Executor::submit(Task fn) {
  if (ECL_FAULT_POINT("exec.submit").fired()) {
    ECL_OBS_COUNTER_ADD("ecl.exec.tasks.rejected", 1);
    return false;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_) {
      ECL_OBS_COUNTER_ADD("ecl.exec.tasks.rejected", 1);
      return false;
    }
    ready_.push_back(Ready{std::move(fn), Clock::now()});
    ECL_OBS_GAUGE_SET("ecl.exec.queue.depth", static_cast<double>(ready_.size()));
  }
  ECL_OBS_COUNTER_ADD("ecl.exec.tasks.submitted", 1);
  cv_.notify_one();
  return true;
}

bool Executor::submit_after(int delay_ms, Task fn) {
  if (ECL_FAULT_POINT("exec.submit").fired()) {
    ECL_OBS_COUNTER_ADD("ecl.exec.tasks.rejected", 1);
    return false;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_) {
      ECL_OBS_COUNTER_ADD("ecl.exec.tasks.rejected", 1);
      return false;
    }
    const std::uint64_t id = next_timer_id_++;
    timed_.emplace(id, Timed{std::move(fn), 0});
    heap_.push(HeapEntry{Clock::now() + std::chrono::milliseconds(delay_ms), id});
  }
  ECL_OBS_COUNTER_ADD("ecl.exec.tasks.submitted", 1);
  cv_.notify_one();
  return true;
}

std::uint64_t Executor::submit_periodic(int period_ms, Task fn) {
  const int period = period_ms > 0 ? period_ms : 1;
  std::uint64_t id = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_) return 0;
    id = next_timer_id_++;
    timed_.emplace(id, Timed{std::move(fn), period});
    heap_.push(HeapEntry{Clock::now() + std::chrono::milliseconds(period), id});
  }
  cv_.notify_one();
  return id;
}

bool Executor::cancel(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  // The heap entry (if any) goes stale and is skipped on promotion.
  return timed_.erase(id) > 0;
}

void Executor::promote_due(Clock::time_point now) {
  while (!heap_.empty() && heap_.top().due <= now) {
    const HeapEntry e = heap_.top();
    heap_.pop();
    auto it = timed_.find(e.id);
    if (it == timed_.end()) continue;  // canceled (or already consumed)
    if (it->second.period_ms > 0) {
      ready_.push_back(Ready{it->second.fn, now});  // copy: it fires again
      heap_.push(HeapEntry{e.due + std::chrono::milliseconds(it->second.period_ms), e.id});
    } else {
      ready_.push_back(Ready{std::move(it->second.fn), now});
      timed_.erase(it);
    }
  }
}

void Executor::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    promote_due(Clock::now());
    if (!ready_.empty()) {
      Ready task = std::move(ready_.front());
      ready_.pop_front();
      ECL_OBS_GAUGE_SET("ecl.exec.queue.depth", static_cast<double>(ready_.size()));
      lock.unlock();
      const auto start = Clock::now();
      ECL_OBS_HISTOGRAM_RECORD(
          "ecl.exec.task_wait_us", latency_bounds(),
          static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                         start - task.enqueued)
                                         .count()));
      try {
        if (ECL_FAULT_POINT("exec.task").fired()) {
          throw std::runtime_error("injected fault: exec.task");
        }
        task.fn();
        tasks_run_.fetch_add(1, std::memory_order_relaxed);
        ECL_OBS_COUNTER_ADD("ecl.exec.tasks.completed", 1);
      } catch (...) {
        // A task failure must never take a shared worker down.
        task_errors_.fetch_add(1, std::memory_order_relaxed);
        ECL_OBS_COUNTER_ADD("ecl.exec.tasks.errors", 1);
      }
      ECL_OBS_HISTOGRAM_RECORD(
          "ecl.exec.task_run_us", latency_bounds(),
          static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                         Clock::now() - start)
                                         .count()));
      lock.lock();
      continue;
    }
    if (draining_) return;  // drain(): ready queue empty, nothing else to do
    if (heap_.empty()) {
      cv_.wait(lock);
    } else {
      // Copy the deadline: wait_until takes it by reference, releases mu_,
      // and drain() may free the heap storage before this waiter wakes.
      const auto due = heap_.top().due;
      cv_.wait_until(lock, due);
    }
  }
}

void Executor::drain() {
  std::lock_guard<std::mutex> drain_lock(drain_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    draining_ = true;
    // Pending timers are dropped: a drain means "finish what is ready".
    timed_.clear();
    heap_ = {};
  }
  cv_.notify_all();
  if (joined_) return;
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  joined_ = true;
}

std::size_t Executor::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ready_.size();
}

std::uint64_t Executor::tasks_run() const {
  return tasks_run_.load(std::memory_order_relaxed);
}

std::uint64_t Executor::task_errors() const {
  return task_errors_.load(std::memory_order_relaxed);
}

}  // namespace ecl::exec
