// ecl::exec::Executor — a fixed worker pool with deferred and periodic
// tasks, the daemon's one owned thread inventory (docs/EXECUTOR.md).
//
// The service layer used to spawn a bespoke std::thread per background
// concern (ingest apply, compaction/checkpointing); the executor replaces
// that with named, observable workers:
//
//   * submit(fn)                run as soon as a worker is free
//   * submit_after(ms, fn)      run once after a delay
//   * submit_periodic(ms, fn)   run every period until cancel(id)
//   * drain()                   stop admitting, run everything already
//                               queued (pending timers are dropped), join
//
// Long-running tasks are allowed — the service parks its ingest and
// compaction loops on two workers for their whole lifetime — so size
// num_workers for the number of *concurrent* long tasks plus headroom.
//
// Observability: queue depth gauge (ecl.exec.queue.depth), submit->start
// wait and run-time histograms, submitted/completed/rejected/error
// counters. A task that throws is caught and counted
// (ecl.exec.tasks.errors); it never takes the worker down. Fault points:
// "exec.submit" (admission rejected) and "exec.task" (task body fails).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <unordered_map>
#include <vector>

namespace ecl::exec {

struct ExecutorOptions {
  /// Worker threads; each runs one task at a time.
  int num_workers = 2;
};

class Executor {
 public:
  using Task = std::function<void()>;

  explicit Executor(ExecutorOptions opts = {});
  /// drain()s.
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Enqueues a task. False once drain() has begun (or the exec.submit
  /// fault point sheds it) — the task will then never run.
  [[nodiscard]] bool submit(Task fn);

  /// Enqueues a task to become runnable after `delay_ms`. Same admission
  /// rules as submit(); pending deferred tasks are dropped by drain().
  [[nodiscard]] bool submit_after(int delay_ms, Task fn);

  /// Schedules `fn` every `period_ms` (first run one period from now).
  /// Returns a nonzero id for cancel(), or 0 when draining. Periods are
  /// fixed-rate from the scheduled (not actual) run times.
  [[nodiscard]] std::uint64_t submit_periodic(int period_ms, Task fn);

  /// Stops future firings of a periodic task. True if the id was live. An
  /// in-flight run completes; no new run starts after cancel() returns
  /// unless one was already promoted to the ready queue.
  bool cancel(std::uint64_t id);

  /// Stops admission, runs every already-ready task, drops pending
  /// deferred/periodic work, and joins the workers. Idempotent.
  void drain();

  /// Ready (promoted, not yet started) tasks.
  [[nodiscard]] std::size_t queue_depth() const;
  /// Tasks whose body ran to completion.
  [[nodiscard]] std::uint64_t tasks_run() const;
  /// Tasks whose body threw (caught and swallowed by the worker).
  [[nodiscard]] std::uint64_t task_errors() const;

 private:
  using Clock = std::chrono::steady_clock;

  struct Ready {
    Task fn;
    Clock::time_point enqueued;
  };
  struct Timed {
    Task fn;
    int period_ms = 0;  // 0: one-shot
  };
  struct HeapEntry {
    Clock::time_point due;
    std::uint64_t id = 0;
    bool operator>(const HeapEntry& o) const { return due > o.due; }
  };

  void worker_loop();
  /// Moves due timed tasks onto the ready queue. Caller holds mu_.
  void promote_due(Clock::time_point now);

  const ExecutorOptions opts_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Ready> ready_;
  std::unordered_map<std::uint64_t, Timed> timed_;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<HeapEntry>> heap_;
  std::uint64_t next_timer_id_ = 1;
  bool draining_ = false;
  bool joined_ = false;

  std::vector<std::thread> workers_;
  std::mutex drain_mu_;  // serializes drain() callers around the joins

  std::atomic<std::uint64_t> tasks_run_{0};
  std::atomic<std::uint64_t> task_errors_{0};
};

}  // namespace ecl::exec
