// ecl::exec event loop — a small pool of I/O workers multiplexing
// thousands of non-blocking stream sockets via level-triggered epoll
// (docs/EXECUTOR.md "Event loop").
//
// Each EventLoop owns one epoll instance and one thread. Connections are
// adopted onto a loop and never migrate; every callback for a connection
// runs on its loop's thread, so per-connection state needs no locks. The
// loop does length-prefix framing (u32 little-endian payload length, the
// same frame shape as svc/protocol.h but with a configurable cap, keeping
// this layer protocol-agnostic): on_frame fires once per complete payload,
// and multiple frames read in one wake are delivered back to back — request
// pipelining falls out for free, with responses appended to the write
// buffer in arrival order.
//
// Backpressure state machine (per connection):
//
//   writable ──ŵbuf > pause──▶ read-paused ──wbuf <= pause/2──▶ writable
//       │                            │
//       └── wbuf would exceed limit ─┴─ no write progress for
//           → evict (overflow)          write_stall_timeout → evict (stall)
//
// A slow reader first stops being *read from* (its pipelined requests stay
// in its socket; the kernel's TCP window pushes back), and is evicted only
// when it also stops draining its responses. Idle and mid-frame deadlines
// ride a hashed timer wheel (timer_wheel.h), so deadline updates are O(1)
// per wake instead of a per-connection blocking read with SO_RCVTIMEO.
//
// Shutdown: request_stop() is async-signal-safe (one atomic store + one
// eventfd write), mirroring the old server's self-pipe contract.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "exec/timer_wheel.h"

namespace ecl::exec {

class EventLoop;
class EventLoopPool;

/// Why a connection was closed; handed to on_close exactly once.
enum class CloseReason : std::uint8_t {
  kAppClose = 0,    // application asked (normal end of conversation)
  kPeerClosed,      // orderly EOF from the peer
  kProtocolError,   // oversized/undeliverable frame
  kSocketError,     // read/write error on the socket
  kIdleTimeout,     // no traffic within idle_timeout_ms (evicted)
  kFrameTimeout,    // frame started but stalled (evicted)
  kWriteStall,      // peer stopped draining responses (evicted)
  kWriteOverflow,   // write buffer would exceed its hard limit (evicted)
  kShutdown,        // loop is stopping
};

[[nodiscard]] const char* close_reason_name(CloseReason r);

struct ConnOptions {
  /// Frames above this length close the connection (kProtocolError).
  std::size_t max_frame_bytes = 64u << 20;
  /// Hard cap on buffered unsent response bytes; exceeding it evicts.
  std::size_t write_buffer_limit = 64u << 20;
  /// Stop reading new requests while more than this is buffered; resume at
  /// half. 0 pauses as soon as anything is buffered.
  std::size_t write_buffer_pause = 1u << 20;
  /// Evict after this long with no complete traffic at all. 0 = never.
  int idle_timeout_ms = 0;
  /// A started frame must complete within this bound. 0 = unbounded.
  int frame_timeout_ms = 0;
  /// Evict when the write buffer is non-empty and the socket accepted no
  /// bytes for this long. 0 = never.
  int write_stall_timeout_ms = 10000;
};

class Conn;

struct ConnCallbacks {
  /// One complete frame payload (without the length prefix). The span is
  /// only valid for the duration of the call.
  std::function<void(Conn&, std::span<const std::uint8_t>)> on_frame;
  /// Fired exactly once, on the loop thread, just before the fd closes.
  std::function<void(Conn&, CloseReason)> on_close;
};

/// Counters shared by every loop in a pool (and readable by the owner).
/// All relaxed: they are telemetry, not synchronization.
struct LoopCounters {
  std::atomic<std::uint64_t> open_conns{0};
  std::atomic<std::uint64_t> wakeups{0};        // epoll_wait returns
  std::atomic<std::uint64_t> frames{0};         // complete frames delivered
  std::atomic<std::uint64_t> bytes_in{0};
  std::atomic<std::uint64_t> bytes_out{0};
  std::atomic<std::uint64_t> write_buf_hwm{0};  // high-watermark bytes, any conn
  std::atomic<std::uint64_t> evicted_idle{0};
  std::atomic<std::uint64_t> evicted_frame{0};
  std::atomic<std::uint64_t> evicted_stall{0};
  std::atomic<std::uint64_t> evicted_overflow{0};
};

/// One multiplexed connection. All methods are loop-thread-only (call them
/// from on_frame/on_close or a task post()ed to the owning loop).
class Conn {
 public:
  /// Appends bytes to the write buffer and flushes opportunistically (or,
  /// inside an on_frame stack, batches until the event is fully handled).
  /// May evict the connection (kWriteOverflow) if the buffer would exceed
  /// its limit.
  void send(const void* data, std::size_t n);

  /// send() with the u32 length prefix prepended.
  void send_frame(const void* payload, std::size_t n);

  /// Flushes what it can and closes (on_close fires before the fd closes).
  /// Safe to call repeatedly; the first reason wins.
  void close(CloseReason reason = CloseReason::kAppClose);

  [[nodiscard]] int fd() const { return fd_; }
  [[nodiscard]] EventLoop& loop() { return *loop_; }
  [[nodiscard]] std::size_t write_buffer_bytes() const { return wbuf_.size() - woff_; }
  [[nodiscard]] bool read_paused() const { return read_paused_; }
  [[nodiscard]] bool closing() const { return closing_; }

  /// Free slot for the layer above (the svc server parks its per-connection
  /// context here; the loop never touches it).
  void* user_data = nullptr;

 private:
  friend class EventLoop;
  Conn() = default;

  int fd_ = -1;
  EventLoop* loop_ = nullptr;
  ConnCallbacks cbs_;
  ConnOptions opts_;

  std::vector<std::uint8_t> rbuf_;
  std::size_t roff_ = 0;  // parsed prefix of rbuf_
  std::vector<std::uint8_t> wbuf_;
  std::size_t woff_ = 0;  // flushed prefix of wbuf_

  std::uint32_t events_ = 0;      // current epoll interest mask
  bool read_paused_ = false;      // backpressure: EPOLLIN dropped
  bool closing_ = false;
  bool in_event_ = false;         // inside handle_event: batch sends
  bool pending_close_listed_ = false;
  CloseReason close_reason_ = CloseReason::kAppClose;

  bool mid_frame_ = false;            // partial frame sits in rbuf_
  std::uint64_t read_deadline_ms_ = 0;   // idle or frame deadline; 0 = none
  std::uint64_t write_deadline_ms_ = 0;  // stall deadline; 0 = none
  TimerWheel::Timer timer_;
};

class EventLoop {
 public:
  /// `counters` may be null (standalone loop) or shared (pool).
  explicit EventLoop(LoopCounters* counters = nullptr);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Spawns the loop thread. False (with *err) if epoll/eventfd setup
  /// failed at construction.
  [[nodiscard]] bool start(std::string* err = nullptr);

  /// Stops the loop: every connection closes with kShutdown, then the
  /// thread exits. Async-signal-safe (atomic store + eventfd write).
  void request_stop();

  /// Joins the loop thread. Idempotent; call after request_stop().
  void join();

  /// True once the loop thread has exited (its connections are closed).
  [[nodiscard]] bool exited() const { return exited_.load(std::memory_order_acquire); }

  /// Runs `fn` on the loop thread (thread-safe, wakes the loop). Tasks
  /// posted after the loop exits are discarded.
  void post(std::function<void()> fn);

  /// Runs `fn` on the loop thread after `delay_ms`. Loop-thread-only; from
  /// another thread, post() a task that calls this. Dropped on stop.
  void post_after(int delay_ms, std::function<void()> fn);

  /// Takes ownership of a connected socket (sets O_NONBLOCK). Returns the
  /// Conn, or null if epoll registration failed (fd closed either way on
  /// failure). Loop-thread-only once the loop is started; may be called
  /// from the owning thread before start().
  Conn* adopt(int fd, ConnCallbacks cbs, ConnOptions opts);

  /// Watches a non-connection fd (e.g. a listener) for EPOLLIN; the
  /// callback runs on the loop thread with the ready events. Same calling
  /// rules as adopt(). unwatch() drops the registration.
  [[nodiscard]] bool watch(int fd, std::function<void(std::uint32_t)> cb);
  void unwatch(int fd);

  /// Milliseconds since loop construction (the wheel's clock).
  [[nodiscard]] std::uint64_t now_ms() const;

  [[nodiscard]] std::size_t open_conns() const { return conns_.size(); }

  /// Set before start(): invoked on the loop thread right before it exits.
  std::function<void()> on_exit;

  friend class Conn;

 private:
  void run();
  void handle_conn_event(Conn* c, std::uint32_t events);
  void do_read(Conn* c);
  void parse_frames(Conn* c);
  /// Sends as much buffered data as the socket accepts; updates stall
  /// deadline and backpressure pause state.
  void flush_writes(Conn* c);
  void update_interest(Conn* c);
  void update_deadlines(Conn* c);
  void queue_close(Conn* c, CloseReason reason);
  void destroy_pending();
  void drain_posts();
  int compute_timeout_ms();

  int epfd_ = -1;
  int wakefd_ = -1;
  std::atomic<bool> stop_{false};
  std::atomic<bool> exited_{false};
  bool started_ = false;
  std::thread thread_;
  LoopCounters* counters_ = nullptr;
  LoopCounters local_counters_;  // used when no shared set was given

  std::unordered_map<int, std::unique_ptr<Conn>> conns_;
  std::unordered_map<int, std::function<void(std::uint32_t)>> watches_;
  std::vector<Conn*> pending_close_;

  std::mutex posts_mu_;
  std::vector<std::function<void()>> posts_;
  struct TimedPost {
    std::uint64_t due_ms = 0;
    std::function<void()> fn;
  };
  std::vector<TimedPost> timed_posts_;  // loop-thread-only; scanned linearly

  TimerWheel wheel_;
  std::chrono::steady_clock::time_point start_tp_;
};

/// N loops + round-robin connection placement + one shared counter block.
class EventLoopPool {
 public:
  explicit EventLoopPool(int num_loops);
  ~EventLoopPool();

  [[nodiscard]] bool start(std::string* err = nullptr);
  /// Async-signal-safe fan-out of EventLoop::request_stop().
  void request_stop();
  /// Blocks until every loop thread has exited (connections closed). Does
  /// not join; stop() does.
  void wait();
  /// request_stop() + wait() + join all threads. Idempotent.
  void stop();

  [[nodiscard]] std::size_t size() const { return loops_.size(); }
  [[nodiscard]] EventLoop& at(std::size_t i) { return *loops_[i]; }
  /// Round-robin pick for placing a new connection.
  [[nodiscard]] EventLoop& next();
  [[nodiscard]] LoopCounters& counters() { return counters_; }
  [[nodiscard]] const LoopCounters& counters() const { return counters_; }

 private:
  LoopCounters counters_;
  std::vector<std::unique_ptr<EventLoop>> loops_;
  std::atomic<std::size_t> rr_{0};

  std::mutex mu_;
  std::condition_variable cv_;
  std::size_t exited_ = 0;
  bool started_ = false;
  bool joined_ = false;
};

}  // namespace ecl::exec
