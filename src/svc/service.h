// ConnectivityService — the transport-agnostic core of the batched
// connectivity query service (docs/SERVICE.md).
//
// The design is the static/incremental split that streaming-connectivity
// systems converge on (Hong, Dhulipala & Shun, arXiv:2008.11839), built
// from the two halves this repo already has:
//
//   writer side   Edge batches are admitted through a bounded queue
//                 (explicit shed on overflow — see svc/queue.h) and applied
//                 by a single ingest worker to the lock-free IncrementalCC
//                 union-find plus an append-only edge log.
//
//   reader side   Queries are answered against an immutable epoch Snapshot:
//                 a canonical label array produced by running the batch
//                 ECL-CC engine (ecl_cc_omp) over the logged edges. A
//                 background compaction thread rebuilds and atomically
//                 swaps the snapshot; readers take one atomic shared_ptr
//                 load and never block writers (double buffering falls out
//                 of shared_ptr lifetime: the old epoch stays alive until
//                 its last reader drops it).
//
// Two read modes are exposed: kSnapshot (stale but epoch-consistent, pure
// array reads, no synchronization with writers) and kFresh (reads the live
// union-find — sees edges the moment the worker applies them, at the cost
// of pointer chasing against concurrent hooks).
//
// Everything is observable through ecl::obs: ingest/shed counters, queue
// depth and epoch-staleness gauges, batch-apply and compaction latency
// histograms, and trace spans per batch and per compaction.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "core/incremental.h"
#include "exec/executor.h"
#include "graph/graph.h"
#include "svc/checkpoint.h"
#include "svc/queue.h"
#include "svc/snapshot.h"
#include "svc/wal.h"

namespace ecl::svc {

struct ServiceOptions {
  /// Maximum number of *batches* admitted but not yet applied. A full queue
  /// sheds (Admission::kShed) instead of blocking.
  std::size_t queue_capacity = 64;
  /// Background compaction wakes at this period to check for new edges.
  int compact_interval_ms = 20;
  /// Skip a compaction cycle unless at least this many edges arrived since
  /// the published snapshot's watermark (forced compactions ignore it).
  std::uint64_t compact_min_new_edges = 1;
  /// OpenMP threads for the compaction's ECL-CC run; 0 = runtime default.
  int num_threads = 0;
  /// Test hook: artificial delay (microseconds) per applied batch, to make
  /// backpressure reproducible in unit tests. 0 in production.
  int ingest_delay_us = 0;
  /// Write-ahead log base path; empty disables the WAL. When set, the
  /// constructor replays the segment chain (`<path>.000001, ...`,
  /// truncating any torn tail in the final segment), folds the recovered
  /// edges into the live structure and initial snapshot, and appends every
  /// subsequently accepted batch before acking it (docs/ROBUSTNESS.md
  /// "Crash recovery"). A pre-segmentation single-file WAL at `path` is
  /// adopted as segment 1 on first open.
  std::string wal_path;
  /// Durability policy for the WAL (ignored when wal_path is empty).
  WalOptions wal;
  /// Rotate WAL segments once the active one reaches this size. 0 keeps a
  /// single segment (rotation still happens at every checkpoint cut).
  std::uint64_t wal_segment_bytes = 64ull << 20;
  /// Checkpoint base path; empty disables checkpoints. When set, the
  /// compaction thread persists the snapshot's label array every
  /// checkpoint_interval_ms, trims the in-memory edge log to the
  /// un-checkpointed suffix, and retires WAL segments the checkpoint chain
  /// covers — bounding restart time, disk, and memory by the tail instead
  /// of lifetime ingest (docs/ROBUSTNESS.md "Checkpoints").
  std::string checkpoint_path;
  /// Minimum period between automatic checkpoints (0 = only explicit
  /// checkpoint_now() / the final checkpoint on clean stop()).
  int checkpoint_interval_ms = 5000;
  /// Replica mode (docs/REPLICATION.md): recover from the local checkpoint
  /// and WAL mirror exactly like a primary, but never open the WAL for
  /// appending (a Replicator streams the primary's segment bytes into it),
  /// never write checkpoints, and shed submit() until promote().
  bool replica = false;
  /// Primary side: a registered replica unseen for longer than this stops
  /// holding the WAL retention floor (a dead replica must not wedge
  /// segment retirement forever). It re-bootstraps from a checkpoint when
  /// it comes back.
  int replica_hold_ms = 10000;
};

/// Which consistency a read wants (docs/SERVICE.md "Consistency model").
enum class ReadMode : std::uint8_t {
  kSnapshot = 0,  // epoch-consistent, possibly stale
  kFresh = 1,     // sees applied edges immediately; not epoch-consistent
};

/// One service-wide state sample, for the stats RPC and tests.
struct ServiceStats {
  std::uint64_t epoch = 0;
  std::uint64_t watermark = 0;        // edges reflected by the snapshot
  std::uint64_t applied_edges = 0;    // edges applied to the live structure
  std::uint64_t accepted_batches = 0;
  std::uint64_t applied_batches = 0;
  std::uint64_t shed_batches = 0;
  std::uint64_t queue_depth = 0;
  vertex_t num_components = 0;        // of the published snapshot
  vertex_t num_vertices = 0;
  std::uint64_t checkpoints = 0;            // written by this process
  std::uint64_t last_checkpoint_epoch = 0;  // 0 if none written or loaded
  std::uint64_t wal_segments = 0;           // retained segments, active incl.
  std::uint64_t wal_bytes = 0;              // on-disk bytes across them
  // Tagged-only fields (absent from the legacy 13 x u64 wire body; decoded
  // as their zero defaults when talking to an old server).
  bool degraded = false;                 // read-only mode (docs/ROBUSTNESS.md)
  std::uint64_t uptime_ms = 0;           // since service construction
  std::uint64_t replayed_edges = 0;      // recovered from the WAL at startup
  std::uint64_t requests_served = 0;     // filled by the server front end
  // Connection-level telemetry, filled by the server front end (zero when
  // talking to a pre-executor daemon).
  std::uint64_t open_connections = 0;
  std::uint64_t epoll_wakeups = 0;          // cumulative, all I/O loops
  std::uint64_t write_buf_hwm_bytes = 0;    // worst per-connection backlog
  std::uint64_t evicted_idle = 0;
  std::uint64_t evicted_slow = 0;           // mid-frame deadline eviction
  std::uint64_t evicted_backpressure = 0;   // write stall + buffer overflow
  std::uint64_t accept_shed_fds = 0;        // connections shed under EMFILE
};

/// One liveness/durability sample, for the kHealth RPC and the chaos tests
/// (docs/ROBUSTNESS.md "Degraded mode"). All fields are lock-free reads.
struct ServiceHealth {
  bool degraded = false;            // read-only mode: ingest sheds, reads serve
  bool ingest_worker_alive = true;  // false once the worker thread has died
  bool wal_enabled = false;
  bool wal_healthy = true;          // false after a WAL I/O failure
  std::uint64_t queue_depth = 0;
  std::uint64_t staleness_edges = 0;    // applied edges not yet in the snapshot
  std::uint64_t ingest_lag_batches = 0; // accepted but not yet applied
  std::uint64_t wal_records = 0;        // records appended this process
  std::uint64_t replayed_edges = 0;     // edges recovered at startup
  std::uint64_t degraded_entries = 0;   // times degraded mode was entered
  bool checkpoint_enabled = false;
  std::uint64_t checkpoints_written = 0;      // by this process
  std::uint64_t last_checkpoint_epoch = 0;    // from a write or startup load
  std::uint64_t last_checkpoint_age_ms = 0;   // since last write/load; 0 if none
  std::uint64_t wal_segments = 0;             // retained segments, active incl.
  std::uint64_t wal_bytes = 0;                // on-disk bytes across them
  // Replication (the tagged kHealth tail; zero defaults when talking to a
  // pre-replication daemon).
  bool replica = false;                  // serving as a read-only replica
  std::uint64_t replica_lag_seq = 0;     // segments behind the primary
  std::uint64_t replica_lag_ms = 0;      // ms since last fully caught up
  std::uint64_t replicas_connected = 0;  // live registered replicas (primary)
};

/// kFetchCkpt payload: the primary's newest valid checkpoint as a raw file
/// image, plus where it sits in the checkpoint/WAL chains. `has == false`
/// (and empty image) when the primary has no valid checkpoint — the replica
/// then streams the WAL from segment 1, which is complete because a primary
/// that never checkpointed never retired anything.
struct CkptImage {
  bool has = false;
  std::uint64_t seq = 0;      // checkpoint file sequence number
  std::uint64_t wal_seq = 0;  // WAL segments <= this are covered by it
  std::vector<std::uint8_t> image;
};

/// kFetchWal payload: one bounded chunk of raw segment bytes. `retired`
/// means the requested segment is gone on the primary (the replica fell
/// behind retention and must re-bootstrap from a checkpoint); `sealed`
/// means no more bytes will ever appear in this segment, so a reader that
/// has consumed segment_bytes of it advances to seq + 1. `ok` is the
/// serving side's I/O verdict and never travels on the wire — the server
/// answers !ok with Status::kError.
struct WalChunk {
  bool ok = false;
  bool retired = false;
  bool sealed = false;
  std::uint64_t seq = 0;            // echoed segment sequence
  std::uint64_t offset = 0;         // echoed start offset
  std::uint64_t segment_bytes = 0;  // size of that segment at read time
  std::uint64_t active_seq = 0;     // primary's active (highest) segment
  std::vector<std::uint8_t> data;
};

class ConnectivityService {
 public:
  using EdgeBatch = std::vector<Edge>;

  /// A universe of n vertices, all singletons; snapshot epoch 0 is
  /// published (synchronously) before the constructor returns.
  explicit ConnectivityService(vertex_t n, ServiceOptions opts = {});

  /// Seeds the service with an existing graph: the seed's edges count as
  /// applied (watermark > 0) and epoch 0 reflects its components.
  explicit ConnectivityService(const Graph& seed, ServiceOptions opts = {});

  /// Drains and stops (see stop()).
  ~ConnectivityService();

  ConnectivityService(const ConnectivityService&) = delete;
  ConnectivityService& operator=(const ConnectivityService&) = delete;

  // --- writer side ---------------------------------------------------------

  /// Admits a batch of undirected edges. kAccepted means the batch *will*
  /// be applied (even if stop() is called right after) and — when a WAL is
  /// configured — has been durably logged per the fsync policy; kShed means
  /// the queue was full (or the service is degraded) and the caller should
  /// retry later; kClosed means the service is draining. Edges with
  /// endpoints >= num_vertices() are dropped at apply time (counted in
  /// ecl.svc.ingest.invalid_edges).
  [[nodiscard]] Admission submit(EdgeBatch batch);

  /// Blocks until every batch accepted so far has been applied to the live
  /// structure (not necessarily compacted into a snapshot). Returns early
  /// (possibly with batches unapplied) if the ingest worker has died.
  void flush();

  /// flush(), then forces a compaction whose watermark covers every edge
  /// applied at call time, and waits for it. Returns the new epoch.
  std::uint64_t compact_now();

  /// Forces the compaction thread to write a checkpoint now and waits for
  /// the attempt to finish. Returns true if a checkpoint was durably
  /// written; false when checkpoints are disabled, the service is stopped,
  /// or the write failed (counted in ecl.svc.ckpt.write_errors).
  [[nodiscard]] bool checkpoint_now();

  /// Graceful drain-and-shutdown: refuses new batches, applies everything
  /// already admitted, runs a final compaction (so the last snapshot
  /// reflects all accepted edges), and joins both background threads.
  /// Idempotent; called by the destructor.
  void stop();

  // --- reader side ---------------------------------------------------------

  /// True if u and v are connected. kSnapshot answers from the published
  /// epoch; kFresh consults the live union-find. Out-of-range vertices
  /// return false.
  [[nodiscard]] bool connected(vertex_t u, vertex_t v, ReadMode mode = ReadMode::kSnapshot);

  /// Component representative of v. Under kSnapshot this is the canonical
  /// (minimum-ID) label; under kFresh it is the current DSU representative,
  /// which is *not* canonical until the next compaction. kInvalidVertex if
  /// v is out of range.
  [[nodiscard]] vertex_t component_of(vertex_t v, ReadMode mode = ReadMode::kSnapshot);

  /// Component count of the published snapshot.
  [[nodiscard]] vertex_t component_count() const;

  /// The current snapshot (never null after construction). Holding the
  /// returned pointer pins that epoch; queries against it are wait-free.
  [[nodiscard]] SnapshotPtr snapshot() const;

  [[nodiscard]] vertex_t num_vertices() const { return num_vertices_; }
  [[nodiscard]] ServiceStats stats() const;

  /// Current ingest-queue depth (admitted, not yet applied batches). Cheap
  /// enough for per-request logging, unlike a full stats() sample.
  [[nodiscard]] std::uint64_t queue_depth() const { return queue_.size(); }

  // --- robustness ----------------------------------------------------------

  /// True once the service has dropped to read-only degraded mode (ingest
  /// worker died, or the WAL hit an I/O error). Queries keep serving;
  /// submit() sheds. There is no way back up short of a restart.
  [[nodiscard]] bool degraded() const {
    return degraded_.load(std::memory_order_acquire);
  }

  /// Liveness/durability sample (the kHealth RPC body).
  [[nodiscard]] ServiceHealth health() const;

  /// Edges recovered from the WAL by this constructor (0 without a WAL).
  [[nodiscard]] std::uint64_t replayed_edges() const { return replayed_edges_; }

  // --- replication (docs/REPLICATION.md) -----------------------------------

  /// True while serving as a read-only replica (submit() sheds; the server
  /// maps writes to Status::kNotPrimary before even calling submit()).
  [[nodiscard]] bool is_replica() const {
    return replica_.load(std::memory_order_acquire);
  }

  /// Replica -> primary failover: truncates any half-fetched record off the
  /// mirrored WAL tail (those bytes were never parsed, so nothing applied is
  /// lost), opens the WAL for appending at that tail, and starts accepting
  /// submit(). Checkpointing (and with it local segment retirement) resumes
  /// on the next compaction cycle. The caller must stop the Replicator
  /// first — promote() assumes no more bytes are landing in the mirror.
  /// Idempotent: true immediately on an already-primary service.
  [[nodiscard]] bool promote(std::string* err = nullptr);

  /// Replica side: applies one primary WAL record's edges (the Replicator
  /// calls this after mirroring the bytes locally). Follows the ingest
  /// worker's apply path — live union-find, edge log, batch accounting —
  /// so compaction, staleness, and health arithmetic hold unchanged.
  void apply_replicated(EdgeBatch batch);

  /// Replica side: lag sample pushed by the Replicator after each fetch
  /// round (surfaced through health() and the Prometheus exporter).
  void set_replication_lag(std::uint64_t lag_seq, std::uint64_t lag_ms);

  /// Replica side: local WAL mirror geometry pushed by the Replicator, so
  /// stats()/health() wal_segments/wal_bytes stay meaningful on replicas.
  void set_replica_wal_stats(std::uint64_t segments, std::uint64_t bytes);

  /// Replica side: rebases onto a newer checkpoint fetched from the primary
  /// after falling behind retention. Folds the checkpoint's labels into the
  /// live structure (monotone-safe: connectivity only grows), replaces the
  /// compaction base, clears the edge log, and advances the watermark.
  /// False when not a replica, on a vertex-count mismatch, or if the
  /// checkpoint would move the watermark backwards.
  [[nodiscard]] bool rebase_to_checkpoint(const CheckpointData& data);

  /// wal_seq covered by the checkpoint this service recovered from (0 when
  /// none); the Replicator resumes streaming at the next segment.
  [[nodiscard]] std::uint64_t checkpoint_covered_wal_seq();

  /// Primary serving side of kFetchCkpt: the newest valid checkpoint as a
  /// raw file image. Reads by name with retry, so the compaction thread
  /// rotating checkpoints concurrently is harmless. has == false when
  /// checkpoints are disabled, none exists yet, or every file failed
  /// validation (the replica streams from segment 1 then).
  [[nodiscard]] CkptImage fetch_checkpoint_image() const;

  /// Primary serving side of kFetchWal: registers/refreshes the replica in
  /// the retention registry, then reads up to max_bytes of the segment via
  /// WalSegmentReader (rotation/retirement safe). replica_id 0 reads
  /// without registering.
  [[nodiscard]] WalChunk fetch_wal_chunk(std::uint64_t replica_id, std::uint64_t seq,
                                         std::uint64_t offset, std::uint32_t max_bytes);

 private:
  void start_threads();
  void ingest_loop();
  void ingest_loop_body();
  void compact_loop();
  /// Builds and publishes a snapshot covering base_labels_ (the last
  /// checkpoint's components) plus the log's current contents.
  void run_compaction();
  /// Ctor-only recovery: load the newest valid checkpoint (publishing its
  /// labels as the initial snapshot — no ECL-CC run), replay only the WAL
  /// tail segments past it, then open the WAL for appending. Throws
  /// std::runtime_error on an unusable WAL/checkpoint state.
  void init_durability();
  /// Compaction-thread: writes a checkpoint when forced, due by interval,
  /// or on the final drain — see do_checkpoint().
  void maybe_checkpoint(bool force, bool exiting);
  /// The checkpoint cut: rotate the WAL, wait for every batch accepted at
  /// the cut to be applied, compact, persist the labels, trim log_ to the
  /// un-checkpointed suffix, retire covered WAL segments.
  bool do_checkpoint();
  /// Milliseconds since service construction (steady clock).
  [[nodiscard]] std::uint64_t now_ms() const;
  /// One-way transition into read-only mode; logs and counts the entry.
  void enter_degraded(const char* reason);

  const vertex_t num_vertices_;
  const ServiceOptions opts_;

  IncrementalCC live_;
  BoundedQueue<EdgeBatch> queue_;

  // Edge log since the last checkpoint; the compaction thread copies it
  // under log_mu_ and trims the checkpointed prefix after each checkpoint.
  std::mutex log_mu_;
  std::vector<Edge> log_;

  // Checkpoint base: components already folded into the last checkpoint.
  // Compaction seeds its graph from these labels instead of replaying the
  // full history. Guarded by log_mu_ since the replication PR: on a replica
  // the Replicator's rebase_to_checkpoint() replaces the base from its own
  // thread while the compaction thread reads it.
  std::vector<vertex_t> base_labels_;
  std::uint64_t base_watermark_ = 0;
  std::uint64_t ckpt_covered_seq_ = 0;  // wal_seq of the recovered checkpoint

  std::atomic<SnapshotPtr> snapshot_;

  // Progress accounting, guarded by progress_mu_ for the cv waits; the
  // atomics are also read lock-free by stats().
  std::mutex progress_mu_;
  std::condition_variable progress_cv_;   // applied_batches_ advanced
  std::condition_variable compact_cv_;    // compaction wanted / published
  std::atomic<std::uint64_t> accepted_batches_{0};
  std::atomic<std::uint64_t> applied_batches_{0};
  std::atomic<std::uint64_t> shed_batches_{0};
  std::atomic<std::uint64_t> applied_edges_{0};
  std::uint64_t force_watermark_ = 0;  // compaction must reach this
  bool force_checkpoint_ = false;      // checkpoint_now() pending
  bool stopping_ = false;

  // Both background loops run as long-lived tasks on the executor (one
  // worker each); the done flags — guarded by progress_mu_, signaled on
  // their cvs — replace thread joins so stop() keeps its exact ordering.
  bool ingest_done_ = false;   // ingest task exited (drained or died)
  bool compact_done_ = false;  // compact task exited
  std::mutex stop_mu_;  // serializes stop(): only one caller runs the drain
  std::atomic<bool> stopped_{false};

  // Robustness state. wal_mu_ serializes appends from concurrent submit()
  // callers (and the checkpoint cut's rotation/retirement against them);
  // the flags are read lock-free by health() and submit().
  std::mutex wal_mu_;
  SegmentedWal wal_;
  std::uint64_t replayed_edges_ = 0;
  std::atomic<std::uint64_t> wal_records_{0};
  std::atomic<bool> wal_healthy_{true};
  std::atomic<bool> degraded_{false};
  std::atomic<bool> ingest_alive_{true};
  std::atomic<std::uint64_t> degraded_entries_{0};

  // Checkpoint state. The store is compaction-thread-only (plus ctor); the
  // atomics are read lock-free by health()/stats().
  CheckpointStore ckpt_store_;
  std::chrono::steady_clock::time_point start_tp_ =
      std::chrono::steady_clock::now();
  std::atomic<std::uint64_t> ckpt_written_{0};
  std::atomic<std::uint64_t> ckpt_attempts_{0};   // writes tried (ok or not)
  std::atomic<std::uint64_t> last_ckpt_epoch_{0};
  std::atomic<std::uint64_t> last_ckpt_watermark_{0};
  std::atomic<std::uint64_t> last_ckpt_ms_{0};    // now_ms() of write/load
  std::atomic<bool> has_ckpt_{false};             // written or loaded one
  std::atomic<std::uint64_t> wal_segments_{0};
  std::atomic<std::uint64_t> wal_bytes_{0};

  // Replication state. replica_ flips exactly once (promote, serialized by
  // promote_mu_); the registry is primary-side bookkeeping mapping each
  // replica id to the segment it is currently fetching, so retention never
  // retires a segment a live replica still needs.
  std::atomic<bool> replica_{false};
  std::mutex promote_mu_;
  std::atomic<std::uint64_t> repl_lag_seq_{0};
  std::atomic<std::uint64_t> repl_lag_ms_{0};
  std::atomic<std::uint64_t> replicas_connected_{0};
  struct ReplicaPeer {
    std::uint64_t fetch_seq = 0;     // segment it last asked for
    std::uint64_t last_seen_ms = 0;  // now_ms() of that request
  };
  std::mutex replicas_mu_;
  std::unordered_map<std::uint64_t, ReplicaPeer> replicas_;
  /// Prunes peers unseen for replica_hold_ms and returns the highest seq
  /// retirable without cutting a live replica off (~0 when none are live).
  [[nodiscard]] std::uint64_t replica_fetch_floor();

  // Declared last so it is destroyed first: ~Executor drains, so no task
  // can still be touching the members above while they are torn down.
  exec::Executor exec_{exec::ExecutorOptions{.num_workers = 2}};
};

}  // namespace ecl::svc
