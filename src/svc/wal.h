// Write-ahead edge log for ConnectivityService crash recovery
// (docs/ROBUSTNESS.md "WAL format").
//
// The service appends every accepted batch to this log *before* the submit
// call returns kAccepted, so an acked batch survives a crash of the daemon
// process: on restart, replay_and_truncate() returns every durably logged
// edge and the service re-inserts them into the union-find (idempotent, so
// a batch that was both logged and applied before the crash is harmless).
//
// On-disk layout (little-endian throughout):
//
//   header   8 bytes   magic "ECLWAL01"
//   record   u32 payload_len | u32 crc32(payload) | payload
//   payload  payload_len/8 edges, each u32 u | u32 v
//
// A crash can tear the final record (partial write, or payload written but
// CRC not). Replay validates each record's CRC and, at the first torn or
// corrupt record, ftruncates the file back to the last good record so the
// next open() appends from a clean tail. CRC32 is the standard reflected
// polynomial 0xEDB88320 (same function zlib computes), implemented locally
// so the dependency stays zero.
//
// Durability is configurable per service (FsyncPolicy): kNone trusts the
// page cache, kBatch fsyncs every `fsync_every` appends, kAlways fsyncs
// each append before acking. Fault points: svc.wal.append, svc.wal.fsync.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "graph/graph.h"

namespace ecl::svc {

/// When the WAL calls fsync (docs/ROBUSTNESS.md "Durability levels").
enum class FsyncPolicy : std::uint8_t {
  kNone = 0,    // never; page cache only — survives process death, not OS crash
  kBatch = 1,   // every WalOptions::fsync_every appends (and on close)
  kAlways = 2,  // every append, before the caller is acked
};

[[nodiscard]] const char* to_string(FsyncPolicy p);
/// Parses "none" | "batch" | "always". False (out unchanged) otherwise.
[[nodiscard]] bool parse_fsync_policy(std::string_view s, FsyncPolicy* out);

struct WalOptions {
  FsyncPolicy fsync_policy = FsyncPolicy::kBatch;
  /// Under kBatch: fsync once per this many appends (and on close).
  std::uint32_t fsync_every = 16;
};

/// What replay recovered. `ok == false` means the file exists but is not a
/// WAL (bad magic) or could not be read — the caller must not overwrite it.
struct WalReplayResult {
  bool ok = false;
  std::string error;
  std::vector<Edge> edges;           // every edge from intact records, in order
  std::uint64_t records = 0;         // intact records replayed
  std::uint64_t truncated_bytes = 0; // torn/corrupt tail removed, 0 if clean
};

class WriteAheadLog {
 public:
  WriteAheadLog() = default;
  ~WriteAheadLog();

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Opens `path` for appending, creating it (with header) if absent or
  /// empty. An existing file must carry the WAL magic; replay it first —
  /// open() does not validate record bodies, only the header, and positions
  /// at end-of-file. Returns false with *err filled in on failure.
  [[nodiscard]] bool open(const std::string& path, WalOptions opts, std::string* err);

  /// Appends one batch as a single CRC-framed record and applies the fsync
  /// policy. False on any I/O failure (the log is closed: a WAL that can no
  /// longer persist must not pretend to — the service reacts by entering
  /// degraded mode). Empty batches are a no-op.
  [[nodiscard]] bool append(const std::vector<Edge>& batch);

  /// Explicit fsync (e.g. before a clean shutdown). No-op when closed.
  [[nodiscard]] bool sync();

  /// Fsyncs (per policy) and closes the fd. Idempotent.
  void close();

  [[nodiscard]] bool is_open() const { return fd_ >= 0; }
  [[nodiscard]] std::uint64_t appended_records() const { return appended_records_; }

  /// Reads `path`, validates header + per-record CRCs, and truncates any
  /// torn tail in place. A missing file is a clean empty result (ok, no
  /// edges) so first boot and restart share one code path.
  [[nodiscard]] static WalReplayResult replay_and_truncate(const std::string& path);

 private:
  int fd_ = -1;
  WalOptions opts_;
  std::string path_;
  std::uint64_t appended_records_ = 0;
  std::uint32_t unsynced_appends_ = 0;
};

/// CRC32 (reflected 0xEDB88320, zlib-compatible). Exposed for tests that
/// hand-craft torn or corrupt WAL images.
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t n);

}  // namespace ecl::svc
