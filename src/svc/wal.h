// Write-ahead edge log for ConnectivityService crash recovery
// (docs/ROBUSTNESS.md "WAL format").
//
// The service appends every accepted batch to this log *before* the submit
// call returns kAccepted, so an acked batch survives a crash of the daemon
// process: on restart, replay_and_truncate() returns every durably logged
// edge and the service re-inserts them into the union-find (idempotent, so
// a batch that was both logged and applied before the crash is harmless).
//
// On-disk layout (little-endian throughout):
//
//   header   8 bytes   magic "ECLWAL01"
//   record   u32 payload_len | u32 crc32(payload) | payload
//   payload  payload_len/8 edges, each u32 u | u32 v
//
// A crash can tear the final record (partial write, or payload written but
// CRC not). Replay validates each record's CRC and, at the first torn or
// corrupt record, ftruncates the file back to the last good record so the
// next open() appends from a clean tail. CRC32 is the standard reflected
// polynomial 0xEDB88320 (same function zlib computes), implemented locally
// so the dependency stays zero.
//
// Durability is configurable per service (FsyncPolicy): kNone trusts the
// page cache, kBatch fsyncs every `fsync_every` appends, kAlways fsyncs
// each append before acking. Fault points: svc.wal.append, svc.wal.fsync,
// svc.wal.truncate, svc.wal.rotate, svc.wal.retire.
//
// SegmentedWal composes WriteAheadLog into a rotating segment chain
// (`<base>.000001`, `<base>.000002`, ...) so that, together with durable
// checkpoints (svc/checkpoint.h), disk usage and recovery time are bounded
// by the un-checkpointed *tail* instead of lifetime ingest
// (docs/ROBUSTNESS.md "Segmented WAL + checkpoints").
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "graph/graph.h"

namespace ecl::svc {

/// When the WAL calls fsync (docs/ROBUSTNESS.md "Durability levels").
enum class FsyncPolicy : std::uint8_t {
  kNone = 0,    // never; page cache only — survives process death, not OS crash
  kBatch = 1,   // every WalOptions::fsync_every appends (and on close)
  kAlways = 2,  // every append, before the caller is acked
};

[[nodiscard]] const char* to_string(FsyncPolicy p);
/// Parses "none" | "batch" | "always". False (out unchanged) otherwise.
[[nodiscard]] bool parse_fsync_policy(std::string_view s, FsyncPolicy* out);

struct WalOptions {
  FsyncPolicy fsync_policy = FsyncPolicy::kBatch;
  /// Under kBatch: fsync once per this many appends (and on close).
  std::uint32_t fsync_every = 16;
};

/// What replay recovered. `ok == false` means the file exists but is not a
/// WAL (bad magic) or could not be read — the caller must not overwrite it.
struct WalReplayResult {
  bool ok = false;
  std::string error;
  std::vector<Edge> edges;           // every edge from intact records, in order
  std::uint64_t records = 0;         // intact records replayed
  std::uint64_t truncated_bytes = 0; // torn/corrupt tail removed, 0 if clean
  /// A torn tail was found but could not be cut off (ftruncate/fsync
  /// failed): the file still ends in garbage a future append would write
  /// after. The recovered edges are trustworthy, the file is NOT safe to
  /// append to. Counted in ecl.svc.wal.truncate_errors.
  bool truncate_failed = false;
};

class WriteAheadLog {
 public:
  WriteAheadLog() = default;
  ~WriteAheadLog();

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Opens `path` for appending, creating it (with header) if absent or
  /// empty. An existing file must carry the WAL magic; replay it first —
  /// open() does not validate record bodies, only the header, and positions
  /// at end-of-file. Returns false with *err filled in on failure.
  [[nodiscard]] bool open(const std::string& path, WalOptions opts, std::string* err);

  /// Appends one batch as a single CRC-framed record and applies the fsync
  /// policy. False on any I/O failure (the log is closed: a WAL that can no
  /// longer persist must not pretend to — the service reacts by entering
  /// degraded mode). Empty batches are a no-op.
  [[nodiscard]] bool append(const std::vector<Edge>& batch);

  /// Explicit fsync (e.g. before a clean shutdown). No-op when closed.
  [[nodiscard]] bool sync();

  /// Fsyncs (per policy) and closes the fd. Idempotent.
  void close();

  [[nodiscard]] bool is_open() const { return fd_ >= 0; }
  [[nodiscard]] std::uint64_t appended_records() const { return appended_records_; }

  /// Current on-disk size (header + records appended so far). Valid while
  /// open; drives SegmentedWal's rotation decision.
  [[nodiscard]] std::uint64_t size_bytes() const { return file_bytes_; }

  /// Reads `path`, validates header + per-record CRCs, and truncates any
  /// torn tail in place. A missing file is a clean empty result (ok, no
  /// edges) so first boot and restart share one code path.
  ///
  /// With `truncate_tail == false` the file is never modified: a torn tail
  /// is still reported via truncated_bytes, but left on disk. SegmentedWal
  /// validates *sealed* segments this way — damage there is refused, and
  /// cutting the file would destroy acked records past the damage point
  /// that a manual repair could still recover.
  [[nodiscard]] static WalReplayResult replay_and_truncate(const std::string& path,
                                                           bool truncate_tail = true);

 private:
  int fd_ = -1;
  WalOptions opts_;
  std::string path_;
  std::uint64_t appended_records_ = 0;
  std::uint64_t file_bytes_ = 0;
  std::uint32_t unsynced_appends_ = 0;
};

// ---------------------------------------------------------------------------
// Segmented WAL

/// One `<base>.NNNNNN` file (6-digit zero-padded sequence number).
struct NumberedFile {
  std::uint64_t seq = 0;
  std::string path;
  std::uint64_t bytes = 0;
};

/// `<base>.NNNNNN` for seq (shared naming scheme of WAL segments and
/// checkpoints).
[[nodiscard]] std::string numbered_path(const std::string& base, std::uint64_t seq);

/// Every existing `<base>.NNNNNN` file, ascending by sequence number.
[[nodiscard]] std::vector<NumberedFile> list_numbered_files(const std::string& base);

/// Fsyncs the directory containing `path`, making a just-created file (or a
/// just-completed rename) itself durable — without this, a crash right
/// after O_CREAT/rename can lose the *directory entry* even though the data
/// blocks were synced. Returns false on failure (errno preserved).
[[nodiscard]] bool fsync_parent_dir(const std::string& path);

struct SegmentedWalOptions {
  WalOptions wal;  // per-segment durability policy
  /// Rotate to a fresh segment once the active one reaches this size
  /// (0 = never rotate on size; explicit rotate() still works).
  std::uint64_t segment_bytes = 64ull << 20;
};

/// A write-ahead log split across rotating segment files. Appends go to the
/// highest-numbered (active) segment; rotation seals it and opens the next.
/// Sealed segments are immutable and individually retirable once a durable
/// checkpoint covers them. Not thread-safe — the service serializes all
/// access under its WAL mutex.
class SegmentedWal {
 public:
  /// Adopts a pre-segmentation single-file WAL: if `base` exists as a plain
  /// file it is renamed to `<base>.000001` (and the rename made durable).
  /// No-op when `base` does not exist. False on rename failure.
  [[nodiscard]] static bool adopt_legacy(const std::string& base, std::string* err);

  /// Replays every segment with seq > after_seq, in sequence order, exactly
  /// like WriteAheadLog::replay_and_truncate per segment. A torn tail is
  /// only legal in the *final* segment (the only one a crash can tear);
  /// torn or corrupt records in an earlier segment fail the replay
  /// (ok == false) rather than silently dropping later acked edges.
  struct ReplayResult {
    bool ok = false;
    std::string error;
    std::vector<Edge> edges;
    std::uint64_t records = 0;
    std::uint64_t truncated_bytes = 0;
    std::uint64_t segments = 0;  // segments replayed
    bool truncate_failed = false;
  };
  [[nodiscard]] static ReplayResult replay(const std::string& base,
                                           std::uint64_t after_seq);

  /// Opens the highest existing segment for appending, or creates segment
  /// max(first_seq, 1) when none exist (first_seq lets a checkpoint-led
  /// recovery keep sequence numbers monotonic after full retention).
  [[nodiscard]] bool open(const std::string& base, SegmentedWalOptions opts,
                          std::uint64_t first_seq, std::string* err);

  /// Appends one batch to the active segment, rotating first when the size
  /// threshold is reached. False on any append or rotation failure (the log
  /// is closed — same contract as WriteAheadLog::append).
  [[nodiscard]] bool append(const std::vector<Edge>& batch);

  /// Seals the active segment and opens the next one (the checkpoint cut).
  /// Fault point svc.wal.rotate. On failure the log is closed and false is
  /// returned. Counted in ecl.svc.wal.rotations.
  [[nodiscard]] bool rotate(std::string* err);

  /// Deletes sealed segments with seq <= upto (never the active segment).
  /// Fault point svc.wal.retire. Returns the number of segments deleted;
  /// failures are counted (ecl.svc.wal.retire_errors) and skipped — a
  /// leftover segment costs disk, not correctness.
  std::size_t retire_through(std::uint64_t upto);

  [[nodiscard]] bool sync() { return wal_.sync(); }
  void close() { wal_.close(); }
  [[nodiscard]] bool is_open() const { return wal_.is_open(); }

  [[nodiscard]] std::uint64_t active_seq() const { return active_seq_; }
  /// Retained segments, active included.
  [[nodiscard]] std::size_t segment_count() const { return sealed_.size() + 1; }
  /// Total on-disk bytes across retained segments, active included.
  [[nodiscard]] std::uint64_t total_bytes() const {
    return sealed_bytes_ + wal_.size_bytes();
  }
  [[nodiscard]] std::uint64_t appended_records() const { return appended_records_; }

 private:
  [[nodiscard]] bool open_segment(std::uint64_t seq, std::string* err);

  WriteAheadLog wal_;  // the active segment
  std::string base_;
  SegmentedWalOptions opts_;
  std::uint64_t active_seq_ = 0;
  std::uint64_t appended_records_ = 0;
  std::vector<NumberedFile> sealed_;  // ascending seq
  std::uint64_t sealed_bytes_ = 0;
};

// ---------------------------------------------------------------------------
// Segment reader (replication serving side, docs/REPLICATION.md)

/// Result of one bounded segment read. ok == false only on a real I/O
/// error; a missing segment is classified instead: `retired` when a
/// higher-numbered segment exists (the writer only ever unlinks below its
/// active segment, so the file was retired and the reader must
/// re-bootstrap), plain !exists when the reader is simply ahead of the
/// writer (segment not created yet).
struct SegmentChunk {
  bool ok = false;
  std::string error;
  bool exists = false;
  bool retired = false;
  std::uint64_t segment_bytes = 0;  // file size observed by this read
  std::vector<std::uint8_t> data;   // bytes [offset, offset + <= max_bytes)
};

/// Reads WAL segments concurrently with the writer rotating and retiring
/// them. Stateless: every read opens `<base>.NNNNNN` by name (never holding
/// an fd across calls, so a retirement between reads cannot strand the
/// reader on an unlinked file) and resolves ENOENT against the segment
/// index with a retry — a listing that shows the segment means the open
/// raced its creation or retirement, so the open is tried again before the
/// missing file is classified. Reading a file the writer is appending to is
/// safe: segments are append-only, so a bounded pread returns a stable
/// prefix (at worst ending mid-record, which the consumer buffers until the
/// rest arrives).
class WalSegmentReader {
 public:
  [[nodiscard]] static SegmentChunk read(const std::string& base, std::uint64_t seq,
                                         std::uint64_t offset, std::uint32_t max_bytes);
};

/// CRC32 (reflected 0xEDB88320, zlib-compatible). Exposed for tests that
/// hand-craft torn or corrupt WAL images.
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t n);

/// The 8-byte magic opening every WAL segment ("ECLWAL01"). Exposed so the
/// replication path can validate mirrored segment headers without reparsing
/// whole files.
[[nodiscard]] const char* wal_magic();
inline constexpr std::size_t kWalMagicBytes = 8;
/// Bytes of one record header (u32 payload_len | u32 crc).
inline constexpr std::size_t kWalRecordHeaderBytes = 8;

}  // namespace ecl::svc
