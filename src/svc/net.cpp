#include "svc/net.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "svc/protocol.h"

namespace ecl::svc::net {

namespace {

void set_error(std::string* err, const std::string& what) {
  if (err != nullptr) *err = what + ": " + std::strerror(errno);
}

}  // namespace

bool read_full(int fd, void* buf, std::size_t n) {
  auto* p = static_cast<std::uint8_t*>(buf);
  while (n > 0) {
    const ssize_t got = ::recv(fd, p, n, 0);
    if (got == 0) return false;  // orderly EOF
    if (got < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += got;
    n -= static_cast<std::size_t>(got);
  }
  return true;
}

bool write_full(int fd, const void* buf, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(buf);
  while (n > 0) {
    const ssize_t put = ::send(fd, p, n, MSG_NOSIGNAL);
    if (put < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += put;
    n -= static_cast<std::size_t>(put);
  }
  return true;
}

bool read_frame(int fd, std::vector<std::uint8_t>& payload) {
  std::uint8_t prefix[4];
  if (!read_full(fd, prefix, sizeof(prefix))) return false;
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) len |= static_cast<std::uint32_t>(prefix[i]) << (8 * i);
  if (len > kMaxFrameBytes) return false;
  payload.resize(len);
  return len == 0 || read_full(fd, payload.data(), len);
}

bool write_frame(int fd, const std::vector<std::uint8_t>& bytes) {
  return write_full(fd, bytes.data(), bytes.size());
}

int listen_tcp(const std::string& host, int port, int backlog, int* bound_port,
               std::string* err) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    set_error(err, "socket");
    return -1;
  }
  const int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (err != nullptr) *err = "listen_tcp: host must be a numeric IPv4 address: " + host;
    ::close(fd);
    return -1;
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    set_error(err, "bind " + host);
    ::close(fd);
    return -1;
  }
  if (::listen(fd, backlog) != 0) {
    set_error(err, "listen");
    ::close(fd);
    return -1;
  }
  if (bound_port != nullptr) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
      *bound_port = ntohs(bound.sin_port);
    }
  }
  return fd;
}

int listen_unix(const std::string& path, int backlog, std::string* err) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) {
    if (err != nullptr) *err = "unix socket path too long: " + path;
    return -1;
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    set_error(err, "socket");
    return -1;
  }
  ::unlink(path.c_str());  // stale socket from a previous run
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    set_error(err, "bind " + path);
    ::close(fd);
    return -1;
  }
  if (::listen(fd, backlog) != 0) {
    set_error(err, "listen");
    ::close(fd);
    return -1;
  }
  return fd;
}

int connect_tcp(const std::string& host, int port, std::string* err) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    set_error(err, "socket");
    return -1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (err != nullptr) *err = "connect_tcp: host must be a numeric IPv4 address: " + host;
    ::close(fd);
    return -1;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    set_error(err, "connect " + host);
    ::close(fd);
    return -1;
  }
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

int connect_unix(const std::string& path, std::string* err) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) {
    if (err != nullptr) *err = "unix socket path too long: " + path;
    return -1;
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    set_error(err, "socket");
    return -1;
  }
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    set_error(err, "connect " + path);
    ::close(fd);
    return -1;
  }
  return fd;
}

}  // namespace ecl::svc::net
