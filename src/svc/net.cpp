#include "svc/net.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "fault/fault.h"
#include "svc/protocol.h"

namespace ecl::svc::net {

namespace {

void set_error(std::string* err, const std::string& what) {
  if (err != nullptr) *err = what + ": " + std::strerror(errno);
}

/// Injected read fault, shared by both read paths. Mutates `budget` (the
/// bytes this read may still deliver before simulating a dead peer) and
/// returns true when the read should fail right now.
bool read_fault_fires(std::size_t& budget) {
  const auto outcome = ECL_FAULT_POINT("svc.net.read");
  switch (outcome.action) {
    case fault::Action::kFail:
      return true;
    case fault::Action::kShort:
      budget = std::min<std::size_t>(budget, outcome.arg);
      return budget == 0;
    case fault::Action::kDelay:
      fault::apply_delay(outcome);
      return false;
    default:
      return false;
  }
}

bool write_fault_fires() {
  const auto outcome = ECL_FAULT_POINT("svc.net.write");
  if (outcome.action == fault::Action::kDelay) {
    fault::apply_delay(outcome);
    return false;
  }
  return outcome.action == fault::Action::kFail ||
         outcome.action == fault::Action::kShort;
}

timeval millis_to_timeval(int ms) {
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = static_cast<suseconds_t>(ms % 1000) * 1000;
  return tv;
}

using clock_type = std::chrono::steady_clock;

/// Remaining milliseconds until `deadline`, clamped to >= 0; -1 when there
/// is no deadline (poll's "wait forever").
int remaining_ms(bool bounded, clock_type::time_point deadline) {
  if (!bounded) return -1;
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - clock_type::now());
  return static_cast<int>(std::max<long long>(0, left.count()));
}

/// Reads exactly n bytes with an optional absolute deadline enforced by
/// poll() before every recv. `fault_budget` is the injected short-read
/// allowance threaded through from the caller.
IoStatus read_n_deadline(int fd, std::uint8_t* p, std::size_t n, bool bounded,
                         clock_type::time_point deadline, std::size_t* got,
                         std::size_t& fault_budget) {
  std::size_t done = 0;
  const auto finish = [&](IoStatus st) {
    if (got != nullptr) *got = done;
    return st;
  };
  while (done < n) {
    const int wait = remaining_ms(bounded, deadline);
    if (bounded && wait == 0) return finish(IoStatus::kTimeout);
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, wait);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return finish(IoStatus::kError);
    }
    if (ready == 0) return finish(IoStatus::kTimeout);
    if (read_fault_fires(fault_budget)) return finish(IoStatus::kError);
    std::size_t want = n - done;
    if (fault_budget != SIZE_MAX) want = std::min(want, fault_budget);
    const ssize_t r = ::recv(fd, p + done, want, 0);
    if (r == 0) return finish(done == 0 ? IoStatus::kEof : IoStatus::kError);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return finish(IoStatus::kTimeout);
      return finish(IoStatus::kError);
    }
    done += static_cast<std::size_t>(r);
    if (fault_budget != SIZE_MAX) {
      fault_budget -= static_cast<std::size_t>(r);
      if (fault_budget == 0 && done < n) return finish(IoStatus::kError);
    }
  }
  return finish(IoStatus::kOk);
}

}  // namespace

void set_io_timeouts(int fd, int recv_timeout_ms, int send_timeout_ms) {
  if (recv_timeout_ms > 0) {
    const timeval tv = millis_to_timeval(recv_timeout_ms);
    (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  if (send_timeout_ms > 0) {
    const timeval tv = millis_to_timeval(send_timeout_ms);
    (void)::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }
}

IoStatus read_full_io(int fd, void* buf, std::size_t n, std::size_t* got) {
  auto* p = static_cast<std::uint8_t*>(buf);
  std::size_t done = 0;
  std::size_t fault_budget = SIZE_MAX;
  const auto finish = [&](IoStatus st) {
    if (got != nullptr) *got = done;
    return st;
  };
  while (done < n) {
    if (read_fault_fires(fault_budget)) return finish(IoStatus::kError);
    std::size_t want = n - done;
    if (fault_budget != SIZE_MAX) want = std::min(want, fault_budget);
    const ssize_t r = ::recv(fd, p + done, want, 0);
    if (r == 0) return finish(done == 0 ? IoStatus::kEof : IoStatus::kError);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return finish(IoStatus::kTimeout);
      return finish(IoStatus::kError);
    }
    done += static_cast<std::size_t>(r);
    if (fault_budget != SIZE_MAX) {
      fault_budget -= static_cast<std::size_t>(r);
      if (fault_budget == 0 && done < n) return finish(IoStatus::kError);
    }
  }
  return finish(IoStatus::kOk);
}

IoStatus write_full_io(int fd, const void* buf, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(buf);
  while (n > 0) {
    if (write_fault_fires()) return IoStatus::kError;
    const ssize_t put = ::send(fd, p, n, MSG_NOSIGNAL);
    if (put < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return IoStatus::kTimeout;
      return IoStatus::kError;
    }
    p += put;
    n -= static_cast<std::size_t>(put);
  }
  return IoStatus::kOk;
}

IoStatus read_frame_deadline(int fd, std::vector<std::uint8_t>& payload,
                             int idle_timeout_ms, int frame_timeout_ms) {
  // Phase 1: wait (idle, unbounded work is fine) for the first byte.
  for (;;) {
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, idle_timeout_ms > 0 ? idle_timeout_ms : -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return IoStatus::kError;
    }
    if (ready == 0) return IoStatus::kIdle;
    break;
  }
  // Phase 2: a frame has started; it must complete before the deadline.
  const bool bounded = frame_timeout_ms > 0;
  const auto deadline =
      clock_type::now() + std::chrono::milliseconds(frame_timeout_ms);
  std::size_t fault_budget = SIZE_MAX;

  std::uint8_t prefix[4];
  IoStatus st = read_n_deadline(fd, prefix, sizeof(prefix), bounded, deadline,
                                nullptr, fault_budget);
  if (st != IoStatus::kOk) return st;
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) len |= static_cast<std::uint32_t>(prefix[i]) << (8 * i);
  if (len > kMaxFrameBytes) return IoStatus::kError;
  payload.resize(len);
  if (len == 0) return IoStatus::kOk;
  st = read_n_deadline(fd, payload.data(), len, bounded, deadline, nullptr,
                       fault_budget);
  // A peer that closed or died mid-payload tore the frame: surface kError,
  // never a "clean EOF".
  return st == IoStatus::kEof ? IoStatus::kError : st;
}

bool read_full(int fd, void* buf, std::size_t n) {
  return read_full_io(fd, buf, n) == IoStatus::kOk;
}

bool write_full(int fd, const void* buf, std::size_t n) {
  return write_full_io(fd, buf, n) == IoStatus::kOk;
}

bool read_frame(int fd, std::vector<std::uint8_t>& payload) {
  std::uint8_t prefix[4];
  if (read_full_io(fd, prefix, sizeof(prefix)) != IoStatus::kOk) return false;
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) len |= static_cast<std::uint32_t>(prefix[i]) << (8 * i);
  if (len > kMaxFrameBytes) return false;
  payload.resize(len);
  return len == 0 || read_full_io(fd, payload.data(), len) == IoStatus::kOk;
}

bool write_frame(int fd, const std::vector<std::uint8_t>& bytes) {
  return write_full_io(fd, bytes.data(), bytes.size()) == IoStatus::kOk;
}

IoStatus write_frame_io(int fd, const std::vector<std::uint8_t>& bytes) {
  return write_full_io(fd, bytes.data(), bytes.size());
}

int listen_tcp(const std::string& host, int port, int backlog, int* bound_port,
               std::string* err) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    set_error(err, "socket");
    return -1;
  }
  const int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (err != nullptr) *err = "listen_tcp: host must be a numeric IPv4 address: " + host;
    ::close(fd);
    return -1;
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    set_error(err, "bind " + host);
    ::close(fd);
    return -1;
  }
  if (::listen(fd, backlog) != 0) {
    set_error(err, "listen");
    ::close(fd);
    return -1;
  }
  if (bound_port != nullptr) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
      *bound_port = ntohs(bound.sin_port);
    }
  }
  return fd;
}

int listen_unix(const std::string& path, int backlog, std::string* err) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) {
    if (err != nullptr) *err = "unix socket path too long: " + path;
    return -1;
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    set_error(err, "socket");
    return -1;
  }
  ::unlink(path.c_str());  // stale socket from a previous run
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    set_error(err, "bind " + path);
    ::close(fd);
    return -1;
  }
  if (::listen(fd, backlog) != 0) {
    set_error(err, "listen");
    ::close(fd);
    return -1;
  }
  return fd;
}

namespace {

/// Connects `fd` to `addr` within `timeout_ms` via the standard
/// non-blocking connect + poll(POLLOUT) + SO_ERROR dance, then restores
/// blocking mode. Returns false (errno set) on failure or timeout.
bool connect_with_timeout(int fd, const sockaddr* addr, socklen_t addrlen,
                          int timeout_ms) {
  if (ECL_FAULT_POINT("svc.net.connect").fired()) {
    errno = ECONNREFUSED;
    return false;
  }
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (timeout_ms <= 0 || flags < 0) {
    return ::connect(fd, addr, addrlen) == 0;
  }
  (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  bool ok = false;
  if (::connect(fd, addr, addrlen) == 0) {
    ok = true;
  } else if (errno == EINPROGRESS) {
    pollfd pfd{fd, POLLOUT, 0};
    int ready;
    do {
      ready = ::poll(&pfd, 1, timeout_ms);
    } while (ready < 0 && errno == EINTR);
    if (ready == 0) {
      errno = ETIMEDOUT;
    } else if (ready > 0) {
      int soerr = 0;
      socklen_t len = sizeof(soerr);
      if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &len) == 0 && soerr == 0) {
        ok = true;
      } else {
        errno = soerr != 0 ? soerr : EIO;
      }
    }
  }
  const int saved_errno = errno;
  (void)::fcntl(fd, F_SETFL, flags);
  errno = saved_errno;
  return ok;
}

}  // namespace

int connect_tcp(const std::string& host, int port, std::string* err,
                int connect_timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    set_error(err, "socket");
    return -1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (err != nullptr) *err = "connect_tcp: host must be a numeric IPv4 address: " + host;
    ::close(fd);
    return -1;
  }
  if (!connect_with_timeout(fd, reinterpret_cast<const sockaddr*>(&addr),
                            sizeof(addr), connect_timeout_ms)) {
    set_error(err, "connect " + host);
    ::close(fd);
    return -1;
  }
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  set_io_timeouts(fd, kDefaultSocketTimeoutMs, kDefaultSocketTimeoutMs);
  return fd;
}

int connect_unix(const std::string& path, std::string* err, int connect_timeout_ms) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) {
    if (err != nullptr) *err = "unix socket path too long: " + path;
    return -1;
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    set_error(err, "socket");
    return -1;
  }
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (!connect_with_timeout(fd, reinterpret_cast<const sockaddr*>(&addr),
                            sizeof(addr), connect_timeout_ms)) {
    set_error(err, "connect " + path);
    ::close(fd);
    return -1;
  }
  set_io_timeouts(fd, kDefaultSocketTimeoutMs, kDefaultSocketTimeoutMs);
  return fd;
}

}  // namespace ecl::svc::net
