// Durable label-array checkpoints for ConnectivityService
// (docs/ROBUSTNESS.md "Checkpoint format").
//
// A checkpoint persists one compacted snapshot — the canonical component
// labels plus the watermark/epoch that produced them and the WAL segment
// sequence number it covers. Once a checkpoint is durable, every WAL
// segment with seq <= wal_seq is redundant for recovery: restart becomes
// "load checkpoint + replay tail segments" instead of "replay lifetime
// ingest", which is what bounds recovery time and steady-state disk/memory
// (ISSUE: static/incremental split of Hong, Dhulipala & Shun,
// arXiv:2008.11839 — the static snapshot makes history before its
// watermark redundant).
//
// On-disk layout (little-endian):
//
//   header   8 bytes   magic "ECLCKPT1"
//   crc      u32       crc32 of the payload that follows
//   payload  u32 version (=1) | u32 n | u64 watermark | u64 epoch |
//            u64 wal_seq | n x u32 labels
//
// Checkpoints are numbered files `<base>.000001, <base>.000002, ...`
// (shared naming with WAL segments, svc/wal.h). Writes are crash-atomic:
// the image is written to `<base>.tmp`, fsynced, renamed over the final
// numbered name, and the parent directory fsynced — a crash at any point
// leaves either the previous checkpoint set intact or a complete new file.
// The loader walks checkpoints newest-first and falls back past any torn
// or corrupt file (counted in ecl.svc.ckpt.load_fallbacks). Retention
// keeps the newest two so that fallback always has somewhere to land.
//
// Fault points: svc.ckpt.write, svc.ckpt.fsync, svc.ckpt.rename.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace ecl::svc {

/// The logical content of one checkpoint.
struct CheckpointData {
  std::uint32_t n = 0;            // label-array length (vertex universe)
  std::uint64_t watermark = 0;    // edges folded into these labels
  std::uint64_t epoch = 0;        // snapshot epoch the labels came from
  std::uint64_t wal_seq = 0;      // WAL segments <= this are fully covered
  std::vector<vertex_t> labels;   // canonical (minimum-ID) component labels
};

struct CheckpointWriteResult {
  bool ok = false;
  std::string error;
  std::uint64_t seq = 0;    // sequence number of the new checkpoint file
  std::uint64_t bytes = 0;  // size of the written image
};

struct CheckpointLoadResult {
  bool ok = false;          // a valid checkpoint was loaded
  bool found_any = false;   // at least one checkpoint file existed
  std::string error;        // last failure when !ok && found_any
  std::uint64_t seq = 0;    // sequence number the data came from
  std::uint64_t fallbacks = 0;  // newer checkpoints skipped as torn/corrupt
  CheckpointData data;
};

/// Owns the `<base>.NNNNNN` checkpoint chain: atomic writes, keep-newest-2
/// retention, and fallback loading. Not thread-safe — the service calls it
/// from the compaction thread only (plus the constructor, pre-threads).
class CheckpointStore {
 public:
  /// Binds the store to `base` and scans for existing checkpoints. Never
  /// creates anything. `keep` is the retention count (min 1; default 2 so
  /// a corrupt newest checkpoint still has a fallback).
  void open(std::string base, std::size_t keep = 2);

  /// Loads the newest checkpoint that validates, skipping (not deleting)
  /// torn/corrupt newer ones. `!found_any` on a fresh directory is not an
  /// error — the caller starts from scratch.
  [[nodiscard]] CheckpointLoadResult load_latest_valid() const;

  /// Writes `data` as the next checkpoint (seq = newest + 1) via the
  /// crash-atomic temp -> fsync -> rename -> dir-fsync protocol, then
  /// applies retention (unlinking checkpoints beyond the keep count).
  /// Counted in ecl.svc.ckpt.writes / .write_errors / .bytes.
  [[nodiscard]] CheckpointWriteResult write(const CheckpointData& data);

  /// The highest WAL segment seq that is safe to retire: the wal_seq of the
  /// *oldest retained* checkpoint (0 when fewer than `keep` checkpoints
  /// exist). Using the oldest — not the newest — means a fallback load
  /// after a corrupt newest checkpoint still finds every segment it needs.
  [[nodiscard]] std::uint64_t retention_floor_wal_seq() const;

  [[nodiscard]] const std::string& base() const { return base_; }
  [[nodiscard]] std::uint64_t latest_seq() const;
  [[nodiscard]] std::size_t count() const { return entries_.size(); }

  /// Parses one checkpoint file. Exposed for tests and fallback logic.
  [[nodiscard]] static bool read_file(const std::string& path, CheckpointData* out,
                                      std::string* err);

 private:
  struct Entry {
    std::uint64_t seq = 0;
    std::string path;
    std::uint64_t wal_seq = 0;  // parsed lazily; ~0 when unknown/corrupt
    bool wal_seq_known = false;
  };

  std::string base_;
  std::size_t keep_ = 2;
  std::vector<Entry> entries_;  // ascending seq
};

}  // namespace ecl::svc
