#include "svc/client.h"

#include <unistd.h>

#include "svc/net.h"

namespace ecl::svc {

std::unique_ptr<Client> Client::connect_tcp(const std::string& host, int port,
                                            std::string* err) {
  const int fd = net::connect_tcp(host, port, err);
  if (fd < 0) return nullptr;
  return std::unique_ptr<Client>(new Client(fd));
}

std::unique_ptr<Client> Client::connect_unix(const std::string& path, std::string* err) {
  const int fd = net::connect_unix(path, err);
  if (fd < 0) return nullptr;
  return std::unique_ptr<Client>(new Client(fd));
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

bool Client::round_trip(Request& req, Response& resp) {
  req.id = next_id_++;
  scratch_.clear();
  encode_request(req, scratch_);
  if (!net::write_frame(fd_, scratch_)) return false;
  if (!net::read_frame(fd_, scratch_)) return false;
  if (!decode_response(scratch_, resp)) return false;
  // A response for a different request or op means the stream is skewed.
  return resp.id == req.id && resp.type == req.type;
}

bool Client::ping() {
  Request req;
  req.type = MsgType::kPing;
  Response resp;
  return round_trip(req, resp) && resp.status == Status::kOk;
}

Status Client::ingest(const std::vector<Edge>& edges) {
  // Oversized batches would exceed kMaxFrameBytes; the server answers those
  // by dropping the connection, which the caller would only see as kError.
  // Fail definitively here instead, before touching the socket.
  if (edges.size() > kMaxIngestEdges) return Status::kInvalid;
  Request req;
  req.type = MsgType::kIngest;
  req.edges = edges;
  Response resp;
  if (!round_trip(req, resp)) return Status::kError;
  return resp.status;
}

bool Client::connected(vertex_t u, vertex_t v, ReadMode mode, Status* status) {
  Request req;
  req.type = MsgType::kConnected;
  req.u = u;
  req.v = v;
  req.mode = mode;
  Response resp;
  if (!round_trip(req, resp)) {
    if (status != nullptr) *status = Status::kError;
    return false;
  }
  if (status != nullptr) *status = resp.status;
  return resp.status == Status::kOk && resp.value != 0;
}

vertex_t Client::component_of(vertex_t v, ReadMode mode, Status* status) {
  Request req;
  req.type = MsgType::kComponentOf;
  req.v = v;
  req.mode = mode;
  Response resp;
  if (!round_trip(req, resp)) {
    if (status != nullptr) *status = Status::kError;
    return kInvalidVertex;
  }
  if (status != nullptr) *status = resp.status;
  return resp.status == Status::kOk ? static_cast<vertex_t>(resp.value) : kInvalidVertex;
}

bool Client::component_count(std::uint64_t& count) {
  Request req;
  req.type = MsgType::kComponentCount;
  Response resp;
  if (!round_trip(req, resp) || resp.status != Status::kOk) return false;
  count = resp.value;
  return true;
}

bool Client::stats(ServiceStats& out) {
  Request req;
  req.type = MsgType::kStats;
  Response resp;
  if (!round_trip(req, resp) || resp.status != Status::kOk) return false;
  out = resp.stats;
  return true;
}

bool Client::shutdown_server() {
  Request req;
  req.type = MsgType::kShutdown;
  Response resp;
  return round_trip(req, resp) && resp.status == Status::kOk;
}

}  // namespace ecl::svc
