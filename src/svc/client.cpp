#include "svc/client.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "obs/metrics.h"

namespace ecl::svc {

Client::Client(int fd, ClientOptions opts, bool is_unix, std::string host_or_path,
               int port)
    : fd_(fd),
      opts_(opts),
      is_unix_(is_unix),
      host_or_path_(std::move(host_or_path)),
      port_(port),
      jitter_(opts.backoff_seed) {
  net::set_io_timeouts(fd_, opts_.op_timeout_ms, opts_.op_timeout_ms);
  // Seed != default: start the id sequence at a seed-derived 64-bit base
  // (splitmix64 finalizer) so concurrent clients — loadgen workers already
  // scramble their seeds — stamp distinguishable ids into the slow log.
  if (opts_.backoff_seed != ClientOptions{}.backoff_seed) {
    std::uint64_t z = opts_.backoff_seed + 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    next_id_ = (z ^ (z >> 31)) | 1;
  }
}

std::unique_ptr<Client> Client::connect_tcp(const std::string& host, int port,
                                            std::string* err, ClientOptions opts) {
  const int fd = net::connect_tcp(host, port, err, opts.connect_timeout_ms);
  if (fd < 0) return nullptr;
  return std::unique_ptr<Client>(new Client(fd, opts, false, host, port));
}

std::unique_ptr<Client> Client::connect_unix(const std::string& path, std::string* err,
                                             ClientOptions opts) {
  const int fd = net::connect_unix(path, err, opts.connect_timeout_ms);
  if (fd < 0) return nullptr;
  return std::unique_ptr<Client>(new Client(fd, opts, true, path, 0));
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

bool Client::reconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  const int fd = is_unix_
                     ? net::connect_unix(host_or_path_, nullptr, opts_.connect_timeout_ms)
                     : net::connect_tcp(host_or_path_, port_, nullptr,
                                        opts_.connect_timeout_ms);
  if (fd < 0) return false;
  fd_ = fd;
  net::set_io_timeouts(fd_, opts_.op_timeout_ms, opts_.op_timeout_ms);
  ++reconnects_;
  ECL_OBS_COUNTER_ADD("ecl.svc.client.reconnects", 1);
  return true;
}

void Client::backoff_sleep(int attempt) {
  const std::uint64_t shift = static_cast<std::uint64_t>(std::min(attempt, 20));
  const std::uint64_t cap = static_cast<std::uint64_t>(std::max(1, opts_.backoff_max_ms));
  const std::uint64_t base =
      std::min(cap, static_cast<std::uint64_t>(std::max(1, opts_.backoff_base_ms)) << shift);
  // Jitter in [0.5, 1.0): desynchronizes retry storms across clients without
  // ever collapsing the wait to zero.
  const double scaled = static_cast<double>(base) * (0.5 + 0.5 * jitter_.uniform());
  const auto sleep_ms = static_cast<std::uint64_t>(scaled);
  ECL_OBS_COUNTER_ADD("ecl.svc.client.backoff_ms", sleep_ms);
  ECL_OBS_HISTOGRAM_RECORD("ecl.svc.client.backoff_ms_hist",
                           ::ecl::obs::Histogram::pow2_bounds(16), sleep_ms);
  std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
}

bool Client::round_trip(Request& req, Response& resp) {
  req.id = next_id_++;
  scratch_.clear();
  encode_request(req, scratch_);
  if (!net::write_frame(fd_, scratch_)) return false;
  if (!net::read_frame(fd_, scratch_)) return false;
  if (!decode_response(scratch_, resp)) return false;
  // A response for a different request or op means the stream is skewed.
  return resp.id == req.id && resp.type == req.type;
}

bool Client::call(Request& req, Response& resp) {
  for (int attempt = 0;; ++attempt) {
    const bool transported = fd_ >= 0 && round_trip(req, resp);
    if (transported && resp.status != Status::kShed) return true;
    if (attempt >= opts_.max_retries) {
      // Out of attempts. A shed verdict is still a valid response; report
      // it rather than masking it as a transport error.
      return transported;
    }
    ++retries_;
    ECL_OBS_COUNTER_ADD("ecl.svc.client.retries", 1);
    backoff_sleep(attempt);
    if (!transported) {
      // The stream may be skewed (torn frame) — never reuse it. If the
      // endpoint refuses right now, the next loop iteration's fd_ < 0 check
      // fails fast into the following backoff.
      (void)reconnect();
    }
  }
}

bool Client::ping() {
  Request req;
  req.type = MsgType::kPing;
  Response resp;
  return call(req, resp) && resp.status == Status::kOk;
}

Status Client::ingest(const std::vector<Edge>& edges) {
  // Oversized batches would exceed kMaxFrameBytes; the server answers those
  // by dropping the connection, which the caller would only see as kError.
  // Fail definitively here instead, before touching the socket.
  if (edges.size() > kMaxIngestEdges) return Status::kInvalid;
  Request req;
  req.type = MsgType::kIngest;
  req.edges = edges;
  Response resp;
  if (!call(req, resp)) return Status::kError;
  return resp.status;
}

bool Client::connected(vertex_t u, vertex_t v, ReadMode mode, Status* status) {
  Request req;
  req.type = MsgType::kConnected;
  req.u = u;
  req.v = v;
  req.mode = mode;
  Response resp;
  if (!call(req, resp)) {
    if (status != nullptr) *status = Status::kError;
    return false;
  }
  if (status != nullptr) *status = resp.status;
  return resp.status == Status::kOk && resp.value != 0;
}

vertex_t Client::component_of(vertex_t v, ReadMode mode, Status* status) {
  Request req;
  req.type = MsgType::kComponentOf;
  req.v = v;
  req.mode = mode;
  Response resp;
  if (!call(req, resp)) {
    if (status != nullptr) *status = Status::kError;
    return kInvalidVertex;
  }
  if (status != nullptr) *status = resp.status;
  return resp.status == Status::kOk ? static_cast<vertex_t>(resp.value) : kInvalidVertex;
}

bool Client::component_count(std::uint64_t& count) {
  Request req;
  req.type = MsgType::kComponentCount;
  Response resp;
  if (!call(req, resp) || resp.status != Status::kOk) return false;
  count = resp.value;
  return true;
}

bool Client::stats(ServiceStats& out) {
  Request req;
  req.type = MsgType::kStats;
  Response resp;
  if (!call(req, resp) || resp.status != Status::kOk) return false;
  out = resp.stats;
  return true;
}

bool Client::health(ServiceHealth& out) {
  Request req;
  req.type = MsgType::kHealth;
  Response resp;
  if (!call(req, resp) || resp.status != Status::kOk) return false;
  out = resp.health;
  return true;
}

bool Client::fetch_ckpt(CkptImage& out, Status* status) {
  Request req;
  req.type = MsgType::kFetchCkpt;
  Response resp;
  if (!call(req, resp)) {
    if (status != nullptr) *status = Status::kError;
    return false;
  }
  if (status != nullptr) *status = resp.status;
  if (resp.status != Status::kOk) return false;
  out = std::move(resp.ckpt);
  return true;
}

bool Client::fetch_wal(std::uint64_t replica_id, std::uint64_t seq,
                       std::uint64_t offset, std::uint32_t max_bytes, WalChunk& out,
                       Status* status) {
  Request req;
  req.type = MsgType::kFetchWal;
  req.replica_id = replica_id;
  req.seq = seq;
  req.offset = offset;
  req.max_bytes = max_bytes;
  Response resp;
  if (!call(req, resp)) {
    if (status != nullptr) *status = Status::kError;
    return false;
  }
  if (status != nullptr) *status = resp.status;
  if (resp.status != Status::kOk) return false;
  out = std::move(resp.wal);
  return true;
}

bool Client::promote(Status* status) {
  Request req;
  req.type = MsgType::kPromote;
  Response resp;
  if (!call(req, resp)) {
    if (status != nullptr) *status = Status::kError;
    return false;
  }
  if (status != nullptr) *status = resp.status;
  return resp.status == Status::kOk;
}

bool Client::shutdown_server() {
  Request req;
  req.type = MsgType::kShutdown;
  Response resp;
  return round_trip(req, resp) && resp.status == Status::kOk;
}

}  // namespace ecl::svc
