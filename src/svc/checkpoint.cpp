#include "svc/checkpoint.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "fault/fault.h"
#include "obs/metrics.h"
#include "svc/wal.h"

namespace ecl::svc {

namespace {

constexpr char kCkptMagic[8] = {'E', 'C', 'L', 'C', 'K', 'P', 'T', '1'};
constexpr std::uint32_t kCkptVersion = 1;
// magic + crc + (version, n, watermark, epoch, wal_seq)
constexpr std::size_t kHeaderBytes = 8 + 4;
constexpr std::size_t kFixedPayloadBytes = 4 + 4 + 8 + 8 + 8;

void put_u32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

void put_u64(std::uint8_t* p, std::uint64_t v) {
  put_u32(p, static_cast<std::uint32_t>(v));
  put_u32(p + 4, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 | static_cast<std::uint32_t>(p[3]) << 24;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(get_u32(p)) |
         static_cast<std::uint64_t>(get_u32(p + 4)) << 32;
}

bool write_all(int fd, const void* buf, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(buf);
  while (n > 0) {
    const ssize_t put = ::write(fd, p, n);
    if (put < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += put;
    n -= static_cast<std::size_t>(put);
  }
  return true;
}

bool read_exact(int fd, void* buf, std::size_t n) {
  auto* p = static_cast<std::uint8_t*>(buf);
  std::size_t done = 0;
  while (done < n) {
    const ssize_t r = ::read(fd, p + done, n - done);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (r == 0) return false;
    done += static_cast<std::size_t>(r);
  }
  return true;
}

std::string errno_str(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

}  // namespace

void CheckpointStore::open(std::string base, std::size_t keep) {
  base_ = std::move(base);
  keep_ = std::max<std::size_t>(keep, 1);
  entries_.clear();
  for (auto& f : list_numbered_files(base_)) {
    Entry e;
    e.seq = f.seq;
    e.path = std::move(f.path);
    entries_.push_back(std::move(e));
  }
}

std::uint64_t CheckpointStore::latest_seq() const {
  return entries_.empty() ? 0 : entries_.back().seq;
}

bool CheckpointStore::read_file(const std::string& path, CheckpointData* out,
                                std::string* err) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (err != nullptr) *err = errno_str("ckpt open " + path);
    return false;
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0 ||
      static_cast<std::size_t>(st.st_size) < kHeaderBytes + kFixedPayloadBytes) {
    if (err != nullptr) *err = "ckpt " + path + ": truncated header";
    ::close(fd);
    return false;
  }
  std::vector<std::uint8_t> img(static_cast<std::size_t>(st.st_size));
  if (!read_exact(fd, img.data(), img.size())) {
    if (err != nullptr) *err = errno_str("ckpt read " + path);
    ::close(fd);
    return false;
  }
  ::close(fd);

  if (std::memcmp(img.data(), kCkptMagic, sizeof(kCkptMagic)) != 0) {
    if (err != nullptr) *err = "ckpt " + path + ": bad magic";
    return false;
  }
  const std::uint8_t* payload = img.data() + kHeaderBytes;
  const std::size_t payload_len = img.size() - kHeaderBytes;
  if (crc32(payload, payload_len) != get_u32(img.data() + 8)) {
    if (err != nullptr) *err = "ckpt " + path + ": CRC mismatch (torn or corrupt)";
    return false;
  }
  if (get_u32(payload) != kCkptVersion) {
    if (err != nullptr) *err = "ckpt " + path + ": unsupported version";
    return false;
  }
  CheckpointData data;
  data.n = get_u32(payload + 4);
  data.watermark = get_u64(payload + 8);
  data.epoch = get_u64(payload + 16);
  data.wal_seq = get_u64(payload + 24);
  if (payload_len != kFixedPayloadBytes + static_cast<std::size_t>(data.n) * 4) {
    if (err != nullptr) *err = "ckpt " + path + ": label array length mismatch";
    return false;
  }
  data.labels.resize(data.n);
  const std::uint8_t* lp = payload + kFixedPayloadBytes;
  for (std::uint32_t v = 0; v < data.n; ++v) data.labels[v] = get_u32(lp + 4ull * v);
  *out = std::move(data);
  return true;
}

CheckpointLoadResult CheckpointStore::load_latest_valid() const {
  CheckpointLoadResult out;
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    out.found_any = true;
    std::string err;
    if (read_file(it->path, &out.data, &err)) {
      out.ok = true;
      out.seq = it->seq;
      if (out.fallbacks > 0) {
        ECL_OBS_COUNTER_ADD("ecl.svc.ckpt.load_fallbacks", out.fallbacks);
      }
      return out;
    }
    out.error = std::move(err);
    ++out.fallbacks;
  }
  if (out.fallbacks > 0) {
    ECL_OBS_COUNTER_ADD("ecl.svc.ckpt.load_fallbacks", out.fallbacks);
  }
  return out;
}

CheckpointWriteResult CheckpointStore::write(const CheckpointData& data) {
  CheckpointWriteResult out;
  const std::uint64_t seq = latest_seq() + 1;
  const std::string final_path = numbered_path(base_, seq);
  const std::string tmp_path = base_ + ".tmp";

  std::vector<std::uint8_t> img(kHeaderBytes + kFixedPayloadBytes +
                                static_cast<std::size_t>(data.n) * 4);
  std::memcpy(img.data(), kCkptMagic, sizeof(kCkptMagic));
  std::uint8_t* payload = img.data() + kHeaderBytes;
  put_u32(payload, kCkptVersion);
  put_u32(payload + 4, data.n);
  put_u64(payload + 8, data.watermark);
  put_u64(payload + 16, data.epoch);
  put_u64(payload + 24, data.wal_seq);
  std::uint8_t* lp = payload + kFixedPayloadBytes;
  for (std::uint32_t v = 0; v < data.n; ++v) put_u32(lp + 4ull * v, data.labels[v]);
  put_u32(img.data() + 8, crc32(payload, img.size() - kHeaderBytes));

  const auto fail = [&](const std::string& what) {
    out.error = what;
    ECL_OBS_COUNTER_ADD("ecl.svc.ckpt.write_errors", 1);
    return out;
  };

  // O_TRUNC: a leftover .tmp from a crashed writer is garbage by contract —
  // only the rename publishes a checkpoint.
  const int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return fail(errno_str("ckpt create " + tmp_path));

  // Fault semantics mirror the WAL append: kShort leaves a truncated image
  // behind (what a mid-write crash leaves), kFail dies before bytes land.
  const auto outcome = ECL_FAULT_POINT("svc.ckpt.write");
  fault::apply_delay(outcome);
  bool write_fault = outcome.action == fault::Action::kFail ||
                     outcome.action == fault::Action::kOom ||
                     outcome.action == fault::Action::kKill;
  if (outcome.action == fault::Action::kShort) {
    const std::size_t partial = std::min<std::size_t>(outcome.arg, img.size());
    (void)write_all(fd, img.data(), partial);
    write_fault = true;
  }
  if (write_fault || !write_all(fd, img.data(), img.size())) {
    ::close(fd);
    return fail("ckpt write " + tmp_path + (write_fault ? ": injected fault"
                                                        : errno_str("")));
  }
  if (ECL_FAULT_POINT("svc.ckpt.fsync").fired() || ::fsync(fd) != 0) {
    ::close(fd);
    return fail(errno_str("ckpt fsync " + tmp_path));
  }
  ::close(fd);
  if (ECL_FAULT_POINT("svc.ckpt.rename").fired() ||
      ::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    return fail(errno_str("ckpt rename " + tmp_path + " -> " + final_path));
  }
  if (!fsync_parent_dir(final_path)) {
    return fail(errno_str("ckpt dir-sync " + final_path));
  }

  Entry e;
  e.seq = seq;
  e.path = final_path;
  e.wal_seq = data.wal_seq;
  e.wal_seq_known = true;
  entries_.push_back(std::move(e));

  // Retention: keep the newest keep_ checkpoints. Deletion failures are
  // disk-cost only; the entry stays listed and is retried next write.
  while (entries_.size() > keep_) {
    if (::unlink(entries_.front().path.c_str()) != 0 && errno != ENOENT) {
      ECL_OBS_COUNTER_ADD("ecl.svc.ckpt.retire_errors", 1);
      break;
    }
    entries_.erase(entries_.begin());
  }

  out.ok = true;
  out.seq = seq;
  out.bytes = img.size();
  ECL_OBS_COUNTER_ADD("ecl.svc.ckpt.writes", 1);
  ECL_OBS_COUNTER_ADD("ecl.svc.ckpt.bytes", img.size());
  return out;
}

std::uint64_t CheckpointStore::retention_floor_wal_seq() const {
  if (entries_.size() < keep_) return 0;
  const Entry& oldest = entries_.front();
  if (oldest.wal_seq_known) return oldest.wal_seq;
  CheckpointData data;
  std::string err;
  if (!read_file(oldest.path, &data, &err)) return 0;
  return data.wal_seq;
}

}  // namespace ecl::svc
