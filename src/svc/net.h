// POSIX socket plumbing shared by the svc server and client: full-buffer
// read/write loops (EINTR-safe), frame I/O matching protocol.h's length
// prefix, and listener/connector constructors for TCP and Unix-domain
// stream sockets. Kept separate from protocol.h so the byte-level codec
// stays free of OS dependencies.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ecl::svc::net {

/// Reads exactly n bytes. False on EOF, error, or peer shutdown.
[[nodiscard]] bool read_full(int fd, void* buf, std::size_t n);

/// Writes exactly n bytes (SIGPIPE suppressed via MSG_NOSIGNAL).
[[nodiscard]] bool write_full(int fd, const void* buf, std::size_t n);

/// Reads one frame: the u32 length prefix, then the payload into `payload`
/// (replaced). False on EOF, error, or a length above kMaxFrameBytes.
[[nodiscard]] bool read_frame(int fd, std::vector<std::uint8_t>& payload);

/// Writes pre-encoded frame bytes (length prefix already included).
[[nodiscard]] bool write_frame(int fd, const std::vector<std::uint8_t>& bytes);

/// Creates a listening TCP socket on host:port (numeric IPv4 only;
/// port 0 picks an ephemeral port, reported through *bound_port).
/// Returns the fd, or -1 with *err filled in.
[[nodiscard]] int listen_tcp(const std::string& host, int port, int backlog,
                             int* bound_port, std::string* err);

/// Creates a listening Unix-domain stream socket at `path` (unlinking any
/// stale socket file first). Returns the fd, or -1 with *err filled in.
[[nodiscard]] int listen_unix(const std::string& path, int backlog, std::string* err);

/// Connects to a TCP endpoint (numeric IPv4). Returns the fd or -1.
[[nodiscard]] int connect_tcp(const std::string& host, int port, std::string* err);

/// Connects to a Unix-domain stream socket. Returns the fd or -1.
[[nodiscard]] int connect_unix(const std::string& path, std::string* err);

}  // namespace ecl::svc::net
