// POSIX socket plumbing shared by the svc server and client: full-buffer
// read/write loops (EINTR-safe), frame I/O matching protocol.h's length
// prefix, and listener/connector constructors for TCP and Unix-domain
// stream sockets. Kept separate from protocol.h so the byte-level codec
// stays free of OS dependencies.
//
// Robustness contract (docs/ROBUSTNESS.md): every blocking call here is
// bounded. Connectors take a connect timeout and stamp SO_RCVTIMEO /
// SO_SNDTIMEO defaults onto the new socket, so even callers using the plain
// bool read/write API can never hang forever on a dead peer; the IoStatus
// API additionally distinguishes *why* an operation stopped (EOF vs timeout
// vs error), which the server's slow-client eviction and the client's
// retry policy both depend on. All paths carry ecl::fault injection points
// (svc.net.read / svc.net.write / svc.net.connect).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ecl::svc::net {

/// Why an I/O operation stopped.
enum class IoStatus {
  kOk,       // completed fully
  kEof,      // orderly EOF before any byte of the unit was read
  kIdle,     // no first byte within the idle window (frame reads only)
  kTimeout,  // started but stalled past the deadline (slow/stuck peer)
  kError,    // socket error, oversized frame, or injected fault
};

/// Default backstop timeouts stamped on every connected/accepted socket by
/// the helpers below. Callers layer tighter per-op deadlines on top; these
/// only guarantee that *no* blocking call is unbounded.
inline constexpr int kDefaultConnectTimeoutMs = 5000;
inline constexpr int kDefaultSocketTimeoutMs = 30000;

/// Applies SO_RCVTIMEO / SO_SNDTIMEO (milliseconds; 0 leaves that side
/// unbounded). Best effort: setsockopt failures are ignored.
void set_io_timeouts(int fd, int recv_timeout_ms, int send_timeout_ms);

/// Reads exactly n bytes. kTimeout when SO_RCVTIMEO expires mid-buffer;
/// kEof only when the peer closed before the first byte; a close after
/// partial data is kError (torn unit). `got`, when non-null, receives the
/// byte count actually read (for "did the frame start?" decisions).
[[nodiscard]] IoStatus read_full_io(int fd, void* buf, std::size_t n,
                                    std::size_t* got = nullptr);

/// Writes exactly n bytes (SIGPIPE suppressed via MSG_NOSIGNAL). kTimeout
/// when SO_SNDTIMEO expires with the send buffer still full.
[[nodiscard]] IoStatus write_full_io(int fd, const void* buf, std::size_t n);

/// Reads one frame (u32 length prefix + payload) under two deadlines:
/// `idle_timeout_ms` bounds the wait for the frame's first byte (kIdle when
/// it expires — the peer is merely quiet, not broken), `frame_timeout_ms`
/// bounds first byte -> complete frame (kTimeout — the peer stalled
/// mid-frame). 0 disables either bound. A length above kMaxFrameBytes is
/// kError.
[[nodiscard]] IoStatus read_frame_deadline(int fd, std::vector<std::uint8_t>& payload,
                                           int idle_timeout_ms, int frame_timeout_ms);

/// Reads exactly n bytes. False on EOF, error, or peer shutdown.
[[nodiscard]] bool read_full(int fd, void* buf, std::size_t n);

/// Writes exactly n bytes (SIGPIPE suppressed via MSG_NOSIGNAL).
[[nodiscard]] bool write_full(int fd, const void* buf, std::size_t n);

/// Reads one frame: the u32 length prefix, then the payload into `payload`
/// (replaced). False on EOF, error, or a length above kMaxFrameBytes.
[[nodiscard]] bool read_frame(int fd, std::vector<std::uint8_t>& payload);

/// Writes pre-encoded frame bytes (length prefix already included).
[[nodiscard]] bool write_frame(int fd, const std::vector<std::uint8_t>& bytes);

/// IoStatus twin of write_frame, for callers that must distinguish a stuck
/// peer (kTimeout -> evict) from a vanished one (kError).
[[nodiscard]] IoStatus write_frame_io(int fd, const std::vector<std::uint8_t>& bytes);

/// Creates a listening TCP socket on host:port (numeric IPv4 only;
/// port 0 picks an ephemeral port, reported through *bound_port).
/// Returns the fd, or -1 with *err filled in.
[[nodiscard]] int listen_tcp(const std::string& host, int port, int backlog,
                             int* bound_port, std::string* err);

/// Creates a listening Unix-domain stream socket at `path` (unlinking any
/// stale socket file first). Returns the fd, or -1 with *err filled in.
[[nodiscard]] int listen_unix(const std::string& path, int backlog, std::string* err);

/// Connects to a TCP endpoint (numeric IPv4) within `connect_timeout_ms`
/// (0 = OS default). The returned socket carries the default I/O timeouts.
/// Returns the fd or -1.
[[nodiscard]] int connect_tcp(const std::string& host, int port, std::string* err,
                              int connect_timeout_ms = kDefaultConnectTimeoutMs);

/// Connects to a Unix-domain stream socket; same timeout semantics as
/// connect_tcp. Returns the fd or -1.
[[nodiscard]] int connect_unix(const std::string& path, std::string* err,
                               int connect_timeout_ms = kDefaultConnectTimeoutMs);

}  // namespace ecl::svc::net
