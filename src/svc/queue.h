// Bounded MPSC work queue with explicit admission control.
//
// The serving layer's backpressure contract (docs/SERVICE.md) hinges on one
// property: a full queue *rejects* new work with a visible shed signal
// instead of blocking the producer or dropping silently. try_push is
// therefore the only producer entry point — there is no blocking push — and
// its result tells the front end exactly what to report to the client.
//
// close() begins graceful drain: producers are refused from that point on,
// but everything already admitted stays in the queue and pop() keeps
// handing it out until the queue is empty, so in-flight batches are never
// lost on shutdown.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

namespace ecl::svc {

/// Producer-side admission verdict.
enum class Admission {
  kAccepted,  // enqueued; the consumer will process it
  kShed,      // queue at capacity; caller should report backpressure
  kClosed,    // queue closed (draining/shut down); caller should report so
};

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  /// Non-blocking admission: refuses (rather than waits) when full.
  [[nodiscard]] Admission try_push(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return Admission::kClosed;
      if (items_.size() >= capacity_) return Admission::kShed;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return Admission::kAccepted;
  }

  /// Blocks until an item is available or the queue is closed *and* drained.
  /// Returns false only in the latter case (consumer should exit).
  [[nodiscard]] bool pop(T& out) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;  // closed and drained
    out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  /// Refuses all future producers; already-admitted items remain poppable.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace ecl::svc
