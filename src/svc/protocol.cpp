#include "svc/protocol.h"

#include <cstring>
#include <iterator>
#include <utility>

namespace ecl::svc {

namespace {

// Little-endian byte-vector primitives. memcpy keeps them alignment-safe;
// on LE hosts (everything this repo targets) the compiler folds them to
// plain loads/stores.

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) { out.push_back(v); }

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  bool u8(std::uint8_t& v) {
    if (pos_ + 1 > data_.size()) return false;
    v = data_[pos_++];
    return true;
  }

  bool u16(std::uint16_t& v) {
    if (pos_ + 2 > data_.size()) return false;
    v = static_cast<std::uint16_t>(data_[pos_] |
                                   (static_cast<std::uint16_t>(data_[pos_ + 1]) << 8));
    pos_ += 2;
    return true;
  }

  bool u32(std::uint32_t& v) {
    if (pos_ + 4 > data_.size()) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
    return true;
  }

  bool u64(std::uint64_t& v) {
    if (pos_ + 8 > data_.size()) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
    return true;
  }

  bool bytes(std::vector<std::uint8_t>& out, std::size_t n) {
    if (pos_ + n > data_.size()) return false;
    out.assign(data_.data() + pos_, data_.data() + pos_ + n);
    pos_ += n;
    return true;
  }

  [[nodiscard]] bool exhausted() const { return pos_ == data_.size(); }

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Patches the u32 length prefix reserved at `frame_start` once the payload
/// size is known.
void finish_frame(std::vector<std::uint8_t>& out, std::size_t frame_start) {
  const std::uint32_t payload_len =
      static_cast<std::uint32_t>(out.size() - frame_start - 4);
  for (int i = 0; i < 4; ++i) {
    out[frame_start + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(payload_len >> (8 * i));
  }
}

/// The tagged kStats body: every field as a (tag, u64) pair behind a count,
/// so readers index by tag instead of by offset.
void encode_stats_body(const ServiceStats& st, std::vector<std::uint8_t>& out) {
  const std::pair<StatsField, std::uint64_t> fields[] = {
      {StatsField::kEpoch, st.epoch},
      {StatsField::kWatermark, st.watermark},
      {StatsField::kAppliedEdges, st.applied_edges},
      {StatsField::kAcceptedBatches, st.accepted_batches},
      {StatsField::kAppliedBatches, st.applied_batches},
      {StatsField::kShedBatches, st.shed_batches},
      {StatsField::kQueueDepth, st.queue_depth},
      {StatsField::kNumComponents, st.num_components},
      {StatsField::kNumVertices, st.num_vertices},
      {StatsField::kCheckpoints, st.checkpoints},
      {StatsField::kLastCheckpointEpoch, st.last_checkpoint_epoch},
      {StatsField::kWalSegments, st.wal_segments},
      {StatsField::kWalBytes, st.wal_bytes},
      {StatsField::kDegraded, st.degraded ? 1u : 0u},
      {StatsField::kUptimeMs, st.uptime_ms},
      {StatsField::kReplayedEdges, st.replayed_edges},
      {StatsField::kRequestsServed, st.requests_served},
      {StatsField::kOpenConnections, st.open_connections},
      {StatsField::kEpollWakeups, st.epoll_wakeups},
      {StatsField::kWriteBufHwmBytes, st.write_buf_hwm_bytes},
      {StatsField::kEvictedIdle, st.evicted_idle},
      {StatsField::kEvictedSlow, st.evicted_slow},
      {StatsField::kEvictedBackpressure, st.evicted_backpressure},
      {StatsField::kAcceptShedFds, st.accept_shed_fds},
  };
  put_u8(out, kStatsTaggedFormat);
  put_u16(out, static_cast<std::uint16_t>(std::size(fields)));
  for (const auto& [tag, value] : fields) {
    put_u16(out, static_cast<std::uint16_t>(tag));
    put_u64(out, value);
  }
}

bool decode_stats_body_tagged(Reader& r, ServiceStats& st) {
  std::uint8_t format = 0;
  if (!r.u8(format) || format != kStatsTaggedFormat) return false;
  std::uint16_t field_count = 0;
  if (!r.u16(field_count)) return false;
  if (r.remaining() != static_cast<std::size_t>(field_count) * 10) return false;
  for (std::uint16_t i = 0; i < field_count; ++i) {
    std::uint16_t tag = 0;
    std::uint64_t value = 0;
    if (!r.u16(tag) || !r.u64(value)) return false;
    switch (static_cast<StatsField>(tag)) {
      case StatsField::kEpoch: st.epoch = value; break;
      case StatsField::kWatermark: st.watermark = value; break;
      case StatsField::kAppliedEdges: st.applied_edges = value; break;
      case StatsField::kAcceptedBatches: st.accepted_batches = value; break;
      case StatsField::kAppliedBatches: st.applied_batches = value; break;
      case StatsField::kShedBatches: st.shed_batches = value; break;
      case StatsField::kQueueDepth: st.queue_depth = value; break;
      case StatsField::kNumComponents:
        st.num_components = static_cast<vertex_t>(value);
        break;
      case StatsField::kNumVertices:
        st.num_vertices = static_cast<vertex_t>(value);
        break;
      case StatsField::kCheckpoints: st.checkpoints = value; break;
      case StatsField::kLastCheckpointEpoch: st.last_checkpoint_epoch = value; break;
      case StatsField::kWalSegments: st.wal_segments = value; break;
      case StatsField::kWalBytes: st.wal_bytes = value; break;
      case StatsField::kDegraded: st.degraded = value != 0; break;
      case StatsField::kUptimeMs: st.uptime_ms = value; break;
      case StatsField::kReplayedEdges: st.replayed_edges = value; break;
      case StatsField::kRequestsServed: st.requests_served = value; break;
      case StatsField::kOpenConnections: st.open_connections = value; break;
      case StatsField::kEpollWakeups: st.epoll_wakeups = value; break;
      case StatsField::kWriteBufHwmBytes: st.write_buf_hwm_bytes = value; break;
      case StatsField::kEvictedIdle: st.evicted_idle = value; break;
      case StatsField::kEvictedSlow: st.evicted_slow = value; break;
      case StatsField::kEvictedBackpressure: st.evicted_backpressure = value; break;
      case StatsField::kAcceptShedFds: st.accept_shed_fds = value; break;
      default:
        break;  // a newer server's field: skip, never fail
    }
  }
  return true;
}

/// The tagged kHealth tail, appended after the fixed 93-byte body. Same
/// append-only discipline as the stats body: new fields get new tags, old
/// decoders skip what they don't know, and the fixed offsets the chaos
/// harness's wire verifier depends on never move.
void encode_health_tail(const ServiceHealth& h, std::vector<std::uint8_t>& out) {
  const std::pair<HealthField, std::uint64_t> fields[] = {
      {HealthField::kRole, h.replica ? 1u : 0u},
      {HealthField::kReplicaLagSeq, h.replica_lag_seq},
      {HealthField::kReplicaLagMs, h.replica_lag_ms},
      {HealthField::kReplicasConnected, h.replicas_connected},
  };
  put_u8(out, kHealthTaggedFormat);
  put_u16(out, static_cast<std::uint16_t>(std::size(fields)));
  for (const auto& [tag, value] : fields) {
    put_u16(out, static_cast<std::uint16_t>(tag));
    put_u64(out, value);
  }
}

bool decode_health_tail(Reader& r, ServiceHealth& h) {
  std::uint8_t format = 0;
  if (!r.u8(format) || format != kHealthTaggedFormat) return false;
  std::uint16_t field_count = 0;
  if (!r.u16(field_count)) return false;
  if (r.remaining() != static_cast<std::size_t>(field_count) * 10) return false;
  for (std::uint16_t i = 0; i < field_count; ++i) {
    std::uint16_t tag = 0;
    std::uint64_t value = 0;
    if (!r.u16(tag) || !r.u64(value)) return false;
    switch (static_cast<HealthField>(tag)) {
      case HealthField::kRole: h.replica = value != 0; break;
      case HealthField::kReplicaLagSeq: h.replica_lag_seq = value; break;
      case HealthField::kReplicaLagMs: h.replica_lag_ms = value; break;
      case HealthField::kReplicasConnected: h.replicas_connected = value; break;
      default:
        break;  // a newer server's field: skip, never fail
    }
  }
  return true;
}

/// The pre-tagging fixed body: exactly 13 x u64 in declaration order.
bool decode_stats_body_legacy(Reader& r, ServiceStats& st) {
  std::uint64_t components = 0;
  std::uint64_t vertices = 0;
  if (!r.u64(st.epoch) || !r.u64(st.watermark) || !r.u64(st.applied_edges) ||
      !r.u64(st.accepted_batches) || !r.u64(st.applied_batches) ||
      !r.u64(st.shed_batches) || !r.u64(st.queue_depth) || !r.u64(components) ||
      !r.u64(vertices) || !r.u64(st.checkpoints) || !r.u64(st.last_checkpoint_epoch) ||
      !r.u64(st.wal_segments) || !r.u64(st.wal_bytes)) {
    return false;
  }
  st.num_components = static_cast<vertex_t>(components);
  st.num_vertices = static_cast<vertex_t>(vertices);
  return true;
}

}  // namespace

const char* msg_type_name(MsgType t) {
  switch (t) {
    case MsgType::kPing:
      return "ping";
    case MsgType::kIngest:
      return "ingest";
    case MsgType::kConnected:
      return "connected";
    case MsgType::kComponentOf:
      return "component_of";
    case MsgType::kComponentCount:
      return "component_count";
    case MsgType::kStats:
      return "stats";
    case MsgType::kShutdown:
      return "shutdown";
    case MsgType::kHealth:
      return "health";
    case MsgType::kFetchCkpt:
      return "fetch_ckpt";
    case MsgType::kFetchWal:
      return "fetch_wal";
    case MsgType::kPromote:
      return "promote";
  }
  return "?";
}

const char* status_name(Status s) {
  switch (s) {
    case Status::kOk:
      return "ok";
    case Status::kShed:
      return "shed";
    case Status::kClosed:
      return "closed";
    case Status::kInvalid:
      return "invalid";
    case Status::kError:
      return "error";
    case Status::kNotPrimary:
      return "not_primary";
  }
  return "?";
}

void encode_request(const Request& req, std::vector<std::uint8_t>& out) {
  const std::size_t frame_start = out.size();
  put_u32(out, 0);  // length placeholder
  put_u8(out, static_cast<std::uint8_t>(req.type));
  put_u64(out, req.id);
  switch (req.type) {
    case MsgType::kIngest:
      put_u32(out, static_cast<std::uint32_t>(req.edges.size()));
      for (const auto& [u, v] : req.edges) {
        put_u32(out, u);
        put_u32(out, v);
      }
      break;
    case MsgType::kConnected:
      put_u32(out, req.u);
      put_u32(out, req.v);
      put_u8(out, static_cast<std::uint8_t>(req.mode));
      break;
    case MsgType::kComponentOf:
      put_u32(out, req.v);
      put_u8(out, static_cast<std::uint8_t>(req.mode));
      break;
    case MsgType::kFetchWal:
      put_u64(out, req.replica_id);
      put_u64(out, req.seq);
      put_u64(out, req.offset);
      put_u32(out, req.max_bytes);
      break;
    case MsgType::kPing:
    case MsgType::kComponentCount:
    case MsgType::kStats:
    case MsgType::kShutdown:
    case MsgType::kHealth:
    case MsgType::kFetchCkpt:
    case MsgType::kPromote:
      break;
  }
  finish_frame(out, frame_start);
}

void encode_response(const Response& resp, std::vector<std::uint8_t>& out) {
  const std::size_t frame_start = out.size();
  put_u32(out, 0);  // length placeholder
  put_u8(out, static_cast<std::uint8_t>(resp.type));
  put_u64(out, resp.id);
  put_u8(out, static_cast<std::uint8_t>(resp.status));
  switch (resp.type) {
    case MsgType::kConnected:
    case MsgType::kComponentOf:
    case MsgType::kComponentCount:
      put_u64(out, resp.value);
      break;
    case MsgType::kStats:
      encode_stats_body(resp.stats, out);
      break;
    case MsgType::kHealth:
      put_u8(out, resp.health.degraded ? 1 : 0);
      put_u8(out, resp.health.ingest_worker_alive ? 1 : 0);
      put_u8(out, resp.health.wal_enabled ? 1 : 0);
      put_u8(out, resp.health.wal_healthy ? 1 : 0);
      put_u64(out, resp.health.queue_depth);
      put_u64(out, resp.health.staleness_edges);
      put_u64(out, resp.health.ingest_lag_batches);
      put_u64(out, resp.health.wal_records);
      put_u64(out, resp.health.replayed_edges);
      put_u64(out, resp.health.degraded_entries);
      put_u8(out, resp.health.checkpoint_enabled ? 1 : 0);
      put_u64(out, resp.health.checkpoints_written);
      put_u64(out, resp.health.last_checkpoint_epoch);
      put_u64(out, resp.health.last_checkpoint_age_ms);
      put_u64(out, resp.health.wal_segments);
      put_u64(out, resp.health.wal_bytes);
      encode_health_tail(resp.health, out);
      break;
    case MsgType::kFetchCkpt:
      put_u8(out, resp.ckpt.has ? 1 : 0);
      put_u64(out, resp.ckpt.seq);
      put_u64(out, resp.ckpt.wal_seq);
      put_u32(out, static_cast<std::uint32_t>(resp.ckpt.image.size()));
      out.insert(out.end(), resp.ckpt.image.begin(), resp.ckpt.image.end());
      break;
    case MsgType::kFetchWal:
      put_u8(out, static_cast<std::uint8_t>((resp.wal.retired ? 1u : 0u) |
                                            (resp.wal.sealed ? 2u : 0u)));
      put_u64(out, resp.wal.seq);
      put_u64(out, resp.wal.offset);
      put_u64(out, resp.wal.segment_bytes);
      put_u64(out, resp.wal.active_seq);
      put_u32(out, static_cast<std::uint32_t>(resp.wal.data.size()));
      out.insert(out.end(), resp.wal.data.begin(), resp.wal.data.end());
      break;
    case MsgType::kPing:
    case MsgType::kIngest:
    case MsgType::kShutdown:
    case MsgType::kPromote:
      break;
  }
  finish_frame(out, frame_start);
}

bool decode_request(std::span<const std::uint8_t> payload, Request& req) {
  Reader r(payload);
  std::uint8_t type = 0;
  if (!r.u8(type) || type > static_cast<std::uint8_t>(MsgType::kPromote)) return false;
  req.type = static_cast<MsgType>(type);
  if (!r.u64(req.id)) return false;
  req.u = 0;
  req.v = 0;
  req.mode = ReadMode::kSnapshot;
  req.edges.clear();
  req.replica_id = 0;
  req.seq = 0;
  req.offset = 0;
  req.max_bytes = 0;
  std::uint8_t mode = 0;
  switch (req.type) {
    case MsgType::kIngest: {
      std::uint32_t count = 0;
      if (!r.u32(count)) return false;
      // count is attacker-controlled: a tiny frame claiming 2^32-1 edges
      // must fail here, before reserve() attempts a ~32 GiB allocation.
      if (count > r.remaining() / 8) return false;
      req.edges.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        std::uint32_t u = 0;
        std::uint32_t v = 0;
        if (!r.u32(u) || !r.u32(v)) return false;
        req.edges.emplace_back(u, v);
      }
      break;
    }
    case MsgType::kConnected:
      if (!r.u32(req.u) || !r.u32(req.v) || !r.u8(mode) || mode > 1) return false;
      req.mode = static_cast<ReadMode>(mode);
      break;
    case MsgType::kComponentOf:
      if (!r.u32(req.v) || !r.u8(mode) || mode > 1) return false;
      req.mode = static_cast<ReadMode>(mode);
      break;
    case MsgType::kFetchWal:
      if (!r.u64(req.replica_id) || !r.u64(req.seq) || !r.u64(req.offset) ||
          !r.u32(req.max_bytes)) {
        return false;
      }
      break;
    case MsgType::kPing:
    case MsgType::kComponentCount:
    case MsgType::kStats:
    case MsgType::kShutdown:
    case MsgType::kHealth:
    case MsgType::kFetchCkpt:
    case MsgType::kPromote:
      break;
  }
  return r.exhausted();
}

bool decode_response(std::span<const std::uint8_t> payload, Response& resp) {
  Reader r(payload);
  std::uint8_t type = 0;
  std::uint8_t status = 0;
  if (!r.u8(type) || type > static_cast<std::uint8_t>(MsgType::kPromote)) return false;
  resp.type = static_cast<MsgType>(type);
  if (!r.u64(resp.id)) return false;
  if (!r.u8(status) || status > static_cast<std::uint8_t>(Status::kNotPrimary)) {
    return false;
  }
  resp.status = static_cast<Status>(status);
  resp.value = 0;
  resp.stats = ServiceStats{};
  resp.health = ServiceHealth{};
  resp.ckpt = CkptImage{};
  resp.wal = WalChunk{};
  switch (resp.type) {
    case MsgType::kConnected:
    case MsgType::kComponentOf:
    case MsgType::kComponentCount:
      if (!r.u64(resp.value)) return false;
      break;
    case MsgType::kStats: {
      // A legacy daemon's body is exactly 13 x u64 = 104 bytes; a tagged
      // body is 3 + 10n bytes, which is never 104, so the length picks the
      // parser unambiguously.
      if (r.remaining() == 13 * 8) {
        if (!decode_stats_body_legacy(r, resp.stats)) return false;
      } else {
        if (!decode_stats_body_tagged(r, resp.stats)) return false;
      }
      break;
    }
    case MsgType::kHealth: {
      std::uint8_t degraded = 0;
      std::uint8_t alive = 0;
      std::uint8_t wal_enabled = 0;
      std::uint8_t wal_healthy = 0;
      if (!r.u8(degraded) || degraded > 1 || !r.u8(alive) || alive > 1 ||
          !r.u8(wal_enabled) || wal_enabled > 1 || !r.u8(wal_healthy) ||
          wal_healthy > 1 || !r.u64(resp.health.queue_depth) ||
          !r.u64(resp.health.staleness_edges) ||
          !r.u64(resp.health.ingest_lag_batches) ||
          !r.u64(resp.health.wal_records) || !r.u64(resp.health.replayed_edges) ||
          !r.u64(resp.health.degraded_entries)) {
        return false;
      }
      std::uint8_t ckpt_enabled = 0;
      if (!r.u8(ckpt_enabled) || ckpt_enabled > 1 ||
          !r.u64(resp.health.checkpoints_written) ||
          !r.u64(resp.health.last_checkpoint_epoch) ||
          !r.u64(resp.health.last_checkpoint_age_ms) ||
          !r.u64(resp.health.wal_segments) || !r.u64(resp.health.wal_bytes)) {
        return false;
      }
      resp.health.degraded = degraded != 0;
      resp.health.ingest_worker_alive = alive != 0;
      resp.health.wal_enabled = wal_enabled != 0;
      resp.health.wal_healthy = wal_healthy != 0;
      resp.health.checkpoint_enabled = ckpt_enabled != 0;
      // Bytes past the fixed body are the tagged replication tail; absent
      // from pre-replication daemons (the fields keep their zero defaults).
      if (!r.exhausted() && !decode_health_tail(r, resp.health)) return false;
      break;
    }
    case MsgType::kFetchCkpt: {
      std::uint8_t has = 0;
      std::uint32_t image_len = 0;
      if (!r.u8(has) || has > 1 || !r.u64(resp.ckpt.seq) ||
          !r.u64(resp.ckpt.wal_seq) || !r.u32(image_len) ||
          !r.bytes(resp.ckpt.image, image_len)) {
        return false;
      }
      resp.ckpt.has = has != 0;
      break;
    }
    case MsgType::kFetchWal: {
      std::uint8_t flags = 0;
      std::uint32_t data_len = 0;
      if (!r.u8(flags) || flags > 3 || !r.u64(resp.wal.seq) ||
          !r.u64(resp.wal.offset) || !r.u64(resp.wal.segment_bytes) ||
          !r.u64(resp.wal.active_seq) || !r.u32(data_len) ||
          !r.bytes(resp.wal.data, data_len)) {
        return false;
      }
      resp.wal.retired = (flags & 1u) != 0;
      resp.wal.sealed = (flags & 2u) != 0;
      resp.wal.ok = true;
      break;
    }
    case MsgType::kPing:
    case MsgType::kIngest:
    case MsgType::kShutdown:
    case MsgType::kPromote:
      break;
  }
  return r.exhausted();
}

}  // namespace ecl::svc
