// Blocking client for the ecl::svc protocol, used by tools/ecl_cc_client
// and bench/svc_loadgen. One request in flight per client; not thread-safe
// (load generators open one client per worker thread, which also gives the
// kernel one socket per connection to spread accept/wakeup costs).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "graph/graph.h"
#include "svc/protocol.h"

namespace ecl::svc {

class Client {
 public:
  /// Connects over TCP (numeric IPv4 host). Null on failure, reason in *err.
  [[nodiscard]] static std::unique_ptr<Client> connect_tcp(const std::string& host,
                                                           int port,
                                                           std::string* err = nullptr);

  /// Connects to a Unix-domain socket. Null on failure, reason in *err.
  [[nodiscard]] static std::unique_ptr<Client> connect_unix(const std::string& path,
                                                            std::string* err = nullptr);

  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Round-trips an empty request. False on transport failure.
  [[nodiscard]] bool ping();

  /// Submits an edge batch; the returned status is the server's admission
  /// verdict (kOk / kShed / kClosed), or kError on transport failure.
  /// Batches larger than kMaxIngestEdges (one frame's worth) come back as
  /// kInvalid without touching the socket — split them before calling.
  [[nodiscard]] Status ingest(const std::vector<Edge>& edges);

  /// Connectivity query. Transport/protocol failures surface as kError in
  /// *status (when provided) with a false result.
  [[nodiscard]] bool connected(vertex_t u, vertex_t v,
                               ReadMode mode = ReadMode::kSnapshot,
                               Status* status = nullptr);

  /// Component label of v (canonical under kSnapshot). kInvalidVertex on
  /// invalid v or failure.
  [[nodiscard]] vertex_t component_of(vertex_t v, ReadMode mode = ReadMode::kSnapshot,
                                      Status* status = nullptr);

  /// Snapshot component count. False on failure.
  [[nodiscard]] bool component_count(std::uint64_t& count);

  /// Full service stats sample. False on failure.
  [[nodiscard]] bool stats(ServiceStats& out);

  /// Asks the daemon to shut down gracefully. True if acknowledged.
  [[nodiscard]] bool shutdown_server();

 private:
  explicit Client(int fd) : fd_(fd) {}

  /// Sends `req` (stamping a fresh id) and reads the matching response.
  [[nodiscard]] bool round_trip(Request& req, Response& resp);

  int fd_;
  std::uint64_t next_id_ = 1;
  std::vector<std::uint8_t> scratch_;
};

}  // namespace ecl::svc
