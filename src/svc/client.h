// Blocking client for the ecl::svc protocol, used by tools/ecl_cc_client
// and bench/svc_loadgen. One request in flight per client; not thread-safe
// (load generators open one client per worker thread, which also gives the
// kernel one socket per connection to spread accept/wakeup costs).
//
// Robustness (docs/ROBUSTNESS.md "Client retry policy"): every operation is
// bounded by a per-attempt deadline (SO_RCVTIMEO/SO_SNDTIMEO at
// op_timeout_ms) and, unless retries are disabled, survives transient
// failure transparently:
//
//   kShed             retried after exponential backoff with jitter — the
//                     server is telling us to come back later.
//   transport error   the connection is torn down and re-established, then
//                     the request is retried. Safe for every op in this
//                     protocol: queries are read-only and edge re-insertion
//                     into the union-find is idempotent.
//   kInvalid/kClosed  terminal; returned to the caller immediately.
//
// Backoff for attempt k sleeps min(backoff_max_ms, backoff_base_ms << k),
// scaled by a uniform jitter factor in [0.5, 1.0) drawn from a seeded
// xoshiro256** stream (deterministic under test). Retries, backoff sleep
// time, and reconnects are counted in ecl::obs.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "svc/net.h"
#include "svc/protocol.h"

namespace ecl::svc {

struct ClientOptions {
  /// Bound on establishing (or re-establishing) the connection.
  int connect_timeout_ms = net::kDefaultConnectTimeoutMs;
  /// Per-attempt socket deadline for each send/recv of an operation.
  int op_timeout_ms = 10000;
  /// Extra attempts after the first (0 disables retries entirely).
  int max_retries = 4;
  int backoff_base_ms = 10;
  int backoff_max_ms = 1000;
  /// Seed for the jitter stream; fixed default keeps tests deterministic,
  /// long-lived callers should scramble it (e.g. with their worker index).
  std::uint64_t backoff_seed = 1;
};

class Client {
 public:
  /// Connects over TCP (numeric IPv4 host). Null on failure, reason in *err.
  [[nodiscard]] static std::unique_ptr<Client> connect_tcp(const std::string& host,
                                                           int port,
                                                           std::string* err = nullptr,
                                                           ClientOptions opts = {});

  /// Connects to a Unix-domain socket. Null on failure, reason in *err.
  [[nodiscard]] static std::unique_ptr<Client> connect_unix(const std::string& path,
                                                            std::string* err = nullptr,
                                                            ClientOptions opts = {});

  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Round-trips an empty request. False on transport failure.
  [[nodiscard]] bool ping();

  /// Submits an edge batch; the returned status is the server's admission
  /// verdict (kOk / kShed / kClosed), or kError on transport failure.
  /// kShed and transport errors are retried per ClientOptions before being
  /// reported. Batches larger than kMaxIngestEdges (one frame's worth) come
  /// back as kInvalid without touching the socket — split them first.
  [[nodiscard]] Status ingest(const std::vector<Edge>& edges);

  /// Connectivity query. Transport/protocol failures surface as kError in
  /// *status (when provided) with a false result.
  [[nodiscard]] bool connected(vertex_t u, vertex_t v,
                               ReadMode mode = ReadMode::kSnapshot,
                               Status* status = nullptr);

  /// Component label of v (canonical under kSnapshot). kInvalidVertex on
  /// invalid v or failure.
  [[nodiscard]] vertex_t component_of(vertex_t v, ReadMode mode = ReadMode::kSnapshot,
                                      Status* status = nullptr);

  /// Snapshot component count. False on failure.
  [[nodiscard]] bool component_count(std::uint64_t& count);

  /// Full service stats sample. False on failure.
  [[nodiscard]] bool stats(ServiceStats& out);

  /// Liveness/durability sample (kHealth). False on failure.
  [[nodiscard]] bool health(ServiceHealth& out);

  /// Asks the daemon to shut down gracefully. True if acknowledged. Never
  /// retried: re-sending shutdown to a dying server is noise.
  [[nodiscard]] bool shutdown_server();

  // --- replication (docs/REPLICATION.md) -----------------------------------

  /// Fetches the primary's newest checkpoint image (kFetchCkpt). True on a
  /// kOk round trip — check out.has for whether a checkpoint existed.
  [[nodiscard]] bool fetch_ckpt(CkptImage& out, Status* status = nullptr);

  /// Fetches up to max_bytes of WAL segment `seq` starting at `offset`
  /// (kFetchWal). replica_id != 0 registers the caller in the primary's
  /// retention registry. Read-only and idempotent, so retries are safe.
  [[nodiscard]] bool fetch_wal(std::uint64_t replica_id, std::uint64_t seq,
                               std::uint64_t offset, std::uint32_t max_bytes,
                               WalChunk& out, Status* status = nullptr);

  /// Promotes a replica to a writable primary (kPromote). True on kOk;
  /// idempotent on the server, so transport retries are safe.
  [[nodiscard]] bool promote(Status* status = nullptr);

  /// Cumulative retry attempts made by this client (for tests/loadgen).
  [[nodiscard]] std::uint64_t retries() const { return retries_; }
  /// Cumulative successful reconnects after transport failures.
  [[nodiscard]] std::uint64_t reconnects() const { return reconnects_; }

  /// The request id stamped on the most recent attempt (each retry re-sends
  /// under a fresh id). The server echoes this id in its response and in the
  /// slow-request log, so a caller that just observed a slow op can look the
  /// server-side breakdown up by id (docs/OBSERVABILITY.md "Slow-request
  /// log"). 0 before the first request.
  [[nodiscard]] std::uint64_t last_request_id() const { return next_id_ - 1; }

 private:
  Client(int fd, ClientOptions opts, bool is_unix, std::string host_or_path, int port);

  /// Sends `req` (stamping a fresh id) and reads the matching response.
  [[nodiscard]] bool round_trip(Request& req, Response& resp);

  /// round_trip plus the retry policy described in the header comment.
  /// Returns false only when every attempt failed at the transport layer;
  /// a terminal (or retries-exhausted kShed) status returns true with the
  /// status in `resp`.
  [[nodiscard]] bool call(Request& req, Response& resp);

  /// Tears down and re-establishes the connection. False if the endpoint
  /// refused within connect_timeout_ms.
  [[nodiscard]] bool reconnect();

  void backoff_sleep(int attempt);

  int fd_;
  const ClientOptions opts_;
  const bool is_unix_;
  const std::string host_or_path_;  // reconnect target
  const int port_;
  // Ids count up from a per-client base derived from backoff_seed (see the
  // constructor), so ids from different clients of one daemon rarely collide
  // and the slow-request log stays attributable. The default seed keeps the
  // classic 1, 2, 3, ... sequence for deterministic tests.
  std::uint64_t next_id_ = 1;
  std::uint64_t retries_ = 0;
  std::uint64_t reconnects_ = 0;
  Xoshiro256 jitter_;
  std::vector<std::uint8_t> scratch_;
};

}  // namespace ecl::svc
