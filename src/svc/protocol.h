// ecl::svc wire protocol — a small length-prefixed binary framing shared by
// the daemon (tools/ecl_ccd), the client library, and the load generator.
//
// Framing (all integers little-endian):
//
//   frame    := u32 payload_len | payload          (len excludes itself)
//   request  := u8 type | u64 request_id | body
//   response := u8 type | u64 request_id | u8 status | body
//
// Request bodies:
//   kPing            (empty)
//   kIngest          u32 edge_count | edge_count x (u32 u | u32 v)
//   kConnected       u32 u | u32 v | u8 read_mode
//   kComponentOf     u32 v | u8 read_mode
//   kComponentCount  (empty)
//   kStats           (empty)
//   kShutdown        (empty)
//   kHealth          (empty)
//   kFetchCkpt       (empty)
//   kFetchWal        u64 replica_id | u64 seq | u64 offset | u32 max_bytes
//   kPromote         (empty)
//
// Response bodies:
//   kPing / kIngest / kShutdown   (empty)
//   kConnected                    u64 value (0/1)
//   kComponentOf                  u64 value (label; kInvalidVertex if bad v)
//   kComponentCount               u64 value
//   kStats                        tagged fields (since the telemetry PR):
//                                 u8 format (= 1) | u16 field_count |
//                                 field_count x (u16 tag | u64 value), tags
//                                 from StatsField below. Unknown tags are
//                                 skipped on decode, so new stats never
//                                 break old clients again. The decoder also
//                                 accepts the legacy fixed body — exactly
//                                 13 x u64 (epoch, watermark, applied_edges,
//                                 accepted_batches, applied_batches,
//                                 shed_batches, queue_depth, num_components,
//                                 num_vertices, checkpoints,
//                                 last_checkpoint_epoch, wal_segments,
//                                 wal_bytes = 104 bytes, a length no tagged
//                                 body can have: 3 + 10 x n != 104) — so new
//                                 clients interoperate with old daemons.
//   kHealth                       4 x u8: degraded, ingest_worker_alive,
//                                 wal_enabled, wal_healthy; then 6 x u64:
//                                 queue_depth, staleness_edges,
//                                 ingest_lag_batches, wal_records,
//                                 replayed_edges, degraded_entries; then
//                                 u8 checkpoint_enabled and 5 x u64:
//                                 checkpoints_written, last_checkpoint_epoch,
//                                 last_checkpoint_age_ms, wal_segments,
//                                 wal_bytes (new fields append at the end so
//                                 fixed-offset readers keep working); since
//                                 the replication PR a *tagged* tail follows
//                                 the fixed body: u8 format (= 1) |
//                                 u16 field_count | field_count x
//                                 (u16 tag | u64 value), tags from
//                                 HealthField below. Unknown tags are
//                                 skipped; a pre-replication daemon sends no
//                                 tail and the fields decode as their zero
//                                 defaults. Fixed-offset readers (the chaos
//                                 harness's wire verifier) are unaffected —
//                                 the first 93 bytes never move.
//   kFetchCkpt                    u8 has | u64 ckpt_seq | u64 wal_seq |
//                                 u32 image_len | image_len raw bytes (the
//                                 newest valid checkpoint file, verbatim)
//   kFetchWal                     u8 flags (bit0 retired, bit1 sealed) |
//                                 u64 seq | u64 offset | u64 segment_bytes |
//                                 u64 active_seq | u32 data_len | data_len
//                                 raw segment bytes starting at offset
//   kPromote                      (empty)
//
// The status byte carries the service's admission/backpressure verdict to
// the client: a full ingest queue yields kShed — a definitive, visible
// response — never a blocked connection or a silent drop.
//
// Encode/decode functions are pure byte-vector transforms with no socket
// dependencies, so the protocol is unit-testable in isolation and reusable
// over any stream transport.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/types.h"
#include "graph/graph.h"
#include "svc/service.h"

namespace ecl::svc {

enum class MsgType : std::uint8_t {
  kPing = 0,
  kIngest = 1,
  kConnected = 2,
  kComponentOf = 3,
  kComponentCount = 4,
  kStats = 5,
  kShutdown = 6,
  kHealth = 7,
  // Replication (docs/REPLICATION.md): a replica bootstraps with kFetchCkpt,
  // then streams raw segment bytes with kFetchWal; kPromote flips a replica
  // into a writable primary for failover.
  kFetchCkpt = 8,
  kFetchWal = 9,
  kPromote = 10,
};

enum class Status : std::uint8_t {
  kOk = 0,
  kShed = 1,        // ingest queue full: retry later (backpressure)
  kClosed = 2,      // service draining / shut down
  kInvalid = 3,     // malformed request or out-of-range vertex
  kError = 4,       // internal error
  kNotPrimary = 5,  // write (or replication-source op) sent to a replica
};

[[nodiscard]] const char* status_name(Status s);

/// Protocol op name ("ping", "ingest", ...), for logs and dashboards.
[[nodiscard]] const char* msg_type_name(MsgType t);

/// Field tags for the tagged kStats response body. Values are wire protocol:
/// never renumber, only append. A decoder skips tags it does not know.
enum class StatsField : std::uint16_t {
  kEpoch = 1,
  kWatermark = 2,
  kAppliedEdges = 3,
  kAcceptedBatches = 4,
  kAppliedBatches = 5,
  kShedBatches = 6,
  kQueueDepth = 7,
  kNumComponents = 8,
  kNumVertices = 9,
  kCheckpoints = 10,
  kLastCheckpointEpoch = 11,
  kWalSegments = 12,
  kWalBytes = 13,
  kDegraded = 14,
  kUptimeMs = 15,
  kReplayedEdges = 16,
  kRequestsServed = 17,
  // Connection telemetry (the executor/event-loop PR).
  kOpenConnections = 18,
  kEpollWakeups = 19,
  kWriteBufHwmBytes = 20,
  kEvictedIdle = 21,
  kEvictedSlow = 22,
  kEvictedBackpressure = 23,
  kAcceptShedFds = 24,
};

/// Marker byte opening a tagged kStats body (the legacy fixed body is
/// recognized by its exact 104-byte length instead).
inline constexpr std::uint8_t kStatsTaggedFormat = 1;

/// Field tags for the tagged tail of the kHealth response body. Same wire
/// discipline as StatsField: never renumber, only append; decoders skip
/// unknown tags.
enum class HealthField : std::uint16_t {
  kRole = 1,               // 0 = primary, 1 = replica
  kReplicaLagSeq = 2,      // segments the replica trails the primary by
  kReplicaLagMs = 3,       // ms since the replica was last fully caught up
  kReplicasConnected = 4,  // live registered replicas (primary side)
};

/// Marker byte opening the tagged kHealth tail (appended after the fixed
/// 93-byte body; absent entirely from pre-replication daemons).
inline constexpr std::uint8_t kHealthTaggedFormat = 1;

/// Server-side clamp on one kFetchWal chunk; a client asking for more gets
/// this much. Well under kMaxFrameBytes so the response header always fits.
inline constexpr std::uint32_t kMaxWalChunkBytes = 1u << 22;  // 4 MiB

/// Frames larger than this are rejected as malformed (protects the server
/// from hostile or corrupt length prefixes).
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 26;  // 64 MiB

/// Largest edge batch one kIngest frame can carry while its payload
/// (u8 type + u64 id + u32 count + 8 bytes/edge) stays under kMaxFrameBytes.
/// Client::ingest rejects bigger batches with kInvalid instead of sending a
/// frame the server would answer by dropping the connection.
inline constexpr std::size_t kMaxIngestEdges = (kMaxFrameBytes - 13) / 8;

struct Request {
  MsgType type = MsgType::kPing;
  std::uint64_t id = 0;
  vertex_t u = 0;
  vertex_t v = 0;
  ReadMode mode = ReadMode::kSnapshot;
  std::vector<Edge> edges;  // kIngest only
  // kFetchWal only: which replica is asking (retention bookkeeping) and
  // which byte range of which segment it wants.
  std::uint64_t replica_id = 0;
  std::uint64_t seq = 0;
  std::uint64_t offset = 0;
  std::uint32_t max_bytes = 0;
};

struct Response {
  MsgType type = MsgType::kPing;
  std::uint64_t id = 0;
  Status status = Status::kOk;
  std::uint64_t value = 0;  // kConnected / kComponentOf / kComponentCount
  ServiceStats stats;       // kStats only
  ServiceHealth health;     // kHealth only
  CkptImage ckpt;           // kFetchCkpt only
  WalChunk wal;             // kFetchWal only
};

/// Appends the complete frame (length prefix + payload) for `req` to `out`.
void encode_request(const Request& req, std::vector<std::uint8_t>& out);

/// Appends the complete frame for `resp` to `out`.
void encode_response(const Response& resp, std::vector<std::uint8_t>& out);

/// Parses a request payload (the bytes *after* the length prefix).
/// Returns false on malformed input; `req` is unspecified then.
[[nodiscard]] bool decode_request(std::span<const std::uint8_t> payload, Request& req);

/// Parses a response payload. Returns false on malformed input.
[[nodiscard]] bool decode_response(std::span<const std::uint8_t> payload, Response& resp);

}  // namespace ecl::svc
