// Socket front end for ConnectivityService: accepts TCP or Unix-domain
// connections, speaks the length-prefixed protocol (svc/protocol.h), and
// maps the service's admission verdicts onto response status bytes — a full
// ingest queue becomes an explicit kShed response, never a stalled socket.
//
// Threading model: one accept thread plus one thread per connection (the
// protocol is strictly request/response per connection, so per-connection
// threads need no shared write locks). Shutdown is race-free via a
// self-pipe: request_shutdown() only sets an atomic flag and writes one
// byte, so it is safe from handler threads and signal handlers alike; the
// accept loop notices, stops admitting, half-closes every live connection
// to unblock its reader, joins all handlers, and then drains the service.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <thread>

#include "svc/protocol.h"
#include "svc/service.h"

namespace ecl::obs {
class RequestLog;
}  // namespace ecl::obs

namespace ecl::svc {

struct ServerOptions {
  /// Non-empty: serve on a Unix-domain socket at this path (and ignore
  /// host/port). Empty: serve on TCP host:port.
  std::string unix_path;
  std::string host = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (see port() after start()).
  int port = 0;
  int backlog = 64;
  /// A client that starts a frame must deliver the rest within this bound,
  /// or it is evicted (counted in ecl.svc.server.evicted_slow) — one stuck
  /// or malicious peer must never pin a handler thread forever. 0 disables.
  int frame_timeout_ms = 10000;
  /// Evict connections with no traffic at all for this long. 0 (default)
  /// lets idle-but-healthy clients stay connected indefinitely.
  int idle_timeout_ms = 0;
  /// SO_SNDTIMEO for responses: a peer that stops draining its socket is
  /// evicted once the send buffer stays full this long. 0 = OS default.
  int send_timeout_ms = 10000;
  /// Slow-request sink (owned by the caller, must outlive the server). Every
  /// served request is offered with its per-phase latency breakdown; the log
  /// applies its own threshold. Null disables.
  obs::RequestLog* slow_log = nullptr;
};

class Server {
 public:
  /// The service must outlive the server. The server does not stop() the
  /// service; the owner decides when to drain it (tools/ecl_ccd does so
  /// after wait() returns).
  Server(ConnectivityService& service, ServerOptions opts);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and spawns the accept thread. False (with the reason
  /// in *err) if the endpoint could not be created.
  [[nodiscard]] bool start(std::string* err = nullptr);

  /// Bound TCP port (meaningful after start() on a TCP endpoint).
  [[nodiscard]] int port() const { return bound_port_; }

  /// Begins shutdown. Async-signal-safe: only an atomic store and one
  /// write(2) on the self-pipe.
  void request_shutdown();

  /// Blocks until the accept loop and every connection handler have exited.
  void wait();

  /// request_shutdown() + wait() + join. Idempotent.
  void stop();

  /// Number of requests served so far (all connections).
  [[nodiscard]] std::uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

  /// Connections currently tracked (handlers not yet reaped). Finished
  /// handlers are joined and dropped by the accept loop, so a long-running
  /// daemon serving short-lived connections does not accumulate threads.
  [[nodiscard]] std::size_t active_connections() const;

 private:
  struct Connection {
    int fd = -1;        // -1 once the handler has finished with it
    std::thread thread;
    std::atomic<bool> done{false};  // handler exited; safe to join + erase
  };

  void accept_loop();
  void handle_connection(Connection* conn);
  /// Joins and discards every connection whose handler has finished.
  void reap_finished();
  Response dispatch(const Request& req);
  /// Post-write bookkeeping for one served request: the per-request trace
  /// event (when the tracer is on) and the slow-request log offer.
  void finish_request(const Request& req, const Response& resp, double start_us,
                      std::uint64_t total_us, std::uint64_t decode_us,
                      std::uint64_t execute_us, std::uint64_t encode_us,
                      std::uint64_t write_us);

  ConnectivityService& service_;
  const ServerOptions opts_;

  int listen_fd_ = -1;
  int bound_port_ = 0;
  int wake_pipe_[2] = {-1, -1};
  std::thread accept_thread_;
  std::atomic<bool> shutdown_requested_{false};
  std::atomic<bool> started_{false};

  mutable std::mutex conns_mu_;
  std::list<Connection> conns_;

  std::mutex done_mu_;
  std::condition_variable done_cv_;
  bool done_ = false;

  std::atomic<std::uint64_t> requests_served_{0};
};

}  // namespace ecl::svc
