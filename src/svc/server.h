// Socket front end for ConnectivityService: accepts TCP or Unix-domain
// connections, speaks the length-prefixed protocol (svc/protocol.h), and
// maps the service's admission verdicts onto response status bytes — a full
// ingest queue becomes an explicit kShed response, never a stalled socket.
//
// Threading model (docs/EXECUTOR.md): a small pool of ecl::exec event-loop
// threads multiplexes every connection via level-triggered epoll, so the
// connection count is bounded by file descriptors, not threads. Requests
// are decoded and dispatched inline on the I/O thread (every service call
// is non-blocking: bounded-queue admission or lock-free snapshot reads),
// and a connection may pipeline many requests on the wire — responses come
// back in request order. Slow or hostile peers are evicted by the loop's
// timer wheel (idle / mid-frame deadlines) and by the per-connection write
// buffer's backpressure ladder: above write_buffer_pause the server stops
// reading from the peer; a peer that also stops draining its responses is
// evicted after send_timeout_ms (write stall) or when the buffer would
// exceed write_buffer_limit.
//
// Shutdown is race-free: request_shutdown() only sets an atomic flag and
// writes one eventfd byte per loop, so it is safe from I/O threads and
// signal handlers alike; each loop notices, closes its connections, and
// exits. accept() is hardened against fd exhaustion: EMFILE/ENFILE sheds
// the pending connection (counted in ecl.svc.accept.shed_fds) and pauses
// the listener briefly instead of spinning hot.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>

#include "exec/event_loop.h"
#include "svc/protocol.h"
#include "svc/service.h"

namespace ecl::obs {
class RequestLog;
}  // namespace ecl::obs

namespace ecl::svc {

struct ServerOptions {
  /// Non-empty: serve on a Unix-domain socket at this path (and ignore
  /// host/port). Empty: serve on TCP host:port.
  std::string unix_path;
  std::string host = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (see port() after start()).
  int port = 0;
  int backlog = 64;
  /// A client that starts a frame must deliver the rest within this bound,
  /// or it is evicted (counted in ecl.svc.server.evicted_slow) — one stuck
  /// or malicious peer must never pin an I/O thread's attention forever.
  /// 0 disables.
  int frame_timeout_ms = 10000;
  /// Evict connections with no traffic at all for this long. 0 (default)
  /// lets idle-but-healthy clients stay connected indefinitely.
  int idle_timeout_ms = 0;
  /// Write-stall eviction bound: a peer with buffered responses whose
  /// socket accepts no bytes for this long is evicted (counted in
  /// ecl.svc.server.evicted_backpressure). 0 disables.
  int send_timeout_ms = 10000;
  /// Event-loop (I/O) threads multiplexing the connections.
  int io_threads = 2;
  /// Stop reading more requests from a connection while more than this
  /// many unsent response bytes are buffered for it (resume at half).
  std::size_t write_buffer_pause = 1u << 20;
  /// Evict a connection whose buffered responses would exceed this.
  std::size_t write_buffer_limit = 64u << 20;
  /// Listener pause after shedding on EMFILE/ENFILE before retrying.
  int accept_backoff_ms = 100;
  /// Test hook: shrink SO_SNDBUF on accepted sockets (0 = OS default) so
  /// write-buffer backpressure triggers with small payloads.
  int sndbuf_bytes = 0;
  /// Slow-request sink (owned by the caller, must outlive the server). Every
  /// served request is offered with its per-phase latency breakdown; the log
  /// applies its own threshold. Null disables.
  obs::RequestLog* slow_log = nullptr;
  /// kPromote handler. The daemon sets this to a hook that stops its
  /// Replicator *before* calling ConnectivityService::promote() (the
  /// service assumes no more bytes land in the WAL mirror once promoted).
  /// Unset, kPromote calls service.promote() directly — fine for in-process
  /// tests that own no Replicator. Runs inline on an I/O thread; promotion
  /// is rare and bounded (one tail truncate + WAL open), so briefly
  /// occupying one loop is acceptable.
  std::function<bool()> promote;
};

/// Connection-level telemetry sample (also appended to kStats as tagged
/// fields; see protocol.h StatsField tags >= 18).
struct ServerConnStats {
  std::uint64_t open_connections = 0;
  std::uint64_t epoll_wakeups = 0;
  std::uint64_t write_buf_hwm_bytes = 0;
  std::uint64_t evicted_idle = 0;
  std::uint64_t evicted_slow = 0;          // mid-frame deadline
  std::uint64_t evicted_backpressure = 0;  // write stall + overflow
  std::uint64_t accept_shed_fds = 0;
};

class Server {
 public:
  /// The service must outlive the server. The server does not stop() the
  /// service; the owner decides when to drain it (tools/ecl_ccd does so
  /// after wait() returns).
  Server(ConnectivityService& service, ServerOptions opts);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and spawns the I/O loops. False (with the reason in
  /// *err) if the endpoint could not be created.
  [[nodiscard]] bool start(std::string* err = nullptr);

  /// Bound TCP port (meaningful after start() on a TCP endpoint).
  [[nodiscard]] int port() const { return bound_port_; }

  /// Begins shutdown. Async-signal-safe: only an atomic store and one
  /// eventfd write(2) per I/O loop.
  void request_shutdown();

  /// Blocks until every I/O loop has exited (all connections closed).
  void wait();

  /// request_shutdown() + wait() + join. Idempotent.
  void stop();

  /// Number of requests served so far (all connections).
  [[nodiscard]] std::uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

  /// Connections currently owned by the I/O loops.
  [[nodiscard]] std::size_t active_connections() const;

  /// Point-in-time connection telemetry (the kStats tagged fields).
  [[nodiscard]] ServerConnStats conn_stats() const;

 private:
  void on_accept_ready();
  void rearm_accept();
  void adopt_connection(exec::EventLoop& loop, int fd);
  void on_frame(exec::Conn& conn, std::span<const std::uint8_t> payload);
  void on_close(exec::Conn& conn, exec::CloseReason reason);
  Response dispatch(const Request& req);
  /// Post-write bookkeeping for one served request: the per-request trace
  /// event (when the tracer is on) and the slow-request log offer.
  void finish_request(const Request& req, const Response& resp, double start_us,
                      std::uint64_t total_us, std::uint64_t decode_us,
                      std::uint64_t execute_us, std::uint64_t encode_us,
                      std::uint64_t write_us);

  ConnectivityService& service_;
  const ServerOptions opts_;

  int listen_fd_ = -1;
  int bound_port_ = 0;
  int spare_fd_ = -1;  // sacrificial fd slot for shedding under EMFILE
  std::unique_ptr<exec::EventLoopPool> pool_;
  std::atomic<bool> shutdown_requested_{false};
  std::atomic<bool> started_{false};
  bool stopped_ = false;

  std::atomic<std::uint64_t> requests_served_{0};
  std::atomic<std::uint64_t> accept_shed_{0};
};

}  // namespace ecl::svc
