#include "svc/replica.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <utility>

#include "obs/metrics.h"
#include "svc/checkpoint.h"
#include "svc/wal.h"

namespace ecl::svc {

namespace {

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 | static_cast<std::uint32_t>(p[3]) << 24;
}

bool write_all_fd(int fd, const void* buf, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(buf);
  while (n > 0) {
    const ssize_t put = ::write(fd, p, n);
    if (put < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += put;
    n -= static_cast<std::size_t>(put);
  }
  return true;
}

std::uint64_t mono_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::unique_ptr<Client> connect_primary(const ReplicatorOptions& opts,
                                        std::string* err) {
  return opts.unix_path.empty()
             ? Client::connect_tcp(opts.host, opts.port, err, opts.client)
             : Client::connect_unix(opts.unix_path, err, opts.client);
}

/// Installs a fetched checkpoint image as `<base>.NNNNNN` via the same
/// crash-atomic protocol CheckpointStore::write uses: tmp file, fsync,
/// rename into place, directory fsync. A crash mid-install leaves either no
/// checkpoint (bootstrap reruns) or a complete one.
bool install_ckpt_image(const std::string& base, const CkptImage& img,
                        std::string* err) {
  const std::string tmp = base + ".rtmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    if (err != nullptr) *err = "replica ckpt tmp open " + tmp + ": " + std::strerror(errno);
    return false;
  }
  if (!write_all_fd(fd, img.image.data(), img.image.size()) || ::fsync(fd) != 0) {
    if (err != nullptr) *err = "replica ckpt tmp write " + tmp + ": " + std::strerror(errno);
    ::close(fd);
    (void)::unlink(tmp.c_str());
    return false;
  }
  ::close(fd);
  const std::string target = numbered_path(base, img.seq);
  if (::rename(tmp.c_str(), target.c_str()) != 0) {
    if (err != nullptr) *err = "replica ckpt rename " + target + ": " + std::strerror(errno);
    (void)::unlink(tmp.c_str());
    return false;
  }
  if (!fsync_parent_dir(target)) {
    if (err != nullptr) *err = "replica ckpt dir-sync " + target + ": " + std::strerror(errno);
    return false;
  }
  return true;
}

}  // namespace

bool Replicator::bootstrap(const ReplicatorOptions& opts, std::string* err) {
  // Resume from local state when any exists: a valid checkpoint, or a WAL
  // mirror (a replica that bootstrapped from a checkpoint-less primary has
  // only the latter). The service ctor recovers from both natively.
  {
    CheckpointStore store;
    store.open(opts.checkpoint_path);
    if (store.load_latest_valid().ok) return true;
  }
  if (!list_numbered_files(opts.wal_path).empty()) return true;

  auto client = connect_primary(opts, err);
  if (client == nullptr) return false;
  CkptImage img;
  Status st = Status::kOk;
  if (!client->fetch_ckpt(img, &st)) {
    if (err != nullptr) {
      *err = std::string("replica bootstrap: kFetchCkpt failed (") +
             status_name(st) + ")";
    }
    return false;
  }
  if (!img.has) return true;  // stream from segment 1; nothing was retired
  if (!install_ckpt_image(opts.checkpoint_path, img, err)) return false;
  // Validate what landed before declaring the bootstrap good — a truncated
  // or corrupt image must fail here, not as a mysterious ctor throw.
  CheckpointData data;
  std::string verr;
  if (!CheckpointStore::read_file(numbered_path(opts.checkpoint_path, img.seq), &data,
                                  &verr)) {
    if (err != nullptr) *err = "replica bootstrap: fetched checkpoint invalid: " + verr;
    return false;
  }
  ECL_OBS_COUNTER_ADD("ecl.svc.replica.bootstraps", 1);
  return true;
}

Replicator::Replicator(ConnectivityService& service, ReplicatorOptions opts)
    : service_(service), opts_(std::move(opts)) {
  if (opts_.replica_id == 0) {
    // Stable enough for a retention-registry key: distinct per process,
    // and across quick restarts of the same pid slot.
    opts_.replica_id =
        (static_cast<std::uint64_t>(::getpid()) << 32) ^ mono_ms() ^ 1u;
  }
}

Replicator::~Replicator() { stop(); }

bool Replicator::start(std::string* err) {
  std::lock_guard<std::mutex> lock(stop_mu_);
  if (started_) return true;
  {
    std::lock_guard<std::mutex> tick_lock(tick_mu_);
    // Resume where the mirror ends. The service ctor already replayed (and
    // torn-tail-truncated) every mirrored segment, so the highest file's
    // size *is* the parse position — everything before it is applied.
    const auto segments = list_numbered_files(opts_.wal_path);
    if (!segments.empty()) {
      cur_seq_ = segments.back().seq;
      file_bytes_ = segments.back().bytes;
    } else {
      cur_seq_ = service_.checkpoint_covered_wal_seq() + 1;
      file_bytes_ = 0;
    }
    magic_checked_ = file_bytes_ >= kWalMagicBytes;
    parse_buf_.clear();
    caught_up_at_ms_ = mono_ms();
  }
  publish_wal_stats();
  ECL_OBS_GAUGE_SET("ecl.svc.role", 1.0);
  task_id_ = exec_.submit_periodic(std::max(1, opts_.fetch_interval_ms),
                                   [this] { fetch_tick(); });
  if (task_id_ == 0) {
    if (err != nullptr) *err = "replicator: executor refused the fetch task";
    return false;
  }
  // First periodic firing is one period out; fetch immediately so a replica
  // starts converging (and registering for retention) without that delay.
  (void)exec_.submit([this] { fetch_tick(); });
  started_ = true;
  return true;
}

void Replicator::stop() {
  std::lock_guard<std::mutex> lock(stop_mu_);
  if (!started_) return;
  stopping_.store(true, std::memory_order_release);
  (void)exec_.cancel(task_id_);
  exec_.drain();  // joins the worker: no fetch_tick() can be running now
  std::lock_guard<std::mutex> tick_lock(tick_mu_);
  close_segment(/*fsync_it=*/true);
  started_ = false;
}

void Replicator::fetch_tick() {
  if (stopping_.load(std::memory_order_acquire)) return;
  std::unique_lock<std::mutex> lock(tick_mu_, std::try_to_lock);
  if (!lock.owns_lock()) return;  // a slow previous firing still runs
  fetch_rounds_.fetch_add(1, std::memory_order_relaxed);
  // Drain until caught up (or stalled), bounded so one tick can't spin
  // forever against a primary ingesting faster than we parse.
  for (int i = 0; i < 256 && !stopping_.load(std::memory_order_acquire); ++i) {
    if (!fetch_once()) break;
  }
}

bool Replicator::ensure_client() {
  if (client_ != nullptr) return true;
  std::string err;
  client_ = connect_primary(opts_, &err);
  if (client_ == nullptr) {
    ECL_OBS_COUNTER_ADD("ecl.svc.replica.connect_errors", 1);
    return false;
  }
  return true;
}

bool Replicator::fetch_once() {
  if (!ensure_client()) {
    fetch_errors_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  WalChunk chunk;
  Status st = Status::kOk;
  if (!client_->fetch_wal(opts_.replica_id, cur_seq_, file_bytes_,
                          opts_.fetch_max_bytes, chunk, &st)) {
    fetch_errors_.fetch_add(1, std::memory_order_relaxed);
    ECL_OBS_COUNTER_ADD("ecl.svc.replica.fetch_errors", 1);
    if (st == Status::kError) client_.reset();  // transport: reconnect lazily
    return false;
  }
  if (chunk.retired) {
    // We fell behind the primary's retention floor (e.g. this replica was
    // dead past replica_hold_ms). Streaming can't resume from here.
    return rebootstrap() && false;
  }

  if (!chunk.data.empty()) {
    if (seg_fd_ < 0) {
      const std::string path = numbered_path(opts_.wal_path, cur_seq_);
      seg_fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
      if (seg_fd_ < 0) {
        fetch_errors_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
    }
    // Mirror first, then parse: a record is applied only once its bytes are
    // in the local segment file, so a replica crash replays everything it
    // ever applied (same WAL-before-state discipline as the primary).
    if (!write_all_fd(seg_fd_, chunk.data.data(), chunk.data.size())) {
      fetch_errors_.fetch_add(1, std::memory_order_relaxed);
      close_segment(/*fsync_it=*/false);
      return false;
    }
    file_bytes_ += chunk.data.size();
    parse_buf_.insert(parse_buf_.end(), chunk.data.begin(), chunk.data.end());
    if (!drain_parse_buf()) {
      // Framing/CRC mismatch: the mirror diverged from the primary (disk
      // fault, or a primary that was itself replaced). Start over.
      ECL_OBS_COUNTER_ADD("ecl.svc.replica.parse_errors", 1);
      return rebootstrap() && false;
    }
    publish_wal_stats();
  }

  const bool segment_done =
      chunk.sealed && file_bytes_ >= chunk.segment_bytes && magic_checked_;
  if (segment_done) {
    if (!parse_buf_.empty()) {
      // A sealed segment always ends on a record boundary on the primary;
      // leftover bytes mean our mirror of it diverged.
      ECL_OBS_COUNTER_ADD("ecl.svc.replica.parse_errors", 1);
      return rebootstrap() && false;
    }
    close_segment(/*fsync_it=*/true);
    ++cur_seq_;
    file_bytes_ = 0;
    magic_checked_ = false;
    publish_lag(chunk.active_seq, /*caught_up=*/false);
    return true;  // keep draining into the next segment
  }

  const bool caught_up = cur_seq_ >= chunk.active_seq &&
                         file_bytes_ >= chunk.segment_bytes;
  publish_lag(chunk.active_seq, caught_up);
  return !chunk.data.empty() && !caught_up;
}

bool Replicator::drain_parse_buf() {
  std::size_t pos = 0;
  const auto avail = [&] { return parse_buf_.size() - pos; };
  if (!magic_checked_) {
    if (avail() < kWalMagicBytes) {
      parse_buf_.erase(parse_buf_.begin(),
                       parse_buf_.begin() + static_cast<std::ptrdiff_t>(pos));
      return true;
    }
    if (std::memcmp(parse_buf_.data() + pos, wal_magic(), kWalMagicBytes) != 0) {
      return false;
    }
    pos += kWalMagicBytes;
    magic_checked_ = true;
  }
  while (avail() >= kWalRecordHeaderBytes) {
    const std::uint32_t len = get_u32(parse_buf_.data() + pos);
    const std::uint32_t want_crc = get_u32(parse_buf_.data() + pos + 4);
    if (len == 0 || len % 8 != 0 || len > kMaxFrameBytes) return false;
    if (avail() < kWalRecordHeaderBytes + len) break;  // partial record: wait
    const std::uint8_t* payload = parse_buf_.data() + pos + kWalRecordHeaderBytes;
    if (crc32(payload, len) != want_crc) return false;
    std::vector<Edge> batch;
    batch.reserve(len / 8);
    for (std::uint32_t i = 0; i < len; i += 8) {
      batch.emplace_back(get_u32(payload + i), get_u32(payload + i + 4));
    }
    service_.apply_replicated(std::move(batch));
    applied_records_.fetch_add(1, std::memory_order_relaxed);
    pos += kWalRecordHeaderBytes + len;
  }
  parse_buf_.erase(parse_buf_.begin(),
                   parse_buf_.begin() + static_cast<std::ptrdiff_t>(pos));
  return true;
}

bool Replicator::rebootstrap() {
  rebootstraps_.fetch_add(1, std::memory_order_relaxed);
  ECL_OBS_COUNTER_ADD("ecl.svc.replica.rebootstraps", 1);
  if (!ensure_client()) return false;
  CkptImage img;
  Status st = Status::kOk;
  if (!client_->fetch_ckpt(img, &st) || !img.has) {
    // A primary that retired our segment *must* have a checkpoint covering
    // it; failing to serve one is transient (or a config error) — retry on
    // the next tick.
    fetch_errors_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  std::string err;
  if (!install_ckpt_image(opts_.checkpoint_path, img, &err)) {
    std::fprintf(stderr, "[ecl::svc::replica] rebootstrap: %s\n", err.c_str());
    return false;
  }
  CheckpointData data;
  if (!CheckpointStore::read_file(numbered_path(opts_.checkpoint_path, img.seq), &data,
                                  &err)) {
    std::fprintf(stderr, "[ecl::svc::replica] rebootstrap: bad image: %s\n",
                 err.c_str());
    return false;
  }
  if (!service_.rebase_to_checkpoint(data)) {
    std::fprintf(stderr, "[ecl::svc::replica] rebootstrap: rebase refused\n");
    return false;
  }
  // The old mirror is strictly behind the new base; wipe it so a restart
  // recovers from the fresh checkpoint plus whatever streams after it.
  close_segment(/*fsync_it=*/false);
  for (const auto& seg : list_numbered_files(opts_.wal_path)) {
    (void)::unlink(seg.path.c_str());
  }
  (void)fsync_parent_dir(opts_.wal_path);
  cur_seq_ = data.wal_seq + 1;
  file_bytes_ = 0;
  parse_buf_.clear();
  magic_checked_ = false;
  publish_wal_stats();
  std::fprintf(stderr,
               "[ecl::svc::replica] re-bootstrapped from checkpoint %llu "
               "(wal_seq %llu)\n",
               static_cast<unsigned long long>(img.seq),
               static_cast<unsigned long long>(data.wal_seq));
  return true;
}

void Replicator::close_segment(bool fsync_it) {
  if (seg_fd_ < 0) return;
  if (fsync_it) (void)::fsync(seg_fd_);
  ::close(seg_fd_);
  seg_fd_ = -1;
}

void Replicator::publish_wal_stats() {
  std::uint64_t segs = 0;
  std::uint64_t bytes = 0;
  for (const auto& f : list_numbered_files(opts_.wal_path)) {
    ++segs;
    bytes += f.bytes;
  }
  service_.set_replica_wal_stats(segs, bytes);
}

void Replicator::publish_lag(std::uint64_t active_seq, bool caught_up) {
  if (caught_up) {
    caught_up_at_ms_ = mono_ms();
    service_.set_replication_lag(0, 0);
    return;
  }
  const std::uint64_t lag_seq = active_seq > cur_seq_ ? active_seq - cur_seq_ : 0;
  service_.set_replication_lag(lag_seq, mono_ms() - caught_up_at_ms_);
}

}  // namespace ecl::svc
