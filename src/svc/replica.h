// ecl::svc::Replicator — the replica side of WAL-shipping replication
// (docs/REPLICATION.md).
//
// Topology: one primary, N read replicas. Each replica runs a full
// ConnectivityService in replica mode (submit() sheds, checkpoints off)
// plus one Replicator, which drives the whole lifecycle:
//
//   bootstrap   Before the service is constructed: if the local checkpoint
//               or WAL mirror already holds state, resume from it; else
//               fetch the primary's newest checkpoint image (kFetchCkpt)
//               and install it crash-atomically into the local checkpoint
//               directory. The service ctor then recovers from it exactly
//               like a primary restarting.
//
//   stream      A periodic executor task fetches bounded chunks of the
//               primary's WAL segments (kFetchWal), mirrors the raw bytes
//               into identically-numbered local segment files (so a
//               replica restart — or promotion — replays them natively),
//               parses complete records out of the mirrored stream, and
//               applies each through ConnectivityService::apply_replicated.
//               Positions are (segment seq, byte offset); a sealed segment
//               consumed to its end advances to seq + 1.
//
//   rebootstrap If the primary answers `retired` (this replica fell behind
//               the retention floor — e.g. it was dead past the primary's
//               replica_hold_ms), the Replicator fetches a fresh
//               checkpoint, rebases the live service onto it
//               (rebase_to_checkpoint), wipes the stale mirror, and resumes
//               streaming past the new checkpoint's covered segment.
//
// Lag is observable, not bounded by backpressure: after every fetch round
// the Replicator pushes (lag_seq, lag_ms) into the service, which surfaces
// them through kHealth's tagged tail and the Prometheus exporter. Failover
// loses at most the un-shipped tail — the chaos harness freezes its acked
// set and waits for replica wal_bytes to cover it before killing the
// primary, proving zero loss for everything the barrier covered.
//
// Threading: all streaming state is owned by the fetch task, which runs on
// the Replicator's own single-worker executor under a try_lock guard (the
// executor's fixed-rate periodic can overlap a slow run; overlapping runs
// skip). stop() cancels the task and drains the executor, after which no
// more bytes land in the mirror — the precondition for promote().
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "exec/executor.h"
#include "svc/client.h"
#include "svc/service.h"

namespace ecl::svc {

struct ReplicatorOptions {
  /// Primary endpoint: non-empty unix_path wins, else TCP host:port.
  std::string unix_path;
  std::string host = "127.0.0.1";
  int port = 0;
  /// Local WAL mirror base and checkpoint base. Both required — they are
  /// the replica's durable identity across restarts and after promotion.
  std::string wal_path;
  std::string checkpoint_path;
  /// Fetch cadence. Lag in steady state is bounded by roughly one interval
  /// plus one chunk's transfer time.
  int fetch_interval_ms = 150;
  /// Bytes requested per kFetchWal (server clamps to kMaxWalChunkBytes).
  std::uint32_t fetch_max_bytes = 1u << 20;
  /// Identity in the primary's retention registry. 0 derives one from the
  /// pid so two replicas on one host don't alias.
  std::uint64_t replica_id = 0;
  /// Transport policy for the fetch client. Retries stay modest: the
  /// periodic task itself is the outer retry loop.
  ClientOptions client;
};

class Replicator {
 public:
  /// One-time, *pre-service* bootstrap: ensures the local checkpoint/WAL
  /// state is good enough to construct the replica's ConnectivityService.
  /// Resumes from existing local state when present; otherwise fetches the
  /// primary's newest checkpoint image and installs it crash-atomically
  /// (tmp -> fsync -> rename -> dir-fsync). A primary with no checkpoint is
  /// fine — the replica streams the WAL from segment 1. False only when
  /// the primary is unreachable (or serves an unusable image) *and* there
  /// is no local state to fall back on.
  [[nodiscard]] static bool bootstrap(const ReplicatorOptions& opts, std::string* err);

  /// The service must be constructed in replica mode over the same
  /// wal_path/checkpoint_path that bootstrap() prepared, and must outlive
  /// this object.
  Replicator(ConnectivityService& service, ReplicatorOptions opts);
  ~Replicator();

  Replicator(const Replicator&) = delete;
  Replicator& operator=(const Replicator&) = delete;

  /// Resumes the stream position from local disk and starts the periodic
  /// fetch task. False if the executor refused the task.
  [[nodiscard]] bool start(std::string* err = nullptr);

  /// Cancels the fetch task and drains the executor. After stop() returns
  /// no more bytes land in the WAL mirror — call this before promoting the
  /// service. Idempotent and *terminal*: the drained executor refuses new
  /// tasks, so resuming the stream means constructing a fresh Replicator
  /// (which resumes from the on-disk mirror, exactly like a process
  /// restart).
  void stop();

  /// Counters for tests and the daemon's exit log.
  [[nodiscard]] std::uint64_t fetch_rounds() const {
    return fetch_rounds_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t fetch_errors() const {
    return fetch_errors_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t rebootstraps() const {
    return rebootstraps_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t applied_records() const {
    return applied_records_.load(std::memory_order_relaxed);
  }

 private:
  /// One periodic firing: loops fetch_once() until caught up (or no
  /// progress), then publishes lag. Guarded by try_lock against overlap.
  void fetch_tick();
  /// One kFetchWal round trip: mirror bytes, parse records, apply edges,
  /// advance the (seq, offset) position. Returns false when the tick
  /// should stop looping (caught up, transport error, or rebootstrap).
  [[nodiscard]] bool fetch_once();
  /// Ensures the fetch client exists (reconnecting lazily after failures).
  [[nodiscard]] bool ensure_client();
  /// Parses complete records out of parse_buf_ and applies them. False on
  /// a framing/CRC mismatch (the mirror is diverged: rebootstrap).
  [[nodiscard]] bool drain_parse_buf();
  /// Fell behind retention: fetch a fresh checkpoint, rebase the service,
  /// wipe the mirror, reset the position past the checkpoint.
  [[nodiscard]] bool rebootstrap();
  /// Closes and fsyncs the current mirror segment fd, if open.
  void close_segment(bool fsync_it);
  /// Recomputes local mirror geometry and pushes it into the service.
  void publish_wal_stats();
  /// Publishes (lag_seq, lag_ms) into the service.
  void publish_lag(std::uint64_t active_seq, bool caught_up);

  ConnectivityService& service_;
  ReplicatorOptions opts_;  // replica_id may be derived in the constructor

  std::mutex tick_mu_;  // overlap guard; all state below is tick-owned
  std::unique_ptr<Client> client_;
  std::uint64_t cur_seq_ = 1;     // segment currently being mirrored
  std::uint64_t file_bytes_ = 0;  // bytes of it already on local disk
  int seg_fd_ = -1;               // local mirror fd (append-only)
  /// Unparsed tail of the mirrored stream (bytes past the last complete
  /// record — at most one partial record plus maybe the 8-byte magic).
  std::vector<std::uint8_t> parse_buf_;
  bool magic_checked_ = false;  // consumed cur_seq_'s 8-byte header yet?
  std::uint64_t caught_up_at_ms_ = 0;  // mono_ms() of last full catch-up

  std::atomic<std::uint64_t> fetch_rounds_{0};
  std::atomic<std::uint64_t> fetch_errors_{0};
  std::atomic<std::uint64_t> rebootstraps_{0};
  std::atomic<std::uint64_t> applied_records_{0};

  std::uint64_t task_id_ = 0;
  std::atomic<bool> stopping_{false};
  bool started_ = false;
  std::mutex stop_mu_;

  exec::Executor exec_{exec::ExecutorOptions{.num_workers = 1}};
};

}  // namespace ecl::svc
