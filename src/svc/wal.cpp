#include "svc/wal.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "fault/fault.h"
#include "obs/metrics.h"

namespace ecl::svc {

namespace {

constexpr char kMagic[8] = {'E', 'C', 'L', 'W', 'A', 'L', '0', '1'};
constexpr std::size_t kRecordHeaderBytes = 8;  // u32 len + u32 crc
constexpr std::uint32_t kMaxRecordBytes = 1u << 26;

void put_u32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 | static_cast<std::uint32_t>(p[3]) << 24;
}

bool write_all(int fd, const void* buf, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(buf);
  while (n > 0) {
    const ssize_t put = ::write(fd, p, n);
    if (put < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += put;
    n -= static_cast<std::size_t>(put);
  }
  return true;
}

/// Reads up to n bytes, stopping early only at EOF. Returns false on error.
bool read_upto(int fd, void* buf, std::size_t n, std::size_t* got) {
  auto* p = static_cast<std::uint8_t*>(buf);
  std::size_t done = 0;
  while (done < n) {
    const ssize_t r = ::read(fd, p + done, n - done);
    if (r < 0) {
      if (errno == EINTR) continue;
      *got = done;
      return false;
    }
    if (r == 0) break;
    done += static_cast<std::size_t>(r);
  }
  *got = done;
  return true;
}

void set_error(std::string* err, const std::string& what) {
  if (err != nullptr) *err = what + ": " + std::strerror(errno);
}

}  // namespace

std::string numbered_path(const std::string& base, std::uint64_t seq) {
  char suffix[16];
  std::snprintf(suffix, sizeof(suffix), ".%06llu",
                static_cast<unsigned long long>(seq));
  return base + suffix;
}

std::vector<NumberedFile> list_numbered_files(const std::string& base) {
  std::vector<NumberedFile> out;
  const auto slash = base.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : base.substr(0, slash);
  const std::string stem =
      (slash == std::string::npos ? base : base.substr(slash + 1)) + ".";

  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return out;
  while (const dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name.size() != stem.size() + 6 || name.compare(0, stem.size(), stem) != 0) {
      continue;
    }
    std::uint64_t seq = 0;
    bool numeric = true;
    for (std::size_t i = stem.size(); i < name.size(); ++i) {
      if (name[i] < '0' || name[i] > '9') {
        numeric = false;
        break;
      }
      seq = seq * 10 + static_cast<std::uint64_t>(name[i] - '0');
    }
    if (!numeric || seq == 0) continue;
    NumberedFile f;
    f.seq = seq;
    f.path = (dir == "." && slash == std::string::npos ? name : dir + "/" + name);
    struct stat st{};
    if (::stat(f.path.c_str(), &st) == 0) f.bytes = static_cast<std::uint64_t>(st.st_size);
    out.push_back(std::move(f));
  }
  ::closedir(d);
  std::sort(out.begin(), out.end(),
            [](const NumberedFile& a, const NumberedFile& b) { return a.seq < b.seq; });
  return out;
}

bool fsync_parent_dir(const std::string& path) {
  const auto slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

std::uint32_t crc32(const void* data, std::size_t n) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t c = 0xFFFFFFFFu;
  const auto* p = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < n; ++i) c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

const char* to_string(FsyncPolicy p) {
  switch (p) {
    case FsyncPolicy::kNone: return "none";
    case FsyncPolicy::kBatch: return "batch";
    case FsyncPolicy::kAlways: return "always";
  }
  return "?";
}

bool parse_fsync_policy(std::string_view s, FsyncPolicy* out) {
  if (s == "none") { *out = FsyncPolicy::kNone; return true; }
  if (s == "batch") { *out = FsyncPolicy::kBatch; return true; }
  if (s == "always") { *out = FsyncPolicy::kAlways; return true; }
  return false;
}

WriteAheadLog::~WriteAheadLog() { close(); }

bool WriteAheadLog::open(const std::string& path, WalOptions opts, std::string* err) {
  close();
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    set_error(err, "wal open " + path);
    return false;
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    set_error(err, "wal fstat " + path);
    ::close(fd);
    return false;
  }
  if (st.st_size == 0) {
    if (!write_all(fd, kMagic, sizeof(kMagic))) {
      set_error(err, "wal write header " + path);
      ::close(fd);
      return false;
    }
    // A brand-new (or just-headered) file: make the file itself and its
    // directory entry durable now. Without the directory fsync a crash
    // right after creation can lose the WAL file wholesale — and with it
    // every batch acked against it (docs/ROBUSTNESS.md).
    if (::fsync(fd) != 0 || !fsync_parent_dir(path)) {
      set_error(err, "wal create-sync " + path);
      ::close(fd);
      return false;
    }
  } else {
    char magic[sizeof(kMagic)] = {};
    if (st.st_size < static_cast<off_t>(sizeof(kMagic)) ||
        ::pread(fd, magic, sizeof(magic), 0) != static_cast<ssize_t>(sizeof(magic)) ||
        std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
      if (err != nullptr) *err = "wal open " + path + ": not a WAL file (bad magic)";
      ::close(fd);
      return false;
    }
  }
  fd_ = fd;
  opts_ = opts;
  path_ = path;
  appended_records_ = 0;
  file_bytes_ = std::max<std::uint64_t>(static_cast<std::uint64_t>(st.st_size),
                                        sizeof(kMagic));
  unsynced_appends_ = 0;
  return true;
}

bool WriteAheadLog::append(const std::vector<Edge>& batch) {
  if (fd_ < 0) return false;
  if (batch.empty()) return true;
  const std::uint32_t payload_len = static_cast<std::uint32_t>(batch.size() * 8);
  std::vector<std::uint8_t> rec(kRecordHeaderBytes + payload_len);
  std::uint8_t* p = rec.data() + kRecordHeaderBytes;
  for (const auto& [u, v] : batch) {
    put_u32(p, u);
    put_u32(p + 4, v);
    p += 8;
  }
  put_u32(rec.data(), payload_len);
  put_u32(rec.data() + 4, crc32(rec.data() + kRecordHeaderBytes, payload_len));

  // Injected faults: kFail dies before any byte lands, kShort writes `arg`
  // bytes of the record first (the mid-record crash the torn-tail replay
  // must cut back off), kDelay just stalls the append.
  const auto outcome = ECL_FAULT_POINT("svc.wal.append");
  fault::apply_delay(outcome);
  bool append_fault = outcome.action == fault::Action::kFail ||
                      outcome.action == fault::Action::kOom ||
                      outcome.action == fault::Action::kKill;
  if (outcome.action == fault::Action::kShort) {
    const std::size_t partial = std::min<std::size_t>(outcome.arg, rec.size());
    (void)write_all(fd_, rec.data(), partial);
    file_bytes_ += partial;
    append_fault = true;
  }
  if (append_fault || !write_all(fd_, rec.data(), rec.size())) {
    // A record may have been half-written; the half-record is exactly the
    // torn tail replay knows how to cut off. Close so the service degrades.
    ECL_OBS_COUNTER_ADD("ecl.svc.wal.errors", 1);
    close();
    return false;
  }
  file_bytes_ += rec.size();
  ++appended_records_;
  ++unsynced_appends_;
  ECL_OBS_COUNTER_ADD("ecl.svc.wal.appends", 1);
  ECL_OBS_COUNTER_ADD("ecl.svc.wal.appended_edges", batch.size());

  const bool want_fsync =
      opts_.fsync_policy == FsyncPolicy::kAlways ||
      (opts_.fsync_policy == FsyncPolicy::kBatch && opts_.fsync_every != 0 &&
       unsynced_appends_ >= opts_.fsync_every);
  if (want_fsync && !sync()) {
    ECL_OBS_COUNTER_ADD("ecl.svc.wal.errors", 1);
    close();
    return false;
  }
  return true;
}

bool WriteAheadLog::sync() {
  if (fd_ < 0) return true;
  if (ECL_FAULT_POINT("svc.wal.fsync").fired()) return false;
  if (::fsync(fd_) != 0) return false;
  unsynced_appends_ = 0;
  ECL_OBS_COUNTER_ADD("ecl.svc.wal.fsyncs", 1);
  return true;
}

void WriteAheadLog::close() {
  if (fd_ < 0) return;
  if (opts_.fsync_policy != FsyncPolicy::kNone && unsynced_appends_ > 0) {
    (void)::fsync(fd_);
  }
  ::close(fd_);
  fd_ = -1;
}

WalReplayResult WriteAheadLog::replay_and_truncate(const std::string& path,
                                                   bool truncate_tail) {
  WalReplayResult out;
  const int fd = ::open(path.c_str(), truncate_tail ? O_RDWR : O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) {
      out.ok = true;  // first boot: nothing to replay
      return out;
    }
    out.error = "wal replay open " + path + ": " + std::strerror(errno);
    return out;
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    out.error = "wal replay fstat " + path + ": " + std::strerror(errno);
    ::close(fd);
    return out;
  }
  const std::uint64_t file_size = static_cast<std::uint64_t>(st.st_size);

  const auto truncate_to = [&](std::uint64_t offset) {
    out.truncated_bytes = file_size - offset;
    // Read-only validation (sealed segments): report the damage, never cut.
    if (!truncate_tail) return;
    // A truncate that silently fails leaves the corrupt tail in place, and
    // the next append would write *after* it — every record from then on
    // would be unreachable by replay. Surface the failure so the caller
    // refuses to reopen the file for appending.
    if (ECL_FAULT_POINT("svc.wal.truncate").fired() ||
        ::ftruncate(fd, static_cast<off_t>(offset)) != 0 || ::fsync(fd) != 0) {
      out.truncate_failed = true;
      out.error = "wal truncate " + path + ": " + std::strerror(errno);
      ECL_OBS_COUNTER_ADD("ecl.svc.wal.truncate_errors", 1);
    }
    ECL_OBS_COUNTER_ADD("ecl.svc.wal.truncated_bytes", out.truncated_bytes);
  };

  char magic[sizeof(kMagic)] = {};
  std::size_t got = 0;
  if (!read_upto(fd, magic, sizeof(magic), &got)) {
    out.error = "wal replay read " + path + ": " + std::strerror(errno);
    ::close(fd);
    return out;
  }
  if (got == 0) {
    out.ok = true;  // empty file; open() will stamp the header
    ::close(fd);
    return out;
  }
  if (got < sizeof(kMagic)) {
    // Crash while creating the file: nothing durable was ever acked.
    truncate_to(0);
    out.ok = true;
    ::close(fd);
    return out;
  }
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    out.error = "wal replay " + path + ": not a WAL file (bad magic)";
    ::close(fd);
    return out;
  }

  std::uint64_t offset = sizeof(kMagic);
  std::vector<std::uint8_t> payload;
  for (;;) {
    std::uint8_t hdr[kRecordHeaderBytes];
    if (!read_upto(fd, hdr, sizeof(hdr), &got)) {
      out.error = "wal replay read " + path + ": " + std::strerror(errno);
      ::close(fd);
      return out;
    }
    if (got == 0) break;  // clean end
    if (got < sizeof(hdr)) {
      truncate_to(offset);
      break;
    }
    const std::uint32_t len = get_u32(hdr);
    const std::uint32_t want_crc = get_u32(hdr + 4);
    if (len == 0 || len % 8 != 0 || len > kMaxRecordBytes) {
      truncate_to(offset);  // corrupt framing: nothing past here is trustworthy
      break;
    }
    payload.resize(len);
    if (!read_upto(fd, payload.data(), len, &got)) {
      out.error = "wal replay read " + path + ": " + std::strerror(errno);
      ::close(fd);
      return out;
    }
    if (got < len || crc32(payload.data(), len) != want_crc) {
      truncate_to(offset);  // torn or bit-flipped record
      break;
    }
    for (std::uint32_t i = 0; i < len; i += 8) {
      out.edges.emplace_back(get_u32(payload.data() + i), get_u32(payload.data() + i + 4));
    }
    ++out.records;
    offset += sizeof(hdr) + len;
  }
  ::close(fd);
  out.ok = true;
  ECL_OBS_COUNTER_ADD("ecl.svc.wal.replayed_records", out.records);
  ECL_OBS_COUNTER_ADD("ecl.svc.wal.replayed_edges", out.edges.size());
  return out;
}

// ------------------------------------------------------- SegmentedWal ----

bool SegmentedWal::adopt_legacy(const std::string& base, std::string* err) {
  struct stat st{};
  if (::stat(base.c_str(), &st) != 0) {
    if (errno == ENOENT) return true;  // nothing to adopt
    set_error(err, "wal adopt stat " + base);
    return false;
  }
  if (!S_ISREG(st.st_mode)) {
    if (err != nullptr) *err = "wal adopt " + base + ": not a regular file";
    return false;
  }
  const std::string target = numbered_path(base, 1);
  struct stat t{};
  if (::stat(target.c_str(), &t) == 0) {
    if (err != nullptr) {
      *err = "wal adopt " + base + ": both legacy file and " + target + " exist";
    }
    return false;
  }
  if (::rename(base.c_str(), target.c_str()) != 0) {
    set_error(err, "wal adopt rename " + base);
    return false;
  }
  if (!fsync_parent_dir(target)) {
    set_error(err, "wal adopt dir-sync " + base);
    return false;
  }
  return true;
}

SegmentedWal::ReplayResult SegmentedWal::replay(const std::string& base,
                                                std::uint64_t after_seq) {
  ReplayResult out;
  const auto segments = list_numbered_files(base);
  for (std::size_t i = 0; i < segments.size(); ++i) {
    const auto& seg = segments[i];
    if (seg.seq <= after_seq) continue;
    const bool is_last = i + 1 == segments.size();
    // Sealed segments are validated read-only: damage there is refused
    // below, and truncating would destroy any acked records past the
    // damage point that a manual repair could still recover.
    auto rep = WriteAheadLog::replay_and_truncate(seg.path, /*truncate_tail=*/is_last);
    if (!rep.ok) {
      out.error = rep.error;
      return out;
    }
    if (!is_last && (rep.truncated_bytes > 0 || rep.truncate_failed)) {
      // Only the active (final) segment can legally carry a torn tail — a
      // damaged record in a sealed segment means later segments hold acked
      // edges we can no longer order after the damage. Refuse rather than
      // silently dropping them.
      out.error = "wal replay " + seg.path +
                  ": corrupt record in a sealed (non-final) segment";
      return out;
    }
    out.edges.insert(out.edges.end(), rep.edges.begin(), rep.edges.end());
    out.records += rep.records;
    out.truncated_bytes += rep.truncated_bytes;
    out.truncate_failed = out.truncate_failed || rep.truncate_failed;
    if (rep.truncate_failed && !rep.error.empty()) out.error = rep.error;
    ++out.segments;
  }
  out.ok = true;
  return out;
}

bool SegmentedWal::open_segment(std::uint64_t seq, std::string* err) {
  if (!wal_.open(numbered_path(base_, seq), opts_.wal, err)) return false;
  active_seq_ = seq;
  return true;
}

bool SegmentedWal::open(const std::string& base, SegmentedWalOptions opts,
                        std::uint64_t first_seq, std::string* err) {
  close();
  base_ = base;
  opts_ = opts;
  sealed_.clear();
  sealed_bytes_ = 0;
  appended_records_ = 0;

  auto segments = list_numbered_files(base);
  std::uint64_t open_seq = std::max<std::uint64_t>(first_seq, 1);
  if (!segments.empty()) {
    open_seq = std::max(open_seq, segments.back().seq);
    for (auto& seg : segments) {
      if (seg.seq == segments.back().seq) continue;
      sealed_bytes_ += seg.bytes;
      sealed_.push_back(std::move(seg));
    }
    if (open_seq != segments.back().seq) {
      // first_seq outran every existing file (checkpoint covers them all
      // but retention hasn't caught up): the highest file is still sealed.
      sealed_bytes_ += segments.back().bytes;
      sealed_.push_back(segments.back());
    }
  }
  return open_segment(open_seq, err);
}

bool SegmentedWal::rotate(std::string* err) {
  if (!wal_.is_open()) {
    if (err != nullptr) *err = "wal rotate: log is closed";
    return false;
  }
  const auto outcome = ECL_FAULT_POINT("svc.wal.rotate");
  fault::apply_delay(outcome);
  if (outcome.action != fault::Action::kNone &&
      outcome.action != fault::Action::kDelay) {
    if (err != nullptr) *err = "wal rotate: injected fault";
    ECL_OBS_COUNTER_ADD("ecl.svc.wal.errors", 1);
    close();
    return false;
  }
  NumberedFile sealed;
  sealed.seq = active_seq_;
  sealed.path = numbered_path(base_, active_seq_);
  sealed.bytes = wal_.size_bytes();
  wal_.close();  // fsyncs any unsynced tail per policy
  if (!open_segment(active_seq_ + 1, err)) {
    ECL_OBS_COUNTER_ADD("ecl.svc.wal.errors", 1);
    return false;
  }
  sealed_bytes_ += sealed.bytes;
  sealed_.push_back(std::move(sealed));
  ECL_OBS_COUNTER_ADD("ecl.svc.wal.rotations", 1);
  return true;
}

bool SegmentedWal::append(const std::vector<Edge>& batch) {
  if (!wal_.is_open()) return false;
  if (batch.empty()) return true;
  if (opts_.segment_bytes > 0 && wal_.appended_records() > 0 &&
      wal_.size_bytes() >= opts_.segment_bytes) {
    if (!rotate(nullptr)) return false;
  }
  if (!wal_.append(batch)) return false;
  ++appended_records_;
  return true;
}

// -------------------------------------------------- WalSegmentReader ----

const char* wal_magic() { return kMagic; }

SegmentChunk WalSegmentReader::read(const std::string& base, std::uint64_t seq,
                                    std::uint64_t offset, std::uint32_t max_bytes) {
  SegmentChunk out;
  const std::string path = numbered_path(base, seq);
  for (int attempt = 0;; ++attempt) {
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      if (errno != ENOENT) {
        out.error = "wal chunk open " + path + ": " + std::strerror(errno);
        return out;
      }
      // ENOENT is ambiguous: the segment may be retired (writer unlinked
      // it), not created yet (reader ahead of writer), or we raced the
      // rename/creation window. Consult the segment index to classify, and
      // retry the open once if the listing claims the file exists — a
      // listing taken *after* the failed open that still shows the segment
      // means the open itself raced.
      const auto listed = list_numbered_files(base);
      bool present = false;
      bool newer = false;
      for (const auto& f : listed) {
        if (f.seq == seq) present = true;
        if (f.seq > seq) newer = true;
      }
      if (present && attempt < 2) continue;
      out.ok = true;
      out.exists = false;
      // The writer only ever unlinks segments below its active one, so a
      // missing segment with a higher-numbered sibling was retired; a
      // missing segment with nothing newer just hasn't been written yet.
      out.retired = newer;
      return out;
    }
    struct stat st{};
    if (::fstat(fd, &st) != 0) {
      out.error = "wal chunk fstat " + path + ": " + std::strerror(errno);
      ::close(fd);
      return out;
    }
    out.segment_bytes = static_cast<std::uint64_t>(st.st_size);
    if (offset < out.segment_bytes && max_bytes > 0) {
      const std::uint64_t want = std::min<std::uint64_t>(
          max_bytes, out.segment_bytes - offset);
      out.data.resize(static_cast<std::size_t>(want));
      std::size_t done = 0;
      while (done < out.data.size()) {
        const ssize_t r = ::pread(fd, out.data.data() + done, out.data.size() - done,
                                  static_cast<off_t>(offset + done));
        if (r < 0) {
          if (errno == EINTR) continue;
          out.error = "wal chunk pread " + path + ": " + std::strerror(errno);
          out.data.clear();
          ::close(fd);
          return out;
        }
        if (r == 0) break;  // raced a concurrent truncate; serve the prefix
        done += static_cast<std::size_t>(r);
      }
      out.data.resize(done);
    }
    ::close(fd);
    out.ok = true;
    out.exists = true;
    return out;
  }
}

std::size_t SegmentedWal::retire_through(std::uint64_t upto) {
  std::size_t deleted = 0;
  auto it = sealed_.begin();
  while (it != sealed_.end() && it->seq <= upto) {
    if (ECL_FAULT_POINT("svc.wal.retire").fired() ||
        (::unlink(it->path.c_str()) != 0 && errno != ENOENT)) {
      ECL_OBS_COUNTER_ADD("ecl.svc.wal.retire_errors", 1);
      ++it;  // leave it for the next retention pass
      continue;
    }
    sealed_bytes_ -= std::min(sealed_bytes_, it->bytes);
    it = sealed_.erase(it);
    ++deleted;
  }
  if (deleted > 0) {
    ECL_OBS_COUNTER_ADD("ecl.svc.wal.retired_segments", deleted);
    (void)fsync_parent_dir(base_);
  }
  return deleted;
}

}  // namespace ecl::svc
