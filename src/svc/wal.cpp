#include "svc/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>

#include "fault/fault.h"
#include "obs/metrics.h"

namespace ecl::svc {

namespace {

constexpr char kMagic[8] = {'E', 'C', 'L', 'W', 'A', 'L', '0', '1'};
constexpr std::size_t kRecordHeaderBytes = 8;  // u32 len + u32 crc
constexpr std::uint32_t kMaxRecordBytes = 1u << 26;

void put_u32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 | static_cast<std::uint32_t>(p[3]) << 24;
}

bool write_all(int fd, const void* buf, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(buf);
  while (n > 0) {
    const ssize_t put = ::write(fd, p, n);
    if (put < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += put;
    n -= static_cast<std::size_t>(put);
  }
  return true;
}

/// Reads up to n bytes, stopping early only at EOF. Returns false on error.
bool read_upto(int fd, void* buf, std::size_t n, std::size_t* got) {
  auto* p = static_cast<std::uint8_t*>(buf);
  std::size_t done = 0;
  while (done < n) {
    const ssize_t r = ::read(fd, p + done, n - done);
    if (r < 0) {
      if (errno == EINTR) continue;
      *got = done;
      return false;
    }
    if (r == 0) break;
    done += static_cast<std::size_t>(r);
  }
  *got = done;
  return true;
}

void set_error(std::string* err, const std::string& what) {
  if (err != nullptr) *err = what + ": " + std::strerror(errno);
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t n) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t c = 0xFFFFFFFFu;
  const auto* p = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < n; ++i) c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

const char* to_string(FsyncPolicy p) {
  switch (p) {
    case FsyncPolicy::kNone: return "none";
    case FsyncPolicy::kBatch: return "batch";
    case FsyncPolicy::kAlways: return "always";
  }
  return "?";
}

bool parse_fsync_policy(std::string_view s, FsyncPolicy* out) {
  if (s == "none") { *out = FsyncPolicy::kNone; return true; }
  if (s == "batch") { *out = FsyncPolicy::kBatch; return true; }
  if (s == "always") { *out = FsyncPolicy::kAlways; return true; }
  return false;
}

WriteAheadLog::~WriteAheadLog() { close(); }

bool WriteAheadLog::open(const std::string& path, WalOptions opts, std::string* err) {
  close();
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    set_error(err, "wal open " + path);
    return false;
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    set_error(err, "wal fstat " + path);
    ::close(fd);
    return false;
  }
  if (st.st_size == 0) {
    if (!write_all(fd, kMagic, sizeof(kMagic))) {
      set_error(err, "wal write header " + path);
      ::close(fd);
      return false;
    }
  } else {
    char magic[sizeof(kMagic)] = {};
    if (st.st_size < static_cast<off_t>(sizeof(kMagic)) ||
        ::pread(fd, magic, sizeof(magic), 0) != static_cast<ssize_t>(sizeof(magic)) ||
        std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
      if (err != nullptr) *err = "wal open " + path + ": not a WAL file (bad magic)";
      ::close(fd);
      return false;
    }
  }
  fd_ = fd;
  opts_ = opts;
  path_ = path;
  appended_records_ = 0;
  unsynced_appends_ = 0;
  return true;
}

bool WriteAheadLog::append(const std::vector<Edge>& batch) {
  if (fd_ < 0) return false;
  if (batch.empty()) return true;
  const std::uint32_t payload_len = static_cast<std::uint32_t>(batch.size() * 8);
  std::vector<std::uint8_t> rec(kRecordHeaderBytes + payload_len);
  std::uint8_t* p = rec.data() + kRecordHeaderBytes;
  for (const auto& [u, v] : batch) {
    put_u32(p, u);
    put_u32(p + 4, v);
    p += 8;
  }
  put_u32(rec.data(), payload_len);
  put_u32(rec.data() + 4, crc32(rec.data() + kRecordHeaderBytes, payload_len));

  const bool append_fault = ECL_FAULT_POINT("svc.wal.append").fired();
  if (append_fault || !write_all(fd_, rec.data(), rec.size())) {
    // A record may have been half-written; the half-record is exactly the
    // torn tail replay knows how to cut off. Close so the service degrades.
    ECL_OBS_COUNTER_ADD("ecl.svc.wal.errors", 1);
    close();
    return false;
  }
  ++appended_records_;
  ++unsynced_appends_;
  ECL_OBS_COUNTER_ADD("ecl.svc.wal.appends", 1);
  ECL_OBS_COUNTER_ADD("ecl.svc.wal.appended_edges", batch.size());

  const bool want_fsync =
      opts_.fsync_policy == FsyncPolicy::kAlways ||
      (opts_.fsync_policy == FsyncPolicy::kBatch && opts_.fsync_every != 0 &&
       unsynced_appends_ >= opts_.fsync_every);
  if (want_fsync && !sync()) {
    ECL_OBS_COUNTER_ADD("ecl.svc.wal.errors", 1);
    close();
    return false;
  }
  return true;
}

bool WriteAheadLog::sync() {
  if (fd_ < 0) return true;
  if (ECL_FAULT_POINT("svc.wal.fsync").fired()) return false;
  if (::fsync(fd_) != 0) return false;
  unsynced_appends_ = 0;
  ECL_OBS_COUNTER_ADD("ecl.svc.wal.fsyncs", 1);
  return true;
}

void WriteAheadLog::close() {
  if (fd_ < 0) return;
  if (opts_.fsync_policy != FsyncPolicy::kNone && unsynced_appends_ > 0) {
    (void)::fsync(fd_);
  }
  ::close(fd_);
  fd_ = -1;
}

WalReplayResult WriteAheadLog::replay_and_truncate(const std::string& path) {
  WalReplayResult out;
  const int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) {
    if (errno == ENOENT) {
      out.ok = true;  // first boot: nothing to replay
      return out;
    }
    out.error = "wal replay open " + path + ": " + std::strerror(errno);
    return out;
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    out.error = "wal replay fstat " + path + ": " + std::strerror(errno);
    ::close(fd);
    return out;
  }
  const std::uint64_t file_size = static_cast<std::uint64_t>(st.st_size);

  const auto truncate_to = [&](std::uint64_t offset) {
    out.truncated_bytes = file_size - offset;
    (void)::ftruncate(fd, static_cast<off_t>(offset));
    (void)::fsync(fd);
    ECL_OBS_COUNTER_ADD("ecl.svc.wal.truncated_bytes", out.truncated_bytes);
  };

  char magic[sizeof(kMagic)] = {};
  std::size_t got = 0;
  if (!read_upto(fd, magic, sizeof(magic), &got)) {
    out.error = "wal replay read " + path + ": " + std::strerror(errno);
    ::close(fd);
    return out;
  }
  if (got == 0) {
    out.ok = true;  // empty file; open() will stamp the header
    ::close(fd);
    return out;
  }
  if (got < sizeof(kMagic)) {
    // Crash while creating the file: nothing durable was ever acked.
    truncate_to(0);
    out.ok = true;
    ::close(fd);
    return out;
  }
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    out.error = "wal replay " + path + ": not a WAL file (bad magic)";
    ::close(fd);
    return out;
  }

  std::uint64_t offset = sizeof(kMagic);
  std::vector<std::uint8_t> payload;
  for (;;) {
    std::uint8_t hdr[kRecordHeaderBytes];
    if (!read_upto(fd, hdr, sizeof(hdr), &got)) {
      out.error = "wal replay read " + path + ": " + std::strerror(errno);
      ::close(fd);
      return out;
    }
    if (got == 0) break;  // clean end
    if (got < sizeof(hdr)) {
      truncate_to(offset);
      break;
    }
    const std::uint32_t len = get_u32(hdr);
    const std::uint32_t want_crc = get_u32(hdr + 4);
    if (len == 0 || len % 8 != 0 || len > kMaxRecordBytes) {
      truncate_to(offset);  // corrupt framing: nothing past here is trustworthy
      break;
    }
    payload.resize(len);
    if (!read_upto(fd, payload.data(), len, &got)) {
      out.error = "wal replay read " + path + ": " + std::strerror(errno);
      ::close(fd);
      return out;
    }
    if (got < len || crc32(payload.data(), len) != want_crc) {
      truncate_to(offset);  // torn or bit-flipped record
      break;
    }
    for (std::uint32_t i = 0; i < len; i += 8) {
      out.edges.emplace_back(get_u32(payload.data() + i), get_u32(payload.data() + i + 4));
    }
    ++out.records;
    offset += sizeof(hdr) + len;
  }
  ::close(fd);
  out.ok = true;
  ECL_OBS_COUNTER_ADD("ecl.svc.wal.replayed_records", out.records);
  ECL_OBS_COUNTER_ADD("ecl.svc.wal.replayed_edges", out.edges.size());
  return out;
}

}  // namespace ecl::svc
