#include "svc/server.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <utility>
#include <vector>

#include "common/timer.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "svc/net.h"
#include "svc/protocol.h"

namespace ecl::svc {

namespace {

/// Per-op latency sink; one switch so every op keeps its own cached
/// function-local static histogram reference.
void record_op_latency(MsgType type, std::uint64_t us) {
  const auto bounds = [] { return obs::Histogram::pow2_bounds(22); };
  switch (type) {
    case MsgType::kPing:
      ECL_OBS_HISTOGRAM_RECORD("ecl.svc.op_us.ping", bounds(), us);
      break;
    case MsgType::kIngest:
      ECL_OBS_HISTOGRAM_RECORD("ecl.svc.op_us.ingest", bounds(), us);
      break;
    case MsgType::kConnected:
      ECL_OBS_HISTOGRAM_RECORD("ecl.svc.op_us.connected", bounds(), us);
      break;
    case MsgType::kComponentOf:
      ECL_OBS_HISTOGRAM_RECORD("ecl.svc.op_us.component_of", bounds(), us);
      break;
    case MsgType::kComponentCount:
      ECL_OBS_HISTOGRAM_RECORD("ecl.svc.op_us.component_count", bounds(), us);
      break;
    case MsgType::kStats:
      ECL_OBS_HISTOGRAM_RECORD("ecl.svc.op_us.stats", bounds(), us);
      break;
    case MsgType::kHealth:
      ECL_OBS_HISTOGRAM_RECORD("ecl.svc.op_us.health", bounds(), us);
      break;
    case MsgType::kFetchCkpt:
      ECL_OBS_HISTOGRAM_RECORD("ecl.svc.op_us.fetch_ckpt", bounds(), us);
      break;
    case MsgType::kFetchWal:
      ECL_OBS_HISTOGRAM_RECORD("ecl.svc.op_us.fetch_wal", bounds(), us);
      break;
    case MsgType::kPromote:
      ECL_OBS_HISTOGRAM_RECORD("ecl.svc.op_us.promote", bounds(), us);
      break;
    case MsgType::kShutdown:
      break;
  }
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

Server::Server(ConnectivityService& service, ServerOptions opts)
    : service_(service), opts_(std::move(opts)) {}

Server::~Server() { stop(); }

bool Server::start(std::string* err) {
  if (started_.load()) return true;
  if (!opts_.unix_path.empty()) {
    listen_fd_ = net::listen_unix(opts_.unix_path, opts_.backlog, err);
  } else {
    listen_fd_ = net::listen_tcp(opts_.host, opts_.port, opts_.backlog, &bound_port_, err);
  }
  if (listen_fd_ < 0) return false;
  set_nonblocking(listen_fd_);
  spare_fd_ = ::open("/dev/null", O_RDONLY | O_CLOEXEC);

  pool_ = std::make_unique<exec::EventLoopPool>(opts_.io_threads);
  // Registered before start(): the listener lives on loop 0.
  if (!pool_->at(0).watch(listen_fd_, [this](std::uint32_t) { on_accept_ready(); })) {
    if (err != nullptr) *err = "epoll registration of the listener failed";
    ::close(listen_fd_);
    listen_fd_ = -1;
    pool_.reset();
    return false;
  }
  if (!pool_->start(err)) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    pool_.reset();
    return false;
  }
  started_.store(true);
  return true;
}

void Server::request_shutdown() {
  shutdown_requested_.store(true, std::memory_order_release);
  // Async-signal-safe: an atomic store plus one eventfd write per loop.
  if (pool_) pool_->request_stop();
}

std::size_t Server::active_connections() const {
  if (!pool_) return 0;
  return static_cast<std::size_t>(
      pool_->counters().open_conns.load(std::memory_order_relaxed));
}

ServerConnStats Server::conn_stats() const {
  ServerConnStats s;
  s.accept_shed_fds = accept_shed_.load(std::memory_order_relaxed);
  if (!pool_) return s;
  const auto& c = pool_->counters();
  s.open_connections = c.open_conns.load(std::memory_order_relaxed);
  s.epoll_wakeups = c.wakeups.load(std::memory_order_relaxed);
  s.write_buf_hwm_bytes = c.write_buf_hwm.load(std::memory_order_relaxed);
  s.evicted_idle = c.evicted_idle.load(std::memory_order_relaxed);
  s.evicted_slow = c.evicted_frame.load(std::memory_order_relaxed);
  s.evicted_backpressure = c.evicted_stall.load(std::memory_order_relaxed) +
                           c.evicted_overflow.load(std::memory_order_relaxed);
  return s;
}

void Server::on_accept_ready() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS || errno == ENOMEM) {
        // FD exhaustion: shed the pending connection cleanly (briefly give
        // back the spare fd so accept() can succeed, then close the peer)
        // and pause the listener instead of spinning on a ready backlog.
        accept_shed_.fetch_add(1, std::memory_order_relaxed);
        ECL_OBS_COUNTER_ADD("ecl.svc.accept.shed_fds", 1);
        if (spare_fd_ >= 0) {
          ::close(spare_fd_);
          spare_fd_ = -1;
          const int shed = ::accept(listen_fd_, nullptr, nullptr);
          if (shed >= 0) ::close(shed);
          spare_fd_ = ::open("/dev/null", O_RDONLY | O_CLOEXEC);
        }
        auto& loop0 = pool_->at(0);
        loop0.unwatch(listen_fd_);
        loop0.post_after(opts_.accept_backoff_ms, [this] { rearm_accept(); });
        return;
      }
      continue;  // ECONNABORTED and friends: transient, try the next one
    }
    // Consistent client-socket tuning: TCP_NODELAY (no-op on Unix sockets)
    // mirrors net.cpp's connect-side setting, and an optional small SO_SNDBUF
    // lets tests drive the backpressure ladder with little data.
    const int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (opts_.sndbuf_bytes > 0) {
      (void)::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &opts_.sndbuf_bytes,
                         sizeof(opts_.sndbuf_bytes));
    }
    ECL_OBS_COUNTER_ADD("ecl.svc.server.connections", 1);
    exec::EventLoop& loop = pool_->next();
    loop.post([this, &loop, fd] { adopt_connection(loop, fd); });
  }
}

void Server::rearm_accept() {
  if (shutdown_requested_.load(std::memory_order_acquire) || listen_fd_ < 0) return;
  (void)pool_->at(0).watch(listen_fd_, [this](std::uint32_t) { on_accept_ready(); });
}

void Server::adopt_connection(exec::EventLoop& loop, int fd) {
  exec::ConnCallbacks cbs;
  cbs.on_frame = [this](exec::Conn& c, std::span<const std::uint8_t> p) { on_frame(c, p); };
  cbs.on_close = [this](exec::Conn& c, exec::CloseReason r) { on_close(c, r); };
  exec::ConnOptions copts;
  copts.max_frame_bytes = kMaxFrameBytes;
  copts.write_buffer_limit = opts_.write_buffer_limit;
  copts.write_buffer_pause = opts_.write_buffer_pause;
  copts.idle_timeout_ms = opts_.idle_timeout_ms;
  copts.frame_timeout_ms = opts_.frame_timeout_ms;
  copts.write_stall_timeout_ms = opts_.send_timeout_ms;
  (void)loop.adopt(fd, std::move(cbs), copts);
}

void Server::on_close(exec::Conn&, exec::CloseReason reason) {
  switch (reason) {
    case exec::CloseReason::kIdleTimeout:
      ECL_OBS_COUNTER_ADD("ecl.svc.server.evicted_idle", 1);
      break;
    case exec::CloseReason::kFrameTimeout:
      ECL_OBS_COUNTER_ADD("ecl.svc.server.evicted_slow", 1);
      break;
    case exec::CloseReason::kWriteStall:
    case exec::CloseReason::kWriteOverflow:
      ECL_OBS_COUNTER_ADD("ecl.svc.server.evicted_backpressure", 1);
      break;
    default:
      break;
  }
}

void Server::on_frame(exec::Conn& conn, std::span<const std::uint8_t> payload) {
  const double start_us = obs::Tracer::now_us();
  Timer total;
  Timer phase;
  Request req;
  Response resp;
  bool decoded = false;
  std::uint64_t decode_us = 0;
  std::uint64_t execute_us = 0;
  std::uint64_t encode_us = 0;
  std::uint64_t write_us = 0;
  // Reused across requests on this I/O thread (on_frame never nests).
  thread_local std::vector<std::uint8_t> reply;
  try {
    decoded = decode_request(payload, req);
    decode_us = static_cast<std::uint64_t>(phase.micros());
    if (decoded) {
      phase.reset();
      resp = dispatch(req);
      execute_us = static_cast<std::uint64_t>(phase.micros());
    }
  } catch (...) {
    // One bad request (e.g. an allocation failure while decoding) must
    // never take the I/O thread or the daemon down.
    ECL_OBS_COUNTER_ADD("ecl.svc.server.handler_errors", 1);
    conn.close(exec::CloseReason::kProtocolError);
    return;
  }
  if (!decoded) {
    resp.status = Status::kInvalid;
    ECL_OBS_COUNTER_ADD("ecl.svc.server.malformed", 1);
    reply.clear();
    encode_response(resp, reply);
    conn.send(reply.data(), reply.size());
    conn.close(exec::CloseReason::kProtocolError);  // framing is untrustworthy now
    return;
  }
  reply.clear();
  phase.reset();
  encode_response(resp, reply);  // appends the complete frame, prefix included
  encode_us = static_cast<std::uint64_t>(phase.micros());
  phase.reset();
  conn.send(reply.data(), reply.size());
  write_us = static_cast<std::uint64_t>(phase.micros());
  if (conn.closing()) return;  // the send tripped the overflow eviction
  requests_served_.fetch_add(1, std::memory_order_relaxed);
  const auto total_us = static_cast<std::uint64_t>(total.micros());
  record_op_latency(req.type, total_us);
  finish_request(req, resp, start_us, total_us, decode_us, execute_us, encode_us,
                 write_us);
  if (req.type == MsgType::kShutdown) {
    // Close first (flushes the ack best-effort), then stop the loops.
    conn.close(exec::CloseReason::kAppClose);
    request_shutdown();
  }
}

void Server::finish_request(const Request& req, const Response& resp, double start_us,
                            std::uint64_t total_us, std::uint64_t decode_us,
                            std::uint64_t execute_us, std::uint64_t encode_us,
                            std::uint64_t write_us) {
  auto& tracer = obs::Tracer::instance();
  if (tracer.enabled()) {
    // Recorded post-hoc (not via Span) so the event carries the measured
    // phase breakdown and covers exactly decode..write.
    obs::TraceEvent ev;
    ev.name = "svc.request";
    ev.category = "svc";
    ev.ts_us = start_us;
    ev.dur_us = static_cast<double>(total_us);
    ev.tid = static_cast<std::uint32_t>(obs::detail::thread_index());
    ev.args.reserve(7);
    ev.args.emplace_back("request_id", std::to_string(req.id));
    ev.args.emplace_back("op", '"' + std::string(msg_type_name(req.type)) + '"');
    ev.args.emplace_back("status", '"' + std::string(status_name(resp.status)) + '"');
    ev.args.emplace_back("decode_us", std::to_string(decode_us));
    ev.args.emplace_back("execute_us", std::to_string(execute_us));
    ev.args.emplace_back("encode_us", std::to_string(encode_us));
    ev.args.emplace_back("write_us", std::to_string(write_us));
    tracer.record(std::move(ev));
  }
  if (opts_.slow_log != nullptr && opts_.slow_log->enabled()) {
    obs::RequestLogRecord rec;
    rec.request_id = req.id;
    rec.op = msg_type_name(req.type);
    rec.status = status_name(resp.status);
    rec.queue_depth = service_.queue_depth();
    rec.total_us = total_us;
    rec.decode_us = decode_us;
    rec.queue_us = 0;  // requests dispatch inline on the I/O thread
    rec.execute_us = execute_us;
    rec.encode_us = encode_us;
    rec.write_us = write_us;  // buffer append; the loop flushes asynchronously
    if (opts_.slow_log->log(rec)) {
      ECL_OBS_COUNTER_ADD("ecl.svc.server.slow_requests", 1);
    }
  }
}

Response Server::dispatch(const Request& req) {
  Response resp;
  resp.type = req.type;
  resp.id = req.id;
  switch (req.type) {
    case MsgType::kPing:
    case MsgType::kShutdown:
      break;
    case MsgType::kIngest:
      if (service_.is_replica()) {
        // A definitive verdict, not kShed: retrying a write against a
        // replica can never succeed — the client must redirect.
        resp.status = Status::kNotPrimary;
        break;
      }
      switch (service_.submit(req.edges)) {
        case Admission::kAccepted:
          break;
        case Admission::kShed:
          resp.status = Status::kShed;
          break;
        case Admission::kClosed:
          resp.status = Status::kClosed;
          break;
      }
      break;
    case MsgType::kConnected:
      if (req.u >= service_.num_vertices() || req.v >= service_.num_vertices()) {
        resp.status = Status::kInvalid;
      } else {
        resp.value = service_.connected(req.u, req.v, req.mode) ? 1 : 0;
      }
      break;
    case MsgType::kComponentOf: {
      const vertex_t label = service_.component_of(req.v, req.mode);
      if (label == kInvalidVertex) {
        resp.status = Status::kInvalid;
      } else {
        resp.value = label;
      }
      break;
    }
    case MsgType::kComponentCount:
      resp.value = service_.component_count();
      break;
    case MsgType::kStats: {
      resp.stats = service_.stats();
      resp.stats.requests_served = requests_served();
      const ServerConnStats cs = conn_stats();
      resp.stats.open_connections = cs.open_connections;
      resp.stats.epoll_wakeups = cs.epoll_wakeups;
      resp.stats.write_buf_hwm_bytes = cs.write_buf_hwm_bytes;
      resp.stats.evicted_idle = cs.evicted_idle;
      resp.stats.evicted_slow = cs.evicted_slow;
      resp.stats.evicted_backpressure = cs.evicted_backpressure;
      resp.stats.accept_shed_fds = cs.accept_shed_fds;
      ECL_OBS_GAUGE_SET("ecl.svc.conn.open", static_cast<double>(cs.open_connections));
      ECL_OBS_GAUGE_SET("ecl.svc.conn.write_buf_hwm_bytes",
                        static_cast<double>(cs.write_buf_hwm_bytes));
      break;
    }
    case MsgType::kHealth:
      resp.health = service_.health();
      break;
    case MsgType::kFetchCkpt: {
      if (service_.is_replica()) {
        resp.status = Status::kNotPrimary;  // replicas don't chain (yet)
        break;
      }
      resp.ckpt = service_.fetch_checkpoint_image();
      // The image travels in one frame; a checkpoint too large for it
      // (≈64 MiB of labels) is a config error surfaced as kError, never a
      // torn frame the peer would close the connection over.
      if (resp.ckpt.image.size() > kMaxFrameBytes - 64) {
        resp.ckpt = CkptImage{};
        resp.status = Status::kError;
      }
      break;
    }
    case MsgType::kFetchWal: {
      if (service_.is_replica()) {
        resp.status = Status::kNotPrimary;
        break;
      }
      const std::uint32_t capped = std::min(req.max_bytes, kMaxWalChunkBytes);
      resp.wal = service_.fetch_wal_chunk(req.replica_id, req.seq, req.offset, capped);
      if (!resp.wal.ok) {
        resp.wal = WalChunk{};
        resp.status = Status::kError;
      }
      break;
    }
    case MsgType::kPromote: {
      // Routed through the daemon's hook when set (it stops the Replicator
      // before flipping the service); in-process tests promote directly.
      const bool ok = opts_.promote ? opts_.promote() : service_.promote();
      if (!ok) resp.status = Status::kError;
      break;
    }
  }
  return resp;
}

void Server::wait() {
  if (!started_.load()) return;
  pool_->wait();
}

void Server::stop() {
  if (!started_.load() || stopped_) return;
  request_shutdown();
  pool_->stop();
  stopped_ = true;
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (!opts_.unix_path.empty()) ::unlink(opts_.unix_path.c_str());
  if (spare_fd_ >= 0) {
    ::close(spare_fd_);
    spare_fd_ = -1;
  }
}

}  // namespace ecl::svc
