#include "svc/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <utility>
#include <vector>

#include "common/timer.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "svc/net.h"
#include "svc/protocol.h"

namespace ecl::svc {

namespace {

/// Per-op latency sink; one switch so every op keeps its own cached
/// function-local static histogram reference.
void record_op_latency(MsgType type, std::uint64_t us) {
  const auto bounds = [] { return obs::Histogram::pow2_bounds(22); };
  switch (type) {
    case MsgType::kPing:
      ECL_OBS_HISTOGRAM_RECORD("ecl.svc.op_us.ping", bounds(), us);
      break;
    case MsgType::kIngest:
      ECL_OBS_HISTOGRAM_RECORD("ecl.svc.op_us.ingest", bounds(), us);
      break;
    case MsgType::kConnected:
      ECL_OBS_HISTOGRAM_RECORD("ecl.svc.op_us.connected", bounds(), us);
      break;
    case MsgType::kComponentOf:
      ECL_OBS_HISTOGRAM_RECORD("ecl.svc.op_us.component_of", bounds(), us);
      break;
    case MsgType::kComponentCount:
      ECL_OBS_HISTOGRAM_RECORD("ecl.svc.op_us.component_count", bounds(), us);
      break;
    case MsgType::kStats:
      ECL_OBS_HISTOGRAM_RECORD("ecl.svc.op_us.stats", bounds(), us);
      break;
    case MsgType::kHealth:
      ECL_OBS_HISTOGRAM_RECORD("ecl.svc.op_us.health", bounds(), us);
      break;
    case MsgType::kShutdown:
      break;
  }
}

}  // namespace

Server::Server(ConnectivityService& service, ServerOptions opts)
    : service_(service), opts_(std::move(opts)) {}

Server::~Server() { stop(); }

bool Server::start(std::string* err) {
  if (started_.load()) return true;
  if (::pipe(wake_pipe_) != 0) {
    if (err != nullptr) *err = "pipe failed";
    return false;
  }
  if (!opts_.unix_path.empty()) {
    listen_fd_ = net::listen_unix(opts_.unix_path, opts_.backlog, err);
  } else {
    listen_fd_ = net::listen_tcp(opts_.host, opts_.port, opts_.backlog, &bound_port_, err);
  }
  if (listen_fd_ < 0) {
    ::close(wake_pipe_[0]);
    ::close(wake_pipe_[1]);
    wake_pipe_[0] = wake_pipe_[1] = -1;
    return false;
  }
  started_.store(true);
  accept_thread_ = std::thread([this] { accept_loop(); });
  return true;
}

void Server::request_shutdown() {
  shutdown_requested_.store(true, std::memory_order_release);
  if (wake_pipe_[1] >= 0) {
    const char byte = 'x';
    // Best effort; the accept loop also polls the flag.
    (void)!::write(wake_pipe_[1], &byte, 1);
  }
}

void Server::reap_finished() {
  // Splice finished handlers out under the lock, join outside it: a handler's
  // last act before setting done is to take conns_mu_ and close its fd, so
  // joining while holding the lock could deadlock against it.
  std::list<Connection> finished;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto it = conns_.begin(); it != conns_.end();) {
      const auto next = std::next(it);
      if (it->done.load(std::memory_order_acquire)) {
        finished.splice(finished.end(), conns_, it);
      }
      it = next;
    }
  }
  for (Connection& c : finished) {
    if (c.thread.joinable()) c.thread.join();
  }
}

std::size_t Server::active_connections() const {
  std::lock_guard<std::mutex> lock(conns_mu_);
  return conns_.size();
}

void Server::accept_loop() {
  while (!shutdown_requested_.load(std::memory_order_acquire)) {
    reap_finished();
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    const int ready = ::poll(fds, 2, 200);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;
    if ((fds[1].revents & POLLIN) != 0) break;  // shutdown wake-up
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int client_fd = ::accept(listen_fd_, nullptr, nullptr);
    if (client_fd < 0) continue;
    // Backstop deadline on responses: a peer that stops draining its socket
    // stalls the handler in send() for at most send_timeout_ms.
    net::set_io_timeouts(client_fd, 0, opts_.send_timeout_ms);
    ECL_OBS_COUNTER_ADD("ecl.svc.server.connections", 1);
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.emplace_back();
    Connection* conn = &conns_.back();
    conn->fd = client_fd;
    conn->thread = std::thread([this, conn] { handle_connection(conn); });
  }

  ::close(listen_fd_);
  listen_fd_ = -1;
  if (!opts_.unix_path.empty()) ::unlink(opts_.unix_path.c_str());

  // Half-close every live connection so blocked readers see EOF, then join.
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (Connection& c : conns_) {
      if (c.fd >= 0) ::shutdown(c.fd, SHUT_RDWR);
    }
  }
  for (Connection& c : conns_) {
    if (c.thread.joinable()) c.thread.join();
  }
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (Connection& c : conns_) {
      if (c.fd >= 0) ::close(c.fd);
      c.fd = -1;
    }
  }
  {
    std::lock_guard<std::mutex> lock(done_mu_);
    done_ = true;
  }
  done_cv_.notify_all();
}

void Server::handle_connection(Connection* conn) {
  const int fd = conn->fd;
  std::vector<std::uint8_t> payload;
  std::vector<std::uint8_t> reply;
  Request req;
  for (;;) {
    const net::IoStatus rst = net::read_frame_deadline(
        fd, payload, opts_.idle_timeout_ms, opts_.frame_timeout_ms);
    if (rst == net::IoStatus::kTimeout) {
      // The frame started but stalled: the peer is stuck (or hostile) and
      // would otherwise pin this handler thread. Evict it.
      ECL_OBS_COUNTER_ADD("ecl.svc.server.evicted_slow", 1);
      break;
    }
    if (rst == net::IoStatus::kIdle) {
      ECL_OBS_COUNTER_ADD("ecl.svc.server.evicted_idle", 1);
      break;
    }
    if (rst != net::IoStatus::kOk) break;  // kEof (clean close) or kError
    const double start_us = obs::Tracer::now_us();
    Timer total;
    Timer phase;
    Response resp;
    bool decoded = false;
    std::uint64_t decode_us = 0;
    std::uint64_t execute_us = 0;
    std::uint64_t encode_us = 0;
    std::uint64_t write_us = 0;
    try {
      decoded = decode_request(payload, req);
      decode_us = static_cast<std::uint64_t>(phase.micros());
      if (decoded) {
        phase.reset();
        resp = dispatch(req);
        execute_us = static_cast<std::uint64_t>(phase.micros());
      }
    } catch (...) {
      // One bad request (e.g. an allocation failure while decoding) must
      // never escape the handler thread and terminate the daemon.
      ECL_OBS_COUNTER_ADD("ecl.svc.server.handler_errors", 1);
      break;  // drop the connection
    }
    if (!decoded) {
      resp.status = Status::kInvalid;
      ECL_OBS_COUNTER_ADD("ecl.svc.server.malformed", 1);
      reply.clear();
      encode_response(resp, reply);
      (void)net::write_frame(fd, reply);
      break;  // framing is untrustworthy now; drop the connection
    }
    reply.clear();
    phase.reset();
    encode_response(resp, reply);
    encode_us = static_cast<std::uint64_t>(phase.micros());
    phase.reset();
    const net::IoStatus wst = net::write_frame_io(fd, reply);
    write_us = static_cast<std::uint64_t>(phase.micros());
    if (wst != net::IoStatus::kOk) {
      if (wst == net::IoStatus::kTimeout) {
        ECL_OBS_COUNTER_ADD("ecl.svc.server.evicted_slow", 1);
      }
      break;
    }
    requests_served_.fetch_add(1, std::memory_order_relaxed);
    const auto total_us = static_cast<std::uint64_t>(total.micros());
    record_op_latency(req.type, total_us);
    finish_request(req, resp, start_us, total_us, decode_us, execute_us, encode_us,
                   write_us);
    if (req.type == MsgType::kShutdown) {
      request_shutdown();
      break;
    }
  }
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    ::close(conn->fd);
    conn->fd = -1;
  }
  // Last act: hand the Connection to the accept loop's reaper, which joins
  // this thread and frees the node. Nothing may touch *conn after this.
  conn->done.store(true, std::memory_order_release);
}

void Server::finish_request(const Request& req, const Response& resp, double start_us,
                            std::uint64_t total_us, std::uint64_t decode_us,
                            std::uint64_t execute_us, std::uint64_t encode_us,
                            std::uint64_t write_us) {
  auto& tracer = obs::Tracer::instance();
  if (tracer.enabled()) {
    // Recorded post-hoc (not via Span) so the event carries the measured
    // phase breakdown and covers exactly decode..write.
    obs::TraceEvent ev;
    ev.name = "svc.request";
    ev.category = "svc";
    ev.ts_us = start_us;
    ev.dur_us = static_cast<double>(total_us);
    ev.tid = static_cast<std::uint32_t>(obs::detail::thread_index());
    ev.args.reserve(7);
    ev.args.emplace_back("request_id", std::to_string(req.id));
    ev.args.emplace_back("op", '"' + std::string(msg_type_name(req.type)) + '"');
    ev.args.emplace_back("status", '"' + std::string(status_name(resp.status)) + '"');
    ev.args.emplace_back("decode_us", std::to_string(decode_us));
    ev.args.emplace_back("execute_us", std::to_string(execute_us));
    ev.args.emplace_back("encode_us", std::to_string(encode_us));
    ev.args.emplace_back("write_us", std::to_string(write_us));
    tracer.record(std::move(ev));
  }
  if (opts_.slow_log != nullptr && opts_.slow_log->enabled()) {
    obs::RequestLogRecord rec;
    rec.request_id = req.id;
    rec.op = msg_type_name(req.type);
    rec.status = status_name(resp.status);
    rec.queue_depth = service_.queue_depth();
    rec.total_us = total_us;
    rec.decode_us = decode_us;
    rec.queue_us = 0;  // no admission queue in the thread-per-connection server
    rec.execute_us = execute_us;
    rec.encode_us = encode_us;
    rec.write_us = write_us;
    if (opts_.slow_log->log(rec)) {
      ECL_OBS_COUNTER_ADD("ecl.svc.server.slow_requests", 1);
    }
  }
}

Response Server::dispatch(const Request& req) {
  Response resp;
  resp.type = req.type;
  resp.id = req.id;
  switch (req.type) {
    case MsgType::kPing:
    case MsgType::kShutdown:
      break;
    case MsgType::kIngest:
      switch (service_.submit(req.edges)) {
        case Admission::kAccepted:
          break;
        case Admission::kShed:
          resp.status = Status::kShed;
          break;
        case Admission::kClosed:
          resp.status = Status::kClosed;
          break;
      }
      break;
    case MsgType::kConnected:
      if (req.u >= service_.num_vertices() || req.v >= service_.num_vertices()) {
        resp.status = Status::kInvalid;
      } else {
        resp.value = service_.connected(req.u, req.v, req.mode) ? 1 : 0;
      }
      break;
    case MsgType::kComponentOf: {
      const vertex_t label = service_.component_of(req.v, req.mode);
      if (label == kInvalidVertex) {
        resp.status = Status::kInvalid;
      } else {
        resp.value = label;
      }
      break;
    }
    case MsgType::kComponentCount:
      resp.value = service_.component_count();
      break;
    case MsgType::kStats:
      resp.stats = service_.stats();
      resp.stats.requests_served = requests_served();
      break;
    case MsgType::kHealth:
      resp.health = service_.health();
      break;
  }
  return resp;
}

void Server::wait() {
  if (!started_.load()) return;
  std::unique_lock<std::mutex> lock(done_mu_);
  done_cv_.wait(lock, [&] { return done_; });
}

void Server::stop() {
  if (!started_.load()) return;
  request_shutdown();
  wait();
  if (accept_thread_.joinable()) accept_thread_.join();
  if (wake_pipe_[0] >= 0) ::close(wake_pipe_[0]);
  if (wake_pipe_[1] >= 0) ::close(wake_pipe_[1]);
  wake_pipe_[0] = wake_pipe_[1] = -1;
}

}  // namespace ecl::svc
