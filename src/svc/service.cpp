#include "svc/service.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <thread>
#include <utility>

#include "common/timer.h"
#include "core/ecl_cc.h"
#include "fault/fault.h"
#include "graph/builder.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ecl::svc {

namespace {

vertex_t count_labels(const std::vector<vertex_t>& labels) {
  vertex_t components = 0;
  for (vertex_t v = 0; v < static_cast<vertex_t>(labels.size()); ++v) {
    if (labels[v] == v) ++components;
  }
  return components;
}

SnapshotPtr make_identity_snapshot(vertex_t n) {
  auto snap = std::make_shared<Snapshot>();
  snap->labels.resize(n);
  for (vertex_t v = 0; v < n; ++v) snap->labels[v] = v;
  snap->num_components = n;
  return snap;
}

}  // namespace

ConnectivityService::ConnectivityService(vertex_t n, ServiceOptions opts)
    : num_vertices_(n), opts_(opts), live_(n), queue_(opts.queue_capacity) {
  replica_.store(opts_.replica, std::memory_order_release);
  snapshot_.store(make_identity_snapshot(n));
  init_durability();
  start_threads();
}

ConnectivityService::ConnectivityService(const Graph& seed, ServiceOptions opts)
    : num_vertices_(seed.num_vertices()),
      opts_(opts),
      live_(seed),
      queue_(opts.queue_capacity) {
  replica_.store(opts_.replica, std::memory_order_release);
  for (vertex_t v = 0; v < num_vertices_; ++v) {
    for (const vertex_t u : seed.neighbors(v)) {
      if (u < v) log_.emplace_back(v, u);
    }
  }
  applied_edges_.store(log_.size());

  auto snap = std::make_shared<Snapshot>();
  snap->watermark = log_.size();
  EclOptions eopts;
  eopts.num_threads = opts_.num_threads;
  Timer t;
  snap->labels = num_vertices_ > 0 ? ecl_cc_omp(seed, eopts) : std::vector<vertex_t>{};
  snap->build_ms = t.millis();
  snap->num_components = count_labels(snap->labels);
  snapshot_.store(std::move(snap));
  init_durability();
  start_threads();
}

std::uint64_t ConnectivityService::now_ms() const {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::milliseconds>(
                                        std::chrono::steady_clock::now() - start_tp_)
                                        .count());
}

void ConnectivityService::init_durability() {
  std::uint64_t covered_seq = 0;  // WAL segments <= this are in the checkpoint
  if (!opts_.checkpoint_path.empty()) {
    ckpt_store_.open(opts_.checkpoint_path);
    auto load = ckpt_store_.load_latest_valid();
    if (load.found_any && !load.ok) {
      std::fprintf(stderr,
                   "[ecl::svc] no valid checkpoint (%s); falling back to full WAL replay\n",
                   load.error.c_str());
    }
    if (load.ok && load.data.n != num_vertices_) {
      throw std::runtime_error(
          "ecl::svc checkpoint vertex count mismatch: checkpoint has " +
          std::to_string(load.data.n) + ", service has " +
          std::to_string(num_vertices_));
    }
    if (load.ok && load.data.watermark < applied_edges_.load(std::memory_order_acquire)) {
      // Predates the seed graph this ctor was given: folding it in would
      // drop seed edges from the watermark accounting. Start from the seed.
      std::fprintf(stderr,
                   "[ecl::svc] ignoring checkpoint older than the seed graph\n");
    } else if (load.ok) {
      base_labels_ = std::move(load.data.labels);
      base_watermark_ = load.data.watermark;
      covered_seq = load.data.wal_seq;
      // Fold the checkpointed components into the live union-find: one
      // (v, label) union per non-root vertex reconstructs them exactly.
      std::vector<Edge> fold;
      for (vertex_t v = 0; v < num_vertices_; ++v) {
        if (base_labels_[v] != v) fold.emplace_back(v, base_labels_[v]);
      }
      live_.add_edges(fold.data(), fold.size());
      {
        std::lock_guard<std::mutex> lock(log_mu_);
        log_.clear();  // seed edges (if any) are covered by the checkpoint
        applied_edges_.store(base_watermark_, std::memory_order_release);
      }
      // Publish the checkpoint's labels directly — no ECL-CC run over
      // history. This is the bounded-recovery payoff: restart cost is
      // checkpoint load + tail replay, independent of lifetime ingest.
      auto snap = std::make_shared<Snapshot>();
      snap->epoch = load.data.epoch;
      snap->watermark = base_watermark_;
      snap->labels = base_labels_;
      snap->num_components = count_labels(snap->labels);
      snapshot_.store(std::move(snap));
      has_ckpt_.store(true, std::memory_order_release);
      last_ckpt_epoch_.store(load.data.epoch, std::memory_order_relaxed);
      last_ckpt_watermark_.store(base_watermark_, std::memory_order_relaxed);
      last_ckpt_ms_.store(now_ms(), std::memory_order_relaxed);
      ECL_OBS_COUNTER_ADD("ecl.svc.ckpt.loads", 1);
      ECL_OBS_COUNTER_ADD("ecl.svc.ckpt.loaded_edges", base_watermark_);
    }
  }

  ckpt_covered_seq_ = covered_seq;  // ctor: threads not running, no lock

  if (opts_.wal_path.empty()) return;
  std::string err;
  if (!SegmentedWal::adopt_legacy(opts_.wal_path, &err)) {
    throw std::runtime_error("ecl::svc WAL adopt failed: " + err);
  }
  auto rep = SegmentedWal::replay(opts_.wal_path, covered_seq);
  if (!rep.ok || rep.truncate_failed) {
    // truncate_failed: the recovered edges are fine but the tail segment
    // still ends in garbage a future append would land after — refuse to
    // reopen it for writing rather than strand those future records.
    throw std::runtime_error("ecl::svc WAL replay failed: " + rep.error);
  }
  if (!rep.edges.empty()) {
    std::erase_if(rep.edges, [this](const Edge& e) {
      return e.first >= num_vertices_ || e.second >= num_vertices_;
    });
    live_.add_edges(rep.edges.data(), rep.edges.size());
    {
      std::lock_guard<std::mutex> lock(log_mu_);
      log_.insert(log_.end(), rep.edges.begin(), rep.edges.end());
      applied_edges_.fetch_add(rep.edges.size(), std::memory_order_release);
    }
    replayed_edges_ = rep.edges.size();
    // Synchronous: threads are not running yet, and the first published
    // snapshot must already reflect everything the WAL recovered.
    run_compaction();
  }
  if (opts_.replica) {
    // A replica never appends: the Replicator mirrors the primary's raw
    // segment bytes into these same files, and opening one for writing
    // here would stamp a header into (or fsync-race) the mirror. Recovery
    // above already replayed everything; just surface the mirror geometry.
    std::uint64_t segs = 0;
    std::uint64_t bytes = 0;
    for (const auto& f : list_numbered_files(opts_.wal_path)) {
      ++segs;
      bytes += f.bytes;
    }
    wal_segments_.store(segs, std::memory_order_relaxed);
    wal_bytes_.store(bytes, std::memory_order_relaxed);
    return;
  }
  SegmentedWalOptions sopts;
  sopts.wal = opts_.wal;
  sopts.segment_bytes = opts_.wal_segment_bytes;
  if (!wal_.open(opts_.wal_path, sopts, covered_seq + 1, &err)) {
    throw std::runtime_error("ecl::svc WAL open failed: " + err);
  }
  wal_segments_.store(wal_.segment_count(), std::memory_order_relaxed);
  wal_bytes_.store(wal_.total_bytes(), std::memory_order_relaxed);
}

void ConnectivityService::enter_degraded(const char* reason) {
  if (!degraded_.exchange(true, std::memory_order_acq_rel)) {
    degraded_entries_.fetch_add(1, std::memory_order_relaxed);
    ECL_OBS_COUNTER_ADD("ecl.svc.degraded.entries", 1);
    std::fprintf(stderr, "[ecl::svc] entering read-only degraded mode: %s\n", reason);
  }
}

ConnectivityService::~ConnectivityService() { stop(); }

void ConnectivityService::start_threads() {
  // Two long-lived tasks park on the executor's two workers for the
  // service's whole lifetime. The done flags stand in for thread joins:
  // stop() waits on them (under progress_mu_) instead of calling join(),
  // and only then drains the executor.
  const bool ingest_ok = exec_.submit([this] {
    ingest_loop();
    {
      std::lock_guard<std::mutex> lock(progress_mu_);
      ingest_done_ = true;
    }
    progress_cv_.notify_all();
    compact_cv_.notify_all();
  });
  const bool compact_ok = exec_.submit([this] {
    try {
      compact_loop();
    } catch (const std::exception& e) {
      // A compaction failure (e.g. allocation) must not strand stop()
      // waiters or crash the process; degrade and keep serving reads.
      std::fprintf(stderr, "[ecl::svc] compaction worker died: %s\n", e.what());
      enter_degraded("compaction worker died");
    }
    {
      std::lock_guard<std::mutex> lock(progress_mu_);
      compact_done_ = true;
    }
    progress_cv_.notify_all();
    compact_cv_.notify_all();
  });
  if (!ingest_ok || !compact_ok) {
    throw std::runtime_error("ecl::svc executor rejected a background loop");
  }
}

Admission ConnectivityService::submit(EdgeBatch batch) {
  if (stopped_.load(std::memory_order_acquire)) return Admission::kClosed;
  if (degraded_.load(std::memory_order_acquire)) {
    // Read-only mode: shed instead of accepting writes we can neither
    // durably log nor (if the worker died) ever apply.
    shed_batches_.fetch_add(1, std::memory_order_relaxed);
    ECL_OBS_COUNTER_ADD("ecl.svc.ingest.shed", 1);
    return Admission::kShed;
  }
  if (replica_.load(std::memory_order_acquire)) {
    // Replicas take writes only from the replication stream. The server
    // maps this to Status::kNotPrimary before even calling submit(); this
    // guard covers in-process callers.
    shed_batches_.fetch_add(1, std::memory_order_relaxed);
    ECL_OBS_COUNTER_ADD("ecl.svc.ingest.shed", 1);
    return Admission::kShed;
  }
  const bool wal_on = wal_healthy_.load(std::memory_order_acquire) && !opts_.wal_path.empty();
  EdgeBatch wal_copy;
  if (wal_on) wal_copy = batch;
  const Admission verdict = queue_.try_push(std::move(batch));
  switch (verdict) {
    case Admission::kAccepted:
      accepted_batches_.fetch_add(1, std::memory_order_relaxed);
      ECL_OBS_COUNTER_ADD("ecl.svc.ingest.batches", 1);
      break;
    case Admission::kShed:
      shed_batches_.fetch_add(1, std::memory_order_relaxed);
      ECL_OBS_COUNTER_ADD("ecl.svc.ingest.shed", 1);
      break;
    case Admission::kClosed:
      break;
  }
  ECL_OBS_GAUGE_SET("ecl.svc.queue.depth", static_cast<double>(queue_.size()));
  if (verdict == Admission::kAccepted && wal_on) {
    std::lock_guard<std::mutex> lock(wal_mu_);
    if (!wal_.append(wal_copy)) {
      wal_healthy_.store(false, std::memory_order_release);
      enter_degraded("WAL append/fsync failed");
      // The batch is already queued and will be applied, but durability was
      // not achieved: answer kShed so the caller does not treat it as acked.
      return Admission::kShed;
    }
    wal_records_.fetch_add(1, std::memory_order_relaxed);
    wal_segments_.store(wal_.segment_count(), std::memory_order_relaxed);
    wal_bytes_.store(wal_.total_bytes(), std::memory_order_relaxed);
  }
  return verdict;
}

void ConnectivityService::ingest_loop() {
  try {
    ingest_loop_body();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[ecl::svc] ingest worker died: %s\n", e.what());
    ingest_alive_.store(false, std::memory_order_release);
    enter_degraded("ingest worker died");
    // Wake flush()/compact_now() waiters — progress will never advance, and
    // their predicates check ingest_alive_ precisely so they don't hang.
    progress_cv_.notify_all();
    compact_cv_.notify_all();
  }
}

void ConnectivityService::ingest_loop_body() {
  EdgeBatch batch;
  while (queue_.pop(batch)) {
    if (ECL_FAULT_POINT("svc.ingest.worker").fired()) {
      throw std::runtime_error("injected fault: svc.ingest.worker");
    }
    ECL_OBS_SPAN(span, "svc.batch", "svc");
    Timer t;
    if (opts_.ingest_delay_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(opts_.ingest_delay_us));
    }
    // Drop edges outside the vertex universe; everything else is applied.
    const std::size_t before = batch.size();
    std::erase_if(batch, [this](const Edge& e) {
      return e.first >= num_vertices_ || e.second >= num_vertices_;
    });
    if (const std::size_t invalid = before - batch.size(); invalid > 0) {
      ECL_OBS_COUNTER_ADD("ecl.svc.ingest.invalid_edges", invalid);
    }

    live_.add_edges(batch.data(), batch.size());
    {
      std::lock_guard<std::mutex> lock(log_mu_);
      log_.insert(log_.end(), batch.begin(), batch.end());
      // Incremented inside log_mu_ so a compaction (which takes its
      // watermark from the log size under the same lock) can never observe
      // watermark > applied_edges_ — the unsigned staleness arithmetic
      // depends on applied >= watermark.
      applied_edges_.fetch_add(batch.size(), std::memory_order_release);
    }
    ECL_OBS_COUNTER_ADD("ecl.svc.ingest.edges", batch.size());
    ECL_OBS_HISTOGRAM_RECORD("ecl.svc.batch_apply_us",
                             ::ecl::obs::Histogram::pow2_bounds(22),
                             static_cast<std::uint64_t>(t.micros()));
    ECL_OBS_GAUGE_SET("ecl.svc.queue.depth", static_cast<double>(queue_.size()));
    span.arg("edges", static_cast<std::uint64_t>(batch.size()));
    {
      std::lock_guard<std::mutex> lock(progress_mu_);
      applied_batches_.fetch_add(1, std::memory_order_release);
    }
    progress_cv_.notify_all();
    compact_cv_.notify_all();
  }
}

void ConnectivityService::compact_loop() {
  const auto interval = std::chrono::milliseconds(
      std::max(1, opts_.compact_interval_ms));
  for (;;) {
    bool exiting = false;
    bool want_ckpt = false;
    {
      std::unique_lock<std::mutex> lock(progress_mu_);
      compact_cv_.wait_for(lock, interval, [&] {
        const auto snap = snapshot_.load(std::memory_order_acquire);
        const std::uint64_t applied = applied_edges_.load(std::memory_order_acquire);
        return stopping_ || force_checkpoint_ || force_watermark_ > snap->watermark ||
               (applied > snap->watermark &&
                applied - snap->watermark >= opts_.compact_min_new_edges);
      });
      exiting = stopping_;
      want_ckpt = force_checkpoint_;
      force_checkpoint_ = false;
    }
    const auto snap = snapshot_.load(std::memory_order_acquire);
    const std::uint64_t applied = applied_edges_.load(std::memory_order_acquire);
    bool forced = false;
    {
      std::lock_guard<std::mutex> lock(progress_mu_);
      forced = force_watermark_ > snap->watermark;
    }
    const bool pending = applied > snap->watermark;
    if (pending && (forced || exiting ||
                    applied - snap->watermark >= opts_.compact_min_new_edges)) {
      run_compaction();
    }
    // Checkpoint after compaction so the drained/exit path persists the
    // final snapshot: a clean stop leaves a checkpoint covering everything,
    // making the *next* boot instant.
    maybe_checkpoint(want_ckpt, exiting);
    if (exiting) return;
  }
}

void ConnectivityService::maybe_checkpoint(bool force, bool exiting) {
  if (opts_.checkpoint_path.empty()) return;
  // Replicas never checkpoint: their durable state is the mirrored WAL +
  // the bootstrap checkpoint, and a checkpoint cut would rotate a WAL this
  // service does not own. Promotion flips replica_ and the next compaction
  // cycle resumes checkpointing naturally.
  if (replica_.load(std::memory_order_acquire)) return;
  const std::uint64_t applied = applied_edges_.load(std::memory_order_acquire);
  const bool progressed =
      !has_ckpt_.load(std::memory_order_acquire) ||
      applied > last_ckpt_watermark_.load(std::memory_order_relaxed);
  bool due = force;
  if (!due && exiting) due = progressed;
  if (!due && opts_.checkpoint_interval_ms > 0 && progressed && applied > 0) {
    due = now_ms() - last_ckpt_ms_.load(std::memory_order_relaxed) >=
          static_cast<std::uint64_t>(opts_.checkpoint_interval_ms);
  }
  if (due) (void)do_checkpoint();
}

bool ConnectivityService::do_checkpoint() {
  ECL_OBS_SPAN(span, "svc.checkpoint", "svc");
  Timer t;

  // The cut. Rotating under wal_mu_ seals every record appended so far;
  // reading accepted_batches_ inside the same critical section means every
  // batch whose record landed in a sealed segment is counted (submit()
  // increments before it appends, and its wal_mu_ release happens-before
  // our acquire). Waiting for applied >= that count below therefore
  // guarantees the compacted snapshot covers all sealed segments.
  std::uint64_t cut_seq = 0;
  std::uint64_t accepted_at_cut = 0;
  {
    std::lock_guard<std::mutex> lock(wal_mu_);
    cut_seq = wal_.active_seq();
    if (wal_.is_open()) {
      std::string err;
      if (!wal_.rotate(&err)) {
        wal_healthy_.store(false, std::memory_order_release);
        enter_degraded(("WAL rotate failed: " + err).c_str());
        // The sealed segments (<= cut_seq) are still intact on disk; the
        // checkpoint below remains correct and worth writing.
      }
    }
    accepted_at_cut = accepted_batches_.load(std::memory_order_acquire);
  }
  {
    std::unique_lock<std::mutex> lock(progress_mu_);
    progress_cv_.wait(lock, [&] {
      return applied_batches_.load(std::memory_order_acquire) >= accepted_at_cut ||
             !ingest_alive_.load(std::memory_order_acquire) || stopping_;
    });
    if (applied_batches_.load(std::memory_order_acquire) < accepted_at_cut) {
      // Worker died (or we are draining) with batches unapplied: a
      // checkpoint here could cover sealed records that were never folded
      // in. Skip; the WAL still has everything.
      ckpt_attempts_.fetch_add(1, std::memory_order_release);
      compact_cv_.notify_all();
      return false;
    }
  }
  run_compaction();
  const auto snap = snapshot_.load(std::memory_order_acquire);

  CheckpointData data;
  data.n = static_cast<std::uint32_t>(num_vertices_);
  data.watermark = snap->watermark;
  data.epoch = snap->epoch;
  data.wal_seq = cut_seq;
  data.labels = snap->labels;
  auto wr = ckpt_store_.write(data);
  if (!wr.ok) {
    std::fprintf(stderr, "[ecl::svc] checkpoint write failed: %s\n", wr.error.c_str());
    ckpt_attempts_.fetch_add(1, std::memory_order_release);
    compact_cv_.notify_all();
    return false;
  }

  // The checkpoint is durable: everything at or before its watermark is
  // redundant in memory. Trim log_ to the un-checkpointed suffix and make
  // the labels the new compaction base.
  {
    std::lock_guard<std::mutex> lock(log_mu_);
    const std::uint64_t drop = snap->watermark - base_watermark_;
    log_.erase(log_.begin(), log_.begin() + static_cast<std::ptrdiff_t>(drop));
    base_labels_ = std::move(data.labels);
    base_watermark_ = snap->watermark;
    ckpt_covered_seq_ = cut_seq;
    ECL_OBS_GAUGE_SET("ecl.svc.log.edges", static_cast<double>(log_.size()));
  }

  has_ckpt_.store(true, std::memory_order_release);
  ckpt_written_.fetch_add(1, std::memory_order_release);
  last_ckpt_epoch_.store(snap->epoch, std::memory_order_relaxed);
  last_ckpt_watermark_.store(snap->watermark, std::memory_order_relaxed);
  last_ckpt_ms_.store(now_ms(), std::memory_order_relaxed);
  ECL_OBS_GAUGE_SET("ecl.svc.ckpt.last_epoch", static_cast<double>(snap->epoch));
  ECL_OBS_HISTOGRAM_RECORD("ecl.svc.ckpt_ms", ::ecl::obs::Histogram::pow2_bounds(16),
                           static_cast<std::uint64_t>(t.millis()));

  // Retention: retire segments the *oldest retained* checkpoint covers, so
  // a fallback load (corrupt newest checkpoint) never misses a segment —
  // further lowered to the slowest live replica's fetch position, so a
  // lagging replica is never cut off mid-stream (a replica unseen past
  // replica_hold_ms stops holding the floor and re-bootstraps instead).
  const std::uint64_t floor =
      std::min(ckpt_store_.retention_floor_wal_seq(), replica_fetch_floor());
  {
    std::lock_guard<std::mutex> lock(wal_mu_);
    if (floor > 0 && floor != UINT64_MAX) (void)wal_.retire_through(floor);
    wal_segments_.store(wal_.segment_count(), std::memory_order_relaxed);
    wal_bytes_.store(wal_.total_bytes(), std::memory_order_relaxed);
  }
  span.arg("epoch", snap->epoch);
  span.arg("watermark", snap->watermark);
  span.arg("bytes", wr.bytes);
  ckpt_attempts_.fetch_add(1, std::memory_order_release);
  compact_cv_.notify_all();
  return true;
}

bool ConnectivityService::checkpoint_now() {
  if (opts_.checkpoint_path.empty() || stopped_.load(std::memory_order_acquire)) {
    return false;
  }
  const std::uint64_t written_before = ckpt_written_.load(std::memory_order_acquire);
  const std::uint64_t target = ckpt_attempts_.load(std::memory_order_acquire) + 1;
  {
    std::lock_guard<std::mutex> lock(progress_mu_);
    force_checkpoint_ = true;
  }
  compact_cv_.notify_all();
  std::unique_lock<std::mutex> lock(progress_mu_);
  compact_cv_.wait(lock, [&] {
    return ckpt_attempts_.load(std::memory_order_acquire) >= target ||
           stopped_.load(std::memory_order_acquire);
  });
  return ckpt_written_.load(std::memory_order_acquire) > written_before;
}

void ConnectivityService::run_compaction() {
  ECL_OBS_SPAN(span, "svc.compact", "svc");
  Timer t;
  std::vector<Edge> edges;
  std::uint64_t watermark = 0;
  {
    std::lock_guard<std::mutex> lock(log_mu_);
    edges = log_;
    // log_ holds only the suffix since the last checkpoint; the watermark
    // stays cumulative so staleness arithmetic against applied_edges_ holds.
    watermark = base_watermark_ + edges.size();
    // Seed the graph with the checkpointed components: one (v, label) edge
    // per non-root vertex reproduces them without replaying their history —
    // compaction cost is O(n + tail), not O(lifetime ingest). Folded under
    // log_mu_ because on a replica the Replicator's rebase_to_checkpoint()
    // swaps base_labels_ out from its own thread.
    if (!base_labels_.empty()) {
      for (vertex_t v = 0; v < num_vertices_; ++v) {
        if (base_labels_[v] != v) edges.emplace_back(v, base_labels_[v]);
      }
    }
  }

  auto snap = std::make_shared<Snapshot>();
  snap->epoch = snapshot_.load(std::memory_order_acquire)->epoch + 1;
  snap->watermark = watermark;
  if (num_vertices_ > 0) {
    const Graph g = build_graph(num_vertices_, edges);
    EclOptions eopts;
    eopts.num_threads = opts_.num_threads;
    snap->labels = ecl_cc_omp(g, eopts);
  }
  snap->num_components = count_labels(snap->labels);
  snap->build_ms = t.millis();

  span.arg("epoch", snap->epoch);
  span.arg("watermark", snap->watermark);
  span.arg("components", static_cast<std::uint64_t>(snap->num_components));
  snapshot_.store(snap, std::memory_order_release);

  ECL_OBS_COUNTER_ADD("ecl.svc.compactions", 1);
  ECL_OBS_GAUGE_SET("ecl.svc.epoch", static_cast<double>(snap->epoch));
  const std::uint64_t applied_now = applied_edges_.load(std::memory_order_acquire);
  ECL_OBS_GAUGE_SET("ecl.svc.staleness_edges",
                    static_cast<double>(
                        applied_now > snap->watermark ? applied_now - snap->watermark : 0));
  ECL_OBS_HISTOGRAM_RECORD("ecl.svc.compact_ms",
                           ::ecl::obs::Histogram::pow2_bounds(16),
                           static_cast<std::uint64_t>(snap->build_ms));
  {
    std::lock_guard<std::mutex> lock(progress_mu_);
  }
  compact_cv_.notify_all();
}

void ConnectivityService::flush() {
  const std::uint64_t target = accepted_batches_.load(std::memory_order_acquire);
  std::unique_lock<std::mutex> lock(progress_mu_);
  progress_cv_.wait(lock, [&] {
    return applied_batches_.load(std::memory_order_acquire) >= target ||
           !ingest_alive_.load(std::memory_order_acquire);
  });
}

std::uint64_t ConnectivityService::compact_now() {
  flush();
  const std::uint64_t target = applied_edges_.load(std::memory_order_acquire);
  {
    std::lock_guard<std::mutex> lock(progress_mu_);
    force_watermark_ = std::max(force_watermark_, target);
  }
  compact_cv_.notify_all();
  std::unique_lock<std::mutex> lock(progress_mu_);
  compact_cv_.wait(lock, [&] {
    return snapshot_.load(std::memory_order_acquire)->watermark >= target ||
           stopped_.load(std::memory_order_acquire);
  });
  return snapshot_.load(std::memory_order_acquire)->epoch;
}

void ConnectivityService::stop() {
  // Serializes concurrent stop() calls (and the destructor after an explicit
  // stop()): exactly one caller joins the threads, and later/losing callers
  // block here until the drain has fully completed — concurrent join() on
  // one std::thread would be a data race.
  std::lock_guard<std::mutex> stop_lock(stop_mu_);
  if (stopped_.load(std::memory_order_acquire)) return;
  stopped_.store(true, std::memory_order_release);
  queue_.close();
  {
    std::unique_lock<std::mutex> lock(progress_mu_);
    progress_cv_.wait(lock, [&] { return ingest_done_; });
    stopping_ = true;
  }
  // Both cvs, *before* the wait: the compaction task may be blocked in
  // do_checkpoint()'s progress_cv_ wait, whose predicate reads stopping_.
  compact_cv_.notify_all();
  progress_cv_.notify_all();
  {
    std::unique_lock<std::mutex> lock(progress_mu_);
    compact_cv_.wait(lock, [&] { return compact_done_; });
  }
  progress_cv_.notify_all();
  compact_cv_.notify_all();
  exec_.drain();
  {
    std::lock_guard<std::mutex> lock(wal_mu_);
    wal_.close();  // fsyncs any unsynced tail (per policy) before closing
  }
}

bool ConnectivityService::connected(vertex_t u, vertex_t v, ReadMode mode) {
  if (u >= num_vertices_ || v >= num_vertices_) return false;
  ECL_OBS_COUNTER_ADD("ecl.svc.reads.connected", 1);
  if (mode == ReadMode::kFresh) return live_.connected(u, v);
  const auto snap = snapshot_.load(std::memory_order_acquire);
  return snap->connected(u, v);
}

vertex_t ConnectivityService::component_of(vertex_t v, ReadMode mode) {
  if (v >= num_vertices_) return kInvalidVertex;
  ECL_OBS_COUNTER_ADD("ecl.svc.reads.component_of", 1);
  if (mode == ReadMode::kFresh) return live_.component_of(v);
  const auto snap = snapshot_.load(std::memory_order_acquire);
  return snap->labels[v];
}

vertex_t ConnectivityService::component_count() const {
  return snapshot_.load(std::memory_order_acquire)->num_components;
}

SnapshotPtr ConnectivityService::snapshot() const {
  return snapshot_.load(std::memory_order_acquire);
}

ServiceStats ConnectivityService::stats() const {
  const auto snap = snapshot_.load(std::memory_order_acquire);
  ServiceStats s;
  s.epoch = snap->epoch;
  s.watermark = snap->watermark;
  s.applied_edges = applied_edges_.load(std::memory_order_acquire);
  s.accepted_batches = accepted_batches_.load(std::memory_order_relaxed);
  s.applied_batches = applied_batches_.load(std::memory_order_relaxed);
  s.shed_batches = shed_batches_.load(std::memory_order_relaxed);
  s.queue_depth = queue_.size();
  s.num_components = snap->num_components;
  s.num_vertices = num_vertices_;
  s.checkpoints = ckpt_written_.load(std::memory_order_relaxed);
  s.last_checkpoint_epoch = last_ckpt_epoch_.load(std::memory_order_relaxed);
  s.wal_segments = wal_segments_.load(std::memory_order_relaxed);
  s.wal_bytes = wal_bytes_.load(std::memory_order_relaxed);
  s.degraded = degraded_.load(std::memory_order_acquire);
  s.uptime_ms = now_ms();
  s.replayed_edges = replayed_edges_;
  return s;
}

ServiceHealth ConnectivityService::health() const {
  ServiceHealth h;
  h.degraded = degraded_.load(std::memory_order_acquire);
  h.ingest_worker_alive = ingest_alive_.load(std::memory_order_acquire);
  h.wal_enabled = !opts_.wal_path.empty();
  h.wal_healthy = wal_healthy_.load(std::memory_order_acquire);
  h.queue_depth = queue_.size();
  const auto snap = snapshot_.load(std::memory_order_acquire);
  const std::uint64_t applied = applied_edges_.load(std::memory_order_acquire);
  h.staleness_edges = applied > snap->watermark ? applied - snap->watermark : 0;
  const std::uint64_t accepted = accepted_batches_.load(std::memory_order_relaxed);
  const std::uint64_t done = applied_batches_.load(std::memory_order_relaxed);
  h.ingest_lag_batches = accepted > done ? accepted - done : 0;
  h.wal_records = wal_records_.load(std::memory_order_relaxed);
  h.replayed_edges = replayed_edges_;
  h.degraded_entries = degraded_entries_.load(std::memory_order_relaxed);
  h.checkpoint_enabled = !opts_.checkpoint_path.empty();
  h.checkpoints_written = ckpt_written_.load(std::memory_order_relaxed);
  h.last_checkpoint_epoch = last_ckpt_epoch_.load(std::memory_order_relaxed);
  h.last_checkpoint_age_ms =
      has_ckpt_.load(std::memory_order_acquire)
          ? now_ms() - last_ckpt_ms_.load(std::memory_order_relaxed)
          : 0;
  h.wal_segments = wal_segments_.load(std::memory_order_relaxed);
  h.wal_bytes = wal_bytes_.load(std::memory_order_relaxed);
  h.replica = replica_.load(std::memory_order_acquire);
  h.replica_lag_seq = repl_lag_seq_.load(std::memory_order_relaxed);
  h.replica_lag_ms = repl_lag_ms_.load(std::memory_order_relaxed);
  h.replicas_connected = replicas_connected_.load(std::memory_order_relaxed);
  return h;
}

// ------------------------------------------------------- replication ----

void ConnectivityService::apply_replicated(EdgeBatch batch) {
  // Mirrors ingest_loop_body()'s apply path so every downstream invariant —
  // compaction triggers, staleness gauges, flush()/health() batch
  // arithmetic — holds for replicated writes too.
  accepted_batches_.fetch_add(1, std::memory_order_relaxed);
  const std::size_t before = batch.size();
  std::erase_if(batch, [this](const Edge& e) {
    return e.first >= num_vertices_ || e.second >= num_vertices_;
  });
  if (const std::size_t invalid = before - batch.size(); invalid > 0) {
    ECL_OBS_COUNTER_ADD("ecl.svc.ingest.invalid_edges", invalid);
  }
  live_.add_edges(batch.data(), batch.size());
  {
    std::lock_guard<std::mutex> lock(log_mu_);
    log_.insert(log_.end(), batch.begin(), batch.end());
    applied_edges_.fetch_add(batch.size(), std::memory_order_release);
  }
  wal_records_.fetch_add(1, std::memory_order_relaxed);
  ECL_OBS_COUNTER_ADD("ecl.svc.replica.applied_edges", batch.size());
  {
    std::lock_guard<std::mutex> lock(progress_mu_);
    applied_batches_.fetch_add(1, std::memory_order_release);
  }
  progress_cv_.notify_all();
  compact_cv_.notify_all();
}

void ConnectivityService::set_replication_lag(std::uint64_t lag_seq,
                                              std::uint64_t lag_ms) {
  repl_lag_seq_.store(lag_seq, std::memory_order_relaxed);
  repl_lag_ms_.store(lag_ms, std::memory_order_relaxed);
  ECL_OBS_GAUGE_SET("ecl.svc.replica.lag_seq", static_cast<double>(lag_seq));
  ECL_OBS_GAUGE_SET("ecl.svc.replica.lag_ms", static_cast<double>(lag_ms));
}

void ConnectivityService::set_replica_wal_stats(std::uint64_t segments,
                                                std::uint64_t bytes) {
  wal_segments_.store(segments, std::memory_order_relaxed);
  wal_bytes_.store(bytes, std::memory_order_relaxed);
}

bool ConnectivityService::rebase_to_checkpoint(const CheckpointData& data) {
  if (!replica_.load(std::memory_order_acquire)) return false;
  if (data.n != num_vertices_) return false;
  // Folding the checkpoint's components into the live union-find is safe
  // even though some may already be present: unions are idempotent, and
  // connectivity on a replica only ever grows.
  std::vector<Edge> fold;
  for (vertex_t v = 0; v < num_vertices_; ++v) {
    if (data.labels[v] != v) fold.emplace_back(v, data.labels[v]);
  }
  live_.add_edges(fold.data(), fold.size());
  {
    std::lock_guard<std::mutex> lock(log_mu_);
    if (data.watermark < base_watermark_) return false;
    base_labels_ = data.labels;
    base_watermark_ = data.watermark;
    log_.clear();
    const std::uint64_t applied = applied_edges_.load(std::memory_order_acquire);
    applied_edges_.store(std::max(applied, data.watermark),
                         std::memory_order_release);
    ckpt_covered_seq_ = data.wal_seq;
  }
  has_ckpt_.store(true, std::memory_order_release);
  last_ckpt_epoch_.store(data.epoch, std::memory_order_relaxed);
  last_ckpt_watermark_.store(data.watermark, std::memory_order_relaxed);
  last_ckpt_ms_.store(now_ms(), std::memory_order_relaxed);
  ECL_OBS_COUNTER_ADD("ecl.svc.replica.rebases", 1);
  // The next compaction republishes a snapshot covering the new base (epoch
  // stays monotone; publishing the checkpoint labels directly could move
  // the epoch backwards relative to what readers already saw).
  compact_cv_.notify_all();
  return true;
}

std::uint64_t ConnectivityService::checkpoint_covered_wal_seq() {
  std::lock_guard<std::mutex> lock(log_mu_);
  return ckpt_covered_seq_;
}

std::uint64_t ConnectivityService::replica_fetch_floor() {
  const std::uint64_t now = now_ms();
  const std::uint64_t hold =
      static_cast<std::uint64_t>(std::max(0, opts_.replica_hold_ms));
  std::uint64_t floor = UINT64_MAX;
  std::size_t live = 0;
  {
    std::lock_guard<std::mutex> lock(replicas_mu_);
    for (auto it = replicas_.begin(); it != replicas_.end();) {
      if (now - it->second.last_seen_ms > hold) {
        it = replicas_.erase(it);  // dead replica: stop holding retention
        continue;
      }
      ++live;
      const std::uint64_t need = it->second.fetch_seq;
      floor = std::min(floor, need > 0 ? need - 1 : 0);
      ++it;
    }
  }
  replicas_connected_.store(live, std::memory_order_relaxed);
  ECL_OBS_GAUGE_SET("ecl.svc.replica.connected", static_cast<double>(live));
  return floor;
}

CkptImage ConnectivityService::fetch_checkpoint_image() const {
  CkptImage out;
  if (opts_.checkpoint_path.empty()) return out;
  // Checkpoint files are written tmp -> rename and only ever unlinked, never
  // modified in place, so a successfully opened file is immutable. Retry by
  // listing again if the newest file vanishes under us (keep-2 rotation).
  for (int attempt = 0; attempt < 3; ++attempt) {
    auto files = list_numbered_files(opts_.checkpoint_path);
    bool raced = false;
    for (auto it = files.rbegin(); it != files.rend(); ++it) {
      CheckpointData data;
      std::string err;
      if (!CheckpointStore::read_file(it->path, &data, &err)) {
        struct stat st{};
        if (::stat(it->path.c_str(), &st) != 0 && errno == ENOENT) {
          raced = true;
          break;  // rotation won; take a fresh listing
        }
        continue;  // genuinely invalid file: fall back to the next-newest
      }
      const int fd = ::open(it->path.c_str(), O_RDONLY | O_CLOEXEC);
      if (fd < 0) {
        raced = errno == ENOENT;
        if (raced) break;
        continue;
      }
      struct stat st{};
      if (::fstat(fd, &st) != 0) {
        ::close(fd);
        continue;
      }
      std::vector<std::uint8_t> image(static_cast<std::size_t>(st.st_size));
      std::size_t done = 0;
      bool read_ok = true;
      while (done < image.size()) {
        const ssize_t r = ::read(fd, image.data() + done, image.size() - done);
        if (r < 0) {
          if (errno == EINTR) continue;
          read_ok = false;
          break;
        }
        if (r == 0) break;
        done += static_cast<std::size_t>(r);
      }
      ::close(fd);
      if (!read_ok || done != image.size()) continue;
      out.has = true;
      out.seq = it->seq;
      out.wal_seq = data.wal_seq;
      out.image = std::move(image);
      ECL_OBS_COUNTER_ADD("ecl.svc.replica.ckpt_serves", 1);
      return out;
    }
    if (!raced) break;
  }
  return out;
}

WalChunk ConnectivityService::fetch_wal_chunk(std::uint64_t replica_id,
                                              std::uint64_t seq, std::uint64_t offset,
                                              std::uint32_t max_bytes) {
  WalChunk out;
  out.seq = seq;
  out.offset = offset;
  if (opts_.wal_path.empty() || seq == 0) return out;
  std::uint64_t active = 0;
  {
    std::lock_guard<std::mutex> lock(wal_mu_);
    active = wal_.active_seq();
  }
  if (replica_id != 0) {
    // Register/refresh before reading: retention must know about this
    // replica before the next checkpoint's retirement pass runs. Stale
    // peers are pruned here too (not just on the checkpoint path) so the
    // connected count stays honest on a primary that never checkpoints.
    const std::uint64_t now = now_ms();
    const auto hold = static_cast<std::uint64_t>(
        opts_.replica_hold_ms > 0 ? opts_.replica_hold_ms : 0);
    std::lock_guard<std::mutex> lock(replicas_mu_);
    auto& peer = replicas_[replica_id];
    peer.fetch_seq = seq;
    peer.last_seen_ms = now;
    for (auto it = replicas_.begin(); it != replicas_.end();) {
      if (now - it->second.last_seen_ms > hold) {
        it = replicas_.erase(it);
      } else {
        ++it;
      }
    }
    replicas_connected_.store(replicas_.size(), std::memory_order_release);
    ECL_OBS_GAUGE_SET("ecl.svc.replica.connected",
                      static_cast<double>(replicas_.size()));
  }
  // File I/O deliberately outside wal_mu_: a slow disk serving a replica
  // must not stall ingest appends. WalSegmentReader is rotation/retirement
  // safe on its own (satellite: open-by-name + ENOENT retry).
  auto chunk = WalSegmentReader::read(opts_.wal_path, seq, offset, max_bytes);
  if (!chunk.ok) return out;  // server answers kError
  out.ok = true;
  out.retired = chunk.retired;
  out.sealed = chunk.exists && seq < active;
  out.segment_bytes = chunk.segment_bytes;
  out.active_seq = active;
  out.data = std::move(chunk.data);
  ECL_OBS_COUNTER_ADD("ecl.svc.replica.wal_bytes_served", out.data.size());
  return out;
}

bool ConnectivityService::promote(std::string* err) {
  std::lock_guard<std::mutex> promote_lock(promote_mu_);
  if (!replica_.load(std::memory_order_acquire)) return true;  // idempotent
  if (stopped_.load(std::memory_order_acquire)) {
    if (err != nullptr) *err = "promote: service is stopped";
    return false;
  }
  std::uint64_t covered = 0;
  {
    std::lock_guard<std::mutex> lock(log_mu_);
    covered = ckpt_covered_seq_;
  }
  {
    std::lock_guard<std::mutex> lock(wal_mu_);
    if (!opts_.wal_path.empty()) {
      // The mirror's final segment may end mid-record (the Replicator was
      // stopped between chunks). Those bytes were never parsed or applied,
      // so cutting them loses nothing — and the WAL must end on a record
      // boundary before it can take appends again.
      const auto segments = list_numbered_files(opts_.wal_path);
      if (!segments.empty()) {
        auto rep = WriteAheadLog::replay_and_truncate(segments.back().path,
                                                      /*truncate_tail=*/true);
        if (!rep.ok || rep.truncate_failed) {
          if (err != nullptr) {
            *err = "promote: mirrored WAL tail unusable: " + rep.error;
          }
          return false;
        }
      }
      SegmentedWalOptions sopts;
      sopts.wal = opts_.wal;
      sopts.segment_bytes = opts_.wal_segment_bytes;
      std::string werr;
      if (!wal_.open(opts_.wal_path, sopts, covered + 1, &werr)) {
        if (err != nullptr) *err = "promote: WAL open failed: " + werr;
        return false;
      }
      wal_segments_.store(wal_.segment_count(), std::memory_order_relaxed);
      wal_bytes_.store(wal_.total_bytes(), std::memory_order_relaxed);
    }
  }
  replica_.store(false, std::memory_order_release);
  set_replication_lag(0, 0);
  ECL_OBS_COUNTER_ADD("ecl.svc.replica.promotions", 1);
  ECL_OBS_GAUGE_SET("ecl.svc.role", 0.0);
  std::fprintf(stderr, "[ecl::svc] promoted to primary (wal tail seq >= %llu)\n",
               static_cast<unsigned long long>(covered + 1));
  // Wake the compaction thread: checkpointing (disabled while a replica)
  // resumes on its next cycle.
  compact_cv_.notify_all();
  return true;
}

}  // namespace ecl::svc
