#include "svc/service.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "common/timer.h"
#include "core/ecl_cc.h"
#include "fault/fault.h"
#include "graph/builder.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ecl::svc {

namespace {

vertex_t count_labels(const std::vector<vertex_t>& labels) {
  vertex_t components = 0;
  for (vertex_t v = 0; v < static_cast<vertex_t>(labels.size()); ++v) {
    if (labels[v] == v) ++components;
  }
  return components;
}

SnapshotPtr make_identity_snapshot(vertex_t n) {
  auto snap = std::make_shared<Snapshot>();
  snap->labels.resize(n);
  for (vertex_t v = 0; v < n; ++v) snap->labels[v] = v;
  snap->num_components = n;
  return snap;
}

}  // namespace

ConnectivityService::ConnectivityService(vertex_t n, ServiceOptions opts)
    : num_vertices_(n), opts_(opts), live_(n), queue_(opts.queue_capacity) {
  snapshot_.store(make_identity_snapshot(n));
  init_wal();
  start_threads();
}

ConnectivityService::ConnectivityService(const Graph& seed, ServiceOptions opts)
    : num_vertices_(seed.num_vertices()),
      opts_(opts),
      live_(seed),
      queue_(opts.queue_capacity) {
  for (vertex_t v = 0; v < num_vertices_; ++v) {
    for (const vertex_t u : seed.neighbors(v)) {
      if (u < v) log_.emplace_back(v, u);
    }
  }
  applied_edges_.store(log_.size());

  auto snap = std::make_shared<Snapshot>();
  snap->watermark = log_.size();
  EclOptions eopts;
  eopts.num_threads = opts_.num_threads;
  Timer t;
  snap->labels = num_vertices_ > 0 ? ecl_cc_omp(seed, eopts) : std::vector<vertex_t>{};
  snap->build_ms = t.millis();
  snap->num_components = count_labels(snap->labels);
  snapshot_.store(std::move(snap));
  init_wal();
  start_threads();
}

void ConnectivityService::init_wal() {
  if (opts_.wal_path.empty()) return;
  auto rep = WriteAheadLog::replay_and_truncate(opts_.wal_path);
  if (!rep.ok) {
    throw std::runtime_error("ecl::svc WAL replay failed: " + rep.error);
  }
  if (!rep.edges.empty()) {
    std::erase_if(rep.edges, [this](const Edge& e) {
      return e.first >= num_vertices_ || e.second >= num_vertices_;
    });
    live_.add_edges(rep.edges.data(), rep.edges.size());
    {
      std::lock_guard<std::mutex> lock(log_mu_);
      log_.insert(log_.end(), rep.edges.begin(), rep.edges.end());
      applied_edges_.fetch_add(rep.edges.size(), std::memory_order_release);
    }
    replayed_edges_ = rep.edges.size();
    // Synchronous: threads are not running yet, and the first published
    // snapshot must already reflect everything the WAL recovered.
    run_compaction();
  }
  std::string err;
  if (!wal_.open(opts_.wal_path, opts_.wal, &err)) {
    throw std::runtime_error("ecl::svc WAL open failed: " + err);
  }
}

void ConnectivityService::enter_degraded(const char* reason) {
  if (!degraded_.exchange(true, std::memory_order_acq_rel)) {
    degraded_entries_.fetch_add(1, std::memory_order_relaxed);
    ECL_OBS_COUNTER_ADD("ecl.svc.degraded.entries", 1);
    std::fprintf(stderr, "[ecl::svc] entering read-only degraded mode: %s\n", reason);
  }
}

ConnectivityService::~ConnectivityService() { stop(); }

void ConnectivityService::start_threads() {
  ingest_thread_ = std::thread([this] { ingest_loop(); });
  compact_thread_ = std::thread([this] { compact_loop(); });
}

Admission ConnectivityService::submit(EdgeBatch batch) {
  if (stopped_.load(std::memory_order_acquire)) return Admission::kClosed;
  if (degraded_.load(std::memory_order_acquire)) {
    // Read-only mode: shed instead of accepting writes we can neither
    // durably log nor (if the worker died) ever apply.
    shed_batches_.fetch_add(1, std::memory_order_relaxed);
    ECL_OBS_COUNTER_ADD("ecl.svc.ingest.shed", 1);
    return Admission::kShed;
  }
  const bool wal_on = wal_healthy_.load(std::memory_order_acquire) && !opts_.wal_path.empty();
  EdgeBatch wal_copy;
  if (wal_on) wal_copy = batch;
  const Admission verdict = queue_.try_push(std::move(batch));
  switch (verdict) {
    case Admission::kAccepted:
      accepted_batches_.fetch_add(1, std::memory_order_relaxed);
      ECL_OBS_COUNTER_ADD("ecl.svc.ingest.batches", 1);
      break;
    case Admission::kShed:
      shed_batches_.fetch_add(1, std::memory_order_relaxed);
      ECL_OBS_COUNTER_ADD("ecl.svc.ingest.shed", 1);
      break;
    case Admission::kClosed:
      break;
  }
  ECL_OBS_GAUGE_SET("ecl.svc.queue.depth", static_cast<double>(queue_.size()));
  if (verdict == Admission::kAccepted && wal_on) {
    std::lock_guard<std::mutex> lock(wal_mu_);
    if (!wal_.append(wal_copy)) {
      wal_healthy_.store(false, std::memory_order_release);
      enter_degraded("WAL append/fsync failed");
      // The batch is already queued and will be applied, but durability was
      // not achieved: answer kShed so the caller does not treat it as acked.
      return Admission::kShed;
    }
    wal_records_.fetch_add(1, std::memory_order_relaxed);
  }
  return verdict;
}

void ConnectivityService::ingest_loop() {
  try {
    ingest_loop_body();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[ecl::svc] ingest worker died: %s\n", e.what());
    ingest_alive_.store(false, std::memory_order_release);
    enter_degraded("ingest worker died");
    // Wake flush()/compact_now() waiters — progress will never advance, and
    // their predicates check ingest_alive_ precisely so they don't hang.
    progress_cv_.notify_all();
    compact_cv_.notify_all();
  }
}

void ConnectivityService::ingest_loop_body() {
  EdgeBatch batch;
  while (queue_.pop(batch)) {
    if (ECL_FAULT_POINT("svc.ingest.worker").fired()) {
      throw std::runtime_error("injected fault: svc.ingest.worker");
    }
    ECL_OBS_SPAN(span, "svc.batch", "svc");
    Timer t;
    if (opts_.ingest_delay_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(opts_.ingest_delay_us));
    }
    // Drop edges outside the vertex universe; everything else is applied.
    const std::size_t before = batch.size();
    std::erase_if(batch, [this](const Edge& e) {
      return e.first >= num_vertices_ || e.second >= num_vertices_;
    });
    if (const std::size_t invalid = before - batch.size(); invalid > 0) {
      ECL_OBS_COUNTER_ADD("ecl.svc.ingest.invalid_edges", invalid);
    }

    live_.add_edges(batch.data(), batch.size());
    {
      std::lock_guard<std::mutex> lock(log_mu_);
      log_.insert(log_.end(), batch.begin(), batch.end());
      // Incremented inside log_mu_ so a compaction (which takes its
      // watermark from the log size under the same lock) can never observe
      // watermark > applied_edges_ — the unsigned staleness arithmetic
      // depends on applied >= watermark.
      applied_edges_.fetch_add(batch.size(), std::memory_order_release);
    }
    ECL_OBS_COUNTER_ADD("ecl.svc.ingest.edges", batch.size());
    ECL_OBS_HISTOGRAM_RECORD("ecl.svc.batch_apply_us",
                             ::ecl::obs::Histogram::pow2_bounds(22),
                             static_cast<std::uint64_t>(t.micros()));
    ECL_OBS_GAUGE_SET("ecl.svc.queue.depth", static_cast<double>(queue_.size()));
    span.arg("edges", static_cast<std::uint64_t>(batch.size()));
    {
      std::lock_guard<std::mutex> lock(progress_mu_);
      applied_batches_.fetch_add(1, std::memory_order_release);
    }
    progress_cv_.notify_all();
    compact_cv_.notify_all();
  }
}

void ConnectivityService::compact_loop() {
  const auto interval = std::chrono::milliseconds(
      std::max(1, opts_.compact_interval_ms));
  for (;;) {
    bool exiting = false;
    {
      std::unique_lock<std::mutex> lock(progress_mu_);
      compact_cv_.wait_for(lock, interval, [&] {
        const auto snap = snapshot_.load(std::memory_order_acquire);
        const std::uint64_t applied = applied_edges_.load(std::memory_order_acquire);
        return stopping_ || force_watermark_ > snap->watermark ||
               (applied > snap->watermark &&
                applied - snap->watermark >= opts_.compact_min_new_edges);
      });
      exiting = stopping_;
    }
    const auto snap = snapshot_.load(std::memory_order_acquire);
    const std::uint64_t applied = applied_edges_.load(std::memory_order_acquire);
    bool forced = false;
    {
      std::lock_guard<std::mutex> lock(progress_mu_);
      forced = force_watermark_ > snap->watermark;
    }
    const bool pending = applied > snap->watermark;
    if (pending && (forced || exiting ||
                    applied - snap->watermark >= opts_.compact_min_new_edges)) {
      run_compaction();
    }
    if (exiting) return;
  }
}

void ConnectivityService::run_compaction() {
  ECL_OBS_SPAN(span, "svc.compact", "svc");
  Timer t;
  std::vector<Edge> edges;
  {
    std::lock_guard<std::mutex> lock(log_mu_);
    edges = log_;
  }
  const std::uint64_t watermark = edges.size();

  auto snap = std::make_shared<Snapshot>();
  snap->epoch = snapshot_.load(std::memory_order_acquire)->epoch + 1;
  snap->watermark = watermark;
  if (num_vertices_ > 0) {
    const Graph g = build_graph(num_vertices_, edges);
    EclOptions eopts;
    eopts.num_threads = opts_.num_threads;
    snap->labels = ecl_cc_omp(g, eopts);
  }
  snap->num_components = count_labels(snap->labels);
  snap->build_ms = t.millis();

  span.arg("epoch", snap->epoch);
  span.arg("watermark", snap->watermark);
  span.arg("components", static_cast<std::uint64_t>(snap->num_components));
  snapshot_.store(snap, std::memory_order_release);

  ECL_OBS_COUNTER_ADD("ecl.svc.compactions", 1);
  ECL_OBS_GAUGE_SET("ecl.svc.epoch", static_cast<double>(snap->epoch));
  const std::uint64_t applied_now = applied_edges_.load(std::memory_order_acquire);
  ECL_OBS_GAUGE_SET("ecl.svc.staleness_edges",
                    static_cast<double>(
                        applied_now > snap->watermark ? applied_now - snap->watermark : 0));
  ECL_OBS_HISTOGRAM_RECORD("ecl.svc.compact_ms",
                           ::ecl::obs::Histogram::pow2_bounds(16),
                           static_cast<std::uint64_t>(snap->build_ms));
  {
    std::lock_guard<std::mutex> lock(progress_mu_);
  }
  compact_cv_.notify_all();
}

void ConnectivityService::flush() {
  const std::uint64_t target = accepted_batches_.load(std::memory_order_acquire);
  std::unique_lock<std::mutex> lock(progress_mu_);
  progress_cv_.wait(lock, [&] {
    return applied_batches_.load(std::memory_order_acquire) >= target ||
           !ingest_alive_.load(std::memory_order_acquire);
  });
}

std::uint64_t ConnectivityService::compact_now() {
  flush();
  const std::uint64_t target = applied_edges_.load(std::memory_order_acquire);
  {
    std::lock_guard<std::mutex> lock(progress_mu_);
    force_watermark_ = std::max(force_watermark_, target);
  }
  compact_cv_.notify_all();
  std::unique_lock<std::mutex> lock(progress_mu_);
  compact_cv_.wait(lock, [&] {
    return snapshot_.load(std::memory_order_acquire)->watermark >= target ||
           stopped_.load(std::memory_order_acquire);
  });
  return snapshot_.load(std::memory_order_acquire)->epoch;
}

void ConnectivityService::stop() {
  // Serializes concurrent stop() calls (and the destructor after an explicit
  // stop()): exactly one caller joins the threads, and later/losing callers
  // block here until the drain has fully completed — concurrent join() on
  // one std::thread would be a data race.
  std::lock_guard<std::mutex> stop_lock(stop_mu_);
  if (stopped_.load(std::memory_order_acquire)) return;
  stopped_.store(true, std::memory_order_release);
  queue_.close();
  if (ingest_thread_.joinable()) ingest_thread_.join();
  {
    std::lock_guard<std::mutex> lock(progress_mu_);
    stopping_ = true;
  }
  compact_cv_.notify_all();
  if (compact_thread_.joinable()) compact_thread_.join();
  progress_cv_.notify_all();
  compact_cv_.notify_all();
  {
    std::lock_guard<std::mutex> lock(wal_mu_);
    wal_.close();  // fsyncs any unsynced tail (per policy) before closing
  }
}

bool ConnectivityService::connected(vertex_t u, vertex_t v, ReadMode mode) {
  if (u >= num_vertices_ || v >= num_vertices_) return false;
  ECL_OBS_COUNTER_ADD("ecl.svc.reads.connected", 1);
  if (mode == ReadMode::kFresh) return live_.connected(u, v);
  const auto snap = snapshot_.load(std::memory_order_acquire);
  return snap->connected(u, v);
}

vertex_t ConnectivityService::component_of(vertex_t v, ReadMode mode) {
  if (v >= num_vertices_) return kInvalidVertex;
  ECL_OBS_COUNTER_ADD("ecl.svc.reads.component_of", 1);
  if (mode == ReadMode::kFresh) return live_.component_of(v);
  const auto snap = snapshot_.load(std::memory_order_acquire);
  return snap->labels[v];
}

vertex_t ConnectivityService::component_count() const {
  return snapshot_.load(std::memory_order_acquire)->num_components;
}

SnapshotPtr ConnectivityService::snapshot() const {
  return snapshot_.load(std::memory_order_acquire);
}

ServiceStats ConnectivityService::stats() const {
  const auto snap = snapshot_.load(std::memory_order_acquire);
  ServiceStats s;
  s.epoch = snap->epoch;
  s.watermark = snap->watermark;
  s.applied_edges = applied_edges_.load(std::memory_order_acquire);
  s.accepted_batches = accepted_batches_.load(std::memory_order_relaxed);
  s.applied_batches = applied_batches_.load(std::memory_order_relaxed);
  s.shed_batches = shed_batches_.load(std::memory_order_relaxed);
  s.queue_depth = queue_.size();
  s.num_components = snap->num_components;
  s.num_vertices = num_vertices_;
  return s;
}

ServiceHealth ConnectivityService::health() const {
  ServiceHealth h;
  h.degraded = degraded_.load(std::memory_order_acquire);
  h.ingest_worker_alive = ingest_alive_.load(std::memory_order_acquire);
  h.wal_enabled = !opts_.wal_path.empty();
  h.wal_healthy = wal_healthy_.load(std::memory_order_acquire);
  h.queue_depth = queue_.size();
  const auto snap = snapshot_.load(std::memory_order_acquire);
  const std::uint64_t applied = applied_edges_.load(std::memory_order_acquire);
  h.staleness_edges = applied > snap->watermark ? applied - snap->watermark : 0;
  const std::uint64_t accepted = accepted_batches_.load(std::memory_order_relaxed);
  const std::uint64_t done = applied_batches_.load(std::memory_order_relaxed);
  h.ingest_lag_batches = accepted > done ? accepted - done : 0;
  h.wal_records = wal_records_.load(std::memory_order_relaxed);
  h.replayed_edges = replayed_edges_;
  h.degraded_entries = degraded_entries_.load(std::memory_order_relaxed);
  return h;
}

}  // namespace ecl::svc
