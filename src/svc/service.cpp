#include "svc/service.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <thread>
#include <utility>

#include "common/timer.h"
#include "core/ecl_cc.h"
#include "fault/fault.h"
#include "graph/builder.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ecl::svc {

namespace {

vertex_t count_labels(const std::vector<vertex_t>& labels) {
  vertex_t components = 0;
  for (vertex_t v = 0; v < static_cast<vertex_t>(labels.size()); ++v) {
    if (labels[v] == v) ++components;
  }
  return components;
}

SnapshotPtr make_identity_snapshot(vertex_t n) {
  auto snap = std::make_shared<Snapshot>();
  snap->labels.resize(n);
  for (vertex_t v = 0; v < n; ++v) snap->labels[v] = v;
  snap->num_components = n;
  return snap;
}

}  // namespace

ConnectivityService::ConnectivityService(vertex_t n, ServiceOptions opts)
    : num_vertices_(n), opts_(opts), live_(n), queue_(opts.queue_capacity) {
  snapshot_.store(make_identity_snapshot(n));
  init_durability();
  start_threads();
}

ConnectivityService::ConnectivityService(const Graph& seed, ServiceOptions opts)
    : num_vertices_(seed.num_vertices()),
      opts_(opts),
      live_(seed),
      queue_(opts.queue_capacity) {
  for (vertex_t v = 0; v < num_vertices_; ++v) {
    for (const vertex_t u : seed.neighbors(v)) {
      if (u < v) log_.emplace_back(v, u);
    }
  }
  applied_edges_.store(log_.size());

  auto snap = std::make_shared<Snapshot>();
  snap->watermark = log_.size();
  EclOptions eopts;
  eopts.num_threads = opts_.num_threads;
  Timer t;
  snap->labels = num_vertices_ > 0 ? ecl_cc_omp(seed, eopts) : std::vector<vertex_t>{};
  snap->build_ms = t.millis();
  snap->num_components = count_labels(snap->labels);
  snapshot_.store(std::move(snap));
  init_durability();
  start_threads();
}

std::uint64_t ConnectivityService::now_ms() const {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::milliseconds>(
                                        std::chrono::steady_clock::now() - start_tp_)
                                        .count());
}

void ConnectivityService::init_durability() {
  std::uint64_t covered_seq = 0;  // WAL segments <= this are in the checkpoint
  if (!opts_.checkpoint_path.empty()) {
    ckpt_store_.open(opts_.checkpoint_path);
    auto load = ckpt_store_.load_latest_valid();
    if (load.found_any && !load.ok) {
      std::fprintf(stderr,
                   "[ecl::svc] no valid checkpoint (%s); falling back to full WAL replay\n",
                   load.error.c_str());
    }
    if (load.ok && load.data.n != num_vertices_) {
      throw std::runtime_error(
          "ecl::svc checkpoint vertex count mismatch: checkpoint has " +
          std::to_string(load.data.n) + ", service has " +
          std::to_string(num_vertices_));
    }
    if (load.ok && load.data.watermark < applied_edges_.load(std::memory_order_acquire)) {
      // Predates the seed graph this ctor was given: folding it in would
      // drop seed edges from the watermark accounting. Start from the seed.
      std::fprintf(stderr,
                   "[ecl::svc] ignoring checkpoint older than the seed graph\n");
    } else if (load.ok) {
      base_labels_ = std::move(load.data.labels);
      base_watermark_ = load.data.watermark;
      covered_seq = load.data.wal_seq;
      // Fold the checkpointed components into the live union-find: one
      // (v, label) union per non-root vertex reconstructs them exactly.
      std::vector<Edge> fold;
      for (vertex_t v = 0; v < num_vertices_; ++v) {
        if (base_labels_[v] != v) fold.emplace_back(v, base_labels_[v]);
      }
      live_.add_edges(fold.data(), fold.size());
      {
        std::lock_guard<std::mutex> lock(log_mu_);
        log_.clear();  // seed edges (if any) are covered by the checkpoint
        applied_edges_.store(base_watermark_, std::memory_order_release);
      }
      // Publish the checkpoint's labels directly — no ECL-CC run over
      // history. This is the bounded-recovery payoff: restart cost is
      // checkpoint load + tail replay, independent of lifetime ingest.
      auto snap = std::make_shared<Snapshot>();
      snap->epoch = load.data.epoch;
      snap->watermark = base_watermark_;
      snap->labels = base_labels_;
      snap->num_components = count_labels(snap->labels);
      snapshot_.store(std::move(snap));
      has_ckpt_.store(true, std::memory_order_release);
      last_ckpt_epoch_.store(load.data.epoch, std::memory_order_relaxed);
      last_ckpt_watermark_.store(base_watermark_, std::memory_order_relaxed);
      last_ckpt_ms_.store(now_ms(), std::memory_order_relaxed);
      ECL_OBS_COUNTER_ADD("ecl.svc.ckpt.loads", 1);
      ECL_OBS_COUNTER_ADD("ecl.svc.ckpt.loaded_edges", base_watermark_);
    }
  }

  if (opts_.wal_path.empty()) return;
  std::string err;
  if (!SegmentedWal::adopt_legacy(opts_.wal_path, &err)) {
    throw std::runtime_error("ecl::svc WAL adopt failed: " + err);
  }
  auto rep = SegmentedWal::replay(opts_.wal_path, covered_seq);
  if (!rep.ok || rep.truncate_failed) {
    // truncate_failed: the recovered edges are fine but the tail segment
    // still ends in garbage a future append would land after — refuse to
    // reopen it for writing rather than strand those future records.
    throw std::runtime_error("ecl::svc WAL replay failed: " + rep.error);
  }
  if (!rep.edges.empty()) {
    std::erase_if(rep.edges, [this](const Edge& e) {
      return e.first >= num_vertices_ || e.second >= num_vertices_;
    });
    live_.add_edges(rep.edges.data(), rep.edges.size());
    {
      std::lock_guard<std::mutex> lock(log_mu_);
      log_.insert(log_.end(), rep.edges.begin(), rep.edges.end());
      applied_edges_.fetch_add(rep.edges.size(), std::memory_order_release);
    }
    replayed_edges_ = rep.edges.size();
    // Synchronous: threads are not running yet, and the first published
    // snapshot must already reflect everything the WAL recovered.
    run_compaction();
  }
  SegmentedWalOptions sopts;
  sopts.wal = opts_.wal;
  sopts.segment_bytes = opts_.wal_segment_bytes;
  if (!wal_.open(opts_.wal_path, sopts, covered_seq + 1, &err)) {
    throw std::runtime_error("ecl::svc WAL open failed: " + err);
  }
  wal_segments_.store(wal_.segment_count(), std::memory_order_relaxed);
  wal_bytes_.store(wal_.total_bytes(), std::memory_order_relaxed);
}

void ConnectivityService::enter_degraded(const char* reason) {
  if (!degraded_.exchange(true, std::memory_order_acq_rel)) {
    degraded_entries_.fetch_add(1, std::memory_order_relaxed);
    ECL_OBS_COUNTER_ADD("ecl.svc.degraded.entries", 1);
    std::fprintf(stderr, "[ecl::svc] entering read-only degraded mode: %s\n", reason);
  }
}

ConnectivityService::~ConnectivityService() { stop(); }

void ConnectivityService::start_threads() {
  // Two long-lived tasks park on the executor's two workers for the
  // service's whole lifetime. The done flags stand in for thread joins:
  // stop() waits on them (under progress_mu_) instead of calling join(),
  // and only then drains the executor.
  const bool ingest_ok = exec_.submit([this] {
    ingest_loop();
    {
      std::lock_guard<std::mutex> lock(progress_mu_);
      ingest_done_ = true;
    }
    progress_cv_.notify_all();
    compact_cv_.notify_all();
  });
  const bool compact_ok = exec_.submit([this] {
    try {
      compact_loop();
    } catch (const std::exception& e) {
      // A compaction failure (e.g. allocation) must not strand stop()
      // waiters or crash the process; degrade and keep serving reads.
      std::fprintf(stderr, "[ecl::svc] compaction worker died: %s\n", e.what());
      enter_degraded("compaction worker died");
    }
    {
      std::lock_guard<std::mutex> lock(progress_mu_);
      compact_done_ = true;
    }
    progress_cv_.notify_all();
    compact_cv_.notify_all();
  });
  if (!ingest_ok || !compact_ok) {
    throw std::runtime_error("ecl::svc executor rejected a background loop");
  }
}

Admission ConnectivityService::submit(EdgeBatch batch) {
  if (stopped_.load(std::memory_order_acquire)) return Admission::kClosed;
  if (degraded_.load(std::memory_order_acquire)) {
    // Read-only mode: shed instead of accepting writes we can neither
    // durably log nor (if the worker died) ever apply.
    shed_batches_.fetch_add(1, std::memory_order_relaxed);
    ECL_OBS_COUNTER_ADD("ecl.svc.ingest.shed", 1);
    return Admission::kShed;
  }
  const bool wal_on = wal_healthy_.load(std::memory_order_acquire) && !opts_.wal_path.empty();
  EdgeBatch wal_copy;
  if (wal_on) wal_copy = batch;
  const Admission verdict = queue_.try_push(std::move(batch));
  switch (verdict) {
    case Admission::kAccepted:
      accepted_batches_.fetch_add(1, std::memory_order_relaxed);
      ECL_OBS_COUNTER_ADD("ecl.svc.ingest.batches", 1);
      break;
    case Admission::kShed:
      shed_batches_.fetch_add(1, std::memory_order_relaxed);
      ECL_OBS_COUNTER_ADD("ecl.svc.ingest.shed", 1);
      break;
    case Admission::kClosed:
      break;
  }
  ECL_OBS_GAUGE_SET("ecl.svc.queue.depth", static_cast<double>(queue_.size()));
  if (verdict == Admission::kAccepted && wal_on) {
    std::lock_guard<std::mutex> lock(wal_mu_);
    if (!wal_.append(wal_copy)) {
      wal_healthy_.store(false, std::memory_order_release);
      enter_degraded("WAL append/fsync failed");
      // The batch is already queued and will be applied, but durability was
      // not achieved: answer kShed so the caller does not treat it as acked.
      return Admission::kShed;
    }
    wal_records_.fetch_add(1, std::memory_order_relaxed);
    wal_segments_.store(wal_.segment_count(), std::memory_order_relaxed);
    wal_bytes_.store(wal_.total_bytes(), std::memory_order_relaxed);
  }
  return verdict;
}

void ConnectivityService::ingest_loop() {
  try {
    ingest_loop_body();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[ecl::svc] ingest worker died: %s\n", e.what());
    ingest_alive_.store(false, std::memory_order_release);
    enter_degraded("ingest worker died");
    // Wake flush()/compact_now() waiters — progress will never advance, and
    // their predicates check ingest_alive_ precisely so they don't hang.
    progress_cv_.notify_all();
    compact_cv_.notify_all();
  }
}

void ConnectivityService::ingest_loop_body() {
  EdgeBatch batch;
  while (queue_.pop(batch)) {
    if (ECL_FAULT_POINT("svc.ingest.worker").fired()) {
      throw std::runtime_error("injected fault: svc.ingest.worker");
    }
    ECL_OBS_SPAN(span, "svc.batch", "svc");
    Timer t;
    if (opts_.ingest_delay_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(opts_.ingest_delay_us));
    }
    // Drop edges outside the vertex universe; everything else is applied.
    const std::size_t before = batch.size();
    std::erase_if(batch, [this](const Edge& e) {
      return e.first >= num_vertices_ || e.second >= num_vertices_;
    });
    if (const std::size_t invalid = before - batch.size(); invalid > 0) {
      ECL_OBS_COUNTER_ADD("ecl.svc.ingest.invalid_edges", invalid);
    }

    live_.add_edges(batch.data(), batch.size());
    {
      std::lock_guard<std::mutex> lock(log_mu_);
      log_.insert(log_.end(), batch.begin(), batch.end());
      // Incremented inside log_mu_ so a compaction (which takes its
      // watermark from the log size under the same lock) can never observe
      // watermark > applied_edges_ — the unsigned staleness arithmetic
      // depends on applied >= watermark.
      applied_edges_.fetch_add(batch.size(), std::memory_order_release);
    }
    ECL_OBS_COUNTER_ADD("ecl.svc.ingest.edges", batch.size());
    ECL_OBS_HISTOGRAM_RECORD("ecl.svc.batch_apply_us",
                             ::ecl::obs::Histogram::pow2_bounds(22),
                             static_cast<std::uint64_t>(t.micros()));
    ECL_OBS_GAUGE_SET("ecl.svc.queue.depth", static_cast<double>(queue_.size()));
    span.arg("edges", static_cast<std::uint64_t>(batch.size()));
    {
      std::lock_guard<std::mutex> lock(progress_mu_);
      applied_batches_.fetch_add(1, std::memory_order_release);
    }
    progress_cv_.notify_all();
    compact_cv_.notify_all();
  }
}

void ConnectivityService::compact_loop() {
  const auto interval = std::chrono::milliseconds(
      std::max(1, opts_.compact_interval_ms));
  for (;;) {
    bool exiting = false;
    bool want_ckpt = false;
    {
      std::unique_lock<std::mutex> lock(progress_mu_);
      compact_cv_.wait_for(lock, interval, [&] {
        const auto snap = snapshot_.load(std::memory_order_acquire);
        const std::uint64_t applied = applied_edges_.load(std::memory_order_acquire);
        return stopping_ || force_checkpoint_ || force_watermark_ > snap->watermark ||
               (applied > snap->watermark &&
                applied - snap->watermark >= opts_.compact_min_new_edges);
      });
      exiting = stopping_;
      want_ckpt = force_checkpoint_;
      force_checkpoint_ = false;
    }
    const auto snap = snapshot_.load(std::memory_order_acquire);
    const std::uint64_t applied = applied_edges_.load(std::memory_order_acquire);
    bool forced = false;
    {
      std::lock_guard<std::mutex> lock(progress_mu_);
      forced = force_watermark_ > snap->watermark;
    }
    const bool pending = applied > snap->watermark;
    if (pending && (forced || exiting ||
                    applied - snap->watermark >= opts_.compact_min_new_edges)) {
      run_compaction();
    }
    // Checkpoint after compaction so the drained/exit path persists the
    // final snapshot: a clean stop leaves a checkpoint covering everything,
    // making the *next* boot instant.
    maybe_checkpoint(want_ckpt, exiting);
    if (exiting) return;
  }
}

void ConnectivityService::maybe_checkpoint(bool force, bool exiting) {
  if (opts_.checkpoint_path.empty()) return;
  const std::uint64_t applied = applied_edges_.load(std::memory_order_acquire);
  const bool progressed =
      !has_ckpt_.load(std::memory_order_acquire) ||
      applied > last_ckpt_watermark_.load(std::memory_order_relaxed);
  bool due = force;
  if (!due && exiting) due = progressed;
  if (!due && opts_.checkpoint_interval_ms > 0 && progressed && applied > 0) {
    due = now_ms() - last_ckpt_ms_.load(std::memory_order_relaxed) >=
          static_cast<std::uint64_t>(opts_.checkpoint_interval_ms);
  }
  if (due) (void)do_checkpoint();
}

bool ConnectivityService::do_checkpoint() {
  ECL_OBS_SPAN(span, "svc.checkpoint", "svc");
  Timer t;

  // The cut. Rotating under wal_mu_ seals every record appended so far;
  // reading accepted_batches_ inside the same critical section means every
  // batch whose record landed in a sealed segment is counted (submit()
  // increments before it appends, and its wal_mu_ release happens-before
  // our acquire). Waiting for applied >= that count below therefore
  // guarantees the compacted snapshot covers all sealed segments.
  std::uint64_t cut_seq = 0;
  std::uint64_t accepted_at_cut = 0;
  {
    std::lock_guard<std::mutex> lock(wal_mu_);
    cut_seq = wal_.active_seq();
    if (wal_.is_open()) {
      std::string err;
      if (!wal_.rotate(&err)) {
        wal_healthy_.store(false, std::memory_order_release);
        enter_degraded(("WAL rotate failed: " + err).c_str());
        // The sealed segments (<= cut_seq) are still intact on disk; the
        // checkpoint below remains correct and worth writing.
      }
    }
    accepted_at_cut = accepted_batches_.load(std::memory_order_acquire);
  }
  {
    std::unique_lock<std::mutex> lock(progress_mu_);
    progress_cv_.wait(lock, [&] {
      return applied_batches_.load(std::memory_order_acquire) >= accepted_at_cut ||
             !ingest_alive_.load(std::memory_order_acquire) || stopping_;
    });
    if (applied_batches_.load(std::memory_order_acquire) < accepted_at_cut) {
      // Worker died (or we are draining) with batches unapplied: a
      // checkpoint here could cover sealed records that were never folded
      // in. Skip; the WAL still has everything.
      ckpt_attempts_.fetch_add(1, std::memory_order_release);
      compact_cv_.notify_all();
      return false;
    }
  }
  run_compaction();
  const auto snap = snapshot_.load(std::memory_order_acquire);

  CheckpointData data;
  data.n = static_cast<std::uint32_t>(num_vertices_);
  data.watermark = snap->watermark;
  data.epoch = snap->epoch;
  data.wal_seq = cut_seq;
  data.labels = snap->labels;
  auto wr = ckpt_store_.write(data);
  if (!wr.ok) {
    std::fprintf(stderr, "[ecl::svc] checkpoint write failed: %s\n", wr.error.c_str());
    ckpt_attempts_.fetch_add(1, std::memory_order_release);
    compact_cv_.notify_all();
    return false;
  }

  // The checkpoint is durable: everything at or before its watermark is
  // redundant in memory. Trim log_ to the un-checkpointed suffix and make
  // the labels the new compaction base.
  {
    std::lock_guard<std::mutex> lock(log_mu_);
    const std::uint64_t drop = snap->watermark - base_watermark_;
    log_.erase(log_.begin(), log_.begin() + static_cast<std::ptrdiff_t>(drop));
    ECL_OBS_GAUGE_SET("ecl.svc.log.edges", static_cast<double>(log_.size()));
  }
  base_labels_ = std::move(data.labels);
  base_watermark_ = snap->watermark;

  has_ckpt_.store(true, std::memory_order_release);
  ckpt_written_.fetch_add(1, std::memory_order_release);
  last_ckpt_epoch_.store(snap->epoch, std::memory_order_relaxed);
  last_ckpt_watermark_.store(snap->watermark, std::memory_order_relaxed);
  last_ckpt_ms_.store(now_ms(), std::memory_order_relaxed);
  ECL_OBS_GAUGE_SET("ecl.svc.ckpt.last_epoch", static_cast<double>(snap->epoch));
  ECL_OBS_HISTOGRAM_RECORD("ecl.svc.ckpt_ms", ::ecl::obs::Histogram::pow2_bounds(16),
                           static_cast<std::uint64_t>(t.millis()));

  // Retention: retire segments the *oldest retained* checkpoint covers, so
  // a fallback load (corrupt newest checkpoint) never misses a segment.
  const std::uint64_t floor = ckpt_store_.retention_floor_wal_seq();
  {
    std::lock_guard<std::mutex> lock(wal_mu_);
    if (floor > 0) (void)wal_.retire_through(floor);
    wal_segments_.store(wal_.segment_count(), std::memory_order_relaxed);
    wal_bytes_.store(wal_.total_bytes(), std::memory_order_relaxed);
  }
  span.arg("epoch", snap->epoch);
  span.arg("watermark", snap->watermark);
  span.arg("bytes", wr.bytes);
  ckpt_attempts_.fetch_add(1, std::memory_order_release);
  compact_cv_.notify_all();
  return true;
}

bool ConnectivityService::checkpoint_now() {
  if (opts_.checkpoint_path.empty() || stopped_.load(std::memory_order_acquire)) {
    return false;
  }
  const std::uint64_t written_before = ckpt_written_.load(std::memory_order_acquire);
  const std::uint64_t target = ckpt_attempts_.load(std::memory_order_acquire) + 1;
  {
    std::lock_guard<std::mutex> lock(progress_mu_);
    force_checkpoint_ = true;
  }
  compact_cv_.notify_all();
  std::unique_lock<std::mutex> lock(progress_mu_);
  compact_cv_.wait(lock, [&] {
    return ckpt_attempts_.load(std::memory_order_acquire) >= target ||
           stopped_.load(std::memory_order_acquire);
  });
  return ckpt_written_.load(std::memory_order_acquire) > written_before;
}

void ConnectivityService::run_compaction() {
  ECL_OBS_SPAN(span, "svc.compact", "svc");
  Timer t;
  std::vector<Edge> edges;
  std::uint64_t watermark = 0;
  {
    std::lock_guard<std::mutex> lock(log_mu_);
    edges = log_;
    // log_ holds only the suffix since the last checkpoint; the watermark
    // stays cumulative so staleness arithmetic against applied_edges_ holds.
    watermark = base_watermark_ + edges.size();
  }

  auto snap = std::make_shared<Snapshot>();
  snap->epoch = snapshot_.load(std::memory_order_acquire)->epoch + 1;
  snap->watermark = watermark;
  if (num_vertices_ > 0) {
    // Seed the graph with the checkpointed components: one (v, label) edge
    // per non-root vertex reproduces them without replaying their history —
    // compaction cost is O(n + tail), not O(lifetime ingest).
    if (!base_labels_.empty()) {
      for (vertex_t v = 0; v < num_vertices_; ++v) {
        if (base_labels_[v] != v) edges.emplace_back(v, base_labels_[v]);
      }
    }
    const Graph g = build_graph(num_vertices_, edges);
    EclOptions eopts;
    eopts.num_threads = opts_.num_threads;
    snap->labels = ecl_cc_omp(g, eopts);
  }
  snap->num_components = count_labels(snap->labels);
  snap->build_ms = t.millis();

  span.arg("epoch", snap->epoch);
  span.arg("watermark", snap->watermark);
  span.arg("components", static_cast<std::uint64_t>(snap->num_components));
  snapshot_.store(snap, std::memory_order_release);

  ECL_OBS_COUNTER_ADD("ecl.svc.compactions", 1);
  ECL_OBS_GAUGE_SET("ecl.svc.epoch", static_cast<double>(snap->epoch));
  const std::uint64_t applied_now = applied_edges_.load(std::memory_order_acquire);
  ECL_OBS_GAUGE_SET("ecl.svc.staleness_edges",
                    static_cast<double>(
                        applied_now > snap->watermark ? applied_now - snap->watermark : 0));
  ECL_OBS_HISTOGRAM_RECORD("ecl.svc.compact_ms",
                           ::ecl::obs::Histogram::pow2_bounds(16),
                           static_cast<std::uint64_t>(snap->build_ms));
  {
    std::lock_guard<std::mutex> lock(progress_mu_);
  }
  compact_cv_.notify_all();
}

void ConnectivityService::flush() {
  const std::uint64_t target = accepted_batches_.load(std::memory_order_acquire);
  std::unique_lock<std::mutex> lock(progress_mu_);
  progress_cv_.wait(lock, [&] {
    return applied_batches_.load(std::memory_order_acquire) >= target ||
           !ingest_alive_.load(std::memory_order_acquire);
  });
}

std::uint64_t ConnectivityService::compact_now() {
  flush();
  const std::uint64_t target = applied_edges_.load(std::memory_order_acquire);
  {
    std::lock_guard<std::mutex> lock(progress_mu_);
    force_watermark_ = std::max(force_watermark_, target);
  }
  compact_cv_.notify_all();
  std::unique_lock<std::mutex> lock(progress_mu_);
  compact_cv_.wait(lock, [&] {
    return snapshot_.load(std::memory_order_acquire)->watermark >= target ||
           stopped_.load(std::memory_order_acquire);
  });
  return snapshot_.load(std::memory_order_acquire)->epoch;
}

void ConnectivityService::stop() {
  // Serializes concurrent stop() calls (and the destructor after an explicit
  // stop()): exactly one caller joins the threads, and later/losing callers
  // block here until the drain has fully completed — concurrent join() on
  // one std::thread would be a data race.
  std::lock_guard<std::mutex> stop_lock(stop_mu_);
  if (stopped_.load(std::memory_order_acquire)) return;
  stopped_.store(true, std::memory_order_release);
  queue_.close();
  {
    std::unique_lock<std::mutex> lock(progress_mu_);
    progress_cv_.wait(lock, [&] { return ingest_done_; });
    stopping_ = true;
  }
  // Both cvs, *before* the wait: the compaction task may be blocked in
  // do_checkpoint()'s progress_cv_ wait, whose predicate reads stopping_.
  compact_cv_.notify_all();
  progress_cv_.notify_all();
  {
    std::unique_lock<std::mutex> lock(progress_mu_);
    compact_cv_.wait(lock, [&] { return compact_done_; });
  }
  progress_cv_.notify_all();
  compact_cv_.notify_all();
  exec_.drain();
  {
    std::lock_guard<std::mutex> lock(wal_mu_);
    wal_.close();  // fsyncs any unsynced tail (per policy) before closing
  }
}

bool ConnectivityService::connected(vertex_t u, vertex_t v, ReadMode mode) {
  if (u >= num_vertices_ || v >= num_vertices_) return false;
  ECL_OBS_COUNTER_ADD("ecl.svc.reads.connected", 1);
  if (mode == ReadMode::kFresh) return live_.connected(u, v);
  const auto snap = snapshot_.load(std::memory_order_acquire);
  return snap->connected(u, v);
}

vertex_t ConnectivityService::component_of(vertex_t v, ReadMode mode) {
  if (v >= num_vertices_) return kInvalidVertex;
  ECL_OBS_COUNTER_ADD("ecl.svc.reads.component_of", 1);
  if (mode == ReadMode::kFresh) return live_.component_of(v);
  const auto snap = snapshot_.load(std::memory_order_acquire);
  return snap->labels[v];
}

vertex_t ConnectivityService::component_count() const {
  return snapshot_.load(std::memory_order_acquire)->num_components;
}

SnapshotPtr ConnectivityService::snapshot() const {
  return snapshot_.load(std::memory_order_acquire);
}

ServiceStats ConnectivityService::stats() const {
  const auto snap = snapshot_.load(std::memory_order_acquire);
  ServiceStats s;
  s.epoch = snap->epoch;
  s.watermark = snap->watermark;
  s.applied_edges = applied_edges_.load(std::memory_order_acquire);
  s.accepted_batches = accepted_batches_.load(std::memory_order_relaxed);
  s.applied_batches = applied_batches_.load(std::memory_order_relaxed);
  s.shed_batches = shed_batches_.load(std::memory_order_relaxed);
  s.queue_depth = queue_.size();
  s.num_components = snap->num_components;
  s.num_vertices = num_vertices_;
  s.checkpoints = ckpt_written_.load(std::memory_order_relaxed);
  s.last_checkpoint_epoch = last_ckpt_epoch_.load(std::memory_order_relaxed);
  s.wal_segments = wal_segments_.load(std::memory_order_relaxed);
  s.wal_bytes = wal_bytes_.load(std::memory_order_relaxed);
  s.degraded = degraded_.load(std::memory_order_acquire);
  s.uptime_ms = now_ms();
  s.replayed_edges = replayed_edges_;
  return s;
}

ServiceHealth ConnectivityService::health() const {
  ServiceHealth h;
  h.degraded = degraded_.load(std::memory_order_acquire);
  h.ingest_worker_alive = ingest_alive_.load(std::memory_order_acquire);
  h.wal_enabled = !opts_.wal_path.empty();
  h.wal_healthy = wal_healthy_.load(std::memory_order_acquire);
  h.queue_depth = queue_.size();
  const auto snap = snapshot_.load(std::memory_order_acquire);
  const std::uint64_t applied = applied_edges_.load(std::memory_order_acquire);
  h.staleness_edges = applied > snap->watermark ? applied - snap->watermark : 0;
  const std::uint64_t accepted = accepted_batches_.load(std::memory_order_relaxed);
  const std::uint64_t done = applied_batches_.load(std::memory_order_relaxed);
  h.ingest_lag_batches = accepted > done ? accepted - done : 0;
  h.wal_records = wal_records_.load(std::memory_order_relaxed);
  h.replayed_edges = replayed_edges_;
  h.degraded_entries = degraded_entries_.load(std::memory_order_relaxed);
  h.checkpoint_enabled = !opts_.checkpoint_path.empty();
  h.checkpoints_written = ckpt_written_.load(std::memory_order_relaxed);
  h.last_checkpoint_epoch = last_ckpt_epoch_.load(std::memory_order_relaxed);
  h.last_checkpoint_age_ms =
      has_ckpt_.load(std::memory_order_acquire)
          ? now_ms() - last_ckpt_ms_.load(std::memory_order_relaxed)
          : 0;
  h.wal_segments = wal_segments_.load(std::memory_order_relaxed);
  h.wal_bytes = wal_bytes_.load(std::memory_order_relaxed);
  return h;
}

}  // namespace ecl::svc
