// Immutable epoch snapshots: the read side of the connectivity service.
//
// A Snapshot is a fully materialized, canonical label array (label[v] =
// smallest vertex ID in v's component, exactly what the batch ECL-CC engine
// produces) frozen at a known ingest watermark. Readers hold a
// shared_ptr<const Snapshot> obtained from one atomic load, answer any
// number of queries against it without taking locks, and can never observe
// a partially applied batch: either the compaction that produced the
// snapshot saw an edge, or the edge is entirely invisible.
//
// Consistency contract (docs/SERVICE.md): a snapshot at epoch E with
// watermark W reflects *every* edge among the first W applied to the
// service and *no* later edge.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.h"

namespace ecl::svc {

struct Snapshot {
  /// Monotonic compaction generation; epoch 0 is the all-singleton state
  /// (or the seed graph's components when the service was seeded).
  std::uint64_t epoch = 0;
  /// Number of applied edges this snapshot reflects (ingest watermark).
  std::uint64_t watermark = 0;
  /// Canonical labels, size num_vertices: label[v] = min vertex of v's
  /// component.
  std::vector<vertex_t> labels;
  /// Number of distinct components in `labels`.
  vertex_t num_components = 0;
  /// Wall-clock cost of the compaction that built this snapshot.
  double build_ms = 0.0;

  [[nodiscard]] vertex_t num_vertices() const {
    return static_cast<vertex_t>(labels.size());
  }

  /// Snapshot-consistent connectivity query. Precondition: u, v < size.
  [[nodiscard]] bool connected(vertex_t u, vertex_t v) const {
    return labels[u] == labels[v];
  }
};

using SnapshotPtr = std::shared_ptr<const Snapshot>;

}  // namespace ecl::svc
