#include "dsu/disjoint_set.h"

namespace ecl {

void ConcurrentDisjointSet::flatten() {
  const vertex_t n = size();
  AtomicParentOps ops(parent_.data());
  for (vertex_t v = 0; v < n; ++v) {
    vertex_t root = ops.load(v);
    vertex_t next;
    while (root > (next = ops.load(root))) root = next;
    ops.store(v, root);
  }
}

vertex_t ConcurrentDisjointSet::count() const {
  vertex_t sets = 0;
  for (vertex_t v = 0; v < size(); ++v) {
    if (parent_[v] == v) ++sets;
  }
  return sets;
}

}  // namespace ecl
