// Access policies for the shared parent (union-find) array.
//
// Every CC implementation in this library runs the same find/hook algorithm
// templates (see dsu/find.h, dsu/hook.h); what differs is how the parent
// array is read and written:
//
//   * SerialParentOps  — plain loads/stores; the CAS cannot fail, so the
//     compiler elides the retry loop (the paper's serial ECL-CC).
//   * AtomicParentOps  — std::atomic_ref with relaxed ordering, matching the
//     paper's CUDA/OpenMP code (aligned word accesses + CAS). Using
//     atomic_ref makes the paper's "benign data races" well-defined C++
//     instead of UB while compiling to the same instructions.
//   * gpusim's SimParentOps — routes every access through the simulated
//     memory hierarchy so cache statistics (paper Table 3) can be collected.
//
// The concept below documents the required shape.
#pragma once

#include <atomic>
#include <concepts>

#include "common/types.h"

namespace ecl {

/// What find/hook need from a parent array.
template <typename Ops>
concept ParentOps = requires(Ops ops, vertex_t i, vertex_t v) {
  { ops.load(i) } -> std::same_as<vertex_t>;
  { ops.store(i, v) };
  { ops.cas(i, v, v) } -> std::same_as<vertex_t>;
};

/// Plain (single-threaded) accesses.
class SerialParentOps {
 public:
  explicit SerialParentOps(vertex_t* parent) : parent_(parent) {}

  [[nodiscard]] vertex_t load(vertex_t i) const { return parent_[i]; }
  void store(vertex_t i, vertex_t value) { parent_[i] = value; }

  /// Returns the previous value; stores `desired` iff it equals `expected`.
  /// Single-threaded, so this never observes interference.
  vertex_t cas(vertex_t i, vertex_t expected, vertex_t desired) {
    const vertex_t old = parent_[i];
    if (old == expected) parent_[i] = desired;
    return old;
  }

 private:
  vertex_t* parent_;
};

/// Lock-free concurrent accesses with relaxed memory order. Relaxed is
/// sufficient per the paper's §3 argument: any torn-free value read from the
/// parent array is a valid waypoint toward the representative, and the CAS
/// in the hook retries until it wins.
class AtomicParentOps {
 public:
  explicit AtomicParentOps(vertex_t* parent) : parent_(parent) {}

  [[nodiscard]] vertex_t load(vertex_t i) const {
    return std::atomic_ref<vertex_t>(parent_[i]).load(std::memory_order_relaxed);
  }

  void store(vertex_t i, vertex_t value) {
    std::atomic_ref<vertex_t>(parent_[i]).store(value, std::memory_order_relaxed);
  }

  /// atomicCAS semantics from CUDA: returns the value observed at parent[i];
  /// the store happened iff the return value equals `expected`.
  vertex_t cas(vertex_t i, vertex_t expected, vertex_t desired) {
    std::atomic_ref<vertex_t> slot(parent_[i]);
    slot.compare_exchange_strong(expected, desired, std::memory_order_relaxed,
                                 std::memory_order_relaxed);
    return expected;  // updated to the observed value on failure
  }

 private:
  vertex_t* parent_;
};

static_assert(ParentOps<SerialParentOps>);
static_assert(ParentOps<AtomicParentOps>);

}  // namespace ecl
