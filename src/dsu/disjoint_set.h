// General-purpose disjoint-set (union-find) data structures.
//
// DisjointSet is the textbook serial structure (union by rank + full path
// compression) used by the Boost-style baseline and available as a public
// utility. ConcurrentDisjointSet packages the lock-free parent array +
// path-halving find + CAS hook that ECL-CC is built from, for downstream
// users who want the union-find substrate without the CC driver (e.g. for
// Kruskal's MST, which the paper's conclusion calls out).
#pragma once

#include <vector>

#include "common/types.h"
#include "dsu/find.h"
#include "dsu/hook.h"
#include "dsu/parent_ops.h"

namespace ecl {

/// Serial union-find with union by rank and full path compression
/// (amortized inverse-Ackermann per operation).
class DisjointSet {
 public:
  explicit DisjointSet(vertex_t n) : parent_(n), rank_(n, 0), num_sets_(n) {
    for (vertex_t v = 0; v < n; ++v) parent_[v] = v;
  }

  /// Representative of v's set.
  [[nodiscard]] vertex_t find(vertex_t v) {
    vertex_t root = v;
    while (parent_[root] != root) root = parent_[root];
    while (parent_[v] != root) {
      const vertex_t next = parent_[v];
      parent_[v] = root;
      v = next;
    }
    return root;
  }

  /// Merges the sets of a and b; returns true if they were distinct.
  bool unite(vertex_t a, vertex_t b) {
    vertex_t ra = find(a);
    vertex_t rb = find(b);
    if (ra == rb) return false;
    if (rank_[ra] < rank_[rb]) std::swap(ra, rb);
    parent_[rb] = ra;
    if (rank_[ra] == rank_[rb]) ++rank_[ra];
    --num_sets_;
    return true;
  }

  /// True if a and b are in the same set.
  [[nodiscard]] bool same(vertex_t a, vertex_t b) { return find(a) == find(b); }

  /// Current number of disjoint sets.
  [[nodiscard]] vertex_t count() const { return num_sets_; }

  /// Number of elements.
  [[nodiscard]] vertex_t size() const { return static_cast<vertex_t>(parent_.size()); }

 private:
  std::vector<vertex_t> parent_;
  std::vector<std::uint8_t> rank_;
  vertex_t num_sets_;
};

/// Lock-free concurrent union-find: the ECL-CC substrate as a reusable data
/// structure. Thread-safe: find() and unite() may be called concurrently
/// from any number of threads without locks (benign races per paper §3).
/// Representatives are always the minimum element of their set once all
/// unites have completed and flatten() has run.
class ConcurrentDisjointSet {
 public:
  explicit ConcurrentDisjointSet(vertex_t n) : parent_(n) {
    for (vertex_t v = 0; v < n; ++v) parent_[v] = v;
  }

  /// Representative of v's set, compressing the path by halving.
  [[nodiscard]] vertex_t find(vertex_t v) {
    return find_intermediate(v, AtomicParentOps(parent_.data()));
  }

  /// Merges the sets of a and b (smaller representative wins).
  void unite(vertex_t a, vertex_t b) {
    AtomicParentOps ops(parent_.data());
    const vertex_t ra = find_intermediate(a, ops);
    const vertex_t rb = find_intermediate(b, ops);
    hook_representatives(ra, rb, ops);
  }

  /// True if a and b are currently in the same set. Only stable once all
  /// concurrent unites have completed.
  [[nodiscard]] bool same(vertex_t a, vertex_t b) { return find(a) == find(b); }

  /// Points every element directly at its representative (the paper's
  /// finalization phase). Call after all unites; safe to parallelize
  /// externally over disjoint ranges.
  void flatten();

  /// Number of distinct sets (counts self-parented elements; call after
  /// unites have completed).
  [[nodiscard]] vertex_t count() const;

  [[nodiscard]] vertex_t size() const { return static_cast<vertex_t>(parent_.size()); }

  /// Read-only view of the parent array (labels after flatten()).
  [[nodiscard]] const std::vector<vertex_t>& parents() const { return parent_; }

 private:
  std::vector<vertex_t> parent_;
};

}  // namespace ecl
