// Lock-free concurrent union-find with randomized linking — the classic
// alternative to ECL-CC's link-by-minimum-ID strategy, provided for
// comparison (the paper builds on Patwary, Refsnes & Manne [27], who study
// this design space for multi-core spanning-forest codes; randomized
// static-priority linking is analyzed by Jayanti & Tarjan).
//
// Every vertex gets a fixed random priority at construction; a union always
// links the root with the higher (priority, ID) pair under the lower one.
// Because the order is *static and total*, no sequence of concurrent CASes
// can create a cycle — the same argument that makes ECL's link-by-minimum
// safe, but with balanced expected tree heights on adversarial ID
// orderings. (A mutable union-by-rank order is NOT safe lock-free: stale
// rank reads can cycle; this class exists to offer the safe balanced
// alternative.)
//
// Trade-off vs ConcurrentDisjointSet: representatives are arbitrary
// vertices rather than component minima, so labelings need a
// canonicalization pass (labels()).
#pragma once

#include <atomic>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace ecl {

class RandomPriorityDisjointSet {
 public:
  explicit RandomPriorityDisjointSet(vertex_t n, std::uint64_t seed = 0x9E3779B9ULL)
      : parent_(n), priority_(n) {
    SplitMix64 sm(seed);
    for (vertex_t v = 0; v < n; ++v) {
      parent_[v] = v;
      priority_[v] = sm.next();
    }
  }

  /// Representative of v's set (path halving). Thread-safe.
  [[nodiscard]] vertex_t find(vertex_t v) {
    while (true) {
      const vertex_t par = load(v);
      if (par == v) return v;
      const vertex_t grand = load(par);
      if (grand == par) return par;
      // Halve: benign race, any stored value is a valid waypoint.
      cas(v, par, grand);
      v = grand;
    }
  }

  /// Merges the sets of a and b. Thread-safe, lock-free.
  void unite(vertex_t a, vertex_t b) {
    while (true) {
      const vertex_t ra = find(a);
      const vertex_t rb = find(b);
      if (ra == rb) return;
      // The root with the higher static (priority, ID) pair loses and is
      // linked under the other. The order never changes, so links strictly
      // descend it and cycles are impossible.
      vertex_t winner = ra;
      vertex_t loser = rb;
      if (before(ra, rb)) {
        winner = ra;
        loser = rb;
      } else {
        winner = rb;
        loser = ra;
      }
      if (cas(loser, loser, winner)) return;
      // Interference: someone else linked `loser` first; retry from fresh
      // finds (a, b now share deeper trees).
    }
  }

  [[nodiscard]] bool same(vertex_t a, vertex_t b) { return find(a) == find(b); }

  /// Number of sets (call at quiescence).
  [[nodiscard]] vertex_t count() const {
    vertex_t sets = 0;
    for (vertex_t v = 0; v < size(); ++v) {
      if (parent_[v] == v) ++sets;
    }
    return sets;
  }

  [[nodiscard]] vertex_t size() const { return static_cast<vertex_t>(parent_.size()); }

  /// Canonical component-minimum labeling (call at quiescence).
  [[nodiscard]] std::vector<vertex_t> labels() {
    const vertex_t n = size();
    std::vector<vertex_t> min_of(n, kInvalidVertex);
    for (vertex_t v = 0; v < n; ++v) {
      const vertex_t r = find(v);
      if (v < min_of[r]) min_of[r] = v;
    }
    std::vector<vertex_t> out(n);
    for (vertex_t v = 0; v < n; ++v) out[v] = min_of[find(v)];
    return out;
  }

 private:
  /// True if a precedes b in the static linking order (a would win).
  [[nodiscard]] bool before(vertex_t a, vertex_t b) const {
    return priority_[a] < priority_[b] || (priority_[a] == priority_[b] && a < b);
  }

  [[nodiscard]] vertex_t load(vertex_t i) const {
    return std::atomic_ref<vertex_t>(const_cast<vertex_t&>(parent_[i]))
        .load(std::memory_order_relaxed);
  }
  bool cas(vertex_t i, vertex_t expected, vertex_t desired) {
    return std::atomic_ref<vertex_t>(parent_[i])
        .compare_exchange_strong(expected, desired, std::memory_order_relaxed);
  }

  std::vector<vertex_t> parent_;
  std::vector<std::uint64_t> priority_;
};

}  // namespace ecl
