// The four find (pointer-jumping) variants evaluated in the paper's Fig. 8.
//
// All are algorithm templates over a ParentOps access policy so that the
// serial CPU, OpenMP CPU and simulated-GPU implementations execute exactly
// the same code. Each variant can optionally record the traversed path
// length into a PathLengthRecorder (paper Table 4).
#pragma once

#include <cstdint>

#include "dsu/parent_ops.h"
#include "obs/metrics.h"

namespace ecl {

/// Pointer-jumping flavour used inside find operations (paper §5.1, Fig. 8).
enum class JumpPolicy {
  kMultiple = 1,      // Jump1: two-pass full compression to the representative
  kSingle = 2,        // Jump2: only the start vertex is re-pointed
  kNone = 3,          // Jump3: pure traversal, no compression
  kIntermediate = 4,  // Jump4: path halving (ECL-CC's choice)
};

/// Accumulates path lengths observed by find operations (paper Table 4) and
/// hook statistics from the union side (obs counters `ecl.hook.*`).
/// Not thread-safe; parallel callers keep one per thread and merge().
/// Plain fields by design: the per-operation cost in the compute hot loop is
/// a register increment, and the owner folds the totals into the (atomic)
/// obs registry once per thread per phase.
/// Optionally forwards every per-find length to an obs::Histogram so the
/// full distribution — not just avg/max — reaches the metrics registry
/// (ecl_cc_path_lengths attaches "ecl.find.path_length").
struct PathLengthRecorder {
  std::uint64_t total_length = 0;
  std::uint64_t num_finds = 0;
  std::uint64_t max_length = 0;
  std::uint64_t hooks_performed = 0;    // successful CAS hooks
  std::uint64_t cas_retries = 0;        // CAS attempts lost to another thread
  obs::Histogram* histogram = nullptr;  // optional distribution sink

  void record(std::uint64_t length) {
    total_length += length;
    ++num_finds;
    if (length > max_length) max_length = length;
    if (histogram != nullptr) histogram->record(length);
  }

  void merge(const PathLengthRecorder& other) {
    total_length += other.total_length;
    num_finds += other.num_finds;
    if (other.max_length > max_length) max_length = other.max_length;
    hooks_performed += other.hooks_performed;
    cas_retries += other.cas_retries;
  }

  [[nodiscard]] double average() const {
    return num_finds == 0 ? 0.0
                          : static_cast<double>(total_length) / static_cast<double>(num_finds);
  }
};

/// Minimal statistics sink for the production compute path: same duck-typed
/// interface as PathLengthRecorder (the find/hook templates accept either),
/// but record() is two register adds — no max tracking, no histogram branch —
/// so the always-on obs counters stay within the ≤5% overhead budget that
/// scripts/check_obs_overhead.py enforces.
struct ComputeStats {
  std::uint64_t total_length = 0;
  std::uint64_t num_finds = 0;
  std::uint64_t hooks_performed = 0;
  std::uint64_t cas_retries = 0;

  void record(std::uint64_t length) {
    total_length += length;
    ++num_finds;
  }
};

/// Jump4 — intermediate pointer jumping (path halving; paper Fig. 5).
/// One traversal; every visited element is made to skip its successor,
/// halving the path for everyone while heading to the representative.
template <ParentOps Ops, typename Rec = PathLengthRecorder>
vertex_t find_intermediate(vertex_t v, Ops ops, Rec* rec = nullptr) {
  std::uint64_t steps = 0;
  vertex_t par = ops.load(v);
  if (par != v) {
    vertex_t next;
    vertex_t prev = v;
    while (par > (next = ops.load(par))) {
      ops.store(prev, next);
      prev = par;
      par = next;
      ++steps;
    }
  }
  if (rec != nullptr) rec->record(steps);
  return par;
}

/// Jump2 — single pointer jumping: walk to the representative, then point
/// only the start vertex at it.
template <ParentOps Ops, typename Rec = PathLengthRecorder>
vertex_t find_single(vertex_t v, Ops ops, Rec* rec = nullptr) {
  std::uint64_t steps = 0;
  vertex_t root = ops.load(v);
  vertex_t next;
  while (root > (next = ops.load(root))) {
    root = next;
    ++steps;
  }
  if (root != ops.load(v)) ops.store(v, root);
  if (rec != nullptr) rec->record(steps);
  return root;
}

/// Jump3 — no pointer jumping: traverse only.
template <ParentOps Ops, typename Rec = PathLengthRecorder>
vertex_t find_none(vertex_t v, Ops ops, Rec* rec = nullptr) {
  std::uint64_t steps = 0;
  vertex_t root = ops.load(v);
  vertex_t next;
  while (root > (next = ops.load(root))) {
    root = next;
    ++steps;
  }
  if (rec != nullptr) rec->record(steps);
  return root;
}

/// Jump1 — multiple pointer jumping: first pass finds the representative,
/// second pass re-points every element on the path at it.
template <ParentOps Ops, typename Rec = PathLengthRecorder>
vertex_t find_multiple(vertex_t v, Ops ops, Rec* rec = nullptr) {
  std::uint64_t steps = 0;
  vertex_t root = ops.load(v);
  vertex_t next;
  while (root > (next = ops.load(root))) {
    root = next;
    ++steps;
  }
  vertex_t cur = v;
  while (cur > root) {
    const vertex_t parent = ops.load(cur);
    if (parent != root) ops.store(cur, root);
    cur = parent;
  }
  if (rec != nullptr) rec->record(steps);
  return root;
}

/// Runtime dispatch over the four variants.
template <ParentOps Ops, typename Rec = PathLengthRecorder>
vertex_t find_repres(JumpPolicy policy, vertex_t v, Ops ops, Rec* rec = nullptr) {
  switch (policy) {
    case JumpPolicy::kMultiple:
      return find_multiple(v, ops, rec);
    case JumpPolicy::kSingle:
      return find_single(v, ops, rec);
    case JumpPolicy::kNone:
      return find_none(v, ops, rec);
    case JumpPolicy::kIntermediate:
      break;
  }
  return find_intermediate(v, ops, rec);
}

/// Human-readable policy name ("Jump1".."Jump4"), for benchmark tables.
[[nodiscard]] constexpr const char* jump_policy_name(JumpPolicy policy) {
  switch (policy) {
    case JumpPolicy::kMultiple:
      return "Jump1 (multiple)";
    case JumpPolicy::kSingle:
      return "Jump2 (single)";
    case JumpPolicy::kNone:
      return "Jump3 (none)";
    case JumpPolicy::kIntermediate:
      return "Jump4 (intermediate)";
  }
  return "?";
}

}  // namespace ecl
