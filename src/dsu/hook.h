// The hooking (union) operation of the paper's Fig. 6, as an algorithm
// template shared by the serial, OpenMP and simulated-GPU implementations.
#pragma once

#include <algorithm>

#include "dsu/find.h"
#include "dsu/parent_ops.h"

namespace ecl {

/// Hooks the edge whose endpoint representatives are currently `v_rep` and
/// `u_rep` (the latter freshly computed by the caller): the larger
/// representative's parent is pointed at the smaller via CAS, retrying until
/// no other thread interferes (paper Fig. 6 lines 3-20).
///
/// Returns the common representative after the hook (the smaller of the two
/// final representatives), which callers keep as the running `v_rep` for the
/// remaining edges of the same vertex.
///
/// When a PathLengthRecorder is supplied, successful hooks and CAS retries
/// are tallied into its plain thread-local fields (the caller flushes them
/// to the `ecl.hook.*` registry counters once per thread per phase); atomic
/// or static-initialized counters here would wreck the compute loop's
/// inlining and codegen.
template <ParentOps Ops, typename Rec = PathLengthRecorder>
vertex_t hook_representatives(vertex_t v_rep, vertex_t u_rep, Ops ops,
                              Rec* rec = nullptr) {
  bool repeat;
  do {
    repeat = false;
    if (v_rep != u_rep) {
      vertex_t ret;
      if (v_rep < u_rep) {
        if ((ret = ops.cas(u_rep, u_rep, v_rep)) != u_rep) {
          u_rep = ret;
          repeat = true;
          if (rec != nullptr) ++rec->cas_retries;
        } else {
          if (rec != nullptr) ++rec->hooks_performed;
        }
      } else {
        if ((ret = ops.cas(v_rep, v_rep, u_rep)) != v_rep) {
          v_rep = ret;
          repeat = true;
          if (rec != nullptr) ++rec->cas_retries;
        } else {
          if (rec != nullptr) ++rec->hooks_performed;
        }
      }
    }
  } while (repeat);
  return std::min(v_rep, u_rep);
}

/// Full edge processing for edge (v, u) given v's current representative:
/// find u's representative with the configured pointer-jumping flavour, then
/// hook. Callers must already have filtered to one direction (v > u).
template <ParentOps Ops, typename Rec = PathLengthRecorder>
vertex_t process_edge(JumpPolicy jump, vertex_t v_rep, vertex_t u, Ops ops,
                      Rec* rec = nullptr) {
  const vertex_t u_rep = find_repres(jump, u, ops, rec);
  return hook_representatives(v_rep, u_rep, ops, rec);
}

}  // namespace ecl
