// Subgraph extraction utilities.
//
// The most common follow-up to a CC computation is restricting further
// processing to one component (usually the giant one): these helpers
// extract induced subgraphs with dense re-numbered vertex IDs and keep the
// mapping back to the original graph.
#pragma once

#include <span>
#include <vector>

#include "graph/graph.h"

namespace ecl {

/// An induced subgraph plus the vertex-ID mapping to its parent graph.
struct Subgraph {
  Graph graph;
  /// original_id[v] is the parent-graph ID of subgraph vertex v.
  std::vector<vertex_t> original_id;
  /// Inverse map: local_id[u] is u's subgraph ID, kInvalidVertex if u was
  /// not selected.
  std::vector<vertex_t> local_id;
};

/// Induced subgraph over the vertices where keep[v] is true. Edges are kept
/// iff both endpoints are kept; vertex IDs are compacted preserving order.
[[nodiscard]] Subgraph induced_subgraph(const Graph& g, std::span<const std::uint8_t> keep);

/// Induced subgraph of one component: all vertices v with labels[v] ==
/// `component` (labels as produced by any CC implementation).
[[nodiscard]] Subgraph extract_component(const Graph& g, std::span<const vertex_t> labels,
                                         vertex_t component);

/// Induced subgraph of the largest component (ties broken by smaller
/// label). Computes the labeling internally (BFS reference); pass an
/// existing labeling to extract_component to reuse an ECL-CC result.
[[nodiscard]] Subgraph largest_component(const Graph& g);

}  // namespace ecl
