#include "graph/compressed.h"

#include <cassert>
#include <stdexcept>

#include "graph/builder.h"

namespace ecl {

namespace {

/// Zig-zag maps signed deltas to unsigned varint payloads.
std::uint64_t zigzag_encode(std::int64_t value) {
  return (static_cast<std::uint64_t>(value) << 1) ^
         static_cast<std::uint64_t>(value >> 63);
}

std::int64_t zigzag_decode(std::uint64_t value) {
  return static_cast<std::int64_t>(value >> 1) ^ -static_cast<std::int64_t>(value & 1);
}

void write_varint(std::vector<std::uint8_t>& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

std::uint64_t read_varint(const std::uint8_t*& pos) {
  std::uint64_t value = 0;
  int shift = 0;
  while (*pos & 0x80) {
    value |= static_cast<std::uint64_t>(*pos & 0x7f) << shift;
    shift += 7;
    ++pos;
  }
  value |= static_cast<std::uint64_t>(*pos) << shift;
  ++pos;
  return value;
}

}  // namespace

CompressedGraph CompressedGraph::compress(const Graph& g) {
  CompressedGraph cg;
  const vertex_t n = g.num_vertices();
  cg.offsets_.resize(static_cast<std::size_t>(n) + 1, 0);
  cg.degrees_.resize(n);
  cg.num_edges_ = g.num_edges();
  cg.bytes_.reserve(g.num_edges());  // ~1-2 bytes per edge typically

  for (vertex_t v = 0; v < n; ++v) {
    cg.offsets_[v] = static_cast<edge_t>(cg.bytes_.size());
    const auto nbrs = g.neighbors(v);
    cg.degrees_[v] = static_cast<vertex_t>(nbrs.size());
    vertex_t prev = 0;
    bool first = true;
    for (const vertex_t u : nbrs) {
      if (first) {
        // First neighbor: signed delta from the vertex ID itself.
        write_varint(cg.bytes_, zigzag_encode(static_cast<std::int64_t>(u) -
                                              static_cast<std::int64_t>(v)));
        first = false;
      } else {
        if (u < prev) {
          throw std::invalid_argument(
              "CompressedGraph::compress: adjacency lists must be sorted");
        }
        write_varint(cg.bytes_, u - prev);  // sorted => non-negative delta
      }
      prev = u;
    }
  }
  cg.offsets_[n] = static_cast<edge_t>(cg.bytes_.size());
  return cg;
}

CompressedGraph::NeighborIterator::NeighborIterator(const std::uint8_t* pos, vertex_t base,
                                                    vertex_t remaining)
    : pos_(pos), base_(base), remaining_(remaining) {
  if (remaining_ > 0) decode_next();
}

void CompressedGraph::NeighborIterator::decode_next() {
  const std::uint64_t raw = read_varint(pos_);
  if (first_) {
    current_ = static_cast<vertex_t>(static_cast<std::int64_t>(base_) + zigzag_decode(raw));
    first_ = false;
  } else {
    current_ = static_cast<vertex_t>(current_ + raw);
  }
}

CompressedGraph::NeighborIterator& CompressedGraph::NeighborIterator::operator++() {
  --remaining_;
  if (remaining_ > 0) decode_next();
  return *this;
}

CompressedGraph::NeighborRange CompressedGraph::neighbors(vertex_t v) const {
  assert(v < num_vertices());
  return {NeighborIterator(bytes_.data() + offsets_[v], v, degrees_[v]),
          NeighborIterator(nullptr, 0, 0)};
}

Graph CompressedGraph::decompress() const {
  const vertex_t n = num_vertices();
  std::vector<edge_t> offsets(static_cast<std::size_t>(n) + 1, 0);
  std::vector<vertex_t> adjacency;
  adjacency.reserve(num_edges_);
  for (vertex_t v = 0; v < n; ++v) {
    offsets[v] = static_cast<edge_t>(adjacency.size());
    for (const vertex_t u : neighbors(v)) {
      adjacency.push_back(u);
    }
  }
  offsets[n] = static_cast<edge_t>(adjacency.size());
  return Graph(std::move(offsets), std::move(adjacency));
}

}  // namespace ecl
