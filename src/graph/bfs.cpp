#include "graph/bfs.h"

#include <atomic>
#include <omp.h>

namespace ecl {

namespace {

/// One direction-optimizing traversal (Beamer-style top-down/bottom-up).
/// The visit predicate owns the "visited" state, which doubles as the
/// output: distances for bfs(), labels for bfs_label().
class Traversal {
 public:
  Traversal(const Graph& graph, const BfsOptions& opts)
      : g_(graph),
        nt_(opts.num_threads > 0 ? opts.num_threads : omp_get_max_threads()),
        alpha_(opts.alpha),
        beta_(opts.beta),
        in_frontier_(graph.num_vertices(), 0) {}

  /// Runs from `source` (already marked visited by the caller).
  ///   try_visit(u) — atomically claims an unvisited vertex, returns true
  ///                  if this call claimed it;
  ///   is_unvisited(u) — non-claiming check for the bottom-up sweep;
  ///   on_wave_done() — called after each completed level (for distances).
  /// Returns the number of vertices reached, including the source.
  template <typename TryVisit, typename IsUnvisited, typename WaveDone>
  vertex_t run(vertex_t source, TryVisit&& try_visit, IsUnvisited&& is_unvisited,
               WaveDone&& on_wave_done) {
    const vertex_t n = g_.num_vertices();
    const std::uint64_t m = g_.num_edges();
    std::vector<vertex_t> frontier{source};
    std::uint64_t frontier_degree = g_.degree(source);
    vertex_t reached = 1;
    bool bottom_up = false;

    while (!frontier.empty()) {
      // Direction heuristic: dense sweeps pay off while the frontier
      // covers a large fraction of the edges.
      const bool want_bottom_up =
          frontier_degree > static_cast<std::uint64_t>(static_cast<double>(m) / alpha_) ||
          (bottom_up &&
           frontier.size() > static_cast<std::size_t>(static_cast<double>(n) / beta_));
      if (want_bottom_up != bottom_up) {
        bottom_up = want_bottom_up;
        ++switches_;
      }

      std::vector<vertex_t> next;
      std::uint64_t next_degree = 0;

      if (bottom_up) {
        for (const vertex_t v : frontier) in_frontier_[v] = 1;
#pragma omp parallel num_threads(nt_)
        {
          std::vector<vertex_t> local;
          std::uint64_t local_degree = 0;
#pragma omp for schedule(guided) nowait
          for (vertex_t u = 0; u < n; ++u) {
            if (!is_unvisited(u)) continue;
            // An unvisited vertex joins the next frontier if any neighbor
            // is in the current one.
            for (const vertex_t w : g_.neighbors(u)) {
              if (in_frontier_[w]) {
                if (try_visit(u)) {
                  local.push_back(u);
                  local_degree += g_.degree(u);
                }
                break;
              }
            }
          }
#pragma omp critical(ecl_bfs_merge)
          {
            next.insert(next.end(), local.begin(), local.end());
            next_degree += local_degree;
          }
        }
        for (const vertex_t v : frontier) in_frontier_[v] = 0;
      } else {
#pragma omp parallel num_threads(nt_)
        {
          std::vector<vertex_t> local;
          std::uint64_t local_degree = 0;
#pragma omp for schedule(guided) nowait
          for (std::size_t i = 0; i < frontier.size(); ++i) {
            for (const vertex_t u : g_.neighbors(frontier[i])) {
              if (try_visit(u)) {
                local.push_back(u);
                local_degree += g_.degree(u);
              }
            }
          }
#pragma omp critical(ecl_bfs_merge)
          {
            next.insert(next.end(), local.begin(), local.end());
            next_degree += local_degree;
          }
        }
      }

      reached += static_cast<vertex_t>(next.size());
      frontier = std::move(next);
      frontier_degree = next_degree;
      on_wave_done();
    }
    return reached;
  }

  [[nodiscard]] int switches() const { return switches_; }

 private:
  const Graph& g_;
  int nt_;
  double alpha_;
  double beta_;
  std::vector<std::uint8_t> in_frontier_;
  int switches_ = 0;
};

}  // namespace

BfsResult bfs(const Graph& g, vertex_t source, const BfsOptions& opts) {
  BfsResult result;
  result.distance.assign(g.num_vertices(), kUnreachable);
  if (g.num_vertices() == 0) return result;
  result.distance[source] = 0;
  std::vector<std::uint32_t>& dist = result.distance;

  // All vertices claimed during wave k receive distance `level` = k+1.
  std::uint32_t level = 1;
  const auto try_visit = [&dist, &level](vertex_t u) {
    std::atomic_ref<std::uint32_t> slot(dist[u]);
    std::uint32_t expected = kUnreachable;
    return slot.load(std::memory_order_relaxed) == kUnreachable &&
           slot.compare_exchange_strong(expected, level, std::memory_order_relaxed);
  };
  const auto is_unvisited = [&dist](vertex_t u) {
    return std::atomic_ref<std::uint32_t>(dist[u]).load(std::memory_order_relaxed) ==
           kUnreachable;
  };

  Traversal traversal(g, opts);
  result.num_reached =
      traversal.run(source, try_visit, is_unvisited, [&level] { ++level; });
  result.direction_switches = traversal.switches();
  return result;
}

vertex_t bfs_label(const Graph& g, vertex_t source, vertex_t label_value,
                   std::vector<vertex_t>& label, const BfsOptions& opts) {
  if (label[source] != kInvalidVertex) return 0;
  label[source] = label_value;

  const auto try_visit = [&label, label_value](vertex_t u) {
    std::atomic_ref<vertex_t> slot(label[u]);
    vertex_t expected = kInvalidVertex;
    return slot.load(std::memory_order_relaxed) == kInvalidVertex &&
           slot.compare_exchange_strong(expected, label_value, std::memory_order_relaxed);
  };
  const auto is_unvisited = [&label](vertex_t u) {
    return std::atomic_ref<vertex_t>(label[u]).load(std::memory_order_relaxed) ==
           kInvalidVertex;
  };

  Traversal traversal(g, opts);
  return traversal.run(source, try_visit, is_unvisited, [] {});
}

}  // namespace ecl
