// Structured (non-random) generators: grids, triangulations, paths, stars,
// cliques. These have exactly known component structure and are the
// backbone of the correctness tests.
#include <stdexcept>

#include "graph/builder.h"
#include "graph/generators.h"

namespace ecl {

Graph gen_grid2d(vertex_t rows, vertex_t cols) {
  const auto n = static_cast<std::uint64_t>(rows) * cols;
  if (n > static_cast<std::uint64_t>(kInvalidVertex)) {
    throw std::invalid_argument("gen_grid2d: grid too large");
  }
  GraphBuilder b(static_cast<vertex_t>(n));
  auto id = [cols](vertex_t r, vertex_t c) { return r * cols + c; };
  for (vertex_t r = 0; r < rows; ++r) {
    for (vertex_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) b.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) b.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return b.build();
}

Graph gen_delaunay_like(vertex_t rows, vertex_t cols) {
  const auto n = static_cast<std::uint64_t>(rows) * cols;
  if (n > static_cast<std::uint64_t>(kInvalidVertex)) {
    throw std::invalid_argument("gen_delaunay_like: grid too large");
  }
  GraphBuilder b(static_cast<vertex_t>(n));
  auto id = [cols](vertex_t r, vertex_t c) { return r * cols + c; };
  for (vertex_t r = 0; r < rows; ++r) {
    for (vertex_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) b.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) b.add_edge(id(r, c), id(r + 1, c));
      // Alternating diagonals triangulate each grid cell, matching the
      // average degree (~6) of a Delaunay triangulation while staying planar.
      if (r + 1 < rows && c + 1 < cols) {
        if ((r + c) % 2 == 0) {
          b.add_edge(id(r, c), id(r + 1, c + 1));
        } else {
          b.add_edge(id(r, c + 1), id(r + 1, c));
        }
      }
    }
  }
  return b.build();
}

Graph gen_star(vertex_t n) {
  if (n == 0) return Graph();
  GraphBuilder b(n);
  for (vertex_t v = 1; v < n; ++v) b.add_edge(0, v);
  return b.build();
}

Graph gen_path(vertex_t n) {
  GraphBuilder b(n);
  for (vertex_t v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
  return b.build();
}

Graph gen_complete(vertex_t n) {
  GraphBuilder b(n);
  for (vertex_t u = 0; u < n; ++u) {
    for (vertex_t v = u + 1; v < n; ++v) b.add_edge(u, v);
  }
  return b.build();
}

Graph gen_clique_forest(vertex_t count, vertex_t clique_size) {
  const auto n = static_cast<std::uint64_t>(count) * clique_size;
  if (n > static_cast<std::uint64_t>(kInvalidVertex)) {
    throw std::invalid_argument("gen_clique_forest: too many vertices");
  }
  GraphBuilder b(static_cast<vertex_t>(n));
  for (vertex_t k = 0; k < count; ++k) {
    const vertex_t base = k * clique_size;
    for (vertex_t u = 0; u < clique_size; ++u) {
      for (vertex_t v = u + 1; v < clique_size; ++v) {
        b.add_edge(base + u, base + v);
      }
    }
  }
  return b.build();
}

Graph gen_isolated(vertex_t n) {
  GraphBuilder b(n);
  return b.build();
}

}  // namespace ecl
