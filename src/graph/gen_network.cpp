// Network-shaped generators: road maps, preferential attachment, citation
// networks, and web crawls.
#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "common/rng.h"
#include "graph/builder.h"
#include "graph/generators.h"

namespace ecl {

Graph gen_road_network(vertex_t n, std::uint64_t seed) {
  if (n == 0) return Graph();
  // Embed the vertices on a near-square jittered lattice and connect each
  // vertex to its lattice neighbors with high probability, occasionally
  // skipping one (a dead end) or adding a short diagonal (a shortcut road).
  // The result has degree ~2-4, a giant component and long shortest paths,
  // like europe_osm / USA-road-d.
  const auto side = static_cast<vertex_t>(std::ceil(std::sqrt(static_cast<double>(n))));
  Xoshiro256 rng(seed);
  GraphBuilder b(n);
  auto id = [side](vertex_t r, vertex_t c) { return r * side + c; };
  for (vertex_t r = 0; r < side; ++r) {
    for (vertex_t c = 0; c < side; ++c) {
      const std::uint64_t u = id(r, c);
      if (u >= n) continue;
      const bool right_ok = c + 1 < side && id(r, c + 1) < n;
      const bool down_ok = r + 1 < side && id(r + 1, c) < n;
      if (right_ok && rng.uniform() < 0.92) {
        b.add_edge(static_cast<vertex_t>(u), id(r, c + 1));
      }
      if (down_ok && rng.uniform() < 0.92) {
        b.add_edge(static_cast<vertex_t>(u), id(r + 1, c));
      }
      if (right_ok && down_ok && id(r + 1, c + 1) < n && rng.uniform() < 0.05) {
        b.add_edge(static_cast<vertex_t>(u), id(r + 1, c + 1));
      }
    }
  }
  return b.build();
}

Graph gen_preferential_attachment(vertex_t n, vertex_t edges_per_vertex, std::uint64_t seed) {
  if (n == 0) return Graph();
  Xoshiro256 rng(seed);
  // Classic Barabasi-Albert via the repeated-endpoints trick: sampling a
  // uniform position in the running endpoint list picks vertices with
  // probability proportional to their degree.
  std::vector<vertex_t> endpoints;
  endpoints.reserve(2ULL * n * edges_per_vertex);
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(n) * edges_per_vertex);
  for (vertex_t v = 0; v < n; ++v) {
    const vertex_t links = std::min<vertex_t>(edges_per_vertex, v);
    for (vertex_t j = 0; j < links; ++j) {
      vertex_t target;
      if (endpoints.empty() || rng.uniform() < 0.1) {
        target = static_cast<vertex_t>(rng.bounded(v));  // uniform escape hatch
      } else {
        target = endpoints[rng.bounded(endpoints.size())];
      }
      edges.emplace_back(v, target);
      endpoints.push_back(v);
      endpoints.push_back(target);
    }
  }
  return build_graph(n, edges);
}

Graph gen_citation(vertex_t n, vertex_t refs_per_vertex, double recency_bias,
                   std::uint64_t seed) {
  if (n == 0) return Graph();
  if (recency_bias < 0.0 || recency_bias > 1.0) {
    throw std::invalid_argument("gen_citation: recency_bias must be in [0,1]");
  }
  Xoshiro256 rng(seed);
  std::vector<vertex_t> endpoints;       // degree-proportional sampling pool
  std::vector<bool> withdrawn(n, false); // papers that neither cite nor get cited
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(n) * refs_per_vertex);
  for (vertex_t v = 0; v < n; ++v) {
    // A few papers cite nothing and are never cited: they become the small
    // extra components seen in cit-Patents (3627 CCs in the paper's Table 2).
    if (rng.uniform() < 0.02) {
      withdrawn[v] = true;
      continue;
    }
    const vertex_t refs = std::min<vertex_t>(refs_per_vertex, v);
    for (vertex_t j = 0; j < refs; ++j) {
      vertex_t target = kInvalidVertex;
      for (int attempt = 0; attempt < 4 && target == kInvalidVertex; ++attempt) {
        vertex_t candidate;
        if (rng.uniform() < recency_bias) {
          // Cite a recent paper: uniform over the last window.
          const vertex_t window = std::min<vertex_t>(v, 1024);
          candidate = static_cast<vertex_t>(v - 1 - rng.bounded(window));
        } else if (!endpoints.empty()) {
          candidate = endpoints[rng.bounded(endpoints.size())];  // cite a classic
        } else {
          candidate = static_cast<vertex_t>(rng.bounded(v));
        }
        if (!withdrawn[candidate]) target = candidate;
      }
      if (target == kInvalidVertex) continue;  // all draws hit withdrawn papers
      edges.emplace_back(v, target);
      endpoints.push_back(target);
    }
  }
  return build_graph(n, edges);
}

Graph gen_web_graph(vertex_t n, std::uint64_t seed) {
  if (n == 0) return Graph();
  Xoshiro256 rng(seed);
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(n) * 12);
  auto b_edge = [&edges](vertex_t a, vertex_t b) { edges.emplace_back(a, b); };

  // Model a crawl as a sequence of "sites": dense star-like clusters whose
  // hub pages also link to earlier hubs. This yields the web-graph signature
  // in Table 2: dmin = 0 (isolated pages), very large dmax (hubs), many
  // small components plus one giant one.
  std::vector<vertex_t> hubs;
  vertex_t v = 0;
  while (v < n) {
    const vertex_t site_size =
        static_cast<vertex_t>(2 + rng.bounded(62));  // pages in this site
    const vertex_t hub = v;
    const vertex_t end = static_cast<vertex_t>(
        std::min<std::uint64_t>(n, static_cast<std::uint64_t>(v) + site_size));
    // ~2% of sites are crawl fragments disconnected from everything else.
    const bool connected_site = rng.uniform() > 0.02;
    // ~3% of pages are crawled but never linked: the dmin = 0 vertices of
    // Table 2. Decide them up front so navigation links can avoid them.
    std::vector<vertex_t> linked_pages;
    for (vertex_t page = v + 1; page < end; ++page) {
      if (rng.uniform() >= 0.03) linked_pages.push_back(page);
    }
    for (const vertex_t page : linked_pages) {
      b_edge(hub, page);
      // Dense intra-site navigation (menus, breadcrumbs, related links):
      // web crawls average ~20-28 directed edges per page (Table 2).
      const int nav_links = 4 + static_cast<int>(rng.bounded(8));
      for (int l = 0; l < nav_links; ++l) {
        const vertex_t other = linked_pages[rng.bounded(linked_pages.size())];
        if (other != page) b_edge(page, other);
      }
      // Occasional outbound link from a plain page to an earlier site.
      if (!hubs.empty() && rng.uniform() < 0.15 && connected_site) {
        b_edge(page, hubs[rng.bounded(hubs.size())]);
      }
    }
    if (connected_site && !hubs.empty()) {
      // The hub links to a few earlier hubs, preferentially recent+popular.
      const int out_links = 1 + static_cast<int>(rng.bounded(3));
      for (int j = 0; j < out_links; ++j) {
        const vertex_t target = hubs[rng.bounded(hubs.size())];
        b_edge(hub, target);
      }
    }
    hubs.push_back(hub);
    v = end;
  }
  return build_graph(n, edges);
}

}  // namespace ecl
