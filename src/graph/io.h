// Graph file I/O.
//
// The paper pulls inputs from four repositories (SNAP, SMC, DIMACS, Galois)
// with different on-disk formats; like the authors ("we changed the code
// that reads in the input graph or wrote graph converters", §4) we support
// each format plus a fast binary CSR container:
//
//   * SNAP / plain edge list: one "u v" pair per line, '#' comments.
//   * DIMACS challenge 9 (.gr): "c" comments, "p sp <n> <m>" header,
//     "a <u> <v> <w>" arcs, 1-based vertices.
//   * MatrixMarket coordinate (.mtx): "%%MatrixMarket" header, "%" comments,
//     "<rows> <cols> <nnz>" size line, 1-based entries.
//   * ECL binary (.eclg): little-endian [magic, n, m, offsets, adjacency].
//
// All loaders condition the input through GraphBuilder (symmetrize, drop
// self-loops, dedupe), matching the paper's preprocessing.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/builder.h"
#include "graph/graph.h"

namespace ecl {

/// Loads a SNAP-style edge list. Vertex IDs are compacted to [0, n).
/// Throws std::runtime_error on unreadable/malformed input.
[[nodiscard]] Graph load_edge_list(const std::string& path, const BuildOptions& opts = {});
[[nodiscard]] Graph read_edge_list(std::istream& in, const BuildOptions& opts = {});

/// Loads a DIMACS challenge-9 .gr file (edge weights are ignored; CC does
/// not use them). Throws std::runtime_error on malformed input.
[[nodiscard]] Graph load_dimacs(const std::string& path, const BuildOptions& opts = {});
[[nodiscard]] Graph read_dimacs(std::istream& in, const BuildOptions& opts = {});

/// Loads a MatrixMarket coordinate-format sparse matrix as a graph
/// (pattern/real/integer; values ignored). Throws on malformed input.
[[nodiscard]] Graph load_matrix_market(const std::string& path, const BuildOptions& opts = {});
[[nodiscard]] Graph read_matrix_market(std::istream& in, const BuildOptions& opts = {});

/// Binary CSR container: exact round-trip of the in-memory representation.
void save_binary(const Graph& g, const std::string& path);
[[nodiscard]] Graph load_binary(const std::string& path);

// Writers for the text formats, mirroring the loaders above. Each
// undirected edge is emitted once (as "larger smaller"); since DIMACS and
// MatrixMarket headers carry the vertex count, those two formats round-trip
// isolated vertices and the empty graph exactly. The edge-list format has
// no header, so isolated vertices are lost and IDs are re-compacted on
// load — an edge-list round trip preserves connectivity structure only.

/// SNAP-style edge list: '#' header comment, one "u v" line per edge.
void save_edge_list(const Graph& g, const std::string& path);
void write_edge_list(const Graph& g, std::ostream& out);

/// DIMACS challenge-9 .gr: "p sp <n> <m>" header, 1-based "a u v 1" arcs.
void save_dimacs(const Graph& g, const std::string& path);
void write_dimacs(const Graph& g, std::ostream& out);

/// MatrixMarket coordinate pattern symmetric, 1-based entries.
void save_matrix_market(const Graph& g, const std::string& path);
void write_matrix_market(const Graph& g, std::ostream& out);

/// Dispatches on file extension: .gr -> DIMACS, .mtx -> MatrixMarket,
/// .eclg -> binary, anything else -> edge list.
[[nodiscard]] Graph load_auto(const std::string& path);

/// Writer twin of load_auto: picks the format from the extension.
void save_auto(const Graph& g, const std::string& path);

}  // namespace ecl
