#include "graph/io.h"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <vector>

namespace ecl {

namespace {

constexpr std::uint64_t kBinaryMagic = 0x45434c4347313041ULL;  // "ECLCG10A"

/// Declared sizes in file headers are attacker-controlled: a 40-byte file
/// claiming 10^18 edges must not drive a pre-allocation. reserve() at most
/// this much up front; honest larger inputs just grow geometrically.
constexpr std::uint64_t kMaxTrustedReserve = 1u << 20;

[[noreturn]] void fail(const std::string& what) { throw std::runtime_error(what); }

/// Validates a declared vertex count before it is narrowed to vertex_t.
/// kInvalidVertex (2^32-1) is excluded too — it is the sentinel.
vertex_t checked_vertex_count(std::uint64_t n, const char* format) {
  if (n >= static_cast<std::uint64_t>(kInvalidVertex)) {
    fail(std::string(format) + " vertex count overflows 32-bit vertex ids: " +
         std::to_string(n));
  }
  return static_cast<vertex_t>(n);
}

std::ifstream open_or_throw(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail("cannot open graph file: " + path);
  return in;
}

/// Remaps arbitrary 64-bit vertex IDs (SNAP files routinely skip IDs) to a
/// dense [0, n) range in first-appearance order.
class IdCompactor {
 public:
  vertex_t map(std::uint64_t raw) {
    if (next_ == kInvalidVertex) fail("edge list has more than 2^32-2 distinct vertex ids");
    const auto [it, inserted] = ids_.try_emplace(raw, next_);
    if (inserted) ++next_;
    return it->second;
  }
  [[nodiscard]] vertex_t size() const { return next_; }

 private:
  std::unordered_map<std::uint64_t, vertex_t> ids_;
  vertex_t next_ = 0;
};

}  // namespace

Graph read_edge_list(std::istream& in, const BuildOptions& opts) {
  IdCompactor compact;
  std::vector<Edge> edges;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ss(line);
    std::uint64_t u = 0;
    std::uint64_t v = 0;
    if (!(ss >> u >> v)) fail("malformed edge list line: " + line);
    edges.emplace_back(compact.map(u), compact.map(v));
  }
  return build_graph(compact.size(), edges, opts);
}

Graph load_edge_list(const std::string& path, const BuildOptions& opts) {
  auto in = open_or_throw(path);
  return read_edge_list(in, opts);
}

Graph read_dimacs(std::istream& in, const BuildOptions& opts) {
  std::string line;
  vertex_t n = 0;
  std::vector<Edge> edges;
  bool saw_problem = false;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == 'c') continue;
    std::istringstream ss(line);
    char tag = 0;
    ss >> tag;
    if (tag == 'p') {
      std::string kind;
      std::uint64_t nn = 0;
      std::uint64_t mm = 0;
      if (!(ss >> kind >> nn >> mm)) fail("malformed DIMACS problem line: " + line);
      n = checked_vertex_count(nn, "DIMACS");
      edges.reserve(static_cast<std::size_t>(std::min(mm, kMaxTrustedReserve)));
      saw_problem = true;
    } else if (tag == 'a' || tag == 'e') {
      if (!saw_problem) fail("DIMACS edge before problem line");
      std::uint64_t u = 0;
      std::uint64_t v = 0;
      if (!(ss >> u >> v)) fail("malformed DIMACS arc line: " + line);
      if (u == 0 || v == 0 || u > n || v > n) fail("DIMACS vertex out of range: " + line);
      edges.emplace_back(static_cast<vertex_t>(u - 1), static_cast<vertex_t>(v - 1));
    }
  }
  if (!saw_problem) fail("DIMACS file has no problem line");
  return build_graph(n, edges, opts);
}

Graph load_dimacs(const std::string& path, const BuildOptions& opts) {
  auto in = open_or_throw(path);
  return read_dimacs(in, opts);
}

Graph read_matrix_market(std::istream& in, const BuildOptions& opts) {
  std::string line;
  if (!std::getline(in, line) || line.rfind("%%MatrixMarket", 0) != 0) {
    fail("not a MatrixMarket file");
  }
  if (line.find("coordinate") == std::string::npos) {
    fail("only coordinate-format MatrixMarket files are supported");
  }
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') break;
  }
  std::istringstream size_line(line);
  std::uint64_t rows = 0;
  std::uint64_t cols = 0;
  std::uint64_t nnz = 0;
  if (!(size_line >> rows >> cols >> nnz)) fail("malformed MatrixMarket size line");
  const vertex_t n = checked_vertex_count(std::max(rows, cols), "MatrixMarket");

  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(std::min(nnz, kMaxTrustedReserve)));
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '%') continue;
    std::istringstream ss(line);
    std::uint64_t r = 0;
    std::uint64_t c = 0;
    if (!(ss >> r >> c)) fail("malformed MatrixMarket entry: " + line);
    if (r == 0 || c == 0 || r > n || c > n) fail("MatrixMarket entry out of range: " + line);
    edges.emplace_back(static_cast<vertex_t>(r - 1), static_cast<vertex_t>(c - 1));
  }
  return build_graph(n, edges, opts);
}

Graph load_matrix_market(const std::string& path, const BuildOptions& opts) {
  auto in = open_or_throw(path);
  return read_matrix_market(in, opts);
}

void save_binary(const Graph& g, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) fail("cannot write graph file: " + path);
  const std::uint64_t n = g.num_vertices();
  const std::uint64_t m = g.num_edges();
  out.write(reinterpret_cast<const char*>(&kBinaryMagic), sizeof(kBinaryMagic));
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  out.write(reinterpret_cast<const char*>(&m), sizeof(m));
  out.write(reinterpret_cast<const char*>(g.offsets().data()),
            static_cast<std::streamsize>(g.offsets().size() * sizeof(edge_t)));
  out.write(reinterpret_cast<const char*>(g.adjacency().data()),
            static_cast<std::streamsize>(g.adjacency().size() * sizeof(vertex_t)));
  if (!out) fail("short write to graph file: " + path);
}

Graph load_binary(const std::string& path) {
  auto in = open_or_throw(path);
  in.seekg(0, std::ios::end);
  const auto file_size = static_cast<std::uint64_t>(in.tellg());
  in.seekg(0, std::ios::beg);
  std::uint64_t magic = 0;
  std::uint64_t n = 0;
  std::uint64_t m = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  in.read(reinterpret_cast<char*>(&m), sizeof(m));
  if (!in || magic != kBinaryMagic) fail("bad binary graph header: " + path);
  // The header's n and m are untrusted. Check they fit the vertex id space
  // AND the actual file size before allocating (n+1)*8 + m*4 bytes — a
  // 24-byte file must not drive a multi-GiB allocation or an n+1 overflow.
  (void)checked_vertex_count(n, "binary graph");
  const std::uint64_t body_bytes = 3 * sizeof(std::uint64_t);
  if (file_size < body_bytes || (n + 1) > (file_size - body_bytes) / sizeof(edge_t) ||
      m > (file_size - body_bytes - (n + 1) * sizeof(edge_t)) / sizeof(vertex_t)) {
    fail("binary graph header declares more data than the file holds: " + path);
  }
  std::vector<edge_t> offsets(n + 1);
  std::vector<vertex_t> adjacency(m);
  in.read(reinterpret_cast<char*>(offsets.data()),
          static_cast<std::streamsize>(offsets.size() * sizeof(edge_t)));
  in.read(reinterpret_cast<char*>(adjacency.data()),
          static_cast<std::streamsize>(adjacency.size() * sizeof(vertex_t)));
  if (!in) fail("truncated binary graph: " + path);
  if (offsets.front() != 0 || offsets.back() != m) fail("corrupt CSR offsets: " + path);
  for (std::size_t i = 1; i < offsets.size(); ++i) {
    if (offsets[i] < offsets[i - 1]) fail("corrupt CSR offsets: " + path);
  }
  for (const vertex_t v : adjacency) {
    if (v >= n) fail("corrupt CSR adjacency: " + path);
  }
  return Graph(std::move(offsets), std::move(adjacency));
}

namespace {

std::ofstream open_for_write(const std::string& path) {
  std::ofstream out(path);
  if (!out) fail("cannot write graph file: " + path);
  return out;
}

void check_write(const std::ostream& out, const char* format) {
  if (!out) fail(std::string("short write emitting ") + format + " graph");
}

/// Calls fn(v, u) once per undirected edge, with v >= u (the conditioned
/// CSR stores both directions; emit the downward one).
template <typename Fn>
void for_each_undirected_edge(const Graph& g, Fn&& fn) {
  for (vertex_t v = 0; v < g.num_vertices(); ++v) {
    for (const vertex_t u : g.neighbors(v)) {
      if (u <= v) fn(v, u);
    }
  }
}

}  // namespace

void write_edge_list(const Graph& g, std::ostream& out) {
  out << "# " << g.num_vertices() << " vertices, " << g.num_edges()
      << " directed edges\n";
  for_each_undirected_edge(g, [&](vertex_t v, vertex_t u) { out << v << ' ' << u << '\n'; });
  check_write(out, "edge list");
}

void save_edge_list(const Graph& g, const std::string& path) {
  auto out = open_for_write(path);
  write_edge_list(g, out);
}

void write_dimacs(const Graph& g, std::ostream& out) {
  out << "c ECL-CC graph\n";
  out << "p sp " << g.num_vertices() << ' ' << g.num_edges() / 2 << '\n';
  for_each_undirected_edge(
      g, [&](vertex_t v, vertex_t u) { out << "a " << v + 1 << ' ' << u + 1 << " 1\n"; });
  check_write(out, "DIMACS");
}

void save_dimacs(const Graph& g, const std::string& path) {
  auto out = open_for_write(path);
  write_dimacs(g, out);
}

void write_matrix_market(const Graph& g, std::ostream& out) {
  out << "%%MatrixMarket matrix coordinate pattern symmetric\n";
  out << g.num_vertices() << ' ' << g.num_vertices() << ' ' << g.num_edges() / 2 << '\n';
  for_each_undirected_edge(
      g, [&](vertex_t v, vertex_t u) { out << v + 1 << ' ' << u + 1 << '\n'; });
  check_write(out, "MatrixMarket");
}

void save_matrix_market(const Graph& g, const std::string& path) {
  auto out = open_for_write(path);
  write_matrix_market(g, out);
}

namespace {

bool ends_with(const std::string& path, const char* suffix) {
  const std::string s(suffix);
  return path.size() >= s.size() &&
         path.compare(path.size() - s.size(), s.size(), s) == 0;
}

}  // namespace

Graph load_auto(const std::string& path) {
  if (ends_with(path, ".gr")) return load_dimacs(path);
  if (ends_with(path, ".mtx")) return load_matrix_market(path);
  if (ends_with(path, ".eclg")) return load_binary(path);
  return load_edge_list(path);
}

void save_auto(const Graph& g, const std::string& path) {
  if (ends_with(path, ".gr")) return save_dimacs(g, path);
  if (ends_with(path, ".mtx")) return save_matrix_market(g, path);
  if (ends_with(path, ".eclg")) return save_binary(g, path);
  return save_edge_list(g, path);
}

}  // namespace ecl
