#include "graph/stats.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

namespace ecl {

GraphStats compute_stats(const Graph& g, std::string name) {
  GraphStats s;
  s.name = std::move(name);
  s.num_vertices = g.num_vertices();
  s.num_edges = g.num_edges();
  if (g.num_vertices() == 0) return s;

  vertex_t dmin = std::numeric_limits<vertex_t>::max();
  vertex_t dmax = 0;
  for (vertex_t v = 0; v < g.num_vertices(); ++v) {
    const vertex_t d = g.degree(v);
    dmin = std::min(dmin, d);
    dmax = std::max(dmax, d);
  }
  s.min_degree = dmin;
  s.max_degree = dmax;
  s.avg_degree = static_cast<double>(g.num_edges()) / static_cast<double>(g.num_vertices());
  s.num_components = count_components(g);
  return s;
}

std::vector<vertex_t> reference_components(const Graph& g) {
  const vertex_t n = g.num_vertices();
  std::vector<vertex_t> label(n, kInvalidVertex);
  std::vector<vertex_t> queue;
  queue.reserve(n);

  for (vertex_t source = 0; source < n; ++source) {
    if (label[source] != kInvalidVertex) continue;
    // `source` is the smallest unvisited ID, hence the smallest ID in its
    // component (all smaller vertices in the component would have reached
    // it already) — so labels are canonical by construction.
    label[source] = source;
    queue.clear();
    queue.push_back(source);
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const vertex_t u = queue[head];
      for (const vertex_t w : g.neighbors(u)) {
        if (label[w] == kInvalidVertex) {
          label[w] = source;
          queue.push_back(w);
        }
      }
    }
  }
  return label;
}

vertex_t count_components(const Graph& g) {
  const auto labels = reference_components(g);
  vertex_t count = 0;
  for (vertex_t v = 0; v < g.num_vertices(); ++v) {
    if (labels[v] == v) ++count;
  }
  return count;
}

std::vector<vertex_t> component_sizes(const Graph& g) {
  const auto labels = reference_components(g);
  std::unordered_map<vertex_t, vertex_t> size_of;
  for (const vertex_t l : labels) ++size_of[l];
  std::vector<vertex_t> sizes;
  sizes.reserve(size_of.size());
  for (const auto& [label, size] : size_of) sizes.push_back(size);
  std::sort(sizes.begin(), sizes.end(), std::greater<>());
  return sizes;
}

}  // namespace ecl
