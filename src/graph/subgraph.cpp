#include "graph/subgraph.h"

#include <stdexcept>
#include <unordered_map>

#include "graph/stats.h"

namespace ecl {

Subgraph induced_subgraph(const Graph& g, std::span<const std::uint8_t> keep) {
  if (keep.size() != g.num_vertices()) {
    throw std::invalid_argument("induced_subgraph: keep mask size mismatch");
  }
  Subgraph sub;
  sub.local_id.assign(g.num_vertices(), kInvalidVertex);
  for (vertex_t v = 0; v < g.num_vertices(); ++v) {
    if (keep[v]) {
      sub.local_id[v] = static_cast<vertex_t>(sub.original_id.size());
      sub.original_id.push_back(v);
    }
  }

  const auto n_sub = static_cast<vertex_t>(sub.original_id.size());
  std::vector<edge_t> offsets(static_cast<std::size_t>(n_sub) + 1, 0);
  std::vector<vertex_t> adjacency;
  for (vertex_t lv = 0; lv < n_sub; ++lv) {
    offsets[lv] = static_cast<edge_t>(adjacency.size());
    for (const vertex_t u : g.neighbors(sub.original_id[lv])) {
      if (keep[u]) adjacency.push_back(sub.local_id[u]);
    }
  }
  offsets[n_sub] = static_cast<edge_t>(adjacency.size());
  sub.graph = Graph(std::move(offsets), std::move(adjacency));
  return sub;
}

Subgraph extract_component(const Graph& g, std::span<const vertex_t> labels,
                           vertex_t component) {
  if (labels.size() != g.num_vertices()) {
    throw std::invalid_argument("extract_component: label array size mismatch");
  }
  std::vector<std::uint8_t> keep(g.num_vertices());
  for (vertex_t v = 0; v < g.num_vertices(); ++v) {
    keep[v] = labels[v] == component ? 1 : 0;
  }
  return induced_subgraph(g, keep);
}

Subgraph largest_component(const Graph& g) {
  const auto labels = reference_components(g);
  std::unordered_map<vertex_t, vertex_t> sizes;
  for (const vertex_t l : labels) ++sizes[l];
  vertex_t best_label = 0;
  vertex_t best_size = 0;
  for (const auto& [label, size] : sizes) {
    if (size > best_size || (size == best_size && label < best_label)) {
      best_label = label;
      best_size = size;
    }
  }
  return extract_component(g, labels, best_label);
}

}  // namespace ecl
