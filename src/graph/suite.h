// The benchmark input suite: scaled synthetic stand-ins for the paper's 18
// graphs (Table 2).
//
// Sizes default to roughly 1/32nd of the originals so the entire
// evaluation runs in minutes on one core; the *relative* sizes and the
// structural families are preserved. Pass scale > 1 to grow toward the
// paper's sizes on bigger machines.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "graph/graph.h"

namespace ecl {

struct SuiteEntry {
  std::string name;    // paper's graph name, e.g. "europe_osm"
  std::string family;  // generator family, e.g. "road map"
  std::function<Graph(double scale)> make;
};

/// All 18 suite entries in the paper's Table 2 order.
[[nodiscard]] const std::vector<SuiteEntry>& paper_suite();

/// Names of the suite graphs, in order.
[[nodiscard]] std::vector<std::string> suite_names();

/// Builds one suite graph by name; throws std::invalid_argument for unknown
/// names. `scale` multiplies the vertex count (default sizes at 1.0).
[[nodiscard]] Graph make_suite_graph(std::string_view name, double scale = 1.0);

/// A reduced five-graph suite covering the extremes (long-diameter road,
/// grid, skewed Kronecker, uniform random, web) for quick ablations.
[[nodiscard]] std::vector<std::string> small_suite_names();

}  // namespace ecl
