// GraphBuilder: edge list -> clean CSR graph.
//
// Reproduces the paper's input conditioning (§4): "we modified the graphs to
// eliminate loops and multiple edges between the same two vertices. We added
// any missing back edges to make the graphs undirected."
#pragma once

#include <vector>

#include "graph/graph.h"

namespace ecl {

struct BuildOptions {
  /// Add (v,u) for every (u,v) so the graph is undirected.
  bool symmetrize = true;
  /// Drop (u,u) edges.
  bool remove_self_loops = true;
  /// Collapse parallel edges.
  bool deduplicate = true;
  /// Sort each adjacency list ascending. The paper's CSR inputs are sorted;
  /// Init3 ("first neighbor with a smaller ID") depends on list order, so
  /// keeping this on makes runs deterministic.
  bool sort_neighbors = true;
};

class GraphBuilder {
 public:
  /// `num_vertices` fixes n; edges may then reference vertices [0, n).
  explicit GraphBuilder(vertex_t num_vertices) : num_vertices_(num_vertices) {}

  /// Appends a directed edge. Endpoints must be < num_vertices.
  void add_edge(vertex_t u, vertex_t v);

  /// Bulk append.
  void add_edges(const std::vector<Edge>& edges);

  /// Number of raw (pre-conditioning) edges added so far.
  [[nodiscard]] std::size_t raw_edge_count() const { return edges_.size(); }

  /// Conditions the edge list per `opts` and emits the CSR graph.
  /// The builder is left empty afterwards.
  [[nodiscard]] Graph build(const BuildOptions& opts = {});

 private:
  vertex_t num_vertices_;
  std::vector<Edge> edges_;
};

/// Convenience: build a conditioned graph straight from an edge list.
[[nodiscard]] Graph build_graph(vertex_t num_vertices, const std::vector<Edge>& edges,
                                const BuildOptions& opts = {});

}  // namespace ecl
