// Graph property reporting (paper Table 2) and the reference CC labeling
// used as ground truth throughout the test suite.
#pragma once

#include <string>
#include <vector>

#include "graph/graph.h"

namespace ecl {

/// The per-graph columns of the paper's Table 2.
struct GraphStats {
  std::string name;
  vertex_t num_vertices = 0;
  edge_t num_edges = 0;  // directed edges, as in the paper
  vertex_t min_degree = 0;
  double avg_degree = 0.0;
  vertex_t max_degree = 0;
  vertex_t num_components = 0;
};

/// Computes all Table 2 columns for `g` (component count via BFS).
[[nodiscard]] GraphStats compute_stats(const Graph& g, std::string name);

/// Serial BFS connected-components labeling: every vertex is labeled with
/// the smallest vertex ID in its component. This is the ground truth the
/// paper's codes verify against ("comparing it to the solution of the
/// serial code", §4).
[[nodiscard]] std::vector<vertex_t> reference_components(const Graph& g);

/// Number of distinct connected components of `g`.
[[nodiscard]] vertex_t count_components(const Graph& g);

/// Histogram of component sizes, descending. Entry i is the size of the
/// (i+1)-largest component.
[[nodiscard]] std::vector<vertex_t> component_sizes(const Graph& g);

}  // namespace ecl
