#include "graph/builder.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace ecl {

void GraphBuilder::add_edge(vertex_t u, vertex_t v) {
  if (u >= num_vertices_ || v >= num_vertices_) {
    throw std::out_of_range("GraphBuilder::add_edge: endpoint out of range");
  }
  edges_.emplace_back(u, v);
}

void GraphBuilder::add_edges(const std::vector<Edge>& edges) {
  edges_.reserve(edges_.size() + edges.size());
  for (const auto& [u, v] : edges) add_edge(u, v);
}

Graph GraphBuilder::build(const BuildOptions& opts) {
  std::vector<Edge> edges = std::move(edges_);
  edges_.clear();

  if (opts.remove_self_loops) {
    std::erase_if(edges, [](const Edge& e) { return e.first == e.second; });
  }

  if (opts.symmetrize) {
    const std::size_t original = edges.size();
    edges.reserve(original * 2);
    for (std::size_t i = 0; i < original; ++i) {
      edges.emplace_back(edges[i].second, edges[i].first);
    }
  }

  // Counting-sort style CSR construction: sorting the full edge list once
  // handles grouping by tail, intra-list ordering, and deduplication.
  std::sort(edges.begin(), edges.end());
  if (opts.deduplicate) {
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  }

  std::vector<edge_t> offsets(static_cast<std::size_t>(num_vertices_) + 1, 0);
  for (const auto& [u, v] : edges) ++offsets[u + 1];
  for (std::size_t i = 1; i < offsets.size(); ++i) offsets[i] += offsets[i - 1];

  std::vector<vertex_t> adjacency;
  adjacency.reserve(edges.size());
  for (const auto& [u, v] : edges) adjacency.push_back(v);

  if (!opts.sort_neighbors) {
    // The sorted construction above always yields sorted lists; callers that
    // want unsorted lists get a deterministic pseudo-shuffle per list so that
    // order-sensitive policies (Init3) can be exercised on unsorted input.
    for (vertex_t v = 0; v < num_vertices_; ++v) {
      auto first = adjacency.begin() + static_cast<std::ptrdiff_t>(offsets[v]);
      auto last = adjacency.begin() + static_cast<std::ptrdiff_t>(offsets[v + 1]);
      std::reverse(first, last);
    }
  }

  return Graph(std::move(offsets), std::move(adjacency));
}

Graph build_graph(vertex_t num_vertices, const std::vector<Edge>& edges,
                  const BuildOptions& opts) {
  GraphBuilder builder(num_vertices);
  builder.add_edges(edges);
  return builder.build(opts);
}

}  // namespace ecl
