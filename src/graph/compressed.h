// Compressed CSR graph representation, in the style of Ligra+ (paper §2:
// "Ligra+ internally uses a compressed graph representation, making it
// possible to fit larger graphs into the available memory ... generally
// faster than Ligra when using its fast compression scheme").
//
// Encoding: per vertex, the first neighbor is stored as a zig-zag signed
// delta from the vertex ID, subsequent neighbors as deltas from their
// predecessor (adjacency lists are sorted, so these are positive), all as
// LEB128 varints. Typical suite graphs compress to 30-60% of the plain
// 4-byte adjacency array.
//
// Neighbor access decodes on the fly through a forward-iterator range, so
// every algorithm written against `for (vertex_t u : g.neighbors(v))`
// works unchanged on the compressed form (see core/ecl_cc.h's overloads).
#pragma once

#include <cstdint>
#include <iterator>
#include <vector>

#include "graph/graph.h"

namespace ecl {

class CompressedGraph {
 public:
  CompressedGraph() = default;

  /// Compresses a conditioned CSR graph (adjacency lists must be sorted,
  /// which GraphBuilder guarantees by default).
  [[nodiscard]] static CompressedGraph compress(const Graph& g);

  /// Reconstructs the plain CSR graph (exact round-trip).
  [[nodiscard]] Graph decompress() const;

  [[nodiscard]] vertex_t num_vertices() const {
    return offsets_.empty() ? 0 : static_cast<vertex_t>(offsets_.size() - 1);
  }
  [[nodiscard]] edge_t num_edges() const { return num_edges_; }
  [[nodiscard]] vertex_t degree(vertex_t v) const { return degrees_[v]; }

  /// Bytes used by the compressed adjacency data plus per-vertex metadata.
  [[nodiscard]] std::size_t memory_bytes() const {
    return bytes_.size() + offsets_.size() * sizeof(edge_t) +
           degrees_.size() * sizeof(vertex_t);
  }

  /// Decoding iterator over one adjacency list.
  class NeighborIterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = vertex_t;
    using difference_type = std::ptrdiff_t;

    NeighborIterator() = default;
    NeighborIterator(const std::uint8_t* pos, vertex_t base, vertex_t remaining);

    [[nodiscard]] vertex_t operator*() const { return current_; }
    NeighborIterator& operator++();

    [[nodiscard]] bool operator==(const NeighborIterator& other) const {
      return remaining_ == other.remaining_;
    }

   private:
    void decode_next();

    const std::uint8_t* pos_ = nullptr;
    vertex_t base_ = 0;       // value the next delta is relative to
    vertex_t current_ = 0;    // decoded neighbor
    vertex_t remaining_ = 0;  // neighbors left including current_
    bool first_ = true;
  };

  class NeighborRange {
   public:
    NeighborRange(NeighborIterator begin, NeighborIterator end)
        : begin_(begin), end_(end) {}
    [[nodiscard]] NeighborIterator begin() const { return begin_; }
    [[nodiscard]] NeighborIterator end() const { return end_; }

   private:
    NeighborIterator begin_;
    NeighborIterator end_;
  };

  /// Lazily-decoded neighbors of v, in sorted order.
  [[nodiscard]] NeighborRange neighbors(vertex_t v) const;

 private:
  std::vector<std::uint8_t> bytes_;   // varint-encoded adjacency stream
  std::vector<edge_t> offsets_;       // byte offset of each vertex's list
  std::vector<vertex_t> degrees_;
  edge_t num_edges_ = 0;
};

}  // namespace ecl
