// Randomized generators: uniform random, R-MAT/Kronecker, small world.
#include <cmath>
#include <stdexcept>
#include <vector>

#include "common/rng.h"
#include "graph/builder.h"
#include "graph/generators.h"

namespace ecl {

Graph gen_uniform_random(vertex_t n, edge_t num_undirected_edges, std::uint64_t seed) {
  if (n == 0) return Graph();
  Xoshiro256 rng(seed);
  std::vector<Edge> edges;
  edges.reserve(num_undirected_edges);
  for (edge_t e = 0; e < num_undirected_edges; ++e) {
    const auto u = static_cast<vertex_t>(rng.bounded(n));
    const auto v = static_cast<vertex_t>(rng.bounded(n));
    edges.emplace_back(u, v);
  }
  return build_graph(n, edges);
}

Graph gen_rmat(int scale, edge_t edge_factor, const RmatParams& p, std::uint64_t seed) {
  if (scale <= 0 || scale >= 31) throw std::invalid_argument("gen_rmat: bad scale");
  const double total = p.a + p.b + p.c + p.d;
  if (total <= 0.0) throw std::invalid_argument("gen_rmat: bad probabilities");

  const vertex_t n = vertex_t{1} << scale;
  const edge_t m = edge_factor * static_cast<edge_t>(n);
  const double pa = p.a / total;
  const double pb = p.b / total;
  const double pc = p.c / total;

  Xoshiro256 rng(seed);
  std::vector<Edge> edges;
  edges.reserve(m);
  for (edge_t e = 0; e < m; ++e) {
    vertex_t u = 0;
    vertex_t v = 0;
    for (int bit = scale - 1; bit >= 0; --bit) {
      // Recursively descend into one of the four adjacency-matrix quadrants
      // with a little noise per level, as in the Graph500 reference code, so
      // the degree distribution stays heavy-tailed instead of collapsing.
      const double noise = 0.9 + 0.2 * rng.uniform();
      const double r = rng.uniform();
      if (r < pa * noise) {
        // top-left: both bits 0
      } else if (r < (pa + pb) * noise) {
        v |= vertex_t{1} << bit;
      } else if (r < (pa + pb + pc) * noise) {
        u |= vertex_t{1} << bit;
      } else {
        u |= vertex_t{1} << bit;
        v |= vertex_t{1} << bit;
      }
    }
    edges.emplace_back(u, v);
  }
  return build_graph(n, edges);
}

Graph gen_kronecker(int scale, edge_t edge_factor, std::uint64_t seed) {
  return gen_rmat(scale, edge_factor, RmatParams{0.57, 0.19, 0.19, 0.05}, seed);
}

Graph gen_small_world(vertex_t n, vertex_t k, double rewire_probability, std::uint64_t seed) {
  if (n == 0) return Graph();
  if (k >= n / 2 && n > 1) throw std::invalid_argument("gen_small_world: k too large");
  Xoshiro256 rng(seed);
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(n) * k);
  for (vertex_t v = 0; v < n; ++v) {
    for (vertex_t j = 1; j <= k; ++j) {
      vertex_t w = static_cast<vertex_t>((v + j) % n);
      if (rng.uniform() < rewire_probability) {
        w = static_cast<vertex_t>(rng.bounded(n));
      }
      edges.emplace_back(v, w);
    }
  }
  return build_graph(n, edges);
}

}  // namespace ecl
