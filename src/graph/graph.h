// Immutable CSR (compressed sparse row) graph representation.
//
// All CC implementations in this library operate on this structure. As in
// the paper (§4, Table 2), an undirected graph is stored with both directed
// edges present, so num_edges() counts directed edges (2x the number of
// undirected edges).
#pragma once

#include <cassert>
#include <span>
#include <utility>
#include <vector>

#include "common/types.h"

namespace ecl {

class Graph {
 public:
  Graph() = default;

  /// Takes ownership of a prebuilt CSR. `offsets` must have size n+1 with
  /// offsets[0] == 0 and offsets[n] == adjacency.size(); use GraphBuilder
  /// to construct one from an edge list safely.
  Graph(std::vector<edge_t> offsets, std::vector<vertex_t> adjacency)
      : offsets_(std::move(offsets)), adjacency_(std::move(adjacency)) {
    assert(!offsets_.empty());
    assert(offsets_.front() == 0);
    assert(offsets_.back() == adjacency_.size());
  }

  /// Number of vertices n.
  [[nodiscard]] vertex_t num_vertices() const {
    return static_cast<vertex_t>(offsets_.size() - 1);
  }

  /// Number of *directed* edges (2x undirected when symmetrized).
  [[nodiscard]] edge_t num_edges() const {
    return static_cast<edge_t>(adjacency_.size());
  }

  /// Out-degree of v.
  [[nodiscard]] vertex_t degree(vertex_t v) const {
    assert(v < num_vertices());
    return static_cast<vertex_t>(offsets_[v + 1] - offsets_[v]);
  }

  /// Adjacency list of v in storage order.
  [[nodiscard]] std::span<const vertex_t> neighbors(vertex_t v) const {
    assert(v < num_vertices());
    return {adjacency_.data() + offsets_[v],
            adjacency_.data() + offsets_[v + 1]};
  }

  /// CSR row-offset array (size n+1). Exposed for kernel-style loops that
  /// index edges directly.
  [[nodiscard]] std::span<const edge_t> offsets() const { return offsets_; }

  /// CSR adjacency array (size m). Entry j is the head of directed edge j.
  [[nodiscard]] std::span<const vertex_t> adjacency() const { return adjacency_; }

  /// True when the graph has no vertices.
  [[nodiscard]] bool empty() const { return num_vertices() == 0; }

  /// Approximate in-memory footprint in bytes (CSR arrays only).
  [[nodiscard]] std::size_t memory_bytes() const {
    return offsets_.size() * sizeof(edge_t) + adjacency_.size() * sizeof(vertex_t);
  }

 private:
  std::vector<edge_t> offsets_{0};
  std::vector<vertex_t> adjacency_;
};

/// A directed edge as (tail, head); the builder's input unit.
using Edge = std::pair<vertex_t, vertex_t>;

}  // namespace ecl
