#include "graph/suite.h"

#include <cmath>
#include <stdexcept>

#include "graph/generators.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ecl {

namespace {

vertex_t scaled(double base, double scale) {
  const double v = base * scale;
  if (v < 1.0) return 1;
  return static_cast<vertex_t>(v);
}

/// Side length of a near-square grid with ~base*scale vertices.
vertex_t side(double base, double scale) {
  return static_cast<vertex_t>(std::sqrt(base * scale));
}

/// R-MAT scale shifted by log4(scale) so vertex count tracks `scale`.
int rmat_scale(int base, double scale) {
  const int shift = static_cast<int>(std::lround(std::log2(scale) / 2.0));
  return std::max(4, base + shift);
}

std::vector<SuiteEntry> build_suite() {
  // Default sizes are the paper's vertex counts divided by ~32 (grids and
  // roads a bit more) — chosen so the whole 18-graph evaluation fits in
  // minutes on a single core while keeping the paper's size ordering:
  // uk-2002 stays the biggest, internet/rmat16/USA-NY stay the smallest.
  return {
      {"2d-2e20.sym", "grid",
       [](double s) { const vertex_t k = side(1 << 15, s); return gen_grid2d(k, k); }},
      {"amazon0601", "co-purchases",
       [](double s) { return gen_preferential_attachment(scaled(12'600, s), 6, 0xA601); }},
      {"as-skitter", "Int. topology",
       [](double s) { return gen_preferential_attachment(scaled(53'000, s), 7, 0x5C17); }},
      {"citationCiteseer", "pub. citations",
       [](double s) { return gen_citation(scaled(8'400, s), 4, 0.55, 0xC17E); }},
      {"cit-Patents", "pat. citations",
       [](double s) { return gen_citation(scaled(118'000, s), 4, 0.75, 0xBA7E); }},
      {"coPapersDBLP", "pub. citations",
       [](double s) { return gen_citation(scaled(16'900, s), 28, 0.85, 0xDB19); }},
      {"delaunay_n24", "triangulation",
       [](double s) { const vertex_t k = side(1 << 19, s); return gen_delaunay_like(k, k); }},
      {"europe_osm", "road map",
       [](double s) { return gen_road_network(scaled(1'590'000, s), 0xE05); }},
      {"in-2004", "web links",
       [](double s) { return gen_web_graph(scaled(43'000, s), 0x12004); }},
      {"internet", "Int. topology",
       [](double s) { return gen_preferential_attachment(scaled(3'900, s), 2, 0x1E7); }},
      {"kron_g500-logn21", "Kronecker",
       [](double s) { return gen_kronecker(rmat_scale(16, s), 24, 0xC500); }},
      {"r4-2e23.sym", "random",
       [](double s) {
         const vertex_t n = scaled(262'000, s);
         return gen_uniform_random(n, static_cast<edge_t>(n) * 4, 0x42E23);
       }},
      {"rmat16.sym", "RMAT",
       [](double s) { return gen_rmat(rmat_scale(12, s), 8, RmatParams{}, 0x16); }},
      {"rmat22.sym", "RMAT",
       [](double s) { return gen_rmat(rmat_scale(17, s), 8, RmatParams{}, 0x22); }},
      {"soc-LiveJournal1", "j. community",
       [](double s) { return gen_preferential_attachment(scaled(151'000, s), 9, 0x50C1); }},
      {"uk-2002", "web links",
       [](double s) { return gen_web_graph(scaled(579'000, s), 0x2002); }},
      {"USA-road-d.NY", "road map",
       [](double s) { return gen_road_network(scaled(8'260, s), 0xD04); }},
      {"USA-road-d.USA", "road map",
       [](double s) { return gen_road_network(scaled(748'000, s), 0xD05); }},
  };
}

}  // namespace

const std::vector<SuiteEntry>& paper_suite() {
  static const std::vector<SuiteEntry> suite = build_suite();
  return suite;
}

std::vector<std::string> suite_names() {
  std::vector<std::string> names;
  names.reserve(paper_suite().size());
  for (const auto& e : paper_suite()) names.push_back(e.name);
  return names;
}

Graph make_suite_graph(std::string_view name, double scale) {
  for (const auto& e : paper_suite()) {
    if (e.name != name) continue;
    ECL_OBS_SPAN(span, name, "graph.build");
    ECL_OBS_COUNTER_ADD("graph.suite.builds", 1);
    Graph g = e.make(scale);
    if (span.active()) {
      span.arg("family", e.family);
      span.arg("scale", scale);
      span.arg("vertices", g.num_vertices());
      span.arg("edges", g.num_edges());
    }
    return g;
  }
  throw std::invalid_argument("unknown suite graph: " + std::string(name));
}

std::vector<std::string> small_suite_names() {
  return {"USA-road-d.NY", "2d-2e20.sym", "kron_g500-logn21", "rmat16.sym", "internet"};
}

}  // namespace ecl
