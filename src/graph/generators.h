// Deterministic synthetic graph generators.
//
// The paper evaluates on 18 graphs drawn from a few structural families
// (road maps, grids, web crawls, social/citation networks, RMAT/Kronecker,
// uniform random, triangulations, internet topologies). We cannot ship the
// original datasets, so each family gets a generator that reproduces the
// properties that drive CC performance: diameter, degree distribution, and
// component structure. All generators are deterministic in (parameters,
// seed) and emit conditioned (undirected, loop-free, deduplicated) graphs.
#pragma once

#include <cstdint>

#include "graph/graph.h"

namespace ecl {

/// rows x cols 4-neighbor mesh ("2d-2e20.sym"): degree <= 4, one component,
/// huge diameter — stresses pointer jumping depth.
[[nodiscard]] Graph gen_grid2d(vertex_t rows, vertex_t cols);

/// Uniform random multigraph with ~`num_undirected_edges` edges
/// ("r4-2e23.sym"): low diameter, near-constant degree.
[[nodiscard]] Graph gen_uniform_random(vertex_t n, edge_t num_undirected_edges,
                                       std::uint64_t seed);

/// Recursive-matrix (R-MAT) generator (Chakrabarti et al.), the family of
/// "rmat16.sym"/"rmat22.sym" and — with the Graph500 parameter set — of
/// "kron_g500-logn21": skewed degrees, many tiny components, isolated
/// vertices (dmin = 0 in the paper's Table 2).
struct RmatParams {
  double a = 0.45;
  double b = 0.22;
  double c = 0.22;
  double d = 0.11;
};
[[nodiscard]] Graph gen_rmat(int scale, edge_t edge_factor, const RmatParams& params,
                             std::uint64_t seed);

/// Graph500 Kronecker parameters (a=0.57, b=0.19, c=0.19, d=0.05).
[[nodiscard]] Graph gen_kronecker(int scale, edge_t edge_factor, std::uint64_t seed);

/// Road-map-like graph ("europe_osm", "USA-road-d.*"): vertices embedded on
/// a jittered grid, edges to a few nearest neighbors; degree ~2-4, very
/// long paths, single giant component.
[[nodiscard]] Graph gen_road_network(vertex_t n, std::uint64_t seed);

/// Preferential-attachment (Barabasi-Albert) graph ("amazon0601",
/// "as-skitter" style): heavy-tailed degrees, small diameter.
[[nodiscard]] Graph gen_preferential_attachment(vertex_t n, vertex_t edges_per_vertex,
                                                std::uint64_t seed);

/// Citation-style graph ("citationCiteseer", "cit-Patents", "coPapersDBLP"):
/// each new vertex links to a mix of recent and popular earlier vertices;
/// moderately skewed degrees, possibly many components (cit-Patents has
/// 3627).
[[nodiscard]] Graph gen_citation(vertex_t n, vertex_t refs_per_vertex, double recency_bias,
                                 std::uint64_t seed);

/// Web-crawl-like graph ("in-2004", "uk-2002"): host-level clustering with
/// very high-degree hub pages, plus a sprinkling of isolated vertices and
/// small disconnected sites.
[[nodiscard]] Graph gen_web_graph(vertex_t n, std::uint64_t seed);

/// Planar-triangulation-like graph ("delaunay_n24"): grid triangulated with
/// diagonals; degree ~6, planar-scale diameter, single component.
[[nodiscard]] Graph gen_delaunay_like(vertex_t rows, vertex_t cols);

/// Watts-Strogatz small world ("internet" topology flavour): ring lattice of
/// degree 2k with probability-p rewiring.
[[nodiscard]] Graph gen_small_world(vertex_t n, vertex_t k, double rewire_probability,
                                    std::uint64_t seed);

/// Star graph: one hub connected to n-1 leaves. Stresses the high-degree
/// (thread-block granularity) compute kernel.
[[nodiscard]] Graph gen_star(vertex_t n);

/// Path graph 0-1-2-...-(n-1): the pointer-jumping worst case.
[[nodiscard]] Graph gen_path(vertex_t n);

/// Complete graph on n vertices (n small!).
[[nodiscard]] Graph gen_complete(vertex_t n);

/// Disjoint union of `count` cliques of size `clique_size`: known component
/// structure for verification tests.
[[nodiscard]] Graph gen_clique_forest(vertex_t count, vertex_t clique_size);

/// Graph with n vertices and no edges: n singleton components.
[[nodiscard]] Graph gen_isolated(vertex_t n);

}  // namespace ecl
