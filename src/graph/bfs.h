// Parallel breadth-first search substrate with direction optimization.
//
// Ligra's BFS — the engine behind the paper's Ligra+ BFSCC comparator and
// part of Multistep — switches between sparse top-down expansion and dense
// bottom-up sweeps depending on frontier size (Beamer et al.'s
// direction-optimizing BFS). This module provides that engine as a public
// utility: full single-source BFS with distances, and a labeling variant
// used by the CC codes.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "graph/graph.h"

namespace ecl {

/// Tuning knobs for the direction optimizer (Beamer's alpha/beta).
struct BfsOptions {
  /// Switch to bottom-up when the frontier's out-degree sum exceeds
  /// (remaining edges / alpha).
  double alpha = 15.0;
  /// Switch back to top-down when the frontier shrinks below n / beta.
  double beta = 18.0;
  /// OpenMP threads (0 = runtime default).
  int num_threads = 0;
};

inline constexpr std::uint32_t kUnreachable = std::numeric_limits<std::uint32_t>::max();

/// Result of a single-source BFS.
struct BfsResult {
  /// distance[v] = hops from the source, kUnreachable if not reached.
  std::vector<std::uint32_t> distance;
  /// Number of vertices reached (including the source).
  vertex_t num_reached = 0;
  /// Number of direction switches the optimizer performed.
  int direction_switches = 0;
};

/// Single-source direction-optimizing BFS.
[[nodiscard]] BfsResult bfs(const Graph& g, vertex_t source, const BfsOptions& opts = {});

/// CC building block: runs a BFS from `source` writing `label_value` into
/// `label` for every reached vertex. Entries must be kInvalidVertex for
/// unvisited vertices; visited vertices are skipped. Returns the number of
/// newly labeled vertices.
vertex_t bfs_label(const Graph& g, vertex_t source, vertex_t label_value,
                   std::vector<vertex_t>& label, const BfsOptions& opts = {});

}  // namespace ecl
