#include "core/ecl_cc.h"

#include <omp.h>

#include "common/timer.h"
#include "core/engine.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ecl {

namespace {

int resolve_threads(int requested) {
  return requested > 0 ? requested : omp_get_max_threads();
}

#if !defined(ECL_OBS_DISABLED)
/// Folds one thread's find/hook statistics into the process-wide counters —
/// a few striped-atomic adds per thread per phase, so the per-operation
/// accounting stays thread-local plain arithmetic.
void flush_find_stats(const ComputeStats& rec) {
  if (rec.num_finds != 0) {
    ECL_OBS_COUNTER_ADD("ecl.find.finds", rec.num_finds);
    ECL_OBS_COUNTER_ADD("ecl.find.hops", rec.total_length);
  }
  if (rec.hooks_performed != 0) {
    ECL_OBS_COUNTER_ADD("ecl.hook.hooks_performed", rec.hooks_performed);
  }
  if (rec.cas_retries != 0) {
    ECL_OBS_COUNTER_ADD("ecl.hook.cas_retries", rec.cas_retries);
  }
}
#endif

}  // namespace

std::vector<vertex_t> ecl_cc_serial(const Graph& g, const EclOptions& opts,
                                    PhaseTimes* times) {
  const vertex_t n = g.num_vertices();
  std::vector<vertex_t> parent(n);
  SerialParentOps ops(parent.data());
  Timer timer;

  {
    ECL_OBS_SPAN(span, "ecl.phase.init", "ecl-cc");
    span.arg("vertices", n);
    for (vertex_t v = 0; v < n; ++v) {
      parent[v] = detail::initial_parent(g, opts.init, v);
    }
  }
  if (times != nullptr) times->init_ms = timer.millis();

  timer.reset();
  {
    ECL_OBS_SPAN(span, "ecl.phase.compute", "ecl-cc");
    span.arg("vertices", n);
#if !defined(ECL_OBS_DISABLED)
    ComputeStats rec;
    for (vertex_t v = 0; v < n; ++v) {
      detail::compute_vertex(g, opts.jump, v, ops, &rec);
    }
    flush_find_stats(rec);
#else
    for (vertex_t v = 0; v < n; ++v) {
      detail::compute_vertex(g, opts.jump, v, ops);
    }
#endif
  }
  if (times != nullptr) times->compute_ms = timer.millis();

  timer.reset();
  {
    ECL_OBS_SPAN(span, "ecl.phase.finalize", "ecl-cc");
    span.arg("vertices", n);
    for (vertex_t v = 0; v < n; ++v) {
      detail::finalize_vertex(opts.finalize, v, ops);
    }
  }
  if (times != nullptr) times->finalize_ms = timer.millis();

  return parent;
}

std::vector<vertex_t> ecl_cc_omp(const Graph& g, const EclOptions& opts,
                                 PhaseTimes* times) {
  const vertex_t n = g.num_vertices();
  const int threads = resolve_threads(opts.num_threads);
  std::vector<vertex_t> parent(n);
  AtomicParentOps ops(parent.data());
  Timer timer;

  // Each phase parallelizes its outermost vertex loop with a guided
  // schedule, matching the paper's OpenMP port (§3).
  {
    ECL_OBS_SPAN(span, "ecl.phase.init", "ecl-cc");
    span.arg("vertices", n);
#pragma omp parallel for schedule(guided) num_threads(threads)
    for (vertex_t v = 0; v < n; ++v) {
      parent[v] = detail::initial_parent(g, opts.init, v);
    }
  }
  if (times != nullptr) times->init_ms = timer.millis();

  timer.reset();
  {
    ECL_OBS_SPAN(span, "ecl.phase.compute", "ecl-cc");
    span.arg("vertices", n);
#if !defined(ECL_OBS_DISABLED)
#pragma omp parallel num_threads(threads)
    {
      ComputeStats rec;  // thread-local: plain increments per find/hook
#pragma omp for schedule(guided)
      for (vertex_t v = 0; v < n; ++v) {
        detail::compute_vertex(g, opts.jump, v, ops, &rec);
      }
      flush_find_stats(rec);
    }
#else
#pragma omp parallel for schedule(guided) num_threads(threads)
    for (vertex_t v = 0; v < n; ++v) {
      detail::compute_vertex(g, opts.jump, v, ops);
    }
#endif
  }
  if (times != nullptr) times->compute_ms = timer.millis();

  timer.reset();
  {
    ECL_OBS_SPAN(span, "ecl.phase.finalize", "ecl-cc");
    span.arg("vertices", n);
#pragma omp parallel for schedule(guided) num_threads(threads)
    for (vertex_t v = 0; v < n; ++v) {
      detail::finalize_vertex(opts.finalize, v, ops);
    }
  }
  if (times != nullptr) times->finalize_ms = timer.millis();

  return parent;
}

std::vector<vertex_t> ecl_cc_omp_bucketed(const Graph& g, const EclOptions& opts,
                                          PhaseTimes* times) {
  constexpr vertex_t kThreadLimit = 16;   // GPU pipeline thresholds (§3)
  constexpr vertex_t kWarpLimit = 352;
  const vertex_t n = g.num_vertices();
  const int threads = resolve_threads(opts.num_threads);
  std::vector<vertex_t> parent(n);
  AtomicParentOps ops(parent.data());
  Timer timer;

  {
    ECL_OBS_SPAN(span, "ecl.phase.init", "ecl-cc");
    span.arg("vertices", n);
#pragma omp parallel for schedule(guided) num_threads(threads)
    for (vertex_t v = 0; v < n; ++v) {
      parent[v] = detail::initial_parent(g, opts.init, v);
    }
  }
  if (times != nullptr) times->init_ms = timer.millis();

  timer.reset();
  {
    ECL_OBS_SPAN(span, "ecl.phase.compute", "ecl-cc");
    span.arg("vertices", n);
    // Bucket the vertices by degree (the CPU analogue of the GPU pipeline's
    // double-sided worklist fill).
    std::vector<vertex_t> mid;
    std::vector<vertex_t> high;
    for (vertex_t v = 0; v < n; ++v) {
      const vertex_t d = g.degree(v);
      if (d > kWarpLimit) {
        high.push_back(v);
      } else if (d > kThreadLimit) {
        mid.push_back(v);
      }
    }

    // Low-degree vertices: fine-grained static chunks (cheap, uniform work).
#pragma omp parallel for schedule(static, 512) num_threads(threads)
    for (vertex_t v = 0; v < n; ++v) {
      if (g.degree(v) <= kThreadLimit) {
        detail::compute_vertex(g, opts.jump, v, ops);
      }
    }
    // Mid-degree vertices: dynamic scheduling absorbs the variance.
#pragma omp parallel for schedule(dynamic, 16) num_threads(threads)
    for (std::size_t i = 0; i < mid.size(); ++i) {
      detail::compute_vertex(g, opts.jump, mid[i], ops);
    }
    // High-degree vertices: one at a time, edges parallelized across threads
    // (the thread-block-granularity analogue).
    for (const vertex_t v : high) {
      const vertex_t v_rep_seed = find_repres(opts.jump, v, ops);
#pragma omp parallel num_threads(threads)
      {
        vertex_t v_rep = v_rep_seed;
        const auto nbrs = g.neighbors(v);
#pragma omp for schedule(static)
        for (std::size_t j = 0; j < nbrs.size(); ++j) {
          if (v > nbrs[j]) {
            v_rep = process_edge(opts.jump, v_rep, nbrs[j], ops);
          }
        }
      }
    }
  }
  if (times != nullptr) times->compute_ms = timer.millis();

  timer.reset();
  {
    ECL_OBS_SPAN(span, "ecl.phase.finalize", "ecl-cc");
    span.arg("vertices", n);
#pragma omp parallel for schedule(guided) num_threads(threads)
    for (vertex_t v = 0; v < n; ++v) {
      detail::finalize_vertex(opts.finalize, v, ops);
    }
  }
  if (times != nullptr) times->finalize_ms = timer.millis();
  return parent;
}

PathLengthReport ecl_cc_path_lengths(const Graph& g, const EclOptions& opts) {
  const vertex_t n = g.num_vertices();
  std::vector<vertex_t> parent(n);
  SerialParentOps ops(parent.data());
  for (vertex_t v = 0; v < n; ++v) {
    parent[v] = detail::initial_parent(g, opts.init, v);
  }
  // Only the computation phase is instrumented, as in the paper's Table 4
  // ("path lengths during the CC computation").
  PathLengthRecorder rec;
#if !defined(ECL_OBS_DISABLED)
  // The general metrics layer is the source of truth: every find's path
  // length lands in the registry histogram (full distribution available to
  // --metrics and run reports), and the Table 4 aggregates below are read
  // back from it.
  obs::Histogram& hist =
      obs::registry().histogram("ecl.find.path_length", obs::Histogram::pow2_bounds(20));
  hist.reset();
  rec.histogram = &hist;
#endif
  for (vertex_t v = 0; v < n; ++v) {
    detail::compute_vertex(g, opts.jump, v, ops, &rec);
  }
  PathLengthReport report;
#if !defined(ECL_OBS_DISABLED)
  report.average_length = hist.average();
  report.maximum_length = hist.max();
  report.num_finds = hist.count();
#else
  report.average_length = rec.average();
  report.maximum_length = rec.max_length;
  report.num_finds = rec.num_finds;
#endif
  return report;
}

}  // namespace ecl
