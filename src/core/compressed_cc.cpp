#include "core/compressed_cc.h"

#include <omp.h>

#include "common/timer.h"
#include "core/engine.h"

namespace ecl {

std::vector<vertex_t> ecl_cc_serial(const CompressedGraph& g, const EclOptions& opts,
                                    PhaseTimes* times) {
  const vertex_t n = g.num_vertices();
  std::vector<vertex_t> parent(n);
  SerialParentOps ops(parent.data());
  Timer timer;

  for (vertex_t v = 0; v < n; ++v) {
    parent[v] = detail::initial_parent(g, opts.init, v);
  }
  if (times != nullptr) times->init_ms = timer.millis();

  timer.reset();
  for (vertex_t v = 0; v < n; ++v) {
    detail::compute_vertex(g, opts.jump, v, ops);
  }
  if (times != nullptr) times->compute_ms = timer.millis();

  timer.reset();
  for (vertex_t v = 0; v < n; ++v) {
    detail::finalize_vertex(opts.finalize, v, ops);
  }
  if (times != nullptr) times->finalize_ms = timer.millis();
  return parent;
}

std::vector<vertex_t> ecl_cc_omp(const CompressedGraph& g, const EclOptions& opts,
                                 PhaseTimes* times) {
  const vertex_t n = g.num_vertices();
  const int threads = opts.num_threads > 0 ? opts.num_threads : omp_get_max_threads();
  std::vector<vertex_t> parent(n);
  AtomicParentOps ops(parent.data());
  Timer timer;

#pragma omp parallel for schedule(guided) num_threads(threads)
  for (vertex_t v = 0; v < n; ++v) {
    parent[v] = detail::initial_parent(g, opts.init, v);
  }
  if (times != nullptr) times->init_ms = timer.millis();

  timer.reset();
#pragma omp parallel for schedule(guided) num_threads(threads)
  for (vertex_t v = 0; v < n; ++v) {
    detail::compute_vertex(g, opts.jump, v, ops);
  }
  if (times != nullptr) times->compute_ms = timer.millis();

  timer.reset();
#pragma omp parallel for schedule(guided) num_threads(threads)
  for (vertex_t v = 0; v < n; ++v) {
    detail::finalize_vertex(opts.finalize, v, ops);
  }
  if (times != nullptr) times->finalize_ms = timer.millis();
  return parent;
}

}  // namespace ecl
