// Minimum spanning forest via Kruskal on the ECL union-find substrate — the
// extension the paper's conclusion proposes: "[intermediate pointer
// jumping] should be able to accelerate other GPU algorithms that are based
// on union-find, such as Kruskal's algorithm for finding the minimum
// spanning tree of a graph."
#pragma once

#include <functional>
#include <vector>

#include "graph/graph.h"

namespace ecl {

/// One selected forest edge.
struct ForestEdge {
  vertex_t u = 0;
  vertex_t v = 0;
  double weight = 0.0;
};

/// Result of a spanning-forest computation.
struct SpanningForest {
  /// Selected edges; exactly n - num_components of them.
  std::vector<ForestEdge> edges;
  /// Sum of the selected edges' weights.
  double total_weight = 0.0;
  /// Number of trees in the forest (== number of connected components).
  vertex_t num_trees = 0;
};

/// Edge weights are supplied by a callback over (u, v) so callers can attach
/// any metric (distance, cost, capacity) without materializing a weight
/// array. Must be symmetric: weight(u, v) == weight(v, u).
using WeightFn = std::function<double(vertex_t, vertex_t)>;

/// Kruskal's algorithm: sorts the undirected edges by weight and grows the
/// forest with the ECL concurrent union-find (path-halving finds, CAS
/// hooks). O(m log m) for the sort; near-linear for the union phase.
[[nodiscard]] SpanningForest minimum_spanning_forest(const Graph& g, const WeightFn& weight);

/// Unweighted spanning forest (any spanning tree per component): processes
/// edges in CSR order, skipping the sort entirely — the pure union-find
/// workload the paper's conclusion targets.
[[nodiscard]] SpanningForest spanning_forest(const Graph& g);

}  // namespace ecl
