// The phase templates shared by every ECL-CC variant (serial, OpenMP, and —
// through gpusim's SimParentOps — the virtual-GPU kernels). Keeping the
// algorithm in one place means the correctness tests on one backend cover
// the algorithmic logic of all of them.
#pragma once

#include "core/ecl_cc.h"
#include "dsu/hook.h"
#include "dsu/parent_ops.h"
#include "graph/graph.h"

namespace ecl::detail {

/// Initial parent value for vertex v under `policy` (paper Fig. 7).
/// Templated over the graph representation: any type with a
/// `neighbors(vertex_t)` range (plain CSR Graph or CompressedGraph) works.
template <typename GraphT>
vertex_t initial_parent(const GraphT& g, InitPolicy policy, vertex_t v) {
  switch (policy) {
    case InitPolicy::kSelf:
      return v;
    case InitPolicy::kMinNeighbor: {
      vertex_t best = v;
      for (const vertex_t u : g.neighbors(v)) {
        if (u < best) best = u;
      }
      return best;
    }
    case InitPolicy::kFirstSmallerNeighbor:
      break;
  }
  for (const vertex_t u : g.neighbors(v)) {
    if (u < v) return u;  // stop at the first smaller neighbor (Init3)
  }
  return v;
}

/// Computation phase for one vertex: process each of v's edges exactly once
/// (only the v > u direction), hooking u's representative with v's running
/// representative.
template <typename GraphT, ParentOps Ops, typename Rec = PathLengthRecorder>
void compute_vertex(const GraphT& g, JumpPolicy jump, vertex_t v, Ops ops,
                    Rec* rec = nullptr) {
  vertex_t v_rep = find_repres(jump, v, ops, rec);
  for (const vertex_t u : g.neighbors(v)) {
    if (v > u) {
      v_rep = process_edge(jump, v_rep, u, ops, rec);
    }
  }
}

/// Finalization for one vertex: make parent[v] point directly at the
/// representative (paper Fig. 9 variants).
template <ParentOps Ops>
void finalize_vertex(FinalizePolicy policy, vertex_t v, Ops ops) {
  switch (policy) {
    case FinalizePolicy::kIntermediate:
      ops.store(v, find_intermediate(v, ops));
      return;
    case FinalizePolicy::kMultiple:
      ops.store(v, find_multiple(v, ops));
      return;
    case FinalizePolicy::kSingle:
      break;
  }
  // Fini3: plain walk to the representative, then one write.
  vertex_t root = ops.load(v);
  vertex_t next;
  while (root > (next = ops.load(root))) root = next;
  ops.store(v, root);
}

}  // namespace ecl::detail
