#include "core/verify.h"

#include <algorithm>
#include <sstream>

#include "graph/stats.h"

namespace ecl {

VerifyResult verify_labels(const Graph& g, std::span<const vertex_t> labels) {
  const vertex_t n = g.num_vertices();
  auto fail = [](std::string reason) { return VerifyResult{false, std::move(reason)}; };

  if (labels.size() != n) {
    return fail("label array size mismatch");
  }
  for (vertex_t v = 0; v < n; ++v) {
    if (labels[v] >= n) {
      return fail("label out of range at vertex " + std::to_string(v));
    }
    if (labels[labels[v]] != labels[v]) {
      return fail("label is not a fixed point at vertex " + std::to_string(v));
    }
  }
  for (vertex_t v = 0; v < n; ++v) {
    for (const vertex_t u : g.neighbors(v)) {
      if (labels[u] != labels[v]) {
        std::ostringstream ss;
        ss << "edge (" << v << ", " << u << ") spans labels " << labels[v] << " and "
           << labels[u];
        return fail(ss.str());
      }
    }
  }
  // Same-label-implies-same-component: with edge consistency established,
  // comparing against the reference partition closes the loop.
  const auto reference = reference_components(g);
  if (!same_partition(labels, reference)) {
    return fail("labeling merges vertices from different components");
  }
  return {};
}

bool same_partition(std::span<const vertex_t> a, std::span<const vertex_t> b) {
  if (a.size() != b.size()) return false;
  const auto n = static_cast<vertex_t>(a.size());
  // Injective mapping in both directions <=> identical partitions.
  std::vector<vertex_t> a_to_b(n, kInvalidVertex);
  std::vector<vertex_t> b_to_a(n, kInvalidVertex);
  for (vertex_t v = 0; v < n; ++v) {
    if (a[v] >= n || b[v] >= n) return false;
    if (a_to_b[a[v]] == kInvalidVertex) a_to_b[a[v]] = b[v];
    if (b_to_a[b[v]] == kInvalidVertex) b_to_a[b[v]] = a[v];
    if (a_to_b[a[v]] != b[v] || b_to_a[b[v]] != a[v]) return false;
  }
  return true;
}

vertex_t count_labels(std::span<const vertex_t> labels) {
  std::vector<vertex_t> sorted(labels.begin(), labels.end());
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  return static_cast<vertex_t>(sorted.size());
}

std::vector<vertex_t> canonical_labels(std::span<const vertex_t> labels) {
  const auto n = static_cast<vertex_t>(labels.size());
  std::vector<vertex_t> min_of(n, kInvalidVertex);
  for (vertex_t v = 0; v < n; ++v) {
    min_of[labels[v]] = std::min(min_of[labels[v]], v);
  }
  std::vector<vertex_t> out(n);
  for (vertex_t v = 0; v < n; ++v) out[v] = min_of[labels[v]];
  return out;
}

}  // namespace ecl
