// Incremental (dynamic, insert-only) connectivity on the ECL union-find
// substrate: edges stream in, same-component queries are answered at any
// point, and the current labeling can be materialized without rebuilding.
//
// This packages the paper's asynchronous union-find for the streaming use
// cases its applications imply (a crawl discovering web links, interactions
// arriving from a screening pipeline) — each insertion is one lock-free
// hook, so the structure is safe to update from multiple threads
// concurrently (§3's benign-race argument carries over verbatim).
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "dsu/disjoint_set.h"
#include "graph/graph.h"

namespace ecl {

class IncrementalCC {
 public:
  /// A universe of n vertices, initially all singletons.
  explicit IncrementalCC(vertex_t n) : dsu_(n) {}

  /// Starts from an existing graph's components.
  explicit IncrementalCC(const Graph& g) : dsu_(g.num_vertices()) {
    for (vertex_t v = 0; v < g.num_vertices(); ++v) {
      for (const vertex_t u : g.neighbors(v)) {
        if (u < v) dsu_.unite(v, u);
      }
    }
  }

  /// Inserts the undirected edge (u, v). Thread-safe.
  void add_edge(vertex_t u, vertex_t v) { dsu_.unite(u, v); }

  /// Bulk insert of `count` undirected edges, parallelized across the batch
  /// with OpenMP (each hook is the same lock-free CAS as add_edge, so the
  /// batch needs no ordering). Thread-safe with respect to concurrent
  /// add_edge/add_edges/connected calls. This is the service ingest path:
  /// one call per batch instead of one virtual dispatch per edge.
  void add_edges(const std::pair<vertex_t, vertex_t>* edges, std::size_t count) {
#pragma omp parallel for schedule(static)
    for (std::size_t i = 0; i < count; ++i) {
      dsu_.unite(edges[i].first, edges[i].second);
    }
  }

  /// True if u and v are currently connected. Thread-safe with respect to
  /// concurrent add_edge (a racing insertion may or may not be visible,
  /// matching the usual linearizability of concurrent connectivity).
  [[nodiscard]] bool connected(vertex_t u, vertex_t v) { return dsu_.same(u, v); }

  /// Current representative of v's component (not canonicalized until
  /// labels() is called).
  [[nodiscard]] vertex_t component_of(vertex_t v) { return dsu_.find(v); }

  /// Current number of components. Quiescent call: no concurrent add_edge.
  [[nodiscard]] vertex_t num_components() const { return dsu_.count(); }

  /// Materializes the canonical labeling (label[v] = smallest vertex of
  /// v's component). Quiescent call: no concurrent add_edge.
  [[nodiscard]] std::vector<vertex_t> labels() {
    dsu_.flatten();
    return dsu_.parents();
  }

  [[nodiscard]] vertex_t num_vertices() const { return dsu_.size(); }

 private:
  ConcurrentDisjointSet dsu_;
};

}  // namespace ecl
