// ECL-CC over the Ligra+-style compressed graph representation: the same
// three-phase algorithm, decoding adjacency lists on the fly. Trades
// decode cycles for memory footprint — the deal Ligra+ offers (§2).
#pragma once

#include <vector>

#include "core/ecl_cc.h"
#include "graph/compressed.h"

namespace ecl {

/// Serial ECL-CC on a compressed graph.
[[nodiscard]] std::vector<vertex_t> ecl_cc_serial(const CompressedGraph& g,
                                                  const EclOptions& opts = {},
                                                  PhaseTimes* times = nullptr);

/// OpenMP ECL-CC on a compressed graph.
[[nodiscard]] std::vector<vertex_t> ecl_cc_omp(const CompressedGraph& g,
                                               const EclOptions& opts = {},
                                               PhaseTimes* times = nullptr);

}  // namespace ecl
