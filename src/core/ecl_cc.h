// ECL-CC: the paper's connected-components algorithm (CPU ports).
//
// Three fully parallel phases (§3):
//   1. initialization — seed each vertex's parent with a good starting label
//      (Init3: the first adjacency-list neighbor with a smaller ID),
//   2. computation    — process every undirected edge exactly once, in one
//      direction only (v > u), hooking the larger representative under the
//      smaller with a CAS and compressing paths by intermediate pointer
//      jumping (path halving) along the way,
//   3. finalization   — point every vertex's parent directly at its
//      representative so the parent array *is* the label array.
//
// On completion, label[v] is the smallest vertex ID in v's component (the
// minimum vertex can never be re-hooked, so it remains the root), which
// makes results directly comparable across all implementations.
//
// The serial variant omits atomics and the CAS retry loop; the OpenMP
// variant parallelizes the outer vertex loop of each phase with a guided
// schedule, exactly as described in §3.
#pragma once

#include <vector>

#include "dsu/find.h"
#include "graph/graph.h"

namespace ecl {

/// Initialization flavour (paper §5.1, Fig. 7).
enum class InitPolicy {
  kSelf = 1,                  // Init1: parent[v] = v
  kMinNeighbor = 2,           // Init2: smallest neighbor ID (or v)
  kFirstSmallerNeighbor = 3,  // Init3: first neighbor with smaller ID (ECL-CC)
};

/// Finalization flavour (paper §5.1, Fig. 9).
enum class FinalizePolicy {
  kIntermediate = 1,  // Fini1: path halving
  kMultiple = 2,      // Fini2: two-pass full compression
  kSingle = 3,        // Fini3: walk then single write (ECL-CC)
};

[[nodiscard]] constexpr const char* init_policy_name(InitPolicy p) {
  switch (p) {
    case InitPolicy::kSelf:
      return "Init1 (own ID)";
    case InitPolicy::kMinNeighbor:
      return "Init2 (min neighbor)";
    case InitPolicy::kFirstSmallerNeighbor:
      return "Init3 (first smaller)";
  }
  return "?";
}

[[nodiscard]] constexpr const char* finalize_policy_name(FinalizePolicy p) {
  switch (p) {
    case FinalizePolicy::kIntermediate:
      return "Fini1 (intermediate)";
    case FinalizePolicy::kMultiple:
      return "Fini2 (multiple)";
    case FinalizePolicy::kSingle:
      return "Fini3 (single)";
  }
  return "?";
}

/// Tunable knobs; the defaults are the published ECL-CC configuration.
struct EclOptions {
  InitPolicy init = InitPolicy::kFirstSmallerNeighbor;
  JumpPolicy jump = JumpPolicy::kIntermediate;
  FinalizePolicy finalize = FinalizePolicy::kSingle;
  /// OpenMP thread count for ecl_cc_omp; 0 = runtime default.
  int num_threads = 0;
};

/// Wall-clock milliseconds per phase, for breakdown reporting.
struct PhaseTimes {
  double init_ms = 0.0;
  double compute_ms = 0.0;
  double finalize_ms = 0.0;
  [[nodiscard]] double total_ms() const { return init_ms + compute_ms + finalize_ms; }
};

/// Serial ECL-CC. Returns the label array (label[v] = min vertex ID of v's
/// component). `times`, if non-null, receives the per-phase breakdown.
[[nodiscard]] std::vector<vertex_t> ecl_cc_serial(const Graph& g, const EclOptions& opts = {},
                                                  PhaseTimes* times = nullptr);

/// OpenMP-parallel ECL-CC (the paper's ECL-CC_OMP).
[[nodiscard]] std::vector<vertex_t> ecl_cc_omp(const Graph& g, const EclOptions& opts = {},
                                               PhaseTimes* times = nullptr);

/// OpenMP ECL-CC with a GPU-style degree-bucketed compute phase: vertices
/// are split into low/mid/high-degree buckets (the GPU pipeline's 16/352
/// thresholds) and each bucket runs with a schedule suited to its work
/// granularity. Exists to validate the paper's §3 decision that the CPU
/// port "only has a single computation function and requires no worklist"
/// (see bench/ablation_cpu_worklist); produces identical labels.
[[nodiscard]] std::vector<vertex_t> ecl_cc_omp_bucketed(const Graph& g,
                                                        const EclOptions& opts = {},
                                                        PhaseTimes* times = nullptr);

/// Path-length statistics of the computation phase (paper Table 4): runs
/// serial ECL-CC with instrumented finds and reports the average and maximum
/// traversed path length.
struct PathLengthReport {
  double average_length = 0.0;  // per find, in parent-pointer hops
  std::uint64_t maximum_length = 0;
  std::uint64_t num_finds = 0;
};
[[nodiscard]] PathLengthReport ecl_cc_path_lengths(const Graph& g,
                                                   const EclOptions& opts = {});

}  // namespace ecl
