#include "core/spanning_forest.h"

#include <algorithm>

#include "dsu/disjoint_set.h"

namespace ecl {

namespace {

SpanningForest kruskal(const Graph& g, std::vector<ForestEdge> edges) {
  ConcurrentDisjointSet dsu(g.num_vertices());
  SpanningForest forest;
  forest.edges.reserve(g.num_vertices());
  for (const auto& e : edges) {
    if (dsu.find(e.u) != dsu.find(e.v)) {
      dsu.unite(e.u, e.v);
      forest.edges.push_back(e);
      forest.total_weight += e.weight;
    }
  }
  dsu.flatten();
  forest.num_trees = dsu.count();
  return forest;
}

}  // namespace

SpanningForest minimum_spanning_forest(const Graph& g, const WeightFn& weight) {
  std::vector<ForestEdge> edges;
  edges.reserve(g.num_edges() / 2);
  for (vertex_t v = 0; v < g.num_vertices(); ++v) {
    for (const vertex_t u : g.neighbors(v)) {
      if (u < v) edges.push_back({v, u, weight(v, u)});
    }
  }
  std::sort(edges.begin(), edges.end(),
            [](const ForestEdge& a, const ForestEdge& b) { return a.weight < b.weight; });
  return kruskal(g, std::move(edges));
}

SpanningForest spanning_forest(const Graph& g) {
  std::vector<ForestEdge> edges;
  edges.reserve(g.num_edges() / 2);
  for (vertex_t v = 0; v < g.num_vertices(); ++v) {
    for (const vertex_t u : g.neighbors(v)) {
      if (u < v) edges.push_back({v, u, 1.0});
    }
  }
  return kruskal(g, std::move(edges));
}

}  // namespace ecl
