// Solution verification, mirroring the paper's protocol (§4): every
// implementation's labeling is checked against the serial reference, and
// the number of components must be exact.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace ecl {

/// Result of verify_labels with a human-readable reason on failure.
struct VerifyResult {
  bool ok = true;
  std::string reason;
};

/// Checks structural invariants of a CC labeling:
///   * every label is a valid vertex ID,
///   * labels are fixed points (label[label[v]] == label[v]),
///   * both endpoints of every edge carry the same label,
///   * the labeling induces exactly the reference component count, and
///   * vertices in different reference components have different labels.
[[nodiscard]] VerifyResult verify_labels(const Graph& g, std::span<const vertex_t> labels);

/// True if two labelings induce the same partition of [0, n), regardless of
/// which representative each implementation picked.
[[nodiscard]] bool same_partition(std::span<const vertex_t> a, std::span<const vertex_t> b);

/// Number of distinct labels.
[[nodiscard]] vertex_t count_labels(std::span<const vertex_t> labels);

/// Rewrites labels so each component is labeled by its minimum vertex ID
/// (the canonical form produced by ECL-CC itself).
[[nodiscard]] std::vector<vertex_t> canonical_labels(std::span<const vertex_t> labels);

}  // namespace ecl
