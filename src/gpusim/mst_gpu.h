// Minimum spanning forest on the virtual GPU — the extension the paper's
// conclusion proposes ("[intermediate pointer jumping] should be able to
// accelerate other GPU algorithms that are based on union find, such as
// Kruskal's algorithm for finding the minimum spanning tree").
//
// The implementation is Boruvka-style (the GPU-friendly formulation of the
// Kruskal idea): rounds of {each component picks its lightest outgoing
// edge, winners are hooked into the ECL union-find with CAS + intermediate
// pointer jumping, paths are flattened} until no component has an outgoing
// edge. Edge weights are supplied by the caller per undirected edge.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "dsu/find.h"
#include "graph/graph.h"
#include "gpusim/device.h"
#include "gpusim/spec.h"

namespace ecl::gpusim {

/// Result of a GPU spanning-forest run.
struct GpuMstResult {
  /// Indices of the selected edges into the (u < v)-ordered undirected edge
  /// list; exactly n - num_components entries.
  std::vector<std::uint64_t> edge_ids;
  /// Sum of the selected edges' weights.
  double total_weight = 0.0;
  /// Final component labels (component-minimum canonical form).
  std::vector<vertex_t> labels;
  /// Modeled runtime and per-kernel stats.
  double time_ms = 0.0;
  std::vector<KernelStats> kernels;
};

/// Symmetric weight callback over an undirected edge (u, v).
using GpuWeightFn = std::function<double(vertex_t, vertex_t)>;

/// Boruvka minimum spanning forest on the virtual device. `jump` selects
/// the pointer-jumping flavour used by every find — the conclusion's claim
/// is that intermediate jumping (the default) wins here just as in CC
/// (bench/extension_mst quantifies it).
[[nodiscard]] GpuMstResult boruvka_mst_gpu(const Graph& g, const DeviceSpec& spec,
                                           const GpuWeightFn& weight,
                                           JumpPolicy jump = JumpPolicy::kIntermediate);

}  // namespace ecl::gpusim
