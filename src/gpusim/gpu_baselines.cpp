// The four prior GPU connected-components codes the paper compares against
// (§2, §5.2), reimplemented from their algorithm descriptions and run on the
// virtual device:
//
//   Soman   — iterated {hooking on representatives + pointer jumping}, with
//             edge marking to skip converged edges in later iterations.
//   IrGL    — compiler-generated Soman: same structure but no edge marking
//             (every edge is reprocessed each iteration) and unfused
//             per-step kernels.
//   Gunrock — Soman with filter operators: after hooking, converged edges
//             are compacted out of the frontier; after jumping, vertices
//             that are representatives are filtered from the vertex
//             frontier. The filters cost extra passes and atomic writes.
//   Groute  — the edge list is cut into ~2m/n segments; each segment is
//             hooked atomically (CAS on the representative) and followed by
//             a multiple-pointer-jumping (flattening) pass, interleaving
//             union and compression without global iteration.
//
// Simulation fidelity note: the virtual device executes threads
// sequentially, which would let these *iterative* algorithms see values
// written earlier in the same pass (Gauss-Seidel convergence) — something a
// real GPU, where all threads of a pass effectively read iteration-start
// values, does not provide. The hooking and jumping kernels therefore make
// their *decisions* from a snapshot of the parent array taken at the start
// of each pass (Jacobi semantics) while still issuing every load/store to
// the memory model, reproducing the O(log n) iteration counts these codes
// exhibit on hardware. ECL-CC and Groute are asynchronous by design — any
// interleaving is a legal schedule for them — so they run without
// snapshots.
#include <algorithm>
#include <vector>

#include "dsu/hook.h"
#include "gpusim/gpu_cc.h"
#include "gpusim/sim_parent_ops.h"

namespace ecl::gpusim {

namespace {

constexpr std::uint32_t kBlock = 256;

/// Host-side extraction of the undirected edge list (each edge once, u < v),
/// uploaded to device buffers — the representation Soman-family codes use.
struct DeviceEdgeList {
  DeviceBuffer<vertex_t> src;
  DeviceBuffer<vertex_t> dst;
  std::uint64_t count;

  DeviceEdgeList(Device& dev, const Graph& g)
      : src(dev.alloc<vertex_t>(std::max<std::uint64_t>(1, g.num_edges() / 2))),
        dst(dev.alloc<vertex_t>(std::max<std::uint64_t>(1, g.num_edges() / 2))),
        count(0) {
    for (vertex_t v = 0; v < g.num_vertices(); ++v) {
      for (const vertex_t u : g.neighbors(v)) {
        if (u < v) {
          src.host_write(count, u);
          dst.host_write(count, v);
          ++count;
        }
      }
    }
  }
};

void init_parents(Device& dev, DeviceBuffer<vertex_t>& parent, vertex_t n) {
  dev.launch("init", dev.blocks_for(n, kBlock), kBlock, [&](const ThreadCtx& ctx) {
    for (std::uint64_t v = ctx.global_id(); v < n; v += ctx.grid_size()) {
      parent.store(ctx, v, static_cast<vertex_t>(v));
    }
  });
}

/// One Jacobi hooking pass over [begin, end) of the edge list: decisions
/// come from `snap` (iteration-start values), loads/stores hit the memory
/// model. `mark`, if non-null, implements Soman's converged-edge skipping.
/// Returns via `flag` whether any hook happened.
void hook_pass(Device& dev, const DeviceEdgeList& edges, DeviceBuffer<vertex_t>& parent,
               const std::vector<vertex_t>& snap, DeviceBuffer<std::uint8_t>* mark,
               DeviceBuffer<vertex_t>& flag, const char* name) {
  dev.launch(name, dev.blocks_for(edges.count, kBlock), kBlock, [&](const ThreadCtx& ctx) {
    for (std::uint64_t e = ctx.global_id(); e < edges.count; e += ctx.grid_size()) {
      if (mark != nullptr && mark->load(ctx, e) != 0) continue;
      const vertex_t u = edges.src.load(ctx, e);
      const vertex_t v = edges.dst.load(ctx, e);
      (void)parent.load(ctx, u);  // traffic of reading the parents
      (void)parent.load(ctx, v);
      const vertex_t pu = snap[u];
      const vertex_t pv = snap[v];
      if (pu == pv) {
        if (mark != nullptr) mark->store(ctx, e, 1);
        continue;
      }
      const vertex_t lo = std::min(pu, pv);
      const vertex_t hi = std::max(pu, pv);
      (void)parent.load(ctx, hi);  // root check read
      if (snap[hi] == hi) {        // hook only roots (iteration-start view)
        parent.store(ctx, hi, lo);
        flag.store(ctx, 0, 1);
      }
    }
  });
}

/// Jacobi pointer jumping to a fixed point: parent[v] <- snap[snap[v]],
/// repeated until no pointer moves (halving tree depth per pass, as on
/// hardware).
void jump_to_fixpoint(Device& dev, DeviceBuffer<vertex_t>& parent, vertex_t n,
                      DeviceBuffer<vertex_t>& flag, const char* kernel_name) {
  bool changed = true;
  while (changed) {
    const std::vector<vertex_t> snap = parent.host();
    flag.host_write(0, 0);
    dev.launch(kernel_name, dev.blocks_for(n, kBlock), kBlock, [&](const ThreadCtx& ctx) {
      for (std::uint64_t v = ctx.global_id(); v < n; v += ctx.grid_size()) {
        (void)parent.load(ctx, v);
        const vertex_t p = snap[v];
        (void)parent.load(ctx, p);
        const vertex_t pp = snap[p];
        if (p != pp) {
          parent.store(ctx, v, pp);
          flag.store(ctx, 0, 1);
        }
      }
    });
    changed = flag.host_read(0) != 0;
  }
}

GpuRunResult finish(Device& dev, DeviceBuffer<vertex_t>& parent) {
  GpuRunResult result;
  result.labels = parent.host();
  result.time_ms = dev.total_time_ms();
  result.kernels = dev.history();
  result.time_by_kernel = dev.time_by_kernel();
  result.memory = dev.counters();
  return result;
}

}  // namespace

GpuRunResult soman_gpu(const Graph& g, const DeviceSpec& spec) {
  Device dev(spec);
  const vertex_t n = g.num_vertices();
  if (n == 0) return {};
  DeviceEdgeList edges(dev, g);
  auto parent = dev.alloc<vertex_t>(n);
  auto mark = dev.alloc<std::uint8_t>(std::max<std::uint64_t>(1, edges.count));
  auto flag = dev.alloc<vertex_t>(1);

  init_parents(dev, parent, n);

  bool hooked = true;
  while (hooked) {
    const std::vector<vertex_t> snap = parent.host();
    flag.host_write(0, 0);
    hook_pass(dev, edges, parent, snap, &mark, flag, "hooking");
    hooked = flag.host_read(0) != 0;
    jump_to_fixpoint(dev, parent, n, flag, "pointer jumping");
  }
  return finish(dev, parent);
}

GpuRunResult irgl_gpu(const Graph& g, const DeviceSpec& spec) {
  Device dev(spec);
  const vertex_t n = g.num_vertices();
  if (n == 0) return {};
  DeviceEdgeList edges(dev, g);
  auto parent = dev.alloc<vertex_t>(n);
  auto flag = dev.alloc<vertex_t>(1);

  init_parents(dev, parent, n);

  bool hooked = true;
  while (hooked) {
    const std::vector<vertex_t> snap = parent.host();
    flag.host_write(0, 0);
    // No edge marking: the generated code re-reads the full edge list every
    // round.
    hook_pass(dev, edges, parent, snap, nullptr, flag, "hook");
    hooked = flag.host_read(0) != 0;
    jump_to_fixpoint(dev, parent, n, flag, "jump");
    // Unfused convergence-check pass (hand-written codes fold this into the
    // hooking kernel; IrGL's pipeline emits it separately).
    dev.launch("check", dev.blocks_for(n, kBlock), kBlock, [&](const ThreadCtx& ctx) {
      for (std::uint64_t v = ctx.global_id(); v < n; v += ctx.grid_size()) {
        (void)parent.load(ctx, v);
      }
    });
  }
  return finish(dev, parent);
}

GpuRunResult gunrock_gpu(const Graph& g, const DeviceSpec& spec) {
  Device dev(spec);
  const vertex_t n = g.num_vertices();
  if (n == 0) return {};
  DeviceEdgeList edges(dev, g);
  const std::uint64_t cap = std::max<std::uint64_t>(1, edges.count);
  auto parent = dev.alloc<vertex_t>(n);
  auto flag = dev.alloc<vertex_t>(1);
  // Double-buffered edge frontier for the filter operator.
  DeviceBuffer<vertex_t> fsrc[2] = {dev.alloc<vertex_t>(cap), dev.alloc<vertex_t>(cap)};
  DeviceBuffer<vertex_t> fdst[2] = {dev.alloc<vertex_t>(cap), dev.alloc<vertex_t>(cap)};
  auto cursor = dev.alloc<vertex_t>(1);
  auto vertex_frontier = dev.alloc<vertex_t>(std::max<vertex_t>(1, n));

  init_parents(dev, parent, n);

  // Initial frontier = all edges.
  fsrc[0].host() = edges.src.host();
  fdst[0].host() = edges.dst.host();
  std::uint64_t frontier_size = edges.count;
  int cur = 0;

  while (frontier_size > 0) {
    const std::vector<vertex_t> snap = parent.host();
    flag.host_write(0, 0);
    dev.launch("hook (advance)", dev.blocks_for(frontier_size, kBlock), kBlock,
               [&](const ThreadCtx& ctx) {
                 for (std::uint64_t e = ctx.global_id(); e < frontier_size;
                      e += ctx.grid_size()) {
                   const vertex_t u = fsrc[cur].load(ctx, e);
                   const vertex_t v = fdst[cur].load(ctx, e);
                   (void)parent.load(ctx, u);
                   (void)parent.load(ctx, v);
                   const vertex_t pu = snap[u];
                   const vertex_t pv = snap[v];
                   if (pu == pv) continue;
                   const vertex_t lo = std::min(pu, pv);
                   const vertex_t hi = std::max(pu, pv);
                   (void)parent.load(ctx, hi);
                   if (snap[hi] == hi) {
                     parent.store(ctx, hi, lo);
                   }
                 }
               });

    jump_to_fixpoint(dev, parent, n, flag, "pointer jumping");

    // Gunrock's filter operators are built on a scan: one pass computes each
    // element's validity flag and prefix sum before the scatter pass. Charge
    // that pass explicitly.
    dev.launch("filter scan", dev.blocks_for(std::max<std::uint64_t>(frontier_size, n), kBlock),
               kBlock, [&](const ThreadCtx& ctx) {
                 for (std::uint64_t e = ctx.global_id(); e < frontier_size;
                      e += ctx.grid_size()) {
                   (void)fsrc[cur].load(ctx, e);
                   (void)fdst[cur].load(ctx, e);
                 }
                 for (std::uint64_t v = ctx.global_id(); v < n; v += ctx.grid_size()) {
                   (void)parent.load(ctx, v);
                 }
               });

    // Vertex filter: drop vertices that are their own representative.
    cursor.host_write(0, 0);
    dev.launch("vertex filter", dev.blocks_for(n, kBlock), kBlock, [&](const ThreadCtx& ctx) {
      for (std::uint64_t v = ctx.global_id(); v < n; v += ctx.grid_size()) {
        if (parent.load(ctx, v) != v) {
          const vertex_t slot = cursor.atomic_add(ctx, 0, 1);
          vertex_frontier.store(ctx, slot, static_cast<vertex_t>(v));
        }
      }
    });

    // Edge filter: keep only edges whose endpoints still differ.
    cursor.host_write(0, 0);
    const std::uint64_t in_size = frontier_size;
    dev.launch("edge filter", dev.blocks_for(in_size, kBlock), kBlock,
               [&](const ThreadCtx& ctx) {
                 for (std::uint64_t e = ctx.global_id(); e < in_size; e += ctx.grid_size()) {
                   const vertex_t u = fsrc[cur].load(ctx, e);
                   const vertex_t v = fdst[cur].load(ctx, e);
                   if (parent.load(ctx, u) != parent.load(ctx, v)) {
                     const vertex_t slot = cursor.atomic_add(ctx, 0, 1);
                     fsrc[1 - cur].store(ctx, slot, u);
                     fdst[1 - cur].store(ctx, slot, v);
                   }
                 }
               });
    frontier_size = cursor.host_read(0);
    cur = 1 - cur;
  }
  return finish(dev, parent);
}

GpuRunResult groute_gpu(const Graph& g, const DeviceSpec& spec) {
  Device dev(spec);
  const vertex_t n = g.num_vertices();
  if (n == 0) return {};
  DeviceEdgeList edges(dev, g);
  auto parent = dev.alloc<vertex_t>(n);
  init_parents(dev, parent, n);

  // Edge-list segments of ~n/2 edges => ~2m/n segments (paper §2).
  const std::uint64_t seg_size = std::max<std::uint64_t>(1, n / 2);
  for (std::uint64_t seg_begin = 0; seg_begin < edges.count; seg_begin += seg_size) {
    const std::uint64_t seg_end = std::min(edges.count, seg_begin + seg_size);
    const std::uint64_t seg_count = seg_end - seg_begin;

    dev.launch("atomic hooking", dev.blocks_for(seg_count, kBlock), kBlock,
               [&](const ThreadCtx& ctx) {
                 SimParentOps ops(parent, ctx);
                 for (std::uint64_t e = seg_begin + ctx.global_id(); e < seg_end;
                      e += ctx.grid_size()) {
                   const vertex_t u = edges.src.load(ctx, e);
                   const vertex_t v = edges.dst.load(ctx, e);
                   // Hook the representatives under a CAS (Groute's atomic
                   // hooking needs no global iteration). No path compression
                   // inside the find: the per-segment flattening pass below
                   // keeps paths short.
                   const vertex_t u_rep = find_none(u, ops);
                   const vertex_t v_rep = find_none(v, ops);
                   hook_representatives(v_rep, u_rep, ops);
                 }
               });

    // Multiple pointer jumping after each segment ("hooking followed by
    // multiple pointer jumping on each segment", §2): every parent is made
    // to point directly at its representative, so the next segment's finds
    // are short. After the last segment this doubles as the finalization.
    dev.launch("multi jump", dev.blocks_for(n, kBlock), kBlock, [&](const ThreadCtx& ctx) {
      SimParentOps ops(parent, ctx);
      for (std::uint64_t v = ctx.global_id(); v < n; v += ctx.grid_size()) {
        ops.store(static_cast<vertex_t>(v), find_multiple(static_cast<vertex_t>(v), ops));
      }
    });
  }
  return finish(dev, parent);
}

const std::vector<GpuCode>& gpu_codes() {
  static const std::vector<GpuCode> codes = {
      {"ECL-CC", [](const Graph& g, const DeviceSpec& s) { return ecl_cc_gpu(g, s); }},
      {"Groute", groute_gpu},
      {"Gunrock", gunrock_gpu},
      {"IrGL", irgl_gpu},
      {"Soman", soman_gpu},
  };
  return codes;
}

}  // namespace ecl::gpusim
