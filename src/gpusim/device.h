// The virtual GPU: device memory, SIMT-style kernel launches, atomics, and
// per-kernel statistics.
//
// Execution model: a kernel is a C++ callable invoked once per virtual
// thread. Thread blocks are distributed round-robin over the SMs and every
// memory access is routed through the simulated L1/L2 hierarchy of
// MemorySystem, accumulating cycles on the owning SM. A kernel's simulated
// runtime is the maximum per-SM cycle count divided by (clock x overlap
// factor), plus a fixed launch overhead — a first-order model in which
// runtime is driven by memory traffic and locality, the effects the paper's
// §5.1 shows dominate CC performance on real GPUs.
//
// Functionally the simulation is single-threaded and deterministic: threads
// run to completion in block/thread order. For ECL-CC this only removes the
// benign races of §3 (any interleaving yields correct labels), so
// correctness results carry over exactly.
#pragma once

#include <cassert>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "gpusim/cache.h"
#include "gpusim/spec.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ecl::gpusim {

class Device;

/// Execution context of one virtual thread, passed to kernel bodies.
class ThreadCtx {
 public:
  ThreadCtx(Device& device, std::uint32_t sm, std::uint32_t block, std::uint32_t thread,
            std::uint32_t block_size, std::uint32_t num_blocks)
      : device_(device),
        sm_(sm),
        block_(block),
        thread_(thread),
        block_size_(block_size),
        num_blocks_(num_blocks) {}

  /// blockIdx.x * blockDim.x + threadIdx.x
  [[nodiscard]] std::uint64_t global_id() const {
    return static_cast<std::uint64_t>(block_) * block_size_ + thread_;
  }
  /// gridDim.x * blockDim.x — the grid-stride loop step.
  [[nodiscard]] std::uint64_t grid_size() const {
    return static_cast<std::uint64_t>(num_blocks_) * block_size_;
  }
  [[nodiscard]] std::uint32_t block() const { return block_; }
  [[nodiscard]] std::uint32_t thread_in_block() const { return thread_; }
  [[nodiscard]] std::uint32_t lane() const;        // index within the warp
  [[nodiscard]] std::uint32_t warp_in_block() const;
  [[nodiscard]] std::uint32_t sm() const { return sm_; }
  [[nodiscard]] Device& device() const { return device_; }

  /// Charges `cycles` to this thread's SM (memory ops do this internally;
  /// kernels may add explicit compute cost).
  void add_cycles(std::uint64_t cycles) const;

  /// Counts one issued operation (used for SIMT divergence accounting).
  void count_op() const { ++ops_; }

  /// Operations issued by this thread so far.
  [[nodiscard]] std::uint64_t ops() const { return ops_; }

 private:
  Device& device_;
  mutable std::uint64_t ops_ = 0;
  std::uint32_t sm_;
  std::uint32_t block_;
  std::uint32_t thread_;
  std::uint32_t block_size_;
  std::uint32_t num_blocks_;
};

/// Statistics of one kernel launch.
struct KernelStats {
  std::string name;
  std::uint32_t num_blocks = 0;
  std::uint32_t block_size = 0;
  std::uint64_t max_sm_cycles = 0;       // critical-path SM
  std::uint64_t divergence_cycles = 0;   // SIMT idle-issue-slot charge (all SMs)
  double time_ms = 0.0;                  // modeled runtime incl. launch overhead
  MemoryCounters memory;                 // accesses issued by this launch

  /// Fraction of issued loads/stores served by the L1 (0 when none issued).
  [[nodiscard]] double l1_hit_rate() const {
    const std::uint64_t accesses = memory.reads + memory.writes;
    return accesses == 0 ? 0.0
                         : static_cast<double>(memory.l1_hits) /
                               static_cast<double>(accesses);
  }

  /// Fraction of L2 accesses (L1 misses, write-backs, atomics) that hit.
  [[nodiscard]] double l2_hit_rate() const {
    const std::uint64_t accesses = memory.l2_reads + memory.l2_writes;
    return accesses == 0 ? 0.0
                         : static_cast<double>(memory.l2_hits) /
                               static_cast<double>(accesses);
  }
};

/// A typed allocation in simulated device memory. Accesses must go through
/// the ctx-taking methods so traffic is attributed to the right SM. The
/// host_* methods are for setup/teardown (cudaMemcpy equivalents) and cost
/// nothing.
template <typename T>
class DeviceBuffer {
 public:
  DeviceBuffer() = default;

  [[nodiscard]] std::size_t size() const { return data_.size(); }

  /// Device-side load of element i.
  [[nodiscard]] T load(const ThreadCtx& ctx, std::size_t i) const;

  /// Device-side store of element i.
  void store(const ThreadCtx& ctx, std::size_t i, T value);

  /// CUDA atomicCAS: returns the old value; stores `desired` iff old ==
  /// `expected`. Resolves at the L2 like hardware atomics.
  T atomic_cas(const ThreadCtx& ctx, std::size_t i, T expected, T desired);

  /// CUDA atomicAdd: returns the old value.
  T atomic_add(const ThreadCtx& ctx, std::size_t i, T delta);

  // Host-side (un-timed) access for initialization and result readback.
  [[nodiscard]] const std::vector<T>& host() const { return data_; }
  [[nodiscard]] std::vector<T>& host() { return data_; }
  [[nodiscard]] T host_read(std::size_t i) const { return data_[i]; }
  void host_write(std::size_t i, T value) { data_[i] = value; }

 private:
  friend class Device;
  DeviceBuffer(Device* device, std::uint64_t base_addr, std::size_t count)
      : device_(device), base_addr_(base_addr), data_(count) {}

  [[nodiscard]] std::uint64_t addr_of(std::size_t i) const {
    return base_addr_ + i * sizeof(T);
  }

  Device* device_ = nullptr;
  std::uint64_t base_addr_ = 0;
  std::vector<T> data_;
};

class Device {
 public:
  explicit Device(DeviceSpec spec)
      : spec_(std::move(spec)),
        memory_(std::make_unique<MemorySystem>(spec_)),
        sm_cycles_(spec_.num_sms, 0) {}

  [[nodiscard]] const DeviceSpec& spec() const { return spec_; }
  [[nodiscard]] MemorySystem& memory() { return *memory_; }

  /// Allocates `count` elements of simulated global memory.
  template <typename T>
  [[nodiscard]] DeviceBuffer<T> alloc(std::size_t count) {
    constexpr std::uint64_t kAlign = 256;  // cudaMalloc alignment
    const std::uint64_t base = next_addr_;
    next_addr_ += (count * sizeof(T) + kAlign - 1) / kAlign * kAlign;
    return DeviceBuffer<T>(this, base, count);
  }

  /// Launches `body` once per virtual thread over a grid of
  /// `num_blocks` x `block_size`. Returns the launch's statistics and also
  /// appends them to history().
  template <typename Body>
  KernelStats launch(std::string name, std::uint32_t num_blocks, std::uint32_t block_size,
                     Body&& body) {
    assert(block_size > 0 && block_size <= spec_.max_block_size);
    assert(num_blocks > 0);
    ECL_OBS_SPAN(span, name, "gpusim.kernel");
    ECL_OBS_COUNTER_ADD("gpusim.kernel.launches", 1);
    const MemoryCounters before = memory_->counters();
    const std::vector<std::uint64_t> cycles_before = sm_cycles_;
    std::uint64_t divergence_cycles = 0;

    const std::uint32_t warp = spec_.warp_size;
    for (std::uint32_t b = 0; b < num_blocks; ++b) {
      const std::uint32_t sm = b % spec_.num_sms;
      for (std::uint32_t w = 0; w * warp < block_size; ++w) {
        // Execute the warp's lanes, tracking each lane's issued-operation
        // count so divergence can be charged per warp.
        std::uint64_t warp_op_sum = 0;
        std::uint64_t warp_op_max = 0;
        std::uint32_t lanes = 0;
        for (std::uint32_t l = 0; l < warp && w * warp + l < block_size; ++l) {
          const std::uint32_t t = w * warp + l;
          ThreadCtx ctx(*this, sm, b, t, block_size, num_blocks);
          ctx.add_cycles(spec_.thread_overhead_cycles);
          body(ctx);
          warp_op_sum += ctx.ops();
          warp_op_max = std::max(warp_op_max, ctx.ops());
          ++lanes;
        }
        if (spec_.model_divergence && lanes > 0) {
          // SIMT lockstep: a warp issues for as many slots as its busiest
          // lane; the other lanes' idle issue slots are charged at the
          // nominal per-operation cost. (Charging by *work count*, not by
          // per-lane latency, keeps coalesced misses — where one lane pays
          // the line fill and its warp-mates hit — from being multiplied.)
          const std::uint64_t stall =
              (warp_op_max * lanes - warp_op_sum) * spec_.l1_hit_cycles;
          sm_cycles_[sm] += stall;
          divergence_cycles += stall;
        }
      }
    }

    KernelStats stats;
    stats.name = std::move(name);
    stats.num_blocks = num_blocks;
    stats.block_size = block_size;
    stats.divergence_cycles = divergence_cycles;
    for (std::uint32_t s = 0; s < spec_.num_sms; ++s) {
      stats.max_sm_cycles = std::max(stats.max_sm_cycles, sm_cycles_[s] - cycles_before[s]);
    }
    stats.time_ms = static_cast<double>(stats.max_sm_cycles) /
                        (spec_.clock_ghz * 1e9 * spec_.overlap_factor) * 1e3 +
                    spec_.launch_overhead_us * 1e-3;
    stats.memory = memory_->counters().delta_since(before);
    if (span.active()) {
      span.arg("blocks", stats.num_blocks);
      span.arg("block_size", stats.block_size);
      span.arg("modeled_ms", stats.time_ms);
      span.arg("l1_hit_rate", stats.l1_hit_rate());
      span.arg("l2_hit_rate", stats.l2_hit_rate());
      span.arg("l2_reads", stats.memory.l2_reads);
      span.arg("l2_writes", stats.memory.l2_writes);
      span.arg("atomics", stats.memory.atomics);
      span.arg("divergence_stall_cycles", stats.divergence_cycles);
    }
    history_.push_back(stats);
    total_time_ms_ += stats.time_ms;
    return stats;
  }

  /// Grid size that covers `work_items` with `block_size`-wide blocks,
  /// capped at 32 blocks per SM (grid-stride loops handle the remainder).
  [[nodiscard]] std::uint32_t blocks_for(std::uint64_t work_items,
                                         std::uint32_t block_size) const {
    const std::uint64_t needed = (work_items + block_size - 1) / block_size;
    const std::uint64_t cap = static_cast<std::uint64_t>(spec_.num_sms) * 32;
    return static_cast<std::uint32_t>(std::max<std::uint64_t>(1, std::min(needed, cap)));
  }

  /// All launches so far, in order.
  [[nodiscard]] const std::vector<KernelStats>& history() const { return history_; }

  /// Sum of modeled kernel times.
  [[nodiscard]] double total_time_ms() const { return total_time_ms_; }

  /// Total kernel time grouped by kernel name (paper Fig. 10).
  [[nodiscard]] std::map<std::string, double> time_by_kernel() const {
    std::map<std::string, double> by_name;
    for (const auto& k : history_) by_name[k.name] += k.time_ms;
    return by_name;
  }

  /// Memory counters accumulated across all launches.
  [[nodiscard]] const MemoryCounters& counters() const { return memory_->counters(); }

  void add_sm_cycles(std::uint32_t sm, std::uint64_t cycles) { sm_cycles_[sm] += cycles; }

 private:
  DeviceSpec spec_;
  std::unique_ptr<MemorySystem> memory_;
  std::vector<std::uint64_t> sm_cycles_;
  std::vector<KernelStats> history_;
  std::uint64_t next_addr_ = 1 << 20;  // leave a null guard region
  double total_time_ms_ = 0.0;
};

inline std::uint32_t ThreadCtx::lane() const { return thread_ % device_.spec().warp_size; }

inline std::uint32_t ThreadCtx::warp_in_block() const {
  return thread_ / device_.spec().warp_size;
}

inline void ThreadCtx::add_cycles(std::uint64_t cycles) const {
  device_.add_sm_cycles(sm_, cycles);
}

template <typename T>
T DeviceBuffer<T>::load(const ThreadCtx& ctx, std::size_t i) const {
  assert(i < data_.size());
  ctx.count_op();
  ctx.add_cycles(device_->memory().read(ctx.sm(), addr_of(i)));
  return data_[i];
}

template <typename T>
void DeviceBuffer<T>::store(const ThreadCtx& ctx, std::size_t i, T value) {
  assert(i < data_.size());
  ctx.count_op();
  ctx.add_cycles(device_->memory().write(ctx.sm(), addr_of(i)));
  data_[i] = value;
}

template <typename T>
T DeviceBuffer<T>::atomic_cas(const ThreadCtx& ctx, std::size_t i, T expected, T desired) {
  assert(i < data_.size());
  ctx.count_op();
  ctx.add_cycles(device_->memory().atomic(addr_of(i)));
  const T old = data_[i];
  if (old == expected) data_[i] = desired;
  return old;
}

template <typename T>
T DeviceBuffer<T>::atomic_add(const ThreadCtx& ctx, std::size_t i, T delta) {
  assert(i < data_.size());
  ctx.count_op();
  ctx.add_cycles(device_->memory().atomic(addr_of(i)));
  const T old = data_[i];
  data_[i] = static_cast<T>(old + delta);
  return old;
}

}  // namespace ecl::gpusim
