#include "gpusim/spec.h"

namespace ecl::gpusim {

DeviceSpec titanx_like() {
  DeviceSpec spec;
  spec.name = "Titan X (simulated)";
  spec.num_sms = 24;
  spec.clock_ghz = 1.1;
  spec.l1 = {48 * 1024, 64, 4};
  spec.l2 = {2 * 1024 * 1024, 64, 16};
  spec.overlap_factor = 8.0;
  return spec;
}

DeviceSpec k40_like() {
  DeviceSpec spec;
  spec.name = "K40 (simulated)";
  spec.num_sms = 15;
  spec.clock_ghz = 0.745;
  spec.l1 = {48 * 1024, 64, 4};
  spec.l2 = {1536 * 1024, 64, 16};
  spec.overlap_factor = 6.0;
  spec.dram_cycles = 340;  // slower GDDR5 relative to core clock
  return spec;
}

}  // namespace ecl::gpusim
