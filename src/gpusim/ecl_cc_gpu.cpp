// The ECL-CC GPU pipeline (paper §3) on the virtual device.
//
// Five kernels:
//   initialization — seed parent[] per the init policy;
//   compute 1      — thread granularity, vertices of degree <= 16; larger
//                    vertices are pushed onto the double-sided worklist
//                    (mid-degree on one side, high-degree on the other);
//   compute 2      — warp granularity, one worklist vertex per warp, lanes
//                    stride the adjacency list;
//   compute 3      — thread-block granularity for the high-degree side;
//   finalization   — point every parent at the representative.
#include <algorithm>

#include "dsu/hook.h"
#include "graph/graph.h"
#include "gpusim/gpu_cc.h"
#include "gpusim/sim_parent_ops.h"
#include "gpusim/worklist.h"

namespace ecl::gpusim {

namespace {

/// Uploaded CSR image of the graph in device memory.
struct DeviceGraph {
  DeviceBuffer<edge_t> offsets;
  DeviceBuffer<vertex_t> adjacency;

  DeviceGraph(Device& dev, const Graph& g)
      : offsets(dev.alloc<edge_t>(g.num_vertices() + 1)),
        adjacency(dev.alloc<vertex_t>(std::max<std::size_t>(1, g.num_edges()))) {
    std::copy(g.offsets().begin(), g.offsets().end(), offsets.host().begin());
    std::copy(g.adjacency().begin(), g.adjacency().end(), adjacency.host().begin());
  }
};

/// Device-side Init policy evaluation for vertex v (paper Fig. 7).
vertex_t initial_parent_gpu(const ThreadCtx& ctx, const DeviceGraph& dg, InitPolicy policy,
                            vertex_t v) {
  const edge_t beg = dg.offsets.load(ctx, v);
  const edge_t end = dg.offsets.load(ctx, v + 1);
  switch (policy) {
    case InitPolicy::kSelf:
      return v;
    case InitPolicy::kMinNeighbor: {
      vertex_t best = v;
      for (edge_t e = beg; e < end; ++e) {
        best = std::min(best, dg.adjacency.load(ctx, e));
      }
      return best;
    }
    case InitPolicy::kFirstSmallerNeighbor:
      break;
  }
  for (edge_t e = beg; e < end; ++e) {
    const vertex_t u = dg.adjacency.load(ctx, e);
    if (u < v) return u;
  }
  return v;
}

/// Processes the adjacency range [beg+lane, end) of vertex v with stride
/// `step` — the shared body of all three compute kernels.
void compute_edges(const ThreadCtx& ctx, const DeviceGraph& dg,
                   DeviceBuffer<vertex_t>& parent, JumpPolicy jump, vertex_t v, edge_t beg,
                   edge_t end, edge_t first, edge_t step) {
  SimParentOps ops(parent, ctx);
  vertex_t v_rep = find_repres(jump, v, ops);
  for (edge_t e = beg + first; e < end; e += step) {
    const vertex_t u = dg.adjacency.load(ctx, e);
    if (v > u) {
      v_rep = process_edge(jump, v_rep, u, ops);
    }
  }
}

}  // namespace

GpuRunResult ecl_cc_gpu(const Graph& g, const DeviceSpec& spec, const GpuEclOptions& opts) {
  Device dev(spec);
  const vertex_t n = g.num_vertices();
  GpuRunResult result;
  if (n == 0) {
    return result;
  }

  DeviceGraph dg(dev, g);
  auto parent = dev.alloc<vertex_t>(n);
  // Double-sided worklist (size n): compute-2 vertices fill from the top,
  // compute-3 vertices from the bottom.
  DoubleSidedWorklist worklist(dev, n);

  const std::uint32_t bs = opts.block_size;

  dev.launch("initialization", dev.blocks_for(n, bs), bs, [&](const ThreadCtx& ctx) {
    for (std::uint64_t v = ctx.global_id(); v < n; v += ctx.grid_size()) {
      parent.store(ctx, v, initial_parent_gpu(ctx, dg, opts.init, static_cast<vertex_t>(v)));
    }
  });

  dev.launch("compute 1", dev.blocks_for(n, bs), bs, [&](const ThreadCtx& ctx) {
    for (std::uint64_t vv = ctx.global_id(); vv < n; vv += ctx.grid_size()) {
      const auto v = static_cast<vertex_t>(vv);
      const edge_t beg = dg.offsets.load(ctx, v);
      const edge_t end = dg.offsets.load(ctx, v + 1);
      const auto degree = static_cast<vertex_t>(end - beg);
      if (degree > opts.thread_degree_limit) {
        // Defer to the warp- or block-granularity kernel via the worklist.
        if (degree <= opts.warp_degree_limit) {
          worklist.push_top(ctx, v);
        } else {
          worklist.push_bottom(ctx, v);
        }
        continue;
      }
      compute_edges(ctx, dg, parent, opts.jump, v, beg, end, 0, 1);
    }
  });

  const vertex_t num_mid = worklist.top_count();
  const vertex_t bottom = worklist.bottom_begin();
  const vertex_t num_high = worklist.bottom_count();

  if (num_mid > 0) {
    const std::uint32_t warp = spec.warp_size;
    const std::uint64_t threads = static_cast<std::uint64_t>(num_mid) * warp;
    dev.launch("compute 2", dev.blocks_for(threads, bs), bs, [&](const ThreadCtx& ctx) {
      const std::uint64_t warp_id = ctx.global_id() / warp;
      const std::uint64_t num_warps = ctx.grid_size() / warp;
      const std::uint32_t lane = ctx.lane();
      for (std::uint64_t w = warp_id; w < num_mid; w += num_warps) {
        const vertex_t v = worklist.read(ctx, static_cast<vertex_t>(w));
        const edge_t beg = dg.offsets.load(ctx, v);
        const edge_t end = dg.offsets.load(ctx, v + 1);
        compute_edges(ctx, dg, parent, opts.jump, v, beg, end, lane, warp);
      }
    });
  }

  if (num_high > 0) {
    dev.launch("compute 3", std::max(1u, std::min<std::uint32_t>(num_high, spec.num_sms * 8)),
               bs, [&](const ThreadCtx& ctx) {
                 const std::uint32_t num_blocks =
                     static_cast<std::uint32_t>(ctx.grid_size() / bs);
                 for (std::uint64_t i = ctx.block(); i < num_high; i += num_blocks) {
                   const vertex_t v = worklist.read(ctx, static_cast<vertex_t>(bottom + i));
                   const edge_t beg = dg.offsets.load(ctx, v);
                   const edge_t end = dg.offsets.load(ctx, v + 1);
                   compute_edges(ctx, dg, parent, opts.jump, v, beg, end,
                                 ctx.thread_in_block(), bs);
                 }
               });
  }

  dev.launch("finalization", dev.blocks_for(n, bs), bs, [&](const ThreadCtx& ctx) {
    SimParentOps ops(parent, ctx);
    for (std::uint64_t vv = ctx.global_id(); vv < n; vv += ctx.grid_size()) {
      const auto v = static_cast<vertex_t>(vv);
      switch (opts.finalize) {
        case FinalizePolicy::kIntermediate:
          ops.store(v, find_intermediate(v, ops));
          break;
        case FinalizePolicy::kMultiple:
          ops.store(v, find_multiple(v, ops));
          break;
        case FinalizePolicy::kSingle: {
          vertex_t root = ops.load(v);
          vertex_t next;
          while (root > (next = ops.load(root))) root = next;
          ops.store(v, root);
          break;
        }
      }
    }
  });

  result.labels = parent.host();
  result.time_ms = dev.total_time_ms();
  result.kernels = dev.history();
  result.time_by_kernel = dev.time_by_kernel();
  result.memory = dev.counters();
  return result;
}

}  // namespace ecl::gpusim
