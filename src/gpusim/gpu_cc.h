// GPU connected-components implementations on the virtual device: the
// ECL-CC five-kernel pipeline (paper §3) and the four prior GPU codes it is
// compared against in §5.2 (Soman, Groute, Gunrock, IrGL), reimplemented
// from the paper's algorithm descriptions.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/ecl_cc.h"
#include "graph/graph.h"
#include "gpusim/cache.h"
#include "gpusim/device.h"
#include "gpusim/spec.h"

namespace ecl::gpusim {

/// Result of one simulated GPU CC run.
struct GpuRunResult {
  std::vector<vertex_t> labels;
  /// Modeled total runtime (sum of kernel times; transfers excluded, as in
  /// the paper's methodology §4).
  double time_ms = 0.0;
  /// Every kernel launch in order.
  std::vector<KernelStats> kernels;
  /// Total time grouped by kernel name (paper Fig. 10).
  std::map<std::string, double> time_by_kernel;
  /// Whole-run memory counters (paper Table 3 uses l2_reads / l2_writes).
  MemoryCounters memory;
};

/// Tunables of the GPU pipeline. Defaults are the published configuration:
/// degree <= 16 handled at thread granularity, 17..352 at warp granularity,
/// > 352 at thread-block granularity, blocks of 256 threads.
struct GpuEclOptions {
  InitPolicy init = InitPolicy::kFirstSmallerNeighbor;
  JumpPolicy jump = JumpPolicy::kIntermediate;
  FinalizePolicy finalize = FinalizePolicy::kSingle;
  vertex_t thread_degree_limit = 16;
  vertex_t warp_degree_limit = 352;
  std::uint32_t block_size = 256;
};

/// ECL-CC on the virtual GPU: initialization kernel, three computation
/// kernels fed by a double-sided worklist, finalization kernel.
[[nodiscard]] GpuRunResult ecl_cc_gpu(const Graph& g, const DeviceSpec& spec,
                                      const GpuEclOptions& opts = {});

/// Soman et al. [36]: iterated hooking on representatives with edge marking,
/// a pointer-jumping pass per iteration, and a final full flattening.
[[nodiscard]] GpuRunResult soman_gpu(const Graph& g, const DeviceSpec& spec);

/// Groute [2]: the edge list is split into ~2m/n segments; each segment is
/// atomically hooked and followed by a multiple-pointer-jumping pass, which
/// interleaves hooking and jumping and avoids global iteration.
[[nodiscard]] GpuRunResult groute_gpu(const Graph& g, const DeviceSpec& spec);

/// Gunrock [38]: Soman's algorithm with filter operators that compact away
/// converged edges and representative vertices after every iteration.
[[nodiscard]] GpuRunResult gunrock_gpu(const Graph& g, const DeviceSpec& spec);

/// IrGL [26]: compiler-generated Soman — no edge marking (all edges are
/// reprocessed every iteration), separate unfused kernels per step.
[[nodiscard]] GpuRunResult irgl_gpu(const Graph& g, const DeviceSpec& spec);

/// Registry of the five GPU codes in the order of the paper's Fig. 11/12.
struct GpuCode {
  std::string name;
  std::function<GpuRunResult(const Graph&, const DeviceSpec&)> run;
};
[[nodiscard]] const std::vector<GpuCode>& gpu_codes();

}  // namespace ecl::gpusim
