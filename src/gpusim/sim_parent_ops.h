// ParentOps adapter that routes the shared find/hook algorithm templates
// through simulated device memory, so the GPU kernels execute exactly the
// same union-find code as the CPU ports while every access is charged to
// the cache model.
#pragma once

#include "common/types.h"
#include "dsu/parent_ops.h"
#include "gpusim/device.h"

namespace ecl::gpusim {

class SimParentOps {
 public:
  SimParentOps(DeviceBuffer<vertex_t>& parent, const ThreadCtx& ctx)
      : parent_(&parent), ctx_(&ctx) {}

  [[nodiscard]] vertex_t load(vertex_t i) const { return parent_->load(*ctx_, i); }
  void store(vertex_t i, vertex_t value) { parent_->store(*ctx_, i, value); }
  vertex_t cas(vertex_t i, vertex_t expected, vertex_t desired) {
    return parent_->atomic_cas(*ctx_, i, expected, desired);
  }

 private:
  DeviceBuffer<vertex_t>* parent_;
  const ThreadCtx* ctx_;
};

static_assert(ParentOps<SimParentOps>);

}  // namespace ecl::gpusim
