#include "gpusim/mst_gpu.h"

#include <algorithm>

#include "dsu/find.h"
#include "dsu/hook.h"
#include "gpusim/sim_parent_ops.h"

namespace ecl::gpusim {

namespace {

constexpr std::uint32_t kBlock = 256;
constexpr std::uint64_t kNoEdge = ~std::uint64_t{0};

/// Lexicographic (weight, edge-id) comparison: the deterministic tie-break
/// makes Boruvka cycle-free even with equal weights.
bool lighter(double wa, std::uint64_t ea, double wb, std::uint64_t eb) {
  return wa < wb || (wa == wb && ea < eb);
}

}  // namespace

GpuMstResult boruvka_mst_gpu(const Graph& g, const DeviceSpec& spec,
                             const GpuWeightFn& weight, JumpPolicy jump) {
  GpuMstResult result;
  const vertex_t n = g.num_vertices();
  if (n == 0) return result;

  Device dev(spec);
  // Undirected edge list (u < v) with per-edge weights in device memory.
  const std::uint64_t m_und = g.num_edges() / 2;
  auto esrc = dev.alloc<vertex_t>(std::max<std::uint64_t>(1, m_und));
  auto edst = dev.alloc<vertex_t>(std::max<std::uint64_t>(1, m_und));
  auto ewgt = dev.alloc<double>(std::max<std::uint64_t>(1, m_und));
  {
    std::uint64_t e = 0;
    for (vertex_t v = 0; v < n; ++v) {
      for (const vertex_t u : g.neighbors(v)) {
        if (u < v) {
          esrc.host_write(e, u);
          edst.host_write(e, v);
          ewgt.host_write(e, weight(u, v));
          ++e;
        }
      }
    }
  }

  auto parent = dev.alloc<vertex_t>(n);
  auto best = dev.alloc<std::uint64_t>(n);     // per-root lightest edge id
  auto selected = dev.alloc<std::uint8_t>(std::max<std::uint64_t>(1, m_und));
  auto flag = dev.alloc<vertex_t>(1);

  dev.launch("mst init", dev.blocks_for(n, kBlock), kBlock, [&](const ThreadCtx& ctx) {
    for (std::uint64_t v = ctx.global_id(); v < n; v += ctx.grid_size()) {
      parent.store(ctx, v, static_cast<vertex_t>(v));
      best.store(ctx, v, kNoEdge);
    }
  });

  bool progress = true;
  while (progress) {
    // Phase 1: every still-crossing edge bids for both endpoint roots'
    // lightest-edge slot (CAS-min; finds use the configured jump flavour).
    flag.host_write(0, 0);
    dev.launch("find lightest", dev.blocks_for(m_und, kBlock), kBlock,
               [&](const ThreadCtx& ctx) {
                 SimParentOps ops(parent, ctx);
                 for (std::uint64_t e = ctx.global_id(); e < m_und; e += ctx.grid_size()) {
                   const vertex_t u = esrc.load(ctx, e);
                   const vertex_t v = edst.load(ctx, e);
                   const vertex_t u_rep = find_repres(jump, u, ops);
                   const vertex_t v_rep = find_repres(jump, v, ops);
                   if (u_rep == v_rep) continue;
                   const double w = ewgt.load(ctx, e);
                   for (const vertex_t root : {u_rep, v_rep}) {
                     std::uint64_t cur = best.load(ctx, root);
                     while (cur == kNoEdge ||
                            lighter(w, e, ewgt.load(ctx, cur), cur)) {
                       const std::uint64_t seen = best.atomic_cas(ctx, root, cur, e);
                       if (seen == cur) break;  // won the slot
                       cur = seen;              // lost: re-compare
                     }
                   }
                   flag.store(ctx, 0, 1);
                 }
               });
    progress = flag.host_read(0) != 0;
    if (!progress) break;

    // Phase 2: each root hooks along its winning edge (ECL hooking: CAS on
    // the larger representative); the winning edge joins the forest.
    dev.launch("hook winners", dev.blocks_for(n, kBlock), kBlock,
               [&](const ThreadCtx& ctx) {
                 SimParentOps ops(parent, ctx);
                 for (std::uint64_t v = ctx.global_id(); v < n; v += ctx.grid_size()) {
                   const std::uint64_t e = best.load(ctx, v);
                   if (e == kNoEdge) continue;
                   best.store(ctx, v, kNoEdge);  // reset for the next round
                   const vertex_t u_rep = find_repres(jump, esrc.load(ctx, e), ops);
                   const vertex_t v_rep = find_repres(jump, edst.load(ctx, e), ops);
                   if (u_rep == v_rep) continue;  // the other endpoint got here first
                   hook_representatives(v_rep, u_rep, ops);
                   selected.store(ctx, e, 1);
                 }
               });

  }

  // Finalization: one flattening pass so the labels are canonical. During
  // the rounds, path maintenance is left entirely to the configured find
  // flavour — the ECL approach, and what bench/extension_mst measures.
  dev.launch("mst finalize", dev.blocks_for(n, kBlock), kBlock, [&](const ThreadCtx& ctx) {
    SimParentOps ops(parent, ctx);
    for (std::uint64_t v = ctx.global_id(); v < n; v += ctx.grid_size()) {
      ops.store(static_cast<vertex_t>(v), find_multiple(static_cast<vertex_t>(v), ops));
    }
  });

  for (std::uint64_t e = 0; e < m_und; ++e) {
    if (selected.host_read(e) != 0) {
      result.edge_ids.push_back(e);
      result.total_weight += ewgt.host_read(e);
    }
  }
  result.labels = parent.host();
  result.time_ms = dev.total_time_ms();
  result.kernels = dev.history();
  return result;
}

}  // namespace ecl::gpusim
