// The double-sided worklist of the paper's §3: a single size-n device array
// filled by the thread-granularity kernel from both ends — mid-degree
// vertices (for the warp kernel) from the top, high-degree vertices (for
// the thread-block kernel) from the bottom. One allocation serves both
// queues, "to save memory space"; the cursors are device atomics. Mirrors
// Enterprise's load balancing [23] minus the small-work queue.
#pragma once

#include "common/types.h"
#include "gpusim/device.h"

namespace ecl::gpusim {

class DoubleSidedWorklist {
 public:
  /// Allocates a worklist of `capacity` slots on `dev`.
  DoubleSidedWorklist(Device& dev, vertex_t capacity)
      : slots_(dev.alloc<vertex_t>(std::max<vertex_t>(1, capacity))),
        cursors_(dev.alloc<vertex_t>(2)),
        capacity_(capacity) {
    cursors_.host_write(kTop, 0);
    cursors_.host_write(kBottom, capacity);
  }

  /// Device-side push onto the top (front) side. Returns the slot index.
  vertex_t push_top(const ThreadCtx& ctx, vertex_t value) {
    const vertex_t slot = cursors_.atomic_add(ctx, kTop, 1);
    slots_.store(ctx, slot, value);
    return slot;
  }

  /// Device-side push onto the bottom (back) side. Returns the slot index.
  vertex_t push_bottom(const ThreadCtx& ctx, vertex_t value) {
    const vertex_t slot =
        static_cast<vertex_t>(cursors_.atomic_add(ctx, kBottom, static_cast<vertex_t>(-1)) - 1);
    slots_.store(ctx, slot, value);
    return slot;
  }

  /// Device-side read of slot i (top entries live at [0, top_count()),
  /// bottom entries at [bottom_begin(), capacity)).
  [[nodiscard]] vertex_t read(const ThreadCtx& ctx, vertex_t i) const {
    return slots_.load(ctx, i);
  }

  /// Host-side: number of entries pushed onto the top side.
  [[nodiscard]] vertex_t top_count() const { return cursors_.host_read(kTop); }

  /// Host-side: first slot of the bottom side.
  [[nodiscard]] vertex_t bottom_begin() const { return cursors_.host_read(kBottom); }

  /// Host-side: number of entries pushed onto the bottom side.
  [[nodiscard]] vertex_t bottom_count() const {
    return static_cast<vertex_t>(capacity_ - bottom_begin());
  }

  /// True when the two sides have collided (the caller overfilled; with one
  /// entry per vertex and capacity n this cannot happen, as in the paper).
  [[nodiscard]] bool overflowed() const { return top_count() > bottom_begin(); }

  [[nodiscard]] vertex_t capacity() const { return capacity_; }

 private:
  static constexpr std::size_t kTop = 0;
  static constexpr std::size_t kBottom = 1;

  DeviceBuffer<vertex_t> slots_;
  mutable DeviceBuffer<vertex_t> cursors_;
  vertex_t capacity_;
};

}  // namespace ecl::gpusim
