// Virtual-device descriptions for the GPU simulator.
//
// The two configurations mirror the paper's evaluation hardware (§4): a
// GeForce GTX Titan X (Maxwell) and a Tesla K40c (Kepler). The simulator is
// a behavioural model, not a microarchitectural one: it executes kernels
// functionally and charges cycles per memory access by the cache level that
// serves it, which is the first-order effect behind the paper's results
// (§5.1 correlates runtime with L2 accesses).
#pragma once

#include <cstdint>
#include <string>

namespace ecl::gpusim {

struct CacheSpec {
  std::uint64_t size_bytes = 0;
  std::uint32_t line_bytes = 64;
  std::uint32_t associativity = 4;
};

struct DeviceSpec {
  std::string name;
  std::uint32_t num_sms = 24;
  std::uint32_t warp_size = 32;
  std::uint32_t max_block_size = 1024;
  double clock_ghz = 1.1;
  CacheSpec l1;  // per SM
  CacheSpec l2;  // shared

  // Cycle costs per access, by the level that serves it.
  std::uint32_t l1_hit_cycles = 4;
  std::uint32_t l2_hit_cycles = 60;
  std::uint32_t dram_cycles = 300;
  std::uint32_t atomic_cycles = 100;  // atomics resolve at the L2
  std::uint32_t thread_overhead_cycles = 12;

  /// Average latency-hiding factor: how many outstanding memory operations
  /// the warp schedulers overlap. Divides accumulated cycles when converting
  /// to wall-clock so absolute times land in a plausible range; it cancels
  /// in all relative (normalized) results.
  double overlap_factor = 8.0;

  /// Fixed kernel launch overhead charged per launch.
  double launch_overhead_us = 1.0;

  /// Model SIMT lockstep: a warp occupies its issue slots for the duration
  /// of its longest-running lane, so divergent lanes waste the others'
  /// slots. This is the load-imbalance effect the paper's three-kernel
  /// design (§3) exists to avoid; disable to see pure work counts.
  bool model_divergence = true;
};

/// GeForce GTX Titan X flavour: 24 SMs, 48 kB L1/SM, 2 MB L2, 1.1 GHz.
[[nodiscard]] DeviceSpec titanx_like();

/// Tesla K40c flavour: 15 SMs, 48 kB L1/SM, 1.5 MB L2, 745 MHz, and a
/// smaller overlap factor (older scheduler, slower GDDR5).
[[nodiscard]] DeviceSpec k40_like();

}  // namespace ecl::gpusim
