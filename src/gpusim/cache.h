// Set-associative cache model and the two-level memory system used by the
// virtual GPU.
//
// The model is behavioural: it tracks which lines are resident (true LRU
// within each set, write-back + write-allocate) and counts accesses per
// level. It reproduces the quantity the paper profiles in Table 3 — L2 read
// and write accesses — and supplies per-access cycle costs for the runtime
// model.
#pragma once

#include <cstdint>
#include <vector>

#include "gpusim/spec.h"

namespace ecl::gpusim {

/// One set-associative, write-back, write-allocate cache level with LRU
/// replacement.
class CacheSim {
 public:
  explicit CacheSim(const CacheSpec& spec);

  enum class Outcome { kHit, kMiss };

  struct AccessResult {
    Outcome outcome = Outcome::kMiss;
    bool dirty_eviction = false;  // a dirty line was displaced
  };

  /// Looks up `addr`; on miss, fills the line (possibly evicting).
  AccessResult access(std::uint64_t addr, bool is_write);

  /// Evicts everything, reporting the number of dirty lines written back.
  std::uint64_t flush();

  [[nodiscard]] std::uint32_t line_bytes() const { return line_bytes_; }

 private:
  struct Way {
    std::uint64_t tag = ~std::uint64_t{0};
    std::uint64_t lru = 0;  // last-use stamp
    bool valid = false;
    bool dirty = false;
  };

  std::uint32_t line_bytes_;
  std::uint32_t num_sets_;
  std::uint32_t associativity_;
  std::uint64_t tick_ = 0;
  std::vector<Way> ways_;  // num_sets_ * associativity_, set-major
};

/// Counters reported by MemorySystem (paper Table 3 compares l2_reads and
/// l2_writes across pointer-jumping flavours).
struct MemoryCounters {
  std::uint64_t reads = 0;          // device loads issued
  std::uint64_t writes = 0;         // device stores issued
  std::uint64_t atomics = 0;        // atomic RMW operations
  std::uint64_t l1_hits = 0;
  std::uint64_t l2_reads = 0;       // L1 read/write-allocate misses
  std::uint64_t l2_writes = 0;      // dirty L1 evictions + atomics
  std::uint64_t l2_hits = 0;
  std::uint64_t dram_accesses = 0;  // L2 misses

  MemoryCounters& operator-=(const MemoryCounters& other);
  [[nodiscard]] MemoryCounters delta_since(const MemoryCounters& baseline) const;
};

/// Per-SM L1 caches in front of a shared L2, with cycle accounting.
class MemorySystem {
 public:
  explicit MemorySystem(const DeviceSpec& spec);

  /// A load issued by SM `sm`; returns its cycle cost.
  std::uint32_t read(std::uint32_t sm, std::uint64_t addr);

  /// A store issued by SM `sm`; returns its cycle cost.
  std::uint32_t write(std::uint32_t sm, std::uint64_t addr);

  /// An atomic RMW; bypasses L1 and resolves at the L2, as on real GPUs.
  std::uint32_t atomic(std::uint64_t addr);

  /// Writes back all dirty L1/L2 lines (kernel boundary semantics are not
  /// modeled; call at simulation end if total write-back traffic matters).
  void flush_all();

  [[nodiscard]] const MemoryCounters& counters() const { return counters_; }

 private:
  /// L1 miss path: forwards to L2, returns the serving-level cost.
  std::uint32_t l2_access(std::uint64_t addr, bool is_write);

  DeviceSpec spec_;
  std::vector<CacheSim> l1_;  // one per SM
  CacheSim l2_;
  MemoryCounters counters_;
};

}  // namespace ecl::gpusim
