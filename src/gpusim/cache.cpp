#include "gpusim/cache.h"

#include <algorithm>
#include <bit>
#include <cassert>

namespace ecl::gpusim {

namespace {

std::uint32_t round_up_pow2(std::uint32_t x) {
  return x <= 1 ? 1 : std::bit_ceil(x);
}

}  // namespace

CacheSim::CacheSim(const CacheSpec& spec)
    : line_bytes_(round_up_pow2(spec.line_bytes)),
      associativity_(std::max<std::uint32_t>(1, spec.associativity)) {
  const std::uint64_t lines = std::max<std::uint64_t>(
      associativity_, spec.size_bytes / line_bytes_);
  num_sets_ = round_up_pow2(static_cast<std::uint32_t>(lines / associativity_));
  ways_.resize(static_cast<std::size_t>(num_sets_) * associativity_);
}

CacheSim::AccessResult CacheSim::access(std::uint64_t addr, bool is_write) {
  const std::uint64_t line = addr / line_bytes_;
  const std::uint32_t set = static_cast<std::uint32_t>(line & (num_sets_ - 1));
  const std::uint64_t tag = line / num_sets_;
  Way* base = &ways_[static_cast<std::size_t>(set) * associativity_];
  ++tick_;

  // Hit path.
  for (std::uint32_t w = 0; w < associativity_; ++w) {
    if (base[w].valid && base[w].tag == tag) {
      base[w].lru = tick_;
      if (is_write) base[w].dirty = true;
      return {Outcome::kHit, false};
    }
  }

  // Miss: fill into the LRU way.
  Way* victim = base;
  for (std::uint32_t w = 1; w < associativity_; ++w) {
    if (!base[w].valid) {
      victim = &base[w];
      break;
    }
    if (base[w].lru < victim->lru) victim = &base[w];
  }
  const bool dirty_eviction = victim->valid && victim->dirty;
  victim->valid = true;
  victim->dirty = is_write;
  victim->tag = tag;
  victim->lru = tick_;
  return {Outcome::kMiss, dirty_eviction};
}

std::uint64_t CacheSim::flush() {
  std::uint64_t dirty = 0;
  for (auto& way : ways_) {
    if (way.valid && way.dirty) ++dirty;
    way.valid = false;
    way.dirty = false;
    way.tag = ~std::uint64_t{0};
  }
  return dirty;
}

MemoryCounters& MemoryCounters::operator-=(const MemoryCounters& other) {
  reads -= other.reads;
  writes -= other.writes;
  atomics -= other.atomics;
  l1_hits -= other.l1_hits;
  l2_reads -= other.l2_reads;
  l2_writes -= other.l2_writes;
  l2_hits -= other.l2_hits;
  dram_accesses -= other.dram_accesses;
  return *this;
}

MemoryCounters MemoryCounters::delta_since(const MemoryCounters& baseline) const {
  MemoryCounters d = *this;
  d -= baseline;
  return d;
}

MemorySystem::MemorySystem(const DeviceSpec& spec) : spec_(spec), l2_(spec.l2) {
  l1_.reserve(spec.num_sms);
  for (std::uint32_t s = 0; s < spec.num_sms; ++s) l1_.emplace_back(spec.l1);
}

std::uint32_t MemorySystem::l2_access(std::uint64_t addr, bool is_write) {
  if (is_write) {
    ++counters_.l2_writes;
  } else {
    ++counters_.l2_reads;
  }
  const auto result = l2_.access(addr, is_write);
  if (result.dirty_eviction) ++counters_.dram_accesses;  // write-back to DRAM
  if (result.outcome == CacheSim::Outcome::kHit) {
    ++counters_.l2_hits;
    return spec_.l2_hit_cycles;
  }
  ++counters_.dram_accesses;
  return spec_.dram_cycles;
}

std::uint32_t MemorySystem::read(std::uint32_t sm, std::uint64_t addr) {
  assert(sm < l1_.size());
  ++counters_.reads;
  const auto result = l1_[sm].access(addr, /*is_write=*/false);
  std::uint32_t cost = spec_.l1_hit_cycles;
  if (result.outcome == CacheSim::Outcome::kHit) {
    ++counters_.l1_hits;
    return cost;
  }
  if (result.dirty_eviction) cost += l2_access(addr, /*is_write=*/true);
  cost += l2_access(addr, /*is_write=*/false);
  return cost;
}

std::uint32_t MemorySystem::write(std::uint32_t sm, std::uint64_t addr) {
  assert(sm < l1_.size());
  ++counters_.writes;
  const auto result = l1_[sm].access(addr, /*is_write=*/true);
  std::uint32_t cost = spec_.l1_hit_cycles;
  if (result.outcome == CacheSim::Outcome::kHit) {
    ++counters_.l1_hits;
    return cost;
  }
  // Write-allocate: fetch the line from L2, write locally; the dirty line
  // surfaces at L2 when evicted.
  if (result.dirty_eviction) cost += l2_access(addr, /*is_write=*/true);
  cost += l2_access(addr, /*is_write=*/false);
  return cost;
}

std::uint32_t MemorySystem::atomic(std::uint64_t addr) {
  ++counters_.atomics;
  // GPU atomics execute at the L2: one read-modify-write there.
  ++counters_.l2_reads;
  ++counters_.l2_writes;
  const auto result = l2_.access(addr, /*is_write=*/true);
  if (result.dirty_eviction) ++counters_.dram_accesses;
  if (result.outcome == CacheSim::Outcome::kMiss) ++counters_.dram_accesses;
  return spec_.atomic_cycles;
}

void MemorySystem::flush_all() {
  for (auto& l1 : l1_) {
    const std::uint64_t dirty = l1.flush();
    counters_.l2_writes += dirty;
  }
  counters_.dram_accesses += l2_.flush();
}

}  // namespace ecl::gpusim
