#include "obs/json.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace ecl::obs {

void JsonWriter::write_escaped(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\b':
        os << "\\b";
        break;
      case '\f':
        os << "\\f";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\r':
        os << "\\r";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void JsonWriter::before_value() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // the key already emitted the comma for this pair
  }
  if (!has_element_.empty()) {
    if (has_element_.back()) os_ << ',';
    has_element_.back() = true;
  }
}

void JsonWriter::begin_object() {
  before_value();
  os_ << '{';
  has_element_.push_back(false);
}

void JsonWriter::end_object() {
  has_element_.pop_back();
  os_ << '}';
}

void JsonWriter::begin_array() {
  before_value();
  os_ << '[';
  has_element_.push_back(false);
}

void JsonWriter::end_array() {
  has_element_.pop_back();
  os_ << ']';
}

void JsonWriter::key(std::string_view k) {
  if (!has_element_.empty()) {
    if (has_element_.back()) os_ << ',';
    has_element_.back() = true;
  }
  write_escaped(os_, k);
  os_ << ':';
  pending_key_ = true;
}

void JsonWriter::value(std::string_view s) {
  before_value();
  write_escaped(os_, s);
}

void JsonWriter::value(double d) {
  before_value();
  if (!std::isfinite(d)) {  // JSON has no Infinity/NaN
    os_ << "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  os_ << buf;
}

void JsonWriter::value(std::uint64_t u) {
  before_value();
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, u);
  os_ << buf;
}

void JsonWriter::value(std::int64_t i) {
  before_value();
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, i);
  os_ << buf;
}

void JsonWriter::value(bool b) {
  before_value();
  os_ << (b ? "true" : "false");
}

void JsonWriter::null() {
  before_value();
  os_ << "null";
}

void JsonWriter::raw_value(std::string_view s) {
  before_value();
  os_ << s;
}

}  // namespace ecl::obs
