#include "obs/timeseries.h"

#include <algorithm>
#include <chrono>

namespace ecl::obs {

namespace {

std::uint64_t steady_now_ms() {
  static const auto epoch = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::milliseconds>(
                                        std::chrono::steady_clock::now() - epoch)
                                        .count());
}

}  // namespace

TimeSeries::TimeSeries(std::size_t capacity) : capacity_(std::max<std::size_t>(2, capacity)) {}

void TimeSeries::sample(const std::vector<MetricSnapshot>& metrics, std::uint64_t now_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  ++samples_;
  for (const auto& m : metrics) {
    Series& s = series_[m.name];
    s.kind = m.kind;
    Point p;
    p.t_ms = now_ms;
    p.count = m.count;
    p.value = m.value;
    p.sum = m.sum;
    p.max = m.max;
    if (m.kind == MetricSnapshot::Kind::kHistogram) {
      if (s.bounds.empty()) {
        s.bounds.reserve(m.buckets.size());
        for (const auto& [bound, unused] : m.buckets) s.bounds.push_back(bound);
      }
      p.bucket_counts.reserve(m.buckets.size());
      for (const auto& [unused, count] : m.buckets) p.bucket_counts.push_back(count);
    }
    s.points.push_back(std::move(p));
    if (s.points.size() > capacity_) s.points.pop_front();
  }
}

void TimeSeries::sample_now() { sample(registry().snapshot(), steady_now_ms()); }

WindowStats TimeSeries::window_of(const Series& s) {
  WindowStats w;
  w.kind = s.kind;
  if (s.points.empty()) return w;
  const Point& newest = s.points.back();
  w.last = newest.value;
  if (s.points.size() < 2) return w;
  const Point& oldest = s.points.front();
  w.valid = true;
  w.window_s = static_cast<double>(newest.t_ms - oldest.t_ms) / 1000.0;
  // A registry reset() between samples makes the cumulative values go
  // backwards; clamp the deltas to zero rather than wrapping.
  w.delta = newest.count >= oldest.count ? newest.count - oldest.count : 0;
  w.rate_per_s = w.window_s > 0.0 ? static_cast<double>(w.delta) / w.window_s : 0.0;
  if (s.kind == MetricSnapshot::Kind::kHistogram && w.delta > 0) {
    const std::uint64_t sum_delta =
        newest.sum >= oldest.sum ? newest.sum - oldest.sum : 0;
    w.avg = static_cast<double>(sum_delta) / static_cast<double>(w.delta);
    std::vector<std::uint64_t> diff(newest.bucket_counts.size(), 0);
    for (std::size_t i = 0; i < diff.size(); ++i) {
      const std::uint64_t then =
          i < oldest.bucket_counts.size() ? oldest.bucket_counts[i] : 0;
      diff[i] = newest.bucket_counts[i] >= then ? newest.bucket_counts[i] - then : 0;
    }
    // The lifetime max is the only max retained per point; it upper-bounds
    // the window's max, which keeps the estimates conservative (clamped to
    // a value that was really observed, just possibly before the window).
    w.p50 = percentile_from_buckets(s.bounds, diff, 0.50, newest.max);
    w.p95 = percentile_from_buckets(s.bounds, diff, 0.95, newest.max);
    w.p99 = percentile_from_buckets(s.bounds, diff, 0.99, newest.max);
  }
  return w;
}

std::vector<std::pair<std::string, WindowStats>> TimeSeries::window() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, WindowStats>> out;
  out.reserve(series_.size());
  for (const auto& [name, s] : series_) out.emplace_back(name, window_of(s));
  return out;
}

bool TimeSeries::lookup(std::string_view name, WindowStats& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = series_.find(name);
  if (it == series_.end()) return false;
  out = window_of(it->second);
  return true;
}

std::uint64_t TimeSeries::samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return samples_;
}

}  // namespace ecl::obs
