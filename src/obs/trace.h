// ecl::obs tracing — scoped spans emitted as Chrome trace_event JSON.
//
// The output loads directly into chrome://tracing or https://ui.perfetto.dev:
// a top-level object with a "traceEvents" array of complete ("ph":"X")
// events, one per span, each carrying wall-clock timestamp/duration in
// microseconds plus free-form args (for gpusim kernels: modeled time, cache
// hit rates, atomic counts, divergence-stall cycles).
//
// The tracer is a process-wide singleton that is OFF by default. When off, a
// Span costs one relaxed atomic load; when ECL_OBS_DISABLED is defined the
// ECL_OBS_SPAN macro compiles record sites out entirely (the classes keep a
// single flag-independent definition — see metrics.h for the rationale).
//
// Only complete events are emitted, so traces are balanced by construction:
// every span has a begin (ts) and an end (ts + dur), and RAII guarantees the
// end exists even on early returns.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ecl::obs {

/// One finished span, ready for serialization.
struct TraceEvent {
  std::string name;
  std::string category;
  double ts_us = 0.0;   // start, relative to tracer start
  double dur_us = 0.0;  // duration
  std::uint32_t tid = 0;
  // Pre-rendered (key, JSON literal) pairs, e.g. ("l1_hit_rate", "0.93").
  std::vector<std::pair<std::string, std::string>> args;
};

/// Process-wide trace collector. start() enables span recording; stop()
/// writes the JSON file (creating parent directories) and disables again.
class Tracer {
 public:
  static Tracer& instance();

  /// Begins collecting; spans created while enabled are buffered in memory.
  /// Returns false (and stays disabled) if `path` is empty.
  bool start(const std::string& path);

  /// Writes the buffered events to the path given to start() and disables
  /// collection. Returns false if the file could not be written.
  bool stop();

  /// Serializes the buffered events to `os` without disabling. Exposed for
  /// tests and in-memory consumers.
  void write(std::ostream& os) const;

  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Microseconds since the tracer epoch (process start).
  [[nodiscard]] static double now_us() noexcept;

  /// Appends one finished event (no-op when disabled).
  void record(TraceEvent ev);

  /// Number of buffered events.
  [[nodiscard]] std::size_t event_count() const;

  /// Drops all buffered events (does not change enabled state).
  void clear();

 private:
  Tracer() = default;

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::string path_;
  std::vector<TraceEvent> events_;
};

/// RAII span: records a complete trace event covering its lifetime. Inactive
/// (and nearly free) when the tracer is disabled at construction time.
class Span {
 public:
  explicit Span(std::string_view name, std::string_view category = "ecl");
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  [[nodiscard]] bool active() const noexcept { return active_; }

  /// Attaches an annotation to the span (shown under "args" in Perfetto).
  void arg(std::string_view key, double v);
  void arg(std::string_view key, std::uint64_t v);
  void arg(std::string_view key, std::int64_t v);
  void arg(std::string_view key, unsigned v) { arg(key, static_cast<std::uint64_t>(v)); }
  void arg(std::string_view key, int v) { arg(key, static_cast<std::int64_t>(v)); }
  void arg(std::string_view key, std::string_view s);

 private:
  bool active_ = false;
  double start_us_ = 0.0;
  TraceEvent event_;
};

/// Drop-in stand-in for Span when record sites are compiled out.
struct NullSpan {
  [[nodiscard]] static constexpr bool active() noexcept { return false; }
  template <typename K, typename V>
  void arg(K&&, V&&) const noexcept {}
};

}  // namespace ecl::obs

#if defined(ECL_OBS_DISABLED)
// The span variable keeps its name so `var.arg(...)` / `var.active()` still
// compile (as no-ops) in gated builds.
#define ECL_OBS_SPAN(var, ...) ::ecl::obs::NullSpan var
#else
#define ECL_OBS_SPAN(var, ...) ::ecl::obs::Span var(__VA_ARGS__)
#endif
