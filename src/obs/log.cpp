#include "obs/log.h"

#include <chrono>
#include <sstream>

#include "obs/json.h"

namespace ecl::obs {

RequestLog::~RequestLog() { close(); }

bool RequestLog::open(const std::string& path, std::uint64_t threshold_us) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  file_ = std::fopen(path.c_str(), "a");
  if (file_ == nullptr) {
    enabled_.store(false, std::memory_order_relaxed);
    return false;
  }
  threshold_us_.store(threshold_us, std::memory_order_relaxed);
  lines_.store(0, std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_relaxed);
  return true;
}

void RequestLog::close() {
  // Flip enabled first so new log() calls bail before touching the file.
  enabled_.store(false, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

bool RequestLog::log(const RequestLogRecord& rec) {
  if (!enabled()) return false;
  if (rec.total_us < threshold_us()) return false;
  const auto now_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                          std::chrono::system_clock::now().time_since_epoch())
                          .count();
  std::ostringstream line;
  JsonWriter w(line);
  w.begin_object();
  w.key("ts_ms");
  w.value(static_cast<std::uint64_t>(now_ms));
  w.key("request_id");
  w.value(rec.request_id);
  w.key("op");
  w.value(rec.op);
  w.key("status");
  w.value(rec.status);
  w.key("queue_depth");
  w.value(rec.queue_depth);
  w.key("total_us");
  w.value(rec.total_us);
  w.key("decode_us");
  w.value(rec.decode_us);
  w.key("queue_us");
  w.value(rec.queue_us);
  w.key("execute_us");
  w.value(rec.execute_us);
  w.key("encode_us");
  w.value(rec.encode_us);
  w.key("write_us");
  w.value(rec.write_us);
  w.end_object();
  line << '\n';
  const std::string s = line.str();
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return false;  // closed between the check and here
  std::fputs(s.c_str(), file_);
  std::fflush(file_);
  lines_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

}  // namespace ecl::obs
