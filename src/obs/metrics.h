// ecl::obs metrics — named counters, gauges, and fixed-bucket histograms.
//
// Design goals, in order:
//   1. Hot-path recording must be cheap enough to leave on in release builds:
//      counters are striped across cache-line-padded relaxed-atomic slots
//      (one stripe per thread, round-robin), so the OpenMP ports can count
//      CAS retries, hooks, and pointer-jump hops without a shared contended
//      cache line. Reads (value()/snapshot()) sum the stripes and are
//      allowed to be slow.
//   2. Everything compiles out: building with -DECL_OBS_DISABLED turns every
//      ECL_OBS_* record-site macro into `(void)0`. The classes themselves
//      keep a single, flag-independent definition (no ODR hazards when
//      instrumented and uninstrumented objects meet in one binary).
//   3. Metrics are identified by stable dotted names ("ecl.hook.cas_retries",
//      see docs/OBSERVABILITY.md for the naming scheme); the first lookup
//      registers, later lookups return the same instance, so record sites
//      can cache a reference in a function-local static.
//
// Snapshots are monotonic process-wide aggregates; callers that want
// per-run deltas reset() first (single-run tools) or diff two snapshots.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ecl::obs {

namespace detail {
/// Small dense id for the calling thread, assigned round-robin on first use;
/// used to pick a counter stripe and a trace tid.
std::size_t thread_index() noexcept;
}  // namespace detail

/// Monotonic counter. add() is wait-free and contention-free in the common
/// case (threads land on distinct cache lines); value() is O(stripes).
class Counter {
 public:
  static constexpr std::size_t kStripes = 16;  // power of two

  void add(std::uint64_t delta = 1) noexcept {
    slots_[detail::thread_index() & (kStripes - 1)].value.fetch_add(
        delta, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t sum = 0;
    for (const auto& s : slots_) sum += s.value.load(std::memory_order_relaxed);
    return sum;
  }

  void reset() noexcept {
    for (auto& s : slots_) s.value.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> value{0};
  };
  std::array<Slot, kStripes> slots_;
};

/// Last-written double value (thread counts, configured scales, ...).
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram of non-negative integer samples. Bucket i counts
/// samples <= bounds[i] (first matching bucket); one implicit overflow
/// bucket catches the rest. Tracks exact count/sum/max alongside the
/// buckets, so aggregate statistics (e.g. the paper's Table 4 average and
/// maximum path lengths) are not quantized by the bucket bounds.
class Histogram {
 public:
  explicit Histogram(std::vector<std::uint64_t> bounds);

  void record(std::uint64_t sample) noexcept {
    std::size_t i = 0;
    while (i < bounds_.size() && sample > bounds_[i]) ++i;
    buckets_[i].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(sample, std::memory_order_relaxed);
    std::uint64_t prev = max_.load(std::memory_order_relaxed);
    while (sample > prev &&
           !max_.compare_exchange_weak(prev, sample, std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t max() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double average() const noexcept {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
  }

  /// Estimated q-quantile (q in [0, 1]) of the recorded samples, linearly
  /// interpolated within the containing bucket and clamped to the exact
  /// observed max, so the estimate never exceeds a real sample. Edge cases
  /// (empty, single sample, all samples in the overflow bucket) are defined
  /// by percentile_from_buckets below, which this delegates to. With
  /// concurrent recorders the result is a point-in-time approximation.
  [[nodiscard]] double percentile(double q) const noexcept;

  /// Upper bounds including the implicit overflow bucket (UINT64_MAX last).
  [[nodiscard]] std::vector<std::uint64_t> bounds() const;
  /// Per-bucket sample counts, parallel to bounds().
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;

  void reset() noexcept;

  /// {1, 2, 4, ..., 2^(n-1)}: geometric bounds suited to path lengths and
  /// other long-tailed integer samples.
  [[nodiscard]] static std::vector<std::uint64_t> pow2_bounds(unsigned n);

 private:
  std::vector<std::uint64_t> bounds_;               // ascending
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

/// Estimated q-quantile over an explicit bucket array: `bounds` are the
/// ascending inclusive upper edges with the UINT64_MAX overflow sentinel
/// last (the shape Histogram::bounds() returns), `counts` the parallel
/// per-bucket sample counts. This is the one quantile implementation in the
/// repo — Histogram::percentile and the windowed time-series estimates both
/// delegate here, so the edge cases are defined once:
///
///   * no samples            -> 0.0 for every q (an empty histogram has no
///                              quantiles; 0 is the documented sentinel)
///   * q outside [0, 1]      -> clamped
///   * exactly one sample    -> that sample (the observed max) for every q
///   * samples only in the overflow bucket -> linear interpolation between
///     the largest finite bound and the observed max (the tightest correct
///     stand-in for the bucket's missing upper edge)
///   * every estimate is clamped to the observed max, so it never exceeds a
///     real sample
double percentile_from_buckets(const std::vector<std::uint64_t>& bounds,
                               const std::vector<std::uint64_t>& counts, double q,
                               std::uint64_t observed_max) noexcept;

/// One metric's state at snapshot time.
struct MetricSnapshot {
  enum class Kind { kCounter, kGauge, kHistogram };
  std::string name;
  Kind kind = Kind::kCounter;
  std::uint64_t count = 0;  // counter value, or histogram sample count
  double value = 0.0;       // gauge value, or histogram average
  std::uint64_t sum = 0;    // histogram only
  std::uint64_t max = 0;    // histogram only
  double p50 = 0.0;         // histogram only: estimated quantiles
  double p95 = 0.0;
  double p99 = 0.0;
  // (upper_bound, count) pairs; the final pair's bound is UINT64_MAX.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets;
};

/// Name -> metric map. Lookups take a mutex and may allocate; returned
/// references are stable for the registry's lifetime, so hot sites cache
/// them (the ECL_OBS_* macros below do this via a function-local static).
class Registry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `bounds` is only consulted on first registration of `name`.
  Histogram& histogram(std::string_view name, std::vector<std::uint64_t> bounds);

  /// All metrics, sorted by name.
  [[nodiscard]] std::vector<MetricSnapshot> snapshot() const;

  /// Zeroes every metric (registrations survive). For per-run reporting.
  void reset();

 private:
  struct Impl;
  Impl& impl() const;
};

/// The process-wide registry every record site and exporter uses.
Registry& registry();

}  // namespace ecl::obs

// ---------------------------------------------------------------------------
// Record-site macros. These — not the classes — are the compile-out boundary:
// with ECL_OBS_DISABLED they expand to nothing, so instrumented headers add
// zero code to uninstrumented builds while the class definitions stay
// identical everywhere.
#if defined(ECL_OBS_DISABLED)

#define ECL_OBS_COUNTER_ADD(name_literal, delta) ((void)0)
#define ECL_OBS_GAUGE_SET(name_literal, v) ((void)0)
// Evaluates (and discards) the sample so locals feeding it stay used, but
// never touches the registry; `bounds` is not evaluated at all.
#define ECL_OBS_HISTOGRAM_RECORD(name_literal, bounds, sample) ((void)(sample))

#else

#define ECL_OBS_COUNTER_ADD(name_literal, delta)                  \
  do {                                                            \
    static ::ecl::obs::Counter& ecl_obs_counter_ =                \
        ::ecl::obs::registry().counter(name_literal);             \
    ecl_obs_counter_.add(delta);                                  \
  } while (0)

#define ECL_OBS_GAUGE_SET(name_literal, v)                        \
  do {                                                            \
    static ::ecl::obs::Gauge& ecl_obs_gauge_ =                    \
        ::ecl::obs::registry().gauge(name_literal);               \
    ecl_obs_gauge_.set(v);                                        \
  } while (0)

// `bounds` is only evaluated on the first execution (registration wins the
// bounds; later lookups ignore them — same registry rule as elsewhere).
#define ECL_OBS_HISTOGRAM_RECORD(name_literal, bounds, sample)    \
  do {                                                            \
    static ::ecl::obs::Histogram& ecl_obs_hist_ =                 \
        ::ecl::obs::registry().histogram(name_literal, bounds);   \
    ecl_obs_hist_.record(sample);                                 \
  } while (0)

#endif  // ECL_OBS_DISABLED
