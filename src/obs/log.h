// ecl::obs request log — structured slow-request logging as JSON lines.
//
// The per-op latency histograms say *that* the tail got worse; this log says
// *which requests* sat in it and where their time went. The server front end
// fills one RequestLogRecord per served request (request id straight off the
// wire, per-phase latency breakdown) and hands it to log(), which drops it
// unless total_us meets the configured threshold and otherwise appends one
// self-contained JSON object per line:
//
//   {"ts_ms":1723111845123,"request_id":17,"op":"ingest","status":"ok",
//    "queue_depth":3,"total_us":5210,
//    "decode_us":12,"queue_us":0,"execute_us":5100,"encode_us":2,
//    "write_us":96}
//
// ts_ms is wall-clock Unix milliseconds (stamped at log time); request_id is
// the client-chosen id echoed in the response, so a client that saw a slow
// call can grep its id here and read the server-side breakdown. Lines are
// written under one mutex and flushed individually — a crash loses at most
// the line being written, and `tail -f` sees requests as they happen.
// queue_us is reserved for a queued front end (the thread-per-connection
// server executes immediately, so it logs 0).
//
// JSON-lines (one object per line, no enclosing array) so the file can be
// consumed incrementally by jq, Python, or a log shipper without parsing the
// whole thing.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>

namespace ecl::obs {

/// One served request's identity and latency breakdown.
struct RequestLogRecord {
  std::uint64_t request_id = 0;
  const char* op = "";      // protocol op name ("ping", "ingest", ...)
  const char* status = "";  // response status name ("ok", "shed", ...)
  std::uint64_t queue_depth = 0;  // ingest queue depth when served
  std::uint64_t total_us = 0;
  std::uint64_t decode_us = 0;
  std::uint64_t queue_us = 0;
  std::uint64_t execute_us = 0;
  std::uint64_t encode_us = 0;
  std::uint64_t write_us = 0;
};

/// Threshold-gated JSON-lines sink. Thread-safe; enabled() is one relaxed
/// load, so a disabled log costs record sites almost nothing.
class RequestLog {
 public:
  RequestLog() = default;
  ~RequestLog();

  RequestLog(const RequestLog&) = delete;
  RequestLog& operator=(const RequestLog&) = delete;

  /// Opens (appending) the sink. Requests with total_us >= threshold_us are
  /// logged; 0 logs every request. False if the file cannot be opened.
  [[nodiscard]] bool open(const std::string& path, std::uint64_t threshold_us);

  /// Flushes and closes; further log() calls are dropped.
  void close();

  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t threshold_us() const {
    return threshold_us_.load(std::memory_order_relaxed);
  }
  void set_threshold_us(std::uint64_t t) {
    threshold_us_.store(t, std::memory_order_relaxed);
  }

  /// Writes one line if the sink is open and rec.total_us meets the
  /// threshold. Returns true if a line was written.
  bool log(const RequestLogRecord& rec);

  /// Lines written since open().
  [[nodiscard]] std::uint64_t lines() const {
    return lines_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> threshold_us_{0};
  std::atomic<std::uint64_t> lines_{0};
  std::mutex mu_;
  std::FILE* file_ = nullptr;
};

}  // namespace ecl::obs
