// ecl::obs run reports — machine-readable JSON perf artifacts.
//
// A RunReport captures one benchmark invocation: per (graph, code) cell the
// *raw* per-repetition wall-clock times (the spread the median-only tables
// discard), plus a final metrics-registry snapshot and build/host metadata.
// bench_harness wires this to the --report=<file.json> flag, so every
// reproduction binary can emit a BENCH_*.json the repo's perf trajectory can
// be tracked (and CI-validated) from.
//
// Schema (schema_version 1):
//   {
//     "schema_version": 1,
//     "bench": "<binary name>",
//     "config": {"scale": 0.5, "reps": 3},
//     "metadata": {"compiler": "...", "build_type": "...", "hostname": "...",
//                  "hardware_threads": 8, "timestamp_utc": "..."},
//     "cells": [{"graph": "...", "code": "...",
//                "rep_ms": [..], "min_ms": .., "median_ms": .., "max_ms": ..}],
//     "metrics": [{"name": "...", "kind": "counter", "count": 123} |
//                 {"name": "...", "kind": "gauge", "value": 1.5} |
//                 {"name": "...", "kind": "histogram", "count": .., "sum": ..,
//                  "max": .., "average": .., "p50": .., "p95": .., "p99": ..,
//                  "buckets": [{"le": .., "count": ..}]}]
//   }
// See docs/OBSERVABILITY.md for the full field reference.
#pragma once

#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace ecl::obs {

struct ReportCell {
  std::string graph;
  std::string code;
  std::vector<double> rep_ms;  // raw per-repetition times, in run order
};

class RunReport {
 public:
  /// First non-empty name wins (benches may emit several tables).
  void set_bench_name(const std::string& name);
  void set_config(double scale, int reps);

  void add_cell(std::string graph, std::string code, std::vector<double> rep_ms);

  [[nodiscard]] std::size_t cell_count() const;
  void clear();

  /// Serializes the report (including the current metrics-registry snapshot
  /// and host metadata) to `os`.
  void write(std::ostream& os) const;

  /// write() to `path`, creating parent directories. Returns false if the
  /// file could not be written.
  bool write_file(const std::string& path) const;

 private:
  mutable std::mutex mu_;
  std::string bench_name_;
  double scale_ = 1.0;
  int reps_ = 0;
  std::vector<ReportCell> cells_;
};

/// The process-wide report instance the bench harness records into.
RunReport& run_report();

}  // namespace ecl::obs
