#include "obs/exporter.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

namespace ecl::obs {

namespace {

void append_number(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

void append_number(std::string& out, double v) {
  char buf[64];
  // %.10g round-trips every value these metrics produce (integer counts,
  // microsecond quantiles) without scientific-notation surprises for small
  // magnitudes; Prometheus parses either form.
  std::snprintf(buf, sizeof buf, "%.10g", v);
  out += buf;
}

void append_type(std::string& out, const std::string& name, const char* type) {
  out += "# TYPE ";
  out += name;
  out += ' ';
  out += type;
  out += '\n';
}

void append_gauge(std::string& out, const std::string& name, double v) {
  append_type(out, name, "gauge");
  out += name;
  out += ' ';
  append_number(out, v);
  out += '\n';
}

void set_socket_timeouts(int fd, int timeout_ms) {
  if (timeout_ms <= 0) return;
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

std::uint64_t mono_ms() {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::milliseconds>(
                                        std::chrono::steady_clock::now().time_since_epoch())
                                        .count());
}

}  // namespace

MetricsExporter::MetricsExporter(ExporterOptions opts) : opts_(std::move(opts)),
                                                         series_(opts_.window_samples) {}

MetricsExporter::~MetricsExporter() { stop(); }

void MetricsExporter::add_collector(Collector c) {
  collectors_.push_back(std::move(c));
}

std::string MetricsExporter::sanitize_name(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') out.insert(out.begin(), '_');
  return out;
}

bool MetricsExporter::start(std::string* err) {
  if (running_.load(std::memory_order_acquire)) return true;
  auto fail = [&](const char* what) {
    if (err != nullptr) {
      *err = what;
      *err += ": ";
      *err += std::strerror(errno);
    }
    if (listen_fd_ >= 0) ::close(listen_fd_);
    listen_fd_ = -1;
    for (int& p : wake_pipe_) {
      if (p >= 0) ::close(p);
      p = -1;
    }
    return false;
  };
  if (::pipe(wake_pipe_) != 0) return fail("pipe");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return fail("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(opts_.port));
  if (::inet_pton(AF_INET, opts_.host.c_str(), &addr.sin_addr) != 1) {
    errno = EINVAL;
    return fail("inet_pton");
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    return fail("bind");
  }
  if (::listen(listen_fd_, 16) != 0) return fail("listen");
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    port_ = static_cast<int>(ntohs(bound.sin_port));
  }
  // First sample before the thread starts: a scrape that races startup still
  // sees every already-registered metric (windows just aren't valid yet).
  series_.sample_now();
  stop_requested_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { serve_loop(); });
  return true;
}

void MetricsExporter::stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stop_requested_.store(true, std::memory_order_release);
  if (wake_pipe_[1] >= 0) {
    const char byte = 'x';
    (void)!::write(wake_pipe_[1], &byte, 1);
  }
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  listen_fd_ = -1;
  for (int& p : wake_pipe_) {
    if (p >= 0) ::close(p);
    p = -1;
  }
  running_.store(false, std::memory_order_release);
}

void MetricsExporter::serve_loop() {
  const int interval =
      opts_.sample_interval_ms > 0 ? opts_.sample_interval_ms : 1000;
  std::uint64_t next_sample_ms = mono_ms() + static_cast<std::uint64_t>(interval);
  while (!stop_requested_.load(std::memory_order_acquire)) {
    const std::uint64_t now = mono_ms();
    if (now >= next_sample_ms) {
      series_.sample_now();
      // Skip forward rather than bursting if a slow scrape blocked us past
      // several periods.
      while (next_sample_ms <= now) next_sample_ms += static_cast<std::uint64_t>(interval);
    }
    const int wait_ms =
        static_cast<int>(std::min<std::uint64_t>(next_sample_ms - now, 200));
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    const int ready = ::poll(fds, 2, wait_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;
    if ((fds[1].revents & POLLIN) != 0) break;  // stop() wake-up
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int client_fd = ::accept(listen_fd_, nullptr, nullptr);
    if (client_fd < 0) continue;
    set_socket_timeouts(client_fd, opts_.io_timeout_ms);
    handle_client(client_fd);
    ::close(client_fd);
  }
}

void MetricsExporter::handle_client(int fd) {
  // Read until the end of the request headers (or a hostile 8 KiB). Only the
  // request line matters; everything after it is discarded.
  std::string request;
  char buf[1024];
  while (request.find("\r\n\r\n") == std::string::npos && request.size() < 8192) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) return;  // timeout, error, or close before a full request
    request.append(buf, static_cast<std::size_t>(n));
    // Bare-LF clients (netcat tests) terminate after one line.
    if (request.find('\n') != std::string::npos &&
        request.compare(0, 4, "GET ") == 0 &&
        request.find("\n\n") != std::string::npos) {
      break;
    }
    if (request.find("\r\n\r\n") != std::string::npos) break;
  }
  const std::size_t line_end = request.find_first_of("\r\n");
  const std::string line =
      line_end == std::string::npos ? request : request.substr(0, line_end);
  std::string path;
  if (line.compare(0, 4, "GET ") == 0) {
    const std::size_t sp = line.find(' ', 4);
    path = line.substr(4, sp == std::string::npos ? std::string::npos : sp - 4);
  }
  std::string body;
  const char* status = "200 OK";
  if (path == "/metrics" || path == "/") {
    body = render();
    scrapes_.fetch_add(1, std::memory_order_relaxed);
  } else if (path.empty()) {
    status = "400 Bad Request";
    body = "bad request\n";
  } else {
    status = "404 Not Found";
    body = "not found; scrape /metrics\n";
  }
  std::string resp = "HTTP/1.0 ";
  resp += status;
  resp +=
      "\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
      "Content-Length: ";
  append_number(resp, static_cast<std::uint64_t>(body.size()));
  resp += "\r\nConnection: close\r\n\r\n";
  resp += body;
  std::size_t off = 0;
  while (off < resp.size()) {
    const ssize_t n = ::send(fd, resp.data() + off, resp.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return;
    off += static_cast<std::size_t>(n);
  }
}

std::string MetricsExporter::render() {
  std::string out;
  out.reserve(4096);
  // Collectors run first so their families can shadow registry metrics of
  // the same sanitized name: a collector samples live state at scrape time
  // (e.g. ecl_ccd's ecl_svc_epoch from Service::stats()), while a registry
  // gauge of the same name lags behind its last record site — emitting both
  // would be a duplicate family, which Prometheus rejects.
  std::string extra;
  for (const auto& collect : collectors_) collect(extra);
  std::vector<std::string> shadowed;
  for (std::size_t pos = extra.find("# TYPE "); pos != std::string::npos;
       pos = extra.find("# TYPE ", pos + 1)) {
    const std::size_t begin = pos + 7;
    const std::size_t end = extra.find(' ', begin);
    if (end != std::string::npos) shadowed.push_back(extra.substr(begin, end - begin));
  }
  const auto is_shadowed = [&](const std::string& name) {
    return std::find(shadowed.begin(), shadowed.end(), name) != shadowed.end();
  };
  const auto metrics = registry().snapshot();
  for (const auto& m : metrics) {
    const std::string name = sanitize_name(m.name);
    if (is_shadowed(name)) continue;
    switch (m.kind) {
      case MetricSnapshot::Kind::kCounter:
        append_type(out, name, "counter");
        out += name;
        out += ' ';
        append_number(out, m.count);
        out += '\n';
        break;
      case MetricSnapshot::Kind::kGauge:
        append_gauge(out, name, m.value);
        break;
      case MetricSnapshot::Kind::kHistogram: {
        append_type(out, name, "histogram");
        // The registry's buckets are disjoint; Prometheus buckets are
        // cumulative ("samples <= le"), so accumulate while emitting.
        std::uint64_t cumulative = 0;
        for (const auto& [bound, count] : m.buckets) {
          cumulative += count;
          out += name;
          out += "_bucket{le=\"";
          if (bound == ~std::uint64_t{0}) {
            out += "+Inf";
          } else {
            append_number(out, bound);
          }
          out += "\"} ";
          append_number(out, cumulative);
          out += '\n';
        }
        out += name;
        out += "_sum ";
        append_number(out, m.sum);
        out += '\n';
        out += name;
        out += "_count ";
        append_number(out, m.count);
        out += '\n';
        break;
      }
    }
  }
  // Windowed views: rates for counters, rate + quantiles for histograms.
  double window_s = 0.0;
  for (const auto& [raw_name, w] : series_.window()) {
    if (!w.valid) continue;
    window_s = std::max(window_s, w.window_s);
    const std::string name = sanitize_name(raw_name);
    if (is_shadowed(name)) continue;
    switch (w.kind) {
      case MetricSnapshot::Kind::kCounter:
        append_gauge(out, name + "_window_rate", w.rate_per_s);
        break;
      case MetricSnapshot::Kind::kGauge:
        break;  // a gauge's window view is its current value, already exported
      case MetricSnapshot::Kind::kHistogram:
        append_gauge(out, name + "_window_rate", w.rate_per_s);
        append_gauge(out, name + "_window_p50", w.p50);
        append_gauge(out, name + "_window_p95", w.p95);
        append_gauge(out, name + "_window_p99", w.p99);
        break;
    }
  }
  append_gauge(out, "ecl_exporter_window_seconds", window_s);
  append_type(out, "ecl_exporter_scrapes_total", "counter");
  out += "ecl_exporter_scrapes_total ";
  append_number(out, scrapes_.load(std::memory_order_relaxed));
  out += '\n';
  out += extra;
  return out;
}

}  // namespace ecl::obs
