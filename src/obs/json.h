// Minimal streaming JSON writer used by the observability layer (trace files
// and run reports). Dependency-free by design: the container bakes in no JSON
// library, and the two producers only ever *write* JSON, so a small
// comma-tracking emitter with correct string escaping is all that is needed.
//
// Usage:
//   JsonWriter w(os);
//   w.begin_object();
//   w.key("name"); w.value("ecl");
//   w.key("reps"); w.begin_array(); w.value(1.5); w.value(2.5); w.end_array();
//   w.end_object();
//
// Nesting is tracked internally; commas and quoting are inserted
// automatically. Numbers are emitted with enough precision to round-trip
// doubles through a standard JSON parser.
#pragma once

#include <cstdint>
#include <ostream>
#include <string_view>
#include <vector>

namespace ecl::obs {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Emits an object key (must be inside an object, before its value).
  void key(std::string_view k);

  void value(std::string_view s);
  void value(const char* s) { value(std::string_view(s)); }
  void value(double d);
  void value(std::uint64_t u);
  void value(std::int64_t i);
  void value(int i) { value(static_cast<std::int64_t>(i)); }
  void value(unsigned u) { value(static_cast<std::uint64_t>(u)); }
  void value(bool b);
  void null();

  /// Writes `s` verbatim (caller guarantees it is valid JSON), with the same
  /// comma handling as any other value. Used for pre-rendered fragments.
  void raw_value(std::string_view s);

  /// Escapes `s` per RFC 8259 into a double-quoted JSON string.
  static void write_escaped(std::ostream& os, std::string_view s);

 private:
  void before_value();

  std::ostream& os_;
  // One frame per open container: true once the first element was written
  // (i.e. the next element needs a leading comma).
  std::vector<bool> has_element_;
  bool pending_key_ = false;
};

}  // namespace ecl::obs
