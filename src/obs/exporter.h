// ecl::obs metrics exporter — a tiny HTTP endpoint serving Prometheus text
// exposition (format 0.0.4) of everything in the registry, plus windowed
// rates/quantiles from an embedded TimeSeries.
//
// One background thread does everything: it polls the listening socket,
// answers `GET /metrics` scrapes (HTTP/1.0, Connection: close — every
// scraper and `curl` speak that), and samples the registry into the time
// series on a fixed cadence between requests. There is no request pipeline
// to keep alive and no concurrency to manage: a scrape renders a snapshot,
// writes it, and closes.
//
// Rendering (docs/OBSERVABILITY.md "Live exporter"):
//   * dotted registry names are sanitized to the Prometheus charset
//     ("ecl.svc.op_us.ingest" -> "ecl_svc_op_us_ingest")
//   * counters/gauges map directly; histograms emit cumulative
//     `_bucket{le="..."}` lines plus `_sum` and `_count`
//   * once the time series holds two samples, each counter adds a
//     `<name>_window_rate` gauge and each histogram adds `_window_rate`,
//     `_window_p50/_p95/_p99` gauges covering the sliding window
//   * registered collector callbacks append extra families (the daemon
//     injects service/WAL/checkpoint stats this way, so the exporter layer
//     itself never depends on ecl::svc); a collector family shadows any
//     registry metric with the same sanitized name — the collector samples
//     live state at scrape time, and a duplicate family would be invalid
//     exposition
//
// This header lives in obs (not svc) deliberately: the service library
// links obs, so the exporter cannot use svc::net without a cycle — it
// carries its own ~100 lines of POSIX socket plumbing instead.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/timeseries.h"

namespace ecl::obs {

struct ExporterOptions {
  std::string host = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (see port() after start()).
  int port = 0;
  /// Registry sampling cadence for the windowed stats.
  int sample_interval_ms = 1000;
  /// Ring capacity per metric; 64 x 1 s ~= a one-minute window.
  std::size_t window_samples = 64;
  /// Per-scrape socket deadline: a stuck scraper is dropped, never waited on.
  int io_timeout_ms = 2000;
};

class MetricsExporter {
 public:
  /// Appends extra exposition text ("# TYPE ...\nname value\n" lines) to the
  /// scrape body. Called on the exporter thread; must be self-synchronized.
  using Collector = std::function<void(std::string&)>;

  explicit MetricsExporter(ExporterOptions opts = {});
  ~MetricsExporter();

  MetricsExporter(const MetricsExporter&) = delete;
  MetricsExporter& operator=(const MetricsExporter&) = delete;

  /// Registers a collector. Must be called before start().
  void add_collector(Collector c);

  /// Binds, listens, takes an immediate first sample, and spawns the serve
  /// thread. False (with the reason in *err) if the endpoint failed.
  [[nodiscard]] bool start(std::string* err = nullptr);

  /// Stops the thread and closes the socket. Idempotent.
  void stop();

  [[nodiscard]] bool running() const {
    return running_.load(std::memory_order_acquire);
  }

  /// Bound TCP port (meaningful after start()).
  [[nodiscard]] int port() const { return port_; }

  /// Scrapes served so far.
  [[nodiscard]] std::uint64_t scrapes() const {
    return scrapes_.load(std::memory_order_relaxed);
  }

  /// The sliding windows the serve loop maintains (for ecl_cc_top-style
  /// consumers living in the same process, and tests).
  [[nodiscard]] const TimeSeries& series() const { return series_; }

  /// Renders the full exposition body (registry + windows + collectors).
  /// What a scrape returns; exposed so tests need no socket.
  [[nodiscard]] std::string render();

  /// Maps a dotted metric name onto the Prometheus charset [a-zA-Z0-9_:],
  /// replacing every other byte with '_' (leading digits get a '_' prefix).
  [[nodiscard]] static std::string sanitize_name(std::string_view name);

 private:
  void serve_loop();
  void handle_client(int fd);

  const ExporterOptions opts_;
  TimeSeries series_;
  std::vector<Collector> collectors_;
  int listen_fd_ = -1;
  int port_ = 0;
  int wake_pipe_[2] = {-1, -1};
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::atomic<std::uint64_t> scrapes_{0};
};

}  // namespace ecl::obs
