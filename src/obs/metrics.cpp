#include "obs/metrics.h"

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>

namespace ecl::obs {

namespace detail {

std::size_t thread_index() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t index = next.fetch_add(1, std::memory_order_relaxed);
  return index;
}

}  // namespace detail

Histogram::Histogram(std::vector<std::uint64_t> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::bounds() const {
  std::vector<std::uint64_t> out = bounds_;
  out.push_back(~std::uint64_t{0});
  return out;
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out;
  out.reserve(buckets_.size());
  for (const auto& b : buckets_) out.push_back(b.load(std::memory_order_relaxed));
  return out;
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

double percentile_from_buckets(const std::vector<std::uint64_t>& bounds,
                               const std::vector<std::uint64_t>& counts, double q,
                               std::uint64_t observed_max) noexcept {
  std::uint64_t n = 0;
  for (std::size_t i = 0; i < counts.size() && i < bounds.size(); ++i) n += counts[i];
  if (n == 0) return 0.0;
  // A single sample has exactly one defensible quantile estimate: itself.
  // (Interpolating within its bucket would invent a value no one recorded.)
  if (n == 1) return static_cast<double>(observed_max);
  q = std::max(0.0, std::min(1.0, q));
  const double target = q * static_cast<double>(n);
  std::uint64_t cumulative = 0;
  std::uint64_t lower = 0;  // exclusive lower edge of the current bucket
  for (std::size_t i = 0; i < counts.size() && i < bounds.size(); ++i) {
    const std::uint64_t in_bucket = counts[i];
    // The overflow bucket (UINT64_MAX sentinel bound) has no finite upper
    // edge; the observed max is the tightest correct stand-in.
    const std::uint64_t upper = bounds[i] == ~std::uint64_t{0}
                                    ? std::max(observed_max, lower)
                                    : bounds[i];
    if (in_bucket > 0 && cumulative + in_bucket >= target) {
      const double fraction =
          (target - static_cast<double>(cumulative)) / static_cast<double>(in_bucket);
      const double estimate =
          static_cast<double>(lower) + fraction * static_cast<double>(upper - lower);
      return std::min(estimate, static_cast<double>(observed_max));
    }
    cumulative += in_bucket;
    lower = upper;
  }
  return static_cast<double>(observed_max);
}

double Histogram::percentile(double q) const noexcept {
  return percentile_from_buckets(bounds(), bucket_counts(), q, max());
}

std::vector<std::uint64_t> Histogram::pow2_bounds(unsigned n) {
  std::vector<std::uint64_t> bounds;
  bounds.reserve(n);
  for (unsigned i = 0; i < n && i < 64; ++i) {
    bounds.push_back(std::uint64_t{1} << i);
  }
  return bounds;
}

struct Registry::Impl {
  mutable std::mutex mu;
  // node-based maps: element addresses are stable across inserts.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms;
};

Registry::Impl& Registry::impl() const {
  static Impl instance;
  return instance;
}

Counter& Registry::counter(std::string_view name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto it = im.counters.find(name);
  if (it == im.counters.end()) {
    it = im.counters.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto it = im.gauges.find(name);
  if (it == im.gauges.end()) {
    it = im.gauges.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name, std::vector<std::uint64_t> bounds) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  auto it = im.histograms.find(name);
  if (it == im.histograms.end()) {
    it = im.histograms
             .emplace(std::string(name), std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return *it->second;
}

std::vector<MetricSnapshot> Registry::snapshot() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  std::vector<MetricSnapshot> out;
  out.reserve(im.counters.size() + im.gauges.size() + im.histograms.size());
  for (const auto& [name, c] : im.counters) {
    MetricSnapshot s;
    s.name = name;
    s.kind = MetricSnapshot::Kind::kCounter;
    s.count = c->value();
    out.push_back(std::move(s));
  }
  for (const auto& [name, g] : im.gauges) {
    MetricSnapshot s;
    s.name = name;
    s.kind = MetricSnapshot::Kind::kGauge;
    s.value = g->value();
    out.push_back(std::move(s));
  }
  for (const auto& [name, h] : im.histograms) {
    MetricSnapshot s;
    s.name = name;
    s.kind = MetricSnapshot::Kind::kHistogram;
    s.count = h->count();
    s.sum = h->sum();
    s.max = h->max();
    s.value = h->average();
    s.p50 = h->percentile(0.50);
    s.p95 = h->percentile(0.95);
    s.p99 = h->percentile(0.99);
    const auto bounds = h->bounds();
    const auto counts = h->bucket_counts();
    s.buckets.reserve(bounds.size());
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      s.buckets.emplace_back(bounds[i], counts[i]);
    }
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) { return a.name < b.name; });
  return out;
}

void Registry::reset() {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  for (auto& [name, c] : im.counters) c->reset();
  for (auto& [name, g] : im.gauges) g->reset();
  for (auto& [name, h] : im.histograms) h->reset();
}

Registry& registry() {
  static Registry instance;
  return instance;
}

}  // namespace ecl::obs
