#include "obs/trace.h"

#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "obs/json.h"
#include "obs/metrics.h"

namespace ecl::obs {

namespace {

std::chrono::steady_clock::time_point tracer_epoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

std::string render_number(double v) {
  char buf[32];
  if (std::isfinite(v)) {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  } else {
    std::snprintf(buf, sizeof(buf), "null");
  }
  return buf;
}

}  // namespace

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

double Tracer::now_us() noexcept {
  return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() -
                                                   tracer_epoch())
      .count();
}

bool Tracer::start(const std::string& path) {
  if (path.empty()) return false;
  std::lock_guard<std::mutex> lock(mu_);
  path_ = path;
  events_.clear();
  enabled_.store(true, std::memory_order_relaxed);
  return true;
}

void Tracer::record(TraceEvent ev) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(ev));
}

std::size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
}

void Tracer::write(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonWriter w(os);
  w.begin_object();
  w.key("displayTimeUnit");
  w.value("ms");
  w.key("otherData");
  w.begin_object();
  w.key("tool");
  w.value("ecl::obs");
  w.end_object();
  w.key("traceEvents");
  w.begin_array();
  for (const auto& ev : events_) {
    w.begin_object();
    w.key("name");
    w.value(ev.name);
    w.key("cat");
    w.value(ev.category);
    w.key("ph");
    w.value("X");
    w.key("ts");
    w.value(ev.ts_us);
    w.key("dur");
    w.value(ev.dur_us);
    w.key("pid");
    w.value(std::uint64_t{1});
    w.key("tid");
    w.value(static_cast<std::uint64_t>(ev.tid));
    if (!ev.args.empty()) {
      w.key("args");
      w.begin_object();
      for (const auto& [key, json] : ev.args) {
        w.key(key);
        w.raw_value(json);
      }
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << '\n';
}

bool Tracer::stop() {
  enabled_.store(false, std::memory_order_relaxed);
  std::string path;
  {
    std::lock_guard<std::mutex> lock(mu_);
    path = path_;
  }
  if (path.empty()) return false;
  std::error_code ec;
  const auto parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent, ec);
  std::ofstream os(path);
  if (!os) return false;
  write(os);
  {
    std::lock_guard<std::mutex> lock(mu_);
    events_.clear();
    path_.clear();
  }
  return os.good();
}

Span::Span(std::string_view name, std::string_view category) {
  Tracer& tracer = Tracer::instance();
  if (!tracer.enabled()) return;
  active_ = true;
  start_us_ = Tracer::now_us();
  event_.name.assign(name);
  event_.category.assign(category);
  event_.tid = static_cast<std::uint32_t>(detail::thread_index());
}

Span::~Span() {
  if (!active_) return;
  event_.ts_us = start_us_;
  event_.dur_us = Tracer::now_us() - start_us_;
  Tracer::instance().record(std::move(event_));
}

void Span::arg(std::string_view key, double v) {
  if (!active_) return;
  event_.args.emplace_back(std::string(key), render_number(v));
}

void Span::arg(std::string_view key, std::uint64_t v) {
  if (!active_) return;
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  event_.args.emplace_back(std::string(key), buf);
}

void Span::arg(std::string_view key, std::int64_t v) {
  if (!active_) return;
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  event_.args.emplace_back(std::string(key), buf);
}

void Span::arg(std::string_view key, std::string_view s) {
  if (!active_) return;
  std::ostringstream os;
  JsonWriter::write_escaped(os, s);
  event_.args.emplace_back(std::string(key), os.str());
}

}  // namespace ecl::obs
