// ecl::obs time series — bounded sliding windows over registry snapshots.
//
// The registry's counters and histograms are monotonic process-lifetime
// aggregates: good for post-mortem reports, useless for "what is the p99
// *right now*". A TimeSeries fixes that by sampling the registry on a fixed
// cadence into per-metric ring buffers and answering windowed questions by
// differencing the newest and oldest retained sample:
//
//   counters    -> delta and rate (events/s) over the window
//   gauges      -> latest value
//   histograms  -> sample count, average, and p50/p95/p99 of only the
//                  samples recorded inside the window (cumulative bucket
//                  arrays subtract cleanly, then the shared
//                  percentile_from_buckets estimator runs on the diff)
//
// The default 64 samples at the exporter's 1 s cadence give a ~1 minute
// window. Memory is bounded: capacity points per metric, each point keeping
// only the cumulative bucket array (no raw samples).
//
// Thread-safety: sample() and the read accessors take one internal mutex;
// the expected topology is a single sampler thread (the exporter's serve
// loop) plus occasional readers (scrape rendering, ecl_cc_top, tests).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

namespace ecl::obs {

/// One metric's windowed view. `valid` is false until the window holds at
/// least two samples (a delta needs two endpoints); counter/histogram
/// fields are zero for gauges and vice versa.
struct WindowStats {
  MetricSnapshot::Kind kind = MetricSnapshot::Kind::kCounter;
  bool valid = false;
  double window_s = 0.0;       // time spanned by the retained samples
  std::uint64_t delta = 0;     // counter increase / histogram samples in window
  double rate_per_s = 0.0;     // delta / window_s
  double last = 0.0;           // gauge: newest sampled value
  double avg = 0.0;            // histogram: mean of the window's samples
  double p50 = 0.0;            // histogram: windowed quantile estimates
  double p95 = 0.0;
  double p99 = 0.0;
};

class TimeSeries {
 public:
  /// Retains up to `capacity` samples per metric (>= 2 to ever be valid).
  explicit TimeSeries(std::size_t capacity = 64);

  /// Folds one registry snapshot into the rings. `now_ms` is the caller's
  /// monotonic clock; samples must be fed in non-decreasing time order.
  void sample(const std::vector<MetricSnapshot>& metrics, std::uint64_t now_ms);

  /// sample() with registry().snapshot() at the process steady clock.
  void sample_now();

  /// Windowed stats for every tracked metric, sorted by name.
  [[nodiscard]] std::vector<std::pair<std::string, WindowStats>> window() const;

  /// Windowed stats for one metric. False if it was never sampled.
  [[nodiscard]] bool lookup(std::string_view name, WindowStats& out) const;

  /// Total sample() calls folded in so far.
  [[nodiscard]] std::uint64_t samples() const;

 private:
  struct Point {
    std::uint64_t t_ms = 0;
    std::uint64_t count = 0;  // counter value / histogram sample count
    double value = 0.0;       // gauge value
    std::uint64_t sum = 0;    // histogram running sum
    std::uint64_t max = 0;    // histogram observed max
    std::vector<std::uint64_t> bucket_counts;  // cumulative, histograms only
  };
  struct Series {
    MetricSnapshot::Kind kind = MetricSnapshot::Kind::kCounter;
    std::vector<std::uint64_t> bounds;  // histogram bounds incl. sentinel
    std::deque<Point> points;           // oldest first, size <= capacity
  };

  static WindowStats window_of(const Series& s);

  mutable std::mutex mu_;
  const std::size_t capacity_;
  std::uint64_t samples_ = 0;
  std::map<std::string, Series, std::less<>> series_;
};

}  // namespace ecl::obs
