#include "obs/report.h"

#include <algorithm>
#include <chrono>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "obs/json.h"
#include "obs/metrics.h"

namespace ecl::obs {

namespace {

std::string utc_timestamp() {
  const std::time_t now =
      std::chrono::system_clock::to_time_t(std::chrono::system_clock::now());
  std::tm tm{};
#if defined(_WIN32)
  gmtime_s(&tm, &now);
#else
  gmtime_r(&now, &tm);
#endif
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

std::string host_name() {
#if defined(__unix__) || defined(__APPLE__)
  char buf[256] = {};
  if (gethostname(buf, sizeof(buf) - 1) == 0 && buf[0] != '\0') return buf;
#endif
  return "unknown";
}

const char* compiler_version() {
#if defined(__VERSION__)
  return __VERSION__;
#else
  return "unknown";
#endif
}

const char* build_type() {
#if defined(NDEBUG)
  return "release";
#else
  return "debug";
#endif
}

double sorted_stat(std::vector<double> xs, double which) {
  // which: 0 = min, 0.5 = median, 1 = max — enough for the report fields.
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  if (which <= 0.0) return xs.front();
  if (which >= 1.0) return xs.back();
  const std::size_t n = xs.size();
  return n % 2 == 1 ? xs[n / 2] : 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

void write_metrics(JsonWriter& w) {
  w.begin_array();
  for (const auto& m : registry().snapshot()) {
    w.begin_object();
    w.key("name");
    w.value(m.name);
    switch (m.kind) {
      case MetricSnapshot::Kind::kCounter:
        w.key("kind");
        w.value("counter");
        w.key("count");
        w.value(m.count);
        break;
      case MetricSnapshot::Kind::kGauge:
        w.key("kind");
        w.value("gauge");
        w.key("value");
        w.value(m.value);
        break;
      case MetricSnapshot::Kind::kHistogram:
        w.key("kind");
        w.value("histogram");
        w.key("count");
        w.value(m.count);
        w.key("sum");
        w.value(m.sum);
        w.key("max");
        w.value(m.max);
        w.key("average");
        w.value(m.value);
        w.key("p50");
        w.value(m.p50);
        w.key("p95");
        w.value(m.p95);
        w.key("p99");
        w.value(m.p99);
        w.key("buckets");
        w.begin_array();
        for (const auto& [le, count] : m.buckets) {
          w.begin_object();
          w.key("le");
          w.value(le);
          w.key("count");
          w.value(count);
          w.end_object();
        }
        w.end_array();
        break;
    }
    w.end_object();
  }
  w.end_array();
}

}  // namespace

void RunReport::set_bench_name(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (bench_name_.empty()) bench_name_ = name;
}

void RunReport::set_config(double scale, int reps) {
  std::lock_guard<std::mutex> lock(mu_);
  scale_ = scale;
  reps_ = reps;
}

void RunReport::add_cell(std::string graph, std::string code, std::vector<double> rep_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  cells_.push_back({std::move(graph), std::move(code), std::move(rep_ms)});
}

std::size_t RunReport::cell_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cells_.size();
}

void RunReport::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  bench_name_.clear();
  scale_ = 1.0;
  reps_ = 0;
  cells_.clear();
}

void RunReport::write(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonWriter w(os);
  w.begin_object();
  w.key("schema_version");
  w.value(std::uint64_t{1});
  w.key("bench");
  w.value(bench_name_);
  w.key("config");
  w.begin_object();
  w.key("scale");
  w.value(scale_);
  w.key("reps");
  w.value(reps_);
  w.end_object();
  w.key("metadata");
  w.begin_object();
  w.key("compiler");
  w.value(compiler_version());
  w.key("build_type");
  w.value(build_type());
  w.key("hostname");
  w.value(host_name());
  w.key("hardware_threads");
  w.value(static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
  w.key("timestamp_utc");
  w.value(utc_timestamp());
  w.key("obs_record_sites");
#if defined(ECL_OBS_DISABLED)
  w.value("disabled");
#else
  w.value("enabled");
#endif
  w.end_object();
  w.key("cells");
  w.begin_array();
  for (const auto& cell : cells_) {
    w.begin_object();
    w.key("graph");
    w.value(cell.graph);
    w.key("code");
    w.value(cell.code);
    w.key("rep_ms");
    w.begin_array();
    for (const double ms : cell.rep_ms) w.value(ms);
    w.end_array();
    w.key("min_ms");
    w.value(sorted_stat(cell.rep_ms, 0.0));
    w.key("median_ms");
    w.value(sorted_stat(cell.rep_ms, 0.5));
    w.key("max_ms");
    w.value(sorted_stat(cell.rep_ms, 1.0));
    w.end_object();
  }
  w.end_array();
  w.key("metrics");
  write_metrics(w);
  w.end_object();
  os << '\n';
}

bool RunReport::write_file(const std::string& path) const {
  if (path.empty()) return false;
  std::error_code ec;
  const auto parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent, ec);
  std::ofstream os(path);
  if (!os) return false;
  write(os);
  return os.good();
}

RunReport& run_report() {
  static RunReport report;
  return report;
}

}  // namespace ecl::obs
