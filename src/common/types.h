// Fundamental integer types shared by every module.
#pragma once

#include <cstdint>

namespace ecl {

/// Vertex identifier. 32 bits suffice for the graph scales this library
/// targets (< 4.29e9 vertices) and halve the memory traffic of the parent
/// array, which dominates the runtime of union-find based CC.
using vertex_t = std::uint32_t;

/// Edge index into a CSR adjacency array. 64 bits so that graphs with more
/// than 2^32 directed edges (e.g. uk-2002 at full scale) remain addressable.
using edge_t = std::uint64_t;

/// Sentinel for "no vertex".
inline constexpr vertex_t kInvalidVertex = static_cast<vertex_t>(-1);

}  // namespace ecl
