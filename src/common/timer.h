// Wall-clock timing utilities used by benchmarks and the harness.
#pragma once

#include <chrono>

namespace ecl {

/// Monotonic wall-clock stopwatch with millisecond/microsecond readouts.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { start_ = clock::now(); }

  /// Elapsed time in seconds since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

  /// Elapsed time in microseconds.
  [[nodiscard]] double micros() const { return seconds() * 1e6; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace ecl
