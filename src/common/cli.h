// Minimal command-line flag parsing for examples and benchmark binaries.
//
// Supports bare "--flag" switches, "--key=value" pairs, and positional
// arguments. Unknown flags are reported so typos do not silently fall back
// to defaults.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ecl {

class CliArgs {
 public:
  /// Parses argv. Does not throw; malformed input becomes positional args.
  CliArgs(int argc, const char* const* argv);

  /// True if "--name" (with or without a value) was supplied.
  [[nodiscard]] bool has(std::string_view name) const;

  /// String value of "--name", or `fallback` if absent.
  [[nodiscard]] std::string get(std::string_view name, std::string fallback) const;

  /// Integer value of "--name", or `fallback` if absent/non-numeric.
  [[nodiscard]] std::int64_t get_int(std::string_view name, std::int64_t fallback) const;

  /// Floating-point value of "--name", or `fallback` if absent/non-numeric.
  [[nodiscard]] double get_double(std::string_view name, double fallback) const;

  /// Positional (non-flag) arguments in order.
  [[nodiscard]] const std::vector<std::string>& positional() const { return positional_; }

  /// Flags that were supplied but never queried through has/get*. Call after
  /// all lookups to warn about typos.
  [[nodiscard]] std::vector<std::string> unused() const;

 private:
  std::map<std::string, std::string, std::less<>> flags_;
  mutable std::map<std::string, bool, std::less<>> used_;
  std::vector<std::string> positional_;
};

}  // namespace ecl
