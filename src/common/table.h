// A small result-table builder that renders the paper-style tables
// (markdown for the console, CSV for post-processing).
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace ecl {

/// Column-oriented table of strings with a caption. Cells are formatted by
/// the caller (so runtimes, ratios and counts keep their intended precision)
/// and rendered aligned.
class Table {
 public:
  explicit Table(std::string caption) : caption_(std::move(caption)) {}

  /// Sets the header row. Must be called before add_row.
  void set_header(std::vector<std::string> header);

  /// Appends a data row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Number of data rows.
  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  [[nodiscard]] const std::string& caption() const { return caption_; }

  /// Renders an aligned markdown table (with caption) to `os`.
  void write_markdown(std::ostream& os) const;

  /// Renders RFC-4180-ish CSV (no caption) to `os`.
  void write_csv(std::ostream& os) const;

  /// Writes CSV to `path`; returns false if the file cannot be opened.
  bool save_csv(const std::string& path) const;

  // --- cell formatting helpers -------------------------------------------

  /// Fixed-precision decimal, e.g. fmt(1.8349, 2) -> "1.83".
  static std::string fmt(double value, int precision);

  /// Thousands-separated integer, e.g. "4,886,816" (paper Table 2 style).
  static std::string fmt_count(std::uint64_t value);

 private:
  std::string caption_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ecl
