// Small, fast, deterministic random number generators.
//
// Graph generation must be reproducible across runs and platforms, so we
// avoid std::mt19937 (whose distributions are not portable) and implement
// splitmix64 for seeding and xoshiro256** as the workhorse generator,
// together with portable integer-range and real distributions.
#pragma once

#include <array>
#include <cstdint>

namespace ecl {

/// splitmix64: used to expand a single 64-bit seed into generator state.
/// Reference: Sebastiano Vigna, public domain.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast general-purpose 64-bit PRNG with 2^256-1 period.
/// Reference: Blackman & Vigna, public domain.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed) : state_{} {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  constexpr result_type operator()() { return next(); }

  constexpr std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Uses Lemire's multiply-shift reduction;
  /// the tiny modulo bias is irrelevant for graph generation and the method
  /// is fully portable.
  constexpr std::uint64_t bounded(std::uint64_t bound) {
    const auto wide =
        static_cast<unsigned __int128>(next()) * static_cast<unsigned __int128>(bound);
    return static_cast<std::uint64_t>(wide >> 64);
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_;
};

}  // namespace ecl
