#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace ecl {

double median(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  std::vector<double> v(xs.begin(), xs.end());
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid), v.end());
  double hi = v[mid];
  if (v.size() % 2 == 1) return hi;
  const double lo = *std::max_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lo + hi);
}

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double geometric_mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  for (double x : xs) log_sum += std::log(x);
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - m) * (x - m);
  return std::sqrt(ss / static_cast<double>(xs.size()));
}

double minimum(std::span<const double> xs) {
  return xs.empty() ? 0.0 : *std::min_element(xs.begin(), xs.end());
}

double maximum(std::span<const double> xs) {
  return xs.empty() ? 0.0 : *std::max_element(xs.begin(), xs.end());
}

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  if (v.size() == 1) return v.front();
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double rank = clamped / 100.0 * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return v[lo] + frac * (v[hi] - v[lo]);
}

}  // namespace ecl
