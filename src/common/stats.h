// Summary statistics used by the benchmark harness (median-of-3 runtimes,
// geometric means of normalized ratios, etc.).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace ecl {

/// Median of a sample (average of the two middle elements for even sizes).
/// Returns 0 for an empty sample.
[[nodiscard]] double median(std::span<const double> xs);

/// Arithmetic mean; 0 for an empty sample.
[[nodiscard]] double mean(std::span<const double> xs);

/// Geometric mean; 0 for an empty sample. All inputs must be > 0.
[[nodiscard]] double geometric_mean(std::span<const double> xs);

/// Population standard deviation; 0 for fewer than two samples.
[[nodiscard]] double stddev(std::span<const double> xs);

/// Smallest element; 0 for an empty sample.
[[nodiscard]] double minimum(std::span<const double> xs);

/// Largest element; 0 for an empty sample.
[[nodiscard]] double maximum(std::span<const double> xs);

/// p-th percentile (0..100) by linear interpolation; 0 for an empty sample.
[[nodiscard]] double percentile(std::span<const double> xs, double p);

/// Runs `fn` `repetitions` times, timing each run, and returns the median
/// elapsed milliseconds — the measurement protocol of the paper (§4:
/// "We repeated each experiment three times and report the median").
template <typename Fn>
[[nodiscard]] double median_runtime_ms(Fn&& fn, int repetitions = 3);

}  // namespace ecl

#include "common/timer.h"

namespace ecl {

template <typename Fn>
double median_runtime_ms(Fn&& fn, int repetitions) {
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(repetitions));
  for (int r = 0; r < repetitions; ++r) {
    Timer t;
    fn();
    times.push_back(t.millis());
  }
  return median(times);
}

}  // namespace ecl
