#include "common/table.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <fstream>
#include <ostream>
#include <sstream>

namespace ecl {

void Table::set_header(std::vector<std::string> header) {
  assert(rows_.empty() && "set_header must precede add_row");
  header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> row) {
  assert(row.size() == header_.size() && "row arity must match header");
  rows_.push_back(std::move(row));
}

void Table::write_markdown(std::ostream& os) const {
  os << "### " << caption_ << "\n\n";
  if (header_.empty()) return;

  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto emit_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c] << std::string(widths[c] - row[c].size(), ' ') << " |";
    }
    os << '\n';
  };

  emit_row(header_);
  os << '|';
  for (std::size_t c = 0; c < header_.size(); ++c)
    os << std::string(widths[c] + 2, '-') << '|';
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
  os << '\n';
}

namespace {

void write_csv_field(std::ostream& os, const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) {
    os << field;
    return;
  }
  os << '"';
  for (char ch : field) {
    if (ch == '"') os << '"';
    os << ch;
  }
  os << '"';
}

}  // namespace

void Table::write_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      write_csv_field(os, row[c]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

bool Table::save_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  write_csv(out);
  return static_cast<bool>(out);
}

std::string Table::fmt(double value, int precision) {
  std::ostringstream ss;
  ss.setf(std::ios::fixed);
  ss.precision(precision);
  ss << value;
  return ss.str();
}

std::string Table::fmt_count(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t lead = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i + 3 - lead) % 3 == 0) out += ',';
    out += digits[i];
  }
  return out;
}

}  // namespace ecl
