#include "common/cli.h"

#include <charconv>
#include <cstdlib>

namespace ecl {

CliArgs::CliArgs(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (!arg.starts_with("--")) {
      positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    if (const auto eq = arg.find('='); eq != std::string_view::npos) {
      flags_.emplace(std::string(arg.substr(0, eq)), std::string(arg.substr(eq + 1)));
    } else {
      // Bare flag. Values must use the unambiguous "--key=value" form so
      // that "--verbose positional" does not swallow the positional.
      flags_.emplace(std::string(arg), std::string());
    }
  }
}

bool CliArgs::has(std::string_view name) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return false;
  used_[it->first] = true;
  return true;
}

std::string CliArgs::get(std::string_view name, std::string fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end() || it->second.empty()) return fallback;
  used_[it->first] = true;
  return it->second;
}

std::int64_t CliArgs::get_int(std::string_view name, std::int64_t fallback) const {
  const std::string value = get(name, "");
  if (value.empty()) return fallback;
  std::int64_t out = fallback;
  const auto [ptr, ec] = std::from_chars(value.data(), value.data() + value.size(), out);
  return (ec == std::errc() && ptr == value.data() + value.size()) ? out : fallback;
}

double CliArgs::get_double(std::string_view name, double fallback) const {
  const std::string value = get(name, "");
  if (value.empty()) return fallback;
  char* end = nullptr;
  const double out = std::strtod(value.c_str(), &end);
  return (end != nullptr && *end == '\0') ? out : fallback;
}

std::vector<std::string> CliArgs::unused() const {
  std::vector<std::string> out;
  for (const auto& [key, _] : flags_) {
    if (const auto it = used_.find(key); it == used_.end() || !it->second) out.push_back(key);
  }
  return out;
}

}  // namespace ecl
