// Graph format converter — the equivalent of the paper's "graph converters"
// (§4: "we changed the code that reads in the input graph or wrote graph
// converters such that all programs could be run with the same inputs").
//
//   $ graph_convert <input> <output.eclg>       # any format -> ECL binary
//   $ graph_convert <input> <output> --edges    # any format -> edge list
//   $ graph_convert --gen=<suite name> <output.eclg> [--scale=F]
#include <cstdio>
#include <fstream>

#include "common/cli.h"
#include "graph/io.h"
#include "graph/stats.h"
#include "graph/suite.h"

int main(int argc, char** argv) {
  using namespace ecl;
  CliArgs args(argc, argv);
  const std::string gen = args.get("gen", "");
  const std::size_t needed_positional = gen.empty() ? 2 : 1;
  if (args.positional().size() != needed_positional) {
    std::fprintf(stderr,
                 "usage: graph_convert <input> <output.eclg> [--edges]\n"
                 "       graph_convert --gen=<suite name> <output.eclg> [--scale=F]\n");
    return 2;
  }

  Graph g;
  std::string output;
  try {
    if (!gen.empty()) {
      g = make_suite_graph(gen, args.get_double("scale", 1.0));
      output = args.positional()[0];
    } else {
      g = load_auto(args.positional()[0]);
      output = args.positional()[1];
    }

    if (args.has("edges")) {
      std::ofstream out(output);
      if (!out) throw std::runtime_error("cannot write " + output);
      out << "# " << g.num_vertices() << " vertices, " << g.num_edges()
          << " directed edges\n";
      for (vertex_t v = 0; v < g.num_vertices(); ++v) {
        for (const vertex_t u : g.neighbors(v)) {
          if (u <= v) out << v << ' ' << u << '\n';
        }
      }
    } else {
      save_binary(g, output);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  const auto s = compute_stats(g, output);
  std::printf("wrote %s: %u vertices, %llu directed edges, %u components\n",
              output.c_str(), s.num_vertices,
              static_cast<unsigned long long>(s.num_edges), s.num_components);
  return 0;
}
