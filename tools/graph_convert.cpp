// Graph format converter — the equivalent of the paper's "graph converters"
// (§4: "we changed the code that reads in the input graph or wrote graph
// converters such that all programs could be run with the same inputs").
//
//   $ graph_convert <input> <output.eclg>           # output format from
//   $ graph_convert <input> <output.gr>             # the file extension
//   $ graph_convert <input> <out> --format=mtx      # or forced explicitly
//   $ graph_convert <input> <output> --edges        # alias for --format=edges
//   $ graph_convert --gen=<suite name> <output.eclg> [--scale=F]
//
// Formats: eclg (binary CSR), edges (SNAP edge list), gr (DIMACS), mtx
// (MatrixMarket). Without --format, the output extension decides (unknown
// extensions -> edge list).
#include <cstdio>

#include "common/cli.h"
#include "graph/io.h"
#include "graph/stats.h"
#include "graph/suite.h"

int main(int argc, char** argv) {
  using namespace ecl;
  CliArgs args(argc, argv);
  const std::string gen = args.get("gen", "");
  std::string format = args.get("format", "");
  if (args.has("edges")) format = "edges";  // historical spelling
  const std::size_t needed_positional = gen.empty() ? 2 : 1;
  if (args.positional().size() != needed_positional) {
    std::fprintf(stderr,
                 "usage: graph_convert <input> <output> [--format=eclg|edges|gr|mtx]\n"
                 "       graph_convert --gen=<suite name> <output> [--scale=F]\n");
    return 2;
  }

  Graph g;
  std::string output;
  try {
    if (!gen.empty()) {
      g = make_suite_graph(gen, args.get_double("scale", 1.0));
      output = args.positional()[0];
    } else {
      g = load_auto(args.positional()[0]);
      output = args.positional()[1];
    }

    if (format.empty()) {
      save_auto(g, output);
    } else if (format == "eclg") {
      save_binary(g, output);
    } else if (format == "edges") {
      save_edge_list(g, output);
    } else if (format == "gr") {
      save_dimacs(g, output);
    } else if (format == "mtx") {
      save_matrix_market(g, output);
    } else {
      std::fprintf(stderr, "error: unknown --format=%s\n", format.c_str());
      return 2;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  const auto s = compute_stats(g, output);
  std::printf("wrote %s: %u vertices, %llu directed edges, %u components\n",
              output.c_str(), s.num_vertices,
              static_cast<unsigned long long>(s.num_edges), s.num_components);
  return 0;
}
