// ecl_cc_client — command-line client for a running ecl_ccd daemon.
//
//   $ ecl_cc_client --unix=/tmp/ecl.sock ping
//   $ ecl_cc_client --port=4280 connected 17 42
//   $ ecl_cc_client --port=4280 component 17 --fresh
//   $ ecl_cc_client --port=4280 count
//   $ ecl_cc_client --port=4280 ingest 1 2 2 3 3 4
//   $ ecl_cc_client --port=4280 ingest-file edges.txt
//   $ ecl_cc_client --port=4280 stats
//   $ ecl_cc_client --port=4280 shutdown
//
// Endpoint flags: --unix=PATH, or --host=A (default 127.0.0.1) --port=P.
// Query flags: --fresh reads the live union-find structure instead of the
// last compacted snapshot (fresher, but labels are not canonical).
// Ingest flags: --batch=N splits file ingest into batches of N edges
// (default 4096).
// Robustness flags (all ops): --retries=N caps retry attempts for shed or
// transport-failed requests (default 3, exponential backoff with jitter —
// see docs/ROBUSTNESS.md), --op-timeout-ms=N bounds each attempt's socket
// I/O (default 10000), --connect-timeout-ms=N bounds connection setup
// (default 5000).
//
// Exit codes: 0 success, 1 usage/transport error, 2 request rejected
// (invalid vertex, queue shed after retries, or service closed).
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/cli.h"
#include "svc/client.h"

namespace {

using namespace ecl;

using svc::status_name;

int usage() {
  std::fprintf(stderr,
               "usage: ecl_cc_client (--unix=PATH | [--host=A] --port=P) COMMAND\n"
               "commands:\n"
               "  ping                      round-trip check\n"
               "  connected U V [--fresh]   are U and V in the same component?\n"
               "  component V [--fresh]     component label of V\n"
               "  count                     snapshot component count\n"
               "  ingest U V [U V ...]      insert edges from the command line\n"
               "  ingest-file FILE          insert 'u v' edge lines from FILE\n"
               "  stats                     service statistics\n"
               "  health                    liveness / durability sample\n"
               "  promote                   flip a replica into a writable primary\n"
               "  shutdown                  ask the daemon to shut down\n");
  return 1;
}

bool parse_vertex(const std::string& s, vertex_t& out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0' || v > 0xffffffffull) return false;
  out = static_cast<vertex_t>(v);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);

  const std::string unix_path = args.get("unix", "");
  const std::string host = args.get("host", "127.0.0.1");
  const int port = static_cast<int>(args.get_int("port", 0));
  const auto mode = args.has("fresh") ? svc::ReadMode::kFresh : svc::ReadMode::kSnapshot;
  const auto batch_size = static_cast<std::size_t>(args.get_int("batch", 4096));
  svc::ClientOptions copts;
  copts.max_retries = static_cast<int>(args.get_int("retries", 3));
  copts.op_timeout_ms = static_cast<int>(args.get_int("op-timeout-ms", 10000));
  copts.connect_timeout_ms = static_cast<int>(args.get_int("connect-timeout-ms", 5000));
  const auto& pos = args.positional();
  for (const auto& flag : args.unused()) {
    std::fprintf(stderr, "warning: unknown flag --%s\n", flag.c_str());
  }
  if (pos.empty()) return usage();
  if (unix_path.empty() && port == 0) {
    std::fprintf(stderr, "error: no endpoint; pass --unix=PATH or --port=P\n");
    return 1;
  }

  std::string err;
  auto client = unix_path.empty() ? svc::Client::connect_tcp(host, port, &err, copts)
                                  : svc::Client::connect_unix(unix_path, &err, copts);
  if (!client) {
    std::fprintf(stderr, "error: connect failed: %s\n", err.c_str());
    return 1;
  }

  const std::string& cmd = pos[0];
  if (cmd == "ping") {
    if (!client->ping()) {
      std::fprintf(stderr, "error: ping failed\n");
      return 1;
    }
    std::printf("pong\n");
    return 0;
  }

  if (cmd == "connected") {
    vertex_t u = 0, v = 0;
    if (pos.size() != 3 || !parse_vertex(pos[1], u) || !parse_vertex(pos[2], v))
      return usage();
    svc::Status st = svc::Status::kOk;
    const bool same = client->connected(u, v, mode, &st);
    if (st != svc::Status::kOk) {
      std::fprintf(stderr, "error: %s\n", status_name(st));
      return st == svc::Status::kError ? 1 : 2;
    }
    std::printf("%s\n", same ? "connected" : "not-connected");
    return 0;
  }

  if (cmd == "component") {
    vertex_t v = 0;
    if (pos.size() != 2 || !parse_vertex(pos[1], v)) return usage();
    svc::Status st = svc::Status::kOk;
    const vertex_t label = client->component_of(v, mode, &st);
    if (st != svc::Status::kOk) {
      std::fprintf(stderr, "error: %s\n", status_name(st));
      return st == svc::Status::kError ? 1 : 2;
    }
    std::printf("%u\n", label);
    return 0;
  }

  if (cmd == "count") {
    std::uint64_t count = 0;
    if (!client->component_count(count)) {
      std::fprintf(stderr, "error: request failed\n");
      return 1;
    }
    std::printf("%llu\n", static_cast<unsigned long long>(count));
    return 0;
  }

  if (cmd == "ingest") {
    if (pos.size() < 3 || (pos.size() - 1) % 2 != 0) return usage();
    std::vector<Edge> edges;
    for (std::size_t i = 1; i + 1 < pos.size(); i += 2) {
      vertex_t u = 0, v = 0;
      if (!parse_vertex(pos[i], u) || !parse_vertex(pos[i + 1], v)) return usage();
      edges.emplace_back(u, v);
    }
    const svc::Status st = client->ingest(edges);  // retries per --retries
    if (st != svc::Status::kOk) {
      std::fprintf(stderr, "error: %s\n", status_name(st));
      return st == svc::Status::kError ? 1 : 2;
    }
    std::printf("ingested %zu edges\n", edges.size());
    return 0;
  }

  if (cmd == "ingest-file") {
    if (pos.size() != 2) return usage();
    std::ifstream in(pos[1]);
    if (!in) {
      std::fprintf(stderr, "error: cannot open %s\n", pos[1].c_str());
      return 1;
    }
    std::vector<Edge> batch;
    std::uint64_t total = 0, shed = 0;
    std::string line;
    auto flush_batch = [&]() -> int {
      if (batch.empty()) return 0;
      const svc::Status st = client->ingest(batch);
      if (st == svc::Status::kShed) {
        ++shed;
      } else if (st != svc::Status::kOk) {
        std::fprintf(stderr, "error: %s\n", status_name(st));
        return st == svc::Status::kError ? 1 : 2;
      } else {
        total += batch.size();
      }
      batch.clear();
      return 0;
    };
    while (std::getline(in, line)) {
      if (line.empty() || line[0] == '#' || line[0] == '%') continue;
      std::istringstream ls(line);
      unsigned long long u = 0, v = 0;
      if (!(ls >> u >> v)) continue;
      batch.emplace_back(static_cast<vertex_t>(u), static_cast<vertex_t>(v));
      if (batch.size() >= batch_size) {
        if (const int rc = flush_batch(); rc != 0) return rc;
      }
    }
    if (const int rc = flush_batch(); rc != 0) return rc;
    std::printf("ingested %llu edges", static_cast<unsigned long long>(total));
    if (shed > 0)
      std::printf(" (%llu batches shed after retries)",
                  static_cast<unsigned long long>(shed));
    std::printf("\n");
    return shed > 0 ? 2 : 0;
  }

  if (cmd == "stats") {
    svc::ServiceStats st{};
    if (!client->stats(st)) {
      std::fprintf(stderr, "error: request failed\n");
      return 1;
    }
    std::printf("epoch             %llu\n", static_cast<unsigned long long>(st.epoch));
    std::printf("watermark         %llu\n",
                static_cast<unsigned long long>(st.watermark));
    std::printf("applied_edges     %llu\n",
                static_cast<unsigned long long>(st.applied_edges));
    std::printf("accepted_batches  %llu\n",
                static_cast<unsigned long long>(st.accepted_batches));
    std::printf("applied_batches   %llu\n",
                static_cast<unsigned long long>(st.applied_batches));
    std::printf("shed_batches      %llu\n",
                static_cast<unsigned long long>(st.shed_batches));
    std::printf("queue_depth       %llu\n",
                static_cast<unsigned long long>(st.queue_depth));
    std::printf("num_components    %u\n", st.num_components);
    std::printf("num_vertices      %u\n", st.num_vertices);
    std::printf("checkpoints       %llu\n",
                static_cast<unsigned long long>(st.checkpoints));
    std::printf("last_ckpt_epoch   %llu\n",
                static_cast<unsigned long long>(st.last_checkpoint_epoch));
    std::printf("wal_segments      %llu\n",
                static_cast<unsigned long long>(st.wal_segments));
    std::printf("wal_bytes         %llu\n",
                static_cast<unsigned long long>(st.wal_bytes));
    std::printf("degraded          %s\n", st.degraded ? "yes" : "no");
    std::printf("uptime_ms         %llu\n",
                static_cast<unsigned long long>(st.uptime_ms));
    std::printf("replayed_edges    %llu\n",
                static_cast<unsigned long long>(st.replayed_edges));
    std::printf("requests_served   %llu\n",
                static_cast<unsigned long long>(st.requests_served));
    return 0;
  }

  if (cmd == "health") {
    svc::ServiceHealth h{};
    if (!client->health(h)) {
      std::fprintf(stderr, "error: request failed\n");
      return 1;
    }
    std::printf("degraded            %s\n", h.degraded ? "yes" : "no");
    std::printf("ingest_worker       %s\n", h.ingest_worker_alive ? "alive" : "dead");
    std::printf("wal                 %s\n",
                !h.wal_enabled ? "disabled" : (h.wal_healthy ? "healthy" : "failed"));
    std::printf("queue_depth         %llu\n",
                static_cast<unsigned long long>(h.queue_depth));
    std::printf("staleness_edges     %llu\n",
                static_cast<unsigned long long>(h.staleness_edges));
    std::printf("ingest_lag_batches  %llu\n",
                static_cast<unsigned long long>(h.ingest_lag_batches));
    std::printf("wal_records         %llu\n",
                static_cast<unsigned long long>(h.wal_records));
    std::printf("replayed_edges      %llu\n",
                static_cast<unsigned long long>(h.replayed_edges));
    std::printf("degraded_entries    %llu\n",
                static_cast<unsigned long long>(h.degraded_entries));
    std::printf("checkpoints         %s\n", h.checkpoint_enabled ? "enabled" : "disabled");
    std::printf("checkpoints_written %llu\n",
                static_cast<unsigned long long>(h.checkpoints_written));
    std::printf("last_ckpt_epoch     %llu\n",
                static_cast<unsigned long long>(h.last_checkpoint_epoch));
    std::printf("last_ckpt_age_ms    %llu\n",
                static_cast<unsigned long long>(h.last_checkpoint_age_ms));
    std::printf("wal_segments        %llu\n",
                static_cast<unsigned long long>(h.wal_segments));
    std::printf("wal_bytes           %llu\n",
                static_cast<unsigned long long>(h.wal_bytes));
    std::printf("role                %s\n", h.replica ? "replica" : "primary");
    std::printf("replica_lag_seq     %llu\n",
                static_cast<unsigned long long>(h.replica_lag_seq));
    std::printf("replica_lag_ms      %llu\n",
                static_cast<unsigned long long>(h.replica_lag_ms));
    std::printf("replicas_connected  %llu\n",
                static_cast<unsigned long long>(h.replicas_connected));
    // Exit 0 healthy, 2 degraded: lets scripts use this as a health probe.
    return h.degraded ? 2 : 0;
  }

  if (cmd == "promote") {
    svc::Status st = svc::Status::kOk;
    if (!client->promote(&st)) {
      std::fprintf(stderr, "error: %s\n", status_name(st));
      return st == svc::Status::kError ? 1 : 2;
    }
    std::printf("promoted\n");
    return 0;
  }

  if (cmd == "shutdown") {
    if (!client->shutdown_server()) {
      std::fprintf(stderr, "error: shutdown request failed\n");
      return 1;
    }
    std::printf("shutdown acknowledged\n");
    return 0;
  }

  std::fprintf(stderr, "error: unknown command '%s'\n", cmd.c_str());
  return usage();
}
