// ecl_ccd — the connectivity service daemon.
//
// Serves connected(u,v) / component_of(v) / component_count() queries and
// streaming edge ingest over the ecl::svc binary protocol, on a TCP or
// Unix-domain socket, against a ConnectivityService (snapshot reads, lock-
// free ingest, background ECL-CC compaction; see docs/SERVICE.md).
//
//   $ ecl_ccd --vertices=100000 --unix=/tmp/ecl.sock
//   $ ecl_ccd --graph=web.eclg --port=4280
//   $ ecl_ccd --gen=internet --scale=0.2 --port=0       # ephemeral port
//
// Flags:
//   --vertices=N            empty universe of N vertices (default 1e6)
//   --graph=FILE            seed from a graph file (any supported format)
//   --gen=NAME --scale=F    seed from a generated suite graph
//   --unix=PATH             serve on a Unix-domain socket
//   --host=A --port=P       serve on TCP (default 127.0.0.1:4280; port 0 =
//                           ephemeral, printed and written to --ready-file)
//   --queue-capacity=N      ingest admission queue, in batches (default 64)
//   --compact-interval-ms=N background compaction cadence (default 20)
//   --compact-min-edges=N   min new edges before compacting (default 1)
//   --threads=N             OpenMP threads for compaction (0 = default)
//   --wal=PATH              write-ahead edge log (segments PATH.000001, ...):
//                           replay the tail on startup (truncating any torn
//                           final record) and append every accepted batch
//                           before acking it
//   --wal-fsync=POLICY      none | batch | always (default batch)
//   --wal-fsync-every=N     under batch: fsync once per N appends (def. 16)
//   --wal-segment-bytes=N   rotate WAL segments at this size (def. 64 MiB)
//   --checkpoint=PATH       durable label-array checkpoints (PATH.000001,
//                           ...): restart loads the newest valid checkpoint
//                           and replays only WAL segments past it; covered
//                           segments are retired (bounded recovery + disk)
//   --checkpoint-interval-ms=N  min period between checkpoints (def. 5000;
//                           0 = only the final checkpoint on clean stop)
//   --replica-of=ENDPOINT   run as a read-only replica of the primary at
//                           ENDPOINT (a unix socket path if it contains '/',
//                           else HOST:PORT). Requires --wal and --checkpoint
//                           (the replica's local mirror + bootstrap state).
//                           Writes answer kNotPrimary until a kPromote
//                           (ecl_cc_client promote) flips this daemon into a
//                           writable primary. See docs/REPLICATION.md.
//   --replica-fetch-interval-ms=N  WAL fetch cadence on a replica (def. 150)
//   --replica-fetch-bytes=N bytes per WAL fetch (def. 1 MiB, server-capped)
//   --replica-hold-ms=N     primary side: a replica unseen for this long
//                           stops pinning WAL retention (def. 10000)
//   --frame-timeout-ms=N    evict clients that stall mid-frame (def. 10000)
//   --idle-timeout-ms=N     evict connections idle this long (0 = never)
//   --send-timeout-ms=N     evict clients that stop draining their buffered
//                           responses for this long (def. 10000; 0 = never)
//   --io-threads=N          event-loop threads multiplexing the connections
//                           (def. 2); connection capacity is bounded by fds,
//                           not by this
//   --backlog=N             listen(2) backlog (def. 256 — a C10K connect
//                           burst overflows the old 64 before accept runs)
//   --ready-file=PATH       write "unix <path>" or "tcp <host> <port>" once
//                           listening (lets scripts wait for startup); with
//                           --metrics-port a "metrics <port>" line follows
//   --report=FILE.json      write an obs run report on shutdown
//   --trace=FILE.json       record trace spans (batches, compactions, and
//                           one "svc.request" span per served request with
//                           its decode/execute/encode/write breakdown)
//   --metrics               print the metrics snapshot on shutdown
//   --metrics-port=P        serve Prometheus text exposition on
//                           http://<metrics-host>:P/metrics (port 0 =
//                           ephemeral, printed and written to --ready-file);
//                           includes windowed rates and p50/p95/p99 plus
//                           service/WAL/checkpoint families — see
//                           docs/OBSERVABILITY.md "Live exporter". Omit the
//                           flag to disable the exporter entirely.
//   --metrics-host=A        exporter bind address (default 127.0.0.1)
//   --slow-log=FILE         append a JSON line per slow request (request id,
//                           op, queue depth, latency breakdown)
//   --slow-threshold-us=N   requests at least this slow are logged (default
//                           10000; 0 logs every request)
//
// Shutdown: SIGINT/SIGTERM or a protocol kShutdown message; either way the
// daemon stops accepting, drains in-flight batches, runs a final compaction
// and exits 0.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "common/cli.h"
#include "graph/io.h"
#include "graph/suite.h"
#include "obs/exporter.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "svc/replica.h"
#include "svc/server.h"
#include "svc/service.h"

namespace {

ecl::svc::Server* g_server = nullptr;

void handle_signal(int) {
  if (g_server != nullptr) g_server->request_shutdown();  // async-signal-safe
}

void append_family(std::string& out, const char* name, const char* type,
                   std::uint64_t value) {
  out += "# TYPE ";
  out += name;
  out += ' ';
  out += type;
  out += '\n';
  out += name;
  out += ' ';
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(value));
  out += buf;
  out += '\n';
}

/// Exporter collector: service/WAL/checkpoint families rendered from a fresh
/// stats()+health() sample on every scrape, under the wire-stable names
/// documented in docs/OBSERVABILITY.md. The degraded flag in particular must
/// come from here — it is service state, not a registry metric — so the
/// endpoint keeps answering `ecl_svc_degraded 1` after a WAL failure.
void collect_service_families(const ecl::svc::ConnectivityService& service,
                              const ecl::svc::Server& server, std::string& out) {
  const auto st = service.stats();
  const auto h = service.health();
  append_family(out, "ecl_svc_up", "gauge", 1);
  append_family(out, "ecl_svc_degraded", "gauge", h.degraded ? 1 : 0);
  append_family(out, "ecl_svc_ingest_worker_alive", "gauge",
                h.ingest_worker_alive ? 1 : 0);
  append_family(out, "ecl_svc_uptime_ms", "gauge", st.uptime_ms);
  append_family(out, "ecl_svc_requests_served_total", "counter",
                server.requests_served());
  append_family(out, "ecl_svc_epoch", "gauge", st.epoch);
  append_family(out, "ecl_svc_watermark", "gauge", st.watermark);
  append_family(out, "ecl_svc_applied_edges_total", "counter", st.applied_edges);
  append_family(out, "ecl_svc_accepted_batches_total", "counter",
                st.accepted_batches);
  append_family(out, "ecl_svc_shed_batches_total", "counter", st.shed_batches);
  append_family(out, "ecl_svc_queue_depth", "gauge", st.queue_depth);
  append_family(out, "ecl_svc_staleness_edges", "gauge", h.staleness_edges);
  append_family(out, "ecl_svc_ingest_lag_batches", "gauge", h.ingest_lag_batches);
  append_family(out, "ecl_svc_num_components", "gauge", st.num_components);
  append_family(out, "ecl_wal_enabled", "gauge", h.wal_enabled ? 1 : 0);
  append_family(out, "ecl_wal_healthy", "gauge", h.wal_healthy ? 1 : 0);
  append_family(out, "ecl_wal_records_total", "counter", h.wal_records);
  append_family(out, "ecl_wal_replayed_edges", "gauge", h.replayed_edges);
  append_family(out, "ecl_wal_segments", "gauge", st.wal_segments);
  append_family(out, "ecl_wal_bytes", "gauge", st.wal_bytes);
  append_family(out, "ecl_ckpt_enabled", "gauge", h.checkpoint_enabled ? 1 : 0);
  append_family(out, "ecl_ckpt_written_total", "counter", h.checkpoints_written);
  append_family(out, "ecl_ckpt_last_epoch", "gauge", h.last_checkpoint_epoch);
  append_family(out, "ecl_ckpt_age_ms", "gauge", h.last_checkpoint_age_ms);
  // Replication (docs/REPLICATION.md): role flips 1 -> 0 on promotion; lag
  // is meaningful on replicas, replicas_connected on primaries.
  append_family(out, "ecl_svc_role", "gauge", h.replica ? 1 : 0);
  append_family(out, "ecl_svc_replica_lag_seq", "gauge", h.replica_lag_seq);
  append_family(out, "ecl_svc_replica_lag_ms", "gauge", h.replica_lag_ms);
  append_family(out, "ecl_svc_replicas_connected", "gauge", h.replicas_connected);
  // Connection-level telemetry from the event-loop front end.
  const auto cs = server.conn_stats();
  append_family(out, "ecl_svc_open_connections", "gauge", cs.open_connections);
  append_family(out, "ecl_svc_epoll_wakeups_total", "counter", cs.epoll_wakeups);
  append_family(out, "ecl_svc_write_buf_hwm_bytes", "gauge", cs.write_buf_hwm_bytes);
  append_family(out, "ecl_svc_evicted_idle_total", "counter", cs.evicted_idle);
  append_family(out, "ecl_svc_evicted_slow_total", "counter", cs.evicted_slow);
  append_family(out, "ecl_svc_evicted_backpressure_total", "counter",
                cs.evicted_backpressure);
  append_family(out, "ecl_svc_accept_shed_fds_total", "counter", cs.accept_shed_fds);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ecl;
  CliArgs args(argc, argv);

  svc::ServiceOptions sopts;
  sopts.queue_capacity = static_cast<std::size_t>(args.get_int("queue-capacity", 64));
  sopts.compact_interval_ms = static_cast<int>(args.get_int("compact-interval-ms", 20));
  sopts.compact_min_new_edges =
      static_cast<std::uint64_t>(args.get_int("compact-min-edges", 1));
  sopts.num_threads = static_cast<int>(args.get_int("threads", 0));
  sopts.wal_path = args.get("wal", "");
  const std::string fsync_policy = args.get("wal-fsync", "batch");
  if (!svc::parse_fsync_policy(fsync_policy, &sopts.wal.fsync_policy)) {
    std::fprintf(stderr, "error: bad --wal-fsync=%s (none|batch|always)\n",
                 fsync_policy.c_str());
    return 1;
  }
  sopts.wal.fsync_every = static_cast<std::uint32_t>(args.get_int("wal-fsync-every", 16));
  sopts.wal_segment_bytes =
      static_cast<std::uint64_t>(args.get_int("wal-segment-bytes", 64ll << 20));
  sopts.checkpoint_path = args.get("checkpoint", "");
  sopts.checkpoint_interval_ms =
      static_cast<int>(args.get_int("checkpoint-interval-ms", 5000));
  sopts.replica_hold_ms = static_cast<int>(args.get_int("replica-hold-ms", 10000));

  const std::string replica_of = args.get("replica-of", "");
  const bool replica_mode = !replica_of.empty();
  svc::ReplicatorOptions ropts;
  ropts.fetch_interval_ms =
      static_cast<int>(args.get_int("replica-fetch-interval-ms", 150));
  ropts.fetch_max_bytes =
      static_cast<std::uint32_t>(args.get_int("replica-fetch-bytes", 1 << 20));
  if (replica_mode) {
    if (replica_of.find('/') != std::string::npos) {
      ropts.unix_path = replica_of;
    } else {
      const auto colon = replica_of.rfind(':');
      if (colon == std::string::npos || colon + 1 == replica_of.size()) {
        std::fprintf(stderr,
                     "error: --replica-of wants HOST:PORT or a unix socket path\n");
        return 1;
      }
      ropts.host = replica_of.substr(0, colon);
      ropts.port = std::atoi(replica_of.c_str() + colon + 1);
    }
    if (sopts.wal_path.empty() || sopts.checkpoint_path.empty()) {
      std::fprintf(stderr,
                   "error: --replica-of requires --wal and --checkpoint (the "
                   "replica's local mirror and bootstrap state)\n");
      return 1;
    }
    ropts.wal_path = sopts.wal_path;
    ropts.checkpoint_path = sopts.checkpoint_path;
    sopts.replica = true;
  }

  svc::ServerOptions nopts;
  nopts.unix_path = args.get("unix", "");
  nopts.host = args.get("host", "127.0.0.1");
  nopts.port = static_cast<int>(args.get_int("port", 4280));
  nopts.frame_timeout_ms = static_cast<int>(args.get_int("frame-timeout-ms", 10000));
  nopts.idle_timeout_ms = static_cast<int>(args.get_int("idle-timeout-ms", 0));
  nopts.send_timeout_ms = static_cast<int>(args.get_int("send-timeout-ms", 10000));
  nopts.io_threads = static_cast<int>(args.get_int("io-threads", 2));
  nopts.backlog = static_cast<int>(args.get_int("backlog", 256));

  const std::string graph_file = args.get("graph", "");
  const std::string gen = args.get("gen", "");
  const double scale = args.get_double("scale", 1.0);
  const auto vertices = static_cast<vertex_t>(args.get_int("vertices", 1000000));
  const std::string ready_file = args.get("ready-file", "");
  const std::string report_file = args.get("report", "");
  const std::string trace_file = args.get("trace", "");
  const bool print_metrics = args.has("metrics");
  const bool exporter_enabled = args.has("metrics-port");
  obs::ExporterOptions eopts;
  eopts.host = args.get("metrics-host", "127.0.0.1");
  eopts.port = static_cast<int>(args.get_int("metrics-port", 0));
  const std::string slow_log_file = args.get("slow-log", "");
  const auto slow_threshold_us =
      static_cast<std::uint64_t>(args.get_int("slow-threshold-us", 10000));
  for (const auto& flag : args.unused()) {
    std::fprintf(stderr, "warning: unknown flag --%s\n", flag.c_str());
  }

  if (!trace_file.empty()) obs::Tracer::instance().start(trace_file);

  obs::RequestLog slow_log;
  if (!slow_log_file.empty()) {
    if (!slow_log.open(slow_log_file, slow_threshold_us)) {
      std::fprintf(stderr, "error: cannot open --slow-log=%s\n", slow_log_file.c_str());
      return 1;
    }
    nopts.slow_log = &slow_log;
    std::printf("slow-request log %s (threshold %llu us)\n", slow_log_file.c_str(),
                static_cast<unsigned long long>(slow_threshold_us));
  }

  if (replica_mode) {
    // Before the service exists: fetch the primary's newest checkpoint (or
    // resume from local mirror state) so the ctor below recovers from it.
    std::string berr;
    if (!svc::Replicator::bootstrap(ropts, &berr)) {
      std::fprintf(stderr, "error: replica bootstrap failed: %s\n", berr.c_str());
      return 1;
    }
  }

  std::unique_ptr<svc::ConnectivityService> service;
  try {
    if (!graph_file.empty()) {
      const Graph seed = load_auto(graph_file);
      std::printf("seeded from %s: %u vertices, %llu directed edges\n",
                  graph_file.c_str(), seed.num_vertices(),
                  static_cast<unsigned long long>(seed.num_edges()));
      service = std::make_unique<svc::ConnectivityService>(seed, sopts);
    } else if (!gen.empty()) {
      const Graph seed = make_suite_graph(gen, scale);
      std::printf("seeded from generated '%s' (scale %.2f): %u vertices\n",
                  gen.c_str(), scale, seed.num_vertices());
      service = std::make_unique<svc::ConnectivityService>(seed, sopts);
    } else {
      service = std::make_unique<svc::ConnectivityService>(vertices, sopts);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  if (!sopts.wal_path.empty()) {
    std::printf("wal %s (fsync=%s): replayed %llu edges\n", sopts.wal_path.c_str(),
                svc::to_string(sopts.wal.fsync_policy),
                static_cast<unsigned long long>(service->replayed_edges()));
  }
  if (!sopts.checkpoint_path.empty()) {
    const auto h = service->health();
    std::printf("checkpoint %s (interval %d ms): recovered epoch %llu, watermark %llu\n",
                sopts.checkpoint_path.c_str(), sopts.checkpoint_interval_ms,
                static_cast<unsigned long long>(h.last_checkpoint_epoch),
                static_cast<unsigned long long>(service->stats().watermark));
  }

  std::unique_ptr<svc::Replicator> replicator;
  if (replica_mode) {
    replicator = std::make_unique<svc::Replicator>(*service, ropts);
    // kPromote must stop the stream before flipping the service: promote()
    // assumes no more bytes land in the WAL mirror.
    nopts.promote = [&service, &replicator] {
      if (replicator) replicator->stop();
      return service->promote(nullptr);
    };
  }

  svc::Server server(*service, nopts);
  std::string err;
  if (!server.start(&err)) {
    std::fprintf(stderr, "error: cannot start server: %s\n", err.c_str());
    return 1;
  }
  g_server = &server;
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  if (replicator != nullptr) {
    std::string rerr;
    if (!replicator->start(&rerr)) {
      std::fprintf(stderr, "error: cannot start replication: %s\n", rerr.c_str());
      server.stop();
      service->stop();
      return 1;
    }
    std::printf("replica of %s (fetch every %d ms, %u bytes/fetch)\n",
                replica_of.c_str(), ropts.fetch_interval_ms, ropts.fetch_max_bytes);
  }

  obs::MetricsExporter exporter(eopts);
  if (exporter_enabled) {
    exporter.add_collector([&service, &server](std::string& out) {
      collect_service_families(*service, server, out);
    });
    std::string eerr;
    if (!exporter.start(&eerr)) {
      std::fprintf(stderr, "error: cannot start metrics exporter: %s\n", eerr.c_str());
      server.stop();
      service->stop();
      return 1;
    }
  }

  if (!nopts.unix_path.empty()) {
    std::printf("listening on unix socket %s\n", nopts.unix_path.c_str());
  } else {
    std::printf("listening on %s:%d\n", nopts.host.c_str(), server.port());
  }
  if (exporter_enabled) {
    std::printf("metrics on http://%s:%d/metrics\n", eopts.host.c_str(),
                exporter.port());
  }
  std::fflush(stdout);
  if (!ready_file.empty()) {
    std::ofstream ready(ready_file);
    if (!nopts.unix_path.empty()) {
      ready << "unix " << nopts.unix_path << "\n";
    } else {
      ready << "tcp " << nopts.host << " " << server.port() << "\n";
    }
    if (exporter_enabled) ready << "metrics " << exporter.port() << "\n";
  }

  server.wait();          // until signal or kShutdown request
  server.stop();
  exporter.stop();
  // Stop the stream before the service: apply_replicated() into a stopping
  // service is harmless, but the ordering keeps shutdown deterministic.
  if (replicator != nullptr) {
    replicator->stop();
    std::printf("replication: %llu fetch rounds, %llu records applied, "
                "%llu errors, %llu re-bootstraps\n",
                static_cast<unsigned long long>(replicator->fetch_rounds()),
                static_cast<unsigned long long>(replicator->applied_records()),
                static_cast<unsigned long long>(replicator->fetch_errors()),
                static_cast<unsigned long long>(replicator->rebootstraps()));
  }
  service->stop();        // drain in-flight batches + final compaction
  slow_log.close();

  const auto stats = service->stats();
  if (service->degraded()) {
    std::printf("note: service ended in read-only degraded mode\n");
  }
  std::printf(
      "shutdown: served %llu requests; epoch %llu, %llu edges applied, "
      "%llu batches shed, %u components\n",
      static_cast<unsigned long long>(server.requests_served()),
      static_cast<unsigned long long>(stats.epoch),
      static_cast<unsigned long long>(stats.applied_edges),
      static_cast<unsigned long long>(stats.shed_batches),
      stats.num_components);
  if (!slow_log_file.empty()) {
    std::printf("slow-request log: %llu lines in %s\n",
                static_cast<unsigned long long>(slow_log.lines()),
                slow_log_file.c_str());
  }
  if (exporter_enabled) {
    std::printf("metrics exporter: %llu scrapes\n",
                static_cast<unsigned long long>(exporter.scrapes()));
  }

  if (!report_file.empty()) {
    obs::run_report().set_bench_name("ecl_ccd");
    obs::run_report().add_cell("service", "lifetime",
                               {static_cast<double>(server.requests_served())});
    if (!obs::run_report().write_file(report_file)) {
      std::fprintf(stderr, "error: cannot write report to %s\n", report_file.c_str());
      return 1;
    }
  }
  if (print_metrics) {
    for (const auto& m : obs::registry().snapshot()) {
      if (m.kind == obs::MetricSnapshot::Kind::kHistogram) {
        std::printf("%-36s count=%llu avg=%.1f p50=%.1f p95=%.1f p99=%.1f\n",
                    m.name.c_str(), static_cast<unsigned long long>(m.count), m.value,
                    m.p50, m.p95, m.p99);
      } else if (m.kind == obs::MetricSnapshot::Kind::kCounter) {
        std::printf("%-36s %llu\n", m.name.c_str(),
                    static_cast<unsigned long long>(m.count));
      } else {
        std::printf("%-36s %.2f\n", m.name.c_str(), m.value);
      }
    }
  }
  if (!trace_file.empty()) obs::Tracer::instance().stop();
  return 0;
}
