// ecl_cc_top — live terminal dashboard for a running ecl_ccd daemon.
//
//   $ ecl_cc_top --unix=/tmp/ecl.sock
//   $ ecl_cc_top --host=127.0.0.1 --port=4280 --interval-ms=500
//   $ ecl_cc_top --port=4280 --iterations=3 --plain      # scripted snapshot
//
// Polls the kStats/kHealth RPCs on a fixed cadence and renders one screen
// per sample: request and ingest throughput (rates come from differencing
// consecutive samples, the same way the exporter's windowed gauges do),
// snapshot epoch/watermark lag, queue depth, WAL and checkpoint activity,
// and a DEGRADED banner the moment the service drops to read-only mode.
//
// Flags:
//   --unix=PATH / --host=A --port=P   daemon endpoint (like ecl_cc_client)
//   --interval-ms=N                   poll period (default 1000)
//   --iterations=N                    exit after N samples (0 = until ^C
//                                     or the daemon goes away)
//   --plain                           no ANSI clear/colors; append screens
//                                     (for logs, CI, and non-TTY output)
//
// Exit codes: 0 clean, 1 endpoint/usage or lost connection.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "common/cli.h"
#include "common/timer.h"
#include "svc/client.h"

namespace {

using namespace ecl;

struct Sample {
  svc::ServiceStats stats;
  svc::ServiceHealth health;
  double t_s = 0.0;  // steady-clock seconds at sample time
};

double rate(std::uint64_t now, std::uint64_t then, double dt_s) {
  if (dt_s <= 0.0 || now < then) return 0.0;
  return static_cast<double>(now - then) / dt_s;
}

void print_bytes(double v) {
  if (v >= 1024.0 * 1024.0 * 1024.0) {
    std::printf("%.1f GiB", v / (1024.0 * 1024.0 * 1024.0));
  } else if (v >= 1024.0 * 1024.0) {
    std::printf("%.1f MiB", v / (1024.0 * 1024.0));
  } else if (v >= 1024.0) {
    std::printf("%.1f KiB", v / 1024.0);
  } else {
    std::printf("%.0f B", v);
  }
}

void render(const std::string& endpoint, const Sample& cur, const Sample* prev,
            bool plain) {
  if (!plain) std::printf("\x1b[H\x1b[2J");  // home + clear
  const double dt = prev != nullptr ? cur.t_s - prev->t_s : 0.0;
  const auto& st = cur.stats;
  const auto& h = cur.health;

  std::printf("ecl_cc_top — %s   uptime %.1fs", endpoint.c_str(),
              static_cast<double>(st.uptime_ms) / 1000.0);
  if (h.replica) {
    std::printf(plain ? "   [REPLICA]" : "   \x1b[1;44m REPLICA \x1b[0m");
  }
  if (h.degraded) {
    std::printf(plain ? "   [DEGRADED: read-only]" : "   \x1b[1;41m DEGRADED: read-only \x1b[0m");
  }
  std::printf("\n\n");

  std::printf("requests    %llu served",
              static_cast<unsigned long long>(st.requests_served));
  if (prev != nullptr) {
    std::printf("   %.1f/s", rate(st.requests_served, prev->stats.requests_served, dt));
  }
  std::printf("\n");

  std::printf("ingest      %llu edges applied",
              static_cast<unsigned long long>(st.applied_edges));
  if (prev != nullptr) {
    std::printf("   %.0f edges/s", rate(st.applied_edges, prev->stats.applied_edges, dt));
  }
  std::printf("   queue %llu   lag %llu batches   shed %llu\n",
              static_cast<unsigned long long>(st.queue_depth),
              static_cast<unsigned long long>(h.ingest_lag_batches),
              static_cast<unsigned long long>(st.shed_batches));

  std::printf("snapshot    epoch %llu", static_cast<unsigned long long>(st.epoch));
  if (prev != nullptr) {
    std::printf(" (+%.2f/s)", rate(st.epoch, prev->stats.epoch, dt));
  }
  std::printf("   watermark %llu   staleness %llu edges   %u components\n",
              static_cast<unsigned long long>(st.watermark),
              static_cast<unsigned long long>(h.staleness_edges), st.num_components);

  std::printf("wal         ");
  if (!h.wal_enabled) {
    std::printf("disabled\n");
  } else {
    std::printf("%s   %llu records   %llu segments   ",
                h.wal_healthy ? "healthy" : (plain ? "FAILED" : "\x1b[1;31mFAILED\x1b[0m"),
                static_cast<unsigned long long>(h.wal_records),
                static_cast<unsigned long long>(st.wal_segments));
    print_bytes(static_cast<double>(st.wal_bytes));
    if (prev != nullptr && st.wal_bytes >= prev->stats.wal_bytes) {
      std::printf("  (+");
      print_bytes(rate(st.wal_bytes, prev->stats.wal_bytes, dt));
      std::printf("/s)");
    }
    std::printf("\n");
  }

  std::printf("checkpoint  ");
  if (!h.checkpoint_enabled) {
    std::printf("disabled\n");
  } else {
    std::printf("%llu written   epoch %llu   age %.1fs\n",
                static_cast<unsigned long long>(h.checkpoints_written),
                static_cast<unsigned long long>(h.last_checkpoint_epoch),
                static_cast<double>(h.last_checkpoint_age_ms) / 1000.0);
  }

  // Replication panel. A replica shows how far behind the primary it is; a
  // primary shows how many replicas are currently fetching from it. Both
  // read zeros against a pre-replication daemon (tagged tail absent).
  if (h.replica) {
    std::printf("replication replica   lag %llu segments / %llu ms behind primary\n",
                static_cast<unsigned long long>(h.replica_lag_seq),
                static_cast<unsigned long long>(h.replica_lag_ms));
  } else if (h.replicas_connected > 0) {
    std::printf("replication primary   %llu replicas streaming\n",
                static_cast<unsigned long long>(h.replicas_connected));
  }

  // Connection panel (zeros against a pre-event-loop daemon, whose tagged
  // stats simply lack these fields).
  std::printf("conns       %llu open",
              static_cast<unsigned long long>(st.open_connections));
  if (prev != nullptr) {
    std::printf("   %.0f wakeups/s",
                rate(st.epoll_wakeups, prev->stats.epoll_wakeups, dt));
  }
  std::printf("   wbuf hwm ");
  print_bytes(static_cast<double>(st.write_buf_hwm_bytes));
  std::printf("\n");
  const std::uint64_t evicted =
      st.evicted_idle + st.evicted_slow + st.evicted_backpressure;
  std::printf("evictions   %llu total (%llu idle, %llu slow, %llu backpressure)"
              "   %llu accepts shed\n",
              static_cast<unsigned long long>(evicted),
              static_cast<unsigned long long>(st.evicted_idle),
              static_cast<unsigned long long>(st.evicted_slow),
              static_cast<unsigned long long>(st.evicted_backpressure),
              static_cast<unsigned long long>(st.accept_shed_fds));
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const std::string unix_path = args.get("unix", "");
  const std::string host = args.get("host", "127.0.0.1");
  const int port = static_cast<int>(args.get_int("port", 0));
  const int interval_ms = static_cast<int>(args.get_int("interval-ms", 1000));
  const auto iterations = args.get_int("iterations", 0);
  const bool plain = args.has("plain");
  for (const auto& flag : args.unused()) {
    std::fprintf(stderr, "warning: unknown flag --%s\n", flag.c_str());
  }
  if (unix_path.empty() && port == 0) {
    std::fprintf(stderr,
                 "usage: ecl_cc_top (--unix=PATH | [--host=A] --port=P) "
                 "[--interval-ms=N] [--iterations=N] [--plain]\n");
    return 1;
  }

  svc::ClientOptions copts;
  copts.max_retries = 1;  // a dashboard should show staleness, not hide it
  std::string err;
  auto client = unix_path.empty() ? svc::Client::connect_tcp(host, port, &err, copts)
                                  : svc::Client::connect_unix(unix_path, &err, copts);
  if (!client) {
    std::fprintf(stderr, "error: connect failed: %s\n", err.c_str());
    return 1;
  }
  const std::string endpoint =
      unix_path.empty() ? host + ":" + std::to_string(port) : unix_path;

  Timer clock;
  Sample prev;
  bool have_prev = false;
  for (std::int64_t i = 0; iterations == 0 || i < iterations; ++i) {
    if (i > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    }
    Sample cur;
    if (!client->stats(cur.stats) || !client->health(cur.health)) {
      std::fprintf(stderr, "error: daemon stopped answering\n");
      return 1;
    }
    cur.t_s = clock.seconds();
    render(endpoint, cur, have_prev ? &prev : nullptr, plain);
    prev = cur;
    have_prev = true;
  }
  return 0;
}
