// Command-line connected-components tool.
//
//   $ ecl_cc <graph-file> [--algo=serial|omp|gpu] [--threads=N]
//            [--out=labels.txt] [--verify] [--stats]
//
// Loads a graph in any supported format (SNAP edge list, DIMACS .gr,
// MatrixMarket .mtx, ECL binary .eclg — dispatched by extension), computes
// its connected components, and reports component statistics. Mirrors the
// original ECL-CC distribution's standalone executable.
#include <cstdio>
#include <fstream>
#include <map>

#include "common/cli.h"
#include "common/timer.h"
#include "core/ecl_cc.h"
#include "core/verify.h"
#include "graph/io.h"
#include "graph/stats.h"
#include "gpusim/gpu_cc.h"

int main(int argc, char** argv) {
  using namespace ecl;
  CliArgs args(argc, argv);
  if (args.positional().empty()) {
    std::fprintf(stderr,
                 "usage: ecl_cc <graph-file> [--algo=serial|omp|gpu] [--threads=N]\n"
                 "              [--out=labels.txt] [--verify] [--stats]\n");
    return 2;
  }

  Graph g;
  try {
    g = load_auto(args.positional()[0]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::printf("loaded %s: %u vertices, %llu directed edges\n",
              args.positional()[0].c_str(), g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()));

  const std::string algo = args.get("algo", "omp");
  std::vector<vertex_t> labels;
  Timer timer;
  if (algo == "serial") {
    labels = ecl_cc_serial(g);
  } else if (algo == "gpu") {
    const auto result = gpusim::ecl_cc_gpu(g, gpusim::titanx_like());
    labels = result.labels;
    std::printf("modeled GPU time: %.3f ms\n", result.time_ms);
  } else if (algo == "omp") {
    EclOptions opts;
    opts.num_threads = static_cast<int>(args.get_int("threads", 0));
    labels = ecl_cc_omp(g, opts);
  } else {
    std::fprintf(stderr, "error: unknown --algo=%s\n", algo.c_str());
    return 2;
  }
  const double ms = timer.millis();

  std::printf("algorithm: ECL-CC (%s)\n", algo.c_str());
  std::printf("wall time: %.3f ms\n", ms);
  std::printf("components: %u\n", count_labels(labels));

  if (args.has("stats")) {
    std::map<vertex_t, vertex_t> sizes;
    for (const vertex_t l : labels) ++sizes[l];
    vertex_t largest = 0;
    vertex_t singletons = 0;
    for (const auto& [label, size] : sizes) {
      largest = std::max(largest, size);
      if (size == 1) ++singletons;
    }
    std::printf("largest component: %u vertices (%.1f%%)\n", largest,
                100.0 * static_cast<double>(largest) /
                    static_cast<double>(std::max<vertex_t>(1, g.num_vertices())));
    std::printf("singleton components: %u\n", singletons);
  }

  if (args.has("verify")) {
    const auto check = verify_labels(g, labels);
    std::printf("verification: %s\n", check.ok ? "ok" : check.reason.c_str());
    if (!check.ok) return 1;
  }

  const std::string out = args.get("out", "");
  if (!out.empty()) {
    std::ofstream os(out);
    for (vertex_t v = 0; v < g.num_vertices(); ++v) {
      os << v << ' ' << labels[v] << '\n';
    }
    std::printf("labels written to %s\n", out.c_str());
  }
  return 0;
}
