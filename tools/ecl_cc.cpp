// Command-line connected-components tool.
//
//   $ ecl_cc <graph-file> [--algo=serial|omp|gpu] [--threads=N]
//            [--out=labels.txt] [--verify] [--stats]
//            [--trace=<file.json>] [--metrics]
//
// Loads a graph in any supported format (SNAP edge list, DIMACS .gr,
// MatrixMarket .mtx, ECL binary .eclg — dispatched by extension), computes
// its connected components, and reports component statistics. Mirrors the
// original ECL-CC distribution's standalone executable.
//
// Observability (docs/OBSERVABILITY.md): --trace writes a Chrome
// trace_event JSON (open in chrome://tracing or ui.perfetto.dev) covering
// the three ECL-CC phases (CPU algos) or every simulated kernel launch with
// its cache-counter annotations (gpu). --metrics prints the metrics
// registry (hooks, CAS retries, find hops, path-length histogram) after the
// run.
#include <cstdio>
#include <fstream>
#include <map>

#include "common/cli.h"
#include "common/timer.h"
#include "core/ecl_cc.h"
#include "core/verify.h"
#include "graph/io.h"
#include "graph/stats.h"
#include "gpusim/gpu_cc.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace {

void print_metrics() {
  using ecl::obs::MetricSnapshot;
  std::printf("\nmetrics:\n");
  const auto snapshot = ecl::obs::registry().snapshot();
  if (snapshot.empty()) {
    std::printf("  (none recorded — built with ECL_OBS_DISABLED?)\n");
    return;
  }
  for (const auto& m : snapshot) {
    switch (m.kind) {
      case MetricSnapshot::Kind::kCounter:
        std::printf("  %-28s counter    %llu\n", m.name.c_str(),
                    static_cast<unsigned long long>(m.count));
        break;
      case MetricSnapshot::Kind::kGauge:
        std::printf("  %-28s gauge      %g\n", m.name.c_str(), m.value);
        break;
      case MetricSnapshot::Kind::kHistogram: {
        std::printf("  %-28s histogram  count=%llu avg=%.2f max=%llu\n", m.name.c_str(),
                    static_cast<unsigned long long>(m.count), m.value,
                    static_cast<unsigned long long>(m.max));
        for (const auto& [le, count] : m.buckets) {
          if (count == 0) continue;
          if (le == ~std::uint64_t{0}) {
            std::printf("    le=+inf %llu\n", static_cast<unsigned long long>(count));
          } else {
            std::printf("    le=%-6llu %llu\n", static_cast<unsigned long long>(le),
                        static_cast<unsigned long long>(count));
          }
        }
        break;
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ecl;
  CliArgs args(argc, argv);
  if (args.positional().empty()) {
    std::fprintf(stderr,
                 "usage: ecl_cc <graph-file> [--algo=serial|omp|gpu] [--threads=N]\n"
                 "              [--out=labels.txt] [--verify] [--stats]\n"
                 "              [--trace=<file.json>] [--metrics]\n");
    return 2;
  }

  const std::string trace_path = args.get("trace", "");
  const bool want_metrics = args.has("metrics");
  if (!trace_path.empty()) {
    obs::Tracer::instance().start(trace_path);
  }

  Graph g;
  try {
    g = load_auto(args.positional()[0]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::printf("loaded %s: %u vertices, %llu directed edges\n",
              args.positional()[0].c_str(), g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()));

  const std::string algo = args.get("algo", "omp");
  std::vector<vertex_t> labels;
  Timer timer;
  if (algo == "serial") {
    labels = ecl_cc_serial(g);
  } else if (algo == "gpu") {
    const auto result = gpusim::ecl_cc_gpu(g, gpusim::titanx_like());
    labels = result.labels;
    std::printf("modeled GPU time: %.3f ms\n", result.time_ms);
  } else if (algo == "omp") {
    EclOptions opts;
    opts.num_threads = static_cast<int>(args.get_int("threads", 0));
    labels = ecl_cc_omp(g, opts);
  } else {
    std::fprintf(stderr, "error: unknown --algo=%s\n", algo.c_str());
    return 2;
  }
  const double ms = timer.millis();

  std::printf("algorithm: ECL-CC (%s)\n", algo.c_str());
  std::printf("wall time: %.3f ms\n", ms);
  std::printf("components: %u\n", count_labels(labels));

  if (args.has("stats")) {
    std::map<vertex_t, vertex_t> sizes;
    for (const vertex_t l : labels) ++sizes[l];
    vertex_t largest = 0;
    vertex_t singletons = 0;
    for (const auto& [label, size] : sizes) {
      largest = std::max(largest, size);
      if (size == 1) ++singletons;
    }
    std::printf("largest component: %u vertices (%.1f%%)\n", largest,
                100.0 * static_cast<double>(largest) /
                    static_cast<double>(std::max<vertex_t>(1, g.num_vertices())));
    std::printf("singleton components: %u\n", singletons);
  }

  if (args.has("verify")) {
    const auto check = verify_labels(g, labels);
    std::printf("verification: %s\n", check.ok ? "ok" : check.reason.c_str());
    if (!check.ok) return 1;
  }

  const std::string out = args.get("out", "");
  if (!out.empty()) {
    std::ofstream os(out);
    for (vertex_t v = 0; v < g.num_vertices(); ++v) {
      os << v << ' ' << labels[v] << '\n';
    }
    std::printf("labels written to %s\n", out.c_str());
  }

  if (want_metrics) {
    print_metrics();
  }
  if (!trace_path.empty()) {
    if (obs::Tracer::instance().stop()) {
      std::printf("trace written to %s (open in chrome://tracing or ui.perfetto.dev)\n",
                  trace_path.c_str());
    } else {
      std::fprintf(stderr, "warning: could not write trace to %s\n", trace_path.c_str());
    }
  }
  return 0;
}
