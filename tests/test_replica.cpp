// Tests for WAL-shipping replication (docs/REPLICATION.md): the kFetchCkpt /
// kFetchWal / kPromote wire round-trips and the tagged kHealth tail, the
// rotation/retirement-safe WalSegmentReader (regression: a reader iterating
// while the writer rotates must keep making progress), the service-level
// replica contract (submit sheds, apply_replicated feeds the live structure,
// promote flips to writable), the retention floor interaction (a slow
// replica pins segments; a dead one is released after replica_hold_ms), and
// an end-to-end bootstrap -> stream -> lag -> rebootstrap -> promote run
// against a live Server + Replicator pair.
#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "svc/checkpoint.h"
#include "svc/client.h"
#include "svc/protocol.h"
#include "svc/replica.h"
#include "svc/server.h"
#include "svc/service.h"
#include "svc/wal.h"

namespace ecl::svc {
namespace {

std::span<const std::uint8_t> payload_of(const std::vector<std::uint8_t>& frame) {
  return std::span<const std::uint8_t>(frame).subspan(4);
}

/// Polls `pred` every few milliseconds until it holds or `timeout_ms`
/// elapses. Replication is asynchronous by design, so every cross-process
/// visibility assertion goes through this.
bool wait_until(const std::function<bool()>& pred, int timeout_ms = 15000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return pred();
}

class ReplicaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/ecl_replica_test_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::string path(const std::string& name) const { return dir_ + "/" + name; }

  std::string dir_;
};

// ------------------------------------------------------------- protocol ----

TEST(ReplicaProtocol, FetchWalRequestRoundTrip) {
  Request in;
  in.type = MsgType::kFetchWal;
  in.id = 77;
  in.replica_id = 0xdeadbeefcafe1234ull;
  in.seq = 12;
  in.offset = 4096;
  in.max_bytes = 65536;
  std::vector<std::uint8_t> buf;
  encode_request(in, buf);

  Request out;
  ASSERT_TRUE(decode_request(payload_of(buf), out));
  EXPECT_EQ(out.type, MsgType::kFetchWal);
  EXPECT_EQ(out.id, 77u);
  EXPECT_EQ(out.replica_id, in.replica_id);
  EXPECT_EQ(out.seq, 12u);
  EXPECT_EQ(out.offset, 4096u);
  EXPECT_EQ(out.max_bytes, 65536u);

  // kFetchCkpt and kPromote carry empty bodies.
  for (const MsgType t : {MsgType::kFetchCkpt, MsgType::kPromote}) {
    Request req;
    req.type = t;
    req.id = 5;
    buf.clear();
    encode_request(req, buf);
    Request got;
    ASSERT_TRUE(decode_request(payload_of(buf), got)) << static_cast<int>(t);
    EXPECT_EQ(got.type, t);
    EXPECT_EQ(got.id, 5u);
  }
}

TEST(ReplicaProtocol, FetchCkptResponseRoundTrip) {
  Response in;
  in.type = MsgType::kFetchCkpt;
  in.id = 9;
  in.ckpt.has = true;
  in.ckpt.seq = 4;
  in.ckpt.wal_seq = 17;
  in.ckpt.image = {0x01, 0x02, 0xff, 0x00, 0x7f};
  std::vector<std::uint8_t> buf;
  encode_response(in, buf);

  Response out;
  ASSERT_TRUE(decode_response(payload_of(buf), out));
  EXPECT_EQ(out.type, MsgType::kFetchCkpt);
  EXPECT_TRUE(out.ckpt.has);
  EXPECT_EQ(out.ckpt.seq, 4u);
  EXPECT_EQ(out.ckpt.wal_seq, 17u);
  EXPECT_EQ(out.ckpt.image, in.ckpt.image);

  // No checkpoint on the primary: has == false, empty image.
  Response none;
  none.type = MsgType::kFetchCkpt;
  buf.clear();
  encode_response(none, buf);
  ASSERT_TRUE(decode_response(payload_of(buf), out));
  EXPECT_FALSE(out.ckpt.has);
  EXPECT_TRUE(out.ckpt.image.empty());
}

TEST(ReplicaProtocol, FetchWalResponseRoundTrip) {
  Response in;
  in.type = MsgType::kFetchWal;
  in.id = 3;
  in.wal.retired = true;
  in.wal.sealed = true;
  in.wal.seq = 8;
  in.wal.offset = 1024;
  in.wal.segment_bytes = 2048;
  in.wal.active_seq = 11;
  in.wal.data = {9, 8, 7, 6};
  std::vector<std::uint8_t> buf;
  encode_response(in, buf);

  Response out;
  ASSERT_TRUE(decode_response(payload_of(buf), out));
  EXPECT_EQ(out.type, MsgType::kFetchWal);
  EXPECT_TRUE(out.wal.retired);
  EXPECT_TRUE(out.wal.sealed);
  EXPECT_EQ(out.wal.seq, 8u);
  EXPECT_EQ(out.wal.offset, 1024u);
  EXPECT_EQ(out.wal.segment_bytes, 2048u);
  EXPECT_EQ(out.wal.active_seq, 11u);
  EXPECT_EQ(out.wal.data, in.wal.data);
}

TEST(ReplicaProtocol, HealthTaggedTailRoundTrip) {
  Response in;
  in.type = MsgType::kHealth;
  in.id = 1;
  in.health.wal_enabled = true;
  in.health.wal_records = 55;
  in.health.replica = true;
  in.health.replica_lag_seq = 3;
  in.health.replica_lag_ms = 450;
  in.health.replicas_connected = 2;
  std::vector<std::uint8_t> buf;
  encode_response(in, buf);

  Response out;
  ASSERT_TRUE(decode_response(payload_of(buf), out));
  EXPECT_TRUE(out.health.wal_enabled);     // fixed body still decodes
  EXPECT_EQ(out.health.wal_records, 55u);
  EXPECT_TRUE(out.health.replica);         // tagged tail decodes
  EXPECT_EQ(out.health.replica_lag_seq, 3u);
  EXPECT_EQ(out.health.replica_lag_ms, 450u);
  EXPECT_EQ(out.health.replicas_connected, 2u);

  // The fixed prefix must never move: the chaos harness's wire verifier
  // reads the first 93 payload bytes at fixed offsets. payload = u8 type +
  // u64 id + u8 status + 93-byte fixed body + tagged tail.
  ASSERT_GE(payload_of(buf).size(), 10u + 93u);
  // A truncated pre-replication body (no tagged tail) still decodes, with
  // the replication fields at their zero defaults.
  std::vector<std::uint8_t> legacy(buf.begin(), buf.begin() + 4 + 10 + 93);
  Response old;
  ASSERT_TRUE(decode_response(payload_of(legacy), old));
  EXPECT_FALSE(old.health.replica);
  EXPECT_EQ(old.health.replica_lag_seq, 0u);
}

TEST(ReplicaProtocol, NotPrimaryStatusRoundTrip) {
  Response in;
  in.type = MsgType::kIngest;
  in.id = 2;
  in.status = Status::kNotPrimary;
  std::vector<std::uint8_t> buf;
  encode_response(in, buf);
  Response out;
  ASSERT_TRUE(decode_response(payload_of(buf), out));
  EXPECT_EQ(out.status, Status::kNotPrimary);
  EXPECT_STREQ(status_name(Status::kNotPrimary), "not_primary");
}

// ---------------------------------------------------- WalSegmentReader ----

using SegmentReaderTest = ReplicaTest;

TEST_F(SegmentReaderTest, ReadsActiveSegmentAndClassifiesMissing) {
  SegmentedWal wal;
  std::string err;
  ASSERT_TRUE(wal.open(path("wal"), {}, 1, &err)) << err;
  ASSERT_TRUE(wal.append({{0, 1}, {1, 2}}));

  SegmentChunk c = WalSegmentReader::read(path("wal"), 1, 0, 1u << 20);
  ASSERT_TRUE(c.ok) << c.error;
  EXPECT_TRUE(c.exists);
  EXPECT_FALSE(c.retired);
  EXPECT_EQ(c.data.size(), c.segment_bytes);
  ASSERT_GE(c.data.size(), kWalMagicBytes);
  EXPECT_EQ(0, std::memcmp(c.data.data(), wal_magic(), kWalMagicBytes));

  // A segment the writer has not created yet is "not exists", not retired.
  c = WalSegmentReader::read(path("wal"), 99, 0, 1024);
  ASSERT_TRUE(c.ok) << c.error;
  EXPECT_FALSE(c.exists);
  EXPECT_FALSE(c.retired);
  wal.close();
}

// Regression (satellite 1): a reader iterating a segment must survive the
// writer rotating mid-iteration, and the bytes it accumulates across reads
// must equal the sealed segment exactly.
TEST_F(SegmentReaderTest, RotationWhileReaderIterates) {
  SegmentedWal wal;
  std::string err;
  ASSERT_TRUE(wal.open(path("wal"), {}, 1, &err)) << err;
  ASSERT_TRUE(wal.append({{0, 1}}));

  // First bounded read of segment 1 while it is still active.
  SegmentChunk first = WalSegmentReader::read(path("wal"), 1, 0, 8);
  ASSERT_TRUE(first.ok) << first.error;
  ASSERT_TRUE(first.exists);
  ASSERT_EQ(first.data.size(), 8u);  // bounded: just the magic

  // Writer rotates and keeps appending to segment 2 mid-iteration.
  ASSERT_TRUE(wal.rotate(&err)) << err;
  ASSERT_TRUE(wal.append({{2, 3}}));
  ASSERT_EQ(wal.active_seq(), 2u);

  // The reader continues from its old offset; accumulated bytes must equal
  // the sealed file byte for byte.
  std::vector<std::uint8_t> acc = first.data;
  while (true) {
    SegmentChunk c = WalSegmentReader::read(path("wal"), 1, acc.size(), 16);
    ASSERT_TRUE(c.ok) << c.error;
    ASSERT_TRUE(c.exists);  // sealed, not retired: still readable
    if (c.data.empty()) {
      EXPECT_EQ(acc.size(), c.segment_bytes);
      break;
    }
    acc.insert(acc.end(), c.data.begin(), c.data.end());
  }
  const auto files = list_numbered_files(path("wal"));
  ASSERT_EQ(files.size(), 2u);
  EXPECT_EQ(acc.size(), files[0].bytes);

  // The replayed segment parses: magic + one intact record for edge {0,1}.
  const auto replay = WriteAheadLog::replay_and_truncate(files[0].path,
                                                         /*truncate_tail=*/false);
  ASSERT_TRUE(replay.ok) << replay.error;
  ASSERT_EQ(replay.edges.size(), 1u);
  EXPECT_EQ(replay.edges[0], (Edge{0, 1}));
  wal.close();
}

TEST_F(SegmentReaderTest, RetiredSegmentClassifiedForRebootstrap) {
  SegmentedWal wal;
  std::string err;
  ASSERT_TRUE(wal.open(path("wal"), {}, 1, &err)) << err;
  ASSERT_TRUE(wal.append({{0, 1}}));
  ASSERT_TRUE(wal.rotate(&err)) << err;
  ASSERT_TRUE(wal.append({{1, 2}}));
  ASSERT_TRUE(wal.rotate(&err)) << err;
  ASSERT_EQ(wal.retire_through(2), 2u);

  SegmentChunk c = WalSegmentReader::read(path("wal"), 1, 0, 1024);
  ASSERT_TRUE(c.ok) << c.error;
  EXPECT_FALSE(c.exists);
  EXPECT_TRUE(c.retired);  // a higher-numbered segment exists: re-bootstrap
  wal.close();
}

// ------------------------------------------------- service-level replica ----

using ReplicaServiceTest = ReplicaTest;

TEST_F(ReplicaServiceTest, ReplicaShedsSubmitUntilPromoted) {
  ServiceOptions opts;
  opts.replica = true;
  opts.wal_path = path("wal");
  opts.checkpoint_path = path("ckpt");
  ConnectivityService svc(16, opts);
  EXPECT_TRUE(svc.is_replica());
  EXPECT_TRUE(svc.health().replica);
  EXPECT_EQ(svc.submit({{0, 1}}), Admission::kShed);

  // Replicated records flow through the normal apply path.
  svc.apply_replicated({{0, 1}, {1, 2}});
  EXPECT_TRUE(wait_until([&] { return svc.connected(0, 2, ReadMode::kFresh); }));
  EXPECT_EQ(svc.stats().applied_edges, 2u);

  svc.set_replication_lag(5, 1234);
  const ServiceHealth h = svc.health();
  EXPECT_EQ(h.replica_lag_seq, 5u);
  EXPECT_EQ(h.replica_lag_ms, 1234u);

  // Promotion: submit starts accepting, the WAL opens for appending, and
  // the role flips in health. Idempotent on a second call.
  std::string err;
  ASSERT_TRUE(svc.promote(&err)) << err;
  EXPECT_FALSE(svc.is_replica());
  ASSERT_TRUE(svc.promote(&err)) << err;
  EXPECT_EQ(svc.submit({{2, 3}}), Admission::kAccepted);
  svc.flush();
  EXPECT_TRUE(svc.connected(0, 3, ReadMode::kFresh));
  EXPECT_GE(svc.health().wal_records, 1u);
  svc.stop();

  // The promoted node's WAL is a real one: a restart replays it.
  ServiceOptions ropts;
  ropts.wal_path = path("wal");
  ropts.checkpoint_path = path("ckpt");
  ConnectivityService restarted(16, ropts);
  EXPECT_TRUE(restarted.connected(2, 3, ReadMode::kFresh));
  restarted.stop();
}

// Satellite 4: retention x replica floor. A live replica mid-fetch on an
// old segment pins it past checkpoint retirement; once it goes dead for
// longer than replica_hold_ms the floor releases and the next checkpoint
// retires the segment.
TEST_F(ReplicaServiceTest, SlowReplicaPinsSegmentsDeadReplicaReleases) {
  ServiceOptions opts;
  opts.wal_path = path("wal");
  opts.checkpoint_path = path("ckpt");
  opts.checkpoint_interval_ms = 0;  // explicit checkpoints only
  opts.compact_interval_ms = 5;
  opts.replica_hold_ms = 150;
  ConnectivityService svc(64, opts);

  // A replica fetching segment 1 registers in the retention floor.
  const WalChunk c = svc.fetch_wal_chunk(/*replica_id=*/42, 1, 0, 4096);
  ASSERT_TRUE(c.ok);

  // Two checkpoint cuts: without a pinned replica, retention would retire
  // everything the older checkpoint covers.
  ASSERT_EQ(svc.submit({{0, 1}}), Admission::kAccepted);
  ASSERT_TRUE(svc.checkpoint_now());
  ASSERT_EQ(svc.submit({{1, 2}}), Admission::kAccepted);
  ASSERT_TRUE(svc.checkpoint_now());

  auto files = list_numbered_files(path("wal"));
  ASSERT_FALSE(files.empty());
  EXPECT_EQ(files.front().seq, 1u) << "pinned segment 1 must survive";

  // Kill the replica (stop fetching) and wait past the hold; the next
  // checkpoint prunes it and retires the backlog.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  ASSERT_EQ(svc.submit({{2, 3}}), Admission::kAccepted);
  ASSERT_TRUE(svc.checkpoint_now());

  files = list_numbered_files(path("wal"));
  ASSERT_FALSE(files.empty());
  EXPECT_GT(files.front().seq, 1u) << "dead replica must not wedge retention";
  svc.stop();
}

TEST_F(ReplicaServiceTest, FetchCheckpointImageServesNewestValid) {
  ServiceOptions opts;
  opts.wal_path = path("wal");
  opts.checkpoint_path = path("ckpt");
  opts.checkpoint_interval_ms = 0;
  ConnectivityService svc(32, opts);

  EXPECT_FALSE(svc.fetch_checkpoint_image().has);  // none yet

  ASSERT_EQ(svc.submit({{0, 1}, {1, 2}}), Admission::kAccepted);
  ASSERT_TRUE(svc.checkpoint_now());
  const CkptImage img = svc.fetch_checkpoint_image();
  ASSERT_TRUE(img.has);
  ASSERT_FALSE(img.image.empty());
  EXPECT_GE(img.wal_seq, 1u);
  svc.stop();

  // The image is a verbatim checkpoint file: installing it elsewhere and
  // reading it back yields the labels.
  const std::string installed = numbered_path(path("ckpt2"), img.seq);
  std::FILE* f = std::fopen(installed.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(img.image.data(), 1, img.image.size(), f),
            img.image.size());
  std::fclose(f);
  CheckpointData data;
  std::string err;
  ASSERT_TRUE(CheckpointStore::read_file(installed, &data, &err)) << err;
  EXPECT_EQ(data.n, 32u);
  EXPECT_EQ(data.wal_seq, img.wal_seq);
  EXPECT_EQ(data.labels[1], data.labels[2]);
}

// --------------------------------------------------------- end to end ----

class ReplicationE2ETest : public ReplicaTest {
 protected:
  void SetUp() override {
    ReplicaTest::SetUp();
    ServiceOptions popts;
    popts.wal_path = path("p/wal");
    popts.checkpoint_path = path("p/ckpt");
    popts.checkpoint_interval_ms = 0;  // test drives checkpoints explicitly
    popts.compact_interval_ms = 5;
    popts.wal_segment_bytes = 1024;  // rotate often: exercise sealed advance
    popts.replica_hold_ms = 100;
    ASSERT_TRUE(std::filesystem::create_directories(path("p")));
    ASSERT_TRUE(std::filesystem::create_directories(path("r")));
    primary_ = std::make_unique<ConnectivityService>(kVertices, popts);
    ServerOptions sopts;
    sopts.unix_path = path("primary.sock");
    server_ = std::make_unique<Server>(*primary_, sopts);
    std::string err;
    ASSERT_TRUE(server_->start(&err)) << err;

    ropts_.unix_path = sopts.unix_path;
    ropts_.wal_path = path("r/wal");
    ropts_.checkpoint_path = path("r/ckpt");
    ropts_.fetch_interval_ms = 10;
  }

  void TearDown() override {
    if (replicator_) replicator_->stop();
    if (replica_server_) replica_server_->stop();
    if (replica_) replica_->stop();
    if (server_) server_->stop();
    if (primary_) primary_->stop();
    ReplicaTest::TearDown();
  }

  /// Bootstraps + constructs + starts the replica stack (service, optional
  /// server on its own socket, replicator).
  void start_replica() {
    std::string err;
    ASSERT_TRUE(Replicator::bootstrap(ropts_, &err)) << err;
    ServiceOptions o;
    o.replica = true;
    o.wal_path = ropts_.wal_path;
    o.checkpoint_path = ropts_.checkpoint_path;
    o.compact_interval_ms = 5;
    replica_ = std::make_unique<ConnectivityService>(kVertices, o);
    replicator_ = std::make_unique<Replicator>(*replica_, ropts_);
    ServerOptions so;
    so.unix_path = path("replica.sock");
    // Same hook the daemon installs: stop the stream before promoting.
    so.promote = [this] {
      replicator_->stop();
      return replica_->promote(nullptr);
    };
    replica_server_ = std::make_unique<Server>(*replica_, so);
    ASSERT_TRUE(replica_server_->start(&err)) << err;
    ASSERT_TRUE(replicator_->start(&err)) << err;
  }

  static constexpr vertex_t kVertices = 512;
  std::unique_ptr<ConnectivityService> primary_;
  std::unique_ptr<Server> server_;
  std::unique_ptr<ConnectivityService> replica_;
  std::unique_ptr<Replicator> replicator_;
  std::unique_ptr<Server> replica_server_;
  ReplicatorOptions ropts_;
};

TEST_F(ReplicationE2ETest, BootstrapStreamLagAndPromote) {
  std::string err;
  auto pc = Client::connect_unix(path("primary.sock"), &err);
  ASSERT_NE(pc, nullptr) << err;

  // Seed the primary before the replica exists: a checkpoint plus WAL tail,
  // so bootstrap exercises the checkpoint-image path.
  ASSERT_EQ(pc->ingest({{0, 1}, {1, 2}}), Status::kOk);
  ASSERT_TRUE(primary_->checkpoint_now());
  ASSERT_EQ(pc->ingest({{2, 3}}), Status::kOk);

  start_replica();

  // Everything acked before the replica joined becomes visible: checkpoint
  // labels + streamed WAL tail.
  ASSERT_TRUE(wait_until(
      [&] { return replica_->connected(0, 3, ReadMode::kFresh); }))
      << "replica never caught up with pre-join state";

  // Live streaming: new primary writes show up with bounded, observable lag.
  ASSERT_EQ(pc->ingest({{3, 4}, {4, 5}}), Status::kOk);
  ASSERT_TRUE(wait_until(
      [&] { return replica_->connected(0, 5, ReadMode::kFresh); }));
  ASSERT_TRUE(wait_until([&] { return replica_->health().replica_lag_seq == 0; }));

  // The primary sees exactly one registered replica; replica reads serve
  // through its own server while writes bounce with kNotPrimary.
  ASSERT_TRUE(wait_until(
      [&] { return primary_->health().replicas_connected == 1; }));
  auto rc = Client::connect_unix(path("replica.sock"), &err);
  ASSERT_NE(rc, nullptr) << err;
  Status qst = Status::kOk;
  EXPECT_TRUE(rc->connected(0, 5, ReadMode::kFresh, &qst));
  EXPECT_EQ(qst, Status::kOk);
  EXPECT_EQ(rc->ingest({{9, 10}}), Status::kNotPrimary);
  ServiceHealth rh{};
  ASSERT_TRUE(rc->health(rh));
  EXPECT_TRUE(rh.replica);

  // Failover: promote over the wire (the hook stops the Replicator first).
  Status st = Status::kOk;
  ASSERT_TRUE(rc->promote(&st)) << status_name(st);
  EXPECT_EQ(rc->ingest({{9, 10}}), Status::kOk);
  ASSERT_TRUE(wait_until(
      [&] { return replica_->connected(9, 10, ReadMode::kFresh); }));
  ASSERT_TRUE(rc->health(rh));
  EXPECT_FALSE(rh.replica);
  // Everything replicated before the failover survived the promotion.
  EXPECT_TRUE(replica_->connected(0, 5, ReadMode::kFresh));
}

TEST_F(ReplicationE2ETest, FallenBehindReplicaRebootstraps) {
  std::string err;
  auto pc = Client::connect_unix(path("primary.sock"), &err);
  ASSERT_NE(pc, nullptr) << err;

  ASSERT_EQ(pc->ingest({{0, 1}}), Status::kOk);
  start_replica();
  ASSERT_TRUE(wait_until(
      [&] { return replica_->connected(0, 1, ReadMode::kFresh); }));

  // Stop streaming, then push the primary far past retention: enough bytes
  // to rotate several 1 KiB segments, two checkpoint cuts, and a wait past
  // replica_hold_ms so the dead replica stops pinning the floor.
  replicator_->stop();
  std::vector<Edge> chain;
  for (vertex_t v = 1; v + 1 < 300; ++v) chain.push_back({v, v + 1});
  ASSERT_EQ(pc->ingest(chain), Status::kOk);
  ASSERT_TRUE(primary_->checkpoint_now());
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  ASSERT_EQ(pc->ingest({{299, 300}, {300, 301}}), Status::kOk);
  ASSERT_TRUE(primary_->checkpoint_now());
  const auto files = list_numbered_files(path("p/wal"));
  ASSERT_FALSE(files.empty());
  ASSERT_GT(files.front().seq, 1u) << "primary must have retired old segments";

  // Restarting the stream (stop() is terminal, so a fresh Replicator — the
  // same shape as a replica process restart) hits `retired` and
  // re-bootstraps from a fresh checkpoint; the replica converges.
  replicator_ = std::make_unique<Replicator>(*replica_, ropts_);
  ASSERT_TRUE(replicator_->start(&err)) << err;
  ASSERT_TRUE(wait_until(
      [&] { return replica_->connected(0, 301, ReadMode::kFresh); }))
      << "replica never re-bootstrapped past retention";
  EXPECT_GE(replicator_->rebootstraps(), 1u);
}

TEST_F(ReplicationE2ETest, ReplicaRestartResumesFromLocalMirror) {
  std::string err;
  auto pc = Client::connect_unix(path("primary.sock"), &err);
  ASSERT_NE(pc, nullptr) << err;
  ASSERT_EQ(pc->ingest({{0, 1}, {1, 2}}), Status::kOk);

  start_replica();
  ASSERT_TRUE(wait_until(
      [&] { return replica_->connected(0, 2, ReadMode::kFresh); }));

  // Tear the whole replica stack down (clean stop, mirror stays on disk)
  // and bring it back: recovery runs off the local mirror, then streaming
  // resumes where it left off.
  replicator_->stop();
  replica_server_->stop();
  replica_->stop();
  replicator_.reset();
  replica_server_.reset();
  replica_.reset();

  ASSERT_EQ(pc->ingest({{2, 3}}), Status::kOk);
  start_replica();
  EXPECT_TRUE(replica_->connected(0, 2, ReadMode::kFresh))
      << "local mirror replay must restore pre-restart state";
  ASSERT_TRUE(wait_until(
      [&] { return replica_->connected(0, 3, ReadMode::kFresh); }));
}

}  // namespace
}  // namespace ecl::svc
