// Unit tests for src/common: statistics, tables, CLI parsing, RNG.
#include <gtest/gtest.h>

#include <array>
#include <set>
#include <cmath>
#include <sstream>

#include "common/cli.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"

namespace ecl {
namespace {

TEST(Stats, MedianOddSample) {
  const std::array<double, 3> xs{3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(median(xs), 2.0);
}

TEST(Stats, MedianEvenSampleAveragesMiddlePair) {
  const std::array<double, 4> xs{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(median(xs), 2.5);
}

TEST(Stats, MedianSingleton) {
  const std::array<double, 1> xs{7.5};
  EXPECT_DOUBLE_EQ(median(xs), 7.5);
}

TEST(Stats, MedianEmptyIsZero) {
  EXPECT_DOUBLE_EQ(median({}), 0.0);
}

TEST(Stats, GeometricMeanOfReciprocalsIsOne) {
  const std::array<double, 2> xs{4.0, 0.25};
  EXPECT_NEAR(geometric_mean(xs), 1.0, 1e-12);
}

TEST(Stats, GeometricMeanMatchesHandComputation) {
  const std::array<double, 3> xs{1.0, 2.0, 4.0};
  EXPECT_NEAR(geometric_mean(xs), 2.0, 1e-12);
}

TEST(Stats, MeanAndStddev) {
  const std::array<double, 4> xs{2.0, 4.0, 4.0, 6.0};
  EXPECT_DOUBLE_EQ(mean(xs), 4.0);
  EXPECT_NEAR(stddev(xs), std::sqrt(2.0), 1e-12);
}

TEST(Stats, MinMax) {
  const std::array<double, 3> xs{5.0, -1.0, 3.0};
  EXPECT_DOUBLE_EQ(minimum(xs), -1.0);
  EXPECT_DOUBLE_EQ(maximum(xs), 5.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::array<double, 5> xs{10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 30.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 50.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25), 20.0);
}

TEST(Stats, MedianRuntimeRunsRequestedRepetitions) {
  int calls = 0;
  const double ms = median_runtime_ms([&] { ++calls; }, 5);
  EXPECT_EQ(calls, 5);
  EXPECT_GE(ms, 0.0);
}

TEST(Table, MarkdownContainsHeaderAndRows) {
  Table t("Demo");
  t.set_header({"graph", "ms"});
  t.add_row({"grid", "1.5"});
  std::ostringstream os;
  t.write_markdown(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("Demo"), std::string::npos);
  EXPECT_NE(out.find("graph"), std::string::npos);
  EXPECT_NE(out.find("grid"), std::string::npos);
}

TEST(Table, CsvEscapesCommasAndQuotes) {
  Table t("x");
  t.set_header({"a", "b"});
  t.add_row({"va,lue", "say \"hi\""});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "a,b\n\"va,lue\",\"say \"\"hi\"\"\"\n");
}

TEST(Table, FormatCount) {
  EXPECT_EQ(Table::fmt_count(0), "0");
  EXPECT_EQ(Table::fmt_count(999), "999");
  EXPECT_EQ(Table::fmt_count(1000), "1,000");
  EXPECT_EQ(Table::fmt_count(4886816), "4,886,816");
  EXPECT_EQ(Table::fmt_count(100663202), "100,663,202");
}

TEST(Table, FormatFixedPrecision) {
  EXPECT_EQ(Table::fmt(1.849, 2), "1.85");
  EXPECT_EQ(Table::fmt(2.0, 1), "2.0");
}

TEST(Cli, ParsesFlagsAndPositionals) {
  const char* argv[] = {"prog", "--graph=grid", "--scale=2", "--verbose", "pos1"};
  CliArgs args(5, argv);
  EXPECT_EQ(args.get("graph", ""), "grid");
  EXPECT_EQ(args.get_int("scale", 0), 2);
  EXPECT_TRUE(args.has("verbose"));
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "pos1");
}

TEST(Cli, FallbacksOnMissingOrMalformed) {
  const char* argv[] = {"prog", "--n=abc"};
  CliArgs args(2, argv);
  EXPECT_EQ(args.get_int("n", 7), 7);
  EXPECT_EQ(args.get_int("absent", 9), 9);
  EXPECT_DOUBLE_EQ(args.get_double("absent", 1.5), 1.5);
  EXPECT_FALSE(args.has("absent"));
}

TEST(Cli, ReportsUnusedFlags) {
  const char* argv[] = {"prog", "--used=1", "--typo=2"};
  CliArgs args(3, argv);
  (void)args.get("used", "");
  const auto unused = args.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(Rng, DeterministicForSameSeed) {
  Xoshiro256 a(123);
  Xoshiro256 b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, BoundedStaysInRange) {
  Xoshiro256 rng(99);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 3000; ++i) {
    const auto x = rng.bounded(10);
    EXPECT_LT(x, 10u);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 10u);  // all values reachable
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256 rng(5);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

}  // namespace
}  // namespace ecl
