// Tests for the ecl::obs observability layer: metrics registry semantics
// (including under OpenMP threads), trace well-formedness, run reports, and
// the invariant that instrumentation never changes algorithm results.
#include <gtest/gtest.h>
#include <omp.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/ecl_cc.h"
#include "core/engine.h"
#include "graph/generators.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"

namespace ecl {
namespace {

// ---------------------------------------------------------------------------
// A minimal recursive-descent JSON well-formedness checker, so the trace and
// report tests validate real syntax instead of grepping for substrings.
class JsonChecker {
 public:
  explicit JsonChecker(std::string_view s) : s_(s) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // bare control char
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          if (pos_ + 4 >= s_.size()) return false;
          for (int i = 1; i <= 4; ++i) {
            if (!std::isxdigit(static_cast<unsigned char>(s_[pos_ + i]))) return false;
          }
          pos_ += 4;
        } else if (std::string_view("\"\\/bfnrt").find(e) == std::string_view::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
                                s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

  std::string_view s_;
  std::size_t pos_ = 0;
};

std::string temp_path(const std::string& leaf) {
  return (std::filesystem::temp_directory_path() / leaf).string();
}

// ---------------------------------------------------------------------------
// JsonWriter

TEST(JsonWriter, NestedStructureIsValid) {
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.begin_object();
  w.key("a");
  w.value(std::uint64_t{42});
  w.key("b");
  w.begin_array();
  w.value(1.5);
  w.value(std::string_view("x"));
  w.value(true);
  w.null();
  w.begin_object();
  w.end_object();
  w.end_array();
  w.key("c");
  w.value(std::int64_t{-7});
  w.end_object();
  const std::string out = os.str();
  EXPECT_TRUE(JsonChecker(out).valid()) << out;
  EXPECT_EQ(out, R"({"a":42,"b":[1.5,"x",true,null,{}],"c":-7})");
}

TEST(JsonWriter, EscapesControlAndQuoteCharacters) {
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.begin_object();
  w.key("k\"ey");
  w.value(std::string_view("a\\b\n\t\x01z"));
  w.end_object();
  const std::string out = os.str();
  EXPECT_TRUE(JsonChecker(out).valid()) << out;
  EXPECT_NE(out.find(R"(\n)"), std::string::npos);
  EXPECT_NE(out.find(R"(\u0001)"), std::string::npos);
  EXPECT_NE(out.find(R"(k\"ey)"), std::string::npos);
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.begin_array();
  w.value(std::numeric_limits<double>::infinity());
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.end_array();
  EXPECT_EQ(os.str(), "[null,null]");
}

// ---------------------------------------------------------------------------
// Metrics

TEST(ObsCounter, AddAndReset) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsCounter, ConcurrentAddsAreExact) {
  obs::Counter c;
  constexpr int kPerThread = 100000;
  const int threads = std::max(2, omp_get_max_threads());
#pragma omp parallel num_threads(threads)
  {
#pragma omp for
    for (int i = 0; i < threads * kPerThread; ++i) {
      c.add();
    }
  }
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(threads) * kPerThread);
}

TEST(ObsGauge, SetOverwrites) {
  obs::Gauge g;
  g.set(1.5);
  g.set(-2.0);
  EXPECT_DOUBLE_EQ(g.value(), -2.0);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(ObsHistogram, BucketSemantics) {
  obs::Histogram h({1, 2, 4});
  // Bucket i counts samples <= bounds[i] not claimed by an earlier bucket;
  // the implicit overflow bucket (UINT64_MAX) catches the rest.
  for (const std::uint64_t s : {0u, 1u, 2u, 3u, 4u, 5u, 100u}) h.record(s);
  EXPECT_EQ(h.count(), 7u);
  EXPECT_EQ(h.sum(), 0u + 1 + 2 + 3 + 4 + 5 + 100);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_DOUBLE_EQ(h.average(), 115.0 / 7.0);
  EXPECT_EQ(h.bounds(), (std::vector<std::uint64_t>{1, 2, 4, ~std::uint64_t{0}}));
  EXPECT_EQ(h.bucket_counts(), (std::vector<std::uint64_t>{2, 1, 2, 2}));
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.bucket_counts(), (std::vector<std::uint64_t>{0, 0, 0, 0}));
}

TEST(ObsHistogram, Pow2Bounds) {
  EXPECT_EQ(obs::Histogram::pow2_bounds(4), (std::vector<std::uint64_t>{1, 2, 4, 8}));
}

TEST(ObsHistogram, ConcurrentRecordsPreserveCountSumMax) {
  obs::Histogram h(obs::Histogram::pow2_bounds(10));
  constexpr int kSamples = 200000;
#pragma omp parallel for
  for (int i = 0; i < kSamples; ++i) {
    h.record(static_cast<std::uint64_t>(i % 1000));
  }
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kSamples));
  EXPECT_EQ(h.max(), 999u);
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t b : h.bucket_counts()) bucket_total += b;
  EXPECT_EQ(bucket_total, h.count());
}

TEST(ObsHistogram, PercentileOfEmptyIsZero) {
  obs::Histogram h({1, 2, 4});
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.99), 0.0);
}

TEST(ObsHistogram, PercentileInterpolatesWithinBuckets) {
  obs::Histogram h({10, 20});
  for (int i = 0; i < 10; ++i) h.record(5);   // bucket (0, 10]
  for (int i = 0; i < 10; ++i) h.record(15);  // bucket (10, 20]
  // The 50th percentile sits exactly at the first bucket's upper edge;
  // the 75th is halfway through the second bucket.
  EXPECT_DOUBLE_EQ(h.percentile(0.50), 10.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.75), 15.0);
  // Estimates never exceed the observed maximum, even at q=1.
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 15.0);
}

TEST(ObsHistogram, PercentilesAreMonotoneAndBounded) {
  obs::Histogram h(obs::Histogram::pow2_bounds(20));
  for (std::uint64_t i = 1; i <= 10000; ++i) h.record(i);
  const double p50 = h.percentile(0.50);
  const double p95 = h.percentile(0.95);
  const double p99 = h.percentile(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, static_cast<double>(h.max()));
  // With pow2 buckets the estimate is within one bucket of the truth.
  EXPECT_GE(p50, 4096.0);   // true p50 = 5000, bucket (4096, 8192]
  EXPECT_LE(p50, 8192.0);
  EXPECT_GE(p99, 8192.0);   // true p99 = 9900, bucket (8192, 16384]
}

TEST(ObsHistogram, OverflowBucketPercentileUsesObservedMax) {
  obs::Histogram h({10});
  h.record(1000);  // lands in the unbounded overflow bucket
  h.record(2000);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 2000.0);
  EXPECT_LE(h.percentile(0.5), 2000.0);
}

TEST(ObsRegistry, SnapshotCarriesPercentiles) {
  obs::Histogram& h =
      obs::registry().histogram("test.obs.percentile_snapshot", {10, 20, 40});
  h.reset();
  for (int i = 0; i < 100; ++i) h.record(static_cast<std::uint64_t>(i % 40) + 1);
  bool found = false;
  for (const auto& m : obs::registry().snapshot()) {
    if (m.name != "test.obs.percentile_snapshot") continue;
    found = true;
    EXPECT_EQ(m.kind, obs::MetricSnapshot::Kind::kHistogram);
    EXPECT_GT(m.p50, 0.0);
    EXPECT_LE(m.p50, m.p95);
    EXPECT_LE(m.p95, m.p99);
    EXPECT_LE(m.p99, 40.0);
  }
  EXPECT_TRUE(found);
}

TEST(ObsRegistry, LookupsReturnSameInstance) {
  obs::Counter& a = obs::registry().counter("test.obs.same_instance");
  obs::Counter& b = obs::registry().counter("test.obs.same_instance");
  EXPECT_EQ(&a, &b);
  obs::Histogram& h1 = obs::registry().histogram("test.obs.hist", {1, 2});
  // Bounds of a later lookup are ignored; the first registration wins.
  obs::Histogram& h2 = obs::registry().histogram("test.obs.hist", {7});
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bounds(), (std::vector<std::uint64_t>{1, 2, ~std::uint64_t{0}}));
}

TEST(ObsRegistry, SnapshotIsSortedAndTyped) {
  obs::registry().counter("test.snap.counter").add(3);
  obs::registry().gauge("test.snap.gauge").set(2.5);
  obs::registry().histogram("test.snap.hist", {10}).record(4);
  const auto snap = obs::registry().snapshot();
  ASSERT_GE(snap.size(), 3u);
  for (std::size_t i = 1; i < snap.size(); ++i) {
    EXPECT_LT(snap[i - 1].name, snap[i].name);
  }
  bool saw_counter = false, saw_gauge = false, saw_hist = false;
  for (const auto& m : snap) {
    if (m.name == "test.snap.counter") {
      saw_counter = true;
      EXPECT_EQ(m.kind, obs::MetricSnapshot::Kind::kCounter);
      EXPECT_GE(m.count, 3u);
    } else if (m.name == "test.snap.gauge") {
      saw_gauge = true;
      EXPECT_EQ(m.kind, obs::MetricSnapshot::Kind::kGauge);
      EXPECT_DOUBLE_EQ(m.value, 2.5);
    } else if (m.name == "test.snap.hist") {
      saw_hist = true;
      EXPECT_EQ(m.kind, obs::MetricSnapshot::Kind::kHistogram);
      ASSERT_FALSE(m.buckets.empty());
      EXPECT_EQ(m.buckets.back().first, ~std::uint64_t{0});
    }
  }
  EXPECT_TRUE(saw_counter && saw_gauge && saw_hist);
}

TEST(ObsMacros, RecordThroughRegistry) {
  obs::registry().counter("test.macro.counter").reset();
  for (int i = 0; i < 5; ++i) {
    ECL_OBS_COUNTER_ADD("test.macro.counter", 2);
  }
  ECL_OBS_GAUGE_SET("test.macro.gauge", 7.0);
#if defined(ECL_OBS_DISABLED)
  EXPECT_EQ(obs::registry().counter("test.macro.counter").value(), 0u);
#else
  EXPECT_EQ(obs::registry().counter("test.macro.counter").value(), 10u);
  EXPECT_DOUBLE_EQ(obs::registry().gauge("test.macro.gauge").value(), 7.0);
#endif
}

// ---------------------------------------------------------------------------
// Tracing

TEST(ObsTrace, SpansAreInactiveWhenTracerDisabled) {
  ASSERT_FALSE(obs::Tracer::instance().enabled());
  const std::size_t before = obs::Tracer::instance().event_count();
  {
    obs::Span span("test.disabled", "test");
    EXPECT_FALSE(span.active());
    span.arg("k", 1.0);  // must be a safe no-op
  }
  EXPECT_EQ(obs::Tracer::instance().event_count(), before);
}

TEST(ObsTrace, WritesWellFormedBalancedTrace) {
  auto& tracer = obs::Tracer::instance();
  const std::string path = temp_path("ecl_obs_test_trace.json");
  ASSERT_TRUE(tracer.start(path));
  {
    obs::Span outer("test.outer", "test-cat");
    outer.arg("graph", std::string_view("needs \"escaping\""));
    outer.arg("n", std::uint64_t{42});
    {
      obs::Span inner("test.inner", "test-cat");
      inner.arg("rate", 0.5);
    }
  }
  EXPECT_EQ(tracer.event_count(), 2u);

  std::ostringstream os;
  tracer.write(os);
  const std::string json = os.str();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("test.outer"), std::string::npos);
  EXPECT_NE(json.find("test.inner"), std::string::npos);
  // Complete events only: every event carries both a ts and a dur, so the
  // trace is balanced by construction.
  std::size_t ts = 0, dur = 0;
  for (std::size_t p = json.find("\"ts\""); p != std::string::npos;
       p = json.find("\"ts\"", p + 1)) {
    ++ts;
  }
  for (std::size_t p = json.find("\"dur\""); p != std::string::npos;
       p = json.find("\"dur\"", p + 1)) {
    ++dur;
  }
  EXPECT_EQ(ts, 2u);
  EXPECT_EQ(dur, 2u);

  ASSERT_TRUE(tracer.stop());
  EXPECT_FALSE(tracer.enabled());
  std::ifstream in(path);
  std::stringstream file;
  file << in.rdbuf();
  EXPECT_TRUE(JsonChecker(file.str()).valid());
  std::filesystem::remove(path);
}

TEST(ObsTrace, StopCreatesParentDirectories) {
  auto& tracer = obs::Tracer::instance();
  const std::string dir = temp_path("ecl_obs_trace_nested");
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(tracer.start(dir + "/deep/trace.json"));
  { obs::Span span("test.nested", "test"); }
  ASSERT_TRUE(tracer.stop());
  EXPECT_TRUE(std::filesystem::exists(dir + "/deep/trace.json"));
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Instrumentation must not change results.

TEST(ObsInstrumentation, LabelsUnchangedByRecorders) {
  const std::uint64_t seeds[] = {1, 7, 42};
  for (const std::uint64_t seed : seeds) {
    const Graph g = gen_rmat(10, 8, RmatParams{}, seed);
    const auto serial = ecl_cc_serial(g);
    const auto omp = ecl_cc_omp(g);
    // The path-length run attaches the full recorder + registry histogram to
    // the same algorithm; its labels must match the production runs'.
    (void)ecl_cc_path_lengths(g);
    const auto serial_again = ecl_cc_serial(g);
    EXPECT_EQ(serial, serial_again) << "seed " << seed;
    EXPECT_EQ(serial, omp) << "seed " << seed;
  }
}

TEST(ObsInstrumentation, PathLengthReportMatchesManualRecorder) {
  const Graph g = gen_small_world(2000, 6, 0.1, 99);
  const EclOptions opts;

  // Legacy-style manual computation: init + instrumented compute phase.
  std::vector<vertex_t> parent(g.num_vertices());
  SerialParentOps ops(parent.data());
  for (vertex_t v = 0; v < g.num_vertices(); ++v) {
    parent[v] = detail::initial_parent(g, opts.init, v);
  }
  PathLengthRecorder rec;
  for (vertex_t v = 0; v < g.num_vertices(); ++v) {
    detail::compute_vertex(g, opts.jump, v, ops, &rec);
  }

  const PathLengthReport report = ecl_cc_path_lengths(g, opts);
  EXPECT_EQ(report.num_finds, rec.num_finds);
  EXPECT_EQ(report.maximum_length, rec.max_length);
  EXPECT_DOUBLE_EQ(report.average_length, rec.average());
}

TEST(ObsInstrumentation, ComputeCountersPopulated) {
  obs::registry().reset();
  const Graph g = gen_kronecker(12, 12, 5);
  (void)ecl_cc_omp(g);
#if defined(ECL_OBS_DISABLED)
  EXPECT_EQ(obs::registry().counter("ecl.find.finds").value(), 0u);
#else
  // One find per vertex plus one per processed (v > u) edge.
  EXPECT_GT(obs::registry().counter("ecl.find.finds").value(), g.num_vertices());
  // Kronecker graphs leave many vertices without a smaller neighbor, so the
  // compute phase must perform actual hooks.
  EXPECT_GT(obs::registry().counter("ecl.hook.hooks_performed").value(), 0u);
#endif
}

// ---------------------------------------------------------------------------
// Run reports

TEST(ObsReport, WriteIsValidJsonWithCellsAndMetrics) {
  obs::RunReport report;
  report.set_bench_name("unit_test_bench");
  report.set_config(0.5, 3);
  report.add_cell("graphA", "code1", {1.0, 2.0, 3.0});
  report.add_cell("graphA", "code2", {2.5});
  EXPECT_EQ(report.cell_count(), 2u);

  obs::registry().counter("test.report.counter").add(11);
  obs::registry().histogram("test.report.latency", {10, 100}).record(42);
  std::ostringstream os;
  report.write(os);
  const std::string json = os.str();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  // Histogram metrics carry tail-latency percentiles in the report.
  EXPECT_NE(json.find("test.report.latency"), std::string::npos);
  EXPECT_NE(json.find("\"p50\":"), std::string::npos);
  EXPECT_NE(json.find("\"p95\":"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
  EXPECT_NE(json.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(json.find("unit_test_bench"), std::string::npos);
  EXPECT_NE(json.find("graphA"), std::string::npos);
  EXPECT_NE(json.find("\"min_ms\":1"), std::string::npos);
  EXPECT_NE(json.find("\"median_ms\":2"), std::string::npos);
  EXPECT_NE(json.find("\"max_ms\":3"), std::string::npos);
  EXPECT_NE(json.find("test.report.counter"), std::string::npos);

  report.clear();
  EXPECT_EQ(report.cell_count(), 0u);
}

TEST(ObsReport, WriteFileCreatesParentDirectories) {
  obs::RunReport report;
  report.set_bench_name("nested_dir_bench");
  report.add_cell("g", "c", {1.0});
  const std::string dir = temp_path("ecl_obs_report_nested");
  std::filesystem::remove_all(dir);
  const std::string path = dir + "/a/b/report.json";
  ASSERT_TRUE(report.write_file(path));
  std::ifstream in(path);
  std::stringstream file;
  file << in.rdbuf();
  EXPECT_TRUE(JsonChecker(file.str()).valid());
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace ecl
