// Tests for the ecl::obs observability layer: metrics registry semantics
// (including under OpenMP threads), trace well-formedness, run reports, and
// the invariant that instrumentation never changes algorithm results.
#include <gtest/gtest.h>
#include <omp.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/ecl_cc.h"
#include "core/engine.h"
#include "graph/generators.h"
#include "obs/exporter.h"
#include "obs/json.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/timeseries.h"
#include "obs/trace.h"

namespace ecl {
namespace {

// ---------------------------------------------------------------------------
// A minimal recursive-descent JSON well-formedness checker, so the trace and
// report tests validate real syntax instead of grepping for substrings.
class JsonChecker {
 public:
  explicit JsonChecker(std::string_view s) : s_(s) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // bare control char
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          if (pos_ + 4 >= s_.size()) return false;
          for (int i = 1; i <= 4; ++i) {
            if (!std::isxdigit(static_cast<unsigned char>(s_[pos_ + i]))) return false;
          }
          pos_ += 4;
        } else if (std::string_view("\"\\/bfnrt").find(e) == std::string_view::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
                                s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

  std::string_view s_;
  std::size_t pos_ = 0;
};

std::string temp_path(const std::string& leaf) {
  return (std::filesystem::temp_directory_path() / leaf).string();
}

// ---------------------------------------------------------------------------
// JsonWriter

TEST(JsonWriter, NestedStructureIsValid) {
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.begin_object();
  w.key("a");
  w.value(std::uint64_t{42});
  w.key("b");
  w.begin_array();
  w.value(1.5);
  w.value(std::string_view("x"));
  w.value(true);
  w.null();
  w.begin_object();
  w.end_object();
  w.end_array();
  w.key("c");
  w.value(std::int64_t{-7});
  w.end_object();
  const std::string out = os.str();
  EXPECT_TRUE(JsonChecker(out).valid()) << out;
  EXPECT_EQ(out, R"({"a":42,"b":[1.5,"x",true,null,{}],"c":-7})");
}

TEST(JsonWriter, EscapesControlAndQuoteCharacters) {
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.begin_object();
  w.key("k\"ey");
  w.value(std::string_view("a\\b\n\t\x01z"));
  w.end_object();
  const std::string out = os.str();
  EXPECT_TRUE(JsonChecker(out).valid()) << out;
  EXPECT_NE(out.find(R"(\n)"), std::string::npos);
  EXPECT_NE(out.find(R"(\u0001)"), std::string::npos);
  EXPECT_NE(out.find(R"(k\"ey)"), std::string::npos);
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.begin_array();
  w.value(std::numeric_limits<double>::infinity());
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.end_array();
  EXPECT_EQ(os.str(), "[null,null]");
}

// ---------------------------------------------------------------------------
// Metrics

TEST(ObsCounter, AddAndReset) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsCounter, ConcurrentAddsAreExact) {
  obs::Counter c;
  constexpr int kPerThread = 100000;
  const int threads = std::max(2, omp_get_max_threads());
#pragma omp parallel num_threads(threads)
  {
#pragma omp for
    for (int i = 0; i < threads * kPerThread; ++i) {
      c.add();
    }
  }
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(threads) * kPerThread);
}

TEST(ObsGauge, SetOverwrites) {
  obs::Gauge g;
  g.set(1.5);
  g.set(-2.0);
  EXPECT_DOUBLE_EQ(g.value(), -2.0);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(ObsHistogram, BucketSemantics) {
  obs::Histogram h({1, 2, 4});
  // Bucket i counts samples <= bounds[i] not claimed by an earlier bucket;
  // the implicit overflow bucket (UINT64_MAX) catches the rest.
  for (const std::uint64_t s : {0u, 1u, 2u, 3u, 4u, 5u, 100u}) h.record(s);
  EXPECT_EQ(h.count(), 7u);
  EXPECT_EQ(h.sum(), 0u + 1 + 2 + 3 + 4 + 5 + 100);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_DOUBLE_EQ(h.average(), 115.0 / 7.0);
  EXPECT_EQ(h.bounds(), (std::vector<std::uint64_t>{1, 2, 4, ~std::uint64_t{0}}));
  EXPECT_EQ(h.bucket_counts(), (std::vector<std::uint64_t>{2, 1, 2, 2}));
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.bucket_counts(), (std::vector<std::uint64_t>{0, 0, 0, 0}));
}

TEST(ObsHistogram, Pow2Bounds) {
  EXPECT_EQ(obs::Histogram::pow2_bounds(4), (std::vector<std::uint64_t>{1, 2, 4, 8}));
}

TEST(ObsHistogram, ConcurrentRecordsPreserveCountSumMax) {
  obs::Histogram h(obs::Histogram::pow2_bounds(10));
  constexpr int kSamples = 200000;
#pragma omp parallel for
  for (int i = 0; i < kSamples; ++i) {
    h.record(static_cast<std::uint64_t>(i % 1000));
  }
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kSamples));
  EXPECT_EQ(h.max(), 999u);
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t b : h.bucket_counts()) bucket_total += b;
  EXPECT_EQ(bucket_total, h.count());
}

TEST(ObsHistogram, PercentileOfEmptyIsZero) {
  obs::Histogram h({1, 2, 4});
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.99), 0.0);
}

TEST(ObsHistogram, PercentileInterpolatesWithinBuckets) {
  obs::Histogram h({10, 20});
  for (int i = 0; i < 10; ++i) h.record(5);   // bucket (0, 10]
  for (int i = 0; i < 10; ++i) h.record(15);  // bucket (10, 20]
  // The 50th percentile sits exactly at the first bucket's upper edge;
  // the 75th is halfway through the second bucket.
  EXPECT_DOUBLE_EQ(h.percentile(0.50), 10.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.75), 15.0);
  // Estimates never exceed the observed maximum, even at q=1.
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 15.0);
}

TEST(ObsHistogram, PercentilesAreMonotoneAndBounded) {
  obs::Histogram h(obs::Histogram::pow2_bounds(20));
  for (std::uint64_t i = 1; i <= 10000; ++i) h.record(i);
  const double p50 = h.percentile(0.50);
  const double p95 = h.percentile(0.95);
  const double p99 = h.percentile(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, static_cast<double>(h.max()));
  // With pow2 buckets the estimate is within one bucket of the truth.
  EXPECT_GE(p50, 4096.0);   // true p50 = 5000, bucket (4096, 8192]
  EXPECT_LE(p50, 8192.0);
  EXPECT_GE(p99, 8192.0);   // true p99 = 9900, bucket (8192, 16384]
}

TEST(ObsHistogram, OverflowBucketPercentileUsesObservedMax) {
  obs::Histogram h({10});
  h.record(1000);  // lands in the unbounded overflow bucket
  h.record(2000);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 2000.0);
  EXPECT_LE(h.percentile(0.5), 2000.0);
}

TEST(ObsRegistry, SnapshotCarriesPercentiles) {
  obs::Histogram& h =
      obs::registry().histogram("test.obs.percentile_snapshot", {10, 20, 40});
  h.reset();
  for (int i = 0; i < 100; ++i) h.record(static_cast<std::uint64_t>(i % 40) + 1);
  bool found = false;
  for (const auto& m : obs::registry().snapshot()) {
    if (m.name != "test.obs.percentile_snapshot") continue;
    found = true;
    EXPECT_EQ(m.kind, obs::MetricSnapshot::Kind::kHistogram);
    EXPECT_GT(m.p50, 0.0);
    EXPECT_LE(m.p50, m.p95);
    EXPECT_LE(m.p95, m.p99);
    EXPECT_LE(m.p99, 40.0);
  }
  EXPECT_TRUE(found);
}

TEST(ObsRegistry, LookupsReturnSameInstance) {
  obs::Counter& a = obs::registry().counter("test.obs.same_instance");
  obs::Counter& b = obs::registry().counter("test.obs.same_instance");
  EXPECT_EQ(&a, &b);
  obs::Histogram& h1 = obs::registry().histogram("test.obs.hist", {1, 2});
  // Bounds of a later lookup are ignored; the first registration wins.
  obs::Histogram& h2 = obs::registry().histogram("test.obs.hist", {7});
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bounds(), (std::vector<std::uint64_t>{1, 2, ~std::uint64_t{0}}));
}

TEST(ObsRegistry, SnapshotIsSortedAndTyped) {
  obs::registry().counter("test.snap.counter").add(3);
  obs::registry().gauge("test.snap.gauge").set(2.5);
  obs::registry().histogram("test.snap.hist", {10}).record(4);
  const auto snap = obs::registry().snapshot();
  ASSERT_GE(snap.size(), 3u);
  for (std::size_t i = 1; i < snap.size(); ++i) {
    EXPECT_LT(snap[i - 1].name, snap[i].name);
  }
  bool saw_counter = false, saw_gauge = false, saw_hist = false;
  for (const auto& m : snap) {
    if (m.name == "test.snap.counter") {
      saw_counter = true;
      EXPECT_EQ(m.kind, obs::MetricSnapshot::Kind::kCounter);
      EXPECT_GE(m.count, 3u);
    } else if (m.name == "test.snap.gauge") {
      saw_gauge = true;
      EXPECT_EQ(m.kind, obs::MetricSnapshot::Kind::kGauge);
      EXPECT_DOUBLE_EQ(m.value, 2.5);
    } else if (m.name == "test.snap.hist") {
      saw_hist = true;
      EXPECT_EQ(m.kind, obs::MetricSnapshot::Kind::kHistogram);
      ASSERT_FALSE(m.buckets.empty());
      EXPECT_EQ(m.buckets.back().first, ~std::uint64_t{0});
    }
  }
  EXPECT_TRUE(saw_counter && saw_gauge && saw_hist);
}

TEST(ObsMacros, RecordThroughRegistry) {
  obs::registry().counter("test.macro.counter").reset();
  for (int i = 0; i < 5; ++i) {
    ECL_OBS_COUNTER_ADD("test.macro.counter", 2);
  }
  ECL_OBS_GAUGE_SET("test.macro.gauge", 7.0);
#if defined(ECL_OBS_DISABLED)
  EXPECT_EQ(obs::registry().counter("test.macro.counter").value(), 0u);
#else
  EXPECT_EQ(obs::registry().counter("test.macro.counter").value(), 10u);
  EXPECT_DOUBLE_EQ(obs::registry().gauge("test.macro.gauge").value(), 7.0);
#endif
}

// ---------------------------------------------------------------------------
// Tracing

TEST(ObsTrace, SpansAreInactiveWhenTracerDisabled) {
  ASSERT_FALSE(obs::Tracer::instance().enabled());
  const std::size_t before = obs::Tracer::instance().event_count();
  {
    obs::Span span("test.disabled", "test");
    EXPECT_FALSE(span.active());
    span.arg("k", 1.0);  // must be a safe no-op
  }
  EXPECT_EQ(obs::Tracer::instance().event_count(), before);
}

TEST(ObsTrace, WritesWellFormedBalancedTrace) {
  auto& tracer = obs::Tracer::instance();
  const std::string path = temp_path("ecl_obs_test_trace.json");
  ASSERT_TRUE(tracer.start(path));
  {
    obs::Span outer("test.outer", "test-cat");
    outer.arg("graph", std::string_view("needs \"escaping\""));
    outer.arg("n", std::uint64_t{42});
    {
      obs::Span inner("test.inner", "test-cat");
      inner.arg("rate", 0.5);
    }
  }
  EXPECT_EQ(tracer.event_count(), 2u);

  std::ostringstream os;
  tracer.write(os);
  const std::string json = os.str();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("test.outer"), std::string::npos);
  EXPECT_NE(json.find("test.inner"), std::string::npos);
  // Complete events only: every event carries both a ts and a dur, so the
  // trace is balanced by construction.
  std::size_t ts = 0, dur = 0;
  for (std::size_t p = json.find("\"ts\""); p != std::string::npos;
       p = json.find("\"ts\"", p + 1)) {
    ++ts;
  }
  for (std::size_t p = json.find("\"dur\""); p != std::string::npos;
       p = json.find("\"dur\"", p + 1)) {
    ++dur;
  }
  EXPECT_EQ(ts, 2u);
  EXPECT_EQ(dur, 2u);

  ASSERT_TRUE(tracer.stop());
  EXPECT_FALSE(tracer.enabled());
  std::ifstream in(path);
  std::stringstream file;
  file << in.rdbuf();
  EXPECT_TRUE(JsonChecker(file.str()).valid());
  std::filesystem::remove(path);
}

TEST(ObsTrace, StopCreatesParentDirectories) {
  auto& tracer = obs::Tracer::instance();
  const std::string dir = temp_path("ecl_obs_trace_nested");
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(tracer.start(dir + "/deep/trace.json"));
  { obs::Span span("test.nested", "test"); }
  ASSERT_TRUE(tracer.stop());
  EXPECT_TRUE(std::filesystem::exists(dir + "/deep/trace.json"));
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Instrumentation must not change results.

TEST(ObsInstrumentation, LabelsUnchangedByRecorders) {
  const std::uint64_t seeds[] = {1, 7, 42};
  for (const std::uint64_t seed : seeds) {
    const Graph g = gen_rmat(10, 8, RmatParams{}, seed);
    const auto serial = ecl_cc_serial(g);
    const auto omp = ecl_cc_omp(g);
    // The path-length run attaches the full recorder + registry histogram to
    // the same algorithm; its labels must match the production runs'.
    (void)ecl_cc_path_lengths(g);
    const auto serial_again = ecl_cc_serial(g);
    EXPECT_EQ(serial, serial_again) << "seed " << seed;
    EXPECT_EQ(serial, omp) << "seed " << seed;
  }
}

TEST(ObsInstrumentation, PathLengthReportMatchesManualRecorder) {
  const Graph g = gen_small_world(2000, 6, 0.1, 99);
  const EclOptions opts;

  // Legacy-style manual computation: init + instrumented compute phase.
  std::vector<vertex_t> parent(g.num_vertices());
  SerialParentOps ops(parent.data());
  for (vertex_t v = 0; v < g.num_vertices(); ++v) {
    parent[v] = detail::initial_parent(g, opts.init, v);
  }
  PathLengthRecorder rec;
  for (vertex_t v = 0; v < g.num_vertices(); ++v) {
    detail::compute_vertex(g, opts.jump, v, ops, &rec);
  }

  const PathLengthReport report = ecl_cc_path_lengths(g, opts);
  EXPECT_EQ(report.num_finds, rec.num_finds);
  EXPECT_EQ(report.maximum_length, rec.max_length);
  EXPECT_DOUBLE_EQ(report.average_length, rec.average());
}

TEST(ObsInstrumentation, ComputeCountersPopulated) {
  obs::registry().reset();
  const Graph g = gen_kronecker(12, 12, 5);
  (void)ecl_cc_omp(g);
#if defined(ECL_OBS_DISABLED)
  EXPECT_EQ(obs::registry().counter("ecl.find.finds").value(), 0u);
#else
  // One find per vertex plus one per processed (v > u) edge.
  EXPECT_GT(obs::registry().counter("ecl.find.finds").value(), g.num_vertices());
  // Kronecker graphs leave many vertices without a smaller neighbor, so the
  // compute phase must perform actual hooks.
  EXPECT_GT(obs::registry().counter("ecl.hook.hooks_performed").value(), 0u);
#endif
}

// ---------------------------------------------------------------------------
// percentile_from_buckets — the shared estimator's defined edge cases
// (Histogram::percentile and the windowed TimeSeries both delegate here).

TEST(PercentileFromBuckets, EmptyDistributionIsZero) {
  const std::vector<std::uint64_t> bounds{10, 20, ~std::uint64_t{0}};
  const std::vector<std::uint64_t> counts{0, 0, 0};
  EXPECT_DOUBLE_EQ(obs::percentile_from_buckets(bounds, counts, 0.0, 0), 0.0);
  EXPECT_DOUBLE_EQ(obs::percentile_from_buckets(bounds, counts, 0.5, 0), 0.0);
  EXPECT_DOUBLE_EQ(obs::percentile_from_buckets(bounds, counts, 1.0, 0), 0.0);
}

TEST(PercentileFromBuckets, SingleSampleIsTheObservedMax) {
  const std::vector<std::uint64_t> bounds{10, ~std::uint64_t{0}};
  const std::vector<std::uint64_t> counts{1, 0};
  // One sample: every quantile is that sample, and count/sum/max tracking
  // knows it exactly — no interpolation guesswork.
  for (const double q : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(obs::percentile_from_buckets(bounds, counts, q, 7), 7.0) << q;
  }
}

TEST(PercentileFromBuckets, QuantileIsClampedToUnitInterval) {
  const std::vector<std::uint64_t> bounds{10, ~std::uint64_t{0}};
  const std::vector<std::uint64_t> counts{4, 0};
  const double at_zero = obs::percentile_from_buckets(bounds, counts, 0.0, 9);
  const double at_one = obs::percentile_from_buckets(bounds, counts, 1.0, 9);
  EXPECT_DOUBLE_EQ(obs::percentile_from_buckets(bounds, counts, -3.0, 9), at_zero);
  EXPECT_DOUBLE_EQ(obs::percentile_from_buckets(bounds, counts, 42.0, 9), at_one);
}

TEST(PercentileFromBuckets, AllSamplesInOverflowInterpolateToObservedMax) {
  // Every sample beyond the largest finite bound: the overflow bucket's
  // missing upper edge is stood in by the observed max, so estimates stay
  // inside [largest finite bound, observed max].
  const std::vector<std::uint64_t> bounds{10, ~std::uint64_t{0}};
  const std::vector<std::uint64_t> counts{0, 4};
  const double p50 = obs::percentile_from_buckets(bounds, counts, 0.5, 100);
  const double p100 = obs::percentile_from_buckets(bounds, counts, 1.0, 100);
  EXPECT_GE(p50, 10.0);
  EXPECT_LE(p50, 100.0);
  EXPECT_DOUBLE_EQ(p100, 100.0);
}

TEST(PercentileFromBuckets, EstimateNeverExceedsObservedMax) {
  const std::vector<std::uint64_t> bounds{100, ~std::uint64_t{0}};
  const std::vector<std::uint64_t> counts{10, 0};
  // All ten samples were really 3; interpolation inside (0, 100] would claim
  // more, but the clamp to the observed max keeps the estimate honest.
  EXPECT_DOUBLE_EQ(obs::percentile_from_buckets(bounds, counts, 0.99, 3), 3.0);
}

// ---------------------------------------------------------------------------
// TimeSeries — sliding windows over registry snapshots

obs::MetricSnapshot make_counter_snap(const std::string& name, std::uint64_t v) {
  obs::MetricSnapshot m;
  m.name = name;
  m.kind = obs::MetricSnapshot::Kind::kCounter;
  m.count = v;
  return m;
}

obs::MetricSnapshot make_gauge_snap(const std::string& name, double v) {
  obs::MetricSnapshot m;
  m.name = name;
  m.kind = obs::MetricSnapshot::Kind::kGauge;
  m.value = v;
  return m;
}

obs::MetricSnapshot make_hist_snap(const std::string& name,
                                   std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets,
                                   std::uint64_t sum, std::uint64_t max) {
  obs::MetricSnapshot m;
  m.name = name;
  m.kind = obs::MetricSnapshot::Kind::kHistogram;
  m.buckets = std::move(buckets);
  for (const auto& [bound, count] : m.buckets) m.count += count;
  m.sum = sum;
  m.max = max;
  return m;
}

TEST(ObsTimeSeries, SingleSampleIsNotAValidWindow) {
  obs::TimeSeries ts(8);
  ts.sample({make_counter_snap("c", 10)}, 0);
  obs::WindowStats w;
  ASSERT_TRUE(ts.lookup("c", w));
  EXPECT_FALSE(w.valid);
  EXPECT_FALSE(ts.lookup("never.sampled", w));
}

TEST(ObsTimeSeries, CounterDeltaAndRate) {
  obs::TimeSeries ts(8);
  ts.sample({make_counter_snap("c", 100)}, 0);
  ts.sample({make_counter_snap("c", 350)}, 2000);
  obs::WindowStats w;
  ASSERT_TRUE(ts.lookup("c", w));
  EXPECT_TRUE(w.valid);
  EXPECT_EQ(w.kind, obs::MetricSnapshot::Kind::kCounter);
  EXPECT_EQ(w.delta, 250u);
  EXPECT_DOUBLE_EQ(w.window_s, 2.0);
  EXPECT_DOUBLE_EQ(w.rate_per_s, 125.0);
}

TEST(ObsTimeSeries, RegistryResetClampsDeltaToZero) {
  obs::TimeSeries ts(8);
  ts.sample({make_counter_snap("c", 100)}, 0);
  ts.sample({make_counter_snap("c", 40)}, 1000);  // reset() mid-window
  obs::WindowStats w;
  ASSERT_TRUE(ts.lookup("c", w));
  EXPECT_EQ(w.delta, 0u);
  EXPECT_DOUBLE_EQ(w.rate_per_s, 0.0);
}

TEST(ObsTimeSeries, GaugeReportsNewestValue) {
  obs::TimeSeries ts(8);
  ts.sample({make_gauge_snap("g", 1.0)}, 0);
  ts.sample({make_gauge_snap("g", -7.5)}, 1000);
  obs::WindowStats w;
  ASSERT_TRUE(ts.lookup("g", w));
  EXPECT_EQ(w.kind, obs::MetricSnapshot::Kind::kGauge);
  EXPECT_DOUBLE_EQ(w.last, -7.5);
}

TEST(ObsTimeSeries, WindowedHistogramPercentilesCoverOnlyTheWindow) {
  const std::uint64_t inf = ~std::uint64_t{0};
  obs::TimeSeries ts(8);
  // Before the window: ten fast samples (all <= 10).
  ts.sample({make_hist_snap("h", {{10, 10}, {20, 0}, {inf, 0}}, 50, 5)}, 0);
  // Inside the window: ten slow samples in (10, 20].
  ts.sample({make_hist_snap("h", {{10, 10}, {20, 10}, {inf, 0}}, 200, 18)}, 1000);
  obs::WindowStats w;
  ASSERT_TRUE(ts.lookup("h", w));
  EXPECT_TRUE(w.valid);
  EXPECT_EQ(w.delta, 10u);
  EXPECT_DOUBLE_EQ(w.avg, 15.0);  // (200 - 50) / 10
  // The lifetime p50 would sit at 10 (half fast, half slow); the windowed
  // p50 sees only the slow bucket.
  EXPECT_DOUBLE_EQ(w.p50, 15.0);
  // Interpolation would claim 19.9, but the observed max clamps it.
  EXPECT_DOUBLE_EQ(w.p99, 18.0);
}

TEST(ObsTimeSeries, CapacityEvictsOldestSamples) {
  obs::TimeSeries ts(2);  // minimum window: newest two samples
  for (std::uint64_t i = 0; i <= 4; ++i) {
    ts.sample({make_counter_snap("c", i * 10)}, i * 1000);
  }
  obs::WindowStats w;
  ASSERT_TRUE(ts.lookup("c", w));
  EXPECT_EQ(w.delta, 10u);  // only the last step survives eviction
  EXPECT_DOUBLE_EQ(w.window_s, 1.0);
  EXPECT_EQ(ts.samples(), 5u);
}

TEST(ObsTimeSeries, SampleNowFoldsTheLiveRegistry) {
  obs::Counter& c = obs::registry().counter("test.ts.live");
  c.reset();
  obs::TimeSeries ts(4);
  ts.sample_now();
  c.add(5);
  ts.sample_now();
  obs::WindowStats w;
  ASSERT_TRUE(ts.lookup("test.ts.live", w));
  EXPECT_TRUE(w.valid);
  EXPECT_EQ(w.delta, 5u);
}

// ---------------------------------------------------------------------------
// RequestLog — slow-request JSON lines

TEST(ObsRequestLog, ClosedLogDropsEverything) {
  obs::RequestLog log;
  EXPECT_FALSE(log.enabled());
  obs::RequestLogRecord rec;
  rec.total_us = 1000000;
  EXPECT_FALSE(log.log(rec));
  EXPECT_EQ(log.lines(), 0u);
}

TEST(ObsRequestLog, ThresholdGatesAndLinesAreValidJson) {
  const std::string path = temp_path("ecl_obs_test_slow.jsonl");
  std::filesystem::remove(path);
  obs::RequestLog log;
  ASSERT_TRUE(log.open(path, 100));
  EXPECT_TRUE(log.enabled());
  EXPECT_EQ(log.threshold_us(), 100u);

  obs::RequestLogRecord fast;
  fast.request_id = 1;
  fast.op = "ping";
  fast.status = "ok";
  fast.total_us = 99;
  EXPECT_FALSE(log.log(fast));  // under threshold

  obs::RequestLogRecord slow;
  slow.request_id = 0xdeadbeef;
  slow.op = "ingest";
  slow.status = "shed";
  slow.queue_depth = 7;
  slow.total_us = 5210;
  slow.decode_us = 12;
  slow.execute_us = 5100;
  slow.encode_us = 2;
  slow.write_us = 96;
  EXPECT_TRUE(log.log(slow));
  EXPECT_EQ(log.lines(), 1u);
  log.close();
  EXPECT_FALSE(log.enabled());

  std::ifstream in(path);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_TRUE(JsonChecker(line).valid()) << line;
  }
  EXPECT_EQ(lines, 1u);
  in.clear();
  in.seekg(0);
  std::stringstream all;
  all << in.rdbuf();
  const std::string text = all.str();
  EXPECT_NE(text.find("\"request_id\":3735928559"), std::string::npos) << text;
  EXPECT_NE(text.find("\"op\":\"ingest\""), std::string::npos);
  EXPECT_NE(text.find("\"status\":\"shed\""), std::string::npos);
  EXPECT_NE(text.find("\"queue_depth\":7"), std::string::npos);
  EXPECT_NE(text.find("\"execute_us\":5100"), std::string::npos);
  std::filesystem::remove(path);
}

TEST(ObsRequestLog, ZeroThresholdLogsEveryRequest) {
  const std::string path = temp_path("ecl_obs_test_slow_all.jsonl");
  std::filesystem::remove(path);
  obs::RequestLog log;
  ASSERT_TRUE(log.open(path, 0));
  for (std::uint64_t i = 0; i < 3; ++i) {
    obs::RequestLogRecord rec;
    rec.request_id = i;
    rec.op = "ping";
    rec.status = "ok";
    EXPECT_TRUE(log.log(rec));
  }
  EXPECT_EQ(log.lines(), 3u);
  log.close();
  std::filesystem::remove(path);
}

// ---------------------------------------------------------------------------
// MetricsExporter — Prometheus text exposition over HTTP

TEST(ObsExporter, SanitizeNameMapsToPrometheusCharset) {
  EXPECT_EQ(obs::MetricsExporter::sanitize_name("ecl.svc.op_us.ingest"),
            "ecl_svc_op_us_ingest");
  EXPECT_EQ(obs::MetricsExporter::sanitize_name("a-b c"), "a_b_c");
  EXPECT_EQ(obs::MetricsExporter::sanitize_name("9lives"), "_9lives");
  EXPECT_EQ(obs::MetricsExporter::sanitize_name("ok_name:sub"), "ok_name:sub");
}

TEST(ObsExporter, RenderEmitsTypedFamiliesAndCumulativeBuckets) {
  obs::registry().counter("test.exp.counter").reset();
  obs::registry().counter("test.exp.counter").add(5);
  obs::registry().gauge("test.exp.gauge").set(2.5);
  obs::Histogram& h = obs::registry().histogram("test.exp.hist", {10, 20});
  h.reset();
  for (const std::uint64_t s : {5u, 15u, 15u, 99u}) h.record(s);

  obs::MetricsExporter exporter;  // never started: render() needs no socket
  const std::string body = exporter.render();
  EXPECT_NE(body.find("# TYPE test_exp_counter counter"), std::string::npos);
  EXPECT_NE(body.find("test_exp_counter 5\n"), std::string::npos);
  EXPECT_NE(body.find("# TYPE test_exp_gauge gauge"), std::string::npos);
  EXPECT_NE(body.find("test_exp_gauge 2.5\n"), std::string::npos);
  EXPECT_NE(body.find("# TYPE test_exp_hist histogram"), std::string::npos);
  // Disjoint registry buckets {1, 2, 1} render cumulatively {1, 3, 4}.
  EXPECT_NE(body.find("test_exp_hist_bucket{le=\"10\"} 1\n"), std::string::npos);
  EXPECT_NE(body.find("test_exp_hist_bucket{le=\"20\"} 3\n"), std::string::npos);
  EXPECT_NE(body.find("test_exp_hist_bucket{le=\"+Inf\"} 4\n"), std::string::npos);
  EXPECT_NE(body.find("test_exp_hist_sum 134\n"), std::string::npos);
  EXPECT_NE(body.find("test_exp_hist_count 4\n"), std::string::npos);
  EXPECT_NE(body.find("ecl_exporter_scrapes_total"), std::string::npos);
}

TEST(ObsExporter, CollectorsAppendExtraFamilies) {
  obs::MetricsExporter exporter;
  exporter.add_collector([](std::string& out) {
    out += "# TYPE test_collector_up gauge\ntest_collector_up 1\n";
  });
  const std::string body = exporter.render();
  EXPECT_NE(body.find("test_collector_up 1\n"), std::string::npos);
}

TEST(ObsExporter, CollectorFamiliesShadowRegistryMetricsOfTheSameName) {
  // The daemon's collector samples ecl_svc_epoch live at scrape time while
  // the registry holds a gauge that sanitizes to the same family; emitting
  // both would be a duplicate family (invalid exposition), so the collector
  // wins and the registry copy is suppressed.
  obs::registry().gauge("test.shadowed.epoch").set(1.0);
  obs::MetricsExporter exporter;
  exporter.add_collector([](std::string& out) {
    out += "# TYPE test_shadowed_epoch gauge\ntest_shadowed_epoch 7\n";
  });
  const std::string body = exporter.render();
  EXPECT_NE(body.find("test_shadowed_epoch 7\n"), std::string::npos);
  EXPECT_EQ(body.find("test_shadowed_epoch 1\n"), std::string::npos);
  EXPECT_EQ(body.find("# TYPE test_shadowed_epoch gauge"),
            body.rfind("# TYPE test_shadowed_epoch gauge"));
}

// One raw-socket HTTP GET; keeps the test free of any client library.
std::string http_get(int port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    ADD_FAILURE() << "connect failed: " << std::strerror(errno);
    return {};
  }
  const std::string req = "GET " + path + " HTTP/1.0\r\nHost: test\r\n\r\n";
  EXPECT_EQ(::send(fd, req.data(), req.size(), 0), static_cast<ssize_t>(req.size()));
  std::string resp;
  char buf[4096];
  ssize_t n = 0;
  while ((n = ::recv(fd, buf, sizeof buf, 0)) > 0) {
    resp.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return resp;
}

TEST(ObsExporter, ServesScrapesOnEphemeralPort) {
  obs::registry().counter("test.exp.live").add(1);
  obs::ExporterOptions opts;
  opts.port = 0;  // ephemeral
  opts.sample_interval_ms = 10;
  obs::MetricsExporter exporter(opts);
  std::string err;
  ASSERT_TRUE(exporter.start(&err)) << err;
  ASSERT_GT(exporter.port(), 0);

  const std::string ok = http_get(exporter.port(), "/metrics");
  EXPECT_NE(ok.find("HTTP/1.0 200 OK"), std::string::npos) << ok;
  EXPECT_NE(ok.find("Content-Type: text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(ok.find("test_exp_live"), std::string::npos);
  EXPECT_NE(ok.find("ecl_exporter_scrapes_total"), std::string::npos);

  const std::string missing = http_get(exporter.port(), "/nope");
  EXPECT_NE(missing.find("HTTP/1.0 404 Not Found"), std::string::npos) << missing;
  EXPECT_EQ(exporter.scrapes(), 1u);  // the 404 is not a scrape

  // The serve loop samples on its cadence; once two samples exist the body
  // grows windowed gauges.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (exporter.series().samples() < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_GE(exporter.series().samples(), 2u);
  const std::string windowed = http_get(exporter.port(), "/metrics");
  EXPECT_NE(windowed.find("_window_rate"), std::string::npos) << windowed.substr(0, 512);
  EXPECT_NE(windowed.find("ecl_exporter_window_seconds"), std::string::npos);

  exporter.stop();
  EXPECT_FALSE(exporter.running());
  exporter.stop();  // idempotent
}

// ---------------------------------------------------------------------------
// Run reports

TEST(ObsReport, WriteIsValidJsonWithCellsAndMetrics) {
  obs::RunReport report;
  report.set_bench_name("unit_test_bench");
  report.set_config(0.5, 3);
  report.add_cell("graphA", "code1", {1.0, 2.0, 3.0});
  report.add_cell("graphA", "code2", {2.5});
  EXPECT_EQ(report.cell_count(), 2u);

  obs::registry().counter("test.report.counter").add(11);
  obs::registry().histogram("test.report.latency", {10, 100}).record(42);
  std::ostringstream os;
  report.write(os);
  const std::string json = os.str();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  // Histogram metrics carry tail-latency percentiles in the report.
  EXPECT_NE(json.find("test.report.latency"), std::string::npos);
  EXPECT_NE(json.find("\"p50\":"), std::string::npos);
  EXPECT_NE(json.find("\"p95\":"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
  EXPECT_NE(json.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(json.find("unit_test_bench"), std::string::npos);
  EXPECT_NE(json.find("graphA"), std::string::npos);
  EXPECT_NE(json.find("\"min_ms\":1"), std::string::npos);
  EXPECT_NE(json.find("\"median_ms\":2"), std::string::npos);
  EXPECT_NE(json.find("\"max_ms\":3"), std::string::npos);
  EXPECT_NE(json.find("test.report.counter"), std::string::npos);

  report.clear();
  EXPECT_EQ(report.cell_count(), 0u);
}

TEST(ObsReport, WriteFileCreatesParentDirectories) {
  obs::RunReport report;
  report.set_bench_name("nested_dir_bench");
  report.add_cell("g", "c", {1.0});
  const std::string dir = temp_path("ecl_obs_report_nested");
  std::filesystem::remove_all(dir);
  const std::string path = dir + "/a/b/report.json";
  ASSERT_TRUE(report.write_file(path));
  std::ifstream in(path);
  std::stringstream file;
  file << in.rdbuf();
  EXPECT_TRUE(JsonChecker(file.str()).valid());
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace ecl
