// Fuzz-style tests: random messy edge lists (self-loops, duplicates, both
// directions, skewed endpoints) conditioned by GraphBuilder must match a
// naive set-based reference, and the resulting graphs must be labeled
// identically by all core implementations.
#include <gtest/gtest.h>

#include <set>
#include <utility>

#include "common/rng.h"
#include "core/ecl_cc.h"
#include "graph/builder.h"
#include "graph/stats.h"
#include "graph/suite.h"
#include "gpusim/gpu_cc.h"

namespace ecl {
namespace {

/// Naive reference conditioning: symmetrize, drop loops, dedupe via a set.
std::set<std::pair<vertex_t, vertex_t>> reference_edge_set(const std::vector<Edge>& edges) {
  std::set<std::pair<vertex_t, vertex_t>> out;
  for (const auto& [u, v] : edges) {
    if (u == v) continue;
    out.emplace(u, v);
    out.emplace(v, u);
  }
  return out;
}

std::vector<Edge> random_messy_edges(std::uint64_t seed, vertex_t n, std::size_t count) {
  Xoshiro256 rng(seed);
  std::vector<Edge> edges;
  edges.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    vertex_t u;
    vertex_t v;
    switch (rng.bounded(5)) {
      case 0:  // self loop
        u = v = static_cast<vertex_t>(rng.bounded(n));
        break;
      case 1:  // duplicate-prone: small endpoint range
        u = static_cast<vertex_t>(rng.bounded(8));
        v = static_cast<vertex_t>(rng.bounded(8));
        break;
      case 2:  // hub edge
        u = 0;
        v = static_cast<vertex_t>(rng.bounded(n));
        break;
      default:  // uniform
        u = static_cast<vertex_t>(rng.bounded(n));
        v = static_cast<vertex_t>(rng.bounded(n));
        break;
    }
    edges.emplace_back(u, v);
  }
  return edges;
}

class BuilderFuzz : public ::testing::TestWithParam<int> {};

TEST_P(BuilderFuzz, ConditioningMatchesNaiveReference) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const vertex_t n = 50 + static_cast<vertex_t>(GetParam()) * 37;
  const auto raw = random_messy_edges(seed, n, 40 + 60 * static_cast<std::size_t>(GetParam()));
  const Graph g = build_graph(n, raw);
  const auto expected = reference_edge_set(raw);

  EXPECT_EQ(g.num_edges(), expected.size());
  std::set<std::pair<vertex_t, vertex_t>> actual;
  for (vertex_t v = 0; v < n; ++v) {
    vertex_t prev = 0;
    bool first = true;
    for (const vertex_t u : g.neighbors(v)) {
      EXPECT_NE(u, v) << "self loop survived";
      if (!first) EXPECT_GT(u, prev) << "unsorted or duplicate neighbor";
      prev = u;
      first = false;
      actual.emplace(v, u);
    }
  }
  EXPECT_EQ(actual, expected);
}

TEST_P(BuilderFuzz, AllCoreImplementationsAgree) {
  const auto seed = static_cast<std::uint64_t>(GetParam()) + 1000;
  const vertex_t n = 200 + static_cast<vertex_t>(GetParam()) * 91;
  const Graph g = build_graph(n, random_messy_edges(seed, n, 3 * n));
  const auto reference = reference_components(g);
  EXPECT_EQ(ecl_cc_serial(g), reference);
  EXPECT_EQ(ecl_cc_omp(g), reference);
  EXPECT_EQ(gpusim::ecl_cc_gpu(g, gpusim::titanx_like()).labels, reference);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BuilderFuzz, ::testing::Range(0, 12));

TEST(SuiteDeterminism, SameNameAndScaleYieldIdenticalGraphs) {
  for (const char* name : {"internet", "rmat16.sym", "USA-road-d.NY"}) {
    const Graph a = make_suite_graph(name, 0.5);
    const Graph b = make_suite_graph(name, 0.5);
    ASSERT_EQ(a.num_vertices(), b.num_vertices()) << name;
    ASSERT_EQ(a.num_edges(), b.num_edges()) << name;
    EXPECT_TRUE(std::equal(a.adjacency().begin(), a.adjacency().end(),
                           b.adjacency().begin()))
        << name;
  }
}

}  // namespace
}  // namespace ecl
