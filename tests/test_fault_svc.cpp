// Chaos tests for the robustness layer (docs/ROBUSTNESS.md): the ecl::fault
// registry itself (spec parsing, deterministic firing), fault injection
// through the svc net paths, the write-ahead log (torn tails, CRC
// corruption, replay idempotence, fsync-policy matrix), degraded mode
// (ingest-worker death, WAL failure), the client retry/reconnect policy,
// server slow/idle-client eviction, and the kHealth RPC end to end.
//
// Every test that arms the process-wide fault registry disarms it again in
// TearDown — gtest_discover_tests runs cases in separate processes, but the
// discipline keeps same-process runs (--gtest_filter=*) honest too.
#include <gtest/gtest.h>
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "fault/fault.h"
#include "obs/exporter.h"
#include "svc/client.h"
#include "svc/net.h"
#include "svc/protocol.h"
#include "svc/server.h"
#include "svc/service.h"
#include "svc/wal.h"

namespace ecl::svc {
namespace {

fault::Registry& reg() { return fault::Registry::instance(); }

/// Arms one clause programmatically (no spec-string round trip).
void arm(const char* point, fault::Action action, std::uint64_t times,
         std::uint64_t arg = 0) {
  fault::PointSpec spec;
  spec.point = point;
  spec.action = action;
  spec.times = times;
  spec.arg = arg;
  reg().arm_point(std::move(spec));
}

/// Base fixture: guarantees a disarmed registry before and after each case.
class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override { reg().disarm_all(); }
  void TearDown() override { reg().disarm_all(); }

  static std::string temp_path(const std::string& name) {
    return ::testing::TempDir() + "ecl_fault_" + std::to_string(::getpid()) +
           "_" + name;
  }
};

/// Polls `pred` for up to ~5 s. Chaos tests must never hang the suite.
template <typename Pred>
bool eventually(Pred pred) {
  for (int i = 0; i < 500; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return pred();
}

// ------------------------------------------------------- fault registry ----

using FaultRegistry = FaultTest;

TEST_F(FaultRegistry, RejectsMalformedSpecsWithoutArming) {
  std::string err;
  EXPECT_FALSE(reg().arm("nonsense", &err));
  EXPECT_NE(err.find("nonsense"), std::string::npos);  // names the clause
  EXPECT_FALSE(reg().arm("p=launch", &err));           // unknown action
  EXPECT_FALSE(reg().arm("p=fail,times=abc", &err));   // bad value
  EXPECT_FALSE(reg().arm("p=fail,bogus=1", &err));     // unknown key
  EXPECT_FALSE(reg().arm("p=fail,prob=1.5", &err));    // prob out of range
  // A bad clause anywhere arms nothing, even if earlier clauses were fine.
  EXPECT_FALSE(reg().arm("a=fail;b=explode", &err));
  EXPECT_FALSE(reg().armed());
}

TEST_F(FaultRegistry, ParsesMultiClauseSpec) {
  std::string err;
  ASSERT_TRUE(reg().arm("a.b=short,arg=3,times=1;c.d=delay,arg=500", &err)) << err;
  EXPECT_TRUE(reg().armed());

  const auto first = reg().evaluate("a.b");
  EXPECT_EQ(first.action, fault::Action::kShort);
  EXPECT_EQ(first.arg, 3u);
  EXPECT_FALSE(reg().evaluate("a.b").fired());  // times=1 exhausted

  const auto second = reg().evaluate("c.d");
  EXPECT_EQ(second.action, fault::Action::kDelay);
  EXPECT_EQ(second.arg, 500u);
  EXPECT_FALSE(reg().evaluate("unarmed.point").fired());
}

TEST_F(FaultRegistry, AfterEveryTimesScheduleIsExact) {
  // Skip 2 passes, then fire every 2nd eligible pass, at most 3 times:
  // passes 2, 4, 6 fire; everything else proceeds.
  fault::PointSpec spec;
  spec.point = "sched";
  spec.after = 2;
  spec.every = 2;
  spec.times = 3;
  reg().arm_point(std::move(spec));

  std::vector<int> fired_at;
  for (int pass = 0; pass < 12; ++pass) {
    if (reg().evaluate("sched").fired()) fired_at.push_back(pass);
  }
  EXPECT_EQ(fired_at, (std::vector<int>{2, 4, 6}));
  EXPECT_EQ(reg().fired("sched"), 3u);
  EXPECT_EQ(reg().total_fired(), 3u);
}

TEST_F(FaultRegistry, ProbabilisticFiringIsDeterministicPerSeed) {
  const auto run = [&](std::uint64_t seed) {
    reg().disarm_all();
    fault::PointSpec spec;
    spec.point = "coin";
    spec.prob = 0.5;
    spec.seed = seed;
    reg().arm_point(std::move(spec));
    std::vector<bool> pattern;
    pattern.reserve(64);
    for (int i = 0; i < 64; ++i) pattern.push_back(reg().evaluate("coin").fired());
    return pattern;
  };
  const auto a = run(42);
  const auto b = run(42);
  const auto c = run(43);
  EXPECT_EQ(a, b);  // same seed => same firing pattern (no wall clock)
  EXPECT_NE(a, c);  // different seed => different pattern
  // Sanity: prob=0.5 over 64 passes fires somewhere strictly in between.
  const auto fires = std::count(a.begin(), a.end(), true);
  EXPECT_GT(fires, 0);
  EXPECT_LT(fires, 64);
}

TEST_F(FaultRegistry, DisarmedPointIsFreeAndSilent) {
  EXPECT_FALSE(reg().armed());
  const auto outcome = ECL_FAULT_POINT("anything.at.all");
  EXPECT_FALSE(outcome.fired());
  EXPECT_EQ(reg().total_fired(), 0u);
}

// -------------------------------------------------- net fault injection ----

/// Socketpair-backed fixture for exercising the net layer without a server.
class NetFaultTest : public FaultTest {
 protected:
  void SetUp() override {
    FaultTest::SetUp();
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds_), 0);
  }
  void TearDown() override {
    if (fds_[0] >= 0) ::close(fds_[0]);
    if (fds_[1] >= 0) ::close(fds_[1]);
    FaultTest::TearDown();
  }
  int fds_[2] = {-1, -1};
};

TEST_F(NetFaultTest, InjectedReadFailureSurfacesAsError) {
  const char msg[8] = "payload";
  ASSERT_TRUE(net::write_full(fds_[0], msg, sizeof(msg)));

  arm("svc.net.read", fault::Action::kFail, 1);
  char buf[8] = {};
  EXPECT_EQ(net::read_full_io(fds_[1], buf, sizeof(buf)), net::IoStatus::kError);
  EXPECT_EQ(reg().fired("svc.net.read"), 1u);

  // times=1 exhausted: the bytes are still in the socket, the next read wins.
  EXPECT_EQ(net::read_full_io(fds_[1], buf, sizeof(buf)), net::IoStatus::kOk);
  EXPECT_EQ(std::memcmp(buf, msg, sizeof(msg)), 0);
}

TEST_F(NetFaultTest, InjectedShortReadDeliversBudgetThenFails) {
  const char msg[8] = "short!!";
  ASSERT_TRUE(net::write_full(fds_[0], msg, sizeof(msg)));

  arm("svc.net.read", fault::Action::kShort, 1, /*arg=*/3);
  char buf[8] = {};
  std::size_t got = 0;
  EXPECT_EQ(net::read_full_io(fds_[1], buf, sizeof(buf), &got),
            net::IoStatus::kError);
  EXPECT_EQ(got, 3u);  // exactly the injected budget arrived before the cut
  EXPECT_EQ(std::memcmp(buf, msg, 3), 0);
}

TEST_F(NetFaultTest, InjectedWriteFailureSurfacesAsError) {
  arm("svc.net.write", fault::Action::kFail, 1);
  const char msg[4] = "abc";
  EXPECT_EQ(net::write_full_io(fds_[0], msg, sizeof(msg)), net::IoStatus::kError);
  EXPECT_EQ(net::write_full_io(fds_[0], msg, sizeof(msg)), net::IoStatus::kOk);
}

TEST_F(NetFaultTest, InjectedConnectFailure) {
  const std::string path = temp_path("connect.sock");
  std::string err;
  const int listener = net::listen_unix(path, 4, &err);
  ASSERT_GE(listener, 0) << err;

  arm("svc.net.connect", fault::Action::kFail, 1);
  EXPECT_LT(net::connect_unix(path, &err, 500), 0);  // injected refusal

  const int fd = net::connect_unix(path, &err, 500);  // fault exhausted
  EXPECT_GE(fd, 0) << err;
  if (fd >= 0) ::close(fd);
  ::close(listener);
  std::remove(path.c_str());
}

TEST_F(NetFaultTest, FrameReadDistinguishesIdleFromMidFrameStall) {
  std::vector<std::uint8_t> payload;
  // No bytes at all within the idle window: kIdle (quiet, not broken).
  EXPECT_EQ(net::read_frame_deadline(fds_[1], payload, /*idle=*/50, /*frame=*/1000),
            net::IoStatus::kIdle);

  // Two bytes of the length prefix, then silence: the frame started but
  // never finished — kTimeout, the slow-client eviction signal.
  const std::uint8_t partial_prefix[2] = {8, 0};
  ASSERT_TRUE(net::write_full(fds_[0], partial_prefix, sizeof(partial_prefix)));
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(net::read_frame_deadline(fds_[1], payload, /*idle=*/5000, /*frame=*/100),
            net::IoStatus::kTimeout);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(elapsed, std::chrono::seconds(4));  // bounded, nowhere near idle
}

TEST_F(NetFaultTest, FrameReadCleanEofVsTornFrame) {
  std::vector<std::uint8_t> payload;
  {
    // Peer closes between frames: orderly kEof.
    ::close(fds_[0]);
    fds_[0] = -1;
    EXPECT_EQ(net::read_frame_deadline(fds_[1], payload, 100, 100),
              net::IoStatus::kEof);
  }

  // Fresh pair: peer sends a prefix promising 8 bytes, delivers 4, closes.
  // That is a torn frame — kError, never kEof.
  int pair[2] = {-1, -1};
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, pair), 0);
  const std::uint8_t prefix[4] = {8, 0, 0, 0};
  const std::uint8_t half[4] = {1, 2, 3, 4};
  ASSERT_TRUE(net::write_full(pair[0], prefix, sizeof(prefix)));
  ASSERT_TRUE(net::write_full(pair[0], half, sizeof(half)));
  ::close(pair[0]);
  EXPECT_EQ(net::read_frame_deadline(pair[1], payload, 1000, 1000),
            net::IoStatus::kError);
  ::close(pair[1]);
}

// --------------------------------------------------------------- WAL ----

class WalTest : public FaultTest {
 protected:
  void SetUp() override {
    FaultTest::SetUp();
    path_ = temp_path("test.wal");
    remove_wal_files();
  }
  void TearDown() override {
    remove_wal_files();
    FaultTest::TearDown();
  }

  /// Removes the bare file and its segment family: the service renames the
  /// WAL to `<path>.000001` (SegmentedWal::adopt_legacy), so cleaning only
  /// the bare path would leak segments into the next same-process case.
  void remove_wal_files() {
    std::remove(path_.c_str());
    for (const auto& seg : list_numbered_files(path_)) {
      std::remove(seg.path.c_str());
    }
  }

  /// Appends `batches` through a fresh log and closes it.
  void write_batches(const std::vector<std::vector<Edge>>& batches,
                     WalOptions opts = {}) {
    WriteAheadLog wal;
    std::string err;
    ASSERT_TRUE(wal.open(path_, opts, &err)) << err;
    for (const auto& b : batches) ASSERT_TRUE(wal.append(b));
    wal.close();
  }

  /// Appends raw bytes to the file, bypassing the record framing.
  void append_raw(const void* data, std::size_t n) {
    std::FILE* f = std::fopen(path_.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(data, 1, n, f), n);
    std::fclose(f);
  }

  std::uint64_t file_size() {
    struct stat st {};
    return ::stat(path_.c_str(), &st) == 0 ? static_cast<std::uint64_t>(st.st_size)
                                           : 0;
  }

  std::string path_;
};

TEST_F(WalTest, MissingFileReplaysCleanAndEmpty) {
  const auto r = WriteAheadLog::replay_and_truncate(path_ + ".does-not-exist");
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.edges.empty());
  EXPECT_EQ(r.records, 0u);
  EXPECT_EQ(r.truncated_bytes, 0u);
}

TEST_F(WalTest, EmptyFileReplaysCleanAndEmpty) {
  std::fclose(std::fopen(path_.c_str(), "wb"));  // zero-byte file
  const auto r = WriteAheadLog::replay_and_truncate(path_);
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.edges.empty());

  // open() then upgrades it in place with the magic header.
  WriteAheadLog wal;
  std::string err;
  ASSERT_TRUE(wal.open(path_, {}, &err)) << err;
  wal.close();
  EXPECT_EQ(file_size(), 8u);
}

TEST_F(WalTest, AppendReplayRoundTripPreservesOrder) {
  write_batches({{{1, 2}, {3, 4}}, {{5, 6}}});
  const auto r = WriteAheadLog::replay_and_truncate(path_);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.records, 2u);
  EXPECT_EQ(r.truncated_bytes, 0u);
  ASSERT_EQ(r.edges.size(), 3u);
  EXPECT_EQ(r.edges[0], (Edge{1, 2}));
  EXPECT_EQ(r.edges[1], (Edge{3, 4}));
  EXPECT_EQ(r.edges[2], (Edge{5, 6}));
}

TEST_F(WalTest, TornTailIsTruncatedOnceThenStable) {
  write_batches({{{10, 20}}});
  const auto clean_size = file_size();

  // Simulate a crash mid-append: 5 stray bytes of a never-finished record.
  const std::uint8_t torn[5] = {0xde, 0xad, 0xbe, 0xef, 0x01};
  append_raw(torn, sizeof(torn));

  const auto first = WriteAheadLog::replay_and_truncate(path_);
  ASSERT_TRUE(first.ok) << first.error;
  EXPECT_EQ(first.records, 1u);
  EXPECT_EQ(first.truncated_bytes, sizeof(torn));
  EXPECT_EQ(file_size(), clean_size);  // the torn tail is physically gone

  // Idempotence: a second replay (the double-restart case) sees a clean log.
  const auto second = WriteAheadLog::replay_and_truncate(path_);
  ASSERT_TRUE(second.ok) << second.error;
  EXPECT_EQ(second.records, 1u);
  EXPECT_EQ(second.truncated_bytes, 0u);
  EXPECT_EQ(second.edges, first.edges);
}

TEST_F(WalTest, CorruptCrcTruncatesBackToLastGoodRecord) {
  write_batches({{{1, 2}}, {{3, 4}}});

  // Flip one payload byte of the final record: its CRC no longer matches.
  std::FILE* f = std::fopen(path_.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, -1, SEEK_END), 0);
  std::fputc(0x7f, f);
  std::fclose(f);

  const auto r = WriteAheadLog::replay_and_truncate(path_);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.records, 1u);  // only the intact record survives
  ASSERT_EQ(r.edges.size(), 1u);
  EXPECT_EQ(r.edges[0], (Edge{1, 2}));
  EXPECT_EQ(r.truncated_bytes, 8u + 8u);  // header + one-edge payload
}

TEST_F(WalTest, HandCraftedRecordMatchesTheWriterFormat) {
  // Build a one-record WAL by hand from the documented layout and check the
  // writer-independent reader accepts it — this pins the on-disk format.
  const std::uint8_t payload[8] = {7, 0, 0, 0, 9, 0, 0, 0};  // edge (7, 9)
  const std::uint32_t crc = crc32(payload, sizeof(payload));
  std::FILE* f = std::fopen(path_.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite("ECLWAL01", 1, 8, f);
  const std::uint32_t len = sizeof(payload);
  std::fwrite(&len, sizeof(len), 1, f);
  std::fwrite(&crc, sizeof(crc), 1, f);
  std::fwrite(payload, 1, sizeof(payload), f);
  std::fclose(f);

  const auto r = WriteAheadLog::replay_and_truncate(path_);
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_EQ(r.edges.size(), 1u);
  EXPECT_EQ(r.edges[0], (Edge{7, 9}));
}

TEST_F(WalTest, ForeignFileIsRefusedNotTruncated) {
  const char junk[] = "NOT A WAL, DO NOT EAT";
  append_raw(junk, sizeof(junk));
  const auto before = file_size();

  const auto r = WriteAheadLog::replay_and_truncate(path_);
  EXPECT_FALSE(r.ok);  // bad magic: refuse, never destroy foreign data
  EXPECT_FALSE(r.error.empty());
  EXPECT_EQ(file_size(), before);

  WriteAheadLog wal;  // open() must refuse it too
  std::string err;
  EXPECT_FALSE(wal.open(path_, {}, &err));
}

TEST_F(WalTest, FsyncPolicyMatrixRoundTrips) {
  for (const auto policy :
       {FsyncPolicy::kNone, FsyncPolicy::kBatch, FsyncPolicy::kAlways}) {
    std::remove(path_.c_str());
    WalOptions opts;
    opts.fsync_policy = policy;
    opts.fsync_every = 2;
    write_batches({{{1, 2}}, {{3, 4}}, {{5, 6}}}, opts);
    const auto r = WriteAheadLog::replay_and_truncate(path_);
    ASSERT_TRUE(r.ok) << to_string(policy) << ": " << r.error;
    EXPECT_EQ(r.records, 3u) << to_string(policy);
    EXPECT_EQ(r.edges.size(), 3u) << to_string(policy);
  }
}

TEST_F(WalTest, ParseFsyncPolicyRoundTrips) {
  FsyncPolicy p = FsyncPolicy::kBatch;
  EXPECT_TRUE(parse_fsync_policy("none", &p));
  EXPECT_EQ(p, FsyncPolicy::kNone);
  EXPECT_TRUE(parse_fsync_policy("always", &p));
  EXPECT_EQ(p, FsyncPolicy::kAlways);
  EXPECT_TRUE(parse_fsync_policy("batch", &p));
  EXPECT_EQ(p, FsyncPolicy::kBatch);
  EXPECT_FALSE(parse_fsync_policy("sometimes", &p));
  EXPECT_EQ(p, FsyncPolicy::kBatch);  // out unchanged on failure
  EXPECT_STREQ(to_string(FsyncPolicy::kAlways), "always");
}

TEST_F(WalTest, InjectedAppendFailureClosesTheLog) {
  WriteAheadLog wal;
  std::string err;
  ASSERT_TRUE(wal.open(path_, {}, &err)) << err;
  ASSERT_TRUE(wal.append({{1, 2}}));

  arm("svc.wal.append", fault::Action::kFail, 1);
  EXPECT_FALSE(wal.append({{3, 4}}));
  EXPECT_FALSE(wal.is_open());       // a WAL that cannot persist must not pretend
  EXPECT_FALSE(wal.append({{5, 6}}));  // stays closed

  // The record that failed was never acked; the earlier one replays fine.
  const auto r = WriteAheadLog::replay_and_truncate(path_);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.records, 1u);
}

// -------------------------------------------- service + WAL integration ----

using ServiceWalTest = WalTest;

TEST_F(ServiceWalTest, AckedBatchesSurviveRestart) {
  ServiceOptions opts;
  opts.wal_path = path_;
  opts.compact_interval_ms = 5;
  {
    ConnectivityService service(256, opts);
    ASSERT_EQ(service.submit({{1, 2}, {2, 3}}), Admission::kAccepted);
    ASSERT_EQ(service.submit({{10, 11}}), Admission::kAccepted);
    service.flush();
    EXPECT_TRUE(service.connected(1, 3, ReadMode::kFresh));
    service.stop();
  }  // process "crash" boundary: nothing carries over but the WAL file

  ConnectivityService revived(256, opts);
  EXPECT_EQ(revived.replayed_edges(), 3u);
  EXPECT_TRUE(revived.connected(1, 3));  // snapshot already reflects replay
  EXPECT_TRUE(revived.connected(10, 11));
  EXPECT_FALSE(revived.connected(1, 10));
  const auto h = revived.health();
  EXPECT_TRUE(h.wal_enabled);
  EXPECT_TRUE(h.wal_healthy);
  EXPECT_EQ(h.replayed_edges, 3u);
  revived.stop();
}

TEST_F(ServiceWalTest, DoubleRestartIsIdempotent) {
  ServiceOptions opts;
  opts.wal_path = path_;
  {
    ConnectivityService service(64, opts);
    ASSERT_EQ(service.submit({{4, 5}}), Admission::kAccepted);
    service.stop();
  }
  const auto size_after_crash = file_size();
  {
    // Restart #1 replays but submits nothing new: the log must not grow
    // (replayed edges are already durable; re-appending them would double
    // the file on every boot).
    ConnectivityService service(64, opts);
    EXPECT_EQ(service.replayed_edges(), 1u);
    service.stop();
  }
  EXPECT_EQ(file_size(), size_after_crash);
  {
    ConnectivityService service(64, opts);  // restart #2: same story
    EXPECT_EQ(service.replayed_edges(), 1u);
    EXPECT_TRUE(service.connected(4, 5));
    service.stop();
  }
  EXPECT_EQ(file_size(), size_after_crash);
}

TEST_F(ServiceWalTest, ReplayedOutOfRangeEdgesAreDropped) {
  {
    ServiceOptions opts;
    opts.wal_path = path_;
    ConnectivityService big(1024, opts);
    ASSERT_EQ(big.submit({{2, 3}, {900, 901}}), Admission::kAccepted);
    big.stop();
  }
  // Reopen the same WAL in a smaller universe: edge (900, 901) no longer
  // fits and must be silently dropped, not crash the replay.
  ServiceOptions opts;
  opts.wal_path = path_;
  ConnectivityService small(16, opts);
  EXPECT_TRUE(small.connected(2, 3));
  EXPECT_FALSE(small.connected(4, 5));
  small.stop();
}

TEST_F(ServiceWalTest, WalFailureDegradesToReadOnly) {
  ServiceOptions opts;
  opts.wal_path = path_;
  ConnectivityService service(64, opts);
  ASSERT_EQ(service.submit({{1, 2}}), Admission::kAccepted);
  service.flush();

  arm("svc.wal.append", fault::Action::kFail, 1);
  // Durability cannot be honored: the submit is answered kShed (never a
  // false ack) and the service drops to read-only degraded mode.
  EXPECT_EQ(service.submit({{3, 4}}), Admission::kShed);
  EXPECT_TRUE(service.degraded());

  const auto h = service.health();
  EXPECT_TRUE(h.degraded);
  EXPECT_FALSE(h.wal_healthy);
  EXPECT_TRUE(h.ingest_worker_alive);  // the worker itself is fine
  EXPECT_EQ(h.degraded_entries, 1u);

  EXPECT_EQ(service.submit({{5, 6}}), Admission::kShed);  // ingest stays shut
  EXPECT_TRUE(service.connected(1, 2, ReadMode::kFresh)); // reads keep serving
  service.stop();  // and shutdown still drains cleanly
}

// ------------------------------------------------------- degraded mode ----

using DegradedModeTest = FaultTest;

TEST_F(DegradedModeTest, IngestWorkerDeathDegradesButReadsServe) {
  ServiceOptions opts;
  opts.compact_interval_ms = 5;
  ConnectivityService service(64, opts);
  ASSERT_EQ(service.submit({{1, 2}}), Admission::kAccepted);
  service.flush();
  ASSERT_TRUE(service.connected(1, 2, ReadMode::kFresh));

  arm("svc.ingest.worker", fault::Action::kKill, 1);
  ASSERT_EQ(service.submit({{3, 4}}), Admission::kAccepted);  // poison pill
  ASSERT_TRUE(eventually([&] { return service.degraded(); }));

  const auto h = service.health();
  EXPECT_TRUE(h.degraded);
  EXPECT_FALSE(h.ingest_worker_alive);
  EXPECT_GE(h.degraded_entries, 1u);

  service.flush();  // must return despite the dead worker, not hang
  EXPECT_EQ(service.submit({{5, 6}}), Admission::kShed);
  EXPECT_TRUE(service.connected(1, 2, ReadMode::kFresh));
  EXPECT_TRUE(service.connected(1, 2));
  EXPECT_EQ(service.component_of(9), 9u);
  service.stop();  // joins the already-dead worker without deadlock
}

// A raw-socket GET against the local exporter, so the test exercises the
// same HTTP path a real scraper does.
std::string scrape(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return {};
  }
  const char req[] = "GET /metrics HTTP/1.0\r\n\r\n";
  (void)!::send(fd, req, sizeof req - 1, 0);
  std::string resp;
  char buf[4096];
  ssize_t n = 0;
  while ((n = ::recv(fd, buf, sizeof buf, 0)) > 0) resp.append(buf, static_cast<std::size_t>(n));
  ::close(fd);
  return resp;
}

TEST_F(DegradedModeTest, MetricsExporterKeepsServingWhileDegraded) {
  const std::string wal = temp_path("degraded_exporter.wal");
  std::remove(wal.c_str());
  ServiceOptions opts;
  opts.wal_path = wal;
  ConnectivityService service(64, opts);

  // The same collector wiring ecl_ccd uses: the exporter itself never sees
  // svc types, the daemon injects service state as extra families.
  obs::ExporterOptions eopts;
  eopts.port = 0;
  obs::MetricsExporter exporter(eopts);
  exporter.add_collector([&service](std::string& out) {
    const auto h = service.health();
    out += "# TYPE ecl_svc_degraded gauge\necl_svc_degraded ";
    out += h.degraded ? '1' : '0';
    out += '\n';
  });
  std::string err;
  ASSERT_TRUE(exporter.start(&err)) << err;

  ASSERT_EQ(service.submit({{1, 2}}), Admission::kAccepted);
  service.flush();
  const std::string healthy = scrape(exporter.port());
  EXPECT_NE(healthy.find("200 OK"), std::string::npos);
  EXPECT_NE(healthy.find("ecl_svc_degraded 0\n"), std::string::npos);

  // Break durability: ingest drops to read-only, but observability must be
  // the last thing to die — the endpoint keeps answering, now with
  // degraded=1 so alerts can fire.
  arm("svc.wal.append", fault::Action::kFail, 1);
  EXPECT_EQ(service.submit({{3, 4}}), Admission::kShed);
  ASSERT_TRUE(eventually([&] { return service.degraded(); }));
  const std::string degraded = scrape(exporter.port());
  EXPECT_NE(degraded.find("200 OK"), std::string::npos);
  EXPECT_NE(degraded.find("ecl_svc_degraded 1\n"), std::string::npos);
  EXPECT_GE(exporter.scrapes(), 2u);

  exporter.stop();
  service.stop();
  std::remove(wal.c_str());
}

// -------------------------------------------------- client retry policy ----

/// Live-server fixture (mirrors SvcSocketTest in test_svc.cpp) with fast
/// client backoff so retry-heavy cases stay quick.
class RetryTest : public FaultTest {
 protected:
  void SetUp() override {
    FaultTest::SetUp();
    unix_path_ = temp_path("retry.sock");
    std::remove(unix_path_.c_str());
    start_server();
  }

  void TearDown() override {
    stop_server();
    std::remove(unix_path_.c_str());
    FaultTest::TearDown();
  }

  void start_server() {
    ServiceOptions opts;
    opts.compact_interval_ms = 5;
    service_ = std::make_unique<ConnectivityService>(kVertices, opts);
    ServerOptions sopts;
    sopts.unix_path = unix_path_;
    server_ = std::make_unique<Server>(*service_, sopts);
    std::string err;
    ASSERT_TRUE(server_->start(&err)) << err;
  }

  void stop_server() {
    if (server_) server_->stop();
    if (service_) service_->stop();
    server_.reset();
    service_.reset();
  }

  static ClientOptions fast_opts() {
    ClientOptions copts;
    copts.max_retries = 3;
    copts.backoff_base_ms = 1;
    copts.backoff_max_ms = 8;
    copts.op_timeout_ms = 2000;
    copts.connect_timeout_ms = 2000;
    return copts;
  }

  static constexpr vertex_t kVertices = 256;
  std::string unix_path_;
  std::unique_ptr<ConnectivityService> service_;
  std::unique_ptr<Server> server_;
};

TEST_F(RetryTest, TransportFaultIsRetriedTransparently) {
  auto client = Client::connect_unix(unix_path_, nullptr, fast_opts());
  ASSERT_NE(client, nullptr);
  ASSERT_TRUE(client->ping());  // connection warmed up, server idle

  // The next socket write (ours — the server is parked in read_frame) dies.
  arm("svc.net.write", fault::Action::kFail, 1);
  EXPECT_TRUE(client->ping());  // reconnect + retry hides the failure
  EXPECT_GE(client->retries(), 1u);
  EXPECT_GE(client->reconnects(), 1u);
}

TEST_F(RetryTest, ShedIsRetriedThenReportedAsShed) {
  // Kill the ingest worker: every submit sheds, so retries cannot succeed —
  // the client must burn its budget and then report kShed truthfully.
  arm("svc.ingest.worker", fault::Action::kKill, 1);
  ASSERT_EQ(service_->submit({{1, 2}}), Admission::kAccepted);
  ASSERT_TRUE(eventually([&] { return service_->degraded(); }));

  auto client = Client::connect_unix(unix_path_, nullptr, fast_opts());
  ASSERT_NE(client, nullptr);
  EXPECT_EQ(client->ingest({{3, 4}}), Status::kShed);
  EXPECT_EQ(client->retries(), 3u);  // exactly max_retries attempts burned

  // Queries still round-trip against the degraded service.
  std::uint64_t count = 0;
  EXPECT_TRUE(client->component_count(count));
  ServiceHealth h{};
  ASSERT_TRUE(client->health(h));
  EXPECT_TRUE(h.degraded);
}

TEST_F(RetryTest, ClientSurvivesServerRestart) {
  auto client = Client::connect_unix(unix_path_, nullptr, fast_opts());
  ASSERT_NE(client, nullptr);
  ASSERT_TRUE(client->ping());

  stop_server();    // the daemon "crashes"...
  start_server();   // ...and comes back on the same endpoint

  EXPECT_TRUE(client->ping());  // stale fd detected, reconnected, retried
  EXPECT_GE(client->reconnects(), 1u);

  Status st = Status::kOk;
  EXPECT_FALSE(client->connected(1, 2, ReadMode::kSnapshot, &st));
  EXPECT_EQ(st, Status::kOk);
}

TEST_F(RetryTest, HealthRpcEndToEnd) {
  auto client = Client::connect_unix(unix_path_, nullptr, fast_opts());
  ASSERT_NE(client, nullptr);
  ServiceHealth h{};
  ASSERT_TRUE(client->health(h));
  EXPECT_FALSE(h.degraded);
  EXPECT_TRUE(h.ingest_worker_alive);
  EXPECT_FALSE(h.wal_enabled);  // this fixture runs WAL-less
  EXPECT_EQ(h.degraded_entries, 0u);
}

// --------------------------------------------------- server eviction ----

class EvictionTest : public FaultTest {
 protected:
  void SetUp() override {
    FaultTest::SetUp();
    unix_path_ = temp_path("evict.sock");
    std::remove(unix_path_.c_str());
    service_ = std::make_unique<ConnectivityService>(64);
  }

  void TearDown() override {
    if (server_) server_->stop();
    service_->stop();
    std::remove(unix_path_.c_str());
    FaultTest::TearDown();
  }

  void start_server(ServerOptions sopts) {
    sopts.unix_path = unix_path_;
    server_ = std::make_unique<Server>(*service_, sopts);
    std::string err;
    ASSERT_TRUE(server_->start(&err)) << err;
  }

  /// Blocks until the server closes `fd` (recv returns 0), or fails.
  static bool wait_for_eviction(int fd) {
    net::set_io_timeouts(fd, /*recv=*/5000, /*send=*/0);
    char byte = 0;
    return ::recv(fd, &byte, 1, 0) == 0;
  }

  std::string unix_path_;
  std::unique_ptr<ConnectivityService> service_;
  std::unique_ptr<Server> server_;
};

TEST_F(EvictionTest, MidFrameStallerIsEvicted) {
  ServerOptions sopts;
  sopts.frame_timeout_ms = 100;
  start_server(sopts);

  std::string err;
  const int fd = net::connect_unix(unix_path_, &err, 2000);
  ASSERT_GE(fd, 0) << err;
  // Start a frame (2 of 4 prefix bytes), then go silent: a stuck peer must
  // not pin a handler thread past frame_timeout_ms.
  const std::uint8_t partial[2] = {16, 0};
  ASSERT_TRUE(net::write_full(fd, partial, sizeof(partial)));
  EXPECT_TRUE(wait_for_eviction(fd));
  ::close(fd);

  // The server is still healthy for well-behaved clients.
  auto client = Client::connect_unix(unix_path_);
  ASSERT_NE(client, nullptr);
  EXPECT_TRUE(client->ping());
}

TEST_F(EvictionTest, IdleConnectionIsEvictedWhenConfigured) {
  ServerOptions sopts;
  sopts.idle_timeout_ms = 100;
  start_server(sopts);

  std::string err;
  const int fd = net::connect_unix(unix_path_, &err, 2000);
  ASSERT_GE(fd, 0) << err;
  EXPECT_TRUE(wait_for_eviction(fd));  // sent nothing at all
  ::close(fd);
}

TEST_F(EvictionTest, IdleForeverIsAllowedByDefault) {
  ServerOptions sopts;
  sopts.frame_timeout_ms = 100;  // tight frame bound, but no idle bound
  start_server(sopts);

  std::string err;
  const int fd = net::connect_unix(unix_path_, &err, 2000);
  ASSERT_GE(fd, 0) << err;
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  // Still connected: a quiet-but-healthy client may speak after a pause
  // three times the frame timeout.
  auto client = Client::connect_unix(unix_path_);  // sanity: server alive
  ASSERT_NE(client, nullptr);
  Request req;
  req.type = MsgType::kPing;
  req.id = 7;
  std::vector<std::uint8_t> bytes;
  encode_request(req, bytes);
  ASSERT_TRUE(net::write_frame(fd, bytes));
  std::vector<std::uint8_t> payload;
  ASSERT_TRUE(net::read_frame(fd, payload));
  Response resp;
  ASSERT_TRUE(decode_response(payload, resp));
  EXPECT_EQ(resp.status, Status::kOk);
  EXPECT_EQ(resp.id, 7u);
  ::close(fd);
}

}  // namespace
}  // namespace ecl::svc
