// Tests for the streaming/incremental connectivity API.
#include <gtest/gtest.h>

#include <thread>

#include "core/incremental.h"
#include "core/verify.h"
#include "graph/generators.h"
#include "graph/stats.h"

namespace ecl {
namespace {

TEST(IncrementalCC, StartsAllSingletons) {
  IncrementalCC cc(5);
  EXPECT_EQ(cc.num_components(), 5u);
  EXPECT_FALSE(cc.connected(0, 1));
  EXPECT_EQ(cc.component_of(3), 3u);
}

TEST(IncrementalCC, EdgeInsertionMergesComponents) {
  IncrementalCC cc(6);
  cc.add_edge(0, 1);
  EXPECT_TRUE(cc.connected(0, 1));
  EXPECT_FALSE(cc.connected(0, 2));
  cc.add_edge(2, 3);
  cc.add_edge(1, 2);
  EXPECT_TRUE(cc.connected(0, 3));
  EXPECT_EQ(cc.num_components(), 3u);  // {0,1,2,3}, {4}, {5}
}

TEST(IncrementalCC, QueriesInterleaveWithInsertions) {
  IncrementalCC cc(100);
  for (vertex_t v = 0; v + 1 < 100; ++v) {
    EXPECT_FALSE(cc.connected(0, v + 1));
    cc.add_edge(v, v + 1);
    EXPECT_TRUE(cc.connected(0, v + 1));
  }
  EXPECT_EQ(cc.num_components(), 1u);
}

TEST(IncrementalCC, DuplicateAndReversedEdgesAreIdempotent) {
  IncrementalCC cc(4);
  cc.add_edge(0, 1);
  cc.add_edge(1, 0);
  cc.add_edge(0, 1);
  EXPECT_EQ(cc.num_components(), 3u);
}

TEST(IncrementalCC, SeededFromGraphMatchesBatchLabels) {
  const Graph g = gen_web_graph(3000, 13);
  IncrementalCC cc(g);
  EXPECT_EQ(cc.labels(), reference_components(g));
}

TEST(IncrementalCC, StreamingMatchesBatchOnFinalGraph) {
  // Insert the edges of a random graph one by one; the final labeling must
  // equal the batch computation on the whole graph.
  const Graph g = gen_uniform_random(2000, 5000, 23);
  IncrementalCC cc(g.num_vertices());
  for (vertex_t v = 0; v < g.num_vertices(); ++v) {
    for (const vertex_t u : g.neighbors(v)) {
      if (u < v) cc.add_edge(v, u);
    }
  }
  EXPECT_EQ(cc.labels(), reference_components(g));
}

TEST(IncrementalCC, ConcurrentInsertions) {
  constexpr vertex_t kN = 30000;
  IncrementalCC cc(kN);
  std::vector<std::thread> workers;
  for (int t = 0; t < 6; ++t) {
    workers.emplace_back([&cc, t] {
      for (vertex_t v = static_cast<vertex_t>(t); v + 1 < kN; v += 6) {
        cc.add_edge(v, v + 1);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(cc.num_components(), 1u);
  const auto labels = cc.labels();
  for (vertex_t v = 0; v < kN; ++v) ASSERT_EQ(labels[v], 0u);
}

TEST(IncrementalCC, BulkInsertMatchesEdgeByEdge) {
  const Graph g = gen_uniform_random(2000, 5000, 31);
  std::vector<Edge> edges;
  for (vertex_t v = 0; v < g.num_vertices(); ++v) {
    for (const vertex_t u : g.neighbors(v)) {
      if (u < v) edges.emplace_back(v, u);
    }
  }
  IncrementalCC bulk(g.num_vertices());
  bulk.add_edges(edges.data(), edges.size());

  IncrementalCC serial(g.num_vertices());
  for (const auto& [u, v] : edges) serial.add_edge(u, v);

  EXPECT_EQ(bulk.labels(), serial.labels());
  EXPECT_EQ(bulk.num_components(), serial.num_components());
}

TEST(IncrementalCC, BulkInsertEmptyIsNoOp) {
  IncrementalCC cc(5);
  cc.add_edges(nullptr, 0);
  EXPECT_EQ(cc.num_components(), 5u);
}

// Stress: bulk writers race with connectivity readers. Connectivity is
// monotone (no deletions), so a reader that has seen connected(0, v) may
// never observe it false again.
TEST(IncrementalCC, ConcurrentBulkAddAndQuery) {
  constexpr vertex_t kN = 20000;
  constexpr int kWriters = 4;
  IncrementalCC cc(kN);

  // Partition the path 0-1-2-...-(kN-1) into per-writer chunks.
  std::vector<std::vector<Edge>> chunks(kWriters);
  for (vertex_t v = 0; v + 1 < kN; ++v) {
    chunks[v % kWriters].emplace_back(v, v + 1);
  }

  std::atomic<bool> done{false};
  std::atomic<bool> violation{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      vertex_t frontier = 0;
      while (!done.load(std::memory_order_acquire)) {
        if (frontier + 1 < kN && cc.connected(0, frontier + 1)) {
          ++frontier;
        } else if (frontier > 0 && !cc.connected(0, frontier)) {
          violation.store(true);
          return;
        }
      }
    });
  }

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&cc, &chunks, w] {
      // Each writer bulk-inserts its chunk in slices, so unites from
      // different writers interleave heavily.
      const auto& chunk = chunks[static_cast<std::size_t>(w)];
      constexpr std::size_t kSlice = 256;
      for (std::size_t off = 0; off < chunk.size(); off += kSlice) {
        cc.add_edges(chunk.data() + off, std::min(kSlice, chunk.size() - off));
      }
    });
  }
  for (auto& t : writers) t.join();
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  EXPECT_FALSE(violation.load());
  EXPECT_EQ(cc.num_components(), 1u);
  EXPECT_TRUE(cc.connected(0, kN - 1));
}

TEST(IncrementalCC, LabelsAreCanonicalMinima) {
  IncrementalCC cc(10);
  cc.add_edge(9, 7);
  cc.add_edge(7, 5);
  const auto labels = cc.labels();
  EXPECT_EQ(labels[9], 5u);
  EXPECT_EQ(labels[7], 5u);
  EXPECT_EQ(labels[5], 5u);
  EXPECT_EQ(labels[0], 0u);
}

}  // namespace
}  // namespace ecl
