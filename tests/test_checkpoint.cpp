// Durability tests for the checkpoint + segmented-WAL layer
// (docs/ROBUSTNESS.md "Checkpoint format", "Segmented WAL + checkpoints"):
// the numbered-file naming shared by segments and checkpoints, the
// CheckpointStore write/load/retention protocol (including fallback past a
// torn or corrupt newest checkpoint), SegmentedWal rotation / tail-only
// replay / retirement, and the service-level contract — bounded restart
// (checkpoint load + tail replay), WAL segments retired once covered, a
// short write mid-record degrading the service without losing acked edges,
// and a failed torn-tail truncation refusing the reopen.
//
// Same registry discipline as test_fault_svc.cpp: every case that arms the
// process-wide fault registry disarms it again in TearDown.
#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "fault/fault.h"
#include "svc/checkpoint.h"
#include "svc/service.h"
#include "svc/wal.h"

namespace ecl::svc {
namespace {

fault::Registry& reg() { return fault::Registry::instance(); }

void arm(const char* point, fault::Action action, std::uint64_t times,
         std::uint64_t arg = 0) {
  fault::PointSpec spec;
  spec.point = point;
  spec.action = action;
  spec.times = times;
  spec.arg = arg;
  reg().arm_point(std::move(spec));
}

/// Every test gets a fresh directory (segments and checkpoints are file
/// *families*, so per-file cleanup is not enough) and a disarmed registry.
class DurabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    reg().disarm_all();
    char tmpl[] = "/tmp/ecl_ckpt_test_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
    reg().disarm_all();
  }

  std::string path(const std::string& name) const { return dir_ + "/" + name; }

  static void write_raw(const std::string& p, const void* data, std::size_t n,
                        bool append = false) {
    std::FILE* f = std::fopen(p.c_str(), append ? "ab" : "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(data, 1, n, f), n);
    std::fclose(f);
  }

  static bool exists(const std::string& p) {
    struct stat st {};
    return ::stat(p.c_str(), &st) == 0;
  }

  static std::uint64_t file_size(const std::string& p) {
    struct stat st {};
    return ::stat(p.c_str(), &st) == 0 ? static_cast<std::uint64_t>(st.st_size) : 0;
  }

  static CheckpointData sample_data(std::uint32_t n, std::uint64_t watermark,
                                    std::uint64_t epoch, std::uint64_t wal_seq) {
    CheckpointData d;
    d.n = n;
    d.watermark = watermark;
    d.epoch = epoch;
    d.wal_seq = wal_seq;
    d.labels.resize(n);
    for (std::uint32_t v = 0; v < n; ++v) d.labels[v] = v / 2 * 2;  // pairs
    return d;
  }

  std::string dir_;
};

// ------------------------------------------------------ numbered files ----

using NumberedFilesTest = DurabilityTest;

TEST_F(NumberedFilesTest, PathIsSixDigitZeroPadded) {
  EXPECT_EQ(numbered_path("/x/wal", 7), "/x/wal.000007");
  EXPECT_EQ(numbered_path("/x/wal", 123456), "/x/wal.123456");
}

TEST_F(NumberedFilesTest, ListingSortsBySeqAndIgnoresStrays) {
  const std::string base = path("wal");
  const char byte = 0;
  write_raw(base + ".000010", &byte, 1);
  write_raw(base + ".000002", &byte, 1);
  write_raw(base + ".tmp", &byte, 1);       // not six digits
  write_raw(base + ".00003x", &byte, 1);    // non-digit
  write_raw(path("other.000001"), &byte, 1);  // different stem

  const auto files = list_numbered_files(base);
  ASSERT_EQ(files.size(), 2u);
  EXPECT_EQ(files[0].seq, 2u);
  EXPECT_EQ(files[1].seq, 10u);
  EXPECT_EQ(files[1].path, base + ".000010");
  EXPECT_EQ(files[0].bytes, 1u);
}

// ----------------------------------------------------- checkpoint store ----

using CheckpointStoreTest = DurabilityTest;

TEST_F(CheckpointStoreTest, WriteLoadRoundTrip) {
  CheckpointStore store;
  store.open(path("ckpt"));
  EXPECT_EQ(store.count(), 0u);

  const auto data = sample_data(/*n=*/8, /*watermark=*/5, /*epoch=*/3, /*wal_seq=*/2);
  const auto w = store.write(data);
  ASSERT_TRUE(w.ok) << w.error;
  EXPECT_EQ(w.seq, 1u);
  EXPECT_GT(w.bytes, 0u);
  EXPECT_TRUE(exists(numbered_path(path("ckpt"), 1)));
  EXPECT_FALSE(exists(path("ckpt.tmp")));  // temp image renamed away

  const auto load = store.load_latest_valid();
  ASSERT_TRUE(load.ok) << load.error;
  EXPECT_TRUE(load.found_any);
  EXPECT_EQ(load.seq, 1u);
  EXPECT_EQ(load.fallbacks, 0u);
  EXPECT_EQ(load.data.n, 8u);
  EXPECT_EQ(load.data.watermark, 5u);
  EXPECT_EQ(load.data.epoch, 3u);
  EXPECT_EQ(load.data.wal_seq, 2u);
  EXPECT_EQ(load.data.labels, data.labels);
}

TEST_F(CheckpointStoreTest, FreshDirectoryIsNotAnError) {
  CheckpointStore store;
  store.open(path("ckpt"));
  const auto load = store.load_latest_valid();
  EXPECT_FALSE(load.ok);
  EXPECT_FALSE(load.found_any);  // first boot: start from scratch
}

TEST_F(CheckpointStoreTest, RetentionKeepsNewestTwo) {
  CheckpointStore store;
  store.open(path("ckpt"), /*keep=*/2);
  for (std::uint64_t i = 1; i <= 3; ++i) {
    const auto w = store.write(sample_data(4, i * 10, i, i));
    ASSERT_TRUE(w.ok) << w.error;
    EXPECT_EQ(w.seq, i);
  }
  EXPECT_EQ(store.count(), 2u);
  EXPECT_EQ(store.latest_seq(), 3u);
  EXPECT_FALSE(exists(numbered_path(path("ckpt"), 1)));  // retired
  EXPECT_TRUE(exists(numbered_path(path("ckpt"), 2)));
  EXPECT_TRUE(exists(numbered_path(path("ckpt"), 3)));
}

TEST_F(CheckpointStoreTest, CorruptNewestFallsBackToPrevious) {
  CheckpointStore store;
  store.open(path("ckpt"));
  ASSERT_TRUE(store.write(sample_data(4, 10, 1, 1)).ok);
  ASSERT_TRUE(store.write(sample_data(4, 20, 2, 2)).ok);

  // Flip one payload byte of the newest checkpoint: its CRC no longer
  // matches and the loader must land on seq 1, not fail.
  const std::string newest = numbered_path(path("ckpt"), 2);
  std::FILE* f = std::fopen(newest.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, -1, SEEK_END), 0);
  std::fputc(0x7f, f);
  std::fclose(f);

  const auto load = store.load_latest_valid();
  ASSERT_TRUE(load.ok) << load.error;
  EXPECT_EQ(load.seq, 1u);
  EXPECT_EQ(load.fallbacks, 1u);
  EXPECT_EQ(load.data.watermark, 10u);
}

TEST_F(CheckpointStoreTest, TornNewestFallsBackToPrevious) {
  CheckpointStore store;
  store.open(path("ckpt"));
  ASSERT_TRUE(store.write(sample_data(4, 10, 1, 1)).ok);
  ASSERT_TRUE(store.write(sample_data(4, 20, 2, 2)).ok);

  // Crash mid-write would normally leave only the .tmp, but simulate the
  // worst case anyway: a short final image under the numbered name.
  const std::string newest = numbered_path(path("ckpt"), 2);
  ASSERT_EQ(::truncate(newest.c_str(), 10), 0);

  const auto load = store.load_latest_valid();
  ASSERT_TRUE(load.ok) << load.error;
  EXPECT_EQ(load.seq, 1u);
  EXPECT_EQ(load.fallbacks, 1u);
}

TEST_F(CheckpointStoreTest, AllCorruptReportsErrorNotGarbage) {
  CheckpointStore store;
  store.open(path("ckpt"));
  ASSERT_TRUE(store.write(sample_data(4, 10, 1, 1)).ok);
  const char junk[] = "NOT A CHECKPOINT";
  write_raw(numbered_path(path("ckpt"), 1), junk, sizeof(junk));

  const auto load = store.load_latest_valid();
  EXPECT_FALSE(load.ok);
  EXPECT_TRUE(load.found_any);
  EXPECT_FALSE(load.error.empty());
}

TEST_F(CheckpointStoreTest, RetentionFloorIsOldestRetainedWalSeq) {
  CheckpointStore store;
  store.open(path("ckpt"), /*keep=*/2);
  // Fewer checkpoints than the keep count: retiring anything could strand
  // the fallback path, so the floor must be 0.
  ASSERT_TRUE(store.write(sample_data(4, 10, 1, /*wal_seq=*/7)).ok);
  EXPECT_EQ(store.retention_floor_wal_seq(), 0u);

  ASSERT_TRUE(store.write(sample_data(4, 20, 2, /*wal_seq=*/9)).ok);
  EXPECT_EQ(store.retention_floor_wal_seq(), 7u);  // oldest retained, not newest

  ASSERT_TRUE(store.write(sample_data(4, 30, 3, /*wal_seq=*/12)).ok);
  EXPECT_EQ(store.retention_floor_wal_seq(), 9u);
}

TEST_F(CheckpointStoreTest, ReopenScansExistingChain) {
  {
    CheckpointStore store;
    store.open(path("ckpt"));
    ASSERT_TRUE(store.write(sample_data(4, 10, 1, 1)).ok);
    ASSERT_TRUE(store.write(sample_data(4, 20, 2, 2)).ok);
  }
  CheckpointStore reopened;  // a restarted process
  reopened.open(path("ckpt"));
  EXPECT_EQ(reopened.count(), 2u);
  EXPECT_EQ(reopened.latest_seq(), 2u);
  const auto load = reopened.load_latest_valid();
  ASSERT_TRUE(load.ok) << load.error;
  EXPECT_EQ(load.data.watermark, 20u);
  const auto w = reopened.write(sample_data(4, 30, 3, 3));
  ASSERT_TRUE(w.ok) << w.error;
  EXPECT_EQ(w.seq, 3u);  // numbering continues, never reuses
}

TEST_F(CheckpointStoreTest, HandCraftedImageMatchesTheWriterFormat) {
  // Build a one-checkpoint image by hand from the documented layout and
  // check read_file accepts it — this pins the on-disk format.
  const std::uint32_t version = 1, n = 2;
  const std::uint64_t watermark = 6, epoch = 4, wal_seq = 3;
  const std::uint32_t labels[2] = {0, 0};
  std::vector<std::uint8_t> payload;
  const auto put = [&payload](const void* p, std::size_t sz) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    payload.insert(payload.end(), b, b + sz);
  };
  put(&version, 4);
  put(&n, 4);
  put(&watermark, 8);
  put(&epoch, 8);
  put(&wal_seq, 8);
  put(labels, sizeof(labels));
  const std::uint32_t crc = crc32(payload.data(), payload.size());

  std::FILE* f = std::fopen(numbered_path(path("ckpt"), 1).c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite("ECLCKPT1", 1, 8, f);
  std::fwrite(&crc, 4, 1, f);
  std::fwrite(payload.data(), 1, payload.size(), f);
  std::fclose(f);

  CheckpointData out;
  std::string err;
  ASSERT_TRUE(CheckpointStore::read_file(numbered_path(path("ckpt"), 1), &out, &err))
      << err;
  EXPECT_EQ(out.n, 2u);
  EXPECT_EQ(out.watermark, 6u);
  EXPECT_EQ(out.epoch, 4u);
  EXPECT_EQ(out.wal_seq, 3u);
  ASSERT_EQ(out.labels.size(), 2u);
  EXPECT_EQ(out.labels[1], 0u);
}

TEST_F(CheckpointStoreTest, InjectedWriteFaultLeavesOldChainIntact) {
  CheckpointStore store;
  store.open(path("ckpt"));
  ASSERT_TRUE(store.write(sample_data(4, 10, 1, 1)).ok);

  for (const char* point : {"svc.ckpt.write", "svc.ckpt.fsync", "svc.ckpt.rename"}) {
    arm(point, fault::Action::kFail, 1);
    const auto w = store.write(sample_data(4, 20, 2, 2));
    EXPECT_FALSE(w.ok) << point;
    EXPECT_FALSE(w.error.empty()) << point;
    const auto load = store.load_latest_valid();  // previous chain untouched
    ASSERT_TRUE(load.ok) << point << ": " << load.error;
    EXPECT_EQ(load.data.watermark, 10u) << point;
    reg().disarm_all();
  }
}

// -------------------------------------------------------- segmented WAL ----

using SegmentedWalTest = DurabilityTest;

TEST_F(SegmentedWalTest, AdoptLegacyRenamesBareFile) {
  const std::string base = path("wal");
  {
    WriteAheadLog legacy;
    std::string err;
    ASSERT_TRUE(legacy.open(base, {}, &err)) << err;
    ASSERT_TRUE(legacy.append({{1, 2}}));
    legacy.close();
  }
  std::string err;
  ASSERT_TRUE(SegmentedWal::adopt_legacy(base, &err)) << err;
  EXPECT_FALSE(exists(base));
  EXPECT_TRUE(exists(base + ".000001"));
  ASSERT_TRUE(SegmentedWal::adopt_legacy(base, &err)) << err;  // idempotent

  const auto rep = SegmentedWal::replay(base, 0);
  ASSERT_TRUE(rep.ok) << rep.error;
  EXPECT_EQ(rep.segments, 1u);
  ASSERT_EQ(rep.edges.size(), 1u);
  EXPECT_EQ(rep.edges[0], (Edge{1, 2}));
}

TEST_F(SegmentedWalTest, SizeRotationSplitsAndReplayPreservesOrder) {
  const std::string base = path("wal");
  SegmentedWalOptions opts;
  opts.segment_bytes = 64;  // a couple of records per segment
  SegmentedWal wal;
  std::string err;
  ASSERT_TRUE(wal.open(base, opts, 1, &err)) << err;
  for (vertex_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(wal.append({{i, i + 100}}));
  }
  EXPECT_GT(wal.segment_count(), 2u);
  EXPECT_GT(wal.active_seq(), 2u);
  EXPECT_EQ(wal.appended_records(), 10u);
  wal.close();

  const auto rep = SegmentedWal::replay(base, 0);
  ASSERT_TRUE(rep.ok) << rep.error;
  EXPECT_GT(rep.segments, 2u);
  ASSERT_EQ(rep.edges.size(), 10u);
  for (vertex_t i = 0; i < 10; ++i) {
    EXPECT_EQ(rep.edges[i], (Edge{i, i + 100}));  // cross-segment order
  }
}

TEST_F(SegmentedWalTest, ReplayAfterSeqSkipsCoveredSegments) {
  const std::string base = path("wal");
  SegmentedWal wal;
  std::string err;
  ASSERT_TRUE(wal.open(base, {}, 1, &err)) << err;
  ASSERT_TRUE(wal.append({{1, 2}}));
  ASSERT_TRUE(wal.rotate(&err)) << err;  // the checkpoint cut
  ASSERT_TRUE(wal.append({{3, 4}}));
  wal.close();

  const auto tail = SegmentedWal::replay(base, /*after_seq=*/1);
  ASSERT_TRUE(tail.ok) << tail.error;
  EXPECT_EQ(tail.segments, 1u);
  ASSERT_EQ(tail.edges.size(), 1u);
  EXPECT_EQ(tail.edges[0], (Edge{3, 4}));  // segment 1 is covered, skipped

  const auto all = SegmentedWal::replay(base, 0);
  ASSERT_TRUE(all.ok) << all.error;
  EXPECT_EQ(all.edges.size(), 2u);
}

TEST_F(SegmentedWalTest, RetireThroughDeletesSealedOnly) {
  const std::string base = path("wal");
  SegmentedWal wal;
  std::string err;
  ASSERT_TRUE(wal.open(base, {}, 1, &err)) << err;
  ASSERT_TRUE(wal.append({{1, 2}}));
  ASSERT_TRUE(wal.rotate(&err)) << err;
  ASSERT_TRUE(wal.append({{3, 4}}));
  ASSERT_TRUE(wal.rotate(&err)) << err;
  ASSERT_TRUE(wal.append({{5, 6}}));  // active segment 3

  EXPECT_EQ(wal.retire_through(wal.active_seq()), 2u);  // never the active one
  EXPECT_FALSE(exists(base + ".000001"));
  EXPECT_FALSE(exists(base + ".000002"));
  EXPECT_TRUE(exists(base + ".000003"));
  EXPECT_EQ(wal.segment_count(), 1u);
  wal.close();

  const auto rep = SegmentedWal::replay(base, 0);
  ASSERT_TRUE(rep.ok) << rep.error;
  ASSERT_EQ(rep.edges.size(), 1u);
  EXPECT_EQ(rep.edges[0], (Edge{5, 6}));
}

TEST_F(SegmentedWalTest, FirstSeqKeepsNumberingMonotonicAfterRetention) {
  // A checkpoint-led recovery where every segment was retired: the next
  // segment must continue the sequence (covered_seq + 1), never restart at
  // 1, or a later replay would re-apply it against the wrong checkpoint.
  const std::string base = path("wal");
  SegmentedWal wal;
  std::string err;
  ASSERT_TRUE(wal.open(base, {}, /*first_seq=*/5, &err)) << err;
  EXPECT_EQ(wal.active_seq(), 5u);
  ASSERT_TRUE(wal.append({{1, 2}}));
  wal.close();
  EXPECT_TRUE(exists(base + ".000005"));

  const auto rep = SegmentedWal::replay(base, /*after_seq=*/4);
  ASSERT_TRUE(rep.ok) << rep.error;
  EXPECT_EQ(rep.edges.size(), 1u);
}

TEST_F(SegmentedWalTest, TornFinalSegmentIsTruncated) {
  const std::string base = path("wal");
  SegmentedWal wal;
  std::string err;
  ASSERT_TRUE(wal.open(base, {}, 1, &err)) << err;
  ASSERT_TRUE(wal.append({{1, 2}}));
  ASSERT_TRUE(wal.rotate(&err)) << err;
  ASSERT_TRUE(wal.append({{3, 4}}));
  wal.close();

  const std::uint8_t torn[5] = {0xde, 0xad, 0xbe, 0xef, 0x01};
  write_raw(base + ".000002", torn, sizeof(torn), /*append=*/true);

  const auto rep = SegmentedWal::replay(base, 0);
  ASSERT_TRUE(rep.ok) << rep.error;  // the final segment may legally be torn
  EXPECT_EQ(rep.truncated_bytes, sizeof(torn));
  EXPECT_EQ(rep.edges.size(), 2u);
}

TEST_F(SegmentedWalTest, TornSealedSegmentFailsReplay) {
  const std::string base = path("wal");
  SegmentedWal wal;
  std::string err;
  ASSERT_TRUE(wal.open(base, {}, 1, &err)) << err;
  ASSERT_TRUE(wal.append({{1, 2}}));
  ASSERT_TRUE(wal.rotate(&err)) << err;
  ASSERT_TRUE(wal.append({{3, 4}}));
  wal.close();

  // Garbage in a *sealed* segment is not a crash artifact (only the final
  // segment can tear) — replay must refuse rather than silently drop the
  // acked edges that follow in later segments.
  const std::uint8_t torn[5] = {0xde, 0xad, 0xbe, 0xef, 0x01};
  write_raw(base + ".000001", torn, sizeof(torn), /*append=*/true);
  const auto before = file_size(base + ".000001");

  const auto rep = SegmentedWal::replay(base, 0);
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.error.find("sealed"), std::string::npos) << rep.error;
  EXPECT_EQ(file_size(base + ".000001"), before);  // refused, not truncated
}

// ------------------------------------------------- service integration ----

using ServiceCheckpointTest = DurabilityTest;

TEST_F(ServiceCheckpointTest, CleanStopCheckpointsAndRestartSkipsReplay) {
  ServiceOptions opts;
  opts.wal_path = path("wal");
  opts.checkpoint_path = path("ckpt");
  opts.checkpoint_interval_ms = 0;  // explicit + final-on-stop only
  {
    ConnectivityService service(64, opts);
    ASSERT_EQ(service.submit({{1, 2}, {2, 3}}), Admission::kAccepted);
    ASSERT_EQ(service.submit({{10, 11}}), Admission::kAccepted);
    service.flush();
    service.stop();  // writes the final checkpoint
  }
  ConnectivityService revived(64, opts);
  // Bounded restart: the checkpoint covers everything, the WAL tail is
  // empty, and no edge needed replaying or re-solving.
  EXPECT_EQ(revived.replayed_edges(), 0u);
  EXPECT_TRUE(revived.connected(1, 3));
  EXPECT_TRUE(revived.connected(10, 11));
  EXPECT_FALSE(revived.connected(1, 10));
  const auto h = revived.health();
  EXPECT_TRUE(h.checkpoint_enabled);
  EXPECT_GT(h.last_checkpoint_epoch, 0u);
  const auto stats = revived.stats();
  EXPECT_EQ(stats.watermark, 3u);  // snapshot already reflects the labels
  revived.stop();
}

TEST_F(ServiceCheckpointTest, RestartReplaysOnlyTheUncheckpointedTail) {
  ServiceOptions opts;
  opts.wal_path = path("wal");
  opts.checkpoint_path = path("ckpt");
  opts.checkpoint_interval_ms = 0;
  {
    ConnectivityService service(64, opts);
    ASSERT_EQ(service.submit({{1, 2}, {2, 3}}), Admission::kAccepted);
    service.flush();
    ASSERT_TRUE(service.checkpoint_now());
    ASSERT_EQ(service.submit({{20, 21}}), Admission::kAccepted);
    service.flush();
    // Fail every later checkpoint (including the final one on stop): the
    // post-checkpoint batch stays WAL-only, like a crash would leave it.
    arm("svc.ckpt.write", fault::Action::kFail, 100);
    service.stop();
  }
  reg().disarm_all();

  ConnectivityService revived(64, opts);
  EXPECT_EQ(revived.replayed_edges(), 1u);  // the tail, not lifetime ingest
  EXPECT_TRUE(revived.connected(1, 3));     // from the checkpoint labels
  EXPECT_TRUE(revived.connected(20, 21));   // from the tail replay
  EXPECT_FALSE(revived.connected(1, 20));
  revived.stop();
}

TEST_F(ServiceCheckpointTest, CheckpointNowRetiresCoveredSegments) {
  ServiceOptions opts;
  opts.wal_path = path("wal");
  opts.checkpoint_path = path("ckpt");
  opts.checkpoint_interval_ms = 0;
  opts.wal_segment_bytes = 256;  // rotate every few batches

  ConnectivityService service(1024, opts);
  for (vertex_t i = 0; i + 1 < 200; i += 2) {
    ASSERT_EQ(service.submit({{i, i + 1}}), Admission::kAccepted);
  }
  service.flush();
  const auto before = service.stats().wal_segments;
  EXPECT_GT(before, 3u);  // rotation actually happened

  // Two checkpoints with progress in between: the retention floor advances
  // to the first checkpoint's cut, retiring every segment before it.
  ASSERT_TRUE(service.checkpoint_now());
  ASSERT_EQ(service.submit({{500, 501}}), Admission::kAccepted);
  service.flush();
  ASSERT_TRUE(service.checkpoint_now());

  const auto stats = service.stats();
  EXPECT_LT(stats.wal_segments, before);
  EXPECT_GE(stats.checkpoints, 2u);
  EXPECT_GT(stats.last_checkpoint_epoch, 0u);
  service.stop();

  // The retained tail + checkpoint still answer everything.
  ConnectivityService revived(1024, opts);
  EXPECT_TRUE(revived.connected(0, 1));
  EXPECT_TRUE(revived.connected(198, 199));
  EXPECT_TRUE(revived.connected(500, 501));
  EXPECT_FALSE(revived.connected(0, 2));
  revived.stop();
}

TEST_F(ServiceCheckpointTest, CorruptNewestCheckpointFallsBackOnRestart) {
  ServiceOptions opts;
  opts.wal_path = path("wal");
  opts.checkpoint_path = path("ckpt");
  opts.checkpoint_interval_ms = 0;
  {
    ConnectivityService service(64, opts);
    ASSERT_EQ(service.submit({{1, 2}}), Admission::kAccepted);
    service.flush();
    ASSERT_TRUE(service.checkpoint_now());
    ASSERT_EQ(service.submit({{3, 4}}), Admission::kAccepted);
    service.flush();
    ASSERT_TRUE(service.checkpoint_now());
    arm("svc.ckpt.write", fault::Action::kFail, 100);  // no final checkpoint
    service.stop();
  }
  reg().disarm_all();

  // Corrupt the newest checkpoint; the loader must fall back to the older
  // one, and retention (floored at the *oldest* retained checkpoint) kept
  // every WAL segment that older checkpoint still needs.
  CheckpointStore store;
  store.open(path("ckpt"));
  const std::string newest = numbered_path(path("ckpt"), store.latest_seq());
  std::FILE* f = std::fopen(newest.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, -1, SEEK_END), 0);
  std::fputc(0x7f, f);
  std::fclose(f);

  ConnectivityService revived(64, opts);
  EXPECT_TRUE(revived.connected(1, 2));
  EXPECT_TRUE(revived.connected(3, 4));  // replayed from the retained tail
  EXPECT_FALSE(revived.connected(1, 3));
  revived.stop();
}

TEST_F(ServiceCheckpointTest, ShortWriteMidRecordDegradesWithoutLosingAcks) {
  ServiceOptions opts;
  opts.wal_path = path("wal");
  ConnectivityService service(64, opts);
  ASSERT_EQ(service.submit({{1, 2}, {2, 3}}), Admission::kAccepted);
  service.flush();

  // A short write mid-record (4 of the record's bytes land, then the device
  // "fails"): the batch must be shed — never acked — and the service drops
  // to read-only degraded mode.
  arm("svc.wal.append", fault::Action::kShort, 1, /*arg=*/4);
  EXPECT_EQ(service.submit({{40, 41}}), Admission::kShed);
  EXPECT_TRUE(service.degraded());
  service.stop();
  reg().disarm_all();

  // The 4 stray bytes are a torn tail; replay truncates back to the last
  // good record and the acked history is intact.
  const auto rep = SegmentedWal::replay(opts.wal_path, 0);
  ASSERT_TRUE(rep.ok) << rep.error;
  EXPECT_EQ(rep.truncated_bytes, 4u);
  EXPECT_EQ(rep.edges.size(), 2u);

  ConnectivityService revived(64, opts);
  EXPECT_EQ(revived.replayed_edges(), 2u);
  EXPECT_TRUE(revived.connected(1, 3));
  EXPECT_FALSE(revived.connected(40, 41));  // shed, so rightly absent
  const auto h = revived.health();
  EXPECT_FALSE(h.degraded);
  EXPECT_TRUE(h.wal_healthy);
  revived.stop();
}

TEST_F(ServiceCheckpointTest, FailedTruncateRefusesTheReopen) {
  ServiceOptions opts;
  opts.wal_path = path("wal");
  {
    ConnectivityService service(64, opts);
    ASSERT_EQ(service.submit({{1, 2}}), Admission::kAccepted);
    service.stop();
  }
  const std::uint8_t torn[3] = {0x01, 0x02, 0x03};
  write_raw(opts.wal_path + ".000001", torn, sizeof(torn), /*append=*/true);

  // The torn tail is found but cannot be cut off: appending to this file
  // would strand every future record behind garbage, so the constructor
  // must refuse rather than limp on.
  arm("svc.wal.truncate", fault::Action::kFail, 1);
  EXPECT_THROW(ConnectivityService(64, opts), std::runtime_error);
  reg().disarm_all();

  // With truncation working again the same state recovers normally.
  ConnectivityService revived(64, opts);
  EXPECT_EQ(revived.replayed_edges(), 1u);
  EXPECT_TRUE(revived.connected(1, 2));
  revived.stop();
}

}  // namespace
}  // namespace ecl::svc
