// Unit tests for the virtual-GPU substrate: cache model, device execution,
// atomics, worklist mechanics, and kernel statistics.
#include <gtest/gtest.h>

#include "common/types.h"
#include "gpusim/cache.h"
#include "gpusim/device.h"
#include "gpusim/spec.h"

namespace ecl::gpusim {
namespace {

CacheSpec tiny_cache() {
  // 4 sets x 2 ways x 64B lines = 512 bytes.
  return CacheSpec{512, 64, 2};
}

TEST(CacheSim, ColdMissThenHit) {
  CacheSim c(tiny_cache());
  EXPECT_EQ(c.access(0x1000, false).outcome, CacheSim::Outcome::kMiss);
  EXPECT_EQ(c.access(0x1000, false).outcome, CacheSim::Outcome::kHit);
  EXPECT_EQ(c.access(0x1004, false).outcome, CacheSim::Outcome::kHit);  // same line
  EXPECT_EQ(c.access(0x1040, false).outcome, CacheSim::Outcome::kMiss);  // next line
}

TEST(CacheSim, LruEvictionWithinSet) {
  CacheSim c(tiny_cache());
  // Three lines mapping to the same set (set stride = 4 sets * 64B = 256B).
  EXPECT_EQ(c.access(0x0000, false).outcome, CacheSim::Outcome::kMiss);
  EXPECT_EQ(c.access(0x0100, false).outcome, CacheSim::Outcome::kMiss);
  EXPECT_EQ(c.access(0x0200, false).outcome, CacheSim::Outcome::kMiss);  // evicts 0x0000
  EXPECT_EQ(c.access(0x0100, false).outcome, CacheSim::Outcome::kHit);
  EXPECT_EQ(c.access(0x0000, false).outcome, CacheSim::Outcome::kMiss);  // was evicted
}

TEST(CacheSim, LruIsUpdatedByHits) {
  CacheSim c(tiny_cache());
  (void)c.access(0x0000, false);
  (void)c.access(0x0100, false);
  (void)c.access(0x0000, false);  // refresh 0x0000
  (void)c.access(0x0200, false);  // should evict 0x0100, not 0x0000
  EXPECT_EQ(c.access(0x0000, false).outcome, CacheSim::Outcome::kHit);
  EXPECT_EQ(c.access(0x0100, false).outcome, CacheSim::Outcome::kMiss);
}

TEST(CacheSim, DirtyEvictionReported) {
  CacheSim c(tiny_cache());
  (void)c.access(0x0000, true);  // dirty
  (void)c.access(0x0100, false);
  const auto result = c.access(0x0200, false);  // evicts dirty 0x0000
  EXPECT_TRUE(result.dirty_eviction);
}

TEST(CacheSim, FlushCountsDirtyLines) {
  CacheSim c(tiny_cache());
  (void)c.access(0x0000, true);
  (void)c.access(0x0040, true);
  (void)c.access(0x0080, false);
  EXPECT_EQ(c.flush(), 2u);
  EXPECT_EQ(c.access(0x0000, false).outcome, CacheSim::Outcome::kMiss);  // empty now
}

TEST(MemorySystem, CountsLevelsCorrectly) {
  DeviceSpec spec = titanx_like();
  spec.l1 = tiny_cache();
  spec.l2 = CacheSpec{4096, 64, 4};
  MemorySystem mem(spec);

  (void)mem.read(0, 0x0000);  // L1 miss -> L2 read (miss -> DRAM)
  (void)mem.read(0, 0x0000);  // L1 hit
  const auto& c = mem.counters();
  EXPECT_EQ(c.reads, 2u);
  EXPECT_EQ(c.l1_hits, 1u);
  EXPECT_EQ(c.l2_reads, 1u);
  EXPECT_EQ(c.dram_accesses, 1u);
}

TEST(MemorySystem, WriteHitStaysInL1) {
  DeviceSpec spec = titanx_like();
  spec.l1 = tiny_cache();
  MemorySystem mem(spec);
  (void)mem.read(0, 0x0000);   // bring line in
  const auto before = mem.counters();
  (void)mem.write(0, 0x0000);  // dirty in place: no L2 traffic
  const auto delta = mem.counters().delta_since(before);
  EXPECT_EQ(delta.writes, 1u);
  EXPECT_EQ(delta.l2_reads, 0u);
  EXPECT_EQ(delta.l2_writes, 0u);
}

TEST(MemorySystem, SeparateL1PerSm) {
  DeviceSpec spec = titanx_like();
  spec.l1 = tiny_cache();
  MemorySystem mem(spec);
  (void)mem.read(0, 0x0000);
  const auto before = mem.counters();
  (void)mem.read(1, 0x0000);  // different SM: its own L1 misses, L2 hits
  const auto delta = mem.counters().delta_since(before);
  EXPECT_EQ(delta.l1_hits, 0u);
  EXPECT_EQ(delta.l2_reads, 1u);
  EXPECT_EQ(delta.l2_hits, 1u);
}

TEST(MemorySystem, AtomicsResolveAtL2) {
  DeviceSpec spec = titanx_like();
  MemorySystem mem(spec);
  const std::uint32_t cost = mem.atomic(0x0000);
  EXPECT_EQ(cost, spec.atomic_cycles);
  EXPECT_EQ(mem.counters().atomics, 1u);
  EXPECT_EQ(mem.counters().l2_reads, 1u);
  EXPECT_EQ(mem.counters().l2_writes, 1u);
}

// ---------------------------------------------------------------------------
// Device execution

TEST(Device, LaunchCoversAllThreadsOnce) {
  Device dev(titanx_like());
  auto buf = dev.alloc<vertex_t>(10000);
  dev.launch("fill", dev.blocks_for(10000, 256), 256, [&](const ThreadCtx& ctx) {
    for (std::uint64_t i = ctx.global_id(); i < 10000; i += ctx.grid_size()) {
      buf.store(ctx, i, static_cast<vertex_t>(i * 2));
    }
  });
  for (std::size_t i = 0; i < 10000; ++i) {
    ASSERT_EQ(buf.host_read(i), static_cast<vertex_t>(i * 2));
  }
}

TEST(Device, GridStrideLoopHandlesMoreWorkThanThreads) {
  Device dev(titanx_like());
  constexpr std::uint64_t kN = 1 << 20;  // exceeds the block cap
  auto buf = dev.alloc<std::uint32_t>(kN);
  dev.launch("fill", dev.blocks_for(kN, 256), 256, [&](const ThreadCtx& ctx) {
    for (std::uint64_t i = ctx.global_id(); i < kN; i += ctx.grid_size()) {
      buf.store(ctx, i, 1);
    }
  });
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < kN; ++i) sum += buf.host_read(i);
  EXPECT_EQ(sum, kN);
}

TEST(Device, AtomicAddProducesUniqueSlots) {
  Device dev(titanx_like());
  auto counter = dev.alloc<vertex_t>(1);
  auto slots = dev.alloc<vertex_t>(1000);
  counter.host_write(0, 0);
  dev.launch("claim", dev.blocks_for(1000, 256), 256, [&](const ThreadCtx& ctx) {
    for (std::uint64_t i = ctx.global_id(); i < 1000; i += ctx.grid_size()) {
      const vertex_t slot = counter.atomic_add(ctx, 0, 1);
      slots.store(ctx, slot, 1);
    }
  });
  EXPECT_EQ(counter.host_read(0), 1000u);
  for (std::size_t i = 0; i < 1000; ++i) ASSERT_EQ(slots.host_read(i), 1u);
}

TEST(Device, AtomicCasSemantics) {
  Device dev(titanx_like());
  auto buf = dev.alloc<vertex_t>(1);
  buf.host_write(0, 5);
  dev.launch("cas", 1, 1, [&](const ThreadCtx& ctx) {
    EXPECT_EQ(buf.atomic_cas(ctx, 0, 5, 7), 5u);  // succeeds
    EXPECT_EQ(buf.atomic_cas(ctx, 0, 5, 9), 7u);  // fails, returns current
  });
  EXPECT_EQ(buf.host_read(0), 7u);
}

TEST(Device, KernelStatsAccumulate) {
  Device dev(titanx_like());
  auto buf = dev.alloc<vertex_t>(4096);
  const auto stats = dev.launch("touch", 4, 256, [&](const ThreadCtx& ctx) {
    buf.store(ctx, ctx.global_id() % 4096, 1);
  });
  EXPECT_EQ(stats.name, "touch");
  EXPECT_GT(stats.max_sm_cycles, 0u);
  EXPECT_GT(stats.time_ms, 0.0);
  EXPECT_EQ(stats.memory.writes, 4u * 256u);
  EXPECT_EQ(dev.history().size(), 1u);
  EXPECT_DOUBLE_EQ(dev.total_time_ms(), stats.time_ms);
}

TEST(Device, TimeByKernelGroupsByName) {
  Device dev(titanx_like());
  auto buf = dev.alloc<vertex_t>(64);
  for (int i = 0; i < 3; ++i) {
    dev.launch("a", 1, 32, [&](const ThreadCtx& ctx) { buf.store(ctx, ctx.global_id(), 0); });
  }
  dev.launch("b", 1, 32, [&](const ThreadCtx& ctx) { buf.store(ctx, ctx.global_id(), 0); });
  const auto by_name = dev.time_by_kernel();
  ASSERT_EQ(by_name.size(), 2u);
  EXPECT_GT(by_name.at("a"), by_name.at("b"));
}

TEST(Device, WarpAndLaneIndexing) {
  Device dev(titanx_like());
  auto lanes = dev.alloc<vertex_t>(64);
  dev.launch("warp", 1, 64, [&](const ThreadCtx& ctx) {
    lanes.store(ctx, ctx.global_id(), ctx.lane() + 100 * ctx.warp_in_block());
  });
  EXPECT_EQ(lanes.host_read(0), 0u);
  EXPECT_EQ(lanes.host_read(31), 31u);
  EXPECT_EQ(lanes.host_read(32), 100u);
  EXPECT_EQ(lanes.host_read(63), 131u);
}

TEST(DeviceSpec, ConfigsDiffer) {
  const auto tx = titanx_like();
  const auto k40 = k40_like();
  EXPECT_GT(tx.num_sms, k40.num_sms);
  EXPECT_GT(tx.clock_ghz, k40.clock_ghz);
  EXPECT_GT(tx.l2.size_bytes, k40.l2.size_bytes);
}

}  // namespace
}  // namespace ecl::gpusim

namespace ecl::gpusim {
namespace {

TEST(Divergence, IdleLanesChargedWhenModeled) {
  // One warp where lane 0 does far more work than the rest: with divergence
  // modeling the whole warp is charged lane 0's duration per lane slot.
  auto run = [](bool model) {
    DeviceSpec spec = titanx_like();
    spec.model_divergence = model;
    Device dev(spec);
    auto buf = dev.alloc<vertex_t>(4096);
    const auto stats = dev.launch("skewed", 1, 32, [&](const ThreadCtx& ctx) {
      const int work = ctx.lane() == 0 ? 1000 : 1;
      for (int i = 0; i < work; ++i) {
        buf.store(ctx, (ctx.global_id() * 131 + static_cast<std::uint64_t>(i) * 67) % 4096, 1);
      }
    });
    return stats.max_sm_cycles;
  };
  const auto with_divergence = run(true);
  const auto without = run(false);
  // 31 idle lanes for ~999 operations each: the divergent run must cost
  // substantially more than the pure-work accounting.
  EXPECT_GT(with_divergence, 2 * without);
}

TEST(Divergence, UniformWarpsCostTheSameEitherWay) {
  auto run = [](bool model) {
    DeviceSpec spec = titanx_like();
    spec.model_divergence = model;
    Device dev(spec);
    auto buf = dev.alloc<vertex_t>(4096);
    const auto stats = dev.launch("uniform", 2, 64, [&](const ThreadCtx& ctx) {
      for (int i = 0; i < 50; ++i) {
        buf.store(ctx, (ctx.global_id() + static_cast<std::uint64_t>(i) * 128) % 4096, 1);
      }
    });
    return stats.max_sm_cycles;
  };
  // Identical per-lane operation counts: lockstep charging adds nothing.
  EXPECT_EQ(run(true), run(false));
}

TEST(MemorySystemFlush, WritesBackDirtyLines) {
  DeviceSpec spec = titanx_like();
  spec.l1 = CacheSpec{512, 64, 2};
  MemorySystem mem(spec);
  (void)mem.write(0, 0x0000);
  (void)mem.write(0, 0x1000);
  const auto before = mem.counters();
  mem.flush_all();
  const auto delta = mem.counters().delta_since(before);
  EXPECT_EQ(delta.l2_writes, 2u);  // both dirty L1 lines written back
}

}  // namespace
}  // namespace ecl::gpusim
