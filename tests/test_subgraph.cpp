// Tests for subgraph extraction.
#include <gtest/gtest.h>

#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/stats.h"
#include "graph/subgraph.h"

namespace ecl {
namespace {

TEST(InducedSubgraph, KeepsOnlySelectedVerticesAndInternalEdges) {
  // Path 0-1-2-3-4; keep {1,2,4}: edges (1,2) survive, (3,4) does not.
  const Graph g = gen_path(5);
  const std::vector<std::uint8_t> keep{0, 1, 1, 0, 1};
  const Subgraph sub = induced_subgraph(g, keep);
  EXPECT_EQ(sub.graph.num_vertices(), 3u);
  EXPECT_EQ(sub.graph.num_edges(), 2u);  // the single undirected edge 1-2
  EXPECT_EQ(sub.original_id, (std::vector<vertex_t>{1, 2, 4}));
  EXPECT_EQ(sub.local_id[1], 0u);
  EXPECT_EQ(sub.local_id[2], 1u);
  EXPECT_EQ(sub.local_id[4], 2u);
  EXPECT_EQ(sub.local_id[0], kInvalidVertex);
  EXPECT_EQ(sub.graph.neighbors(0)[0], 1u);  // local 0 (=1) -> local 1 (=2)
}

TEST(InducedSubgraph, FullMaskIsIdentity) {
  const Graph g = gen_kronecker(9, 8, 3);
  const std::vector<std::uint8_t> keep(g.num_vertices(), 1);
  const Subgraph sub = induced_subgraph(g, keep);
  EXPECT_EQ(sub.graph.num_vertices(), g.num_vertices());
  EXPECT_EQ(sub.graph.num_edges(), g.num_edges());
  for (vertex_t v = 0; v < g.num_vertices(); ++v) EXPECT_EQ(sub.original_id[v], v);
}

TEST(InducedSubgraph, EmptyMask) {
  const Graph g = gen_path(10);
  const std::vector<std::uint8_t> keep(10, 0);
  const Subgraph sub = induced_subgraph(g, keep);
  EXPECT_EQ(sub.graph.num_vertices(), 0u);
  EXPECT_TRUE(sub.original_id.empty());
}

TEST(InducedSubgraph, RejectsWrongMaskSize) {
  const Graph g = gen_path(10);
  const std::vector<std::uint8_t> keep(5, 1);
  EXPECT_THROW((void)induced_subgraph(g, keep), std::invalid_argument);
}

TEST(ExtractComponent, PullsOneComponent) {
  const Graph g = gen_clique_forest(4, 5);  // components {0..4},{5..9},...
  const auto labels = reference_components(g);
  const Subgraph sub = extract_component(g, labels, 5);
  EXPECT_EQ(sub.graph.num_vertices(), 5u);
  EXPECT_EQ(sub.graph.num_edges(), 20u);  // K5
  EXPECT_EQ(sub.original_id.front(), 5u);
  EXPECT_EQ(count_components(sub.graph), 1u);
}

TEST(LargestComponent, FindsTheGiant) {
  // One 600-vertex path + 40 singletons.
  GraphBuilder b(640);
  for (vertex_t v = 0; v + 1 < 600; ++v) b.add_edge(v, v + 1);
  const Graph g = b.build();
  const Subgraph sub = largest_component(g);
  EXPECT_EQ(sub.graph.num_vertices(), 600u);
  EXPECT_EQ(count_components(sub.graph), 1u);
}

TEST(LargestComponent, SubgraphIsConnectedOnRealisticInput) {
  const Graph g = gen_web_graph(5000, 17);
  const Subgraph sub = largest_component(g);
  EXPECT_EQ(count_components(sub.graph), 1u);
  EXPECT_GT(sub.graph.num_vertices(), g.num_vertices() / 2);
  // Mapping round-trips.
  for (vertex_t lv = 0; lv < sub.graph.num_vertices(); ++lv) {
    EXPECT_EQ(sub.local_id[sub.original_id[lv]], lv);
  }
}

}  // namespace
}  // namespace ecl
