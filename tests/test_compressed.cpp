// Tests for the compressed graph representation and ECL-CC on it.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/compressed_cc.h"
#include "graph/compressed.h"
#include "graph/stats.h"
#include "test_util.h"

namespace ecl {
namespace {

using testing::correctness_graphs;

TEST(Compressed, RoundTripsEveryFixtureGraph) {
  for (const auto& [name, g] : correctness_graphs()) {
    const auto cg = CompressedGraph::compress(g);
    EXPECT_EQ(cg.num_vertices(), g.num_vertices()) << name;
    EXPECT_EQ(cg.num_edges(), g.num_edges()) << name;
    const Graph back = cg.decompress();
    EXPECT_TRUE(std::equal(g.offsets().begin(), g.offsets().end(),
                           back.offsets().begin()))
        << name;
    EXPECT_TRUE(std::equal(g.adjacency().begin(), g.adjacency().end(),
                           back.adjacency().begin()))
        << name;
  }
}

TEST(Compressed, NeighborIterationMatchesPlain) {
  const Graph g = gen_kronecker(11, 12, 3);
  const auto cg = CompressedGraph::compress(g);
  for (vertex_t v = 0; v < g.num_vertices(); ++v) {
    std::vector<vertex_t> decoded;
    for (const vertex_t u : cg.neighbors(v)) decoded.push_back(u);
    const auto plain = g.neighbors(v);
    ASSERT_EQ(decoded.size(), plain.size()) << v;
    EXPECT_TRUE(std::equal(plain.begin(), plain.end(), decoded.begin())) << v;
    EXPECT_EQ(cg.degree(v), plain.size()) << v;
  }
}

TEST(Compressed, SavesMemoryOnRealisticGraphs) {
  // Road and grid graphs have small deltas: compression must beat the
  // plain 4-byte-per-edge adjacency array comfortably.
  for (const auto* name : {"road", "grid"}) {
    const Graph g = std::string(name) == "road" ? gen_road_network(50000, 3)
                                                : gen_grid2d(220, 220);
    const auto cg = CompressedGraph::compress(g);
    const std::size_t plain = g.memory_bytes();
    EXPECT_LT(cg.memory_bytes(), plain) << name;
  }
}

TEST(Compressed, EmptyAndEdgeless) {
  const auto empty = CompressedGraph::compress(Graph());
  EXPECT_EQ(empty.num_vertices(), 0u);
  const auto isolated = CompressedGraph::compress(gen_isolated(10));
  EXPECT_EQ(isolated.num_vertices(), 10u);
  EXPECT_EQ(isolated.num_edges(), 0u);
  EXPECT_EQ(isolated.degree(5), 0u);
  EXPECT_EQ(isolated.decompress().num_edges(), 0u);
}

TEST(Compressed, RejectsUnsortedAdjacency) {
  BuildOptions opts;
  opts.sort_neighbors = false;  // reversed lists
  const Graph g = build_graph(5, {{0, 1}, {0, 2}, {0, 3}}, opts);
  EXPECT_THROW((void)CompressedGraph::compress(g), std::invalid_argument);
}

TEST(CompressedCc, SerialMatchesReferenceOnAllFixtures) {
  for (const auto& [name, g] : correctness_graphs()) {
    const auto cg = CompressedGraph::compress(g);
    EXPECT_EQ(ecl_cc_serial(cg), reference_components(g)) << name;
  }
}

TEST(CompressedCc, OmpMatchesReferenceOnAllFixtures) {
  for (const auto& [name, g] : correctness_graphs()) {
    const auto cg = CompressedGraph::compress(g);
    EXPECT_EQ(ecl_cc_omp(cg), reference_components(g)) << name;
  }
}

TEST(CompressedCc, PolicyVariantsWork) {
  const Graph g = gen_web_graph(3000, 5);
  const auto cg = CompressedGraph::compress(g);
  const auto reference = reference_components(g);
  for (const auto jump : {JumpPolicy::kMultiple, JumpPolicy::kSingle, JumpPolicy::kNone,
                          JumpPolicy::kIntermediate}) {
    EclOptions opts;
    opts.jump = jump;
    EXPECT_EQ(ecl_cc_serial(cg, opts), reference) << static_cast<int>(jump);
  }
}

}  // namespace
}  // namespace ecl
