// Unit tests for the disjoint-set substrate: serial DSU, the four find
// variants, hooking, and the concurrent DSU under real multithreading.
#include <gtest/gtest.h>

#include <numeric>
#include <thread>
#include <vector>

#include "dsu/disjoint_set.h"
#include "dsu/find.h"
#include "dsu/hook.h"
#include "dsu/parent_ops.h"

namespace ecl {
namespace {

TEST(DisjointSet, StartsFullySeparate) {
  DisjointSet ds(10);
  EXPECT_EQ(ds.count(), 10u);
  for (vertex_t v = 0; v < 10; ++v) EXPECT_EQ(ds.find(v), v);
}

TEST(DisjointSet, UniteMergesAndCounts) {
  DisjointSet ds(5);
  EXPECT_TRUE(ds.unite(0, 1));
  EXPECT_TRUE(ds.unite(1, 2));
  EXPECT_FALSE(ds.unite(0, 2));  // already together
  EXPECT_EQ(ds.count(), 3u);
  EXPECT_TRUE(ds.same(0, 2));
  EXPECT_FALSE(ds.same(0, 3));
}

TEST(DisjointSet, LongChainCompresses) {
  DisjointSet ds(1000);
  for (vertex_t v = 0; v + 1 < 1000; ++v) ds.unite(v, v + 1);
  EXPECT_EQ(ds.count(), 1u);
  const vertex_t root = ds.find(999);
  for (vertex_t v = 0; v < 1000; ++v) EXPECT_EQ(ds.find(v), root);
}

// ---------------------------------------------------------------------------
// find variants: all four must return the same representative and preserve
// reachability, differing only in how much they compress.

class FindVariantTest : public ::testing::TestWithParam<JumpPolicy> {};

/// Builds the chain 9 -> 8 -> ... -> 1 -> 0 (parent[i] = i-1).
std::vector<vertex_t> chain_parent(vertex_t n) {
  std::vector<vertex_t> parent(n);
  parent[0] = 0;
  for (vertex_t v = 1; v < n; ++v) parent[v] = v - 1;
  return parent;
}

TEST_P(FindVariantTest, FindsChainRoot) {
  auto parent = chain_parent(10);
  SerialParentOps ops(parent.data());
  EXPECT_EQ(find_repres(GetParam(), 9, ops), 0u);
}

TEST_P(FindVariantTest, RootFindsItself) {
  auto parent = chain_parent(10);
  SerialParentOps ops(parent.data());
  EXPECT_EQ(find_repres(GetParam(), 0, ops), 0u);
}

TEST_P(FindVariantTest, PreservesReachabilityForAllVertices) {
  auto parent = chain_parent(64);
  SerialParentOps ops(parent.data());
  (void)find_repres(GetParam(), 63, ops);
  // Whatever compression happened, every vertex must still reach root 0.
  for (vertex_t v = 0; v < 64; ++v) {
    EXPECT_EQ(find_none(v, ops), 0u) << "vertex " << v;
  }
}

TEST_P(FindVariantTest, RecordsPathLength) {
  auto parent = chain_parent(10);
  SerialParentOps ops(parent.data());
  PathLengthRecorder rec;
  (void)find_repres(GetParam(), 9, ops, &rec);
  EXPECT_EQ(rec.num_finds, 1u);
  // The recorder counts pointer-chase iterations beyond the initial load:
  // eight for the 9 -> 8 -> ... -> 0 chain.
  EXPECT_EQ(rec.max_length, 8u);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, FindVariantTest,
                         ::testing::Values(JumpPolicy::kMultiple, JumpPolicy::kSingle,
                                           JumpPolicy::kNone, JumpPolicy::kIntermediate),
                         [](const auto& info) {
                           switch (info.param) {
                             case JumpPolicy::kMultiple: return "Jump1Multiple";
                             case JumpPolicy::kSingle: return "Jump2Single";
                             case JumpPolicy::kNone: return "Jump3None";
                             case JumpPolicy::kIntermediate: return "Jump4Intermediate";
                           }
                           return "Unknown";
                         });

TEST(FindCompression, MultipleFullyCompresses) {
  auto parent = chain_parent(8);
  SerialParentOps ops(parent.data());
  EXPECT_EQ(find_multiple(7, ops), 0u);
  for (vertex_t v = 1; v < 8; ++v) EXPECT_EQ(parent[v], 0u) << v;
}

TEST(FindCompression, SingleCompressesOnlyStart) {
  auto parent = chain_parent(8);
  SerialParentOps ops(parent.data());
  EXPECT_EQ(find_single(7, ops), 0u);
  EXPECT_EQ(parent[7], 0u);
  for (vertex_t v = 2; v < 7; ++v) EXPECT_EQ(parent[v], v - 1) << v;
}

TEST(FindCompression, NoneLeavesPathsUntouched) {
  auto parent = chain_parent(8);
  const auto before = parent;
  SerialParentOps ops(parent.data());
  EXPECT_EQ(find_none(7, ops), 0u);
  EXPECT_EQ(parent, before);
}

TEST(FindCompression, IntermediateHalvesPath) {
  auto parent = chain_parent(9);
  SerialParentOps ops(parent.data());
  EXPECT_EQ(find_intermediate(8, ops), 0u);
  // Path halving: every visited vertex now skips its old parent.
  EXPECT_EQ(parent[8], 6u);
  EXPECT_EQ(parent[7], 5u);
  EXPECT_EQ(parent[6], 4u);
  // Second traversal is at most half as long.
  PathLengthRecorder rec;
  (void)find_intermediate(8, ops, &rec);
  EXPECT_LE(rec.max_length, 4u);
}

TEST(PathLengthRecorder, MergeCombines) {
  PathLengthRecorder a;
  PathLengthRecorder b;
  a.record(4);
  b.record(10);
  b.record(2);
  a.merge(b);
  EXPECT_EQ(a.num_finds, 3u);
  EXPECT_EQ(a.max_length, 10u);
  EXPECT_DOUBLE_EQ(a.average(), 16.0 / 3.0);
}

// ---------------------------------------------------------------------------
// Hooking

TEST(Hook, PointsLargerRepAtSmaller) {
  std::vector<vertex_t> parent{0, 1, 2, 3};
  SerialParentOps ops(parent.data());
  const vertex_t rep = hook_representatives(3, 1, ops);
  EXPECT_EQ(rep, 1u);
  EXPECT_EQ(parent[3], 1u);
  EXPECT_EQ(parent[1], 1u);
}

TEST(Hook, EqualRepsAreNoop) {
  std::vector<vertex_t> parent{0, 1};
  SerialParentOps ops(parent.data());
  EXPECT_EQ(hook_representatives(1, 1, ops), 1u);
  EXPECT_EQ(parent[1], 1u);
}

TEST(Hook, ProcessEdgeUnitesComponents) {
  // Two chains: 2 -> 1 -> 0 and 5 -> 4 -> 3.
  std::vector<vertex_t> parent{0, 0, 1, 3, 3, 4};
  SerialParentOps ops(parent.data());
  const vertex_t v_rep = find_intermediate(5, ops);
  const vertex_t joint = process_edge(JumpPolicy::kIntermediate, v_rep, 2, ops);
  EXPECT_EQ(joint, 0u);
  for (vertex_t v = 0; v < 6; ++v) EXPECT_EQ(find_none(v, ops), 0u) << v;
}

TEST(Hook, CasRetrySemantics) {
  // AtomicParentOps::cas must return the *observed* value so the hook's
  // retry loop can update its local representative.
  std::vector<vertex_t> parent{0, 1, 2};
  AtomicParentOps ops(parent.data());
  EXPECT_EQ(ops.cas(2, 2, 1), 2u);  // success returns expected
  EXPECT_EQ(parent[2], 1u);
  EXPECT_EQ(ops.cas(2, 2, 0), 1u);  // failure returns current value
  EXPECT_EQ(parent[2], 1u);         // unchanged
}

// ---------------------------------------------------------------------------
// ConcurrentDisjointSet under real threads

TEST(ConcurrentDsu, SerialSemantics) {
  ConcurrentDisjointSet ds(6);
  ds.unite(0, 1);
  ds.unite(2, 3);
  EXPECT_TRUE(ds.same(0, 1));
  EXPECT_FALSE(ds.same(1, 2));
  ds.unite(1, 3);
  EXPECT_TRUE(ds.same(0, 2));
  ds.flatten();
  EXPECT_EQ(ds.count(), 3u);  // {0,1,2,3}, {4}, {5}
  EXPECT_EQ(ds.parents()[3], 0u);
}

TEST(ConcurrentDsu, ManyThreadsUniteChain) {
  constexpr vertex_t kN = 20000;
  constexpr int kThreads = 8;  // oversubscribed on purpose
  ConcurrentDisjointSet ds(kN);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&ds, t] {
      // Thread t unites every edge (v, v+1) with v % kThreads == t.
      for (vertex_t v = static_cast<vertex_t>(t); v + 1 < kN; v += kThreads) {
        ds.unite(v, v + 1);
      }
    });
  }
  for (auto& w : workers) w.join();
  ds.flatten();
  EXPECT_EQ(ds.count(), 1u);
  for (vertex_t v = 0; v < kN; ++v) ASSERT_EQ(ds.parents()[v], 0u) << v;
}

TEST(ConcurrentDsu, ConcurrentRandomUnions) {
  constexpr vertex_t kN = 10000;
  ConcurrentDisjointSet ds(kN);
  DisjointSet reference(kN);
  // Deterministic edge set, applied serially to the reference and
  // concurrently (shards interleaved) to the lock-free structure.
  std::vector<std::pair<vertex_t, vertex_t>> edges;
  for (vertex_t v = 0; v < kN; ++v) {
    edges.emplace_back(v, (v * 7919u) % kN);
    edges.emplace_back(v, (v * 104729u + 13u) % kN);
  }
  for (const auto& [a, b] : edges) {
    if (a != b) reference.unite(a, b);
  }
  std::vector<std::thread> workers;
  for (int t = 0; t < 6; ++t) {
    workers.emplace_back([&, t] {
      for (std::size_t i = static_cast<std::size_t>(t); i < edges.size(); i += 6) {
        if (edges[i].first != edges[i].second) ds.unite(edges[i].first, edges[i].second);
      }
    });
  }
  for (auto& w : workers) w.join();
  ds.flatten();
  EXPECT_EQ(ds.count(), reference.count());
  for (vertex_t v = 0; v < kN; ++v) {
    ASSERT_EQ(ds.parents()[v] == ds.parents()[(v * 7919u) % kN],
              reference.same(v, (v * 7919u) % kN))
        << v;
  }
}

}  // namespace
}  // namespace ecl
