// Correctness tests for every reimplemented comparator: each must produce
// the reference partition on the full graph fixture, exactly as the paper
// validates ("for all codes, we made sure that the number of CCs is
// correct", §4) — we additionally check the whole partition.
#include <gtest/gtest.h>

#include "baselines/baselines.h"
#include "baselines/registry.h"
#include "core/verify.h"
#include "graph/stats.h"
#include "test_util.h"

namespace ecl {
namespace {

using testing::NamedGraph;
using testing::correctness_graphs;

// ---------------------------------------------------------------------------
// Registry-driven sweep: every registered code x every fixture graph.

class ParallelCodeTest : public ::testing::TestWithParam<int> {
 protected:
  static const baselines::CcCode& code() {
    return baselines::parallel_cpu_codes()[static_cast<std::size_t>(GetParam())];
  }
};

TEST_P(ParallelCodeTest, MatchesReferencePartition) {
  for (const auto& [name, g] : correctness_graphs()) {
    if (!code().supports(g)) continue;
    const auto labels = code().run(g, 0);
    const auto reference = reference_components(g);
    EXPECT_TRUE(same_partition(labels, reference)) << code().name << " on " << name;
    EXPECT_EQ(count_labels(labels), count_labels(reference)) << code().name << " on " << name;
  }
}

TEST_P(ParallelCodeTest, OversubscribedThreadsStillCorrect) {
  for (const auto& [name, g] : correctness_graphs()) {
    if (!code().supports(g)) continue;
    const auto labels = code().run(g, 8);
    EXPECT_TRUE(same_partition(labels, reference_components(g)))
        << code().name << " on " << name;
  }
}

std::string parallel_code_name(const ::testing::TestParamInfo<int>& inf) {
  std::string name = baselines::parallel_cpu_codes()[static_cast<std::size_t>(inf.param)].name;
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllParallelCodes, ParallelCodeTest,
                         ::testing::Range(0, static_cast<int>(
                                                 baselines::parallel_cpu_codes().size())),
                         parallel_code_name);

class SerialCodeTest : public ::testing::TestWithParam<int> {
 protected:
  static const baselines::CcCode& code() {
    return baselines::serial_cpu_codes()[static_cast<std::size_t>(GetParam())];
  }
};

TEST_P(SerialCodeTest, MatchesReferencePartition) {
  for (const auto& [name, g] : correctness_graphs()) {
    const auto labels = code().run(g, 1);
    EXPECT_TRUE(same_partition(labels, reference_components(g)))
        << code().name << " on " << name;
  }
}

std::string serial_code_name(const ::testing::TestParamInfo<int>& inf) {
  std::string name = baselines::serial_cpu_codes()[static_cast<std::size_t>(inf.param)].name;
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllSerialCodes, SerialCodeTest,
                         ::testing::Range(0, static_cast<int>(
                                                 baselines::serial_cpu_codes().size())),
                         serial_code_name);

// ---------------------------------------------------------------------------
// Algorithm-specific behaviours.

TEST(Crono, ReportsUnsupportedForHighDegreeGraphs) {
  // A star with 200k leaves has dmax ~ n, so the n x dmax matrix blows the
  // limit — the "n/a" cases in the paper's Tables 7/8.
  const Graph star = gen_star(200'000);
  EXPECT_FALSE(baselines::crono_supports(star, 64 << 20));
  EXPECT_TRUE(baselines::crono(star, 1, 64 << 20).empty());
}

TEST(Crono, SupportsLowDegreeGraphs) {
  const Graph grid = gen_grid2d(50, 50);
  EXPECT_TRUE(baselines::crono_supports(grid));
  EXPECT_FALSE(baselines::crono(grid).empty());
}

TEST(Multistep, HandlesGraphWhereBfsSwallowsEverything) {
  const Graph g = gen_star(5000);
  const auto labels = baselines::multistep(g);
  EXPECT_TRUE(same_partition(labels, reference_components(g)));
}

TEST(Multistep, HandlesManySmallComponentsViaSerialTail) {
  const Graph g = gen_clique_forest(100, 5);  // 500 vertices < serial cutoff
  const auto labels = baselines::multistep(g);
  EXPECT_TRUE(same_partition(labels, reference_components(g)));
}

TEST(Multistep, HandlesManyComponentsViaLabelProp) {
  const Graph g = gen_clique_forest(3000, 4);  // 12000 vertices > cutoff
  const auto labels = baselines::multistep(g);
  EXPECT_TRUE(same_partition(labels, reference_components(g)));
}

TEST(NdHybrid, DeepRecursionOnPath) {
  // A long path forces several contraction rounds.
  const Graph g = gen_path(20000);
  const auto labels = baselines::ndhybrid(g);
  EXPECT_EQ(count_labels(labels), 1u);
  EXPECT_TRUE(same_partition(labels, reference_components(g)));
}

TEST(ShiloachVishkin, PathologicalChain) {
  const Graph g = gen_path(10000);
  const auto labels = baselines::shiloach_vishkin(g);
  EXPECT_EQ(count_labels(labels), 1u);
}

TEST(SerialLibs, AllProduceCanonicalMinLabels) {
  // These three label components by the smallest vertex (by construction of
  // their sweeps), so they must agree with the reference exactly.
  const Graph g = gen_uniform_random(5000, 6000, 77);
  const auto reference = reference_components(g);
  EXPECT_EQ(baselines::boost_style(g), reference);
  EXPECT_EQ(baselines::igraph_style(g), reference);
  EXPECT_EQ(baselines::lemon_style(g), reference);
  EXPECT_EQ(baselines::galois_serial(g), reference);
}

TEST(Registry, NamesMatchPaperTables) {
  const auto& par = baselines::parallel_cpu_codes();
  ASSERT_EQ(par.size(), 7u);
  EXPECT_EQ(par[0].name, "ECL-CComp");
  const auto& ser = baselines::serial_cpu_codes();
  ASSERT_EQ(ser.size(), 5u);
  EXPECT_EQ(ser[0].name, "ECL-CCser");
}

TEST(LabelProp, EmptyAndSingletonGraphs) {
  EXPECT_TRUE(baselines::label_prop(Graph()).empty());
  const auto labels = baselines::label_prop(gen_isolated(3));
  EXPECT_EQ(labels, (std::vector<vertex_t>{0, 1, 2}));
}

TEST(BfsCc, LabelsAreSourceVertices) {
  const Graph g = gen_clique_forest(4, 3);
  const auto labels = baselines::bfs_cc(g);
  for (vertex_t v = 0; v < 12; ++v) EXPECT_EQ(labels[v], (v / 3) * 3);
}

}  // namespace
}  // namespace ecl
