// Unit tests for the CSR graph, the builder's input conditioning, and
// graph statistics.
#include <gtest/gtest.h>

#include <algorithm>

#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/stats.h"

namespace ecl {
namespace {

TEST(Graph, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_TRUE(g.empty());
}

TEST(Builder, SymmetrizesEdges) {
  const Graph g = build_graph(3, {{0, 1}});
  EXPECT_EQ(g.num_edges(), 2u);  // both directions present
  ASSERT_EQ(g.degree(0), 1u);
  ASSERT_EQ(g.degree(1), 1u);
  EXPECT_EQ(g.neighbors(0)[0], 1u);
  EXPECT_EQ(g.neighbors(1)[0], 0u);
  EXPECT_EQ(g.degree(2), 0u);
}

TEST(Builder, RemovesSelfLoops) {
  const Graph g = build_graph(2, {{0, 0}, {0, 1}, {1, 1}});
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 1u);
}

TEST(Builder, DeduplicatesParallelEdges) {
  const Graph g = build_graph(2, {{0, 1}, {0, 1}, {1, 0}});
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(Builder, SortsAdjacencyLists) {
  const Graph g = build_graph(5, {{2, 4}, {2, 0}, {2, 3}, {2, 1}});
  const auto nbrs = g.neighbors(2);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  EXPECT_EQ(nbrs.size(), 4u);
}

TEST(Builder, UnsortedOptionReversesLists) {
  BuildOptions opts;
  opts.sort_neighbors = false;
  const Graph g = build_graph(5, {{2, 4}, {2, 0}, {2, 3}}, opts);
  const auto nbrs = g.neighbors(2);
  EXPECT_TRUE(std::is_sorted(nbrs.rbegin(), nbrs.rend()));
}

TEST(Builder, KeepSelfLoopsWhenAsked) {
  BuildOptions opts;
  opts.remove_self_loops = false;
  const Graph g = build_graph(2, {{0, 0}}, opts);
  // Symmetrization duplicates the loop and deduplication collapses it back.
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.neighbors(0)[0], 0u);
}

TEST(Builder, RejectsOutOfRangeEndpoint) {
  GraphBuilder b(3);
  EXPECT_THROW(b.add_edge(0, 3), std::out_of_range);
  EXPECT_THROW(b.add_edge(3, 0), std::out_of_range);
}

TEST(Builder, BuildLeavesBuilderReusable) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  const Graph g1 = b.build();
  EXPECT_EQ(g1.num_edges(), 2u);
  b.add_edge(2, 3);
  const Graph g2 = b.build();
  EXPECT_EQ(g2.num_edges(), 2u);
  EXPECT_EQ(g2.degree(0), 0u);
}

TEST(Builder, OffsetsAreConsistent) {
  const Graph g = gen_uniform_random(500, 2000, 7);
  const auto offs = g.offsets();
  ASSERT_EQ(offs.size(), 501u);
  EXPECT_EQ(offs.front(), 0u);
  EXPECT_EQ(offs.back(), g.num_edges());
  for (std::size_t i = 1; i < offs.size(); ++i) EXPECT_LE(offs[i - 1], offs[i]);
}

TEST(Stats, PathGraphProperties) {
  const auto s = compute_stats(gen_path(100), "path");
  EXPECT_EQ(s.num_vertices, 100u);
  EXPECT_EQ(s.num_edges, 198u);
  EXPECT_EQ(s.min_degree, 1u);
  EXPECT_EQ(s.max_degree, 2u);
  EXPECT_EQ(s.num_components, 1u);
}

TEST(Stats, StarDegrees) {
  const auto s = compute_stats(gen_star(101), "star");
  EXPECT_EQ(s.max_degree, 100u);
  EXPECT_EQ(s.min_degree, 1u);
  EXPECT_EQ(s.num_components, 1u);
}

TEST(Stats, IsolatedVerticesAreComponents) {
  const auto s = compute_stats(gen_isolated(42), "isolated");
  EXPECT_EQ(s.num_components, 42u);
  EXPECT_EQ(s.num_edges, 0u);
  EXPECT_EQ(s.min_degree, 0u);
}

TEST(Stats, CliqueForestComponentCount) {
  EXPECT_EQ(count_components(gen_clique_forest(25, 6)), 25u);
}

TEST(Stats, ReferenceLabelsAreComponentMinima) {
  const Graph g = gen_clique_forest(3, 4);  // components {0..3},{4..7},{8..11}
  const auto labels = reference_components(g);
  for (vertex_t v = 0; v < 12; ++v) EXPECT_EQ(labels[v], (v / 4) * 4);
}

TEST(Stats, ComponentSizesSortedDescending) {
  GraphBuilder b(10);
  b.add_edge(0, 1);
  b.add_edge(1, 2);  // component of 3
  b.add_edge(3, 4);  // component of 2
  const auto sizes = component_sizes(b.build());
  ASSERT_EQ(sizes.size(), 7u);  // 3 + 2 + five singletons
  EXPECT_EQ(sizes[0], 3u);
  EXPECT_EQ(sizes[1], 2u);
  EXPECT_EQ(sizes[2], 1u);
}

TEST(Stats, AverageDegreeMatchesEdgeCount) {
  const Graph g = gen_grid2d(10, 10);
  const auto s = compute_stats(g, "grid");
  EXPECT_DOUBLE_EQ(s.avg_degree,
                   static_cast<double>(g.num_edges()) / static_cast<double>(g.num_vertices()));
}

}  // namespace
}  // namespace ecl
