// Property-based cross-implementation tests: for a sweep of random graphs
// (varying family, size, density and seed), EVERY implementation in the
// repository — serial, OpenMP, virtual-GPU, and all comparators — must
// induce exactly the reference partition. This is the strongest end-to-end
// invariant the paper's methodology implies (§4: all codes verified, CC
// counts exact).
#include <gtest/gtest.h>

#include "baselines/registry.h"
#include "core/ecl_cc.h"
#include "core/verify.h"
#include "graph/generators.h"
#include "graph/stats.h"
#include "gpusim/gpu_cc.h"

namespace ecl {
namespace {

/// Deterministically derives a random graph from the sweep index, cycling
/// through families and sizes.
Graph graph_for_seed(int seed) {
  const auto u = static_cast<std::uint64_t>(seed);
  switch (seed % 7) {
    case 0:
      return gen_uniform_random(500 + 700 * static_cast<vertex_t>(seed), 2000 + 100 * static_cast<vertex_t>(seed), u);
    case 1:
      return gen_rmat(9 + seed % 4, 4 + seed % 8, RmatParams{}, u);
    case 2:
      return gen_road_network(1000 + 800 * static_cast<vertex_t>(seed), u);
    case 3:
      return gen_preferential_attachment(800 + 300 * static_cast<vertex_t>(seed),
                                         1 + seed % 6, u);
    case 4:
      return gen_web_graph(1500 + 400 * static_cast<vertex_t>(seed), u);
    case 5:
      return gen_citation(1200 + 350 * static_cast<vertex_t>(seed), 2 + seed % 5,
                          0.1 * (seed % 10), u);
    default:
      return gen_small_world(900 + 250 * static_cast<vertex_t>(seed), 1 + seed % 4,
                             0.05 * (seed % 8), u);
  }
}

class PropertySweep : public ::testing::TestWithParam<int> {};

TEST_P(PropertySweep, AllImplementationsInduceReferencePartition) {
  const Graph g = graph_for_seed(GetParam());
  const auto reference = reference_components(g);

  // Core implementations produce canonical labels: exact equality.
  EXPECT_EQ(ecl_cc_serial(g), reference);
  EXPECT_EQ(ecl_cc_omp(g), reference);
  EXPECT_EQ(gpusim::ecl_cc_gpu(g, gpusim::titanx_like()).labels, reference);

  // Every registered comparator induces the same partition.
  for (const auto& code : baselines::parallel_cpu_codes()) {
    if (!code.supports(g)) continue;
    EXPECT_TRUE(same_partition(code.run(g, 0), reference)) << code.name;
  }
  for (const auto& code : baselines::serial_cpu_codes()) {
    EXPECT_TRUE(same_partition(code.run(g, 1), reference)) << code.name;
  }
  for (const auto& code : gpusim::gpu_codes()) {
    EXPECT_TRUE(same_partition(code.run(g, gpusim::titanx_like()).labels, reference))
        << code.name;
  }
}

TEST_P(PropertySweep, LabelInvariants) {
  const Graph g = graph_for_seed(GetParam());
  const auto labels = ecl_cc_omp(g);
  const auto check = verify_labels(g, labels);
  EXPECT_TRUE(check.ok) << check.reason;
  // Each label is the minimum of its component: no vertex has an ID lower
  // than its label.
  for (vertex_t v = 0; v < g.num_vertices(); ++v) {
    EXPECT_LE(labels[v], v);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertySweep, ::testing::Range(0, 21));

}  // namespace
}  // namespace ecl
