// Tests for graph file I/O: every supported format round-trips and
// malformed input is rejected with a clear error.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/verify.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "graph/stats.h"

namespace ecl {
namespace {

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per process: ctest runs each discovered case as its own
    // process, and a shared directory would race with remove_all below.
    dir_ = std::filesystem::temp_directory_path() /
           ("ecl_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

TEST_F(IoTest, EdgeListParsesCommentsAndCompactsIds) {
  std::istringstream in(
      "# snap-style comment\n"
      "% matrix-style comment\n"
      "100 200\n"
      "200 300\n"
      "100 300\n");
  const Graph g = read_edge_list(in);
  EXPECT_EQ(g.num_vertices(), 3u);  // IDs compacted to 0..2
  EXPECT_EQ(g.num_edges(), 6u);
  EXPECT_EQ(count_components(g), 1u);
}

TEST_F(IoTest, EdgeListRejectsGarbage) {
  std::istringstream in("1 two\n");
  EXPECT_THROW((void)read_edge_list(in), std::runtime_error);
}

TEST_F(IoTest, DimacsParsesProblemAndArcs) {
  std::istringstream in(
      "c DIMACS shortest-path file\n"
      "p sp 4 3\n"
      "a 1 2 5\n"
      "a 2 3 7\n"
      "a 4 4 1\n");  // self loop dropped
  const Graph g = read_dimacs(in);
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);  // 2 undirected edges
  EXPECT_EQ(count_components(g), 2u);
}

TEST_F(IoTest, DimacsRejectsMissingHeader) {
  std::istringstream in("a 1 2 3\n");
  EXPECT_THROW((void)read_dimacs(in), std::runtime_error);
}

TEST_F(IoTest, DimacsRejectsOutOfRangeVertex) {
  std::istringstream in("p sp 2 1\na 1 5 1\n");
  EXPECT_THROW((void)read_dimacs(in), std::runtime_error);
}

TEST_F(IoTest, MatrixMarketParsesCoordinateFormat) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern symmetric\n"
      "% comment\n"
      "5 5 3\n"
      "2 1\n"
      "3 2\n"
      "5 4\n");
  const Graph g = read_matrix_market(in);
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.num_edges(), 6u);
  EXPECT_EQ(count_components(g), 2u);
}

TEST_F(IoTest, MatrixMarketRejectsWrongHeader) {
  std::istringstream in("not a matrix\n1 1 0\n");
  EXPECT_THROW((void)read_matrix_market(in), std::runtime_error);
}

TEST_F(IoTest, MatrixMarketRejectsDenseFormat) {
  std::istringstream in("%%MatrixMarket matrix array real general\n2 2\n");
  EXPECT_THROW((void)read_matrix_market(in), std::runtime_error);
}

TEST_F(IoTest, BinaryRoundTripsExactly) {
  const Graph g = gen_kronecker(10, 8, 77);
  save_binary(g, path("g.eclg"));
  const Graph loaded = load_binary(path("g.eclg"));
  EXPECT_EQ(loaded.num_vertices(), g.num_vertices());
  EXPECT_EQ(loaded.num_edges(), g.num_edges());
  EXPECT_TRUE(std::equal(g.offsets().begin(), g.offsets().end(), loaded.offsets().begin()));
  EXPECT_TRUE(std::equal(g.adjacency().begin(), g.adjacency().end(),
                         loaded.adjacency().begin()));
}

TEST_F(IoTest, BinaryRejectsBadMagic) {
  std::ofstream out(path("bad.eclg"), std::ios::binary);
  const char junk[64] = {};
  out.write(junk, sizeof(junk));
  out.close();
  EXPECT_THROW((void)load_binary(path("bad.eclg")), std::runtime_error);
}

TEST_F(IoTest, BinaryRejectsTruncation) {
  const Graph g = gen_grid2d(20, 20);
  save_binary(g, path("t.eclg"));
  // Truncate the file in the middle of the adjacency array.
  std::filesystem::resize_file(path("t.eclg"), 200);
  EXPECT_THROW((void)load_binary(path("t.eclg")), std::runtime_error);
}

TEST_F(IoTest, LoadAutoDispatchesOnExtension) {
  const Graph g = gen_path(10);
  save_binary(g, path("auto.eclg"));
  EXPECT_EQ(load_auto(path("auto.eclg")).num_vertices(), 10u);

  {
    std::ofstream out(path("auto.gr"));
    out << "p sp 3 2\na 1 2 1\na 2 3 1\n";
  }
  EXPECT_EQ(load_auto(path("auto.gr")).num_vertices(), 3u);

  {
    std::ofstream out(path("auto.txt"));
    out << "0 1\n1 2\n";
  }
  EXPECT_EQ(load_auto(path("auto.txt")).num_vertices(), 3u);

  {
    std::ofstream out(path("auto.mtx"));
    out << "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 2 3.5\n";
  }
  EXPECT_EQ(load_auto(path("auto.mtx")).num_vertices(), 2u);
}

// ---------------------------------------------------- writer round trips ----

/// CSR equality: same vertex count, offsets, and adjacency.
void expect_identical(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  EXPECT_TRUE(std::equal(a.offsets().begin(), a.offsets().end(), b.offsets().begin()));
  EXPECT_TRUE(
      std::equal(a.adjacency().begin(), a.adjacency().end(), b.adjacency().begin()));
}

TEST_F(IoTest, EveryFormatPairRoundTrips) {
  // A graph with multiple components and an isolated vertex: build from
  // explicit edges so vertex 6 stays isolated.
  const Graph g = build_graph(7, {{0, 1}, {1, 2}, {3, 4}, {4, 5}, {3, 5}});
  const std::vector<std::string> exts = {"eclg", "gr", "mtx"};

  // Header-carrying formats round-trip exactly, via every format pair:
  // write g as A, load it, write that as B, load and compare to g.
  for (const auto& src : exts) {
    for (const auto& dst : exts) {
      const std::string a = path("pair_src." + src);
      const std::string b = path("pair_dst." + dst);
      save_auto(g, a);
      save_auto(load_auto(a), b);
      const Graph back = load_auto(b);
      SCOPED_TRACE(src + " -> " + dst);
      expect_identical(back, g);
    }
  }

  // The edge list has no vertex-count header: the isolated vertex is lost
  // and IDs are compacted, but the connectivity structure survives.
  save_edge_list(g, path("pair.txt"));
  const Graph from_edges = load_auto(path("pair.txt"));
  EXPECT_EQ(from_edges.num_vertices(), 6u);  // vertex 6 dropped
  EXPECT_EQ(from_edges.num_edges(), g.num_edges());
  EXPECT_EQ(count_components(from_edges), count_components(g) - 1);
}

TEST_F(IoTest, EmptyGraphRoundTrips) {
  const Graph g = build_graph(0, {});
  for (const char* name : {"empty.eclg", "empty.gr", "empty.mtx"}) {
    SCOPED_TRACE(name);
    save_auto(g, path(name));
    const Graph back = load_auto(path(name));
    EXPECT_EQ(back.num_vertices(), 0u);
    EXPECT_EQ(back.num_edges(), 0u);
  }
  // An empty edge list loads as the empty graph too (no lines, no vertices).
  save_edge_list(g, path("empty.txt"));
  const Graph back = load_auto(path("empty.txt"));
  EXPECT_EQ(back.num_vertices(), 0u);
  EXPECT_EQ(back.num_edges(), 0u);
}

TEST_F(IoTest, SingleVertexRoundTrips) {
  const Graph g = build_graph(1, {});
  for (const char* name : {"one.eclg", "one.gr", "one.mtx"}) {
    SCOPED_TRACE(name);
    save_auto(g, path(name));
    const Graph back = load_auto(path(name));
    EXPECT_EQ(back.num_vertices(), 1u);
    EXPECT_EQ(back.num_edges(), 0u);
    EXPECT_EQ(count_components(back), 1u);
  }
}

TEST_F(IoTest, EdgeListRoundTripPreservesStructure) {
  // gen_path's sorted edge list appears in identity order, so even ID
  // compaction is the identity and the round trip is exact.
  const Graph g = gen_path(50);
  save_edge_list(g, path("path.txt"));
  expect_identical(load_auto(path("path.txt")), g);

  // A skewed generated graph keeps its non-singleton component structure;
  // isolated vertices (which an edge list cannot represent) are dropped.
  const Graph k = gen_kronecker(8, 8, 5);
  vertex_t isolated = 0;
  for (vertex_t v = 0; v < k.num_vertices(); ++v) {
    if (k.degree(v) == 0) ++isolated;
  }
  save_edge_list(k, path("kron.txt"));
  const Graph back = load_auto(path("kron.txt"));
  EXPECT_EQ(back.num_vertices(), k.num_vertices() - isolated);
  EXPECT_EQ(back.num_edges(), k.num_edges());
  EXPECT_EQ(count_components(back), count_components(k) - isolated);
}

TEST_F(IoTest, TextWritersEmitLoadableHeaders) {
  const Graph g = build_graph(3, {{0, 1}});
  std::ostringstream gr;
  write_dimacs(g, gr);
  EXPECT_NE(gr.str().find("p sp 3 1"), std::string::npos);
  std::ostringstream mtx;
  write_matrix_market(g, mtx);
  EXPECT_NE(mtx.str().find("%%MatrixMarket matrix coordinate pattern symmetric"),
            std::string::npos);
  EXPECT_NE(mtx.str().find("3 3 1"), std::string::npos);
  std::ostringstream txt;
  write_edge_list(g, txt);
  EXPECT_NE(txt.str().find("1 0"), std::string::npos);  // larger-first order
}

TEST_F(IoTest, MissingFileThrows) {
  EXPECT_THROW((void)load_edge_list(path("nope.txt")), std::runtime_error);
  EXPECT_THROW((void)load_binary(path("nope.eclg")), std::runtime_error);
}

// ------------------------------------------------- hostile/truncated input ----
// Loaders must fail with a clear error — never crash, hang, or attempt a
// header-driven multi-GiB allocation — on truncated or adversarial files
// (docs/ROBUSTNESS.md "Input hardening").

TEST_F(IoTest, EdgeListRejectsTruncatedFinalLine) {
  // File cut mid-record: the second line lost its endpoint.
  std::istringstream in("1 2\n3");
  EXPECT_THROW((void)read_edge_list(in), std::runtime_error);
}

TEST_F(IoTest, EdgeListRejectsNonNumericTokens) {
  std::istringstream nan_line("1 2\nx y\n");
  EXPECT_THROW((void)read_edge_list(nan_line), std::runtime_error);
}

TEST_F(IoTest, DimacsRejectsVertexCountOverflow) {
  // 2^33 vertices cannot be represented in 32-bit vertex ids; silently
  // truncating the count would alias vertex ids instead of failing.
  std::istringstream in("p sp 8589934592 1\na 1 2 1\n");
  EXPECT_THROW((void)read_dimacs(in), std::runtime_error);
}

TEST_F(IoTest, DimacsSurvivesHostileEdgeCountClaim) {
  // A tiny file claiming 10^18 edges must not pre-allocate 16 EB; the
  // declared count only seeds a capped reserve and parsing proceeds.
  std::istringstream in("p sp 4 1000000000000000000\na 1 2 1\n");
  const Graph g = read_dimacs(in);
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST_F(IoTest, DimacsRejectsNonNumericProblemLine) {
  std::istringstream in("p sp four three\n");
  EXPECT_THROW((void)read_dimacs(in), std::runtime_error);
}

TEST_F(IoTest, MatrixMarketRejectsVertexCountOverflow) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern symmetric\n"
      "8589934592 8589934592 1\n"
      "1 2\n");
  EXPECT_THROW((void)read_matrix_market(in), std::runtime_error);
}

TEST_F(IoTest, MatrixMarketSurvivesHostileEntryCountClaim) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern symmetric\n"
      "3 3 1000000000000000000\n"
      "1 2\n");
  const Graph g = read_matrix_market(in);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST_F(IoTest, BinaryRejectsHeaderDeclaringMoreThanFileHolds) {
  // Honest magic, hostile sizes: n and m each claim far more payload than
  // the file contains. Both must fail before any allocation is attempted.
  const std::uint64_t magic = 0x45434c4347313041ULL;  // "ECLCG10A"
  {
    std::ofstream out(path("hostile_n.eclg"), std::ios::binary);
    const std::uint64_t n = 0xFFFFFFF0ull, m = 0;
    out.write(reinterpret_cast<const char*>(&magic), 8);
    out.write(reinterpret_cast<const char*>(&n), 8);
    out.write(reinterpret_cast<const char*>(&m), 8);
  }
  EXPECT_THROW((void)load_binary(path("hostile_n.eclg")), std::runtime_error);
  {
    std::ofstream out(path("hostile_m.eclg"), std::ios::binary);
    const std::uint64_t n = 1, m = 1ull << 40;
    const std::uint64_t offsets[2] = {0, 0};
    out.write(reinterpret_cast<const char*>(&magic), 8);
    out.write(reinterpret_cast<const char*>(&n), 8);
    out.write(reinterpret_cast<const char*>(&m), 8);
    out.write(reinterpret_cast<const char*>(offsets), 16);
  }
  EXPECT_THROW((void)load_binary(path("hostile_m.eclg")), std::runtime_error);
}

TEST_F(IoTest, BinaryRejectsVertexCountOverflow) {
  const std::uint64_t magic = 0x45434c4347313041ULL;
  std::ofstream out(path("overflow.eclg"), std::ios::binary);
  const std::uint64_t n = 1ull << 33, m = 0;
  out.write(reinterpret_cast<const char*>(&magic), 8);
  out.write(reinterpret_cast<const char*>(&n), 8);
  out.write(reinterpret_cast<const char*>(&m), 8);
  out.close();
  EXPECT_THROW((void)load_binary(path("overflow.eclg")), std::runtime_error);
}

TEST_F(IoTest, LoadedGraphsWorkWithEclCc) {
  // End-to-end: a graph written to disk, reloaded, and labeled must match
  // the original's components.
  const Graph g = gen_web_graph(2000, 5);
  save_binary(g, path("e2e.eclg"));
  const Graph loaded = load_binary(path("e2e.eclg"));
  EXPECT_EQ(reference_components(loaded), reference_components(g));
}

}  // namespace
}  // namespace ecl
