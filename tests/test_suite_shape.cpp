// Structural-signature tests for the benchmark suite: each scaled stand-in
// must exhibit the property of its Table 2 original that drives CC
// performance (degree ranges, skew, component structure, relative sizes).
// Run at 1/4 scale so the whole suite builds quickly.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "graph/stats.h"
#include "graph/suite.h"

namespace ecl {
namespace {

class SuiteShape : public ::testing::Test {
 protected:
  static const std::map<std::string, GraphStats>& stats() {
    static const auto all = [] {
      std::map<std::string, GraphStats> m;
      for (const auto& name : suite_names()) {
        m.emplace(name, compute_stats(make_suite_graph(name, 0.25), name));
      }
      return m;
    }();
    return all;
  }
};

TEST_F(SuiteShape, GridIsOneComponentDegreeFour) {
  const auto& s = stats().at("2d-2e20.sym");
  EXPECT_EQ(s.num_components, 1u);
  EXPECT_EQ(s.max_degree, 4u);
  EXPECT_NEAR(s.avg_degree, 4.0, 0.3);
}

TEST_F(SuiteShape, RoadMapsAreSparseGiants) {
  for (const char* name : {"europe_osm", "USA-road-d.NY", "USA-road-d.USA"}) {
    const auto& s = stats().at(name);
    EXPECT_LT(s.avg_degree, 4.5) << name;   // paper: 2.1-2.8
    EXPECT_LE(s.max_degree, 10u) << name;   // paper: 8-13
  }
}

TEST_F(SuiteShape, KroneckerHasIsolatedVerticesAndHugeHubs) {
  const auto& s = stats().at("kron_g500-logn21");
  EXPECT_EQ(s.min_degree, 0u);                    // paper dmin = 0
  EXPECT_GT(s.num_components, s.num_vertices / 20);  // paper: 553k CCs of 2.1M
  EXPECT_GT(static_cast<double>(s.max_degree), 30 * s.avg_degree);  // paper: 213904 vs 86.8
}

TEST_F(SuiteShape, WebGraphsHaveIsolatedPagesAndHubs) {
  for (const char* name : {"in-2004", "uk-2002"}) {
    const auto& s = stats().at(name);
    EXPECT_EQ(s.min_degree, 0u) << name;
    EXPECT_GT(s.num_components, 10u) << name;
    EXPECT_GT(static_cast<double>(s.max_degree), 3 * s.avg_degree) << name;
  }
}

TEST_F(SuiteShape, CitationGraphsHaveManyComponents) {
  EXPECT_GT(stats().at("cit-Patents").num_components, 100u);  // paper: 3627
}

TEST_F(SuiteShape, DelaunayIsPlanarScale) {
  const auto& s = stats().at("delaunay_n24");
  EXPECT_EQ(s.num_components, 1u);
  EXPECT_NEAR(s.avg_degree, 6.0, 1.0);  // triangulation
  EXPECT_LT(s.max_degree, 30u);         // paper dmax = 26
}

TEST_F(SuiteShape, RandomGraphHasNarrowDegrees) {
  const auto& s = stats().at("r4-2e23.sym");
  EXPECT_NEAR(s.avg_degree, 8.0, 1.0);  // paper davg = 8.0
  EXPECT_LT(s.max_degree, 40u);         // paper dmax = 26
}

TEST_F(SuiteShape, SizeOrderingMatchesPaper) {
  // The largest/smallest graphs must stay the paper's (Table 2):
  // europe_osm has the most vertices; uk-2002 among the most edges;
  // internet and USA-road-d.NY among the smallest.
  const auto& all = stats();
  for (const auto& [name, s] : all) {
    if (name != "europe_osm") {
      EXPECT_GE(all.at("europe_osm").num_vertices, s.num_vertices) << name;
    }
    EXPECT_LE(all.at("internet").num_vertices, all.at("soc-LiveJournal1").num_vertices);
    EXPECT_LE(all.at("USA-road-d.NY").num_vertices, all.at("USA-road-d.USA").num_vertices);
  }
  EXPECT_GT(all.at("uk-2002").num_edges, all.at("amazon0601").num_edges * 10);
}

TEST_F(SuiteShape, SocialGraphsAreSingleGiantWithSkew) {
  for (const char* name : {"amazon0601", "as-skitter", "soc-LiveJournal1", "internet"}) {
    const auto& s = stats().at(name);
    EXPECT_EQ(s.num_components, 1u) << name;  // PA graphs connect by construction
    EXPECT_GT(static_cast<double>(s.max_degree), 5 * s.avg_degree) << name;
  }
}

}  // namespace
}  // namespace ecl
