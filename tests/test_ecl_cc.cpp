// Correctness tests for ECL-CC (serial and OpenMP) across every policy
// combination and a wide range of graph shapes, verified against the serial
// BFS reference — the paper's own validation protocol (§4).
#include <gtest/gtest.h>

#include <omp.h>

#include <tuple>

#include "core/ecl_cc.h"
#include "core/verify.h"
#include "graph/stats.h"
#include "test_util.h"

namespace ecl {
namespace {

using testing::NamedGraph;
using testing::correctness_graphs;
using testing::stress_graphs;

// ---------------------------------------------------------------------------
// Every graph in the fixture, default (published) configuration.

class EclCcGraphTest : public ::testing::TestWithParam<int> {
 protected:
  static const NamedGraph& graph() { return graphs()[static_cast<std::size_t>(GetParam())]; }
  static const std::vector<NamedGraph>& graphs() {
    static const auto gs = correctness_graphs();
    return gs;
  }
};

TEST_P(EclCcGraphTest, SerialMatchesReference) {
  const auto& [name, g] = graph();
  const auto labels = ecl_cc_serial(g);
  const auto result = verify_labels(g, labels);
  EXPECT_TRUE(result.ok) << name << ": " << result.reason;
  // ECL-CC labels are canonical (component-minimum), so they must equal the
  // reference exactly, not just up to bijection.
  EXPECT_EQ(labels, reference_components(g)) << name;
}

TEST_P(EclCcGraphTest, OmpMatchesReference) {
  const auto& [name, g] = graph();
  const auto labels = ecl_cc_omp(g);
  const auto result = verify_labels(g, labels);
  EXPECT_TRUE(result.ok) << name << ": " << result.reason;
  EXPECT_EQ(labels, reference_components(g)) << name;
}

TEST_P(EclCcGraphTest, OmpOversubscribedMatchesReference) {
  const auto& [name, g] = graph();
  EclOptions opts;
  opts.num_threads = 4 * omp_get_max_threads();  // shake out races
  const auto labels = ecl_cc_omp(g, opts);
  EXPECT_EQ(labels, reference_components(g)) << name;
}

std::string graph_case_name(const ::testing::TestParamInfo<int>& inf) {
  return correctness_graphs()[static_cast<std::size_t>(inf.param)].name;
}

INSTANTIATE_TEST_SUITE_P(AllGraphs, EclCcGraphTest,
                         ::testing::Range(0, static_cast<int>(correctness_graphs().size())),
                         graph_case_name);

// ---------------------------------------------------------------------------
// Every (init, jump, finalize) policy combination on a handful of graphs.

using PolicyTuple = std::tuple<InitPolicy, JumpPolicy, FinalizePolicy>;

class EclCcPolicyTest : public ::testing::TestWithParam<PolicyTuple> {};

TEST_P(EclCcPolicyTest, AllPoliciesProduceCorrectLabels) {
  const auto [init, jump, finalize] = GetParam();
  EclOptions opts;
  opts.init = init;
  opts.jump = jump;
  opts.finalize = finalize;
  for (const auto& [name, g] : correctness_graphs()) {
    const auto serial = ecl_cc_serial(g, opts);
    EXPECT_EQ(serial, reference_components(g)) << name << " serial";
    const auto omp = ecl_cc_omp(g, opts);
    EXPECT_EQ(omp, reference_components(g)) << name << " omp";
  }
}

std::string policy_case_name(const ::testing::TestParamInfo<PolicyTuple>& inf) {
  return "Init" + std::to_string(static_cast<int>(std::get<0>(inf.param))) + "Jump" +
         std::to_string(static_cast<int>(std::get<1>(inf.param))) + "Fini" +
         std::to_string(static_cast<int>(std::get<2>(inf.param)));
}

INSTANTIATE_TEST_SUITE_P(
    AllCombinations, EclCcPolicyTest,
    ::testing::Combine(
        ::testing::Values(InitPolicy::kSelf, InitPolicy::kMinNeighbor,
                          InitPolicy::kFirstSmallerNeighbor),
        ::testing::Values(JumpPolicy::kMultiple, JumpPolicy::kSingle, JumpPolicy::kNone,
                          JumpPolicy::kIntermediate),
        ::testing::Values(FinalizePolicy::kIntermediate, FinalizePolicy::kMultiple,
                          FinalizePolicy::kSingle)),
    policy_case_name);

// ---------------------------------------------------------------------------
// Stress and behavior tests.

TEST(EclCc, StressGraphsSerialAndOmp) {
  for (const auto& [name, g] : stress_graphs()) {
    const auto reference = reference_components(g);
    EXPECT_EQ(ecl_cc_serial(g), reference) << name;
    EXPECT_EQ(ecl_cc_omp(g), reference) << name;
  }
}

TEST(EclCc, PhaseTimesAreReported) {
  const Graph g = gen_grid2d(100, 100);
  PhaseTimes times;
  (void)ecl_cc_serial(g, {}, &times);
  EXPECT_GE(times.init_ms, 0.0);
  EXPECT_GE(times.compute_ms, 0.0);
  EXPECT_GT(times.total_ms(), 0.0);
}

TEST(EclCc, LabelsAreComponentMinima) {
  const Graph g = gen_clique_forest(10, 9);
  const auto labels = ecl_cc_serial(g);
  for (vertex_t v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(labels[v], (v / 9) * 9);
  }
}

TEST(EclCc, ComponentCountMatchesStats) {
  for (const auto& [name, g] : correctness_graphs()) {
    const auto labels = ecl_cc_serial(g);
    EXPECT_EQ(count_labels(labels), count_components(g)) << name;
  }
}

TEST(EclCc, PathLengthReportIsSane) {
  const auto report = ecl_cc_path_lengths(gen_grid2d(200, 200));
  EXPECT_GT(report.num_finds, 0u);
  EXPECT_GE(report.average_length, 0.0);
  EXPECT_GE(static_cast<double>(report.maximum_length), report.average_length);
}

TEST(EclCc, NoJumpingYieldsLongerPathsThanHalving) {
  // The motivation for intermediate pointer jumping (paper Fig. 8 / Table 4):
  // without compression, observed paths grow much longer.
  const Graph g = gen_road_network(30000, 3);
  EclOptions no_jump;
  no_jump.jump = JumpPolicy::kNone;
  const auto without = ecl_cc_path_lengths(g, no_jump);
  const auto with = ecl_cc_path_lengths(g);
  EXPECT_GT(without.average_length, with.average_length);
}

TEST(EclCc, BucketedVariantMatchesReference) {
  for (const auto& [name, g] : correctness_graphs()) {
    EXPECT_EQ(ecl_cc_omp_bucketed(g), reference_components(g)) << name;
  }
  for (const auto& [name, g] : stress_graphs()) {
    EXPECT_EQ(ecl_cc_omp_bucketed(g), reference_components(g)) << name;
  }
}

TEST(EclCc, BucketedVariantOversubscribed) {
  EclOptions opts;
  opts.num_threads = 8;
  const Graph g = gen_kronecker(13, 16, 3);  // has all three degree classes
  EXPECT_EQ(ecl_cc_omp_bucketed(g, opts), reference_components(g));
}

TEST(EclCc, SingleThreadOmpEqualsSerial) {
  EclOptions opts;
  opts.num_threads = 1;
  for (const auto& [name, g] : correctness_graphs()) {
    EXPECT_EQ(ecl_cc_omp(g, opts), ecl_cc_serial(g)) << name;
  }
}

TEST(Verify, DetectsBadLabelings) {
  const Graph g = gen_path(4);
  auto labels = ecl_cc_serial(g);
  ASSERT_TRUE(verify_labels(g, labels).ok);

  auto split = labels;
  split[3] = 3;  // breaks edge consistency
  EXPECT_FALSE(verify_labels(g, split).ok);

  const Graph two = gen_clique_forest(2, 3);
  std::vector<vertex_t> merged(two.num_vertices(), 0);
  EXPECT_FALSE(verify_labels(two, merged).ok);  // merges distinct components

  std::vector<vertex_t> out_of_range(g.num_vertices(), 99);
  EXPECT_FALSE(verify_labels(g, out_of_range).ok);

  std::vector<vertex_t> not_fixed_point{1, 2, 3, 3};
  EXPECT_FALSE(verify_labels(g, not_fixed_point).ok);
}

TEST(Verify, SamePartitionIgnoresRepresentativeChoice) {
  const std::vector<vertex_t> a{0, 0, 2, 2};
  const std::vector<vertex_t> b{1, 1, 3, 3};
  const std::vector<vertex_t> c{0, 0, 0, 2};
  EXPECT_TRUE(same_partition(a, b));
  EXPECT_FALSE(same_partition(a, c));
}

TEST(Verify, CanonicalLabelsPickMinimum) {
  const std::vector<vertex_t> labels{1, 1, 3, 3, 3};
  const auto canon = canonical_labels(labels);
  EXPECT_EQ(canon, (std::vector<vertex_t>{0, 0, 2, 2, 2}));
}

}  // namespace
}  // namespace ecl
