// Shared fixtures/helpers for the test suite.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/graph.h"

namespace ecl::testing {

/// A named graph for value-parameterized correctness sweeps.
struct NamedGraph {
  std::string name;
  Graph graph;
};

/// Small graphs with diverse structure: every CC implementation must label
/// all of them correctly.
inline std::vector<NamedGraph> correctness_graphs() {
  std::vector<NamedGraph> graphs;
  graphs.push_back({"empty", Graph()});
  graphs.push_back({"single_vertex", gen_isolated(1)});
  graphs.push_back({"isolated_100", gen_isolated(100)});
  graphs.push_back({"path_1", gen_path(1)});
  graphs.push_back({"path_2", gen_path(2)});
  graphs.push_back({"path_1000", gen_path(1000)});
  graphs.push_back({"star_500", gen_star(500)});
  graphs.push_back({"complete_40", gen_complete(40)});
  graphs.push_back({"cliques_30x7", gen_clique_forest(30, 7)});
  graphs.push_back({"grid_40x25", gen_grid2d(40, 25)});
  graphs.push_back({"grid_1xN", gen_grid2d(1, 777)});
  graphs.push_back({"delaunay_30x30", gen_delaunay_like(30, 30)});
  graphs.push_back({"random_sparse", gen_uniform_random(2000, 1500, 1)});
  graphs.push_back({"random_dense", gen_uniform_random(500, 4000, 2)});
  graphs.push_back({"rmat_small", gen_rmat(10, 8, RmatParams{}, 3)});
  graphs.push_back({"kron_small", gen_kronecker(10, 16, 4)});
  graphs.push_back({"road_small", gen_road_network(3000, 5)});
  graphs.push_back({"pref_attach", gen_preferential_attachment(2000, 4, 6)});
  graphs.push_back({"citation", gen_citation(2000, 5, 0.6, 7)});
  graphs.push_back({"web_small", gen_web_graph(3000, 8)});
  graphs.push_back({"small_world", gen_small_world(1500, 3, 0.1, 9)});
  // Two components of very different shape glued into one graph.
  {
    GraphBuilder b(1200);
    for (vertex_t v = 0; v + 1 < 600; ++v) b.add_edge(v, v + 1);  // long path
    for (vertex_t v = 601; v < 1200; ++v) b.add_edge(600, v);     // star
    graphs.push_back({"path_plus_star", b.build()});
  }
  return graphs;
}

/// A few larger graphs for stress tests.
inline std::vector<NamedGraph> stress_graphs() {
  std::vector<NamedGraph> graphs;
  graphs.push_back({"grid_300x300", gen_grid2d(300, 300)});
  graphs.push_back({"kron_64k", gen_kronecker(16, 16, 42)});
  graphs.push_back({"road_100k", gen_road_network(100000, 43)});
  graphs.push_back({"random_100k", gen_uniform_random(100000, 400000, 44)});
  return graphs;
}

}  // namespace ecl::testing
