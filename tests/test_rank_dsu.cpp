// Tests for the randomized-linking concurrent union-find (the balanced
// alternative to ECL's min-linking).
#include <gtest/gtest.h>

#include <thread>

#include "dsu/disjoint_set.h"
#include "dsu/rank_dsu.h"
#include "graph/generators.h"
#include "graph/stats.h"

namespace ecl {
namespace {

TEST(RandomPriorityDsu, BasicUniteAndFind) {
  RandomPriorityDisjointSet ds(8);
  EXPECT_EQ(ds.count(), 8u);
  ds.unite(0, 1);
  ds.unite(2, 3);
  EXPECT_TRUE(ds.same(0, 1));
  EXPECT_FALSE(ds.same(1, 2));
  ds.unite(1, 3);
  EXPECT_TRUE(ds.same(0, 2));
  EXPECT_EQ(ds.count(), 5u);
}

TEST(RandomPriorityDsu, LabelsAreCanonicalMinima) {
  RandomPriorityDisjointSet ds(10);
  ds.unite(9, 4);
  ds.unite(4, 7);
  const auto labels = ds.labels();
  EXPECT_EQ(labels[9], 4u);
  EXPECT_EQ(labels[7], 4u);
  EXPECT_EQ(labels[4], 4u);
  EXPECT_EQ(labels[0], 0u);
}

TEST(RandomPriorityDsu, MatchesReferenceOnGraphEdges) {
  const Graph g = gen_web_graph(4000, 21);
  RandomPriorityDisjointSet ds(g.num_vertices());
  for (vertex_t v = 0; v < g.num_vertices(); ++v) {
    for (const vertex_t u : g.neighbors(v)) {
      if (u < v) ds.unite(v, u);
    }
  }
  EXPECT_EQ(ds.labels(), reference_components(g));
}

TEST(RandomPriorityDsu, AdversarialChainStaysBalanced) {
  // Uniting 0-1, 1-2, ..., in order is the worst case for ID-ordered
  // linking; with random priorities the result must still be correct and
  // the structure must not degenerate into O(n)-deep finds in practice
  // (checked implicitly by completing quickly at this size).
  constexpr vertex_t kN = 200000;
  RandomPriorityDisjointSet ds(kN);
  for (vertex_t v = 0; v + 1 < kN; ++v) ds.unite(v, v + 1);
  EXPECT_EQ(ds.count(), 1u);
  const auto labels = ds.labels();
  for (vertex_t v = 0; v < kN; ++v) ASSERT_EQ(labels[v], 0u);
}

TEST(RandomPriorityDsu, ConcurrentUnionsMatchSerialReference) {
  constexpr vertex_t kN = 20000;
  RandomPriorityDisjointSet ds(kN);
  DisjointSet reference(kN);
  std::vector<std::pair<vertex_t, vertex_t>> edges;
  for (vertex_t v = 0; v < kN; ++v) {
    edges.emplace_back(v, (v * 48271u) % kN);
    edges.emplace_back(v, (v * 16807u + 11u) % kN);
  }
  for (const auto& [a, b] : edges) {
    if (a != b) reference.unite(a, b);
  }
  std::vector<std::thread> workers;
  for (int t = 0; t < 6; ++t) {
    workers.emplace_back([&, t] {
      for (std::size_t i = static_cast<std::size_t>(t); i < edges.size(); i += 6) {
        if (edges[i].first != edges[i].second) ds.unite(edges[i].first, edges[i].second);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(ds.count(), reference.count());
  for (vertex_t v = 0; v < kN; ++v) {
    ASSERT_EQ(ds.same(v, (v * 48271u) % kN), reference.same(v, (v * 48271u) % kN)) << v;
  }
}

TEST(RandomPriorityDsu, DeterministicForSeed) {
  RandomPriorityDisjointSet a(100, 7);
  RandomPriorityDisjointSet b(100, 7);
  for (vertex_t v = 0; v + 1 < 100; ++v) {
    a.unite(v, v + 1);
    b.unite(v, v + 1);
  }
  EXPECT_EQ(a.labels(), b.labels());
}

}  // namespace
}  // namespace ecl
