// Tests for the direction-optimizing BFS substrate.
#include <gtest/gtest.h>

#include <queue>

#include "graph/bfs.h"
#include "graph/generators.h"
#include "graph/stats.h"

namespace ecl {
namespace {

/// Naive serial reference BFS distances.
std::vector<std::uint32_t> reference_distances(const Graph& g, vertex_t source) {
  std::vector<std::uint32_t> dist(g.num_vertices(), kUnreachable);
  dist[source] = 0;
  std::queue<vertex_t> q;
  q.push(source);
  while (!q.empty()) {
    const vertex_t v = q.front();
    q.pop();
    for (const vertex_t u : g.neighbors(v)) {
      if (dist[u] == kUnreachable) {
        dist[u] = dist[v] + 1;
        q.push(u);
      }
    }
  }
  return dist;
}

TEST(Bfs, PathGraphDistances) {
  const Graph g = gen_path(100);
  const auto result = bfs(g, 0);
  EXPECT_EQ(result.num_reached, 100u);
  for (vertex_t v = 0; v < 100; ++v) EXPECT_EQ(result.distance[v], v);
}

TEST(Bfs, StarGraphDistances) {
  const Graph g = gen_star(1000);
  const auto from_hub = bfs(g, 0);
  for (vertex_t v = 1; v < 1000; ++v) EXPECT_EQ(from_hub.distance[v], 1u);
  const auto from_leaf = bfs(g, 7);
  EXPECT_EQ(from_leaf.distance[0], 1u);
  EXPECT_EQ(from_leaf.distance[8], 2u);
}

TEST(Bfs, UnreachableVerticesStayMarked) {
  const Graph g = gen_clique_forest(3, 5);
  const auto result = bfs(g, 0);
  EXPECT_EQ(result.num_reached, 5u);
  for (vertex_t v = 5; v < 15; ++v) EXPECT_EQ(result.distance[v], kUnreachable);
}

TEST(Bfs, MatchesReferenceOnVariedGraphs) {
  const Graph graphs[] = {
      gen_grid2d(40, 30),
      gen_kronecker(11, 12, 3),
      gen_road_network(5000, 4),
      gen_web_graph(4000, 9),
  };
  for (const auto& g : graphs) {
    const auto result = bfs(g, 0);
    EXPECT_EQ(result.distance, reference_distances(g, 0));
  }
}

TEST(Bfs, BottomUpTriggersOnDenseGraphs) {
  // A clique-like dense graph saturates the frontier immediately, so the
  // optimizer must switch to bottom-up at least once.
  const Graph g = gen_complete(300);
  const auto result = bfs(g, 0);
  EXPECT_GT(result.direction_switches, 0);
  EXPECT_EQ(result.num_reached, 300u);
  for (vertex_t v = 1; v < 300; ++v) EXPECT_EQ(result.distance[v], 1u);
}

TEST(Bfs, TopDownOnlyOnLongPaths) {
  // A path's frontier is one vertex: never worth a dense sweep.
  const auto result = bfs(gen_path(5000), 2500);
  EXPECT_EQ(result.direction_switches, 0);
  EXPECT_EQ(result.num_reached, 5000u);
}

TEST(Bfs, ForcedBottomUpStillCorrect) {
  // The switch threshold is (edges / alpha): a tiny alpha makes it
  // unreachable (pure top-down), a huge alpha makes it immediate.
  BfsOptions opts;
  opts.alpha = 1e-9;
  const Graph g = gen_kronecker(10, 8, 5);
  const auto td = bfs(g, 0, opts);
  EXPECT_EQ(td.direction_switches, 0);
  opts.alpha = 1e18;
  opts.beta = 1e18;
  const auto bu = bfs(g, 0, opts);
  EXPECT_EQ(td.distance, bu.distance);
  EXPECT_GT(bu.direction_switches, 0);
}

TEST(Bfs, OversubscribedThreadsCorrect) {
  BfsOptions opts;
  opts.num_threads = 8;
  const Graph g = gen_uniform_random(20000, 60000, 6);
  EXPECT_EQ(bfs(g, 0, opts).distance, reference_distances(g, 0));
}

TEST(BfsLabel, LabelsOnlyReachedComponent) {
  const Graph g = gen_clique_forest(4, 6);
  std::vector<vertex_t> label(g.num_vertices(), kInvalidVertex);
  const vertex_t reached = bfs_label(g, 6, 6, label);
  EXPECT_EQ(reached, 6u);
  for (vertex_t v = 6; v < 12; ++v) EXPECT_EQ(label[v], 6u);
  for (vertex_t v = 0; v < 6; ++v) EXPECT_EQ(label[v], kInvalidVertex);
}

TEST(BfsLabel, SkipsVisitedSource) {
  const Graph g = gen_path(10);
  std::vector<vertex_t> label(10, kInvalidVertex);
  EXPECT_EQ(bfs_label(g, 0, 0, label), 10u);
  EXPECT_EQ(bfs_label(g, 5, 5, label), 0u);  // already labeled
  EXPECT_EQ(label[5], 0u);
}

TEST(Bfs, EmptyGraph) {
  const auto result = bfs(Graph(), 0);
  EXPECT_TRUE(result.distance.empty());
  EXPECT_EQ(result.num_reached, 0u);
}

}  // namespace
}  // namespace ecl
