// Tests for ecl::svc — the batched connectivity query service: the bounded
// admission queue, snapshot consistency across compactions, backpressure
// (shed, never block or drop), graceful drain-and-shutdown, a multithreaded
// linearizability smoke, the wire protocol, and an end-to-end socket test
// against a live Server.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "graph/builder.h"
#include "svc/client.h"
#include "svc/net.h"
#include "svc/protocol.h"
#include "svc/queue.h"
#include "svc/server.h"
#include "svc/service.h"

namespace ecl::svc {
namespace {

// ---------------------------------------------------------------- queue ----

TEST(BoundedQueue, AcceptsUntilCapacityThenSheds) {
  BoundedQueue<int> q(2);
  EXPECT_EQ(q.try_push(1), Admission::kAccepted);
  EXPECT_EQ(q.try_push(2), Admission::kAccepted);
  EXPECT_EQ(q.try_push(3), Admission::kShed);  // full: shed, not block
  EXPECT_EQ(q.size(), 2u);

  int out = 0;
  EXPECT_TRUE(q.pop(out));
  EXPECT_EQ(out, 1);
  EXPECT_EQ(q.try_push(4), Admission::kAccepted);  // slot freed
}

TEST(BoundedQueue, CloseDrainsThenReportsEmpty) {
  BoundedQueue<int> q(4);
  ASSERT_EQ(q.try_push(7), Admission::kAccepted);
  ASSERT_EQ(q.try_push(8), Admission::kAccepted);
  q.close();
  EXPECT_EQ(q.try_push(9), Admission::kClosed);

  int out = 0;
  EXPECT_TRUE(q.pop(out));   // items admitted before close still drain
  EXPECT_EQ(out, 7);
  EXPECT_TRUE(q.pop(out));
  EXPECT_EQ(out, 8);
  EXPECT_FALSE(q.pop(out));  // drained + closed
}

TEST(BoundedQueue, PopBlocksUntilPush) {
  BoundedQueue<int> q(1);
  std::atomic<int> got{0};
  std::thread consumer([&] {
    int out = 0;
    if (q.pop(out)) got.store(out);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(q.try_push(42), Admission::kAccepted);
  consumer.join();
  EXPECT_EQ(got.load(), 42);
}

// -------------------------------------------------------------- service ----

TEST(ConnectivityService, StartsAsSingletons) {
  ConnectivityService svc(8);
  EXPECT_EQ(svc.component_count(), 8u);
  EXPECT_FALSE(svc.connected(0, 7));
  EXPECT_EQ(svc.component_of(3), 3u);
  EXPECT_EQ(svc.snapshot()->epoch, 0u);
}

TEST(ConnectivityService, SnapshotSeesCompactedEdgesOnly) {
  ServiceOptions opts;
  opts.compact_interval_ms = 3600 * 1000;  // only explicit compactions
  opts.compact_min_new_edges = ~0ull;
  ConnectivityService svc(10, opts);

  ASSERT_EQ(svc.submit({{0, 1}, {1, 2}}), Admission::kAccepted);
  const std::uint64_t epoch = svc.compact_now();
  EXPECT_GE(epoch, 1u);

  // The snapshot reflects everything accepted before compact_now()...
  EXPECT_TRUE(svc.connected(0, 2, ReadMode::kSnapshot));
  EXPECT_EQ(svc.component_of(2, ReadMode::kSnapshot), 0u);  // canonical min-ID
  EXPECT_EQ(svc.component_count(), 8u);                     // {0,1,2} + 7 singletons

  // ...but edges applied after it are only visible to kFresh reads.
  ASSERT_EQ(svc.submit({{2, 3}}), Admission::kAccepted);
  svc.flush();
  EXPECT_FALSE(svc.connected(0, 3, ReadMode::kSnapshot));
  EXPECT_TRUE(svc.connected(0, 3, ReadMode::kFresh));

  const std::uint64_t epoch2 = svc.compact_now();
  EXPECT_GT(epoch2, epoch);
  EXPECT_TRUE(svc.connected(0, 3, ReadMode::kSnapshot));
}

TEST(ConnectivityService, SnapshotPinsItsEpoch) {
  ServiceOptions opts;
  opts.compact_interval_ms = 3600 * 1000;
  opts.compact_min_new_edges = ~0ull;
  ConnectivityService svc(6, opts);

  ASSERT_EQ(svc.submit({{0, 1}}), Admission::kAccepted);
  svc.compact_now();
  const SnapshotPtr pinned = svc.snapshot();

  ASSERT_EQ(svc.submit({{1, 2}}), Admission::kAccepted);
  svc.compact_now();

  // The pinned epoch is immutable even after newer epochs are published.
  EXPECT_TRUE(pinned->connected(0, 1));
  EXPECT_FALSE(pinned->connected(0, 2));
  EXPECT_TRUE(svc.snapshot()->connected(0, 2));
  EXPECT_GT(svc.snapshot()->epoch, pinned->epoch);
}

TEST(ConnectivityService, SeedGraphCountsAsEpochZero) {
  // 0-1-2 path plus isolated 3.
  const Graph g = build_graph(4, {{0, 1}, {1, 2}});
  ConnectivityService svc(g);
  EXPECT_TRUE(svc.connected(0, 2));
  EXPECT_FALSE(svc.connected(0, 3));
  EXPECT_EQ(svc.component_count(), 2u);
  EXPECT_GT(svc.stats().watermark, 0u);  // seed edges are pre-applied
}

TEST(ConnectivityService, OutOfRangeVerticesAreSafe) {
  ConnectivityService svc(4);
  EXPECT_FALSE(svc.connected(0, 99));
  EXPECT_FALSE(svc.connected(99, 100, ReadMode::kFresh));
  EXPECT_EQ(svc.component_of(99), kInvalidVertex);
  // A batch mixing valid and invalid edges applies only the valid ones.
  ASSERT_EQ(svc.submit({{0, 1}, {2, 99}, {100, 101}}), Admission::kAccepted);
  svc.compact_now();
  EXPECT_TRUE(svc.connected(0, 1));
  EXPECT_FALSE(svc.connected(2, 3));
  EXPECT_EQ(svc.stats().applied_edges, 1u);
}

TEST(ConnectivityService, BackpressureShedsInsteadOfBlocking) {
  ServiceOptions opts;
  opts.queue_capacity = 2;
  opts.ingest_delay_us = 2000;  // slow consumer → queue fills
  opts.compact_interval_ms = 3600 * 1000;
  opts.compact_min_new_edges = ~0ull;
  ConnectivityService svc(1000, opts);

  std::uint64_t accepted = 0, shed = 0, accepted_edges = 0;
  for (vertex_t i = 0; i + 1 < 200; ++i) {
    const Admission a = svc.submit({{i, i + 1}});
    if (a == Admission::kAccepted) {
      ++accepted;
      ++accepted_edges;
    } else {
      ASSERT_EQ(a, Admission::kShed);  // never kClosed while running
      ++shed;
    }
  }
  EXPECT_GT(accepted, 0u);
  EXPECT_GT(shed, 0u);  // capacity 2 with a slow consumer must shed

  // Every accepted batch is applied — shed is visible, loss is not.
  svc.flush();
  const ServiceStats st = svc.stats();
  EXPECT_EQ(st.accepted_batches, accepted);
  EXPECT_EQ(st.applied_batches, accepted);
  EXPECT_EQ(st.applied_edges, accepted_edges);
  EXPECT_EQ(st.shed_batches, shed);
}

TEST(ConnectivityService, GracefulShutdownAppliesInFlightBatches) {
  ServiceOptions opts;
  opts.queue_capacity = 64;
  opts.ingest_delay_us = 500;  // keep batches in flight at stop() time
  opts.compact_interval_ms = 3600 * 1000;
  opts.compact_min_new_edges = ~0ull;
  ConnectivityService svc(64, opts);

  std::uint64_t accepted_edges = 0;
  for (vertex_t i = 0; i + 1 < 32; ++i) {
    if (svc.submit({{i, i + 1}}) == Admission::kAccepted) ++accepted_edges;
  }
  svc.stop();  // drain + final compaction

  EXPECT_EQ(svc.submit({{0, 1}}), Admission::kClosed);
  const ServiceStats st = svc.stats();
  EXPECT_EQ(st.applied_edges, accepted_edges);
  EXPECT_EQ(st.watermark, accepted_edges);  // final snapshot covers the log
  // All 32 path vertices collapsed into one component (+32 singletons).
  EXPECT_TRUE(svc.connected(0, 31));
  EXPECT_EQ(svc.component_count(), 33u);
}

TEST(ConnectivityService, StopIsIdempotent) {
  ConnectivityService svc(4);
  svc.stop();
  svc.stop();
  EXPECT_EQ(svc.submit({{0, 1}}), Admission::kClosed);
}

TEST(ConnectivityService, ConcurrentStopIsSafe) {
  ConnectivityService svc(16);
  ASSERT_EQ(svc.submit({{0, 1}}), Admission::kAccepted);
  std::vector<std::thread> stoppers;
  for (int i = 0; i < 4; ++i) stoppers.emplace_back([&] { svc.stop(); });
  for (auto& t : stoppers) t.join();
  EXPECT_EQ(svc.submit({{1, 2}}), Admission::kClosed);
  // Every stop() call — winner or not — returns only after the full drain,
  // so the accepted edge is visible in the final snapshot.
  EXPECT_TRUE(svc.connected(0, 1));
}

// Linearizability smoke: connectivity only ever grows (we never delete
// edges), so once any reader observes connected(u,v) == true, every later
// read in any mode must agree. Writers and readers run concurrently while
// background compactions swap snapshots under the readers.
TEST(ConnectivityService, ConnectivityIsMonotoneUnderConcurrency) {
  constexpr vertex_t kN = 512;
  ServiceOptions opts;
  opts.compact_interval_ms = 1;  // aggressive snapshot churn
  ConnectivityService svc(kN, opts);

  std::atomic<bool> writer_done{false};
  std::atomic<bool> violation{false};

  std::thread writer([&] {
    for (vertex_t i = 0; i + 1 < kN; ++i) {
      while (svc.submit({{i, i + 1}}) == Admission::kShed) {
        std::this_thread::yield();
      }
    }
    svc.flush();
    writer_done.store(true, std::memory_order_release);
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      const ReadMode mode = r == 0 ? ReadMode::kFresh : ReadMode::kSnapshot;
      // frontier = highest vertex seen connected to 0 so far; connectivity
      // along the path 0-1-2-... may never regress below it.
      vertex_t frontier = 0;
      while (!writer_done.load(std::memory_order_acquire)) {
        if (frontier + 1 < kN && svc.connected(0, frontier + 1, mode)) {
          ++frontier;
        } else if (frontier > 0 && !svc.connected(0, frontier, ReadMode::kFresh)) {
          // kFresh is at least as fresh as any earlier observation.
          violation.store(true);
          return;
        }
      }
    });
  }
  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_FALSE(violation.load());

  svc.compact_now();
  EXPECT_TRUE(svc.connected(0, kN - 1));
  EXPECT_EQ(svc.component_count(), 1u);
}

// ------------------------------------------------------------- protocol ----

std::span<const std::uint8_t> payload_of(const std::vector<std::uint8_t>& frame) {
  EXPECT_GE(frame.size(), 4u);
  const std::uint32_t len = static_cast<std::uint32_t>(frame[0]) |
                            static_cast<std::uint32_t>(frame[1]) << 8 |
                            static_cast<std::uint32_t>(frame[2]) << 16 |
                            static_cast<std::uint32_t>(frame[3]) << 24;
  EXPECT_EQ(frame.size(), 4u + len);  // length prefix is exact
  return {frame.data() + 4, len};
}

TEST(Protocol, RequestRoundTripAllTypes) {
  Request in;
  in.type = MsgType::kIngest;
  in.id = 0x1122334455667788ull;
  in.edges = {{1, 2}, {3, 4}, {0xffffffffu, 0}};
  std::vector<std::uint8_t> buf;
  encode_request(in, buf);

  Request out;
  ASSERT_TRUE(decode_request(payload_of(buf), out));
  EXPECT_EQ(out.type, MsgType::kIngest);
  EXPECT_EQ(out.id, in.id);
  EXPECT_EQ(out.edges, in.edges);

  for (const MsgType t : {MsgType::kPing, MsgType::kConnected, MsgType::kComponentOf,
                          MsgType::kComponentCount, MsgType::kStats, MsgType::kShutdown}) {
    Request req;
    req.type = t;
    req.id = 42;
    req.u = 7;
    req.v = 9;
    req.mode = ReadMode::kFresh;
    buf.clear();
    encode_request(req, buf);
    Request got;
    ASSERT_TRUE(decode_request(payload_of(buf), got)) << static_cast<int>(t);
    EXPECT_EQ(got.type, t);
    EXPECT_EQ(got.id, 42u);
    if (t == MsgType::kConnected) {
      EXPECT_EQ(got.u, 7u);
      EXPECT_EQ(got.v, 9u);
      EXPECT_EQ(got.mode, ReadMode::kFresh);
    }
    if (t == MsgType::kComponentOf) {
      EXPECT_EQ(got.v, 9u);
      EXPECT_EQ(got.mode, ReadMode::kFresh);
    }
  }
}

TEST(Protocol, ResponseRoundTripCarriesStatsAndStatus) {
  Response in;
  in.type = MsgType::kStats;
  in.id = 99;
  in.status = Status::kOk;
  in.stats.epoch = 3;
  in.stats.watermark = 1000;
  in.stats.applied_edges = 1234;
  in.stats.accepted_batches = 20;
  in.stats.applied_batches = 19;
  in.stats.shed_batches = 2;
  in.stats.queue_depth = 1;
  in.stats.num_components = 77;
  in.stats.num_vertices = 4096;
  std::vector<std::uint8_t> buf;
  encode_response(in, buf);

  Response out;
  ASSERT_TRUE(decode_response(payload_of(buf), out));
  EXPECT_EQ(out.id, 99u);
  EXPECT_EQ(out.status, Status::kOk);
  EXPECT_EQ(out.stats.epoch, 3u);
  EXPECT_EQ(out.stats.applied_edges, 1234u);
  EXPECT_EQ(out.stats.shed_batches, 2u);
  EXPECT_EQ(out.stats.num_vertices, 4096u);

  Response shed;
  shed.type = MsgType::kIngest;
  shed.id = 5;
  shed.status = Status::kShed;
  buf.clear();
  encode_response(shed, buf);
  ASSERT_TRUE(decode_response(payload_of(buf), out));
  EXPECT_EQ(out.status, Status::kShed);
}

TEST(Protocol, StatsTaggedRoundTripCarriesEveryField) {
  Response in;
  in.type = MsgType::kStats;
  in.id = 7;
  in.status = Status::kOk;
  in.stats.epoch = 11;
  in.stats.watermark = 22;
  in.stats.applied_edges = 33;
  in.stats.accepted_batches = 44;
  in.stats.applied_batches = 43;
  in.stats.shed_batches = 1;
  in.stats.queue_depth = 5;
  in.stats.num_components = 66;
  in.stats.num_vertices = 77;
  in.stats.checkpoints = 2;
  in.stats.last_checkpoint_epoch = 9;
  in.stats.wal_segments = 3;
  in.stats.wal_bytes = 88;
  // Fields that only exist in the tagged encoding:
  in.stats.degraded = true;
  in.stats.uptime_ms = 123456;
  in.stats.replayed_edges = 999;
  in.stats.requests_served = 31337;
  std::vector<std::uint8_t> buf;
  encode_response(in, buf);

  Response out;
  ASSERT_TRUE(decode_response(payload_of(buf), out));
  EXPECT_EQ(out.stats.epoch, 11u);
  EXPECT_EQ(out.stats.watermark, 22u);
  EXPECT_EQ(out.stats.applied_edges, 33u);
  EXPECT_EQ(out.stats.queue_depth, 5u);
  EXPECT_EQ(out.stats.num_components, 66u);
  EXPECT_EQ(out.stats.num_vertices, 77u);
  EXPECT_EQ(out.stats.wal_bytes, 88u);
  EXPECT_TRUE(out.stats.degraded);
  EXPECT_EQ(out.stats.uptime_ms, 123456u);
  EXPECT_EQ(out.stats.replayed_edges, 999u);
  EXPECT_EQ(out.stats.requests_served, 31337u);
}

// Byte-level builders for hand-rolled stats bodies (a legacy peer's encoder
// and a future peer's unknown tags don't exist in this codebase to call).
void push_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void push_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::vector<std::uint8_t> stats_response_header() {
  std::vector<std::uint8_t> p;
  p.push_back(static_cast<std::uint8_t>(MsgType::kStats));
  push_u64(p, 42);  // request id
  p.push_back(static_cast<std::uint8_t>(Status::kOk));
  return p;
}

TEST(Protocol, StatsLegacyFixedBodyStillDecodes) {
  // A pre-tagging daemon's body: exactly 13 x u64 in declaration order.
  std::vector<std::uint8_t> p = stats_response_header();
  for (std::uint64_t v = 1; v <= 13; ++v) push_u64(p, v * 100);
  ASSERT_EQ(p.size(), 1u + 8 + 1 + 13 * 8);

  Response out;
  ASSERT_TRUE(decode_response(p, out));
  EXPECT_EQ(out.id, 42u);
  EXPECT_EQ(out.stats.epoch, 100u);
  EXPECT_EQ(out.stats.watermark, 200u);
  EXPECT_EQ(out.stats.applied_edges, 300u);
  EXPECT_EQ(out.stats.queue_depth, 700u);
  EXPECT_EQ(out.stats.num_components, 800u);
  EXPECT_EQ(out.stats.num_vertices, 900u);
  EXPECT_EQ(out.stats.wal_bytes, 1300u);
  // Tagged-only fields default cleanly when the peer predates them.
  EXPECT_FALSE(out.stats.degraded);
  EXPECT_EQ(out.stats.uptime_ms, 0u);
  EXPECT_EQ(out.stats.replayed_edges, 0u);
  EXPECT_EQ(out.stats.requests_served, 0u);
}

TEST(Protocol, StatsUnknownTagsAreSkipped) {
  // A future daemon sends a field this build doesn't know: decode keeps the
  // fields it recognizes and ignores the rest.
  std::vector<std::uint8_t> p = stats_response_header();
  p.push_back(kStatsTaggedFormat);
  push_u16(p, 3);
  push_u16(p, static_cast<std::uint16_t>(StatsField::kEpoch));
  push_u64(p, 5);
  push_u16(p, 999);  // unknown tag
  push_u64(p, 0xdeadbeef);
  push_u16(p, static_cast<std::uint16_t>(StatsField::kRequestsServed));
  push_u64(p, 77);

  Response out;
  ASSERT_TRUE(decode_response(p, out));
  EXPECT_EQ(out.stats.epoch, 5u);
  EXPECT_EQ(out.stats.requests_served, 77u);
  EXPECT_EQ(out.stats.watermark, 0u);
}

TEST(Protocol, StatsMalformedTaggedBodiesFail) {
  {
    // Count claims two fields but only one is present.
    std::vector<std::uint8_t> p = stats_response_header();
    p.push_back(kStatsTaggedFormat);
    push_u16(p, 2);
    push_u16(p, static_cast<std::uint16_t>(StatsField::kEpoch));
    push_u64(p, 5);
    Response out;
    EXPECT_FALSE(decode_response(p, out));
  }
  {
    // Trailing garbage beyond the declared fields.
    std::vector<std::uint8_t> p = stats_response_header();
    p.push_back(kStatsTaggedFormat);
    push_u16(p, 1);
    push_u16(p, static_cast<std::uint16_t>(StatsField::kEpoch));
    push_u64(p, 5);
    p.push_back(0xab);
    Response out;
    EXPECT_FALSE(decode_response(p, out));
  }
  {
    // Unknown format byte.
    std::vector<std::uint8_t> p = stats_response_header();
    p.push_back(kStatsTaggedFormat + 1);
    push_u16(p, 0);
    Response out;
    EXPECT_FALSE(decode_response(p, out));
  }
}

TEST(Protocol, MsgTypeNamesAreStable) {
  EXPECT_STREQ(msg_type_name(MsgType::kPing), "ping");
  EXPECT_STREQ(msg_type_name(MsgType::kIngest), "ingest");
  EXPECT_STREQ(msg_type_name(MsgType::kStats), "stats");
  EXPECT_STREQ(msg_type_name(MsgType::kHealth), "health");
}

TEST(Protocol, RejectsMalformedPayloads) {
  Request req;
  EXPECT_FALSE(decode_request({}, req));  // empty

  // Truncated ingest: claims 2 edges, carries 1.
  Request in;
  in.type = MsgType::kIngest;
  in.edges = {{1, 2}, {3, 4}};
  std::vector<std::uint8_t> buf;
  encode_request(in, buf);
  auto payload = payload_of(buf);
  EXPECT_FALSE(decode_request(payload.subspan(0, payload.size() - 8), req));

  // Unknown type byte.
  std::vector<std::uint8_t> bogus(9, 0);
  bogus[0] = 200;
  EXPECT_FALSE(decode_request(bogus, req));

  // Trailing garbage after a valid ping.
  Request ping;
  buf.clear();
  encode_request(ping, buf);
  std::vector<std::uint8_t> padded(payload_of(buf).begin(), payload_of(buf).end());
  padded.push_back(0);
  EXPECT_FALSE(decode_request(padded, req));

  // Bad read-mode byte.
  Request conn;
  conn.type = MsgType::kConnected;
  buf.clear();
  encode_request(conn, buf);
  std::vector<std::uint8_t> bad_mode(payload_of(buf).begin(), payload_of(buf).end());
  bad_mode.back() = 7;
  EXPECT_FALSE(decode_request(bad_mode, req));
}

TEST(Protocol, RejectsIngestCountBeyondPayload) {
  // A 17-byte payload claiming 2^32-1 edges must fail up front — not
  // attempt a ~32 GiB reserve() and take the process down with bad_alloc.
  std::vector<std::uint8_t> payload;
  payload.push_back(static_cast<std::uint8_t>(MsgType::kIngest));
  for (int i = 0; i < 8; ++i) payload.push_back(0);     // request id
  for (int i = 0; i < 4; ++i) payload.push_back(0xff);  // count = 0xffffffff
  Request req;
  EXPECT_FALSE(decode_request(payload, req));

  // One edge short of the claim fails too; the exact claim decodes.
  payload[9] = 2;  // count = 2 (little-endian)
  for (int i = 10; i < 13; ++i) payload[i] = 0;
  for (int i = 0; i < 8; ++i) payload.push_back(0);  // one edge, not two
  EXPECT_FALSE(decode_request(payload, req));
  for (int i = 0; i < 8; ++i) payload.push_back(0);
  EXPECT_TRUE(decode_request(payload, req));
  EXPECT_EQ(req.edges.size(), 2u);
}

// ------------------------------------------------------- socket round trip ----

class SvcSocketTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ServiceOptions opts;
    opts.compact_interval_ms = 5;
    service_ = std::make_unique<ConnectivityService>(kVertices, opts);
    ServerOptions sopts;
    // Unique per process: ctest runs discovered cases in parallel, and
    // listen_unix() unlinks stale paths — a shared name would let one
    // case's server steal another's socket.
    sopts.unix_path =
        ::testing::TempDir() + "ecl_svc_" + std::to_string(::getpid()) + ".sock";
    std::remove(sopts.unix_path.c_str());
    server_ = std::make_unique<Server>(*service_, sopts);
    std::string err;
    ASSERT_TRUE(server_->start(&err)) << err;
    unix_path_ = sopts.unix_path;
  }

  void TearDown() override {
    server_->stop();
    service_->stop();
  }

  static constexpr vertex_t kVertices = 256;
  std::unique_ptr<ConnectivityService> service_;
  std::unique_ptr<Server> server_;
  std::string unix_path_;
};

TEST_F(SvcSocketTest, FullRequestResponseCycle) {
  std::string err;
  auto client = Client::connect_unix(unix_path_, &err);
  ASSERT_NE(client, nullptr) << err;

  EXPECT_TRUE(client->ping());
  EXPECT_EQ(client->ingest({{1, 2}, {2, 3}}), Status::kOk);
  service_->compact_now();

  Status st = Status::kOk;
  EXPECT_TRUE(client->connected(1, 3, ReadMode::kSnapshot, &st));
  EXPECT_EQ(st, Status::kOk);
  EXPECT_FALSE(client->connected(1, 4, ReadMode::kSnapshot, &st));
  EXPECT_EQ(client->component_of(3, ReadMode::kSnapshot, &st), 1u);

  // Out-of-range vertices are a definitive kInvalid, not a dropped conn.
  (void)client->connected(1, kVertices + 5, ReadMode::kSnapshot, &st);
  EXPECT_EQ(st, Status::kInvalid);

  std::uint64_t count = 0;
  ASSERT_TRUE(client->component_count(count));
  EXPECT_EQ(count, kVertices - 2);  // {1,2,3} merged

  ServiceStats stats{};
  ASSERT_TRUE(client->stats(stats));
  EXPECT_EQ(stats.num_vertices, kVertices);
  EXPECT_EQ(stats.applied_edges, 2u);
}

TEST_F(SvcSocketTest, ConcurrentClients) {
  constexpr int kClients = 4;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      auto client = Client::connect_unix(unix_path_, nullptr);
      if (!client) {
        ++failures;
        return;
      }
      for (vertex_t i = 0; i < 50; ++i) {
        const vertex_t base = static_cast<vertex_t>(c) * 60;
        // kShed is backpressure, not failure — retry like a real client.
        Status ing = Status::kShed;
        while (ing == Status::kShed) {
          ing = client->ingest({{base + i, base + i + 1}});
          if (ing == Status::kShed) std::this_thread::yield();
        }
        if (ing != Status::kOk) ++failures;
        Status st = Status::kOk;
        (void)client->connected(base, base + i, ReadMode::kFresh, &st);
        if (st != Status::kOk) ++failures;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);

  service_->compact_now();
  for (int c = 0; c < kClients; ++c) {
    const vertex_t base = static_cast<vertex_t>(c) * 60;
    EXPECT_TRUE(service_->connected(base, base + 50));
  }
}

TEST_F(SvcSocketTest, MalformedFrameGetsInvalidResponse) {
  // Hand-rolled client: send a frame whose payload is garbage.
  std::string err;
  auto client = Client::connect_unix(unix_path_, &err);
  ASSERT_NE(client, nullptr) << err;
  // The typed client cannot emit garbage; instead check the server stays up
  // after a normal request (regression guard for the dispatch path) and that
  // a fresh client still works after another client disconnects abruptly.
  EXPECT_TRUE(client->ping());
  client.reset();  // abrupt close
  auto client2 = Client::connect_unix(unix_path_, &err);
  ASSERT_NE(client2, nullptr) << err;
  EXPECT_TRUE(client2->ping());
}

TEST_F(SvcSocketTest, HostileIngestCountDoesNotKillServer) {
  std::string err;
  const int fd = net::connect_unix(unix_path_, &err);
  ASSERT_GE(fd, 0) << err;
  // A well-framed 13-byte kIngest payload claiming 2^32-1 edges: the server
  // must answer kInvalid and survive, not die in a ~32 GiB reserve().
  std::vector<std::uint8_t> frame = {13, 0, 0, 0,  // payload length
                                     static_cast<std::uint8_t>(MsgType::kIngest)};
  for (int i = 0; i < 8; ++i) frame.push_back(0);     // request id
  for (int i = 0; i < 4; ++i) frame.push_back(0xff);  // edge count
  ASSERT_TRUE(net::write_frame(fd, frame));
  std::vector<std::uint8_t> payload;
  ASSERT_TRUE(net::read_frame(fd, payload));
  Response resp;
  ASSERT_TRUE(decode_response(payload, resp));
  EXPECT_EQ(resp.status, Status::kInvalid);
  ::close(fd);

  // The daemon is still serving.
  auto client = Client::connect_unix(unix_path_, &err);
  ASSERT_NE(client, nullptr) << err;
  EXPECT_TRUE(client->ping());
}

TEST_F(SvcSocketTest, OversizedIngestBatchRejectedClientSide) {
  std::string err;
  auto client = Client::connect_unix(unix_path_, &err);
  ASSERT_NE(client, nullptr) << err;
  const std::vector<Edge> too_big(kMaxIngestEdges + 1, {0, 1});
  EXPECT_EQ(client->ingest(too_big), Status::kInvalid);
  EXPECT_TRUE(client->ping());  // the connection was never touched
}

TEST_F(SvcSocketTest, FinishedConnectionsAreReaped) {
  std::string err;
  for (int i = 0; i < 8; ++i) {
    auto client = Client::connect_unix(unix_path_, &err);
    ASSERT_NE(client, nullptr) << err;
    EXPECT_TRUE(client->ping());
  }
  // The accept loop joins finished handlers on its next wakeups (its poll
  // timeout is 200ms); a long-running daemon must not accumulate threads.
  std::size_t live = server_->active_connections();
  for (int tries = 0; tries < 150 && live > 0; ++tries) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    live = server_->active_connections();
  }
  EXPECT_EQ(live, 0u);
}

TEST_F(SvcSocketTest, PipelinedRequestsAnswerInOrder) {
  // One connection, many requests written back to back before any response
  // is read: the event loop must deliver every response, in request order,
  // with the caller's ids preserved.
  std::string err;
  const int fd = net::connect_unix(unix_path_, &err);
  ASSERT_GE(fd, 0) << err;

  constexpr int kRequests = 16;
  std::vector<MsgType> types;
  std::vector<std::uint8_t> burst;
  for (int i = 0; i < kRequests; ++i) {
    Request req;
    req.id = 100 + static_cast<std::uint64_t>(i);
    switch (i % 3) {
      case 0:
        req.type = MsgType::kPing;
        break;
      case 1:
        req.type = MsgType::kComponentCount;
        break;
      default:
        req.type = MsgType::kConnected;
        req.u = 1;
        req.v = 2;
        req.mode = ReadMode::kFresh;
        break;
    }
    types.push_back(req.type);
    encode_request(req, burst);  // appends a complete frame
  }
  ASSERT_TRUE(net::write_full(fd, burst.data(), burst.size()));

  for (int i = 0; i < kRequests; ++i) {
    std::vector<std::uint8_t> payload;
    ASSERT_TRUE(net::read_frame(fd, payload)) << "response " << i;
    Response resp;
    ASSERT_TRUE(decode_response(payload, resp)) << "response " << i;
    EXPECT_EQ(resp.id, 100 + static_cast<std::uint64_t>(i));
    EXPECT_EQ(resp.type, types[static_cast<std::size_t>(i)]);
    EXPECT_EQ(resp.status, Status::kOk);
  }
  ::close(fd);
}

// Backpressure: a dedicated fixture with a tiny server-side SO_SNDBUF and a
// short write-stall bound, so a deliberately-unread client trips the
// pause -> stall -> evict ladder with kilobytes instead of the production
// defaults' tens of megabytes.
class SvcBackpressureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ServiceOptions opts;
    opts.compact_interval_ms = 5;
    service_ = std::make_unique<ConnectivityService>(256, opts);
    ServerOptions sopts;
    sopts.unix_path = ::testing::TempDir() + "ecl_svc_bp_" +
                      std::to_string(::getpid()) + ".sock";
    std::remove(sopts.unix_path.c_str());
    sopts.sndbuf_bytes = 4096;
    sopts.write_buffer_pause = 8192;
    sopts.write_buffer_limit = 1u << 20;
    sopts.send_timeout_ms = 200;   // write-stall eviction bound
    sopts.frame_timeout_ms = 1000;
    server_ = std::make_unique<Server>(*service_, sopts);
    std::string err;
    ASSERT_TRUE(server_->start(&err)) << err;
    unix_path_ = sopts.unix_path;
  }

  void TearDown() override {
    server_->stop();
    service_->stop();
  }

  std::unique_ptr<ConnectivityService> service_;
  std::unique_ptr<Server> server_;
  std::string unix_path_;
};

TEST_F(SvcBackpressureTest, UnreadClientIsEvictedNotServedForever) {
  std::string err;
  const int fd = net::connect_unix(unix_path_, &err);
  ASSERT_GE(fd, 0) << err;

  // Pipeline kStats requests (responses are ~250 bytes each) and never read
  // a byte back. Non-blocking sends: once the server pauses reading, our
  // own socket fills and EAGAIN is expected — by then the server's write
  // buffer is past the pause threshold and the stall clock is running.
  std::vector<std::uint8_t> frame;
  std::size_t sent_requests = 0;
  for (int i = 0; i < 2000; ++i) {
    Request req;
    req.type = MsgType::kStats;
    req.id = static_cast<std::uint64_t>(i);
    frame.clear();
    encode_request(req, frame);
    const ssize_t n = ::send(fd, frame.data(), frame.size(), MSG_DONTWAIT);
    if (n < 0) {
      ASSERT_TRUE(errno == EAGAIN || errno == EWOULDBLOCK) << strerror(errno);
      break;  // our send buffer is full: the server has stopped reading
    }
    ++sent_requests;
  }
  ASSERT_GT(sent_requests, 0u);

  // Never reading drives the ladder to eviction within send_timeout_ms.
  ServerConnStats cs = server_->conn_stats();
  for (int tries = 0; tries < 250 && cs.evicted_backpressure == 0; ++tries) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    cs = server_->conn_stats();
  }
  EXPECT_GE(cs.evicted_backpressure, 1u);
  ::close(fd);

  // The eviction was surgical: a fresh, well-behaved client is served.
  auto client = Client::connect_unix(unix_path_, &err);
  ASSERT_NE(client, nullptr) << err;
  EXPECT_TRUE(client->ping());

  // And the kStats wire fields report the eviction.
  ServiceStats stats{};
  ASSERT_TRUE(client->stats(stats));
  EXPECT_GE(stats.evicted_backpressure, 1u);
}

}  // namespace
}  // namespace ecl::svc
