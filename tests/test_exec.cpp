// Tests for the ecl::exec subsystem: the task executor (submit/deferred/
// periodic admission, drain ordering, error isolation, fault injection), the
// timer wheel's lazy re-arm semantics, and the epoll event loop (framing,
// pipelining, backpressure pause/eviction, post()/stop ordering).
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "exec/event_loop.h"
#include "exec/executor.h"
#include "exec/timer_wheel.h"
#include "fault/fault.h"

namespace ecl::exec {
namespace {

using namespace std::chrono_literals;

// ------------------------------------------------------------- executor ----

TEST(Executor, RunsSubmittedTasks) {
  Executor ex;
  std::atomic<int> ran{0};
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(ex.submit([&] { ran.fetch_add(1); }));
  }
  ex.drain();
  EXPECT_EQ(ran.load(), 32);
  EXPECT_GE(ex.tasks_run(), 32u);
}

TEST(Executor, DrainRunsEverythingAlreadyReadyThenRefusesAdmission) {
  Executor ex{ExecutorOptions{.num_workers = 1}};
  std::atomic<int> ran{0};
  std::atomic<bool> release{false};
  // Park the single worker so the rest of the queue is provably "ready but
  // not started" when drain() begins.
  ASSERT_TRUE(ex.submit([&] {
    while (!release.load()) std::this_thread::sleep_for(1ms);
  }));
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(ex.submit([&] { ran.fetch_add(1); }));
  }
  std::thread t([&] {
    std::this_thread::sleep_for(20ms);
    release.store(true);
  });
  ex.drain();  // must run all 8 queued tasks before joining
  t.join();
  EXPECT_EQ(ran.load(), 8);
  EXPECT_FALSE(ex.submit([&] { ran.fetch_add(1); }));  // admission closed
  ex.drain();                                          // idempotent
  EXPECT_EQ(ran.load(), 8);
}

TEST(Executor, SubmitAfterFiresOnceAfterDelay) {
  Executor ex;
  std::atomic<int> ran{0};
  const auto t0 = std::chrono::steady_clock::now();
  std::atomic<std::int64_t> fired_after_ms{-1};
  ASSERT_TRUE(ex.submit_after(30, [&] {
    fired_after_ms.store(std::chrono::duration_cast<std::chrono::milliseconds>(
                             std::chrono::steady_clock::now() - t0)
                             .count());
    ran.fetch_add(1);
  }));
  std::this_thread::sleep_for(120ms);
  EXPECT_EQ(ran.load(), 1);
  EXPECT_GE(fired_after_ms.load(), 25);  // scheduler jitter tolerance
  ex.drain();
  EXPECT_EQ(ran.load(), 1);
}

TEST(Executor, PendingDeferredTasksAreDroppedByDrain) {
  Executor ex;
  std::atomic<int> ran{0};
  ASSERT_TRUE(ex.submit_after(60'000, [&] { ran.fetch_add(1); }));
  ex.drain();
  EXPECT_EQ(ran.load(), 0);
}

TEST(Executor, PeriodicRepeatsUntilCanceled) {
  Executor ex;
  std::atomic<int> ran{0};
  const std::uint64_t id = ex.submit_periodic(10, [&] { ran.fetch_add(1); });
  ASSERT_NE(id, 0u);
  // Wait for at least three firings rather than a fixed sleep: CI schedulers
  // stall, but the period keeps producing runs eventually.
  for (int spin = 0; spin < 500 && ran.load() < 3; ++spin) {
    std::this_thread::sleep_for(5ms);
  }
  EXPECT_GE(ran.load(), 3);
  EXPECT_TRUE(ex.cancel(id));
  EXPECT_FALSE(ex.cancel(id));  // already gone
  const int at_cancel = ran.load();
  std::this_thread::sleep_for(60ms);
  // At most one already-promoted run may land after cancel().
  EXPECT_LE(ran.load(), at_cancel + 1);
  ex.drain();
}

TEST(Executor, TaskExceptionIsCountedNotFatal) {
  Executor ex;
  std::atomic<int> ran{0};
  ASSERT_TRUE(ex.submit([] { throw std::runtime_error("boom"); }));
  ASSERT_TRUE(ex.submit([&] { ran.fetch_add(1); }));  // worker survived
  ex.drain();
  EXPECT_EQ(ran.load(), 1);
  EXPECT_EQ(ex.task_errors(), 1u);
}

class ExecFaultTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::Registry::instance().disarm_all(); }
  void TearDown() override { fault::Registry::instance().disarm_all(); }

  static void arm(const char* point, fault::Action action, std::uint64_t times) {
    fault::PointSpec spec;
    spec.point = point;
    spec.action = action;
    spec.times = times;
    fault::Registry::instance().arm_point(std::move(spec));
  }
};

TEST_F(ExecFaultTest, SubmitFaultShedsAdmission) {
  Executor ex;
  std::atomic<int> ran{0};
  arm("exec.submit", fault::Action::kFail, 1);
  EXPECT_FALSE(ex.submit([&] { ran.fetch_add(1); }));  // shed by the fault
  EXPECT_TRUE(ex.submit([&] { ran.fetch_add(1); }));   // budget spent
  ex.drain();
  EXPECT_EQ(ran.load(), 1);
}

TEST_F(ExecFaultTest, TaskFaultIsContained) {
  Executor ex{ExecutorOptions{.num_workers = 1}};
  arm("exec.task", fault::Action::kFail, 2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ex.submit([&] { ran.fetch_add(1); }));
  }
  ex.drain();
  // Two task bodies were killed by the injected fault, two ran; the worker
  // itself survived all four.
  EXPECT_EQ(ran.load(), 2);
  EXPECT_EQ(ex.task_errors(), 2u);
}

// ---------------------------------------------------------- timer wheel ----

TEST(TimerWheel, ExpiresInDeadlineOrderAcrossSlots) {
  TimerWheel wheel(/*slots=*/8, /*tick_ms=*/10);
  TimerWheel::Timer a;
  TimerWheel::Timer b;
  int owner_a = 1;
  int owner_b = 2;
  a.owner = &owner_a;
  b.owner = &owner_b;
  wheel.arm(&a, 30);
  wheel.arm(&b, 250);  // more than one revolution of an 8x10ms wheel
  std::vector<int> fired;
  wheel.advance(100, [&](void* o) { fired.push_back(*static_cast<int*>(o)); });
  EXPECT_EQ(fired, std::vector<int>({1}));
  wheel.advance(400, [&](void* o) { fired.push_back(*static_cast<int*>(o)); });
  EXPECT_EQ(fired, std::vector<int>({1, 2}));
  EXPECT_FALSE(wheel.armed());
}

TEST(TimerWheel, ReArmMovesDeadlineWithoutRefiling) {
  TimerWheel wheel(8, 10);
  TimerWheel::Timer t;
  int owner = 7;
  t.owner = &owner;
  wheel.arm(&t, 20);
  wheel.arm(&t, 500);  // O(1) deadline move; lazily re-filed at slot expiry
  int fired = 0;
  wheel.advance(100, [&](void*) { ++fired; });
  EXPECT_EQ(fired, 0);  // original slot passed, deadline had moved
  wheel.advance(600, [&](void*) { ++fired; });
  EXPECT_EQ(fired, 1);
}

TEST(TimerWheel, RemoveUnlinksEagerly) {
  TimerWheel wheel(8, 10);
  TimerWheel::Timer t;
  int owner = 7;
  t.owner = &owner;
  wheel.arm(&t, 20);
  wheel.remove(&t);
  int fired = 0;
  wheel.advance(1000, [&](void*) { ++fired; });
  EXPECT_EQ(fired, 0);
}

// ----------------------------------------------------------- event loop ----

std::uint32_t frame_len(const std::vector<std::uint8_t>& frame) {
  return static_cast<std::uint32_t>(frame[0]) |
         (static_cast<std::uint32_t>(frame[1]) << 8) |
         (static_cast<std::uint32_t>(frame[2]) << 16) |
         (static_cast<std::uint32_t>(frame[3]) << 24);
}

std::vector<std::uint8_t> make_frame(const std::string& payload) {
  const auto n = static_cast<std::uint32_t>(payload.size());
  std::vector<std::uint8_t> out(4 + payload.size());
  for (int i = 0; i < 4; ++i) out[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(n >> (8 * i));
  std::memcpy(out.data() + 4, payload.data(), payload.size());
  return out;
}

/// A started loop serving one end of a socketpair that echoes every frame.
class EchoLoopTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds_), 0);
    ConnCallbacks cbs;
    cbs.on_frame = [this](Conn& c, std::span<const std::uint8_t> p) {
      frames_.fetch_add(1);
      c.send_frame(p.data(), p.size());
    };
    cbs.on_close = [this](Conn&, CloseReason r) {
      std::lock_guard<std::mutex> lock(mu_);
      close_reason_ = r;
      closed_ = true;
    };
    ConnOptions copts;
    copts.max_frame_bytes = 1 << 16;
    ASSERT_NE(loop_.adopt(fds_[0], std::move(cbs), copts), nullptr);
    std::string err;
    ASSERT_TRUE(loop_.start(&err)) << err;
  }

  void TearDown() override {
    loop_.request_stop();
    loop_.join();
    ::close(fds_[1]);
  }

  bool wait_closed(int ms = 2000) {
    for (int i = 0; i < ms; ++i) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (closed_) return true;
      }
      std::this_thread::sleep_for(1ms);
    }
    return false;
  }

  CloseReason close_reason() {
    std::lock_guard<std::mutex> lock(mu_);
    return close_reason_;
  }

  /// Reads exactly n bytes from the client end (blocking).
  std::vector<std::uint8_t> read_exact(std::size_t n) {
    std::vector<std::uint8_t> buf(n);
    std::size_t got = 0;
    while (got < n) {
      const ssize_t r = ::read(fds_[1], buf.data() + got, n - got);
      if (r <= 0) {
        buf.resize(got);
        break;
      }
      got += static_cast<std::size_t>(r);
    }
    return buf;
  }

  EventLoop loop_;
  int fds_[2] = {-1, -1};
  std::atomic<int> frames_{0};
  std::mutex mu_;
  bool closed_ = false;
  CloseReason close_reason_ = CloseReason::kAppClose;
};

TEST_F(EchoLoopTest, EchoesOneFrame) {
  const auto f = make_frame("hello");
  ASSERT_EQ(::write(fds_[1], f.data(), f.size()), static_cast<ssize_t>(f.size()));
  const auto hdr = read_exact(4);
  ASSERT_EQ(hdr.size(), 4u);
  ASSERT_EQ(frame_len(hdr), 5u);
  const auto body = read_exact(5);
  EXPECT_EQ(std::string(body.begin(), body.end()), "hello");
}

TEST_F(EchoLoopTest, PipelinedFramesComeBackInOrder) {
  // Many frames in one write: the loop must deliver and answer all of them
  // in order, even though they arrive in a single epoll wake.
  std::vector<std::uint8_t> burst;
  constexpr int kFrames = 50;
  for (int i = 0; i < kFrames; ++i) {
    const auto f = make_frame("msg-" + std::to_string(i));
    burst.insert(burst.end(), f.begin(), f.end());
  }
  ASSERT_EQ(::write(fds_[1], burst.data(), burst.size()),
            static_cast<ssize_t>(burst.size()));
  for (int i = 0; i < kFrames; ++i) {
    const auto hdr = read_exact(4);
    ASSERT_EQ(hdr.size(), 4u) << "at frame " << i;
    const auto body = read_exact(frame_len(hdr));
    EXPECT_EQ(std::string(body.begin(), body.end()), "msg-" + std::to_string(i));
  }
  EXPECT_EQ(frames_.load(), kFrames);
}

TEST_F(EchoLoopTest, SplitFrameIsReassembled) {
  const auto f = make_frame("split-across-writes");
  for (std::size_t i = 0; i < f.size(); ++i) {
    ASSERT_EQ(::write(fds_[1], f.data() + i, 1), 1);
    std::this_thread::sleep_for(1ms);
  }
  const auto hdr = read_exact(4);
  ASSERT_EQ(hdr.size(), 4u);
  const auto body = read_exact(frame_len(hdr));
  EXPECT_EQ(std::string(body.begin(), body.end()), "split-across-writes");
}

TEST_F(EchoLoopTest, OversizedFrameClosesWithProtocolError) {
  std::vector<std::uint8_t> hdr(4);
  const std::uint32_t huge = (1u << 16) + 1;  // just past max_frame_bytes
  std::memcpy(hdr.data(), &huge, 4);
  ASSERT_EQ(::write(fds_[1], hdr.data(), 4), 4);
  ASSERT_TRUE(wait_closed());
  EXPECT_EQ(close_reason(), CloseReason::kProtocolError);
}

TEST_F(EchoLoopTest, PeerCloseReportsEof) {
  ::shutdown(fds_[1], SHUT_WR);
  ASSERT_TRUE(wait_closed());
  EXPECT_EQ(close_reason(), CloseReason::kPeerClosed);
}

TEST(EventLoop, PostRunsOnLoopThreadAndStopClosesConns) {
  EventLoop loop;
  std::string err;
  ASSERT_TRUE(loop.start(&err)) << err;
  std::atomic<bool> ran{false};
  loop.post([&] { ran.store(true); });
  for (int i = 0; i < 2000 && !ran.load(); ++i) std::this_thread::sleep_for(1ms);
  EXPECT_TRUE(ran.load());

  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  std::atomic<bool> adopted{false};
  std::atomic<bool> closed{false};
  std::atomic<CloseReason> reason{CloseReason::kAppClose};
  loop.post([&] {
    ConnCallbacks cbs;
    cbs.on_frame = [](Conn&, std::span<const std::uint8_t>) {};
    cbs.on_close = [&](Conn&, CloseReason r) {
      reason.store(r);
      closed.store(true);
    };
    EXPECT_NE(loop.adopt(fds[0], std::move(cbs), ConnOptions{}), nullptr);
    adopted.store(true);
  });
  for (int i = 0; i < 2000 && !adopted.load(); ++i) std::this_thread::sleep_for(1ms);
  ASSERT_TRUE(adopted.load());
  loop.request_stop();
  loop.join();
  EXPECT_TRUE(closed.load());
  EXPECT_EQ(reason.load(), CloseReason::kShutdown);
  ::close(fds[1]);
}

TEST(EventLoop, IdleTimeoutEvicts) {
  EventLoop loop;
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  std::atomic<bool> closed{false};
  std::atomic<CloseReason> reason{CloseReason::kAppClose};
  ConnCallbacks cbs;
  cbs.on_frame = [](Conn&, std::span<const std::uint8_t>) {};
  cbs.on_close = [&](Conn&, CloseReason r) {
    reason.store(r);
    closed.store(true);
  };
  ConnOptions copts;
  copts.idle_timeout_ms = 50;
  ASSERT_NE(loop.adopt(fds[0], std::move(cbs), copts), nullptr);
  std::string err;
  ASSERT_TRUE(loop.start(&err)) << err;
  for (int i = 0; i < 3000 && !closed.load(); ++i) std::this_thread::sleep_for(1ms);
  EXPECT_TRUE(closed.load());
  EXPECT_EQ(reason.load(), CloseReason::kIdleTimeout);
  loop.request_stop();
  loop.join();
  ::close(fds[1]);
}

TEST(EventLoopPool, RoundRobinAndSharedCounters) {
  EventLoopPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
  EventLoop* first = &pool.next();
  EventLoop* second = &pool.next();
  EventLoop* third = &pool.next();
  EXPECT_NE(first, second);
  EXPECT_NE(second, third);
  EXPECT_EQ(first, &pool.next());  // wrapped
  std::string err;
  ASSERT_TRUE(pool.start(&err)) << err;
  pool.stop();
  pool.stop();  // idempotent
}

}  // namespace
}  // namespace ecl::exec
